// Command doccheck enforces the repository's godoc policy: every
// exported identifier in the packages passed as arguments must carry a
// doc comment. It is the CI stand-in for revive's `exported` rule,
// implemented on go/ast so the check needs nothing beyond the standard
// library.
//
// Checked declarations, mirroring revive's scope:
//
//   - package-level functions and methods (methods only when their
//     receiver type is itself exported — methods on unexported types are
//     unreachable from outside the package);
//   - package-level types;
//   - package-level consts and vars, where a doc comment on the
//     enclosing declaration group covers every spec inside it (the
//     conventional style for enum-like const blocks).
//
// Usage:
//
//	go run ./cmd/doccheck ./internal/core ./internal/stats ...
//
// Each violation is printed as file:line: identifier; the exit status
// is 1 when any package has one. Test files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir> ...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		n, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) without doc comments\n", bad)
		os.Exit(1)
	}
}

// checkDir parses every non-test .go file in dir and reports exported
// identifiers lacking doc comments, returning how many it found.
func checkDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	bad := 0
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: %s %s has no doc comment\n", filepath.ToSlash(p.Filename), p.Line, what, name)
		bad++
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if d.Recv != nil && !receiverExported(d.Recv) {
						continue
					}
					report(d.Pos(), kindOf(d), d.Name.Name)
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return bad, nil
}

// kindOf names a FuncDecl for diagnostics: "function" or "method".
func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// receiverExported reports whether a method's receiver names an
// exported type (after peeling pointers and type parameters).
func receiverExported(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return true
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr: // generic receiver T[P1, P2]
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true // unrecognized shape: err toward checking
		}
	}
}

// checkGenDecl reports undocumented exported names in a type, const or
// var declaration. A doc comment on the declaration group covers all
// its specs; otherwise each spec needs its own.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), strings.ToLower(d.Tok.String()), name.Name)
				}
			}
		}
	}
}
