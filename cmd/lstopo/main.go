// Command lstopo prints a machine topology tree together with the task
// queues PIOMan would map onto it (paper Figures 2 and 3).
//
// Usage:
//
//	lstopo -machine kwak
//	lstopo -machine borderline
//	lstopo -machine host
package main

import (
	"flag"
	"fmt"
	"os"

	"pioman/internal/core"
	"pioman/internal/topology"
)

func main() {
	machine := flag.String("machine", "kwak", "machine model: borderline, kwak, or host")
	flag.Parse()

	topo, err := topology.ByName(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Print(topo)

	engine := core.New(core.Config{Topology: topo})
	fmt.Printf("\ntask queues (%d total, one per topology node):\n", len(engine.Queues()))
	for _, q := range engine.Queues() {
		n := q.Node()
		fmt.Printf("  depth %d  %-28s scheduling domain: %s\n", n.Depth, n.Kind, n.CPUSet)
	}
}
