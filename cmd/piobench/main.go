// Command piobench regenerates the tables and figures of the paper's
// evaluation (§V). Each experiment prints its measurements in the
// paper's format next to the paper's published values.
//
// Usage:
//
//	piobench -list             # show available experiments
//	piobench -run table1       # run one experiment
//	piobench -run all          # run everything (default)
package main

import (
	"flag"
	"fmt"
	"os"

	"pioman/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment id to run (see -list), or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-18s %-10s %s\n", e.ID, e.Paper, e.Description)
		}
		return
	}

	if *run == "all" {
		out, err := experiments.RunAll()
		fmt.Print(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	e, ok := experiments.ByID(*run)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *run)
		os.Exit(2)
	}
	out, err := e.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("### %s — %s\n%s\n%s", e.ID, e.Paper, e.Description, out)
}
