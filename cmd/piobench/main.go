// Command piobench regenerates the tables and figures of the paper's
// evaluation (§V). Each experiment prints its measurements in the
// paper's format next to the paper's published values.
//
// Usage:
//
//	piobench -list             # show available experiments
//	piobench -run table1       # run one experiment
//	piobench -run all          # run everything (default)
//	piobench -http 127.0.0.1:9187
//	                           # serve /metrics, /healthz and
//	                           # /debug/pprof while the experiments run;
//	                           # stays up after them until SIGINT or
//	                           # SIGTERM, then shuts down gracefully
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pioman/internal/experiments"
	"pioman/internal/obs"
)

func main() {
	run := flag.String("run", "all", "experiment id to run (see -list), or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	httpAddr := flag.String("http", "", "serve /metrics, /healthz and /debug/pprof on this address; keeps serving after the run until SIGINT")
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-18s %-10s %s\n", e.ID, e.Paper, e.Description)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var srv *obs.Server
	if *httpAddr != "" {
		reg := obs.NewRegistry()
		reg.Register(obs.NewGoCollector())
		srv = obs.NewServer(obs.ServerConfig{Addr: *httpAddr, Registry: reg, Health: obs.NewHealth()})
		if err := srv.Start(); err != nil {
			fmt.Fprintln(os.Stderr, "http:", err)
			os.Exit(2)
		}
		fmt.Printf("serving metrics on http://%s/metrics\n", srv.Addr())
	}

	code := runExperiments(*run)

	if srv != nil && code == 0 {
		fmt.Printf("experiments done; serving on http://%s until SIGINT\n", srv.Addr())
		<-ctx.Done()
		stop()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "shutdown:", err)
			os.Exit(1)
		}
	}
	if code != 0 {
		os.Exit(code)
	}
}

// runExperiments executes the requested experiment set and returns the
// process exit code.
func runExperiments(run string) int {
	if run == "all" {
		out, err := experiments.RunAll()
		fmt.Print(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		return 0
	}

	e, ok := experiments.ByID(run)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", run)
		return 2
	}
	out, err := e.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	fmt.Printf("### %s — %s\n%s\n%s", e.ID, e.Paper, e.Description, out)
	return 0
}
