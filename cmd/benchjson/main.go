// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can archive benchmark runs
// (e.g. BENCH_core.json) without parsing the text format twice.
//
// Usage:
//
//	go test -bench . -benchmem ./internal/core | benchjson -label core -out BENCH_core.json
//
// Lines that are not benchmark results (PASS, ok, warm-up chatter) are
// ignored, so the full `go test` stream can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      int64              `json:"b_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// document is the archived artifact shape.
type document struct {
	Bench   string   `json:"bench"`
	Results []result `json:"results"`
}

func main() {
	label := flag.String("label", "", "value of the top-level bench field")
	out := flag.String("out", "", "output path (default stdout)")
	flag.Parse()

	doc := document{Bench: *label, Results: []result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			doc.Results = append(doc.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "read:", err)
		os.Exit(1)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "no benchmark lines found on stdin")
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "create:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "encode:", err)
		os.Exit(1)
	}
}

// parseLine recognizes the `go test -bench` result format:
//
//	BenchmarkName-8   1000000   123.4 ns/op   16 B/op   1 allocs/op   9.87 custom/unit
//
// The value preceding each unit token pairs with it; unknown units land
// in Metrics keyed by unit name.
func parseLine(line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: f[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, seen
}
