package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkSubmitPinned-8  38744832  31.64 ns/op  0 B/op  0 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if r.Name != "BenchmarkSubmitPinned-8" || r.Iterations != 38744832 ||
		r.NsPerOp != 31.64 || r.BPerOp != 0 || r.AllocsPerOp != 0 {
		t.Fatalf("parsed %+v", r)
	}

	r, ok = parseLine("BenchmarkRdvPull-8  100  11900 ns/op  703.1 MB/s")
	if !ok {
		t.Fatal("custom-unit line not recognized")
	}
	if r.Metrics["MB/s"] != 703.1 {
		t.Fatalf("custom metric lost: %+v", r)
	}

	for _, junk := range []string{
		"PASS",
		"ok  \tpioman/internal/core\t12.3s",
		"goos: linux",
		"BenchmarkBroken-8 notanumber ns/op",
		"",
	} {
		if _, ok := parseLine(junk); ok {
			t.Errorf("junk line %q parsed as a result", junk)
		}
	}
}
