// Command clusterbench runs the deterministic cluster chaos suite
// (internal/cluster) and emits one BENCH trajectory as JSON. The same
// seed produces byte-identical output, so the file doubles as a
// regression fixture: any diff under a fixed seed is a behaviour
// change, not noise.
//
// Usage:
//
//	clusterbench                      # full suite, seed 1, BENCH_cluster.json
//	clusterbench -seed 7              # another replayable universe
//	clusterbench -run incast          # scenarios whose name contains "incast"
//	clusterbench -list                # show the suite
//	clusterbench -out trajectory.json # write elsewhere ("-" = stdout only)
//
// Exit status: 0 when every scenario honors its invariant contract,
// 1 when any violates it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pioman/internal/cluster"
)

// trajectory is the emitted BENCH document.
type trajectory struct {
	Bench     string           `json:"bench"`
	Seed      int64            `json:"seed"`
	Scenarios []cluster.Result `json:"scenarios"`
}

func main() {
	seed := flag.Int64("seed", 1, "fault/traffic seed; same seed → byte-identical JSON")
	out := flag.String("out", "BENCH_cluster.json", "output file (\"-\" = stdout only)")
	run := flag.String("run", "", "only scenarios whose name contains this substring")
	list := flag.Bool("list", false, "list scenarios and exit")
	flag.Parse()

	if *list {
		fmt.Println("available scenarios:")
		for _, sc := range cluster.Scenarios() {
			fmt.Printf("  %-20s %s\n", sc.Name, sc.Desc)
		}
		return
	}

	var filter func(string) bool
	if *run != "" {
		filter = func(name string) bool { return strings.Contains(name, *run) }
	}
	results := cluster.Run(*seed, filter)
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "no scenario matches %q; try -list\n", *run)
		os.Exit(2)
	}

	fmt.Printf("%-20s %6s %6s %7s %5s %5s %5s %5s %10s %10s  %s\n",
		"scenario", "nodes", "gates", "xfers", "ok", "fail", "hung", "retry", "p50(µs)", "p99(µs)", "verdict")
	violated := false
	for _, r := range results {
		verdict := "pass"
		if !r.Passed() {
			verdict = "FAIL: " + strings.Join(r.Violations, "; ")
			violated = true
		} else if r.ExpectHang {
			verdict = "pass (hang caught)"
		}
		fmt.Printf("%-20s %6d %6d %7d %5d %5d %5d %5d %10.1f %10.1f  %s\n",
			r.Scenario, r.Nodes, r.GateEndpoints, r.Transfers, r.Completed,
			r.FailedVisibly+r.Canceled, r.Hung, r.RdvRetries,
			float64(r.LatencyP50Ns)/1e3, float64(r.LatencyP99Ns)/1e3, verdict)
	}

	doc, err := json.MarshalIndent(trajectory{Bench: "cluster-chaos", Seed: *seed, Scenarios: results}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	doc = append(doc, '\n')
	if *out == "-" {
		os.Stdout.Write(doc)
	} else {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "write:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d scenarios, seed %d)\n", *out, len(results), *seed)
	}
	if violated {
		os.Exit(1)
	}
}
