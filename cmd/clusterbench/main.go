// Command clusterbench runs the deterministic cluster chaos suite
// (internal/cluster) and emits one BENCH trajectory as JSON. The same
// seed produces byte-identical output, so the file doubles as a
// regression fixture: any diff under a fixed seed is a behaviour
// change, not noise.
//
// Usage:
//
//	clusterbench                      # full suite, seed 1, BENCH_cluster.json
//	clusterbench -seed 7              # another replayable universe
//	clusterbench -run incast          # scenarios whose name contains "incast"
//	clusterbench -list                # show the suite
//	clusterbench -out trajectory.json # write elsewhere ("-" = stdout only)
//	clusterbench -baseline BENCH_cluster.baseline.json
//	                                  # also gate p50/p99 against a blessed run
//	clusterbench -http 127.0.0.1:9187 # serve /metrics, /healthz, /debug/pprof
//	                                  # and /debug/trace while running; stays up
//	                                  # after the run until SIGINT/SIGTERM, then
//	                                  # shuts down gracefully
//	clusterbench -trace run.json      # write the flight-recorder timeline as
//	                                  # chrome://tracing JSON
//
// With -http the per-scenario results appear on /metrics as they
// complete (pioman_cluster_* series), /healthz reports 200 while the
// suite is clean and 503 once any scenario violates its contract, and
// /debug/trace drains the same flight recorder -trace writes — engine
// events (task dispatches, steals, rendezvous transitions,
// retransmissions, rail deaths) stamped on each scenario's virtual
// clock.
//
// The baseline gate is the perf-regression tripwire: latencies ride
// the fabric's virtual clock, so under a fixed seed they are exact
// model outputs, not noisy wall-clock samples. A committed baseline
// plus a tolerance band therefore catches protocol regressions (extra
// round trips, lost batching, softened timeouts) the moment they move
// a scenario's p50/p99, while leaving room for deliberate small
// shifts. Regenerate the blessed file with -out after an intentional
// change and commit the diff with the explanation.
//
// Exit status: 0 when every scenario honors its invariant contract
// (and the baseline gate, when given, passes), 1 when any violates
// either, 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"pioman/internal/cluster"
	"pioman/internal/obs"
	"pioman/internal/trace"
)

// trajectory is the emitted BENCH document.
type trajectory struct {
	Bench     string           `json:"bench"`
	Seed      int64            `json:"seed"`
	Scenarios []cluster.Result `json:"scenarios"`
}

func main() {
	seed := flag.Int64("seed", 1, "fault/traffic seed; same seed → byte-identical JSON")
	out := flag.String("out", "BENCH_cluster.json", "output file (\"-\" = stdout only)")
	run := flag.String("run", "", "only scenarios whose name contains this substring")
	list := flag.Bool("list", false, "list scenarios and exit")
	baseline := flag.String("baseline", "", "blessed trajectory JSON; exit 1 when p50/p99 regress past -tolerance")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional p50/p99 growth over the baseline")
	httpAddr := flag.String("http", "", "serve /metrics, /healthz, /debug/pprof and /debug/trace on this address; keeps serving after the run until SIGINT")
	traceOut := flag.String("trace", "", "write the flight-recorder chrome://tracing JSON to this file after the run")
	flag.Parse()

	if *list {
		fmt.Println("available scenarios:")
		for _, sc := range cluster.Scenarios() {
			fmt.Printf("  %-20s %s\n", sc.Name, sc.Desc)
		}
		return
	}

	var filter func(string) bool
	if *run != "" {
		filter = func(name string) bool { return strings.Contains(name, *run) }
	}

	var rec *trace.Recorder
	if *httpAddr != "" || *traceOut != "" {
		rec = trace.New(8, 1<<14, nil)
	}

	// live mirrors the completed results for the metrics endpoint so a
	// scrape mid-suite sees every finished scenario consistently.
	var (
		liveMu sync.Mutex
		live   []cluster.Result
	)
	snapshot := func() []cluster.Result {
		liveMu.Lock()
		defer liveMu.Unlock()
		return append([]cluster.Result(nil), live...)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var srv *obs.Server
	if *httpAddr != "" {
		reg := obs.NewRegistry()
		reg.Register(obs.NewGoCollector(), obs.NewClusterCollector(snapshot))
		if rec != nil {
			reg.Register(obs.NewTraceCollector(rec))
		}
		health := obs.NewHealth()
		health.Register("scenarios", func() error {
			for _, r := range snapshot() {
				if !r.Passed() {
					return fmt.Errorf("%s: %s", r.Scenario, strings.Join(r.Violations, "; "))
				}
			}
			return nil
		})
		srv = obs.NewServer(obs.ServerConfig{Addr: *httpAddr, Registry: reg, Health: health, Trace: rec})
		if err := srv.Start(); err != nil {
			fmt.Fprintln(os.Stderr, "http:", err)
			os.Exit(2)
		}
		fmt.Printf("serving metrics on http://%s/metrics\n", srv.Addr())
	}

	var results []cluster.Result
	for _, sc := range cluster.Scenarios() {
		if filter != nil && !filter(sc.Name) {
			continue
		}
		r := sc.Run(*seed, rec)
		results = append(results, r)
		liveMu.Lock()
		live = append(live, r)
		liveMu.Unlock()
	}
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "no scenario matches %q; try -list\n", *run)
		os.Exit(2)
	}

	if *traceOut != "" {
		if err := writeTraceFile(*traceOut, rec); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d events)\n", *traceOut, rec.Recorded())
	}

	fmt.Printf("%-20s %6s %6s %7s %5s %5s %5s %5s %5s %10s %10s  %s\n",
		"scenario", "nodes", "gates", "xfers", "ok", "fail", "hung", "retry", "rej", "p50(µs)", "p99(µs)", "verdict")
	violated := false
	for _, r := range results {
		verdict := "pass"
		if !r.Passed() {
			verdict = "FAIL: " + strings.Join(r.Violations, "; ")
			violated = true
		} else if r.ExpectHang {
			verdict = "pass (hang caught)"
		}
		fmt.Printf("%-20s %6d %6d %7d %5d %5d %5d %5d %5d %10.1f %10.1f  %s\n",
			r.Scenario, r.Nodes, r.GateEndpoints, r.Transfers, r.Completed,
			r.FailedVisibly+r.Canceled, r.Hung, r.RdvRetries, r.AdmitRejected,
			float64(r.LatencyP50Ns)/1e3, float64(r.LatencyP99Ns)/1e3, verdict)
	}

	if *baseline != "" && gateBaseline(*baseline, *seed, results, *tolerance) {
		violated = true
	}

	doc, err := json.MarshalIndent(trajectory{Bench: "cluster-chaos", Seed: *seed, Scenarios: results}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	doc = append(doc, '\n')
	if *out == "-" {
		os.Stdout.Write(doc)
	} else {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "write:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d scenarios, seed %d)\n", *out, len(results), *seed)
	}
	if srv != nil {
		fmt.Printf("suite done; serving on http://%s until SIGINT\n", srv.Addr())
		<-ctx.Done()
		stop()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "shutdown:", err)
			os.Exit(1)
		}
	}
	if violated {
		os.Exit(1)
	}
}

// writeTraceFile drains the flight recorder as chrome://tracing JSON.
func writeTraceFile(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// gateBaseline diffs this run's per-scenario p50/p99 against a blessed
// trajectory and reports whether anything regressed past the tolerance
// band. Scenarios in the baseline but absent from this run count as
// regressions (coverage must not silently shrink); new scenarios not
// yet blessed pass with a note. Zero-latency baseline entries (the
// expect-hang ablations complete nothing) carry no latency contract.
func gateBaseline(path string, seed int64, results []cluster.Result, tol float64) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "baseline:", err)
		os.Exit(2)
	}
	var base trajectory
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "baseline %s: %v\n", path, err)
		os.Exit(2)
	}
	if base.Seed != seed {
		fmt.Fprintf(os.Stderr, "baseline %s was blessed with seed %d, this run used %d; latencies are not comparable\n",
			path, base.Seed, seed)
		os.Exit(2)
	}

	current := make(map[string]cluster.Result, len(results))
	for _, r := range results {
		current[r.Scenario] = r
	}
	fmt.Printf("\nbaseline gate (%s, tolerance %.0f%%):\n", path, tol*100)
	regressed := false
	for _, b := range base.Scenarios {
		cur, ok := current[b.Scenario]
		if !ok {
			fmt.Printf("  %-20s MISSING from this run (blessed scenario dropped)\n", b.Scenario)
			regressed = true
			continue
		}
		bad := false
		for _, m := range []struct {
			name      string
			base, cur int64
		}{
			{"p50", b.LatencyP50Ns, cur.LatencyP50Ns},
			{"p99", b.LatencyP99Ns, cur.LatencyP99Ns},
		} {
			if m.base <= 0 {
				continue
			}
			limit := float64(m.base) * (1 + tol)
			if float64(m.cur) > limit {
				fmt.Printf("  %-20s %s REGRESSED: %.1fµs → %.1fµs (limit %.1fµs)\n",
					b.Scenario, m.name, float64(m.base)/1e3, float64(m.cur)/1e3, limit/1e3)
				bad, regressed = true, true
			}
		}
		if !bad {
			fmt.Printf("  %-20s ok (p50 %.1fµs→%.1fµs, p99 %.1fµs→%.1fµs)\n", b.Scenario,
				float64(b.LatencyP50Ns)/1e3, float64(cur.LatencyP50Ns)/1e3,
				float64(b.LatencyP99Ns)/1e3, float64(cur.LatencyP99Ns)/1e3)
		}
	}
	for _, r := range results {
		blessed := false
		for _, b := range base.Scenarios {
			if b.Scenario == r.Scenario {
				blessed = true
				break
			}
		}
		if !blessed {
			fmt.Printf("  %-20s new scenario, not in baseline (re-bless to gate it)\n", r.Scenario)
		}
	}
	return regressed
}
