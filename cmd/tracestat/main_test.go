package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pioman/internal/cluster"
	"pioman/internal/obs"
	"pioman/internal/trace"
	"pioman/internal/trace/analyze"
)

// chaosTrace runs the chaos-soup scenario traced and returns its chrome
// JSON document — the same bytes `clusterbench -trace` would write.
func chaosTrace(t *testing.T, seed int64) []byte {
	t.Helper()
	rec := trace.New(8, 1<<14, nil)
	only := func(name string) bool { return name == "chaos-soup" }
	results := cluster.RunTraced(seed, only, rec)
	if len(results) != 1 || !results[0].Passed() {
		t.Fatalf("traced chaos-soup did not pass: %+v", results)
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	return buf.Bytes()
}

// render parses a chrome document the way `tracestat -in` does and
// renders the report.
func render(t *testing.T, doc []byte, top int) string {
	t.Helper()
	events, err := trace.ReadTrace(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	return Render(analyze.Analyze(events), top)
}

// TestDeterministicOutput is the acceptance criterion: tracestat output
// for a same-seed chaos-soup trace is byte-identical across two
// independent runs — the report can serve as a regression fixture.
func TestDeterministicOutput(t *testing.T) {
	doc1 := chaosTrace(t, 1)
	doc2 := chaosTrace(t, 1)
	if !bytes.Equal(doc1, doc2) {
		t.Fatal("same-seed chaos runs drained different chrome documents")
	}
	out1 := render(t, doc1, 10)
	out2 := render(t, doc2, 10)
	if out1 != out2 {
		t.Fatalf("tracestat output differs across same-seed runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", out1, out2)
	}
	// The report must actually say something about a lossy rendezvous
	// storm: phases attributed, critical path listed, retransmits
	// flagged.
	for _, want := range []string{
		"per-phase latency", "handshake", "critical path",
		string(analyze.RetransmitStalled),
	} {
		if !strings.Contains(out1, want) {
			t.Errorf("report lacks %q:\n%s", want, out1)
		}
	}
}

// TestCheckContract exercises the -check smoke gate: a healthy chaos
// trace passes, an empty trace and a trace with a dangling begin fail.
func TestCheckContract(t *testing.T) {
	doc := chaosTrace(t, 1)
	events, err := trace.ReadTrace(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if errs := Check(analyze.Analyze(events)); len(errs) != 0 {
		t.Errorf("healthy chaos trace failed -check: %v", errs)
	}

	if errs := Check(analyze.Analyze(nil)); len(errs) == 0 {
		t.Error("empty trace passed -check")
	}

	// A completed message (paired send span) carrying a handshake begin
	// with no end: one orphan, must fail.
	sid := trace.PackSpanID(1, 2, trace.DirSend, 0, 7)
	orphaned := []trace.Event{
		{Kind: trace.EvSendBegin, A: sid, TS: 10},
		{Kind: trace.EvHandshakeBegin, A: sid, TS: 20},
		{Kind: trace.EvSendEnd, A: sid, TS: 90},
	}
	rep := analyze.Analyze(orphaned)
	if rep.OrphanSpans != 1 {
		t.Fatalf("expected 1 orphan span, got %d", rep.OrphanSpans)
	}
	if errs := Check(rep); len(errs) == 0 {
		t.Error("orphaned span tree passed -check")
	}
}

// TestLoadFile covers the -in path end to end: a trace written to disk
// round-trips through load and analyzes identically to the in-memory
// stream.
func TestLoadFile(t *testing.T) {
	doc := chaosTrace(t, 1)
	path := filepath.Join(t.TempDir(), "run.json")
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	events, err := load(path, "")
	if err != nil {
		t.Fatalf("load(%s): %v", path, err)
	}
	if got, want := Render(analyze.Analyze(events), 5), render(t, doc, 5); got != want {
		t.Fatalf("file round-trip changed the report:\n%s\nvs\n%s", got, want)
	}

	if _, err := load("", ""); err == nil {
		t.Error("load with no source did not error")
	}
	if _, err := load(path, "http://x"); err == nil {
		t.Error("load with both sources did not error")
	}
}

// TestLoadURL covers the -url path: draining a live obs.Server
// /debug/trace endpoint yields the same report as the file route.
func TestLoadURL(t *testing.T) {
	rec := trace.New(8, 1<<14, nil)
	only := func(name string) bool { return name == "chaos-soup" }
	if results := cluster.RunTraced(1, only, rec); len(results) != 1 || !results[0].Passed() {
		t.Fatalf("traced chaos-soup did not pass: %+v", results)
	}
	srv := obs.NewServer(obs.ServerConfig{Trace: rec})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	events, err := load("", ts.URL+"/debug/trace")
	if err != nil {
		t.Fatalf("load(-url): %v", err)
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if got, want := Render(analyze.Analyze(events), 5), render(t, buf.Bytes(), 5); got != want {
		t.Fatalf("-url report differs from -in report:\n%s\nvs\n%s", got, want)
	}

	// A server with no recorder 404s; load must surface that, not parse.
	empty := httptest.NewServer(obs.NewServer(obs.ServerConfig{}).Handler())
	defer empty.Close()
	if _, err := load("", empty.URL+"/debug/trace"); err == nil {
		t.Error("404 endpoint did not error")
	}
}
