// Command tracestat reconstructs message-lifecycle span trees from a
// flight-recorder trace and reports where the time went: per-phase
// latency percentiles, the slowest end-to-end messages (the critical
// path), and anomaly counts (retransmit-stalled, timeout-killed,
// head-of-line-blocked).
//
// Input is chrome://tracing JSON — either a file written by
// `clusterbench -trace` / trace.Recorder.WriteTrace, or a live drain of
// an obs.Server's /debug/trace endpoint:
//
//	tracestat -in run.json            # analyze a trace file
//	tracestat -url http://127.0.0.1:9187/debug/trace
//	                                  # drain a live recorder
//	tracestat -in run.json -top 10    # show the 10 slowest messages
//	tracestat -in run.json -check     # CI smoke: exit 1 unless the
//	                                  # trace reconstructs (≥1 message,
//	                                  # ≥1 completed, zero orphan spans)
//
// Output is deterministic: the same trace bytes produce the same
// report bytes, so a same-seed clusterbench trace diffs clean across
// runs and the report itself can serve as a golden fixture.
//
// Exit status: 0 on success (and -check passing), 1 when -check fails,
// 2 on usage or input errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"pioman/internal/stats"
	"pioman/internal/trace"
	"pioman/internal/trace/analyze"
)

func main() {
	in := flag.String("in", "", "chrome://tracing JSON file to analyze (\"-\" = stdin)")
	url := flag.String("url", "", "drain a live /debug/trace endpoint instead of a file")
	top := flag.Int("top", 5, "number of critical-path (slowest) messages to show")
	check := flag.Bool("check", false, "exit 1 unless the trace reconstructs: ≥1 message, ≥1 completed, zero orphan spans")
	flag.Parse()

	events, err := load(*in, *url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(2)
	}
	rep := analyze.Analyze(events)
	os.Stdout.WriteString(Render(rep, *top))

	if *check {
		if errs := Check(rep); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "check:", e)
			}
			os.Exit(1)
		}
		fmt.Println("check: ok")
	}
}

// load fetches the event stream from exactly one of a file or a URL.
func load(in, url string) ([]trace.Event, error) {
	switch {
	case in != "" && url != "":
		return nil, fmt.Errorf("give -in or -url, not both")
	case in == "" && url == "":
		return nil, fmt.Errorf("need -in <file> or -url <endpoint> (try -h)")
	case url != "":
		resp, err := http.Get(url)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			return nil, fmt.Errorf("%s: %s (%s)", url, resp.Status, strings.TrimSpace(string(body)))
		}
		return trace.ReadTrace(resp.Body)
	case in == "-":
		return trace.ReadTrace(os.Stdin)
	default:
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadTrace(f)
	}
}

// Check applies the CI smoke contract: the trace must reconstruct into
// at least one message, at least one must have completed, and completed
// messages must carry fully paired span trees (zero orphans).
func Check(rep *analyze.Report) []string {
	var errs []string
	if len(rep.Messages) == 0 {
		errs = append(errs, "no messages reconstructed (empty or span-free trace)")
	} else if rep.Completed == 0 {
		errs = append(errs, "no message completed")
	}
	if rep.OrphanSpans > 0 {
		errs = append(errs, fmt.Sprintf("%d orphan phase spans on completed messages (begin/end pairing broken)", rep.OrphanSpans))
	}
	return errs
}

// Render produces the full human report. Deterministic: same report in,
// same bytes out (all iteration orders are sorted upstream).
func Render(rep *analyze.Report, top int) string {
	var b strings.Builder

	fmt.Fprintf(&b, "messages: %d  completed: %d  failed: %d  incomplete: %d  orphan spans: %d\n",
		len(rep.Messages), rep.Completed, rep.Failed, rep.Incomplete, rep.OrphanSpans)
	if len(rep.Anomalies) > 0 {
		b.WriteString("anomalies:")
		for _, a := range []analyze.Anomaly{analyze.RetransmitStalled, analyze.TimeoutKilled, analyze.HeadOfLineBlocked} {
			if n := rep.Anomalies[a]; n > 0 {
				fmt.Fprintf(&b, " %s=%d", a, n)
			}
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')

	if names := rep.PhaseNames(); len(names) > 0 {
		tb := stats.Table{
			Title:   "per-phase latency",
			Header:  []string{"phase", "count", "p50(us)", "p99(us)", "max(us)"},
			Caption: "Durations of complete top-level phase spans on the trace clock.",
		}
		for _, name := range names {
			h := rep.Phases[name]
			tb.AddRow(name,
				strconv.FormatUint(h.Count(), 10),
				us(h.Quantile(0.5)), us(h.Quantile(0.99)), us(h.Max()))
		}
		b.WriteString(tb.String())
		b.WriteByte('\n')
	}

	if slow := rep.CriticalPath(top); len(slow) > 0 {
		tb := stats.Table{
			Title:  fmt.Sprintf("critical path (top %d by end-to-end duration)", len(slow)),
			Header: []string{"message", "bytes", "total(us)", "critical phase", "share", "flags"},
		}
		for _, m := range slow {
			phase, dur := m.CriticalPhase()
			share := "-"
			if phase != "" && m.Duration() > 0 {
				share = fmt.Sprintf("%d%%", dur*100/m.Duration())
			} else if phase == "" {
				phase = "-"
			}
			flags := "-"
			if len(m.Anomalies) > 0 {
				parts := make([]string, len(m.Anomalies))
				for i, a := range m.Anomalies {
					parts[i] = string(a)
				}
				flags = strings.Join(parts, ",")
			}
			tb.AddRow(m.Label(), strconv.FormatUint(m.Bytes, 10), us(m.Duration()), phase, share, flags)
		}
		b.WriteString(tb.String())
	}
	return b.String()
}

// us renders nanoseconds as microseconds with one decimal.
func us(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e3, 'f', 1, 64)
}
