// Repository-level benchmarks: one per table and figure of the paper's
// evaluation, plus ablations for the design choices called out in
// DESIGN.md. Simulation-backed benchmarks report virtual-time metrics
// (sim-ns/task, µs latency, overlap ratio); runtime-stack benchmarks
// report real wall-clock costs on the host.
//
// Run with: go test -bench=. -benchmem
package pioman_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"pioman/internal/core"
	"pioman/internal/cpuset"
	"pioman/internal/experiments"
	"pioman/internal/mpi"
	"pioman/internal/nmad"
	"pioman/internal/simmachine"
	"pioman/internal/simmpi"
	"pioman/internal/stats"
	"pioman/internal/topology"
)

// ---- Tables I & II: task-scheduling micro-benchmark (simulated) ----

func benchmarkTable(b *testing.B, machine string) {
	topo, err := topology.ByName(machine)
	if err != nil {
		b.Fatal(err)
	}
	params, _ := simmachine.ParamsFor(machine)
	cases := []struct {
		name string
		run  func(m *simmachine.Machine, iters int) simmachine.BenchResult
	}{
		{"per-core-local", func(m *simmachine.Machine, it int) simmachine.BenchResult { return m.PerCoreBench(0, it) }},
		{"per-core-remote", func(m *simmachine.Machine, it int) simmachine.BenchResult {
			return m.PerCoreBench(topo.NCPUs-1, it)
		}},
		{"per-chip", func(m *simmachine.Machine, it int) simmachine.BenchResult { return m.PerChipBench(1, it) }},
		{"global", func(m *simmachine.Machine, it int) simmachine.BenchResult { return m.GlobalBench(it) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var last simmachine.BenchResult
			for i := 0; i < b.N; i++ {
				m := simmachine.NewMachine(topo, params)
				last = c.run(m, 100)
			}
			b.ReportMetric(last.MeanNS, "sim-ns/task")
		})
	}
}

func BenchmarkTableI_Borderline(b *testing.B) { benchmarkTable(b, "borderline") }
func BenchmarkTableII_Kwak(b *testing.B)      { benchmarkTable(b, "kwak") }

// ---- Figure 4: multi-threaded latency (simulated) ----

func BenchmarkFig4_MTLatency(b *testing.B) {
	for _, kind := range []simmpi.EngineKind{simmpi.MVAPICHLike, simmpi.PIOManLike} {
		for _, threads := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/threads=%d", kind, threads), func(b *testing.B) {
				var lat float64
				for i := 0; i < b.N; i++ {
					lat = experiments.RunMTLatency(kind, threads).LatencyUS
				}
				b.ReportMetric(lat, "sim-µs-one-way")
			})
		}
	}
}

// ---- Figures 5-7: overlap benchmark (simulated) ----

func benchmarkOverlap(b *testing.B, side experiments.ComputeSide) {
	for _, kind := range []simmpi.EngineKind{simmpi.MVAPICHLike, simmpi.OpenMPILike, simmpi.PIOManLike} {
		b.Run(kind.String(), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				// 1 MB with computation ≈ 2x the transfer time: the
				// regime where the figures separate the engines.
				ratio = experiments.RunOverlap(kind, side, 1<<20, 1500).Ratio
			}
			b.ReportMetric(ratio, "overlap-ratio")
		})
	}
}

func BenchmarkFig5_OverlapSender(b *testing.B)   { benchmarkOverlap(b, experiments.ComputeSender) }
func BenchmarkFig6_OverlapReceiver(b *testing.B) { benchmarkOverlap(b, experiments.ComputeReceiver) }
func BenchmarkFig7_OverlapBoth(b *testing.B)     { benchmarkOverlap(b, experiments.ComputeBoth) }

// ---- Real runtime stack: task engine costs on the host ----

// BenchmarkTaskSubmitSchedule measures the real cost of submitting an
// empty task and scheduling it locally — the host-machine analogue of
// the paper's 700 ns reference.
func BenchmarkTaskSubmitSchedule(b *testing.B) {
	e := core.New(core.Config{Topology: topology.Host()})
	task := core.Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task.Reset()
		e.MustSubmit(&task)
		e.Schedule(0)
	}
}

// BenchmarkEmptyHierarchyScan measures Algorithm 1 over an empty queue
// hierarchy — all Algorithm-2 fast paths, no locks taken.
func BenchmarkEmptyHierarchyScan(b *testing.B) {
	e := core.New(core.Config{Topology: topology.Kwak()})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(i % 16)
	}
}

// BenchmarkSubmitPinned isolates the placement cost of Submit for the
// common case — a task pinned to a single CPU, as SubmitToIdle always
// produces. Tasks are pre-allocated and drained outside the timer, so
// the measured loop is purely Submit: state CAS, queue placement, and
// enqueue. The cached per-CPU placement table makes this path zero
// tree-walks and zero map lookups.
func BenchmarkSubmitPinned(b *testing.B) {
	topo := topology.Kwak()
	e := core.New(core.Config{Topology: topo})
	const batch = 4096
	tasks := make([]core.Task, batch)
	for i := range tasks {
		tasks[i].Fn = func(any) bool { return true }
		tasks[i].CPUSet = cpuset.New(i % topo.NCPUs)
	}
	drain := func() {
		for cpu := 0; cpu < topo.NCPUs; cpu++ {
			for e.Schedule(cpu) > 0 {
			}
		}
		for i := range tasks {
			tasks[i].Reset()
			tasks[i].CPUSet = cpuset.New(i % topo.NCPUs)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		n := batch
		if rem := b.N - i; rem < n {
			n = rem
		}
		for j := 0; j < n; j++ {
			e.MustSubmit(&tasks[j])
		}
		b.StopTimer()
		drain()
		b.StartTimer()
	}
}

// BenchmarkDrainBatch measures the consumer side of batched dequeue:
// draining a backlog of pinned tasks through Schedule. The reported
// tasks/lock-acquire metric is the average drain batch size — the factor
// by which one lock acquisition is amortized (the seed's lock-per-task
// loop pins it at 1.0).
func BenchmarkDrainBatch(b *testing.B) {
	e := core.New(core.Config{Topology: topology.Kwak()})
	const backlog = 256
	tasks := make([]core.Task, backlog)
	for i := range tasks {
		tasks[i].Fn = func(any) bool { return true }
		tasks[i].CPUSet = cpuset.New(0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := range tasks {
			tasks[j].Reset()
			e.MustSubmit(&tasks[j])
		}
		b.StartTimer()
		for drained := 0; drained < backlog; {
			drained += e.Schedule(0)
		}
	}
	b.StopTimer()
	q := e.QueueFor(cpuset.New(0))
	if drains, drained := q.DrainStats(); drains > 0 {
		b.ReportMetric(float64(drained)/float64(drains), "tasks/lock-acquire")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/backlog, "ns/task")
}

// ---- Adaptive drain batching (internal/adapt feedback) ----

// BenchmarkAdaptiveDrainBacklog drains deep pinned backlogs through an
// adaptive engine: the per-queue controller must grow the batch from
// the default 32 to its cap (reported as the batch metric), pushing
// tasks-per-lock-acquire past the fixed engine's 32.
func BenchmarkAdaptiveDrainBacklog(b *testing.B) {
	e := core.New(core.Config{Topology: topology.Kwak(), AdaptiveDrain: true})
	const backlog = 512
	tasks := make([]core.Task, backlog)
	for i := range tasks {
		tasks[i].Fn = func(any) bool { return true }
		tasks[i].CPUSet = cpuset.New(0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := range tasks {
			tasks[j].Reset()
			e.MustSubmit(&tasks[j])
		}
		b.StartTimer()
		for drained := 0; drained < backlog; {
			drained += e.Schedule(0)
		}
	}
	b.StopTimer()
	q := e.QueueFor(cpuset.New(0))
	b.ReportMetric(float64(q.DrainBatchNow()), "batch")
	if drains, drained := q.DrainStats(); drains > 0 {
		b.ReportMetric(float64(drained)/float64(drains), "tasks/lock-acquire")
	}
	b.ReportMetric(float64(e.Stats().BatchGrows), "grows")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/backlog, "ns/task")
}

// BenchmarkAdaptiveDrainScheduleOne feeds the same queue through
// latency-budgeted ScheduleOne keypoints: the controller must shrink
// the batch to 1 (the batch metric), so each keypoint's critical
// section detaches exactly the task it pays for.
func BenchmarkAdaptiveDrainScheduleOne(b *testing.B) {
	e := core.New(core.Config{Topology: topology.Kwak(), AdaptiveDrain: true})
	task := core.Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task.Reset()
		e.MustSubmit(&task)
		e.ScheduleOne(0)
	}
	b.StopTimer()
	q := e.QueueFor(cpuset.New(0))
	b.ReportMetric(float64(q.DrainBatchNow()), "batch")
	b.ReportMetric(float64(e.Stats().BatchShrinks), "shrinks")
}

// BenchmarkMPMCContended is the contended multi-producer/multi-consumer
// stress: every worker bursts tasks into the global queue (the maximal
// contention point) and then schedules until its burst completes. The
// lock-acquires/task metric counts total spinlock acquisitions on the
// global queue per executed task (the seed pays ~2: one enqueue + one
// per-task dequeue); drain-locks/task counts only the consumer side,
// which batching divides by the average batch size.
func BenchmarkMPMCContended(b *testing.B) { benchmarkMPMC(b, core.StealOff) }

// BenchmarkMPMCContendedSteal is the same balanced workload with
// full-tree stealing enabled — the no-regression guard: the global
// queue always has work, so the steal walk (which only triggers when a
// CPU's whole path is empty) must stay off the hot path and cost < 5%.
func BenchmarkMPMCContendedSteal(b *testing.B) { benchmarkMPMC(b, core.StealFullTree) }

func benchmarkMPMC(b *testing.B, policy core.StealPolicy) {
	e := core.New(core.Config{
		Topology: topology.Host(),
		Steal:    core.StealConfig{Policy: policy},
	})
	ncpu := e.Topology().NCPUs
	var workerID atomic.Int64
	const burst = 16
	b.ReportAllocs()
	// Keep the queue genuinely multi-producer/multi-consumer even on a
	// single-core host.
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cpu := int(workerID.Add(1)-1) % ncpu
		tasks := make([]core.Task, burst)
		for i := range tasks {
			tasks[i].Fn = func(any) bool { return true }
		}
		for pb.Next() {
			for i := range tasks {
				tasks[i].Reset()
				e.MustSubmit(&tasks[i])
			}
			for {
				e.Schedule(cpu)
				done := true
				for i := range tasks {
					if !tasks[i].Done() {
						done = false
						break
					}
				}
				if done {
					break
				}
			}
		}
	})
	b.StopTimer()
	st := e.Stats()
	q := e.QueueFor(cpuset.Set{})
	acq, _ := q.LockStats()
	drains, _ := q.DrainStats()
	if st.Executions > 0 {
		b.ReportMetric(float64(acq)/float64(st.Executions), "lock-acquires/task")
		b.ReportMetric(float64(drains)/float64(st.Executions), "drain-locks/task")
	}
	perCPU := make([]float64, len(st.ExecPerCPU))
	for i, n := range st.ExecPerCPU {
		perCPU[i] = float64(n)
	}
	b.ReportMetric(stats.Imbalance(perCPU), "exec-imbalance")
	mig := stats.Migration{Attempts: st.StealAttempts, Hits: st.StealHits, Tasks: st.StealTasks}
	b.ReportMetric(mig.StolenFraction(st.Executions), "stolen-frac")
}

// ---- Work stealing: imbalanced pinned-producer workload ----

// stealKeypointPeriodNS is the virtual duration of one keypoint round
// in the steal benchmarks: scheduling keypoints fire at
// context-switch/timer cadence (the paper's µs-scale budget), so a
// backlog that takes R rounds to complete has consumed R·period of
// virtual machine time. Like the Table I/II "sim-ns/task" figures, this
// keeps the metric meaningful on hosts without 8 physical cores: wall
// clock on a single-core host serializes the 8 simulated CPUs and
// cannot show parallel speedup, but rounds-to-completion can.
const stealKeypointPeriodNS = 1000

// runStealRounds is the deterministic keypoint model shared by the
// steal benchmarks: a producer pinned to CPU 0 has parked `backlog`
// unconstrained tasks on its own leaf queue (SubmitLocal), and every
// CPU then receives one scheduling keypoint (ScheduleOne) per round —
// the timer-tick/context-switch cadence of the paper's runtime stack.
// Without stealing, seven of the eight keypoints per round find an
// empty path and are wasted while CPU 0 works the backlog down alone;
// with stealing, each keypoint migrates one task. Returns the number of
// rounds taken to complete the backlog.
func runStealRounds(e *core.Engine, ncpu int, done *int, backlog int) int {
	rounds := 0
	for *done < backlog {
		for cpu := 0; cpu < ncpu; cpu++ {
			e.ScheduleOne(cpu)
		}
		rounds++
	}
	return rounds
}

func benchmarkSteal(b *testing.B, policy core.StealPolicy) {
	topo := topology.Borderline() // the paper's 8-CPU machine
	e := core.New(core.Config{
		Topology: topo,
		Steal:    core.StealConfig{Policy: policy},
	})
	const backlog = 256
	done := 0
	tasks := make([]core.Task, backlog)
	for i := range tasks {
		tasks[i].Fn = func(any) bool { done++; return true }
	}
	b.ReportAllocs()
	b.ResetTimer()
	rounds := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		done = 0
		for j := range tasks {
			tasks[j].Reset()
			if err := e.SubmitLocal(&tasks[j], 0); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		rounds += runStealRounds(e, topo.NCPUs, &done, backlog)
	}
	b.StopTimer()
	st := e.Stats()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/backlog, "ns/task")
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds")
	// Virtual-time throughput: rounds × keypoint period ÷ tasks. This is
	// the headline number — it measures how many scarce scheduling
	// keypoints the backlog consumed, independent of host parallelism.
	b.ReportMetric(float64(rounds)*stealKeypointPeriodNS/float64(b.N)/backlog, "sim-ns/task")
	mig := stats.Migration{Attempts: st.StealAttempts, Hits: st.StealHits, Tasks: st.StealTasks}
	b.ReportMetric(mig.StolenFraction(st.Executions), "stolen-frac")
	if mig.Attempts > 0 {
		b.ReportMetric(mig.HitRate(), "steal-hit-rate")
	}
	perCPU := make([]float64, len(st.ExecPerCPU))
	for i, n := range st.ExecPerCPU {
		perCPU[i] = float64(n)
	}
	b.ReportMetric(stats.Imbalance(perCPU), "exec-imbalance")
}

// BenchmarkStealNone is the imbalanced workload with stealing disabled:
// the producer's CPU works its backlog down alone, one task per
// 8-keypoint round (sim-ns/task = the full keypoint period), and seven
// of every eight keypoints are wasted on empty-path scans.
func BenchmarkStealNone(b *testing.B) { benchmarkSteal(b, core.StealOff) }

// BenchmarkStealImbalanced is the same workload with stealing enabled;
// the acceptance bar is ≥ 1.5× the BenchmarkStealNone throughput on
// the sim-ns/task metric. Siblings-only reaches one extra CPU on this
// machine (cores come in NUMA pairs, so it halves the rounds: 2×);
// full-tree reaches all eight (8×).
func BenchmarkStealImbalanced(b *testing.B) {
	b.Run("siblings", func(b *testing.B) { benchmarkSteal(b, core.StealSiblings) })
	b.Run("full-tree", func(b *testing.B) { benchmarkSteal(b, core.StealFullTree) })
}

// ---- Ablation: Algorithm 2's double-checked dequeue ----

func BenchmarkGetTask(b *testing.B) {
	for _, alwaysLock := range []bool{false, true} {
		name := "double-checked"
		if alwaysLock {
			name = "always-lock"
		}
		b.Run(name, func(b *testing.B) {
			e := core.New(core.Config{Topology: topology.Kwak(), AlwaysLock: alwaysLock})
			b.RunParallel(func(pb *testing.PB) {
				cpu := 0
				for pb.Next() {
					e.Schedule(cpu)
					cpu = (cpu + 1) % 16
				}
			})
		})
	}
}

// ---- Ablation: queue protection strategy (spinlock / mutex / lock-free) ----

func BenchmarkQueueKind(b *testing.B) {
	for _, kind := range []core.QueueKind{core.QueueSpinlock, core.QueueMutex, core.QueueLockFree} {
		b.Run(kind.String(), func(b *testing.B) {
			e := core.New(core.Config{Topology: topology.Host(), QueueKind: kind})
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				task := core.Task{Fn: func(any) bool { return true }}
				for pb.Next() {
					task.Reset()
					e.MustSubmit(&task)
					for !task.Done() {
						e.Schedule(0)
					}
				}
			})
		})
	}
}

// ---- Ablation: hierarchical queues vs. a single global list ----

// Each worker keeps a burst of pinned tasks in flight: with the
// hierarchy they sit on that core's own queue; with the single global
// list every other core's scan has to drain, skip and put back the
// whole backlog — the §III churn the hierarchy exists to avoid.
func BenchmarkHierarchyVsBigLock(b *testing.B) {
	for _, single := range []bool{false, true} {
		name := "hierarchy"
		if single {
			name = "big-lock"
		}
		b.Run(name, func(b *testing.B) {
			e := core.New(core.Config{Topology: topology.Kwak(), SingleGlobalQueue: single})
			ncpu := e.Topology().NCPUs
			var workerID atomic.Int64
			const burst = 8
			// Force several workers even on a single-core host, so the
			// big-lock variant always sees foreign pinned tasks on its
			// one global list.
			b.SetParallelism(4)
			b.RunParallel(func(pb *testing.PB) {
				cpu := int(workerID.Add(1)-1) % ncpu
				tasks := make([]core.Task, burst)
				for i := range tasks {
					tasks[i].Fn = func(any) bool { return true }
				}
				for pb.Next() {
					for i := range tasks {
						tasks[i].Reset()
						tasks[i].CPUSet = cpuset.New(cpu)
						e.MustSubmit(&tasks[i])
					}
					for i := range tasks {
						for !tasks[i].Done() {
							e.Schedule(cpu)
						}
					}
				}
			})
		})
	}
}

// ---- Ablation: zero-allocation packet-embedded tasks ----

// BenchmarkEmbeddedTaskReuse shows that reusing the task embedded in a
// packet wrapper allocates nothing on the submit path (paper §IV-B).
func BenchmarkEmbeddedTaskReuse(b *testing.B) {
	e := core.New(core.Config{Topology: topology.Host()})
	type packetWrapper struct {
		task    core.Task
		payload [256]byte
	}
	p := &packetWrapper{}
	p.task.Fn = func(any) bool { return true }
	p.task.CPUSet = cpuset.New(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.task.Reset()
		e.MustSubmit(&p.task)
		e.Schedule(0)
	}
}

// ---- Real communication stack ----

func newBenchPair(b *testing.B) (*mpi.Comm, *mpi.Comm, func()) {
	comms, engines, err := mpi.LocalCluster(2, nmad.Config{})
	if err != nil {
		b.Fatal(err)
	}
	cleanup := func() {
		for _, e := range engines {
			e.Close()
		}
	}
	return comms[0], comms[1], cleanup
}

// BenchmarkPingPongEager measures small-message round-trip latency on
// the real stack over in-process rails.
func BenchmarkPingPongEager(b *testing.B) {
	c0, c1, cleanup := newBenchPair(b)
	defer cleanup()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			data, _, err := c1.Recv(0, 1)
			if err != nil {
				return
			}
			if len(data) == 0 {
				return // stop marker
			}
			if err := c1.Send(0, 2, data); err != nil {
				return
			}
		}
	}()
	msg := []byte{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c0.Send(1, 1, msg); err != nil {
			b.Fatal(err)
		}
		if _, _, err := c0.Recv(1, 2); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = c0.Send(1, 1, nil)
	<-done
}

// BenchmarkRendezvous1MB measures large-message throughput through the
// RTS/CTS/data rendezvous on the real stack.
func BenchmarkRendezvous1MB(b *testing.B) {
	c0, c1, cleanup := newBenchPair(b)
	defer cleanup()
	payload := make([]byte, 1<<20)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			data, _, err := c1.Recv(0, 1)
			if err != nil || len(data) == 0 {
				return
			}
		}
	}()
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c0.Send(1, 1, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = c0.Send(1, 1, nil)
	<-done
}

// BenchmarkAggregationThroughput compares small-message streams with
// and without the aggregation strategy.
func BenchmarkAggregationThroughput(b *testing.B) {
	for _, strat := range []nmad.StrategyKind{nmad.StrategyDefault, nmad.StrategyAggreg} {
		name := "default"
		if strat == nmad.StrategyAggreg {
			name = "aggregation"
		}
		b.Run(name, func(b *testing.B) {
			comms, engines, err := mpi.LocalCluster(2, nmad.Config{Strategy: strat})
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				for _, e := range engines {
					e.Close()
				}
			}()
			c0, c1 := comms[0], comms[1]
			msg := make([]byte, 64)
			const batch = 32
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					// Drain one batch, then acknowledge so the sender
					// cannot outrun the receiver unboundedly.
					for j := 0; j < batch; j++ {
						if _, _, err := c1.Recv(0, 1); err != nil {
							return
						}
					}
					if err := c1.Send(0, 2, nil); err != nil {
						return
					}
				}
			}()
			reqs := make([]*mpi.Request, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range reqs {
					r, err := c0.Isend(1, 1, msg)
					if err != nil {
						b.Fatal(err)
					}
					reqs[j] = r
				}
				if err := mpi.Waitall(reqs...); err != nil {
					b.Fatal(err)
				}
				if _, _, err := c0.Recv(1, 2); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			for _, e := range engines {
				e.Close()
			}
			<-done
		})
	}
}

// BenchmarkMTLatencyRealStack is the Figure 4 workload on the real
// runtime stack: N receiver goroutines blocked in Recv while a sender
// ping-pongs with each in turn. PIOMan-style blocking waits keep
// per-message latency stable as receiver threads multiply.
func BenchmarkMTLatencyRealStack(b *testing.B) {
	for _, threads := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			c0, c1, cleanup := newBenchPair(b)
			defer cleanup()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(th int) {
					defer wg.Done()
					for {
						data, _, err := c1.Recv(0, th)
						if err != nil {
							return
						}
						if len(data) == 0 {
							return
						}
						if err := c1.Send(0, 1000+th, data); err != nil {
							return
						}
					}
				}(th)
			}
			msg := []byte{1, 2, 3, 4}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th := i % threads
				if err := c0.Send(1, th, msg); err != nil {
					b.Fatal(err)
				}
				if _, _, err := c0.Recv(1, 1000+th); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
			_ = stop
			for th := 0; th < threads; th++ {
				_ = c0.Send(1, th, nil)
			}
			wg.Wait()
		})
	}
}
