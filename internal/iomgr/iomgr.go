// Package iomgr is the paper's long-term direction (§VI): "the goal is
// to provide a generic framework able to optimize both communication
// and I/O in a scalable way". It delegates file and block I/O — and the
// data filters the paper suggests (compression, encoding, checksums) —
// to PIOMan tasks, so storage operations execute on idle cores, progress
// in scheduling holes, and overlap with computation exactly like the
// communication tasks of internal/nmad.
//
// Requests embed their task (no allocation beyond the request itself)
// and complete through the same active-wait or channel-based paths as
// nmad requests.
package iomgr

import (
	"errors"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"pioman/internal/core"
	"pioman/internal/topology"
)

// ErrClosed is returned for operations on a closed manager.
var ErrClosed = errors.New("iomgr: manager closed")

// Config parameterizes a Manager.
type Config struct {
	// Tasks is the PIOMan engine to run on; a private host-topology
	// engine with full-tree work stealing is created when nil.
	Tasks *core.Engine
	// NoAutoProgress disables the background progression goroutine (use
	// when a sched.Runtime or an nmad engine already drives the task
	// engine).
	NoAutoProgress bool
	// ProgressIdle is the background goroutine's sleep when idle
	// (default 50 µs).
	ProgressIdle time.Duration
}

// Manager executes I/O requests through PIOMan tasks.
type Manager struct {
	tasks *core.Engine
	// progressCPU is the CPU the background progression goroutine
	// scans, and the leaf locality-first submission parks requests on.
	progressCPU int
	stopped     atomic.Bool
	wg          chanWaiter

	reads, writes, filters atomic.Uint64
}

// chanWaiter is a tiny WaitGroup substitute usable with Close.
type chanWaiter struct {
	done chan struct{}
	used bool
}

// New builds a manager.
func New(cfg Config) *Manager {
	if cfg.Tasks == nil {
		// Like nmad's private engine: progression-only workload, so the
		// adaptive drain/steal controllers run unconditionally.
		cfg.Tasks = core.New(core.Config{
			Topology:      topology.Host(),
			AdaptiveDrain: true,
			Steal:         core.StealConfig{Policy: core.StealFullTree, Adaptive: true},
		})
	}
	if cfg.ProgressIdle <= 0 {
		cfg.ProgressIdle = 50 * time.Microsecond
	}
	m := &Manager{tasks: cfg.Tasks, progressCPU: 1 % cfg.Tasks.Topology().NCPUs}
	if !cfg.NoAutoProgress {
		m.wg = chanWaiter{done: make(chan struct{}), used: true}
		go func() {
			defer close(m.wg.done)
			cpu := m.progressCPU
			for !m.stopped.Load() {
				if m.tasks.Schedule(cpu) == 0 {
					m.tasks.SetIdle(cpu, true)
					time.Sleep(cfg.ProgressIdle)
					m.tasks.SetIdle(cpu, false)
				} else {
					runtime.Gosched()
				}
			}
		}()
	}
	return m
}

// Tasks exposes the underlying task engine.
func (m *Manager) Tasks() *core.Engine { return m.tasks }

// Close stops the background progression. In-flight requests still
// complete if something else schedules the engine.
func (m *Manager) Close() {
	if m.stopped.CompareAndSwap(false, true) && m.wg.used {
		<-m.wg.done
	}
}

// Stats returns (reads, writes, filter runs) submitted so far.
func (m *Manager) Stats() (reads, writes, filters uint64) {
	return m.reads.Load(), m.writes.Load(), m.filters.Load()
}

// Op identifies a request type.
type Op int

// Request operations.
const (
	OpRead Op = iota
	OpWrite
	OpFilter
)

// Request is one asynchronous I/O operation. The PIOMan task is
// embedded, mirroring nmad's packet wrapper.
type Request struct {
	task core.Task

	op  Op
	r   io.ReaderAt
	w   io.WriterAt
	fn  func() error
	buf []byte
	off int64

	n    int
	err  error
	done chan struct{}
	fin  atomic.Bool

	mgr *Manager
}

// N returns the transferred byte count (valid after Wait).
func (r *Request) N() int { return r.n }

// Done returns a channel closed at completion.
func (r *Request) Done() <-chan struct{} { return r.done }

// Test reports completion without blocking.
func (r *Request) Test() bool { return r.fin.Load() }

// Wait blocks until the request completes, helping the task engine
// meanwhile, and returns the byte count and error.
func (r *Request) Wait() (int, error) {
	for !r.fin.Load() {
		if r.mgr.tasks.Schedule(0) == 0 {
			runtime.Gosched()
		}
	}
	<-r.done // synchronizes the n/err writes
	return r.n, r.err
}

func (r *Request) finish(n int, err error) {
	r.n, r.err = n, err
	r.fin.Store(true)
	close(r.done)
}

// ioTask is the task body for every request kind.
func ioTask(arg any) bool {
	r := arg.(*Request)
	switch r.op {
	case OpRead:
		n, err := r.r.ReadAt(r.buf, r.off)
		r.finish(n, err)
	case OpWrite:
		n, err := r.w.WriteAt(r.buf, r.off)
		r.finish(n, err)
	case OpFilter:
		r.finish(0, r.fn())
	}
	return true
}

func (m *Manager) submit(r *Request) *Request {
	r.mgr = m
	r.done = make(chan struct{})
	r.task.Arg = r
	r.task.Fn = ioTask
	if m.stopped.Load() {
		r.finish(0, ErrClosed)
		return r
	}
	// Locality-first when full-tree stealing can migrate the request
	// to any scanning CPU: it parks on the progression CPU's leaf,
	// where the background goroutine runs it directly under light
	// load and an idle core steals it under imbalance. Otherwise fall
	// back to the §IV-B idle-core offload so the request is always on
	// some scanner's path.
	if m.tasks.StealReachesAll() {
		if err := m.tasks.SubmitLocal(&r.task, m.progressCPU); err != nil {
			r.finish(0, err)
		}
		return r
	}
	if err := m.tasks.SubmitToIdle(&r.task, 0); err != nil {
		r.finish(0, err)
	}
	return r
}

// ReadAt starts an asynchronous positional read into buf.
func (m *Manager) ReadAt(src io.ReaderAt, buf []byte, off int64) *Request {
	m.reads.Add(1)
	return m.submit(&Request{op: OpRead, r: src, buf: buf, off: off})
}

// WriteAt starts an asynchronous positional write of buf.
func (m *Manager) WriteAt(dst io.WriterAt, buf []byte, off int64) *Request {
	m.writes.Add(1)
	return m.submit(&Request{op: OpWrite, w: dst, buf: buf, off: off})
}

// Filter runs an arbitrary data-transformation function as a task on an
// idle core — the paper's "data filters such as data compression,
// encryption or encoding/decoding" executed off the critical path.
func (m *Manager) Filter(fn func() error) *Request {
	m.filters.Add(1)
	return m.submit(&Request{op: OpFilter, fn: fn})
}

// WaitAll waits for every request and returns the first error.
func WaitAll(reqs ...*Request) error {
	var firstErr error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
