package iomgr

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func tempFile(t *testing.T) *os.File {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "iomgr-*.dat")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestWriteThenRead(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	f := tempFile(t)

	payload := []byte("pioman moves the bytes")
	wr := m.WriteAt(f, payload, 0)
	if n, err := wr.Wait(); err != nil || n != len(payload) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}

	buf := make([]byte, len(payload))
	rd := m.ReadAt(f, buf, 0)
	if n, err := rd.Wait(); err != nil || n != len(payload) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(buf, payload) {
		t.Errorf("read %q, want %q", buf, payload)
	}
}

func TestReadAtOffset(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	f := tempFile(t)
	if _, err := m.WriteAt(f, []byte("0123456789"), 0).Wait(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := m.ReadAt(f, buf, 3).Wait(); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "3456" {
		t.Errorf("offset read = %q", buf)
	}
}

func TestReadErrorPropagates(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	f := tempFile(t)
	if _, err := m.WriteAt(f, []byte("abc"), 0).Wait(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := m.ReadAt(f, buf, 0).Wait()
	if !errors.Is(err, io.EOF) {
		t.Errorf("short read error = %v, want io.EOF", err)
	}
	if n != 3 {
		t.Errorf("short read n = %d, want 3", n)
	}
}

func TestManyConcurrentRequests(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	f := tempFile(t)
	const chunks = 64
	const sz = 512

	var writes []*Request
	for i := 0; i < chunks; i++ {
		chunk := bytes.Repeat([]byte{byte(i)}, sz)
		writes = append(writes, m.WriteAt(f, chunk, int64(i*sz)))
	}
	if err := WaitAll(writes...); err != nil {
		t.Fatal(err)
	}

	var reads []*Request
	bufs := make([][]byte, chunks)
	for i := 0; i < chunks; i++ {
		bufs[i] = make([]byte, sz)
		reads = append(reads, m.ReadAt(f, bufs[i], int64(i*sz)))
	}
	if err := WaitAll(reads...); err != nil {
		t.Fatal(err)
	}
	for i, buf := range bufs {
		for _, b := range buf {
			if b != byte(i) {
				t.Fatalf("chunk %d corrupted", i)
			}
		}
	}
	r, w, _ := m.Stats()
	if r != chunks || w != chunks {
		t.Errorf("stats = %d reads, %d writes", r, w)
	}
}

func TestIOProgressesDuringComputation(t *testing.T) {
	// The headline property applied to storage: a read completes in the
	// background while the caller computes without touching the manager.
	m := New(Config{})
	defer m.Close()
	f := tempFile(t)
	data := bytes.Repeat([]byte("x"), 1<<20)
	if _, err := m.WriteAt(f, data, 0).Wait(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	req := m.ReadAt(f, buf, 0)
	deadline := time.Now().Add(5 * time.Second)
	for !req.Test() {
		if time.Now().After(deadline) {
			t.Fatal("read made no progress during computation")
		}
		time.Sleep(time.Millisecond) // "compute"
	}
	if n, err := req.Wait(); err != nil || n != 1<<20 {
		t.Fatalf("Wait = %d, %v", n, err)
	}
}

func TestFilterTask(t *testing.T) {
	// The paper's suggested use of idle cores for data filters: gzip a
	// buffer in a task and verify round-trip.
	m := New(Config{})
	defer m.Close()
	src := bytes.Repeat([]byte("compressible content "), 1000)
	var compressed bytes.Buffer

	req := m.Filter(func() error {
		zw := gzip.NewWriter(&compressed)
		if _, err := zw.Write(src); err != nil {
			return err
		}
		return zw.Close()
	})
	if _, err := req.Wait(); err != nil {
		t.Fatal(err)
	}
	if compressed.Len() >= len(src) {
		t.Errorf("gzip grew the payload: %d >= %d", compressed.Len(), len(src))
	}

	zr, err := gzip.NewReader(&compressed)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Error("filter round-trip corrupted data")
	}
	if _, _, filters := m.Stats(); filters != 1 {
		t.Errorf("filters = %d, want 1", filters)
	}
}

func TestFilterErrorPropagates(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	boom := errors.New("boom")
	if _, err := m.Filter(func() error { return boom }).Wait(); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestCloseRejectsNewRequests(t *testing.T) {
	m := New(Config{})
	f := tempFile(t)
	m.Close()
	if _, err := m.ReadAt(f, make([]byte, 1), 0).Wait(); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestParallelWritersDisjointFiles(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	dir := t.TempDir()
	const files = 8
	var wg sync.WaitGroup
	for i := 0; i < files; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := os.Create(filepath.Join(dir, "f"+string(rune('a'+i))))
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close()
			payload := bytes.Repeat([]byte{byte(i)}, 4096)
			if _, err := m.WriteAt(f, payload, 0).Wait(); err != nil {
				t.Error(err)
				return
			}
			back := make([]byte, 4096)
			if _, err := m.ReadAt(f, back, 0).Wait(); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(back, payload) {
				t.Errorf("file %d corrupted", i)
			}
		}(i)
	}
	wg.Wait()
}

func TestSharedTaskEngineWithoutAutoProgress(t *testing.T) {
	// The generic-framework wiring: the I/O manager shares a task engine
	// that the caller schedules (here, manually).
	m := New(Config{NoAutoProgress: true})
	defer m.Close()
	f := tempFile(t)
	req := m.WriteAt(f, []byte("manual"), 0)
	// Nothing progresses on its own; Wait's active scheduling does it.
	if n, err := req.Wait(); err != nil || n != 6 {
		t.Fatalf("Wait = %d, %v", n, err)
	}
}
