// Package simmachine is a discrete-event cost model of the two NUMA
// machines used in the paper's evaluation (8-core "borderline", 16-core
// "kwak"). It substitutes for hardware we do not have: the task-scheduling
// micro-benchmark of Tables I and II is replayed against a MESI-flavoured
// cache-line model (local hits, shared-read copies, read-for-ownership
// transfers with directory occupancy and probe-retry amplification) and a
// test-and-test-and-set spinlock protocol, so contention, locality and
// NUMA arbitration effects emerge mechanistically rather than being
// hard-coded.
//
// The model simulates exactly what the paper measures: core #0 creates an
// empty task, enqueues it on a queue at a chosen topology level, every
// core in the queue's scheduling domain polls for it (Algorithm 2), one
// runs it, and core #0 notices completion. Latency constants are
// calibrated so the all-local case costs ≈700 ns, the paper's reference;
// contended costs then emerge from the protocol.
package simmachine

import (
	"fmt"

	"pioman/internal/cpuset"
	"pioman/internal/simtime"
	"pioman/internal/topology"
)

// Params holds the latency constants of the machine model. All values
// are virtual nanoseconds.
type Params struct {
	// LocalHit is a read or write hitting the core's own cache with no
	// coherence traffic.
	LocalHit simtime.Duration
	// ReadIntra / ReadCross are cache-to-cache read-miss transfers within
	// a chip and across NUMA nodes.
	ReadIntra simtime.Duration
	ReadCross simtime.Duration
	// RFOIntra / RFOCross are read-for-ownership (write/CAS) transfers,
	// including the invalidation round.
	RFOIntra simtime.Duration
	RFOCross simtime.Duration
	// RetryIntra / RetryCross amplify directory occupancy when a miss
	// arrives while the line is already busy — modelling coherence-probe
	// retries, which make CAS storms super-linear in the number of
	// contenders.
	RetryIntra simtime.Duration
	RetryCross simtime.Duration
	// OpCost is the fixed cost of a lock/unlock/dequeue ALU operation.
	OpCost simtime.Duration
	// SpinDelay is the pause between two polling iterations of an idle
	// core's dedicated poll loop.
	SpinDelay simtime.Duration
	// WaitWork is the per-attempt overhead of the submitting core's
	// active wait (a full task_schedule scan over its queue path plus a
	// scheduler yield) — much coarser than a raw spin.
	WaitWork simtime.Duration
	// SubmitFixed is the fixed cost of creating and initializing a task
	// (allocation-free, but fields must be filled).
	SubmitFixed simtime.Duration
	// CompleteFixed is the fixed cost of noticing and accounting a
	// completion.
	CompleteFixed simtime.Duration
	// JitterMax bounds the deterministic pseudo-random jitter added to
	// spin waits, which desynchronizes identical pollers the way real
	// pipelines do.
	JitterMax simtime.Duration
}

// KwakParams returns constants calibrated for the 4-socket quad-core
// Opteron 8347HE (shared L3 per chip, 4 NUMA nodes).
func KwakParams() Params {
	return Params{
		LocalHit:      5,
		ReadIntra:     12,
		ReadCross:     210,
		RFOIntra:      70,
		RFOCross:      300,
		RetryIntra:    15,
		RetryCross:    45,
		OpCost:        25,
		SpinDelay:     30,
		WaitWork:      330,
		SubmitFixed:   110,
		CompleteFixed: 90,
		JitterMax:     20,
	}
}

// BorderlineParams returns constants calibrated for the 4-socket
// dual-core Opteron 8218 (no shared L3, fast HyperTransport hops).
func BorderlineParams() Params {
	return Params{
		LocalHit:      5,
		ReadIntra:     40,
		ReadCross:     55,
		RFOIntra:      55,
		RFOCross:      70,
		RetryIntra:    45,
		RetryCross:    70,
		OpCost:        25,
		SpinDelay:     30,
		WaitWork:      330,
		SubmitFixed:   130,
		CompleteFixed: 110,
		JitterMax:     20,
	}
}

// ParamsFor returns the calibrated constants for a known machine model.
func ParamsFor(name string) (Params, error) {
	switch name {
	case "kwak":
		return KwakParams(), nil
	case "borderline":
		return BorderlineParams(), nil
	default:
		return Params{}, fmt.Errorf("simmachine: no calibrated params for machine %q", name)
	}
}

// Machine couples a topology with its latency parameters.
type Machine struct {
	Topo   *topology.Topology
	Params Params
	rng    uint64
}

// NewMachine builds a machine model.
func NewMachine(topo *topology.Topology, p Params) *Machine {
	return &Machine{Topo: topo, Params: p, rng: 0x9E3779B97F4A7C15}
}

func (m *Machine) sameNUMA(a, b int) bool {
	return m.Topo.NUMAOf[a] == m.Topo.NUMAOf[b]
}

// jitter returns a deterministic pseudo-random delay in [0, JitterMax).
func (m *Machine) jitter() simtime.Duration {
	if m.Params.JitterMax <= 0 {
		return 0
	}
	// xorshift64*: deterministic across runs, seeded per Machine.
	x := m.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	m.rng = x
	return simtime.Duration((x * 0x2545F4914F6CDD1D) >> 32 % uint64(m.Params.JitterMax))
}

// cacheLine models one contended line: the last writer owns it; readers
// hold shared copies until the next write invalidates them. nextFree is
// the line's directory occupancy horizon: misses arriving while earlier
// transactions are in flight queue behind them and pay retry
// amplification.
type cacheLine struct {
	owner    int
	sharers  cpuset.Set
	nextFree simtime.Time
}

// snoopOcc is the directory occupancy of a read miss: reads to the same
// line largely pipeline (snoop responses overlap), unlike RFOs which
// serialize for their full duration.
const snoopOcc = 20

// readCost returns the latency for core c to read the line at virtual
// time now, recording c as a sharer. Hits on a valid shared copy are
// free of coherence traffic. Read misses wait for any in-flight
// transaction but then pipeline behind each other.
func (m *Machine) readCost(l *cacheLine, c int, now simtime.Time) simtime.Duration {
	if l.owner == c || l.sharers.IsSet(c) {
		return m.Params.LocalHit
	}
	base := m.Params.ReadCross
	if m.sameNUMA(l.owner, c) {
		base = m.Params.ReadIntra
	}
	wait := simtime.Duration(0)
	if l.nextFree > now {
		wait = l.nextFree - now
	}
	l.nextFree = now + wait + snoopOcc
	l.sharers.Set(c)
	return wait + base
}

// writeCost returns the latency for core c to gain exclusive ownership
// (read-for-ownership plus invalidations) at virtual time now, and
// transfers ownership. RFOs occupy the line's directory for their full
// duration and pay a probe-retry penalty when they find it busy — that
// is what makes CAS storms expensive on shared queues. Failed
// compare-and-swap attempts pay all of this too.
func (m *Machine) writeCost(l *cacheLine, c int, now simtime.Time) simtime.Duration {
	if l.owner == c && l.sharers.IsEmpty() {
		return m.Params.LocalHit
	}
	base, retry := m.Params.RFOCross, m.Params.RetryCross
	if m.sameNUMA(l.owner, c) {
		base, retry = m.Params.RFOIntra, m.Params.RetryIntra
	}
	wait := simtime.Duration(0)
	if l.nextFree > now {
		// NACKed and retried; the longer the backlog, the more retries.
		wait = l.nextFree - now + retry
	}
	start := now + wait
	l.nextFree = start + base
	cost := wait + base
	l.owner = c
	l.sharers = cpuset.Set{}
	return cost
}
