package simmachine

import (
	"testing"

	"pioman/internal/cpuset"
	"pioman/internal/topology"
)

func kwakMachine() *Machine {
	topo := topology.Kwak()
	return NewMachine(topo, KwakParams())
}

func borderlineMachine() *Machine {
	topo := topology.Borderline()
	return NewMachine(topo, BorderlineParams())
}

const benchIters = 200

func TestParamsFor(t *testing.T) {
	for _, name := range []string{"kwak", "borderline"} {
		if _, err := ParamsFor(name); err != nil {
			t.Errorf("ParamsFor(%q): %v", name, err)
		}
	}
	if _, err := ParamsFor("unknown"); err == nil {
		t.Error("ParamsFor(unknown) should fail")
	}
}

func TestLocalPerCoreNearReference(t *testing.T) {
	// The paper's reference: submitting and scheduling locally on core #0
	// costs ≈700 ns on both machines.
	for _, m := range []*Machine{kwakMachine(), borderlineMachine()} {
		r := m.PerCoreBench(0, benchIters)
		if r.MeanNS < 600 || r.MeanNS > 900 {
			t.Errorf("%s: local per-core = %.0f ns, want ≈700 (600-900)", m.Topo.Name, r.MeanNS)
		}
		if r.ExecPerCore[0] != benchIters {
			t.Errorf("%s: local tasks executed by %v, want all on core 0", m.Topo.Name, r.ExecPerCore)
		}
	}
}

func TestSiblingPerCoreNegligibleOverhead(t *testing.T) {
	// Paper: per-core queue latency is "roughly constant" across cores,
	// with siblings of core 0 close to the local cost.
	m := kwakMachine()
	local := m.PerCoreBench(0, benchIters).MeanNS
	for _, cpu := range []int{1, 2, 3} {
		r := m.PerCoreBench(cpu, benchIters)
		if r.MeanNS > local*1.25 {
			t.Errorf("kwak sibling core %d = %.0f ns vs local %.0f: overhead should be small", cpu, r.MeanNS, local)
		}
		if r.ExecPerCore[cpu] != benchIters {
			t.Errorf("kwak: tasks for core %d ran elsewhere: %v", cpu, r.ExecPerCore)
		}
	}
}

func TestRemotePerCoreNUMAOverhead(t *testing.T) {
	// Paper Table II: remote per-core queues on kwak cost ≈1 µs more than
	// local (one NUMA round trip each way); on borderline ≈100 ns more.
	kw := kwakMachine()
	local := kw.PerCoreBench(0, benchIters).MeanNS
	remote := kw.PerCoreBench(8, benchIters).MeanNS
	overhead := remote - local
	if overhead < 600 || overhead > 1500 {
		t.Errorf("kwak remote overhead = %.0f ns, want ≈1µs (600-1500)", overhead)
	}

	bl := borderlineMachine()
	blLocal := bl.PerCoreBench(0, benchIters).MeanNS
	blRemote := bl.PerCoreBench(4, benchIters).MeanNS
	blOverhead := blRemote - blLocal
	if blOverhead < -120 || blOverhead > 300 {
		t.Errorf("borderline remote overhead = %.0f ns, want ≈100 ns (<300)", blOverhead)
	}
	// Cross-machine shape: kwak's NUMA hops are far more expensive.
	if overhead < 2*blOverhead {
		t.Errorf("kwak remote overhead (%.0f) should dwarf borderline's (%.0f)", overhead, blOverhead)
	}
}

func TestPerCoreRoughlyConstantAcrossRemoteCores(t *testing.T) {
	m := kwakMachine()
	var lo, hi float64
	for cpu := 4; cpu < 16; cpu++ {
		v := m.PerCoreBench(cpu, 100).MeanNS
		if lo == 0 || v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > lo*1.2 {
		t.Errorf("remote per-core spread too wide: %.0f..%.0f", lo, hi)
	}
}

func TestPerChipSlowerThanPerCore(t *testing.T) {
	// Contention on a shared per-chip queue must cost more than a
	// single-consumer per-core queue in the same place.
	kw := kwakMachine()
	perCoreRemote := kw.PerCoreBench(4, benchIters).MeanNS
	perChipRemote := kw.PerChipBench(1, benchIters).MeanNS
	if perChipRemote <= perCoreRemote {
		t.Errorf("kwak: per-chip (%.0f) should exceed per-core (%.0f) on the same node",
			perChipRemote, perCoreRemote)
	}

	bl := borderlineMachine()
	blPerCore := bl.PerCoreBench(2, benchIters).MeanNS
	blPerChip := bl.PerChipBench(1, benchIters).MeanNS
	if blPerChip <= blPerCore {
		t.Errorf("borderline: per-chip (%.0f) should exceed per-core (%.0f)", blPerChip, blPerCore)
	}
}

func TestPerChipDistributionBalanced(t *testing.T) {
	// Paper: "tasks are equally processed by each core within a NUMA
	// node" — roughly 25 % each on kwak's remote chips.
	m := kwakMachine()
	r := m.PerChipBench(1, 400)
	total := 0
	for cpu := 4; cpu < 8; cpu++ {
		total += r.ExecPerCore[cpu]
	}
	if total != 400 {
		t.Fatalf("chip 1 executed %d of 400 tasks", total)
	}
	for cpu := 4; cpu < 8; cpu++ {
		share := float64(r.ExecPerCore[cpu]) / 400
		if share < 0.10 || share > 0.45 {
			t.Errorf("core %d share = %.0f%%, want roughly balanced (10-45%%)", cpu, share*100)
		}
	}
}

func TestGlobalQueueBlowsUp(t *testing.T) {
	// Paper: ≈4.7 µs on 8 cores, ≈13.5 µs on 16; far above per-chip.
	kw := kwakMachine()
	kwGlobal := kw.GlobalBench(benchIters).MeanNS
	if kwGlobal < 8000 || kwGlobal > 22000 {
		t.Errorf("kwak global = %.0f ns, want ≈13.5µs (8-22µs)", kwGlobal)
	}
	kwChip := kw.PerChipBench(1, benchIters).MeanNS
	if kwGlobal < 2.5*kwChip {
		t.Errorf("kwak global (%.0f) should dominate per-chip (%.0f)", kwGlobal, kwChip)
	}

	bl := borderlineMachine()
	blGlobal := bl.GlobalBench(benchIters).MeanNS
	if blGlobal < 2500 || blGlobal > 8000 {
		t.Errorf("borderline global = %.0f ns, want ≈4.7µs (2.5-8µs)", blGlobal)
	}
	// Growth with core count: 16 cores must be markedly worse than 8.
	if kwGlobal < 1.8*blGlobal {
		t.Errorf("global cost should grow quickly with cores: 16-core %.0f vs 8-core %.0f",
			kwGlobal, blGlobal)
	}
}

func TestGlobalDistributionUnbalanced(t *testing.T) {
	// Paper: "the distribution of tasks execution across the cores shows
	// it is unbalanced: most of the tasks are executed by cores located
	// on [one] NUMA node" — the spinlock is re-acquired fastest by cores
	// of the NUMA node that last held it.
	m := kwakMachine()
	r := m.GlobalBench(400)
	perNode := make([]int, 4)
	for cpu, n := range r.ExecPerCore {
		perNode[m.Topo.NUMAOf[cpu]] += n
	}
	maxNode, maxVal := 0, 0
	total := 0
	for node, v := range perNode {
		total += v
		if v > maxVal {
			maxNode, maxVal = node, v
		}
	}
	if total != 400 {
		t.Fatalf("executed %d of 400 tasks (%v)", total, perNode)
	}
	if share := float64(maxVal) / float64(total); share < 0.5 {
		t.Errorf("global distribution not unbalanced: node %d has %.0f%% (%v)", maxNode, share*100, perNode)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := kwakMachine().GlobalBench(100)
	b := kwakMachine().GlobalBench(100)
	if a.MeanNS != b.MeanNS {
		t.Errorf("simulation not deterministic: %.2f vs %.2f", a.MeanNS, b.MeanNS)
	}
	for i := range a.ExecPerCore {
		if a.ExecPerCore[i] != b.ExecPerCore[i] {
			t.Errorf("distributions diverge at core %d", i)
			break
		}
	}
}

func TestEveryTaskExecutedExactlyOnce(t *testing.T) {
	m := kwakMachine()
	for _, r := range []BenchResult{
		m.PerCoreBench(5, 123),
		m.PerChipBench(2, 123),
		m.GlobalBench(123),
	} {
		total := 0
		for _, n := range r.ExecPerCore {
			total += n
		}
		if total != 123 {
			t.Errorf("executed %d tasks, want 123", total)
		}
	}
}

func TestTasksRunOnlyInDomain(t *testing.T) {
	m := kwakMachine()
	domain := cpuset.NewRange(8, 11)
	r := m.TaskSchedBench(domain, 100)
	for cpu, n := range r.ExecPerCore {
		if n > 0 && !domain.IsSet(cpu) {
			t.Errorf("core %d outside domain executed %d tasks", cpu, n)
		}
	}
}

func TestJitterDeterministicSequence(t *testing.T) {
	m1 := kwakMachine()
	m2 := kwakMachine()
	for i := 0; i < 100; i++ {
		if m1.jitter() != m2.jitter() {
			t.Fatal("jitter sequences diverge between identical machines")
		}
	}
}

func TestZeroItersClamped(t *testing.T) {
	m := borderlineMachine()
	r := m.TaskSchedBench(cpuset.New(0), 0)
	if r.MeanNS <= 0 {
		t.Error("zero iters should clamp to one task")
	}
}
