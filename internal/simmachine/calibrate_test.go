package simmachine

import (
	"fmt"
	"testing"

	"pioman/internal/topology"
)

// TestPrintCalibration prints the simulated Table I/II cells so the
// latency constants can be compared against the paper during
// development. Run with -v to see the values.
func TestPrintCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration dump")
	}
	for _, name := range []string{"borderline", "kwak"} {
		topo, _ := topology.ByName(name)
		par, _ := ParamsFor(name)
		m := NewMachine(topo, par)
		fmt.Printf("== %s ==\n", name)
		row := "per-core: "
		for cpu := 0; cpu < topo.NCPUs; cpu++ {
			r := m.PerCoreBench(cpu, 300)
			row += fmt.Sprintf("%.0f ", r.MeanNS)
		}
		fmt.Println(row)
		row = "per-chip: "
		for chip := 0; chip < 4; chip++ {
			r := m.PerChipBench(chip, 300)
			row += fmt.Sprintf("%.0f ", r.MeanNS)
		}
		fmt.Println(row)
		g := m.GlobalBench(300)
		fmt.Printf("global: %.0f  distribution=%v\n", g.MeanNS, g.ExecPerCore)
	}
}
