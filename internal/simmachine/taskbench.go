package simmachine

import (
	"fmt"

	"pioman/internal/cpuset"
	"pioman/internal/simtime"
)

// BenchResult reports one simulated task-scheduling micro-benchmark run
// (one cell of Table I / Table II).
type BenchResult struct {
	// MeanNS is the mean virtual time from task creation on core #0 to
	// completion notice, in nanoseconds.
	MeanNS float64
	// ExecPerCore counts how many of the tasks each core executed —
	// the distribution the paper analyses for per-chip (≈25 % each) and
	// global (NUMA-unbalanced) queues.
	ExecPerCore []int
	// Iters is the number of tasks scheduled.
	Iters int
}

// sharedState is the contended state of one benchmark run. The queue's
// spinlock, list head and element count live in one structure — hence
// one cache line (lqLine), exactly like PIOMan's piom_ltask_queue. The
// completion flag lives in the task structure — a second line (doneLine).
type sharedState struct {
	m *Machine

	lockHeld   bool
	queueCount int
	lqLine     cacheLine

	doneFlag bool
	doneLine cacheLine

	stop bool

	execPerCore []int
}

// acquire implements a test-and-test-and-set acquisition for core c.
// Returns false if the benchmark stopped while spinning.
func (st *sharedState) acquire(p *simtime.Proc, c int) bool {
	m := st.m
	for {
		if st.stop {
			return false
		}
		// Test: spin on a shared copy until the lock looks free.
		p.Sleep(m.readCost(&st.lqLine, c, p.Now()))
		if st.lockHeld {
			p.Sleep(m.Params.SpinDelay + m.jitter())
			continue
		}
		// Test-and-set: read-for-ownership plus the CAS itself. Ownership
		// moves to c even if the CAS loses the race.
		p.Sleep(m.writeCost(&st.lqLine, c, p.Now()) + m.Params.OpCost)
		if st.lockHeld {
			continue // lost the race; the line bounced for nothing
		}
		st.lockHeld = true
		return true
	}
}

// release frees the lock (write on the queue line).
func (st *sharedState) release(p *simtime.Proc, c int) {
	p.Sleep(st.m.writeCost(&st.lqLine, c, p.Now()) + st.m.Params.OpCost)
	st.lockHeld = false
}

// pollOnce runs one polling iteration of core c: the unlocked emptiness
// check of Algorithm 2 and, when work is visible, lock + re-check +
// dequeue + run + completion write. Returns whether a task was executed.
func (st *sharedState) pollOnce(p *simtime.Proc, c int) bool {
	m := st.m
	// Unlocked notempty() — the double-checked fast path.
	p.Sleep(m.readCost(&st.lqLine, c, p.Now()))
	if st.queueCount == 0 {
		return false
	}
	if !st.acquire(p, c) {
		return false
	}
	// Locked re-check and dequeue (the lock CAS already owns the line).
	p.Sleep(m.Params.OpCost)
	got := false
	if st.queueCount > 0 {
		st.queueCount--
		got = true
		p.Sleep(m.writeCost(&st.lqLine, c, p.Now()))
	}
	st.release(p, c)
	if got {
		// Empty task body (zero work), then completion notification on
		// the task's own line.
		st.execPerCore[c]++
		p.Sleep(m.writeCost(&st.doneLine, c, p.Now()) + m.Params.OpCost)
		st.doneFlag = true
	}
	return got
}

// TaskSchedBench reproduces the paper's §V-A micro-benchmark: iters empty
// tasks are created by core #0 and placed on the queue whose scheduling
// domain is `domain`; every core of the domain polls; core #0 waits for
// each completion before submitting the next task. When core #0 itself
// belongs to the domain it waits actively — running task_schedule scans
// of its own queue path between completion checks, like PIOMan's
// task_wait — otherwise it spins on the completion flag.
func (m *Machine) TaskSchedBench(domain cpuset.Set, iters int) BenchResult {
	if iters <= 0 {
		iters = 1
	}
	sim := simtime.New()
	defer sim.Close()

	st := &sharedState{m: m, execPerCore: make([]int, m.Topo.NCPUs)}
	// Lines start owned by core 0 (it initialized the structures).
	st.lqLine.owner = 0
	st.doneLine.owner = 0

	submitterInDomain := domain.IsSet(0)

	// Pollers: every domain core except the submitter runs the idle-core
	// polling loop.
	domain.ForEach(func(c int) bool {
		if c == 0 {
			return true
		}
		sim.Spawn(fmt.Sprintf("poller-%d", c), func(p *simtime.Proc) {
			for !st.stop {
				if !st.pollOnce(p, c) {
					p.Sleep(m.Params.SpinDelay + m.jitter())
				}
			}
		})
		return true
	})

	var total simtime.Duration
	sim.Spawn("submitter", func(p *simtime.Proc) {
		for i := 0; i < iters; i++ {
			start := p.Now()
			// Create and initialize the task (no allocation, fixed cost).
			p.Sleep(m.Params.SubmitFixed)
			// Enqueue under the queue lock.
			if !st.acquire(p, 0) {
				break
			}
			st.queueCount++
			p.Sleep(m.Params.OpCost) // list insert; line already owned
			st.release(p, 0)
			// Wait for completion.
			for !st.doneFlag {
				if submitterInDomain {
					// Active wait: a full task_schedule pass over the
					// local queue path plus a scheduler yield, then one
					// poll of the shared queue.
					p.Sleep(m.Params.WaitWork + m.jitter())
					if !st.doneFlag {
						st.pollOnce(p, 0)
					}
				} else {
					p.Sleep(m.readCost(&st.doneLine, 0, p.Now()))
					if !st.doneFlag {
						p.Sleep(m.Params.SpinDelay + m.jitter())
					}
				}
			}
			// Consume the completion and account for it.
			p.Sleep(m.Params.CompleteFixed)
			st.doneFlag = false
			total += p.Now() - start
		}
		st.stop = true
	})

	sim.Run()

	executed := 0
	for _, n := range st.execPerCore {
		executed += n
	}
	return BenchResult{
		MeanNS:      float64(total) / float64(iters),
		ExecPerCore: st.execPerCore,
		Iters:       executed,
	}
}

// PerCoreBench runs the micro-benchmark against the per-core queue of
// the given CPU.
func (m *Machine) PerCoreBench(cpu, iters int) BenchResult {
	return m.TaskSchedBench(cpuset.New(cpu), iters)
}

// PerChipBench runs the micro-benchmark against the queue of the chip
// (NUMA node) with the given index.
func (m *Machine) PerChipBench(chip, iters int) BenchResult {
	var domain cpuset.Set
	for cpu := 0; cpu < m.Topo.NCPUs; cpu++ {
		if m.Topo.NUMAOf[cpu] == chip {
			domain.Set(cpu)
		}
	}
	return m.TaskSchedBench(domain, iters)
}

// GlobalBench runs the micro-benchmark against the global queue.
func (m *Machine) GlobalBench(iters int) BenchResult {
	return m.TaskSchedBench(cpuset.NewRange(0, m.Topo.NCPUs-1), iters)
}
