// Package trace is the engine flight recorder: a fixed-size,
// lock-free, per-ring buffer of scheduling and protocol events that is
// cheap enough to leave compiled into the hot paths and free when not
// attached (every hook is a single nil pointer check).
//
// The recorder is deliberately a leaf package — it imports only the
// standard library — so that core, nmad, and cluster can all hold a
// *Recorder without creating an import cycle with the observability
// server (internal/obs) that drains it.
//
// Writers publish with a seqlock-style per-slot sequence: a slot's
// sequence is zeroed while its fields are being written and set to
// position+1 once the event is complete, so a concurrent drain can
// detect and skip torn slots instead of blocking writers. Under
// extreme wraparound races (two writers a full lap apart landing on
// the same slot) a drained event may mix fields from both; the
// recorder is a diagnostic surface, not a ledger, and trades that
// vanishing window for zero locks on the record path.
//
// # Spans
//
// Beyond instant events, the recorder carries message-lifecycle spans:
// begin/end kind pairs whose A payload is a SpanID — a packed
// (node, peer, direction, aux, msgID) identity that is stable across
// engines, so the sender's and receiver's halves of one message
// correlate in a merged drain. Span events are ordinary ring entries
// (same cost, same wraparound), and WriteTrace renders them as
// chrome://tracing async "b"/"e" pairs so Perfetto draws message
// lifetimes as bars. Reconstruction and phase attribution live in
// trace/analyze.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Kind identifies the engine event a slot records.
type Kind uint32

// Event kinds. The A/B payload meaning depends on the kind; see each
// constant's comment. Rings are sharded by origin: core records under
// the executing CPU index, nmad under the gate id.
//
// Span kinds (EvSendBegin onward) come in begin/end pairs; their A
// payload is always a SpanID so both halves of a pair — and the
// sender- and receiver-side spans of one message — correlate in a
// merged drain.
const (
	// EvTaskRun is a task dispatch on a CPU: A = the task's cumulative
	// run count, B = queue wait in clock units (submit→dispatch) when
	// the engine stamps submit times, else 0.
	EvTaskRun Kind = iota
	// EvTaskSteal is a successful steal: A = victim CPU, B = tasks
	// migrated in the drain.
	EvTaskSteal
	// EvRdvRTS is an inbound rendezvous request-to-send: A = span id,
	// B = total message bytes.
	EvRdvRTS
	// EvRdvCTS is an inbound clear-to-send: A = span id, B unused.
	EvRdvCTS
	// EvRdvFin is an inbound rendezvous completion: A = span id,
	// B unused.
	EvRdvFin
	// EvRetransmit is a rendezvous control retransmission after a
	// timeout: A = span id, B = retry ordinal.
	EvRetransmit
	// EvEagerRetry is an eager frame retransmission: A = span id,
	// B = retry ordinal.
	EvEagerRetry
	// EvTimeout is a transfer failed permanently after exhausting
	// retries: A = span id, B = path (0 rendezvous send, 1 rendezvous
	// receive, 2 eager).
	EvTimeout
	// EvRailDeath is a rail marked dead: A = rail index, B = live
	// rails remaining on the gate.
	EvRailDeath
	// EvShed is a submission refused by admission control: A = payload
	// bytes, B = reason (0 budget reject, 1 degraded-mode shed, 2 wait
	// queue full, 3 blocked wait expired).
	EvShed
	// EvDegrade is an admission scope crossing a watermark: A = 1
	// entering degraded mode, 0 recovering; B = in-flight payload
	// bytes at the transition.
	EvDegrade

	// EvSendBegin opens a sender-side whole-message span at Isend:
	// A = span id, B = message bytes.
	EvSendBegin
	// EvSendEnd closes the sender-side whole-message span at request
	// completion: A = span id, B = 0 on success, 1 on error.
	EvSendEnd
	// EvRecvBegin opens a receiver-side whole-message span. It is
	// recorded at match time but stamped with the Irecv post
	// timestamp (RecordAt), because the message id is unknown until
	// the first frame matches: A = span id, B = message bytes.
	EvRecvBegin
	// EvRecvEnd closes the receiver-side whole-message span at request
	// completion: A = span id, B = 0 on success, 1 on error.
	EvRecvEnd
	// EvMatchBegin opens the receiver's match-wait phase (Irecv post →
	// first matching frame). Like EvRecvBegin it is recorded at match
	// time with the post timestamp: A = span id, B = 0.
	EvMatchBegin
	// EvMatchEnd closes the match-wait phase at match time: A = span
	// id, B = 0.
	EvMatchEnd
	// EvHandshakeBegin opens the rendezvous handshake phase. Sender
	// side: RTS sent → CTS received (push) or → FIN received (pull,
	// where the handshake span covers the whole remote pull): A = span
	// id, B = message bytes.
	EvHandshakeBegin
	// EvHandshakeEnd closes the handshake phase: A = span id, B = 0 on
	// success, 1 on error.
	EvHandshakeEnd
	// EvTransferBegin opens the data-movement phase: sender push
	// (CTS → last fragment on the wire) or receiver pull (match → all
	// chunks landed): A = span id, B = bytes moved in the phase.
	EvTransferBegin
	// EvTransferEnd closes the data-movement phase: A = span id,
	// B = 0 on success, 1 on error.
	EvTransferEnd
	// EvChunkBegin opens one chunk of a striped transfer; the span
	// id's aux field is the chunk ordinal: A = span id, B = chunk
	// bytes.
	EvChunkBegin
	// EvChunkEnd closes one chunk: A = span id, B = 0 on success, 1 on
	// error.
	EvChunkEnd
	// EvInjectBegin opens the eager injection phase (Isend → frame on
	// the wire): A = span id, B = message bytes.
	EvInjectBegin
	// EvInjectEnd closes the injection phase: A = span id, B = 0 on
	// success, 1 on error.
	EvInjectEnd
	// EvAckWaitBegin opens the eager ack-wait phase (frame on the wire
	// → ack received): A = span id, B = 0.
	EvAckWaitBegin
	// EvAckWaitEnd closes the ack-wait phase: A = span id, B = 0 on
	// success, 1 on error.
	EvAckWaitEnd

	numKinds
)

// firstSpanKind is the first begin/end span kind; every kind from here
// to numKinds is part of a begin/end pair, begins on even offsets.
const firstSpanKind = EvSendBegin

// kindNames maps each kind to its chrome://tracing event name, hoisted
// to package scope so String() (called once per event in WriteTrace)
// doesn't rebuild the table per call.
var kindNames = [...]string{
	EvTaskRun:        "task-run",
	EvTaskSteal:      "task-steal",
	EvRdvRTS:         "rdv-rts",
	EvRdvCTS:         "rdv-cts",
	EvRdvFin:         "rdv-fin",
	EvRetransmit:     "retransmit",
	EvEagerRetry:     "eager-retry",
	EvTimeout:        "timeout",
	EvRailDeath:      "rail-death",
	EvShed:           "shed",
	EvDegrade:        "degrade",
	EvSendBegin:      "send-begin",
	EvSendEnd:        "send-end",
	EvRecvBegin:      "recv-begin",
	EvRecvEnd:        "recv-end",
	EvMatchBegin:     "match-begin",
	EvMatchEnd:       "match-end",
	EvHandshakeBegin: "handshake-begin",
	EvHandshakeEnd:   "handshake-end",
	EvTransferBegin:  "transfer-begin",
	EvTransferEnd:    "transfer-end",
	EvChunkBegin:     "chunk-begin",
	EvChunkEnd:       "chunk-end",
	EvInjectBegin:    "inject-begin",
	EvInjectEnd:      "inject-end",
	EvAckWaitBegin:   "ackwait-begin",
	EvAckWaitEnd:     "ackwait-end",
}

// spanNames maps each span kind to its phase name — the chrome "name"
// shared by both halves of a begin/end pair.
var spanNames = [...]string{
	EvSendBegin:      "send",
	EvSendEnd:        "send",
	EvRecvBegin:      "recv",
	EvRecvEnd:        "recv",
	EvMatchBegin:     "match",
	EvMatchEnd:       "match",
	EvHandshakeBegin: "handshake",
	EvHandshakeEnd:   "handshake",
	EvTransferBegin:  "transfer",
	EvTransferEnd:    "transfer",
	EvChunkBegin:     "chunk",
	EvChunkEnd:       "chunk",
	EvInjectBegin:    "inject",
	EvInjectEnd:      "inject",
	EvAckWaitBegin:   "ackwait",
	EvAckWaitEnd:     "ackwait",
}

// String returns the chrome://tracing event name for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// IsSpan reports whether the kind is half of a begin/end span pair.
func (k Kind) IsSpan() bool {
	return k >= firstSpanKind && k < numKinds
}

// IsBegin reports whether the kind opens a span.
func (k Kind) IsBegin() bool {
	return k.IsSpan() && (k-firstSpanKind)%2 == 0
}

// IsEnd reports whether the kind closes a span.
func (k Kind) IsEnd() bool {
	return k.IsSpan() && (k-firstSpanKind)%2 == 1
}

// SpanName returns the phase name shared by both halves of a span pair
// ("send", "handshake", ...), or "" for non-span kinds.
func (k Kind) SpanName() string {
	if k.IsSpan() {
		return spanNames[k]
	}
	return ""
}

// BeginKind returns the opening half of the kind's span pair; the kind
// itself if it is already a begin or not a span.
func (k Kind) BeginKind() Kind {
	if k.IsEnd() {
		return k - 1
	}
	return k
}

// SpanID packing: a span's identity is stable across engines so the
// sender's and receiver's halves of one message correlate. Layout,
// high to low: node 11 bits | peer 11 bits | direction 1 bit |
// aux 8 bits | msgID 33 bits. node/peer are harness-assigned trace
// node ids (cluster node index, or the local gate id when standalone);
// direction is 0 for the sending side, 1 for the receiving side; aux
// carries the chunk ordinal on chunk spans (0 elsewhere); msgID is the
// sender-assigned per-gate message id, truncated to 33 bits.
const (
	spanMsgBits  = 33
	spanAuxBits  = 8
	spanNodeBits = 11

	spanMsgMask  = 1<<spanMsgBits - 1
	spanAuxMask  = 1<<spanAuxBits - 1
	spanNodeMask = 1<<spanNodeBits - 1

	spanAuxShift  = spanMsgBits
	spanDirShift  = spanAuxShift + spanAuxBits
	spanPeerShift = spanDirShift + 1
	spanNodeShift = spanPeerShift + spanNodeBits
)

// Span directions for PackSpanID.
const (
	// DirSend marks a span recorded on the sending side.
	DirSend uint64 = 0
	// DirRecv marks a span recorded on the receiving side.
	DirRecv uint64 = 1
)

// PackSpanID packs a span identity; see the SpanID layout comment.
func PackSpanID(node, peer int, dir uint64, aux uint8, msgID uint64) uint64 {
	return uint64(node)&spanNodeMask<<spanNodeShift |
		uint64(peer)&spanNodeMask<<spanPeerShift |
		dir&1<<spanDirShift |
		uint64(aux)<<spanAuxShift |
		msgID&spanMsgMask
}

// SpanNode returns the recording side's trace node id.
func SpanNode(id uint64) int { return int(id >> spanNodeShift & spanNodeMask) }

// SpanPeer returns the remote side's trace node id.
func SpanPeer(id uint64) int { return int(id >> spanPeerShift & spanNodeMask) }

// SpanDir returns DirSend or DirRecv.
func SpanDir(id uint64) uint64 { return id >> spanDirShift & 1 }

// SpanAux returns the aux byte (chunk ordinal on chunk spans).
func SpanAux(id uint64) uint8 { return uint8(id >> spanAuxShift & spanAuxMask) }

// SpanMsgID returns the sender-assigned message id (33 bits).
func SpanMsgID(id uint64) uint64 { return id & spanMsgMask }

// SpanMsgKey collapses a span id to its message identity — the
// (sender node, receiver node, msgID) triple, direction- and
// aux-independent — so the sender- and receiver-side spans of one
// message share a key.
func SpanMsgKey(id uint64) uint64 {
	src, dst := SpanNode(id), SpanPeer(id)
	if SpanDir(id) == DirRecv {
		src, dst = dst, src
	}
	return uint64(src)<<(spanNodeBits+spanMsgBits) | uint64(dst)<<spanMsgBits | SpanMsgID(id)
}

// Event is one drained flight-recorder entry.
type Event struct {
	// TS is the clock stamp in the recorder's clock units
	// (nanoseconds of wall or virtual time).
	TS int64
	// Ring is the ring the event was recorded under (CPU or gate id,
	// clamped modulo the ring count).
	Ring int
	// Kind identifies the event.
	Kind Kind
	// A and B are the kind-specific payload (see the Kind constants).
	A, B uint64
}

// slot is one ring entry. Every field is atomic so a drain racing a
// record is a skipped or torn-detected slot, never a data race.
type slot struct {
	seq  atomic.Uint64 // 0 while being written, position+1 once published
	ts   atomic.Int64
	kind atomic.Uint32
	a    atomic.Uint64
	b    atomic.Uint64
}

// ring is one independently-positioned event buffer.
type ring struct {
	pos   atomic.Uint64
	slots []slot
	mask  uint64
}

// Recorder is the flight recorder. The zero value is not usable; use
// New. A nil *Recorder is safe to Record on (a no-op), which is what
// makes the disabled path free: engines hold the pointer and hot paths
// guard with a single nil check.
type Recorder struct {
	rings []ring
	clock atomic.Pointer[func() int64]
}

// New builds a recorder with the given number of rings, each holding
// capacity events (rounded up to a power of two, minimum 64). rings is
// clamped to at least 1. clock stamps events; nil means wall-clock
// nanoseconds.
func New(rings, capacity int, clock func() int64) *Recorder {
	if rings < 1 {
		rings = 1
	}
	if capacity < 64 {
		capacity = 64
	}
	capacity = 1 << bits.Len(uint(capacity-1))
	r := &Recorder{rings: make([]ring, rings)}
	for i := range r.rings {
		r.rings[i].slots = make([]slot, capacity)
		r.rings[i].mask = uint64(capacity - 1)
	}
	if clock == nil {
		clock = func() int64 { return time.Now().UnixNano() }
	}
	r.clock.Store(&clock)
	return r
}

// SetClock repoints the recorder's timestamp source; the cluster
// harness uses this to stamp events on the fabric's virtual clock so a
// drained trace lines up with the scenario's modelled time.
func (r *Recorder) SetClock(clock func() int64) {
	if clock == nil {
		clock = func() int64 { return time.Now().UnixNano() }
	}
	r.clock.Store(&clock)
}

// Now reads the recorder's clock: the stamp Record would use. Hooks
// that need to remember a phase start (to emit later via RecordAt)
// read it here so the span lands on the same timeline. Returns 0 on a
// nil receiver.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return (*r.clock.Load())()
}

// Record appends one event to the given ring (clamped modulo the ring
// count), overwriting the oldest entry when the ring is full. Safe for
// concurrent use and safe on a nil receiver, where it is a no-op.
func (r *Recorder) Record(ringIdx int, k Kind, a, b uint64) {
	if r == nil {
		return
	}
	r.record(ringIdx, k, a, b, (*r.clock.Load())())
}

// RecordAt appends one event carrying a caller-supplied timestamp
// instead of sampling the clock — the hook for span begins whose true
// start (an Irecv post, a task submit) predates the moment the span's
// identity becomes known. Safe on a nil receiver.
func (r *Recorder) RecordAt(ringIdx int, k Kind, a, b uint64, ts int64) {
	if r == nil {
		return
	}
	r.record(ringIdx, k, a, b, ts)
}

// record is the shared append path.
func (r *Recorder) record(ringIdx int, k Kind, a, b uint64, ts int64) {
	rg := &r.rings[uint(ringIdx)%uint(len(r.rings))]
	pos := rg.pos.Add(1) - 1
	s := &rg.slots[pos&rg.mask]
	s.seq.Store(0)
	s.ts.Store(ts)
	s.kind.Store(uint32(k))
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(pos + 1)
}

// Recorded returns the total number of events ever recorded across all
// rings (including ones since overwritten).
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for i := range r.rings {
		n += r.rings[i].pos.Load()
	}
	return n
}

// RingStat is one ring's append/loss accounting.
type RingStat struct {
	// Recorded is the total events ever appended to the ring.
	Recorded uint64
	// Dropped is how many of those have been overwritten by
	// wraparound — Recorded minus the ring's capacity once it wraps.
	// A drain that matters (trace analysis, CI artifacts) should check
	// this is 0, or treat the trace as truncated.
	Dropped uint64
}

// RingStats returns per-ring append and overwrite counts, the loss
// visibility that makes a truncated trace detectable instead of
// silently partial. Nil receiver returns nil.
func (r *Recorder) RingStats() []RingStat {
	if r == nil {
		return nil
	}
	out := make([]RingStat, len(r.rings))
	for i := range r.rings {
		pos := r.rings[i].pos.Load()
		out[i].Recorded = pos
		if c := uint64(len(r.rings[i].slots)); pos > c {
			out[i].Dropped = pos - c
		}
	}
	return out
}

// Mark is a per-ring position snapshot; EventsSince(mark) drains only
// events recorded after it was taken. The cluster harness marks
// between scenarios to slice one shared recorder per scenario.
type Mark []uint64

// Mark snapshots every ring's position. Nil receiver returns nil.
func (r *Recorder) Mark() Mark {
	if r == nil {
		return nil
	}
	m := make(Mark, len(r.rings))
	for i := range r.rings {
		m[i] = r.rings[i].pos.Load()
	}
	return m
}

// Events drains a consistent best-effort snapshot of every ring,
// skipping slots that are mid-write, and returns the events sorted by
// (timestamp, ring, ring order). The recorder keeps recording; drained
// events are not removed.
func (r *Recorder) Events() []Event {
	return r.EventsSince(nil)
}

// EventsSince drains like Events but skips events recorded at or
// before the mark (a nil or short mark means from the beginning).
// Events the mark references that have since been overwritten are
// gone either way; RingStats exposes the loss.
func (r *Recorder) EventsSince(m Mark) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for ri := range r.rings {
		rg := &r.rings[ri]
		pos := rg.pos.Load()
		start := uint64(0)
		if ri < len(m) {
			start = m[ri]
		}
		if pos > uint64(len(rg.slots)) && start < pos-uint64(len(rg.slots)) {
			start = pos - uint64(len(rg.slots))
		}
		for p := start; p < pos; p++ {
			s := &rg.slots[p&rg.mask]
			if s.seq.Load() != p+1 {
				continue
			}
			ev := Event{TS: s.ts.Load(), Ring: ri, Kind: Kind(s.kind.Load()), A: s.a.Load(), B: s.b.Load()}
			if s.seq.Load() != p+1 { // re-check: a wrapping writer landed mid-read
				continue
			}
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].Ring < out[j].Ring
	})
	return out
}

// chromeEvent is one entry of the chrome://tracing JSON array format.
// Instants use ph "i" with a scope; spans use async ph "b"/"e" with a
// matching (cat, id, name) triple so Perfetto pairs them into bars.
// ts is in microseconds.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	ID    string            `json:"id,omitempty"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]uint64 `json:"args"`
}

// WriteTrace drains the recorder and writes the events as a
// chrome://tracing JSON document ({"traceEvents": [...]}), loadable in
// chrome://tracing or Perfetto. Timestamps are converted from the
// recorder clock's nanoseconds to the format's microseconds; each ring
// becomes a tid so per-CPU / per-gate activity lands on its own row.
// Span kinds become async "b"/"e" pairs keyed by the span id; instant
// kinds stay "i".
func (r *Recorder) WriteTrace(w io.Writer) error {
	return writeTraceEvents(w, r.Events())
}

// WriteTraceEvents writes an already-drained (possibly sliced or
// merged) event stream in the same chrome://tracing document format as
// WriteTrace.
func WriteTraceEvents(w io.Writer, events []Event) error {
	return writeTraceEvents(w, events)
}

// writeTraceEvents is the shared chrome JSON emitter.
func writeTraceEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	for i, ev := range events {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		ce := chromeEvent{
			Name:  ev.Kind.String(),
			Phase: "i",
			TS:    float64(ev.TS) / 1e3,
			PID:   0,
			TID:   ev.Ring,
			Scope: "t",
			Args:  map[string]uint64{"a": ev.A, "b": ev.B},
		}
		if ev.Kind.IsSpan() {
			ce.Name = ev.Kind.SpanName()
			ce.Cat = "msg"
			ce.ID = "0x" + strconv.FormatUint(ev.A, 16)
			ce.Scope = ""
			if ev.Kind.IsBegin() {
				ce.Phase = "b"
			} else {
				ce.Phase = "e"
			}
		}
		// Encoder appends a newline after each value; harmless inside
		// a JSON array and keeps the document diffable.
		if err := enc.Encode(ce); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// chromeKinds maps a chrome (name, phase) pair back to the recorder
// kind, the inverse of WriteTrace's rendering.
var chromeKinds = func() map[[2]string]Kind {
	m := make(map[[2]string]Kind, int(numKinds))
	for k := Kind(0); k < numKinds; k++ {
		if k.IsSpan() {
			ph := "e"
			if k.IsBegin() {
				ph = "b"
			}
			m[[2]string{k.SpanName(), ph}] = k
		} else {
			m[[2]string{k.String(), "i"}] = k
		}
	}
	return m
}()

// ReadTrace parses a chrome://tracing document produced by WriteTrace
// back into the drained event stream, so offline tools (cmd/tracestat)
// can analyze a trace file identically to a live drain. Events whose
// (name, phase) pair no recorder kind produces are skipped. Timestamps
// round-trip exactly for clocks below ~2^53 ns (any virtual clock;
// wall-clock traces may lose sub-microsecond precision to the format's
// float microseconds).
func ReadTrace(rd io.Reader) ([]Event, error) {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.NewDecoder(rd).Decode(&doc); err != nil {
		return nil, fmt.Errorf("trace: parse chrome JSON: %w", err)
	}
	events := make([]Event, 0, len(doc.TraceEvents))
	for _, ce := range doc.TraceEvents {
		k, ok := chromeKinds[[2]string{ce.Name, ce.Phase}]
		if !ok {
			continue
		}
		events = append(events, Event{
			TS:   int64(math.Round(ce.TS * 1e3)),
			Ring: ce.TID,
			Kind: k,
			A:    ce.Args["a"],
			B:    ce.Args["b"],
		})
	}
	return events, nil
}
