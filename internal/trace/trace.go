// Package trace is the engine flight recorder: a fixed-size,
// lock-free, per-ring buffer of scheduling and protocol events that is
// cheap enough to leave compiled into the hot paths and free when not
// attached (every hook is a single nil pointer check).
//
// The recorder is deliberately a leaf package — it imports only the
// standard library — so that core, nmad, and cluster can all hold a
// *Recorder without creating an import cycle with the observability
// server (internal/obs) that drains it.
//
// Writers publish with a seqlock-style per-slot sequence: a slot's
// sequence is zeroed while its fields are being written and set to
// position+1 once the event is complete, so a concurrent drain can
// detect and skip torn slots instead of blocking writers. Under
// extreme wraparound races (two writers a full lap apart landing on
// the same slot) a drained event may mix fields from both; the
// recorder is a diagnostic surface, not a ledger, and trades that
// vanishing window for zero locks on the record path.
package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// Kind identifies the engine event a slot records.
type Kind uint32

// Event kinds. The A/B payload meaning depends on the kind; see each
// constant's comment. Rings are sharded by origin: core records under
// the executing CPU index, nmad under the gate id.
const (
	// EvTaskRun is a task dispatch on a CPU: A = the task's cumulative
	// run count, B unused.
	EvTaskRun Kind = iota
	// EvTaskSteal is a successful steal: A = victim CPU, B = tasks
	// migrated in the drain.
	EvTaskSteal
	// EvRdvRTS is an inbound rendezvous request-to-send: A = message
	// id, B = total message bytes.
	EvRdvRTS
	// EvRdvCTS is an inbound clear-to-send: A = message id, B unused.
	EvRdvCTS
	// EvRdvFin is an inbound rendezvous completion: A = message id,
	// B unused.
	EvRdvFin
	// EvRetransmit is a rendezvous control retransmission after a
	// timeout: A = message id, B = retry ordinal.
	EvRetransmit
	// EvEagerRetry is an eager frame retransmission: A = sequence
	// number, B = retry ordinal.
	EvEagerRetry
	// EvTimeout is a transfer failed permanently after exhausting
	// retries: A = message id or sequence, B = path (0 rendezvous
	// send, 1 rendezvous receive, 2 eager).
	EvTimeout
	// EvRailDeath is a rail marked dead: A = rail index, B = live
	// rails remaining on the gate.
	EvRailDeath

	numKinds
)

// String returns the chrome://tracing event name for the kind.
func (k Kind) String() string {
	names := [...]string{
		EvTaskRun:    "task-run",
		EvTaskSteal:  "task-steal",
		EvRdvRTS:     "rdv-rts",
		EvRdvCTS:     "rdv-cts",
		EvRdvFin:     "rdv-fin",
		EvRetransmit: "retransmit",
		EvEagerRetry: "eager-retry",
		EvTimeout:    "timeout",
		EvRailDeath:  "rail-death",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return "unknown"
}

// Event is one drained flight-recorder entry.
type Event struct {
	// TS is the clock stamp in the recorder's clock units
	// (nanoseconds of wall or virtual time).
	TS int64
	// Ring is the ring the event was recorded under (CPU or gate id,
	// clamped modulo the ring count).
	Ring int
	// Kind identifies the event.
	Kind Kind
	// A and B are the kind-specific payload (see the Kind constants).
	A, B uint64
}

// slot is one ring entry. Every field is atomic so a drain racing a
// record is a skipped or torn-detected slot, never a data race.
type slot struct {
	seq  atomic.Uint64 // 0 while being written, position+1 once published
	ts   atomic.Int64
	kind atomic.Uint32
	a    atomic.Uint64
	b    atomic.Uint64
}

// ring is one independently-positioned event buffer.
type ring struct {
	pos   atomic.Uint64
	slots []slot
	mask  uint64
}

// Recorder is the flight recorder. The zero value is not usable; use
// New. A nil *Recorder is safe to Record on (a no-op), which is what
// makes the disabled path free: engines hold the pointer and hot paths
// guard with a single nil check.
type Recorder struct {
	rings []ring
	clock atomic.Pointer[func() int64]
}

// New builds a recorder with the given number of rings, each holding
// capacity events (rounded up to a power of two, minimum 64). rings is
// clamped to at least 1. clock stamps events; nil means wall-clock
// nanoseconds.
func New(rings, capacity int, clock func() int64) *Recorder {
	if rings < 1 {
		rings = 1
	}
	if capacity < 64 {
		capacity = 64
	}
	capacity = 1 << bits.Len(uint(capacity-1))
	r := &Recorder{rings: make([]ring, rings)}
	for i := range r.rings {
		r.rings[i].slots = make([]slot, capacity)
		r.rings[i].mask = uint64(capacity - 1)
	}
	if clock == nil {
		clock = func() int64 { return time.Now().UnixNano() }
	}
	r.clock.Store(&clock)
	return r
}

// SetClock repoints the recorder's timestamp source; the cluster
// harness uses this to stamp events on the fabric's virtual clock so a
// drained trace lines up with the scenario's modelled time.
func (r *Recorder) SetClock(clock func() int64) {
	if clock == nil {
		clock = func() int64 { return time.Now().UnixNano() }
	}
	r.clock.Store(&clock)
}

// Record appends one event to the given ring (clamped modulo the ring
// count), overwriting the oldest entry when the ring is full. Safe for
// concurrent use and safe on a nil receiver, where it is a no-op.
func (r *Recorder) Record(ringIdx int, k Kind, a, b uint64) {
	if r == nil {
		return
	}
	rg := &r.rings[uint(ringIdx)%uint(len(r.rings))]
	pos := rg.pos.Add(1) - 1
	s := &rg.slots[pos&rg.mask]
	s.seq.Store(0)
	s.ts.Store((*r.clock.Load())())
	s.kind.Store(uint32(k))
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(pos + 1)
}

// Recorded returns the total number of events ever recorded across all
// rings (including ones since overwritten).
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for i := range r.rings {
		n += r.rings[i].pos.Load()
	}
	return n
}

// Events drains a consistent best-effort snapshot of every ring,
// skipping slots that are mid-write, and returns the events sorted by
// (timestamp, ring, ring order). The recorder keeps recording; drained
// events are not removed.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for ri := range r.rings {
		rg := &r.rings[ri]
		pos := rg.pos.Load()
		start := uint64(0)
		if pos > uint64(len(rg.slots)) {
			start = pos - uint64(len(rg.slots))
		}
		for p := start; p < pos; p++ {
			s := &rg.slots[p&rg.mask]
			if s.seq.Load() != p+1 {
				continue
			}
			ev := Event{TS: s.ts.Load(), Ring: ri, Kind: Kind(s.kind.Load()), A: s.a.Load(), B: s.b.Load()}
			if s.seq.Load() != p+1 { // re-check: a wrapping writer landed mid-read
				continue
			}
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].Ring < out[j].Ring
	})
	return out
}

// chromeEvent is one entry of the chrome://tracing JSON array format
// ("i" = instant event; ts is in microseconds).
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s"`
	Args  map[string]uint64 `json:"args"`
}

// WriteTrace drains the recorder and writes the events as a
// chrome://tracing JSON document ({"traceEvents": [...]}), loadable in
// chrome://tracing or Perfetto. Timestamps are converted from the
// recorder clock's nanoseconds to the format's microseconds; each ring
// becomes a tid so per-CPU / per-gate activity lands on its own row.
func (r *Recorder) WriteTrace(w io.Writer) error {
	events := r.Events()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	for i, ev := range events {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		ce := chromeEvent{
			Name:  ev.Kind.String(),
			Phase: "i",
			TS:    float64(ev.TS) / 1e3,
			PID:   0,
			TID:   ev.Ring,
			Scope: "t",
			Args:  map[string]uint64{"a": ev.A, "b": ev.B},
		}
		// Encoder appends a newline after each value; harmless inside
		// a JSON array and keeps the document diffable.
		if err := enc.Encode(ce); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
