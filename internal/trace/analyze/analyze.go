// Package analyze reconstructs message-lifecycle span trees from a
// drained flight-recorder event stream and attributes each message's
// latency to protocol phases.
//
// The input is the flat []trace.Event a Recorder drains (or
// trace.ReadTrace parses back from a chrome JSON file): span begin/end
// pairs keyed by packed span ids, plus instant events (retransmits,
// timeouts) that annotate them. The output is a Report: per-message
// span trees spanning both the sender's and receiver's rings,
// per-phase duration histograms, a critical-path (dominant phase) call
// per message and per stream, and anomaly flags — retransmit-stalled,
// timeout-killed, head-of-line-blocked messages.
//
// Pairing is deliberately lenient about retransmission: a phase that
// restarts (an eager frame re-injected after loss) records a second
// begin under the same span id, so a span's extent is first begin →
// last end, and a span is complete once it has at least one of each.
// Everything is deterministic: same event stream in, same report out,
// with all map iteration replaced by sorted walks.
package analyze

import (
	"fmt"
	"sort"

	"pioman/internal/stats"
	"pioman/internal/trace"
)

// Span is one reconstructed begin/end phase of a message, on one side.
type Span struct {
	// ID is the packed span id (trace.PackSpanID layout).
	ID uint64
	// Kind is the begin kind of the pair (trace.EvHandshakeBegin, ...).
	Kind trace.Kind
	// Name is the phase name ("send", "handshake", "chunk", ...).
	Name string
	// Ring is the ring the begin was recorded on.
	Ring int
	// Start is the first begin timestamp, End the last end timestamp
	// (clock units). A span missing its end has End == 0.
	Start, End int64
	// Bytes is the begin event's B payload (message or chunk bytes).
	Bytes uint64
	// Status is the last end event's B payload: 0 success, nonzero
	// failure.
	Status uint64
	// Begins and Ends count the raw events folded into the span;
	// Begins > 1 means the phase restarted (retransmission).
	Begins, Ends int
}

// Complete reports whether the span has both halves.
func (s *Span) Complete() bool { return s.Begins > 0 && s.Ends > 0 }

// Duration is last end − first begin, or 0 while incomplete.
func (s *Span) Duration() int64 {
	if !s.Complete() {
		return 0
	}
	return s.End - s.Start
}

// Anomaly flags a message's pathology.
type Anomaly string

// Anomaly kinds.
const (
	// RetransmitStalled: the message needed at least one control or
	// eager retransmission.
	RetransmitStalled Anomaly = "retransmit-stalled"
	// TimeoutKilled: a side gave up permanently (EvTimeout, or a
	// whole-message span ended with a failure status).
	TimeoutKilled Anomaly = "timeout-killed"
	// HeadOfLineBlocked: the receiver spent ≥ half its lifetime in
	// match wait AND that wait is a ≥4× outlier against the stream's
	// median match wait — the frame was behind something (a
	// settled-log dup, an unmatched queue) rather than on the wire.
	// The outlier gate keeps ordinary eager messages (whose only
	// receiver phase is the match wait) from all flagging.
	HeadOfLineBlocked Anomaly = "head-of-line-blocked"
)

// Message is one reconstructed message: every span recorded for it on
// either engine, keyed by the direction-independent message identity.
type Message struct {
	// Key is trace.SpanMsgKey of every constituent span.
	Key uint64
	// Src and Dst are the sender's and receiver's trace node ids.
	Src, Dst int
	// MsgID is the sender-assigned message id.
	MsgID uint64
	// Bytes is the message size (from the first whole-message begin
	// that carries one).
	Bytes uint64
	// Spans holds every phase span, sorted by (Start, ID, Kind).
	Spans []*Span
	// Send and Recv are the whole-message spans (nil when that side's
	// ring wasn't drained or wrapped past them).
	Send, Recv *Span
	// Retransmits counts EvRetransmit + EvEagerRetry instants whose
	// span id collapses to this message.
	Retransmits int
	// TimedOut reports an EvTimeout instant for this message.
	TimedOut bool
	// Anomalies, sorted, deduplicated.
	Anomalies []Anomaly
}

// Completed reports whether any whole-message span finished cleanly.
func (m *Message) Completed() bool {
	return (m.Send != nil && m.Send.Complete() && m.Send.Status == 0) ||
		(m.Recv != nil && m.Recv.Complete() && m.Recv.Status == 0)
}

// Failed reports whether any whole-message span ended in error or the
// message timed out.
func (m *Message) Failed() bool {
	if m.TimedOut {
		return true
	}
	for _, s := range []*Span{m.Send, m.Recv} {
		if s != nil && s.Complete() && s.Status != 0 {
			return true
		}
	}
	return false
}

// Start is the earliest whole-message begin, End the latest
// whole-message end; Duration the difference (0 if incomplete).
func (m *Message) Start() int64 {
	start := int64(0)
	for _, s := range []*Span{m.Send, m.Recv} {
		if s != nil && s.Begins > 0 && (start == 0 || s.Start < start) {
			start = s.Start
		}
	}
	return start
}

// End returns the latest whole-message end timestamp.
func (m *Message) End() int64 {
	end := int64(0)
	for _, s := range []*Span{m.Send, m.Recv} {
		if s != nil && s.Complete() && s.End > end {
			end = s.End
		}
	}
	return end
}

// Duration returns End − Start, or 0 while incomplete.
func (m *Message) Duration() int64 {
	s, e := m.Start(), m.End()
	if s == 0 || e == 0 || e < s {
		return 0
	}
	return e - s
}

// Orphans counts phase spans missing their end — zero for every
// completed message in a lossless run.
func (m *Message) Orphans() int {
	n := 0
	for _, s := range m.Spans {
		if !s.Complete() {
			n++
		}
	}
	for _, s := range []*Span{m.Send, m.Recv} {
		if s != nil && !s.Complete() {
			n++
		}
	}
	return n
}

// phaseSpan reports whether the span contributes to phase attribution:
// top-level phases only — chunk spans are children of transfer and
// would double-count.
func phaseSpan(s *Span) bool {
	return s.Kind != trace.EvChunkBegin
}

// CriticalPhase returns the dominant phase — the top-level phase span
// with the largest duration — and that duration. Ties break toward
// the earlier protocol phase (span order). Returns ("", 0) when no
// complete phase span exists.
func (m *Message) CriticalPhase() (string, int64) {
	name, dur := "", int64(0)
	for _, s := range m.Spans {
		if !phaseSpan(s) || !s.Complete() {
			continue
		}
		if d := s.Duration(); d > dur {
			name, dur = s.Name, d
		}
	}
	return name, dur
}

// SideCoverage sums the side's top-level phase durations against its
// whole-message span: the Σ-phase tie-out. ok is false when the side
// has no complete whole-message span to tie against.
func (m *Message) SideCoverage(dir uint64) (phaseSum, span int64, ok bool) {
	whole := m.Send
	if dir == trace.DirRecv {
		whole = m.Recv
	}
	if whole == nil || !whole.Complete() {
		return 0, 0, false
	}
	for _, s := range m.Spans {
		if !phaseSpan(s) || !s.Complete() || trace.SpanDir(s.ID) != dir {
			continue
		}
		phaseSum += s.Duration()
	}
	return phaseSum, whole.Duration(), true
}

// Report is the full analysis of one drained event stream.
type Report struct {
	// Messages, sorted by (Start, Key) so output order is
	// deterministic and roughly chronological.
	Messages []*Message
	// Phases maps phase name → duration histogram over complete spans
	// (clock units, i.e. nanoseconds).
	Phases map[string]*stats.Histogram
	// Completed, Failed, Incomplete partition Messages.
	Completed, Failed, Incomplete int
	// OrphanSpans counts phase spans without an end across completed
	// messages only — the pairing invariant; incomplete (in-flight or
	// killed) messages legitimately carry open spans.
	OrphanSpans int
	// Anomalies counts messages per anomaly kind.
	Anomalies map[Anomaly]int
}

// PhaseNames returns the report's phase names, sorted.
func (r *Report) PhaseNames() []string {
	names := make([]string, 0, len(r.Phases))
	for n := range r.Phases {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CriticalPath returns the top-n completed messages by duration — the
// slowest chains in the stream — slowest first, ties broken by key.
func (r *Report) CriticalPath(n int) []*Message {
	done := make([]*Message, 0, len(r.Messages))
	for _, m := range r.Messages {
		if m.Completed() {
			done = append(done, m)
		}
	}
	sort.SliceStable(done, func(i, j int) bool {
		di, dj := done[i].Duration(), done[j].Duration()
		if di != dj {
			return di > dj
		}
		return done[i].Key < done[j].Key
	})
	if n > 0 && len(done) > n {
		done = done[:n]
	}
	return done
}

// spanKey identifies one logical span: the packed id plus the pair's
// begin kind (one id can carry several phases, e.g. handshake and
// transfer share the message-level id).
type spanKey struct {
	id   uint64
	kind trace.Kind
}

// Analyze reconstructs the report from a drained event stream. The
// stream may interleave many messages and both sides' rings; events
// need not be sorted.
func Analyze(events []trace.Event) *Report {
	spans := make(map[spanKey]*Span)
	var order []spanKey // first-appearance order, for determinism
	type instant struct {
		kind trace.Kind
		id   uint64
	}
	var instants []instant

	for _, ev := range events {
		switch {
		case ev.Kind.IsSpan():
			k := spanKey{id: ev.A, kind: ev.Kind.BeginKind()}
			s := spans[k]
			if s == nil {
				s = &Span{ID: ev.A, Kind: k.kind, Name: k.kind.SpanName(), Ring: ev.Ring}
				spans[k] = s
				order = append(order, k)
			}
			if ev.Kind.IsBegin() {
				if s.Begins == 0 || ev.TS < s.Start {
					s.Start = ev.TS
					s.Ring = ev.Ring
				}
				s.Begins++
				if s.Bytes == 0 {
					s.Bytes = ev.B
				}
			} else {
				if ev.TS > s.End {
					s.End = ev.TS
				}
				s.Ends++
				s.Status = ev.B
			}
		case ev.Kind == trace.EvRetransmit || ev.Kind == trace.EvEagerRetry || ev.Kind == trace.EvTimeout:
			instants = append(instants, instant{kind: ev.Kind, id: ev.A})
		}
	}

	msgs := make(map[uint64]*Message)
	var msgOrder []uint64
	getMsg := func(id uint64) *Message {
		key := trace.SpanMsgKey(id)
		m := msgs[key]
		if m == nil {
			src, dst := trace.SpanNode(id), trace.SpanPeer(id)
			if trace.SpanDir(id) == trace.DirRecv {
				src, dst = dst, src
			}
			m = &Message{Key: key, Src: src, Dst: dst, MsgID: trace.SpanMsgID(id)}
			msgs[key] = m
			msgOrder = append(msgOrder, key)
		}
		return m
	}

	for _, k := range order {
		s := spans[k]
		m := getMsg(s.ID)
		switch s.Kind {
		case trace.EvSendBegin:
			m.Send = s
		case trace.EvRecvBegin:
			m.Recv = s
		default:
			m.Spans = append(m.Spans, s)
		}
		if m.Bytes == 0 && (s.Kind == trace.EvSendBegin || s.Kind == trace.EvRecvBegin) {
			m.Bytes = s.Bytes
		}
	}
	for _, in := range instants {
		m := getMsg(in.id)
		if in.kind == trace.EvTimeout {
			m.TimedOut = true
		} else {
			m.Retransmits++
		}
	}

	rep := &Report{
		Phases:    make(map[string]*stats.Histogram),
		Anomalies: make(map[Anomaly]int),
	}
	for _, key := range msgOrder {
		m := msgs[key]
		sort.SliceStable(m.Spans, func(i, j int) bool {
			a, b := m.Spans[i], m.Spans[j]
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			if a.ID != b.ID {
				return a.ID < b.ID
			}
			return a.Kind < b.Kind
		})
		rep.Messages = append(rep.Messages, m)

		switch {
		case m.Completed():
			rep.Completed++
			rep.OrphanSpans += m.Orphans()
		case m.Failed():
			rep.Failed++
		default:
			rep.Incomplete++
		}
		for _, s := range m.Spans {
			if phaseSpan(s) && s.Complete() {
				h := rep.Phases[s.Name]
				if h == nil {
					h = &stats.Histogram{}
					rep.Phases[s.Name] = h
				}
				h.Record(s.Duration())
			}
		}
	}
	// Anomaly flagging needs the stream-wide match-wait median (the
	// head-of-line outlier baseline), so it runs after the histogram
	// pass.
	matchMedian := int64(0)
	if h := rep.Phases["match"]; h != nil && h.Count() > 0 {
		matchMedian = h.Quantile(0.5)
	}
	for _, key := range msgOrder {
		m := msgs[key]
		m.flagAnomalies(matchMedian)
		for _, a := range m.Anomalies {
			rep.Anomalies[a]++
		}
	}
	sort.SliceStable(rep.Messages, func(i, j int) bool {
		si, sj := rep.Messages[i].Start(), rep.Messages[j].Start()
		if si != sj {
			return si < sj
		}
		return rep.Messages[i].Key < rep.Messages[j].Key
	})
	return rep
}

// flagAnomalies fills m.Anomalies from the reconstructed state;
// matchMedian is the stream-wide median match wait, the head-of-line
// outlier baseline.
func (m *Message) flagAnomalies(matchMedian int64) {
	if m.Retransmits > 0 {
		m.Anomalies = append(m.Anomalies, RetransmitStalled)
	}
	if m.Failed() {
		m.Anomalies = append(m.Anomalies, TimeoutKilled)
	}
	if m.Recv != nil && m.Recv.Complete() && matchMedian > 0 {
		for _, s := range m.Spans {
			if s.Kind == trace.EvMatchBegin && s.Complete() &&
				m.Recv.Duration() > 0 &&
				s.Duration()*2 >= m.Recv.Duration() &&
				s.Duration() >= 4*matchMedian {
				m.Anomalies = append(m.Anomalies, HeadOfLineBlocked)
				break
			}
		}
	}
}

// Label renders the message identity for human output:
// "src→dst #msgID".
func (m *Message) Label() string {
	return fmt.Sprintf("%d→%d #%d", m.Src, m.Dst, m.MsgID)
}
