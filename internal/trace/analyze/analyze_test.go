package analyze

import (
	"testing"

	"pioman/internal/trace"
)

// msg builds the canonical lossless eager-reliable stream for one
// message: sender inject + ackwait partitioning the send span, receiver
// match partitioning the recv span.
func msg(src, dst int, id uint64, base int64) []trace.Event {
	s := trace.PackSpanID(src, dst, trace.DirSend, 0, id)
	r := trace.PackSpanID(dst, src, trace.DirRecv, 0, id)
	return []trace.Event{
		{Kind: trace.EvSendBegin, A: s, B: 1024, TS: base},
		{Kind: trace.EvInjectBegin, A: s, TS: base},
		{Kind: trace.EvInjectEnd, A: s, TS: base + 10},
		{Kind: trace.EvAckWaitBegin, A: s, TS: base + 10},
		{Kind: trace.EvRecvBegin, A: r, B: 1024, TS: base + 2},
		{Kind: trace.EvMatchBegin, A: r, TS: base + 2},
		{Kind: trace.EvMatchEnd, A: r, TS: base + 12},
		{Kind: trace.EvRecvEnd, A: r, B: 0, TS: base + 12},
		{Kind: trace.EvAckWaitEnd, A: s, TS: base + 30},
		{Kind: trace.EvSendEnd, A: s, B: 0, TS: base + 30},
	}
}

func TestAnalyzeLossless(t *testing.T) {
	var events []trace.Event
	events = append(events, msg(1, 2, 1, 100)...)
	events = append(events, msg(1, 3, 2, 200)...)
	rep := Analyze(events)

	if len(rep.Messages) != 2 || rep.Completed != 2 || rep.Failed != 0 || rep.Incomplete != 0 {
		t.Fatalf("partition = %d msgs, %d/%d/%d", len(rep.Messages), rep.Completed, rep.Failed, rep.Incomplete)
	}
	if rep.OrphanSpans != 0 {
		t.Fatalf("lossless stream has %d orphan spans", rep.OrphanSpans)
	}
	m := rep.Messages[0]
	if m.Src != 1 || m.Dst != 2 || m.MsgID != 1 || m.Bytes != 1024 {
		t.Fatalf("identity = %+v", m)
	}
	if m.Label() != "1→2 #1" {
		t.Fatalf("Label() = %q", m.Label())
	}
	if m.Duration() != 30 {
		t.Fatalf("Duration() = %d, want 30", m.Duration())
	}
	// Both sides tie out exactly: inject(10)+ackwait(20) = send 30;
	// match(10) = recv 10.
	if sum, span, ok := m.SideCoverage(trace.DirSend); !ok || sum != 30 || span != 30 {
		t.Fatalf("send coverage = %d/%d ok=%v", sum, span, ok)
	}
	if sum, span, ok := m.SideCoverage(trace.DirRecv); !ok || sum != 10 || span != 10 {
		t.Fatalf("recv coverage = %d/%d ok=%v", sum, span, ok)
	}
	if phase, dur := m.CriticalPhase(); phase != "ackwait" || dur != 20 {
		t.Fatalf("CriticalPhase = %q %d, want ackwait 20", phase, dur)
	}
	if got := rep.PhaseNames(); len(got) != 3 || got[0] != "ackwait" || got[1] != "inject" || got[2] != "match" {
		t.Fatalf("PhaseNames = %v", got)
	}
	if h := rep.Phases["inject"]; h.Count() != 2 || h.Max() != 10 {
		t.Fatalf("inject histogram = count %d max %d", h.Count(), h.Max())
	}
	if len(rep.Anomalies) != 0 {
		t.Fatalf("lossless stream flagged anomalies: %v", rep.Anomalies)
	}
}

// TestRetransmitFolding: a phase that restarts records a second begin
// under the same span id; the span must fold to first begin → last end
// and stay complete (no orphan), with the retransmit instant flagging
// the message.
func TestRetransmitFolding(t *testing.T) {
	s := trace.PackSpanID(1, 2, trace.DirSend, 0, 5)
	events := []trace.Event{
		{Kind: trace.EvSendBegin, A: s, B: 512, TS: 10},
		{Kind: trace.EvInjectBegin, A: s, TS: 10},
		{Kind: trace.EvInjectEnd, A: s, TS: 20},
		{Kind: trace.EvRetransmit, A: s, TS: 50},
		{Kind: trace.EvInjectBegin, A: s, TS: 50}, // re-injection
		{Kind: trace.EvInjectEnd, A: s, TS: 60},
		{Kind: trace.EvSendEnd, A: s, B: 0, TS: 80},
	}
	rep := Analyze(events)
	if len(rep.Messages) != 1 || rep.Completed != 1 {
		t.Fatalf("partition = %+v", rep)
	}
	m := rep.Messages[0]
	if m.Retransmits != 1 {
		t.Fatalf("Retransmits = %d, want 1", m.Retransmits)
	}
	if len(m.Spans) != 1 {
		t.Fatalf("duplicate begins split into %d spans, want 1 folded", len(m.Spans))
	}
	sp := m.Spans[0]
	if sp.Begins != 2 || sp.Ends != 2 || !sp.Complete() {
		t.Fatalf("folded span = %+v", sp)
	}
	if sp.Start != 10 || sp.End != 60 || sp.Duration() != 50 {
		t.Fatalf("extent = [%d,%d], want first begin 10 → last end 60", sp.Start, sp.End)
	}
	if rep.OrphanSpans != 0 {
		t.Fatalf("folded retransmission left %d orphans", rep.OrphanSpans)
	}
	if rep.Anomalies[RetransmitStalled] != 1 {
		t.Fatalf("Anomalies = %v, want retransmit-stalled=1", rep.Anomalies)
	}
}

// TestOrphansAndIncomplete: a dangling phase begin on a completed
// message counts as an orphan; a message with no whole-message end is
// incomplete and its open spans do not count (in-flight messages
// legitimately carry open spans).
func TestOrphansAndIncomplete(t *testing.T) {
	done := trace.PackSpanID(1, 2, trace.DirSend, 0, 1)
	open := trace.PackSpanID(1, 2, trace.DirSend, 0, 2)
	events := []trace.Event{
		{Kind: trace.EvSendBegin, A: done, TS: 10},
		{Kind: trace.EvInjectBegin, A: done, TS: 10}, // never ends
		{Kind: trace.EvSendEnd, A: done, B: 0, TS: 40},

		{Kind: trace.EvSendBegin, A: open, TS: 20},
		{Kind: trace.EvInjectBegin, A: open, TS: 20}, // in flight
	}
	rep := Analyze(events)
	if rep.Completed != 1 || rep.Incomplete != 1 {
		t.Fatalf("partition = %d completed, %d incomplete", rep.Completed, rep.Incomplete)
	}
	if rep.OrphanSpans != 1 {
		t.Fatalf("OrphanSpans = %d, want 1 (completed message only)", rep.OrphanSpans)
	}
	if rep.Messages[0].Orphans() != 1 {
		t.Fatalf("completed message Orphans() = %d", rep.Messages[0].Orphans())
	}
	// The in-flight message has open spans but doesn't feed the report
	// counter.
	if rep.Messages[1].Orphans() != 2 { // inject + whole-message span
		t.Fatalf("in-flight message Orphans() = %d", rep.Messages[1].Orphans())
	}
}

// TestTimeoutKilled: an EvTimeout instant or a failure-status
// whole-message end marks the message failed.
func TestTimeoutKilled(t *testing.T) {
	a := trace.PackSpanID(1, 2, trace.DirSend, 0, 1)
	b := trace.PackSpanID(1, 2, trace.DirSend, 0, 2)
	events := []trace.Event{
		{Kind: trace.EvSendBegin, A: a, TS: 10},
		{Kind: trace.EvTimeout, A: a, TS: 90},

		{Kind: trace.EvSendBegin, A: b, TS: 10},
		{Kind: trace.EvSendEnd, A: b, B: 1, TS: 70}, // error status
	}
	rep := Analyze(events)
	if rep.Failed != 2 || rep.Completed != 0 {
		t.Fatalf("partition = %d failed, %d completed", rep.Failed, rep.Completed)
	}
	if rep.Anomalies[TimeoutKilled] != 2 {
		t.Fatalf("Anomalies = %v, want timeout-killed=2", rep.Anomalies)
	}
	if !rep.Messages[0].TimedOut || !rep.Messages[0].Failed() {
		t.Fatalf("message 1 = %+v, want timed out", rep.Messages[0])
	}
}

// TestHeadOfLineBlocked: the receiver-side match wait must both
// dominate the recv span and be a ≥4× outlier against the stream's
// median match wait before the flag fires — ordinary eager messages
// (match is their whole recv span) must not flag.
func TestHeadOfLineBlocked(t *testing.T) {
	recvMsg := func(id uint64, base, matchEnd int64) []trace.Event {
		r := trace.PackSpanID(2, 1, trace.DirRecv, 0, id)
		return []trace.Event{
			{Kind: trace.EvRecvBegin, A: r, B: 64, TS: base},
			{Kind: trace.EvMatchBegin, A: r, TS: base},
			{Kind: trace.EvMatchEnd, A: r, TS: matchEnd},
			{Kind: trace.EvRecvEnd, A: r, B: 0, TS: matchEnd},
		}
	}
	var events []trace.Event
	// Nine ordinary messages (match wait 10) establish the median; one
	// pathological message waits 40× that.
	for id := uint64(1); id <= 9; id++ {
		events = append(events, recvMsg(id, int64(id)*100, int64(id)*100+10)...)
	}
	events = append(events, recvMsg(10, 1000, 1400)...)
	rep := Analyze(events)
	if rep.Anomalies[HeadOfLineBlocked] != 1 {
		t.Fatalf("Anomalies = %v, want head-of-line-blocked=1", rep.Anomalies)
	}
	last := rep.Messages[len(rep.Messages)-1]
	if len(last.Anomalies) != 1 || last.Anomalies[0] != HeadOfLineBlocked {
		t.Fatalf("outlier message anomalies = %v", last.Anomalies)
	}
}

// TestCriticalPath: slowest completed messages first, incomplete ones
// excluded, n truncates.
func TestCriticalPath(t *testing.T) {
	var events []trace.Event
	events = append(events, msg(1, 2, 1, 100)...) // duration 30 each
	slow := trace.PackSpanID(1, 3, trace.DirSend, 0, 2)
	events = append(events,
		trace.Event{Kind: trace.EvSendBegin, A: slow, TS: 100},
		trace.Event{Kind: trace.EvSendEnd, A: slow, B: 0, TS: 900},
	)
	inflight := trace.PackSpanID(1, 4, trace.DirSend, 0, 3)
	events = append(events, trace.Event{Kind: trace.EvSendBegin, A: inflight, TS: 100})

	rep := Analyze(events)
	top := rep.CriticalPath(5)
	if len(top) != 2 {
		t.Fatalf("CriticalPath returned %d messages, want 2 completed", len(top))
	}
	if top[0].MsgID != 2 || top[0].Duration() != 800 {
		t.Fatalf("slowest = %s (%d ns), want #2 at 800", top[0].Label(), top[0].Duration())
	}
	if got := rep.CriticalPath(1); len(got) != 1 || got[0].MsgID != 2 {
		t.Fatalf("CriticalPath(1) = %v", got)
	}
}

// TestChunkSpansExcludedFromPhases: chunk spans are children of
// transfer; they must appear in the span tree but not the phase
// histograms or side coverage (double counting).
func TestChunkSpansExcludedFromPhases(t *testing.T) {
	r := trace.PackSpanID(2, 1, trace.DirRecv, 0, 1)
	c0 := trace.PackSpanID(2, 1, trace.DirRecv, 0, 1)
	c1 := trace.PackSpanID(2, 1, trace.DirRecv, 1, 1)
	events := []trace.Event{
		{Kind: trace.EvRecvBegin, A: r, B: 8192, TS: 0},
		{Kind: trace.EvTransferBegin, A: r, TS: 0},
		{Kind: trace.EvChunkBegin, A: c0, B: 4096, TS: 0},
		{Kind: trace.EvChunkBegin, A: c1, B: 4096, TS: 0},
		{Kind: trace.EvChunkEnd, A: c0, TS: 50},
		{Kind: trace.EvChunkEnd, A: c1, TS: 90},
		{Kind: trace.EvTransferEnd, A: r, TS: 100},
		{Kind: trace.EvRecvEnd, A: r, B: 0, TS: 100},
	}
	rep := Analyze(events)
	if rep.Phases["chunk"] != nil {
		t.Fatal("chunk spans leaked into the phase histograms")
	}
	if h := rep.Phases["transfer"]; h == nil || h.Count() != 1 {
		t.Fatalf("transfer histogram = %+v", h)
	}
	m := rep.Messages[0]
	if len(m.Spans) != 3 { // transfer + 2 chunks
		t.Fatalf("span tree has %d spans, want 3", len(m.Spans))
	}
	// Coverage counts transfer (100) only, not transfer+chunks (240).
	if sum, span, ok := m.SideCoverage(trace.DirRecv); !ok || sum != 100 || span != 100 {
		t.Fatalf("recv coverage = %d/%d ok=%v", sum, span, ok)
	}
}

// TestDeterministicOrder: the same events in any arrival order produce
// the same report ordering (messages sorted by start, spans by start).
func TestDeterministicOrder(t *testing.T) {
	var fwd []trace.Event
	fwd = append(fwd, msg(1, 2, 1, 100)...)
	fwd = append(fwd, msg(3, 2, 2, 50)...)
	rev := make([]trace.Event, len(fwd))
	for i, ev := range fwd {
		rev[len(fwd)-1-i] = ev
	}
	a, b := Analyze(fwd), Analyze(rev)
	if len(a.Messages) != 2 || len(b.Messages) != 2 {
		t.Fatalf("message counts %d/%d", len(a.Messages), len(b.Messages))
	}
	for i := range a.Messages {
		if a.Messages[i].Key != b.Messages[i].Key {
			t.Fatalf("message %d ordered differently: %#x vs %#x", i, a.Messages[i].Key, b.Messages[i].Key)
		}
	}
	if a.Messages[0].MsgID != 2 {
		t.Fatalf("messages not start-sorted: first is #%d", a.Messages[0].MsgID)
	}
}
