package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// fixedClock returns a clock that ticks by one per call, starting at
// base, so event order is encoded in timestamps.
func fixedClock(base int64) func() int64 {
	t := base
	return func() int64 { t++; return t }
}

func TestRecordAndDrain(t *testing.T) {
	r := New(2, 64, fixedClock(0))
	r.Record(0, EvTaskRun, 1, 0)
	r.Record(1, EvRdvRTS, 42, 4096)
	r.Record(0, EvTaskSteal, 3, 7)

	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("drained %d events, want 3", len(evs))
	}
	if evs[0].Kind != EvTaskRun || evs[0].Ring != 0 {
		t.Fatalf("first event = %+v, want task-run on ring 0", evs[0])
	}
	if evs[1].Kind != EvRdvRTS || evs[1].A != 42 || evs[1].B != 4096 {
		t.Fatalf("second event = %+v, want rdv-rts A=42 B=4096", evs[1])
	}
	if got := r.Recorded(); got != 3 {
		t.Fatalf("Recorded() = %d, want 3", got)
	}
	// Draining is non-destructive.
	if again := r.Events(); len(again) != 3 {
		t.Fatalf("second drain saw %d events, want 3", len(again))
	}
}

func TestRingWraparound(t *testing.T) {
	const capacity = 64
	r := New(1, capacity, fixedClock(0))
	const total = capacity*3 + 5
	for i := 0; i < total; i++ {
		r.Record(0, EvTaskRun, uint64(i), 0)
	}
	evs := r.Events()
	if len(evs) != capacity {
		t.Fatalf("drained %d events after wrap, want the last %d", len(evs), capacity)
	}
	// The survivors must be exactly the newest `capacity` events, in
	// order.
	for i, ev := range evs {
		want := uint64(total - capacity + i)
		if ev.A != want {
			t.Fatalf("event %d has A=%d, want %d (oldest must be overwritten)", i, ev.A, want)
		}
	}
	if got := r.Recorded(); got != total {
		t.Fatalf("Recorded() = %d, want %d", got, total)
	}
}

func TestRingClampAndNilSafety(t *testing.T) {
	var nilRec *Recorder
	nilRec.Record(0, EvTaskRun, 1, 2) // must not panic
	if nilRec.Events() != nil || nilRec.Recorded() != 0 {
		t.Fatal("nil recorder must drain empty")
	}

	r := New(2, 64, fixedClock(0))
	r.Record(7, EvRailDeath, 0, 0)  // clamps to ring 7%2 = 1
	r.Record(-3, EvRailDeath, 1, 0) // negative rings must not panic
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("drained %d events, want 2", len(evs))
	}
	if evs[0].Ring != 1 {
		t.Fatalf("ring 7 clamped to %d, want 1", evs[0].Ring)
	}
}

// TestConcurrentRecordDrain hammers one ring from several writers
// while a reader drains, under -race. Correctness bar: no race, no
// panic, and every drained event is internally consistent (a payload
// that matches its kind's writer).
func TestConcurrentRecordDrain(t *testing.T) {
	r := New(4, 256, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Record(w, EvTaskRun, uint64(i), uint64(w))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		for _, ev := range r.Events() {
			if ev.Kind != EvTaskRun {
				t.Errorf("drained kind %v mid-write, want only task-run", ev.Kind)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestWriteTraceChromeJSON(t *testing.T) {
	r := New(2, 64, fixedClock(1000))
	r.Record(0, EvTaskRun, 5, 0)
	r.Record(1, EvRetransmit, 9, 2)
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string             `json:"name"`
			Phase string             `json:"ph"`
			TS    float64            `json:"ts"`
			TID   int                `json:"tid"`
			Args  map[string]float64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("trace has %d events, want 2", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Name != "task-run" || doc.TraceEvents[0].Phase != "i" {
		t.Fatalf("first event = %+v, want instant task-run", doc.TraceEvents[0])
	}
	if doc.TraceEvents[1].Name != "retransmit" || doc.TraceEvents[1].TID != 1 {
		t.Fatalf("second event = %+v, want retransmit on tid 1", doc.TraceEvents[1])
	}
	// ns → µs conversion: clock starts at 1001 ns.
	if doc.TraceEvents[0].TS != 1.001 {
		t.Fatalf("ts = %v µs, want 1.001", doc.TraceEvents[0].TS)
	}
}

func TestKindString(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must stringify as unknown")
	}
}

// BenchmarkRecord prices one enabled-path event append; the disabled
// path is a nil check on the engine field and is priced by the
// scheduler guard benchmarks staying within their 5% band.
func BenchmarkRecord(b *testing.B) {
	clock := func() int64 { return 1 }
	r := New(4, 1<<12, clock)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(i, EvTaskRun, uint64(i), 0)
	}
}
