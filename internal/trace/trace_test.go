package trace

import (
	"bytes"
	"encoding/json"
	"strconv"
	"sync"
	"testing"
)

// fixedClock returns a clock that ticks by one per call, starting at
// base, so event order is encoded in timestamps.
func fixedClock(base int64) func() int64 {
	t := base
	return func() int64 { t++; return t }
}

func TestRecordAndDrain(t *testing.T) {
	r := New(2, 64, fixedClock(0))
	r.Record(0, EvTaskRun, 1, 0)
	r.Record(1, EvRdvRTS, 42, 4096)
	r.Record(0, EvTaskSteal, 3, 7)

	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("drained %d events, want 3", len(evs))
	}
	if evs[0].Kind != EvTaskRun || evs[0].Ring != 0 {
		t.Fatalf("first event = %+v, want task-run on ring 0", evs[0])
	}
	if evs[1].Kind != EvRdvRTS || evs[1].A != 42 || evs[1].B != 4096 {
		t.Fatalf("second event = %+v, want rdv-rts A=42 B=4096", evs[1])
	}
	if got := r.Recorded(); got != 3 {
		t.Fatalf("Recorded() = %d, want 3", got)
	}
	// Draining is non-destructive.
	if again := r.Events(); len(again) != 3 {
		t.Fatalf("second drain saw %d events, want 3", len(again))
	}
}

func TestRingWraparound(t *testing.T) {
	const capacity = 64
	r := New(1, capacity, fixedClock(0))
	const total = capacity*3 + 5
	for i := 0; i < total; i++ {
		r.Record(0, EvTaskRun, uint64(i), 0)
	}
	evs := r.Events()
	if len(evs) != capacity {
		t.Fatalf("drained %d events after wrap, want the last %d", len(evs), capacity)
	}
	// The survivors must be exactly the newest `capacity` events, in
	// order.
	for i, ev := range evs {
		want := uint64(total - capacity + i)
		if ev.A != want {
			t.Fatalf("event %d has A=%d, want %d (oldest must be overwritten)", i, ev.A, want)
		}
	}
	if got := r.Recorded(); got != total {
		t.Fatalf("Recorded() = %d, want %d", got, total)
	}
}

func TestRingClampAndNilSafety(t *testing.T) {
	var nilRec *Recorder
	nilRec.Record(0, EvTaskRun, 1, 2) // must not panic
	if nilRec.Events() != nil || nilRec.Recorded() != 0 {
		t.Fatal("nil recorder must drain empty")
	}

	r := New(2, 64, fixedClock(0))
	r.Record(7, EvRailDeath, 0, 0)  // clamps to ring 7%2 = 1
	r.Record(-3, EvRailDeath, 1, 0) // negative rings must not panic
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("drained %d events, want 2", len(evs))
	}
	if evs[0].Ring != 1 {
		t.Fatalf("ring 7 clamped to %d, want 1", evs[0].Ring)
	}
}

// TestConcurrentRecordDrain hammers one ring from several writers
// while a reader drains, under -race. Correctness bar: no race, no
// panic, and every drained event is internally consistent (a payload
// that matches its kind's writer).
func TestConcurrentRecordDrain(t *testing.T) {
	r := New(4, 256, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Record(w, EvTaskRun, uint64(i), uint64(w))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		for _, ev := range r.Events() {
			if ev.Kind != EvTaskRun {
				t.Errorf("drained kind %v mid-write, want only task-run", ev.Kind)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestWriteTraceChromeJSON(t *testing.T) {
	r := New(2, 64, fixedClock(1000))
	r.Record(0, EvTaskRun, 5, 0)
	r.Record(1, EvRetransmit, 9, 2)
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string             `json:"name"`
			Phase string             `json:"ph"`
			TS    float64            `json:"ts"`
			TID   int                `json:"tid"`
			Args  map[string]float64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("trace has %d events, want 2", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Name != "task-run" || doc.TraceEvents[0].Phase != "i" {
		t.Fatalf("first event = %+v, want instant task-run", doc.TraceEvents[0])
	}
	if doc.TraceEvents[1].Name != "retransmit" || doc.TraceEvents[1].TID != 1 {
		t.Fatalf("second event = %+v, want retransmit on tid 1", doc.TraceEvents[1])
	}
	// ns → µs conversion: clock starts at 1001 ns.
	if doc.TraceEvents[0].TS != 1.001 {
		t.Fatalf("ts = %v µs, want 1.001", doc.TraceEvents[0].TS)
	}
}

// TestWriteTraceGolden pins the exact document bytes: the empty
// recorder emits a loadable skeleton, and a span begin/end pair renders
// as async "b"/"e" events sharing one (cat, id, name) triple so viewers
// pair them into a bar. Any byte change here is a format change and
// must be deliberate (tracestat fixtures ride on these bytes).
func TestWriteTraceGolden(t *testing.T) {
	empty := New(1, 8, fixedClock(0))
	var buf bytes.Buffer
	if err := empty.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace(empty): %v", err)
	}
	if got, want := buf.String(), "{\"traceEvents\":[]}\n"; got != want {
		t.Fatalf("empty document = %q, want %q", got, want)
	}

	sid := PackSpanID(1, 2, DirSend, 0, 7)
	r := New(1, 8, nil)
	r.RecordAt(0, EvSendBegin, sid, 100, 2000)
	r.RecordAt(0, EvSendEnd, sid, 0, 5000)
	buf.Reset()
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	hex := "0x" + strconv.FormatUint(sid, 16)
	want := `{"traceEvents":[{"name":"send","cat":"msg","id":"` + hex + `","ph":"b","ts":2,"pid":0,"tid":0,"args":{"a":` + strconv.FormatUint(sid, 10) + `,"b":100}}
,{"name":"send","cat":"msg","id":"` + hex + `","ph":"e","ts":5,"pid":0,"tid":0,"args":{"a":` + strconv.FormatUint(sid, 10) + `,"b":0}}
]}
`
	if buf.String() != want {
		t.Fatalf("span document:\n%s\nwant:\n%s", buf.String(), want)
	}

	// And the document must parse right back to the drained stream.
	evs, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(evs) != 2 || evs[0] != (Event{TS: 2000, Kind: EvSendBegin, A: sid, B: 100}) ||
		evs[1] != (Event{TS: 5000, Kind: EvSendEnd, A: sid, B: 0}) {
		t.Fatalf("round-trip drained %+v", evs)
	}
}

// TestReadTraceRoundTrip drains a mixed instant/span stream through the
// chrome document and back; every kind must survive bit-exact.
func TestReadTraceRoundTrip(t *testing.T) {
	r := New(3, 64, fixedClock(0))
	sid := PackSpanID(3, 1, DirRecv, 2, 9)
	r.Record(0, EvTaskRun, 11, 22)
	r.Record(1, EvRecvBegin, sid, 4096)
	r.Record(1, EvMatchBegin, sid, 0)
	r.Record(2, EvRetransmit, sid, 1)
	r.Record(1, EvMatchEnd, sid, 0)
	r.Record(1, EvRecvEnd, sid, 0)
	want := r.Events()

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("round-trip has %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d round-tripped to %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestPackSpanID checks the bit layout round-trips at the field
// extremes and that SpanMsgKey is direction- and aux-independent (the
// sender's and receiver's spans for one message collapse to one key).
func TestPackSpanID(t *testing.T) {
	cases := []struct {
		node, peer int
		dir        uint64
		aux        uint8
		msgID      uint64
	}{
		{0, 0, DirSend, 0, 1},
		{1, 2, DirSend, 0, 7},
		{2047, 2047, DirRecv, 255, (1 << 33) - 1},
		{512, 3, DirRecv, 17, 1 << 20},
	}
	for _, c := range cases {
		id := PackSpanID(c.node, c.peer, c.dir, c.aux, c.msgID)
		if SpanNode(id) != c.node || SpanPeer(id) != c.peer ||
			SpanDir(id) != c.dir || SpanAux(id) != c.aux || SpanMsgID(id) != c.msgID {
			t.Fatalf("pack(%+v) = %#x, unpacked to node=%d peer=%d dir=%d aux=%d msg=%d",
				c, id, SpanNode(id), SpanPeer(id), SpanDir(id), SpanAux(id), SpanMsgID(id))
		}
	}
	// Sender's id (node=src, peer=dst, send) and receiver's id
	// (node=dst, peer=src, recv) — same message, same key; aux (chunk
	// index) never changes the key.
	send := PackSpanID(4, 9, DirSend, 0, 33)
	recv := PackSpanID(9, 4, DirRecv, 5, 33)
	if SpanMsgKey(send) != SpanMsgKey(recv) {
		t.Fatalf("send key %#x != recv key %#x for one message", SpanMsgKey(send), SpanMsgKey(recv))
	}
	other := PackSpanID(4, 9, DirSend, 0, 34)
	if SpanMsgKey(send) == SpanMsgKey(other) {
		t.Fatal("distinct msg ids collapsed to one key")
	}
}

// TestRecordAtAndNow covers the explicit-timestamp append and the clock
// accessor protocol instrumentation rides (retroactive span begins use
// a Now() captured at post time).
func TestRecordAtAndNow(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Now() != 0 {
		t.Fatal("nil recorder Now() must be 0")
	}
	r := New(2, 8, fixedClock(100))
	if ts := r.Now(); ts != 101 {
		t.Fatalf("Now() = %d, want 101", ts)
	}
	r.RecordAt(1, EvRecvBegin, 5, 6, 42) // backdated vs the clock
	r.Record(1, EvRecvEnd, 5, 0)
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("drained %d events, want 2", len(evs))
	}
	if evs[0].TS != 42 || evs[0].Kind != EvRecvBegin {
		t.Fatalf("backdated event sorted as %+v, want recv begin at 42", evs[0])
	}
	nilRec.RecordAt(0, EvRecvBegin, 1, 2, 3) // must not panic
}

// TestMarkEventsSince covers per-scenario slicing on a shared recorder.
func TestMarkEventsSince(t *testing.T) {
	r := New(2, 64, fixedClock(0))
	r.Record(0, EvTaskRun, 1, 0)
	m := r.Mark()
	r.Record(0, EvTaskRun, 2, 0)
	r.Record(1, EvTaskRun, 3, 0)
	since := r.EventsSince(m)
	if len(since) != 2 || since[0].A != 2 || since[1].A != 3 {
		t.Fatalf("EventsSince = %+v, want the two post-mark events", since)
	}
	if all := r.Events(); len(all) != 3 {
		t.Fatalf("full drain has %d events, want 3", len(all))
	}
	var nilRec *Recorder
	if nilRec.Mark() != nil || nilRec.EventsSince(nil) != nil {
		t.Fatal("nil recorder Mark/EventsSince must be empty")
	}
}

// TestRingStats checks the loss-visibility counters: Recorded counts
// every append, Dropped stays 0 until the ring wraps and then equals
// the overwritten count.
func TestRingStats(t *testing.T) {
	const capacity = 64
	r := New(2, capacity, fixedClock(0))
	for i := 0; i < 10; i++ {
		r.Record(0, EvTaskRun, uint64(i), 0)
	}
	st := r.RingStats()
	if len(st) != 2 {
		t.Fatalf("RingStats has %d rings, want 2", len(st))
	}
	if st[0].Recorded != 10 || st[0].Dropped != 0 {
		t.Fatalf("ring 0 = %+v, want 10 recorded, 0 dropped", st[0])
	}
	if st[1].Recorded != 0 || st[1].Dropped != 0 {
		t.Fatalf("ring 1 = %+v, want untouched", st[1])
	}
	for i := 0; i < capacity*2; i++ {
		r.Record(1, EvTaskRun, uint64(i), 0)
	}
	st = r.RingStats()
	if st[1].Recorded != capacity*2 || st[1].Dropped != capacity {
		t.Fatalf("wrapped ring 1 = %+v, want %d recorded, %d dropped", st[1], capacity*2, capacity)
	}
}

// TestRecordSpanAllocs is the enabled-path allocation contract: a span
// append (and the explicit-timestamp variant) must not allocate.
func TestRecordSpanAllocs(t *testing.T) {
	r := New(4, 1<<12, func() int64 { return 1 })
	sid := PackSpanID(1, 2, DirSend, 0, 7)
	if n := testing.AllocsPerRun(1000, func() {
		r.Record(0, EvSendBegin, sid, 100)
	}); n != 0 {
		t.Fatalf("Record allocates %v per span append, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		r.RecordAt(1, EvChunkBegin, sid, 64, 5)
	}); n != 0 {
		t.Fatalf("RecordAt allocates %v per span append, want 0", n)
	}
}

func TestKindString(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must stringify as unknown")
	}
}

// BenchmarkRecord prices one enabled-path event append; the disabled
// path is a nil check on the engine field and is priced by the
// scheduler guard benchmarks staying within their 5% band.
func BenchmarkRecord(b *testing.B) {
	clock := func() int64 { return 1 }
	r := New(4, 1<<12, clock)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(i, EvTaskRun, uint64(i), 0)
	}
}
