package admit

import "testing"

// FuzzCreditAccounting drives a Ledger through arbitrary interleavings
// of the four things the engine does to it — admit, release in
// completion order, release out of order (timeouts, NACKs and cancels
// finish requests in any order), and live budget changes (the BDP
// re-derivation) — and cross-checks every observable against a
// reference model that is nothing but a slice of outstanding sizes.
// A divergence here is a leaked or conjured credit: exactly the bug
// class the post-quiesce CheckIdle audit exists to catch, found at
// fuzz speed instead of chaos-suite speed.
func FuzzCreditAccounting(f *testing.F) {
	f.Add([]byte{0, 10, 0, 20, 1, 2, 1, 1})              // admit, admit, release both orders
	f.Add([]byte{0, 255, 0, 255, 0, 255, 2, 1, 1, 1})    // fill past the watermark, shrink, drain
	f.Add([]byte{3, 1, 0, 200, 0, 200, 1, 0, 3, 255})    // tiny budget, oversized single, regrow
	f.Add([]byte("admit-release-admit-release-overrun")) // arbitrary ascii soup
	f.Fuzz(func(t *testing.T, data []byte) {
		const (
			maxReqs  = 4
			maxBytes = 512
		)
		l := NewLedger(maxReqs, maxBytes, 0.8, 0.5)
		curReqs, curBytes := maxReqs, int64(maxBytes)
		var outstanding []int64
		sum := func() int64 {
			var s int64
			for _, n := range outstanding {
				s += n
			}
			return s
		}
		degraded := false
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]&3, int64(data[i+1])
			switch op {
			case 0: // TryAcquire(arg * 4) — sizes up to 1020 cross the 512 budget
				n := arg * 4
				wantOK := len(outstanding)+1 <= curReqs &&
					(sum()+n <= int64(curBytes) || len(outstanding) == 0)
				ok, _ := l.TryAcquire(n)
				if ok != wantOK {
					t.Fatalf("op %d: TryAcquire(%d) = %v, model (reqs %d/%d, bytes %d/%d) says %v",
						i/2, n, ok, len(outstanding), curReqs, sum(), curBytes, wantOK)
				}
				if ok {
					outstanding = append(outstanding, n)
				}
			case 1: // Release oldest (completion order)
				if len(outstanding) == 0 {
					continue
				}
				l.Release(outstanding[0])
				outstanding = outstanding[1:]
			case 2: // Release newest (out-of-order completion)
				if len(outstanding) == 0 {
					continue
				}
				l.Release(outstanding[len(outstanding)-1])
				outstanding = outstanding[:len(outstanding)-1]
			case 3: // SetLimits — live re-derivation, including shrink-under-load
				curReqs = 1 + int(arg)%8
				curBytes = int64(64 + 64*(arg%16))
				l.SetLimits(curReqs, curBytes)
			}
			// Re-derive the reference degraded flag with the same
			// hysteresis rule, from first principles each step.
			u := float64(len(outstanding)) / float64(curReqs)
			if ub := float64(sum()) / float64(curBytes); ub > u {
				u = ub
			}
			if !degraded && u >= 0.8 {
				degraded = true
			} else if degraded && u <= 0.5 {
				degraded = false
			}
			reqs, bytes := l.Inflight()
			if reqs != len(outstanding) || bytes != sum() {
				t.Fatalf("op %d: inflight (%d, %d) diverged from model (%d, %d)",
					i/2, reqs, bytes, len(outstanding), sum())
			}
			if l.Degraded() != degraded {
				t.Fatalf("op %d: degraded %v, model (util %.3f) says %v", i/2, l.Degraded(), u, degraded)
			}
			if l.Idle() != (len(outstanding) == 0) {
				t.Fatalf("op %d: Idle() = %v with %d outstanding", i/2, l.Idle(), len(outstanding))
			}
		}
		// Drain everything: a balanced history must leave an idle ledger.
		for _, n := range outstanding {
			l.Release(n)
		}
		if !l.Idle() {
			t.Fatalf("credits leaked after full drain: %+v", l.Snapshot())
		}
	})
}
