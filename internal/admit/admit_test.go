package admit

import (
	"sync"
	"testing"
)

func TestAcquireReleaseBudgets(t *testing.T) {
	l := NewLedger(2, 100, 0.85, 0.6)
	if ok, _ := l.TryAcquire(60); !ok {
		t.Fatal("first acquire refused under an empty ledger")
	}
	if ok, _ := l.TryAcquire(60); ok {
		t.Fatal("second acquire granted past the byte budget")
	}
	if ok, _ := l.TryAcquire(30); !ok {
		t.Fatal("fitting acquire refused")
	}
	if ok, _ := l.TryAcquire(1); ok {
		t.Fatal("third acquire granted past the request budget")
	}
	l.Release(60)
	l.Release(30)
	if !l.Idle() {
		t.Fatalf("ledger not idle after matched releases: %+v", l.Snapshot())
	}
}

func TestOversizedSingleAdmitsWhenEmpty(t *testing.T) {
	l := NewLedger(4, 100, 0.85, 0.6)
	if ok, _ := l.TryAcquire(1000); !ok {
		t.Fatal("oversized submission refused by an empty ledger; it could never progress")
	}
	if ok, _ := l.TryAcquire(1); ok {
		t.Fatal("acquire granted while an oversized submission holds the whole budget")
	}
	l.Release(1000)
	if !l.Idle() {
		t.Fatal("ledger not idle after the oversized release")
	}
}

func TestWatermarkHysteresis(t *testing.T) {
	l := NewLedger(100, 1000, 0.8, 0.5)
	if _, flipped := l.TryAcquire(700); flipped || l.Degraded() {
		t.Fatal("degraded below the high watermark")
	}
	if _, flipped := l.TryAcquire(150); !flipped || !l.Degraded() {
		t.Fatal("not degraded at 85% utilization with a 80% high watermark")
	}
	// Drain into the hysteresis band: still degraded.
	if flipped := l.Release(150); flipped || !l.Degraded() {
		t.Fatal("recovered inside the hysteresis band")
	}
	// Drain past the low watermark: recovered.
	if flipped := l.Release(700); !flipped || l.Degraded() {
		t.Fatal("still degraded below the low watermark")
	}
}

func TestSetLimitsReevaluatesWatermark(t *testing.T) {
	l := NewLedger(100, 1000, 0.8, 0.5)
	l.TryAcquire(400)
	if l.Degraded() {
		t.Fatal("degraded at 40% utilization")
	}
	if flipped := l.SetLimits(100, 450); !flipped || !l.Degraded() {
		t.Fatal("shrinking the budget under live holdings must enter degraded mode")
	}
	if flipped := l.SetLimits(100, 10000); !flipped || l.Degraded() {
		t.Fatal("growing the budget must recover")
	}
}

func TestReleaseUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("release without a matching acquire did not panic")
		}
	}()
	NewLedger(4, 100, 0.85, 0.6).Release(1)
}

func TestWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.MaxRequests != DefaultMaxRequests || c.MaxBytes != DefaultMaxBytes {
		t.Fatalf("budgets not defaulted: %+v", c)
	}
	if c.HighWater != DefaultHighWater || c.LowWater != DefaultLowWater {
		t.Fatalf("watermarks not defaulted: %+v", c)
	}
	if c.MaxWaiters != 4*DefaultMaxRequests {
		t.Fatalf("waiter bound not defaulted: %+v", c)
	}
	if c.GateRequests != 0 || c.GateBytes != 0 {
		t.Fatalf("gate budgets must stay zero (live BDP derivation): %+v", c)
	}
	// An inverted watermark pair must come out consistent.
	c = Config{HighWater: 0.3, LowWater: 0.9}.WithDefaults()
	if c.LowWater >= c.HighWater {
		t.Fatalf("inverted watermarks not repaired: %+v", c)
	}
}

func TestConcurrentAccountingBalances(t *testing.T) {
	l := NewLedger(64, 1<<20, 0.85, 0.6)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if ok, _ := l.TryAcquire(4096); ok {
					l.Release(4096)
				}
			}
		}()
	}
	wg.Wait()
	if !l.Idle() {
		t.Fatalf("credits leaked under concurrency: %+v", l.Snapshot())
	}
}

// BenchmarkAdmitContended is the overload-plane hot path: many
// producer goroutines acquiring and releasing against one shared
// ledger — the per-submission cost admission control adds to Isend.
func BenchmarkAdmitContended(b *testing.B) {
	l := NewLedger(1<<16, 1<<30, 0.85, 0.6)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if ok, _ := l.TryAcquire(4096); ok {
				l.Release(4096)
			}
		}
	})
	if !l.Idle() {
		b.Fatal("credits leaked")
	}
}
