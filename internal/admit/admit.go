// Package admit is the engine-level admission-control plane: bounded
// credit ledgers that cap in-flight work (requests and payload bytes)
// per scope — an engine, a gate — with a watermark-based degraded mode
// for graceful load shedding.
//
// The package is deliberately mechanism, not policy: a Ledger only
// answers "do credits exist for this submission?" and tracks a
// degraded flag with hysteresis. What happens on a refusal — block the
// submitter with a deadline, fail fast, shed selectively while
// inflight work drains — is the caller's decision (internal/nmad wires
// the three policies into Isend/IrecvInto). That split keeps the
// accounting a closed arithmetic model a fuzzer can check against a
// reference counter (FuzzCreditAccounting), independent of any
// protocol behaviour.
//
// Credits are conservative: one request credit plus its payload bytes
// are taken before injection and returned exactly once when the
// request reaches any terminal state — completion, timeout, NACK,
// cancellation, gate failure, engine close. A scope whose traffic has
// fully quiesced must report Idle; anything else is a leaked credit,
// and the cluster harness audits exactly that after every scenario.
package admit

import "sync"

// Defaults for unset Config fields. The byte budget is sized so a
// default engine (8 KiB eager threshold) can hold hundreds of large
// transfers before refusing work; per-gate budgets are normally
// derived live from the rails' bandwidth-delay product instead (see
// internal/nmad).
const (
	// DefaultMaxRequests bounds in-flight requests per scope.
	DefaultMaxRequests = 1024
	// DefaultMaxBytes bounds in-flight payload bytes per scope.
	DefaultMaxBytes = 64 << 20
	// DefaultHighWater is the utilization fraction at which a scope
	// enters degraded mode.
	DefaultHighWater = 0.85
	// DefaultLowWater is the utilization fraction at which a degraded
	// scope recovers. The gap against DefaultHighWater is the
	// hysteresis band that stops the flag from flapping at the
	// boundary.
	DefaultLowWater = 0.6
)

// Config bounds an admission scope. The zero value of any field means
// "use the default" (WithDefaults fills them in); GateRequests and
// GateBytes are exceptions — zero there means "derive the gate budget
// live from the rails' measured bandwidth-delay product".
type Config struct {
	// MaxRequests bounds in-flight admitted requests engine-wide
	// (0 → DefaultMaxRequests).
	MaxRequests int
	// MaxBytes bounds in-flight admitted payload bytes engine-wide
	// (0 → DefaultMaxBytes).
	MaxBytes int64
	// GateRequests bounds in-flight admitted requests per gate; 0
	// derives the budget from the gate's live BDP estimate.
	GateRequests int
	// GateBytes bounds in-flight admitted payload bytes per gate; 0
	// derives the budget from the gate's live BDP estimate.
	GateBytes int64
	// HighWater is the utilization fraction (of either budget
	// dimension) at which the scope turns degraded (0 →
	// DefaultHighWater).
	HighWater float64
	// LowWater is the utilization fraction at which a degraded scope
	// recovers (0 → DefaultLowWater).
	LowWater float64
	// MaxWaiters bounds how many refused submissions a blocking policy
	// may park awaiting credits (0 → 4 × MaxRequests). A full wait
	// queue rejects instead of queueing without bound — the queue is
	// itself admission-controlled.
	MaxWaiters int
}

// WithDefaults returns the config with every unset field replaced by
// its default. GateRequests and GateBytes are left alone: zero is
// meaningful there (live BDP derivation).
func (c Config) WithDefaults() Config {
	if c.MaxRequests <= 0 {
		c.MaxRequests = DefaultMaxRequests
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = DefaultMaxBytes
	}
	if c.HighWater <= 0 || c.HighWater > 1 {
		c.HighWater = DefaultHighWater
	}
	if c.LowWater <= 0 || c.LowWater >= c.HighWater {
		c.LowWater = DefaultLowWater
		if c.LowWater >= c.HighWater {
			c.LowWater = c.HighWater / 2
		}
	}
	if c.MaxWaiters <= 0 {
		c.MaxWaiters = 4 * c.MaxRequests
	}
	return c
}

// Ledger is one admission scope's credit ledger: in-flight requests
// and payload bytes against their budgets, plus the degraded flag with
// watermark hysteresis. All methods are safe for concurrent use.
type Ledger struct {
	mu       sync.Mutex
	maxReqs  int
	maxBytes int64
	high     float64
	low      float64
	reqs     int
	bytes    int64
	degraded bool
}

// NewLedger builds a ledger with the given budgets and watermarks.
// Non-positive budgets fall back to the package defaults; watermarks
// outside (0, 1] likewise.
func NewLedger(maxReqs int, maxBytes int64, high, low float64) *Ledger {
	if maxReqs <= 0 {
		maxReqs = DefaultMaxRequests
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if high <= 0 || high > 1 {
		high = DefaultHighWater
	}
	if low <= 0 || low >= high {
		low = min(DefaultLowWater, high/2)
	}
	return &Ledger{maxReqs: maxReqs, maxBytes: maxBytes, high: high, low: low}
}

// SetLimits replaces the ledger's budgets in place — how a gate ledger
// tracks the live BDP estimate as calibration refines it. Shrinking
// below current holdings is allowed: nothing is revoked, the scope is
// simply over budget until releases drain it, and the watermark is
// re-evaluated against the new limits immediately.
func (l *Ledger) SetLimits(maxReqs int, maxBytes int64) (flipped bool) {
	if maxReqs <= 0 {
		maxReqs = DefaultMaxRequests
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.maxReqs, l.maxBytes = maxReqs, maxBytes
	return l.watermarkLocked()
}

// TryAcquire takes one request credit plus n payload bytes if the
// budgets allow, reporting whether it succeeded and whether the
// degraded flag flipped as a result. An otherwise-empty ledger admits
// a single submission larger than the whole byte budget — an
// oversized message must be able to progress alone, or a blocking
// submitter would wait forever on credits that can never exist.
func (l *Ledger) TryAcquire(n int64) (ok, flipped bool) {
	if n < 0 {
		n = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.reqs+1 > l.maxReqs {
		return false, false
	}
	if l.bytes+n > l.maxBytes && l.reqs > 0 {
		return false, false
	}
	l.reqs++
	l.bytes += n
	return true, l.watermarkLocked()
}

// Release returns one request credit plus n payload bytes, reporting
// whether the degraded flag flipped. Releasing credits that were never
// acquired is a caller accounting bug and panics loudly — a silent
// underflow would defeat the leak audit the ledger exists to serve.
func (l *Ledger) Release(n int64) (flipped bool) {
	if n < 0 {
		n = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reqs--
	l.bytes -= n
	if l.reqs < 0 || l.bytes < 0 {
		panic("admit: credit underflow (release without matching acquire)")
	}
	return l.watermarkLocked()
}

// watermarkLocked re-evaluates the degraded flag against the current
// utilization and reports whether it flipped. Called with l.mu held.
func (l *Ledger) watermarkLocked() bool {
	u := l.utilLocked()
	switch {
	case !l.degraded && u >= l.high:
		l.degraded = true
		return true
	case l.degraded && u <= l.low:
		l.degraded = false
		return true
	}
	return false
}

// utilLocked is the scope's utilization: the worse of the two budget
// dimensions, as a fraction. Called with l.mu held.
func (l *Ledger) utilLocked() float64 {
	ur := float64(l.reqs) / float64(l.maxReqs)
	ub := float64(l.bytes) / float64(l.maxBytes)
	return max(ur, ub)
}

// Degraded reports whether the scope is in degraded mode: utilization
// crossed the high watermark and has not yet drained below the low
// one.
func (l *Ledger) Degraded() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.degraded
}

// Inflight returns the credits currently held: admitted requests and
// payload bytes.
func (l *Ledger) Inflight() (reqs int, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reqs, l.bytes
}

// Limits returns the current budgets.
func (l *Ledger) Limits() (maxReqs int, maxBytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.maxReqs, l.maxBytes
}

// Idle reports whether the ledger holds no credits — the post-quiesce
// invariant: every admitted request returned what it took.
func (l *Ledger) Idle() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reqs == 0 && l.bytes == 0
}

// Snapshot is a point-in-time view of a ledger, for metrics export.
type Snapshot struct {
	// Requests and Bytes are the credits currently held.
	Requests int
	// Bytes is the payload-byte credits currently held.
	Bytes int64
	// MaxRequests and MaxBytes are the budgets.
	MaxRequests int
	// MaxBytes is the payload-byte budget.
	MaxBytes int64
	// Degraded reports the watermark state.
	Degraded bool
}

// Snapshot returns the ledger's current state in one consistent read.
func (l *Ledger) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Snapshot{
		Requests:    l.reqs,
		Bytes:       l.bytes,
		MaxRequests: l.maxReqs,
		MaxBytes:    l.maxBytes,
		Degraded:    l.degraded,
	}
}
