// Package simmpi models three MPI-like communication engines in virtual
// time, differing only in their progression policy — the axis the paper's
// evaluation isolates (Figures 4-7):
//
//   - MVAPICHLike / OpenMPILike: progression happens only inside MPI
//     calls. Blocked threads poll the NIC under the library's global
//     lock; computing threads make no progress. The rendezvous uses
//     RDMA Read, so sender-side overlap works without sender polling,
//     but receiver-side overlap does not.
//   - PIOManLike: the progression policy of PIOMan + NewMadeleine.
//     A background progression context (idle cores and timer hooks
//     executing polling tasks) advances the protocol while application
//     threads compute; blocked threads sleep on a condition instead of
//     polling, so latency stays flat as thread counts grow.
//
// The protocol structure (eager for small messages, RTS / RDMA-Read /
// FIN rendezvous for large ones) is shared; only who makes it progress
// differs. Engines run on internal/simnet fabrics under internal/simtime.
package simmpi

import (
	"fmt"

	"pioman/internal/simnet"
	"pioman/internal/simtime"
)

// EngineKind selects a progression policy.
type EngineKind int

const (
	// MVAPICHLike models MVAPICH2 1.2: polling-only progression under a
	// global lock, RDMA-Read rendezvous.
	MVAPICHLike EngineKind = iota
	// OpenMPILike models OpenMPI 1.3: the same structure with slightly
	// higher per-call overheads.
	OpenMPILike
	// PIOManLike models MadMPI: NewMadeleine over the PIOMan task engine,
	// with background progression and blocking waits.
	PIOManLike
)

// String names the engine kind as it appears in the paper's plots.
func (k EngineKind) String() string {
	switch k {
	case MVAPICHLike:
		return "MVAPICH"
	case OpenMPILike:
		return "OpenMPI"
	case PIOManLike:
		return "PIOMan"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// Config parameterizes an engine.
type Config struct {
	Kind EngineKind
	// EagerThreshold is the largest payload sent eagerly (default 16 KiB).
	EagerThreshold int
	// Cores is the number of cores of the node (defaults to 8, the
	// BORDERLINE machines).
	Cores int
	// PollYield is the pause between two polling iterations of a blocked
	// thread (polling engines) — a sched_yield, roughly.
	PollYield simtime.Duration
	// LockHold is the extra time the library lock is held per poll
	// iteration beyond the raw CQ poll (request bookkeeping).
	LockHold simtime.Duration
	// ScheduleQuantum models OS time-slicing pressure: each poll
	// iteration is delayed by Quantum * max(0, pollers-cores)/cores.
	ScheduleQuantum simtime.Duration
	// ProgressInterval is the background progression period of the
	// PIOMan engine (idle-core polling tasks re-executed from the
	// per-core queues; timer hooks bound the worst case).
	ProgressInterval simtime.Duration
	// TaskOverhead is the PIOMan per-event task cost (create/schedule/
	// complete a task — ≈0.7 µs per Table I plus wrapper bookkeeping).
	TaskOverhead simtime.Duration
	// WakeLatency is the cost of waking a thread blocked on a condition
	// (PIOMan) — a context switch.
	WakeLatency simtime.Duration
	// ExtraCallOverhead is added to every MPI call (differentiates
	// OpenMPI's heavier call path).
	ExtraCallOverhead simtime.Duration
}

// DefaultConfig returns calibrated constants for the given engine kind.
func DefaultConfig(kind EngineKind) Config {
	cfg := Config{
		Kind:             kind,
		EagerThreshold:   16 << 10,
		Cores:            8,
		PollYield:        400,
		LockHold:         900,
		ScheduleQuantum:  3500,
		ProgressInterval: 600,
		TaskOverhead:     2200,
		WakeLatency:      2000,
	}
	if kind == OpenMPILike {
		cfg.ExtraCallOverhead = 400
	}
	return cfg
}

// ctrlKind discriminates protocol messages.
type ctrlKind int

const (
	ctrlEager ctrlKind = iota
	ctrlRTS
	ctrlFIN
)

// ctrl is the wire-protocol metadata attached to simnet messages.
type ctrl struct {
	kind ctrlKind
	tag  int
	size int
	sreq *Request // sender's request, echoed back in the FIN
}

// Request is a non-blocking operation handle.
type Request struct {
	eng    *Engine
	isSend bool
	peer   int
	tag    int
	size   int
	done   bool
	sig    *simtime.Signal

	// matched marks a posted receive whose RTS has been seen (pull in
	// flight).
	matched bool
}

// Done reports completion.
func (r *Request) Done() bool { return r.done }

func (r *Request) complete() {
	if r.done {
		return
	}
	r.done = true
	r.eng.active--
	r.sig.Fire()
}

// Engine is one MPI process on a fabric node.
type Engine struct {
	cfg  Config
	sim  *simtime.Sim
	node *simnet.Node

	lock *simtime.Mutex // polling engines' global library lock

	recvQ      []*Request
	unexpected []pendingMsg

	pollers int // threads currently inside a polling Wait

	// active counts incomplete requests; the background progression task
	// parks when it reaches zero (a completed polling task is not
	// re-submitted until there is work again).
	active   int
	idleWait *simtime.Signal

	started bool
}

// pendingMsg is an arrived control message with no matching receive yet.
type pendingMsg struct {
	from int
	c    ctrl
}

// NewEngine creates an engine bound to a fabric node.
func NewEngine(sim *simtime.Sim, node *simnet.Node, cfg Config) *Engine {
	if cfg.EagerThreshold <= 0 {
		cfg.EagerThreshold = 16 << 10
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 8
	}
	e := &Engine{cfg: cfg, sim: sim, node: node, lock: sim.NewMutex()}
	return e
}

// Kind returns the engine's progression policy.
func (e *Engine) Kind() EngineKind { return e.cfg.Kind }

// Start launches background progression for the PIOMan engine: the
// equivalent of a repeated polling task executed from per-core queues by
// idle cores, with timer hooks bounding the polling period. Must be
// called once before communicating; it is a no-op for polling engines.
func (e *Engine) Start() {
	if e.started {
		return
	}
	e.started = true
	if e.cfg.Kind != PIOManLike {
		return
	}
	e.sim.Spawn(fmt.Sprintf("pioman-progress-%d", e.node.ID()), func(p *simtime.Proc) {
		for {
			// Park while there is nothing to progress: PIOMan's polling
			// tasks complete when their request does and are only
			// re-submitted with new communication.
			for e.active == 0 && e.node.NIC(0).Pending() == 0 {
				e.idleWait = e.sim.NewSignal()
				e.idleWait.Wait(p)
			}
			// The polling task is repeated: it re-enqueues itself until
			// the poll succeeds, and idle cores / timer hooks bound the
			// period between executions.
			if !e.progressOnce(p) {
				p.Sleep(e.cfg.ProgressInterval)
			}
		}
	})
}

// kick wakes a parked background progression task (new work arrived).
func (e *Engine) kick() {
	if e.idleWait != nil {
		e.idleWait.Fire()
	}
}

func (e *Engine) net() simnet.Params { return e.node.Params() }
