package simmpi

import (
	"testing"

	"pioman/internal/simnet"
	"pioman/internal/simtime"
)

// pair builds a two-node fabric with one engine of the given kind on
// each node.
func pair(kind EngineKind) (*simtime.Sim, *Engine, *Engine) {
	sim := simtime.New()
	f := simnet.NewFabric(sim, simnet.IBParams())
	a := f.AddNode(1)
	b := f.AddNode(1)
	ea := NewEngine(sim, a, DefaultConfig(kind))
	eb := NewEngine(sim, b, DefaultConfig(kind))
	ea.Start()
	eb.Start()
	return sim, ea, eb
}

func TestEagerPingPongAllEngines(t *testing.T) {
	for _, kind := range []EngineKind{MVAPICHLike, OpenMPILike, PIOManLike} {
		t.Run(kind.String(), func(t *testing.T) {
			sim, ea, eb := pair(kind)
			defer sim.Close()
			var rtt simtime.Duration
			sim.Spawn("sender", func(p *simtime.Proc) {
				start := p.Now()
				sreq := ea.Isend(p, 1, 7, 4)
				ea.Wait(p, sreq)
				rreq := ea.Irecv(p, 1, 8, 4)
				ea.Wait(p, rreq)
				rtt = p.Now() - start
			})
			sim.Spawn("receiver", func(p *simtime.Proc) {
				rreq := eb.Irecv(p, 0, 7, 4)
				eb.Wait(p, rreq)
				sreq := eb.Isend(p, 0, 8, 4)
				eb.Wait(p, sreq)
			})
			sim.Run()
			if rtt <= 0 {
				t.Fatal("ping-pong did not complete")
			}
			oneWay := float64(rtt) / 2000.0 // µs
			if oneWay < 1 || oneWay > 30 {
				t.Errorf("%v one-way latency = %.1f µs, want single-digit-ish", kind, oneWay)
			}
		})
	}
}

func TestRendezvousTransfersLargeMessage(t *testing.T) {
	for _, kind := range []EngineKind{MVAPICHLike, PIOManLike} {
		t.Run(kind.String(), func(t *testing.T) {
			sim, ea, eb := pair(kind)
			defer sim.Close()
			const size = 1 << 20
			var sendDone, recvDone simtime.Time
			sim.Spawn("sender", func(p *simtime.Proc) {
				req := ea.Isend(p, 1, 1, size)
				ea.Wait(p, req)
				sendDone = p.Now()
			})
			sim.Spawn("receiver", func(p *simtime.Proc) {
				req := eb.Irecv(p, 0, 1, size)
				eb.Wait(p, req)
				recvDone = p.Now()
			})
			sim.Run()
			if sendDone == 0 || recvDone == 0 {
				t.Fatal("rendezvous did not complete")
			}
			// 1 MB at 0.65 ns/B ≈ 680 µs of wire time; both sides must
			// take at least that and not absurdly more.
			min := simtime.Time(600 * 1000)
			max := simtime.Time(2000 * 1000)
			if recvDone < min || recvDone > max {
				t.Errorf("recv completed at %v, want within [0.6ms, 2ms]", recvDone)
			}
			// FIN arrives after the pull: sender completes after receiver
			// started pulling, within a latency of the receive completion.
			if sendDone < recvDone-simtime.Time(50_000) {
				t.Errorf("sender completed at %v, long before receiver %v", sendDone, recvDone)
			}
		})
	}
}

func TestUnexpectedMessageBeforeIrecv(t *testing.T) {
	sim, ea, eb := pair(PIOManLike)
	defer sim.Close()
	var completed bool
	sim.Spawn("sender", func(p *simtime.Proc) {
		req := ea.Isend(p, 1, 3, 8)
		ea.Wait(p, req)
	})
	sim.Spawn("receiver", func(p *simtime.Proc) {
		p.Sleep(50 * simtime.Microsecond) // eager data arrives first
		req := eb.Irecv(p, 0, 3, 8)
		eb.Wait(p, req)
		completed = true
	})
	sim.Run()
	if !completed {
		t.Fatal("late Irecv never matched the unexpected eager message")
	}
}

func TestTagMatchingSeparatesFlows(t *testing.T) {
	sim, ea, eb := pair(PIOManLike)
	defer sim.Close()
	var got []int
	sim.Spawn("sender", func(p *simtime.Proc) {
		r1 := ea.Isend(p, 1, 10, 4)
		r2 := ea.Isend(p, 1, 20, 4)
		ea.WaitAll(p, r1, r2)
	})
	sim.Spawn("receiver", func(p *simtime.Proc) {
		// Post in reverse tag order; matching must pair by tag.
		r20 := eb.Irecv(p, 0, 20, 4)
		r10 := eb.Irecv(p, 0, 10, 4)
		eb.Wait(p, r10)
		got = append(got, 10)
		eb.Wait(p, r20)
		got = append(got, 20)
	})
	sim.Run()
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestReceiverSideOverlapOnlyPIOMan(t *testing.T) {
	// The core Figure 6 mechanism: receiver computes between Irecv and
	// Wait. Polling engines make no progress during the computation, so
	// total time ≈ compute + transfer. PIOMan's background progression
	// pulls the data during the computation, so total ≈ max(compute,
	// transfer).
	const size = 1 << 20                       // 1 MB
	const compute = 1500 * simtime.Microsecond // > transfer time ≈ 700µs

	total := func(kind EngineKind) simtime.Duration {
		sim, ea, eb := pair(kind)
		defer sim.Close()
		var t0, t1 simtime.Time
		sim.Spawn("sender", func(p *simtime.Proc) {
			req := ea.Isend(p, 1, 1, size)
			ea.Wait(p, req)
		})
		sim.Spawn("receiver", func(p *simtime.Proc) {
			t0 = p.Now()
			req := eb.Irecv(p, 0, 1, size)
			p.Sleep(compute)
			eb.Wait(p, req)
			t1 = p.Now()
		})
		sim.Run()
		return t1 - t0
	}

	tPioman := total(PIOManLike)
	tMvapich := total(MVAPICHLike)
	// PIOMan: ≈ compute (transfer hidden). MVAPICH: ≈ compute + transfer.
	if tPioman > compute+compute/4 {
		t.Errorf("PIOMan receiver-side total = %v, want ≈%v (overlapped)", tPioman, compute)
	}
	if tMvapich < compute+400*simtime.Microsecond {
		t.Errorf("MVAPICH receiver-side total = %v, want > compute+transfer (no overlap)", tMvapich)
	}
}

func TestSenderSideOverlapAllEngines(t *testing.T) {
	// Figure 5 mechanism: RDMA-Read lets the receiver pull data without
	// the sender's host, so even polling engines overlap on the sender
	// side.
	const size = 1 << 20
	const compute = 1500 * simtime.Microsecond

	total := func(kind EngineKind) simtime.Duration {
		sim, ea, eb := pair(kind)
		defer sim.Close()
		var t0, t1 simtime.Time
		sim.Spawn("sender", func(p *simtime.Proc) {
			t0 = p.Now()
			req := ea.Isend(p, 1, 1, size)
			p.Sleep(compute)
			ea.Wait(p, req)
			t1 = p.Now()
		})
		sim.Spawn("receiver", func(p *simtime.Proc) {
			req := eb.Irecv(p, 0, 1, size)
			eb.Wait(p, req)
		})
		sim.Run()
		return t1 - t0
	}

	for _, kind := range []EngineKind{MVAPICHLike, OpenMPILike, PIOManLike} {
		tot := total(kind)
		if tot > compute+compute/4 {
			t.Errorf("%v sender-side total = %v, want ≈%v (overlapped)", kind, tot, compute)
		}
	}
}

func TestPIOManLatencyFlatWithThreads(t *testing.T) {
	// Figure 4 mechanism, miniature: receiver threads blocked on a
	// condition do not contend, so latency stays flat; polling threads
	// contend on the library lock, so latency grows.
	latency := func(kind EngineKind, threads int) float64 {
		sim, ea, eb := pair(kind)
		defer sim.Close()
		const rounds = 20
		var sum simtime.Duration
		for th := 0; th < threads; th++ {
			tag := th
			sim.Spawn("rthread", func(p *simtime.Proc) {
				for r := 0; r < rounds; r++ {
					req := eb.Irecv(p, 0, tag, 4)
					eb.Wait(p, req)
					rep := eb.Isend(p, 0, 1000+tag, 4)
					eb.Wait(p, rep)
				}
			})
		}
		sim.Spawn("sender", func(p *simtime.Proc) {
			for r := 0; r < rounds; r++ {
				for th := 0; th < threads; th++ {
					start := p.Now()
					ea.Wait(p, ea.Isend(p, 1, th, 4))
					rep := ea.Irecv(p, 1, 1000+th, 4)
					ea.Wait(p, rep)
					sum += p.Now() - start
				}
			}
		})
		sim.Run()
		return float64(sum) / float64(rounds*threads) / 2000.0 // one-way µs
	}

	pioman1 := latency(PIOManLike, 1)
	pioman32 := latency(PIOManLike, 32)
	mvapich1 := latency(MVAPICHLike, 1)
	mvapich32 := latency(MVAPICHLike, 32)

	if pioman32 > pioman1*2 {
		t.Errorf("PIOMan latency grew with threads: %.1f µs @1 -> %.1f µs @32", pioman1, pioman32)
	}
	if mvapich32 < mvapich1*3 {
		t.Errorf("MVAPICH latency should grow with threads: %.1f µs @1 -> %.1f µs @32", mvapich1, mvapich32)
	}
	if mvapich1 > pioman1 {
		t.Errorf("single-thread base latency: MVAPICH (%.1f) should undercut PIOMan (%.1f)", mvapich1, pioman1)
	}
}

func TestOpenMPISlowerThanMVAPICH(t *testing.T) {
	lat := func(kind EngineKind) simtime.Duration {
		sim, ea, eb := pair(kind)
		defer sim.Close()
		var rtt simtime.Duration
		sim.Spawn("r", func(p *simtime.Proc) {
			eb.Wait(p, eb.Irecv(p, 0, 1, 4))
			eb.Wait(p, eb.Isend(p, 0, 2, 4))
		})
		sim.Spawn("s", func(p *simtime.Proc) {
			start := p.Now()
			ea.Wait(p, ea.Isend(p, 1, 1, 4))
			ea.Wait(p, ea.Irecv(p, 1, 2, 4))
			rtt = p.Now() - start
		})
		sim.Run()
		return rtt
	}
	if lat(OpenMPILike) <= lat(MVAPICHLike) {
		t.Error("OpenMPI-like call path should be slightly slower than MVAPICH-like")
	}
}

func TestDeterministic(t *testing.T) {
	run := func() simtime.Time {
		sim, ea, eb := pair(PIOManLike)
		defer sim.Close()
		sim.Spawn("s", func(p *simtime.Proc) {
			ea.Wait(p, ea.Isend(p, 1, 1, 1<<20))
		})
		sim.Spawn("r", func(p *simtime.Proc) {
			eb.Wait(p, eb.Irecv(p, 0, 1, 1<<20))
		})
		return sim.Run()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}
