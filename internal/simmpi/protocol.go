package simmpi

import (
	"pioman/internal/simnet"
	"pioman/internal/simtime"
)

// ctrlBytes is the wire size of a control message (RTS/FIN header).
const ctrlBytes = 64

// taskDelay returns the PIOMan per-event task-management cost (creating,
// scheduling and completing a task), zero for the polling engines.
func (e *Engine) taskDelay() simtime.Duration {
	if e.cfg.Kind == PIOManLike {
		return e.cfg.TaskOverhead
	}
	return 0
}

// Isend starts a non-blocking send of size bytes to dst with the given
// tag. It must be called from a simulation process; the posting costs
// are charged to that process.
func (e *Engine) Isend(p *simtime.Proc, dst, tag, size int) *Request {
	req := &Request{eng: e, isSend: true, peer: dst, tag: tag, size: size, sig: e.sim.NewSignal()}
	e.active++
	e.kick()
	p.Sleep(e.net().SendOverhead + e.cfg.ExtraCallOverhead + e.taskDelay())
	if size <= e.cfg.EagerThreshold {
		// Eager: payload leaves immediately and the send buffer is
		// considered reusable once posted (buffered semantics).
		e.node.NIC(0).PostSend(dst, size+ctrlBytes, ctrl{kind: ctrlEager, tag: tag, size: size})
		req.complete()
		return req
	}
	// Rendezvous: announce with an RTS; the receiver pulls via RDMA Read
	// and confirms with a FIN.
	e.node.NIC(0).PostSend(dst, ctrlBytes, ctrl{kind: ctrlRTS, tag: tag, size: size, sreq: req})
	return req
}

// Irecv posts a non-blocking receive matching the given tag from src
// (src < 0 matches any source).
func (e *Engine) Irecv(p *simtime.Proc, src, tag, size int) *Request {
	req := &Request{eng: e, peer: src, tag: tag, size: size, sig: e.sim.NewSignal()}
	e.active++
	e.kick()
	p.Sleep(e.net().RecvOverhead/2 + e.cfg.ExtraCallOverhead)
	e.recvQ = append(e.recvQ, req)
	// An RTS or eager payload may already have arrived unexpectedly.
	e.matchUnexpected(p)
	return req
}

// matchUnexpected re-scans the unexpected-message queue against posted
// receives.
func (e *Engine) matchUnexpected(p *simtime.Proc) {
	for i := 0; i < len(e.unexpected); i++ {
		m := e.unexpected[i]
		if req := e.findRecv(m.c.tag, m.from); req != nil {
			e.unexpected = append(e.unexpected[:i], e.unexpected[i+1:]...)
			i--
			e.deliver(p, m.from, m.c, req)
		}
	}
}

// findRecv returns the oldest posted, unmatched receive for (tag, src).
func (e *Engine) findRecv(tag, src int) *Request {
	for _, r := range e.recvQ {
		if !r.matched && !r.done && r.tag == tag && (r.peer < 0 || r.peer == src) {
			return r
		}
	}
	return nil
}

// removeRecv drops a completed receive from the posted queue.
func (e *Engine) removeRecv(req *Request) {
	for i, r := range e.recvQ {
		if r == req {
			e.recvQ = append(e.recvQ[:i], e.recvQ[i+1:]...)
			return
		}
	}
}

// deliver processes a matched control message against a posted receive.
func (e *Engine) deliver(p *simtime.Proc, from int, c ctrl, req *Request) {
	switch c.kind {
	case ctrlEager:
		p.Sleep(e.net().RecvOverhead + e.taskDelay())
		e.removeRecv(req)
		req.complete()
	case ctrlRTS:
		// Pull the payload from the sender's memory; the sender's host is
		// not involved (RDMA Read), so the transfer proceeds even while
		// the sender computes.
		req.matched = true
		p.Sleep(e.taskDelay())
		e.node.NIC(0).PostRDMARead(from, c.size, rdmaMeta{req: req, sreq: c.sreq, from: from})
	}
}

// rdmaMeta links an RDMA completion back to both requests.
type rdmaMeta struct {
	req  *Request // local receive
	sreq *Request // sender-side request, echoed in the FIN
	from int
}

// progressOnce polls the NIC once and handles at most one completion.
// Returns whether anything was processed. CQ poll cost is charged to p;
// pacing between polls is the caller's business.
func (e *Engine) progressOnce(p *simtime.Proc) bool {
	p.Sleep(e.net().PollCost)
	comp, ok := e.node.NIC(0).Poll()
	if !ok {
		return false
	}
	e.handle(p, comp)
	return true
}

// handle dispatches one completion.
func (e *Engine) handle(p *simtime.Proc, comp simnet.Completion) {
	switch comp.Kind {
	case simnet.CompRecv:
		c, ok := comp.Meta.(ctrl)
		if !ok {
			return
		}
		switch c.kind {
		case ctrlEager, ctrlRTS:
			if req := e.findRecv(c.tag, comp.From); req != nil {
				e.deliver(p, comp.From, c, req)
			} else {
				e.unexpected = append(e.unexpected, pendingMsg{from: comp.From, c: c})
			}
		case ctrlFIN:
			// Sender side: the receiver finished pulling our payload.
			p.Sleep(e.taskDelay())
			if c.sreq != nil {
				c.sreq.complete()
			}
		}
	case simnet.CompRDMADone:
		m, ok := comp.Meta.(rdmaMeta)
		if !ok {
			return
		}
		p.Sleep(e.net().RecvOverhead + e.taskDelay())
		// Confirm to the sender and complete the local receive.
		e.node.NIC(0).PostSend(m.from, ctrlBytes, ctrl{kind: ctrlFIN, tag: m.req.tag, sreq: m.sreq})
		e.removeRecv(m.req)
		m.req.complete()
	case simnet.CompSendDone:
		// Buffered-send semantics: nothing to do.
	}
}

// Wait blocks the calling process until the request completes, using the
// engine's progression policy:
//
//   - polling engines: spin on the completion queue under the global
//     library lock, paying scheduling pressure when more threads poll
//     than there are cores (the Figure 4 mechanism);
//   - PIOMan: sleep on a blocking condition; the background progression
//     context completes the request and wakes the thread.
func (e *Engine) Wait(p *simtime.Proc, req *Request) {
	if e.cfg.Kind == PIOManLike {
		if !req.done {
			req.sig.Wait(p)
			p.Sleep(e.cfg.WakeLatency)
		}
		return
	}
	e.pollers++
	for !req.done {
		// OS scheduling pressure: with more polling threads than cores,
		// each iteration waits for a time slice.
		if excess := e.pollers - e.cfg.Cores; excess > 0 {
			p.Sleep(e.cfg.ScheduleQuantum * simtime.Duration(excess) / simtime.Duration(e.cfg.Cores))
		}
		e.lock.Lock(p)
		p.Sleep(e.cfg.LockHold)
		e.progressOnce(p)
		e.lock.Unlock()
		if !req.done {
			p.Sleep(e.cfg.PollYield)
		}
	}
	e.pollers--
}

// WaitAll waits for every request in order.
func (e *Engine) WaitAll(p *simtime.Proc, reqs ...*Request) {
	for _, r := range reqs {
		e.Wait(p, r)
	}
}
