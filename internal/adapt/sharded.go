package adapt

import (
	"sync/atomic"

	"pioman/internal/spinlock"
)

// shard is one observer's slice of a Sharded estimator — an EWMA word
// plus a sample count used to weight the merged read — padded to a
// cache line so concurrent observers on different shards never
// false-share.
type shard struct {
	est EWMA
	n   atomic.Int64
	_   [spinlock.CacheLineSize - 16]byte
}

// Sharded is a set of cache-line-padded per-shard EWMAs for hot paths
// where many CPUs observe concurrently: each observer folds samples
// into its own shard (typically indexed by CPU), so the estimator adds
// zero cross-core cache traffic to the path being measured. Value
// merges the shards into one estimate, weighted by each shard's sample
// count.
type Sharded struct {
	// Alpha is the per-shard EWMA gain (0 means DefaultAlpha). Set at
	// construction; it must not change once observers run.
	Alpha  float64
	shards []shard
}

// NewSharded builds an estimator with n shards and the given EWMA gain
// (0 means DefaultAlpha).
func NewSharded(n int, alpha float64) *Sharded {
	if n < 1 {
		n = 1
	}
	return &Sharded{Alpha: alpha, shards: make([]shard, n)}
}

// Observe folds one sample into the given shard. Out-of-range shard
// indexes fold into shard 0. Safe for concurrent callers, contention-
// free when each caller owns its shard.
func (s *Sharded) Observe(i int, v float64) {
	if i < 0 || i >= len(s.shards) {
		i = 0
	}
	sh := &s.shards[i]
	sh.est.Observe(s.Alpha, v)
	sh.n.Add(1)
}

// Prime initializes every empty shard's estimate to v without
// counting a sample, so consumers that want an optimistic (or
// pessimistic) starting point decay toward reality gradually instead
// of letting the first real sample set the estimate outright. Shards
// that already hold samples are left alone.
func (s *Sharded) Prime(v float64) {
	for i := range s.shards {
		sh := &s.shards[i]
		if _, ok := sh.est.Value(); !ok {
			sh.est.Observe(1, v) // first sample initializes directly
		}
	}
}

// Shard returns shard i's current estimate and whether it has observed
// any sample.
func (s *Sharded) Shard(i int) (float64, bool) {
	if i < 0 || i >= len(s.shards) {
		return 0, false
	}
	return s.shards[i].est.Value()
}

// Value merges the shards into one estimate — the mean of the shard
// estimates weighted by each shard's sample count — and reports
// whether any shard has observed a sample.
func (s *Sharded) Value() (float64, bool) {
	sum, weight := 0.0, 0.0
	for i := range s.shards {
		v, ok := s.shards[i].est.Value()
		if !ok {
			continue
		}
		n := float64(s.shards[i].n.Load())
		if n <= 0 {
			n = 1
		}
		sum += v * n
		weight += n
	}
	if weight == 0 {
		return 0, false
	}
	return sum / weight, true
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Reset discards every shard's samples.
func (s *Sharded) Reset() {
	for i := range s.shards {
		s.shards[i].est.Reset()
		s.shards[i].n.Store(0)
	}
}
