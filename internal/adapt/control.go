package adapt

import "sync/atomic"

// defaultHysteresis is how many net same-direction signals a
// BatchController accumulates before it moves the batch size: single
// stray signals (one ScheduleOne call in a Schedule-dominated stream,
// one deep backlog in a latency-sensitive phase) are absorbed instead
// of thrashing the batch.
const defaultHysteresis = 4

// BatchController adapts a batch size between configured bounds from
// two opposing signals, with hysteresis:
//
//   - Latency() — a latency-budgeted caller (ScheduleOne) drained the
//     controlled queue: such callers want the smallest critical
//     sections and the freshest put-backs, so sustained pressure
//     halves the batch toward Min;
//   - Backlog() — an unbudgeted drain saw more than a full batch of
//     backlog: throughput is what matters, so sustained pressure
//     doubles the batch toward Max, amortizing one lock acquisition
//     over more tasks.
//
// The two signals feed one signed pressure counter; only when the
// counter reaches the hysteresis threshold in either direction does
// the size move (multiplicatively), and the counter resets. Mixed
// workloads therefore hover, while a dominated workload converges to
// its bound within hysteresis·log2(range) signals.
//
// All methods are lock-free and allocation-free: Batch is one atomic
// load (the hot-path read), signals are one atomic add plus a rare
// CAS. The zero value is unusable; call Init first.
type BatchController struct {
	v        atomic.Int32
	pressure atomic.Int32
	grows    atomic.Uint64
	shrinks  atomic.Uint64
	min, max int32
	hys      int32
}

// Init sets the starting batch size and its bounds. start is clamped
// into [min, max]; min below 1 becomes 1; max below min becomes min.
// Not safe to call concurrently with the other methods.
func (c *BatchController) Init(start, min, max int) {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	if start < min {
		start = min
	}
	if start > max {
		start = max
	}
	c.min, c.max = int32(min), int32(max)
	c.hys = defaultHysteresis
	c.v.Store(int32(start))
	c.pressure.Store(0)
}

// Batch returns the current batch size — the hot-path read, one
// atomic load.
func (c *BatchController) Batch() int { return int(c.v.Load()) }

// Min returns the controller's lower bound.
func (c *BatchController) Min() int { return int(c.min) }

// Max returns the controller's upper bound.
func (c *BatchController) Max() int { return int(c.max) }

// Latency records one latency-budgeted drain. Hysteresis-many net
// latency signals halve the batch (never below Min).
func (c *BatchController) Latency() {
	if c.pressure.Add(-1) > -c.hys {
		return
	}
	c.pressure.Store(0)
	for {
		v := c.v.Load()
		nv := v / 2
		if nv < c.min {
			nv = c.min
		}
		if nv == v {
			return
		}
		if c.v.CompareAndSwap(v, nv) {
			c.shrinks.Add(1)
			return
		}
	}
}

// Backlog records one unbudgeted drain that saw more than a full
// batch of backlog. Hysteresis-many net backlog signals double the
// batch (never above Max).
func (c *BatchController) Backlog() {
	if c.pressure.Add(1) < c.hys {
		return
	}
	c.pressure.Store(0)
	for {
		v := c.v.Load()
		nv := v * 2
		if nv > c.max {
			nv = c.max
		}
		if nv == v {
			return
		}
		if c.v.CompareAndSwap(v, nv) {
			c.grows.Add(1)
			return
		}
	}
}

// Grows returns how many times the batch size doubled.
func (c *BatchController) Grows() uint64 { return c.grows.Load() }

// Shrinks returns how many times the batch size halved.
func (c *BatchController) Shrinks() uint64 { return c.shrinks.Load() }

// ResetCounters zeroes the grow/shrink event counters without
// touching the current batch size or accumulated pressure.
func (c *BatchController) ResetCounters() {
	c.grows.Store(0)
	c.shrinks.Store(0)
}
