// Package adapt is the measurement-and-feedback control plane: small,
// lock-free online estimators and controllers that let the scheduling
// and communication layers tune themselves to the running workload
// instead of trusting configured constants.
//
// The paper's system is configured up front — drain batch sizes, rail
// latency/bandwidth envelopes, steal batch fractions — which is only
// right for the workload the constants were measured on. This package
// supplies the missing feedback loop in three reusable pieces:
//
//   - EWMA, an 8-byte exponentially weighted moving average that is
//     safe for concurrent observers (one CAS per sample, no
//     allocation), for tracking drifting quantities such as per-rail
//     bandwidth or steal hit-rates;
//   - Window, a rotating-bucket windowed min/max, for quantities whose
//     extreme is the estimate — the minimum observed round-trip of a
//     small probe is the rail's base latency, free of queueing noise;
//   - Sharded, cache-line-padded per-shard EWMAs for hot paths where
//     many CPUs observe concurrently and a single CAS word would
//     false-share (the per-CPU steal hit-rate);
//   - BatchController, a bounded multiplicative-increase /
//     multiplicative-decrease controller with hysteresis, driving the
//     adaptive drain-batch size in internal/core.
//
// Consumers: internal/core (adaptive DrainBatch, steal-batch
// feedback), internal/fabric (rail calibration publishing live
// Capabilities estimates), internal/nmad (calibrated striping via
// Config.Calibrate). Everything here is allocation-free after
// construction; estimator reads are single atomic loads.
package adapt

import (
	"math"
	"sync/atomic"
)

// DefaultAlpha is the EWMA gain used when a caller passes 0: each new
// sample moves the estimate a quarter of the way toward itself — fast
// enough to track a rail whose effective bandwidth shifts mid-stream
// within a few tens of samples, smooth enough that one outlier cannot
// fold the estimate.
const DefaultAlpha = 0.25

// EWMA is a lock-free exponentially weighted moving average in one
// atomic word. The zero value is empty (no samples). Observe is safe
// for any number of concurrent callers; Value is a single atomic load.
//
// The word stores math.Float64bits(value)+1 so that 0 can mean
// "empty"; NaN samples are discarded (they would poison the average).
type EWMA struct {
	bits atomic.Uint64
}

// Observe folds one sample into the average with gain alpha (0 means
// DefaultAlpha). The first sample initializes the estimate directly,
// so a calibrator is live after one observation rather than decaying
// up from zero.
func (e *EWMA) Observe(alpha, v float64) {
	if math.IsNaN(v) {
		return
	}
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	for {
		old := e.bits.Load()
		next := v
		if old != 0 {
			prev := math.Float64frombits(old - 1)
			next = prev + alpha*(v-prev)
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)+1) {
			return
		}
	}
}

// Value returns the current estimate and whether any sample has been
// observed.
func (e *EWMA) Value() (float64, bool) {
	b := e.bits.Load()
	if b == 0 {
		return 0, false
	}
	return math.Float64frombits(b - 1), true
}

// Reset discards all samples, returning the estimator to empty.
func (e *EWMA) Reset() { e.bits.Store(0) }

// windowBuckets is how many rotating buckets a Window keeps: the
// reported extreme spans the current bucket plus three predecessors,
// so a stale extreme ages out after at most four bucket lifetimes.
const windowBuckets = 4

// defaultBucketSamples is the bucket rotation period when Window.Per
// is zero.
const defaultBucketSamples = 64

// Window tracks the minimum and maximum over a sliding window of
// recent samples, as a ring of rotating buckets: every Per samples the
// oldest bucket is recycled, so extremes observed long ago expire
// instead of pinning the estimate forever (a rail whose base latency
// rises would otherwise keep reporting the historic floor). The zero
// value is ready to use with the default bucket size.
//
// Observe is lock-free — one atomic add plus bounded CAS loops — and
// safe for concurrent callers. Rotation is racy by design: samples
// landing exactly on a bucket boundary may be attributed to either
// side, which shifts the effective window by at most one sample.
type Window struct {
	count   atomic.Uint64
	buckets [windowBuckets]windowBucket

	// Per is the number of samples per bucket (0 means 64). Set before
	// the first Observe; it must not change afterwards.
	Per uint64
}

// windowBucket is one rotation epoch's extremes. min and max hold
// math.Float64bits of non-negative samples (monotone under integer
// comparison); n counts the bucket's samples; epoch tags which
// rotation the contents belong to.
type windowBucket struct {
	epoch atomic.Uint64
	n     atomic.Uint64
	min   atomic.Uint64
	max   atomic.Uint64
}

// Observe folds one non-negative sample into the window. Negative and
// NaN samples are discarded (the bit encoding relies on non-negative
// floats comparing like their bit patterns).
func (w *Window) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	per := w.Per
	if per == 0 {
		per = defaultBucketSamples
	}
	seq := w.count.Add(1) - 1
	epoch := seq / per
	b := &w.buckets[epoch%windowBuckets]
	// First arrival of a new epoch recycles the bucket. The reset races
	// benignly with concurrent observers of the same epoch: a sample
	// applied between the epoch CAS and the min/max stores can be lost,
	// costing one sample of window accuracy, never a corrupt estimate.
	// The strictly-forward guard keeps an observer that stalled for
	// several whole epochs from recycling a bucket younger observers
	// already own — its stale sample blurs into the newer bucket
	// instead of wiping it.
	if old := b.epoch.Load(); old < epoch+1 && b.epoch.CompareAndSwap(old, epoch+1) {
		b.n.Store(0)
		b.min.Store(math.MaxUint64)
		b.max.Store(0)
	}
	bits := math.Float64bits(v)
	for {
		cur := b.min.Load()
		if bits >= cur || b.min.CompareAndSwap(cur, bits) {
			break
		}
	}
	for {
		cur := b.max.Load()
		if bits <= cur || b.max.CompareAndSwap(cur, bits) {
			break
		}
	}
	b.n.Add(1)
}

// Min returns the smallest sample in the window and whether the window
// holds any samples.
func (w *Window) Min() (float64, bool) {
	best := uint64(math.MaxUint64)
	any := false
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.epoch.Load() == 0 || b.n.Load() == 0 {
			continue
		}
		if m := b.min.Load(); m < best {
			best = m
			any = true
		}
	}
	if !any {
		return 0, false
	}
	return math.Float64frombits(best), true
}

// Max returns the largest sample in the window and whether the window
// holds any samples.
func (w *Window) Max() (float64, bool) {
	best := uint64(0)
	any := false
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.epoch.Load() == 0 || b.n.Load() == 0 {
			continue
		}
		if m := b.max.Load(); m >= best {
			best = m
			any = true
		}
	}
	if !any {
		return 0, false
	}
	return math.Float64frombits(best), true
}

// Count returns the total number of samples observed (across all
// epochs, including expired ones).
func (w *Window) Count() uint64 { return w.count.Load() }

// Reset discards all samples and restarts the window.
func (w *Window) Reset() {
	w.count.Store(0)
	for i := range w.buckets {
		b := &w.buckets[i]
		b.epoch.Store(0)
		b.n.Store(0)
		b.min.Store(math.MaxUint64)
		b.max.Store(0)
	}
}
