package adapt

import (
	"math"
	"sync"
	"testing"
)

func TestEWMAConvergesAndTracks(t *testing.T) {
	var e EWMA
	if _, ok := e.Value(); ok {
		t.Fatal("empty EWMA reports a value")
	}
	// First sample initializes directly.
	e.Observe(0.25, 100)
	if v, ok := e.Value(); !ok || v != 100 {
		t.Fatalf("after first sample: %v, %v; want 100, true", v, ok)
	}
	// Constant input converges to the input.
	for i := 0; i < 64; i++ {
		e.Observe(0.25, 10)
	}
	if v, _ := e.Value(); math.Abs(v-10) > 0.01 {
		t.Errorf("after 64 samples of 10: %v, want ≈10", v)
	}
	// A shifted input re-converges — the calibration re-convergence
	// property in miniature.
	for i := 0; i < 64; i++ {
		e.Observe(0.25, 80)
	}
	if v, _ := e.Value(); math.Abs(v-80) > 0.01 {
		t.Errorf("after shift: %v, want ≈80", v)
	}
	// NaN is discarded, zero is a legal value distinct from empty.
	e.Observe(0.25, math.NaN())
	if v, ok := e.Value(); !ok || math.IsNaN(v) {
		t.Error("NaN sample poisoned the estimator")
	}
	var z EWMA
	z.Observe(0.5, 0)
	if v, ok := z.Value(); !ok || v != 0 {
		t.Errorf("zero sample: %v, %v; want 0, true", v, ok)
	}
	z.Reset()
	if _, ok := z.Value(); ok {
		t.Error("Reset did not empty the estimator")
	}
}

func TestWindowMinMaxExpires(t *testing.T) {
	w := Window{Per: 4}
	if _, ok := w.Min(); ok {
		t.Fatal("empty window reports a min")
	}
	// One noisy early sample among a steady stream.
	w.Observe(900)
	for i := 0; i < 3; i++ {
		w.Observe(10)
	}
	if v, ok := w.Min(); !ok || v != 10 {
		t.Fatalf("min = %v, %v; want 10", v, ok)
	}
	if v, ok := w.Max(); !ok || v != 900 {
		t.Fatalf("max = %v, %v; want 900", v, ok)
	}
	// After windowBuckets full rotations the early outlier has expired.
	for i := 0; i < 4*4; i++ {
		w.Observe(10 + float64(i%3))
	}
	if v, _ := w.Max(); v == 900 {
		t.Error("stale outlier did not expire from the window")
	}
	if v, _ := w.Min(); v != 10 {
		t.Errorf("min = %v, want 10", v)
	}
	w.Reset()
	if _, ok := w.Min(); ok {
		t.Error("Reset did not empty the window")
	}
}

func TestWindowRejectsNegativeAndNaN(t *testing.T) {
	var w Window
	w.Observe(-5)
	w.Observe(math.NaN())
	if _, ok := w.Min(); ok {
		t.Error("invalid samples were admitted")
	}
}

func TestShardedMergesByWeight(t *testing.T) {
	s := NewSharded(4, 0.5)
	if _, ok := s.Value(); ok {
		t.Fatal("empty sharded estimator reports a value")
	}
	// Shard 0 sees many 1.0 samples, shard 1 one 0.0 sample: the merge
	// weights by count.
	for i := 0; i < 9; i++ {
		s.Observe(0, 1)
	}
	s.Observe(1, 0)
	v, ok := s.Value()
	if !ok {
		t.Fatal("no merged value")
	}
	if math.Abs(v-0.9) > 0.05 {
		t.Errorf("merged value = %v, want ≈0.9 (count-weighted)", v)
	}
	if v, ok := s.Shard(1); !ok || v != 0 {
		t.Errorf("shard 1 = %v, %v; want 0, true", v, ok)
	}
	// Out-of-range shards fold into shard 0, never panic.
	s.Observe(-1, 1)
	s.Observe(99, 1)
	if _, ok := s.Shard(99); ok {
		t.Error("out-of-range Shard read reported a value")
	}
	s.Reset()
	if _, ok := s.Value(); ok {
		t.Error("Reset did not empty the estimator")
	}
}

func TestBatchControllerHysteresisAndBounds(t *testing.T) {
	var c BatchController
	c.Init(32, 1, 256)
	if c.Batch() != 32 {
		t.Fatalf("start batch = %d, want 32", c.Batch())
	}
	// Fewer than hysteresis signals move nothing.
	for i := 0; i < defaultHysteresis-1; i++ {
		c.Latency()
	}
	if c.Batch() != 32 {
		t.Fatalf("batch moved before hysteresis: %d", c.Batch())
	}
	// The hysteresis-th halves.
	c.Latency()
	if c.Batch() != 16 {
		t.Fatalf("batch = %d after one shrink, want 16", c.Batch())
	}
	// Sustained latency pressure converges to Min and stays there.
	for i := 0; i < 10*defaultHysteresis; i++ {
		c.Latency()
	}
	if c.Batch() != 1 {
		t.Fatalf("batch = %d under sustained latency pressure, want 1", c.Batch())
	}
	if c.Shrinks() != 5 { // 32 → 16 → 8 → 4 → 2 → 1
		t.Errorf("shrinks = %d, want 5", c.Shrinks())
	}
	// Sustained backlog pressure converges to Max.
	for i := 0; i < 10*defaultHysteresis; i++ {
		c.Backlog()
	}
	if c.Batch() != 256 {
		t.Fatalf("batch = %d under sustained backlog, want 256", c.Batch())
	}
	if c.Grows() != 8 { // 1 → 2 → ... → 256
		t.Errorf("grows = %d, want 8", c.Grows())
	}
	// Opposing signals cancel: alternation holds the batch steady.
	before := c.Batch()
	for i := 0; i < 100; i++ {
		c.Latency()
		c.Backlog()
	}
	if c.Batch() != before {
		t.Errorf("mixed signals moved the batch %d → %d", before, c.Batch())
	}
	c.ResetCounters()
	if c.Grows() != 0 || c.Shrinks() != 0 {
		t.Error("ResetCounters left event counts")
	}
	if c.Batch() != before {
		t.Error("ResetCounters changed the batch size")
	}
}

func TestBatchControllerInitClamps(t *testing.T) {
	var c BatchController
	c.Init(0, -3, -8)
	if c.Min() != 1 || c.Max() != 1 || c.Batch() != 1 {
		t.Errorf("degenerate Init → min %d max %d batch %d, want all 1",
			c.Min(), c.Max(), c.Batch())
	}
	c.Init(1000, 2, 64)
	if c.Batch() != 64 {
		t.Errorf("start above max → %d, want 64", c.Batch())
	}
}

// TestEstimatorsConsistentUnderRace is the concurrent-completions
// guard: many goroutines hammer every estimator at once (run with
// -race); afterwards each estimate must lie inside the observed sample
// range and every sample must be accounted for.
func TestEstimatorsConsistentUnderRace(t *testing.T) {
	var e EWMA
	var w Window
	s := NewSharded(8, 0)
	var c BatchController
	c.Init(32, 1, 256)

	const workers = 8
	const perWorker = 2000
	lo, hi := 5.0, 50.0
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v := lo + float64((g*perWorker+i)%46)
				e.Observe(0, v)
				w.Observe(v)
				s.Observe(g, v)
				if i%2 == 0 {
					c.Latency()
				} else {
					c.Backlog()
				}
			}
		}(g)
	}
	wg.Wait()

	if v, ok := e.Value(); !ok || v < lo || v > hi {
		t.Errorf("EWMA = %v, %v; want inside [%v, %v]", v, ok, lo, hi)
	}
	if v, ok := w.Min(); !ok || v < lo || v > hi {
		t.Errorf("window min = %v, %v; want inside [%v, %v]", v, ok, lo, hi)
	}
	if v, ok := w.Max(); !ok || v < lo || v > hi {
		t.Errorf("window max = %v, %v; want inside [%v, %v]", v, ok, lo, hi)
	}
	if got := w.Count(); got != workers*perWorker {
		t.Errorf("window count = %d, want %d (no sample lost or duplicated)", got, workers*perWorker)
	}
	if v, ok := s.Value(); !ok || v < lo || v > hi {
		t.Errorf("sharded = %v, %v; want inside [%v, %v]", v, ok, lo, hi)
	}
	if b := c.Batch(); b < 1 || b > 256 {
		t.Errorf("controller batch = %d escaped its bounds", b)
	}
}
