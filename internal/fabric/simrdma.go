package fabric

import (
	"math/rand"
	"sync"
	"time"

	"pioman/internal/simtime"
)

// SimConfig parameterizes a simulated RDMA fabric.
type SimConfig struct {
	// TimeScale maps virtual nanoseconds to wall-clock nanoseconds:
	// a completion modelled at virtual time T becomes visible to Poll
	// once TimeScale*T wall nanoseconds have elapsed since the fabric
	// was created. 1.0 runs the model in real time (wall benchmarks);
	// values below 1 fast-forward it.
	//
	// 0 (the default) runs the fabric free-running: virtual time jumps
	// to the next modelled completion whenever a Poll finds the queue
	// empty, so correctness tests finish instantly yet the virtual
	// clock still reports exact modelled durations.
	TimeScale float64

	// SendCompletions makes every endpoint post an EventSendDone to the
	// *sender's* completion queue when a send's modelled wire time has
	// fully elapsed — the verbs signaled-send behaviour. Calibrators
	// rely on it; plain traffic tests leave it off and keep their
	// completion queues free of bookkeeping entries.
	SendCompletions bool

	// Faults is the fabric-wide fault-injection config (see FaultConfig).
	// The zero value injects nothing; SimDomain.SetFaults overrides it
	// per sending domain.
	Faults FaultConfig

	// SharedIngress serializes deliveries through each receiving
	// domain's ingress port, so many senders targeting one node queue
	// behind each other — the incast congestion the chaos harness
	// models. A lone flow is cut-through (its ingress window coincides
	// with its wire window), so single-stream timing is unchanged;
	// default off keeps multi-flow timing identical to earlier fabrics.
	SharedIngress bool
}

// SimFabric is the RDMA-style simulated provider: queue pairs,
// registered buffers, eager inject for small messages and
// rendezvous-by-RMA-read for large ones, with completion latency
// modelled in virtual time on an internal simtime engine. It supplies
// the paper's IB-verbs scenario — and any capability envelope a test
// wants — without hardware.
//
// All endpoints of one fabric share a single virtual clock and a
// single lock, so the provider is safe for concurrent use from many
// polling tasks while the underlying discrete-event engine stays
// single-threaded, as simtime requires.
type SimFabric struct {
	cfg   SimConfig
	epoch time.Time

	mu      sync.Mutex
	sim     *simtime.Sim
	domains []*SimDomain
	nextKey RKey
	regions map[RKey][]byte
	rng     *rand.Rand
	links   int

	injectCopied  uint64
	stagedCopied  uint64
	rmaReadBytes  uint64
	regs, deregs  uint64
	droppedFrames uint64
	dupFrames     uint64
	droppedReads  uint64
}

// SimStats counts the data movement a simulated fabric performed, by
// kind. The split matters to the zero-copy acceptance tests: inject
// and staging copies are host memcpys (a CPU touched every byte),
// while RMA-read bytes model NIC DMA — the receiver-driven rendezvous
// exists precisely to convert the former into the latter.
type SimStats struct {
	// InjectCopiedBytes counts bytes (imm + payload) buffered by sends
	// at post time — the host copy behind buffered-send semantics.
	InjectCopiedBytes uint64
	// StagedCopiedBytes counts payload bytes staged into registered
	// regions by the provider's internal push-mode rendezvous — the
	// sender-side host copy a pull protocol avoids.
	StagedCopiedBytes uint64
	// RMAReadBytes counts bytes delivered by RMA reads (modelled NIC
	// DMA straight into the reader's buffer; no host copy).
	RMAReadBytes uint64
	// Registrations and Deregistrations count memory-region lifecycle
	// events, internal staging included.
	Registrations, Deregistrations uint64
	// LiveRegions is the number of regions currently registered.
	LiveRegions int
	// DroppedFrames counts frames lost to injected drops and partitions
	// (the sender's wire still carried them; the receiver never saw
	// them).
	DroppedFrames uint64
	// DuplicatedFrames counts injected duplicate deliveries.
	DuplicatedFrames uint64
	// DroppedReads counts RMA reads blackholed by drops or partitions —
	// posted, never completed.
	DroppedReads uint64
	// Links counts connected queue pairs created on the fabric
	// (Connect calls). The sparse-topology harness asserts this stays
	// O(n) — dense all-pairs wiring would make it O(n²).
	Links int
}

// Stats returns a snapshot of the fabric-wide data-movement counters.
func (f *SimFabric) Stats() SimStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return SimStats{
		InjectCopiedBytes: f.injectCopied,
		StagedCopiedBytes: f.stagedCopied,
		RMAReadBytes:      f.rmaReadBytes,
		Registrations:     f.regs,
		Deregistrations:   f.deregs,
		LiveRegions:       len(f.regions),
		DroppedFrames:     f.droppedFrames,
		DuplicatedFrames:  f.dupFrames,
		DroppedReads:      f.droppedReads,
		Links:             f.links,
	}
}

// NewSimFabric creates an empty simulated fabric.
func NewSimFabric(cfg SimConfig) *SimFabric {
	return &SimFabric{
		cfg:     cfg,
		epoch:   time.Now(),
		sim:     simtime.New(),
		regions: make(map[RKey][]byte),
		rng:     newFaultRNG(cfg.Faults.Seed),
	}
}

// Now returns the fabric's current virtual time: the modelled
// timestamp of the latest completion delivered so far (free-running
// mode) or the wall-mapped clock position (real-time mode).
func (f *SimFabric) Now() simtime.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.advanceLocked()
	return f.sim.Now()
}

// advanceLocked delivers every completion already due under the
// wall-clock mapping. Free-running fabrics advance in pollLocked
// instead, one completion at a time.
func (f *SimFabric) advanceLocked() {
	if f.cfg.TimeScale <= 0 {
		return
	}
	virtual := simtime.Time(float64(time.Since(f.epoch)) / f.cfg.TimeScale)
	f.sim.RunUntil(virtual)
}

// registerLocked pins buf under a fresh key (never 0, per the RKey
// contract).
func (f *SimFabric) registerLocked(buf []byte) RKey {
	f.nextKey++
	f.regions[f.nextKey] = buf
	f.regs++
	return f.nextKey
}

// deregisterLocked drops a region, counting the event.
func (f *SimFabric) deregisterLocked(key RKey) {
	if _, ok := f.regions[key]; ok {
		delete(f.regions, key)
		f.deregs++
	}
}

// OpenDomain opens one simulated NIC with the given capability
// envelope. Every endpoint created on the domain inherits it.
func (f *SimFabric) OpenDomain(caps Capabilities) *SimDomain {
	f.mu.Lock()
	defer f.mu.Unlock()
	d := &SimDomain{fab: f, id: len(f.domains), caps: caps}
	f.domains = append(f.domains, d)
	return d
}

// SimDomain is one simulated NIC: a resource container with a fixed
// capability envelope. It implements Domain.
type SimDomain struct {
	fab    *SimFabric
	id     int
	caps   Capabilities
	eps    []*SimEndpoint
	closed bool

	// Chaos state: partition group (0 = healthy), per-domain outbound
	// fault override, and the shared-ingress occupancy horizon.
	part        int
	faults      *FaultConfig
	ingressBusy simtime.Time
}

// ID returns the domain's fabric-assigned id (the From field of
// completions it sends).
func (d *SimDomain) ID() int { return d.id }

// Provider names the backend.
func (d *SimDomain) Provider() string { return "simrdma" }

// Capabilities returns the domain's performance envelope. Read under
// the fabric lock: SetCapabilities may swap it concurrently.
func (d *SimDomain) Capabilities() Capabilities {
	d.fab.mu.Lock()
	defer d.fab.mu.Unlock()
	return d.caps
}

// RegisterMemory pins buf for remote access. The buffer must stay
// valid until every RMA read of it has completed; Close deregisters.
func (d *SimDomain) RegisterMemory(buf []byte) (MemoryRegion, error) {
	f := d.fab
	f.mu.Lock()
	defer f.mu.Unlock()
	if !d.caps.RMA {
		return nil, ErrNoRegion
	}
	if d.closed {
		return nil, ErrClosed
	}
	return &simMR{fab: f, key: f.registerLocked(buf)}, nil
}

// SetCapabilities swaps the domain's performance envelope at runtime —
// the "effective bandwidth shifted mid-stream" scenario the
// calibration layer exists for (a shared link saturating, a NIC
// dropping to a degraded mode). Messages posted after the call are
// timed by the new envelope; messages already on the wire keep the
// timing they were posted with.
func (d *SimDomain) SetCapabilities(caps Capabilities) {
	f := d.fab
	f.mu.Lock()
	defer f.mu.Unlock()
	d.caps = caps
	for _, ep := range d.eps {
		ep.dir.caps = caps
	}
}

// Close closes the domain and every endpoint opened on it.
func (d *SimDomain) Close() error {
	f := d.fab
	f.mu.Lock()
	defer f.mu.Unlock()
	d.closed = true
	for _, ep := range d.eps {
		ep.closed = true
	}
	return nil
}

// simMR is a registered buffer on a simulated fabric.
type simMR struct {
	fab *SimFabric
	key RKey
}

// Key returns the remote key peers present to RMARead.
func (m *simMR) Key() RKey { return m.key }

// Close deregisters the region.
func (m *simMR) Close() error {
	m.fab.mu.Lock()
	defer m.fab.mu.Unlock()
	m.fab.deregisterLocked(m.key)
	return nil
}

// Connect creates a connected queue pair: one endpoint on each domain,
// wired back to back like a verbs RC connection. The two directions
// have independent link occupancy, each timed by the sending domain's
// capability envelope.
func Connect(a, b *SimDomain) (*SimEndpoint, *SimEndpoint) {
	f := a.fab
	f.mu.Lock()
	defer f.mu.Unlock()
	ea := &SimEndpoint{fab: f, dom: a, dir: &direction{caps: a.caps}}
	eb := &SimEndpoint{fab: f, dom: b, dir: &direction{caps: b.caps}}
	ea.peer, eb.peer = eb, ea
	a.eps = append(a.eps, ea)
	b.eps = append(b.eps, eb)
	f.links++
	return ea, eb
}

// direction is one half of a connected pair's wire: the serialization
// occupancy of messages flowing out of one endpoint. Bandwidth is a
// property of the link, so chunks posted back to back on the same rail
// queue behind each other while chunks on different rails overlap —
// exactly the contention multirail striping exists to exploit.
type direction struct {
	caps      Capabilities
	busyUntil simtime.Time
}

// SimEndpoint is one side of a simulated queue pair. It implements
// RMAEndpoint.
type SimEndpoint struct {
	fab  *SimFabric
	dom  *SimDomain
	peer *SimEndpoint
	dir  *direction

	// faults overrides the fault config for this endpoint's outbound
	// direction only (SimEndpoint.SetFaults) — the cut-one-cable
	// primitive for sparse-topology chaos; nil defers to the domain
	// override and then the fabric default.
	faults *FaultConfig

	cq     []Event
	cqHead int

	outstanding int
	closed      bool

	injects, rdvs, rmaReads, polls uint64
}

// Provider names the backend.
func (ep *SimEndpoint) Provider() string { return "simrdma" }

// Capabilities returns the rail's performance envelope. Read under
// the fabric lock: SetCapabilities may swap it concurrently.
func (ep *SimEndpoint) Capabilities() Capabilities {
	ep.fab.mu.Lock()
	defer ep.fab.mu.Unlock()
	return ep.dom.caps
}

// Domain returns the domain the endpoint was opened on, implementing
// the optional Domained interface so protocols can register memory on
// the endpoint's rail.
func (ep *SimEndpoint) Domain() Domain { return ep.dom }

// pushCQ appends one completion, reusing the queue's storage once the
// previous burst has fully drained.
func (ep *SimEndpoint) pushCQ(ev Event) {
	if ep.cqHead > 0 && ep.cqHead == len(ep.cq) {
		ep.cq = ep.cq[:0]
		ep.cqHead = 0
	}
	ep.cq = append(ep.cq, ev)
}

// cqLen reports completions not yet polled.
func (ep *SimEndpoint) cqLen() int { return len(ep.cq) - ep.cqHead }

// Send transmits imm+payload to the peer endpoint. Payloads up to
// MaxInject go as an eager inject: one wire crossing, buffered at post
// time. Larger payloads on an RMA-capable domain use the rendezvous:
// the payload is staged in a registered region, a control flight
// announces it, the peer NIC pulls it with an RMA read and the message
// surfaces in the peer's completion queue when the read finishes — two
// extra latency crossings but no host copy on the receive path, the
// verbs large-message shape. Either way Send itself returns
// immediately (buffered semantics) and the wire time is modelled on
// the virtual clock.
func (ep *SimEndpoint) Send(imm, payload []byte) error {
	f := ep.fab
	f.mu.Lock()
	defer f.mu.Unlock()
	if ep.closed || ep.peer.closed {
		return ErrClosed
	}
	f.advanceLocked()
	caps := ep.dom.caps
	// The wire owns its bytes, like a real DMA engine. Buffering them
	// is a host copy — counted, because eliminating exactly these
	// copies is what the pull-mode rendezvous is for.
	immCp := append([]byte(nil), imm...)
	data := append([]byte(nil), payload...)
	f.injectCopied += uint64(len(immCp))

	now := f.sim.Now()
	var deliver simtime.Time
	if caps.RMA && len(data) > caps.MaxInject {
		// Rendezvous-by-RMA-read: stage the payload in a registered
		// region, announce with a control flight, peer pulls it.
		ep.rdvs++
		f.stagedCopied += uint64(len(data))
		key := f.registerLocked(data)
		fd := f.drawFaultsLocked(ep, false)
		request := now + 2*caps.Latency // control out, read request back
		start := request
		if ep.dir.busyUntil > start {
			start = ep.dir.busyUntil
		}
		end := start + simtime.Duration(float64(len(data))*caps.NsPerByte())
		ep.dir.busyUntil = end
		deliver = f.arriveLocked(ep.peer.dom, start, end, caps.Latency) + fd.jitter
		ep.outstanding++
		from := ep.dom.id
		peer := ep.peer
		f.sim.At(deliver, func() {
			ep.outstanding--
			f.deregisterLocked(key)
			if fd.drop || partitionedLocked(ep.dom, peer.dom) {
				f.droppedFrames++
			} else if !peer.closed {
				peer.pushCQ(Event{Kind: EventRecv, Imm: immCp, Payload: data, From: from, Stamp: int64(deliver)})
			}
			if f.cfg.SendCompletions && !ep.closed {
				ep.pushCQ(Event{Kind: EventSendDone, From: peer.dom.id, Stamp: int64(deliver)})
			}
		})
		return nil
	}
	// Eager inject: one serialized wire crossing.
	ep.injects++
	f.injectCopied += uint64(len(data))
	fd := f.drawFaultsLocked(ep, true)
	start := now
	if ep.dir.busyUntil > start {
		start = ep.dir.busyUntil
	}
	end := start + simtime.Duration(float64(len(data))*caps.NsPerByte())
	ep.dir.busyUntil = end
	deliver = f.arriveLocked(ep.peer.dom, start, end, caps.Latency) + fd.jitter
	ep.outstanding++
	from := ep.dom.id
	peer := ep.peer
	f.sim.At(deliver, func() {
		ep.outstanding--
		if fd.drop || partitionedLocked(ep.dom, peer.dom) {
			// The network ate the frame after it left our NIC: the
			// send completion below still posts — the sender cannot
			// tell a lost frame from a delivered one.
			f.droppedFrames++
		} else if !peer.closed {
			peer.pushCQ(Event{Kind: EventRecv, Imm: immCp, Payload: data, From: from, Stamp: int64(deliver)})
		}
		if f.cfg.SendCompletions && !ep.closed {
			ep.pushCQ(Event{Kind: EventSendDone, From: peer.dom.id, Stamp: int64(deliver)})
		}
	})
	if fd.dup && !fd.drop {
		// Duplicate delivery: the frame crosses the wire a second time.
		f.dupFrames++
		start2 := ep.dir.busyUntil
		end2 := start2 + simtime.Duration(float64(len(data))*caps.NsPerByte())
		ep.dir.busyUntil = end2
		deliver2 := f.arriveLocked(ep.peer.dom, start2, end2, caps.Latency) + fd.jitter
		f.sim.At(deliver2, func() {
			if partitionedLocked(ep.dom, peer.dom) {
				f.droppedFrames++
				return
			}
			if !peer.closed {
				peer.pushCQ(Event{Kind: EventRecv, Imm: immCp, Payload: data, From: from, Stamp: int64(deliver2)})
			}
		})
	}
	return nil
}

// arriveLocked turns a frame's wire occupancy [start, end) into its
// arrival instant at domain to. Without SharedIngress that is simply
// end + latency. With it, the frame must also clear to's ingress port:
// the port serves one frame at a time at the frame's own wire rate, so
// a lone flow is cut-through (ingress window == wire window, timing
// unchanged) while an incast queues — each frame's arrival pushed out
// behind every earlier frame converging on the same node.
func (f *SimFabric) arriveLocked(to *SimDomain, start, end simtime.Time, lat simtime.Duration) simtime.Time {
	if !f.cfg.SharedIngress {
		return end + lat
	}
	ser := end - start
	ist := start
	if to.ingressBusy > ist {
		ist = to.ingressBusy
	}
	iend := ist + ser
	to.ingressBusy = iend
	return iend + lat
}

// RMARead starts pulling len(local) bytes from the region named by
// key, starting offset bytes in, into local, without involving the
// peer's host CPU: the request crosses the wire, the data flows back
// over the peer's direction of the link, and an EventRMADone carrying
// ctx lands in the local completion queue when the last byte arrives.
func (ep *SimEndpoint) RMARead(key RKey, offset int, local []byte, ctx any) error {
	f := ep.fab
	f.mu.Lock()
	defer f.mu.Unlock()
	if ep.closed || ep.peer.closed {
		return ErrClosed
	}
	f.advanceLocked()
	region, ok := f.regions[key]
	if !ok || offset < 0 || offset+len(local) > len(region) {
		return ErrNoRegion
	}
	src := region[offset : offset+len(local)]
	ep.rmaReads++
	// Request flight by our envelope, data flight over the peer's
	// direction (the data flows peer -> us) by the peer's envelope.
	// Faults are drawn from the serving (peer) domain's config — the
	// data frames ride its side of the link. Duplication does not
	// apply: a read completes at most once per post.
	fd := f.drawFaultsLocked(ep.peer, false)
	pd := ep.peer.dir
	start := f.sim.Now() + ep.dom.caps.Latency
	if pd.busyUntil > start {
		start = pd.busyUntil
	}
	end := start + simtime.Duration(float64(len(local))*pd.caps.NsPerByte())
	pd.busyUntil = end
	deliver := end + pd.caps.Latency + fd.jitter
	ep.outstanding++
	f.sim.At(deliver, func() {
		ep.outstanding--
		if fd.drop || partitionedLocked(ep.dom, ep.peer.dom) {
			// Blackholed: the read never completes and no error
			// surfaces — the issuer's only recourse is a timeout.
			f.droppedReads++
			return
		}
		if ep.closed {
			return
		}
		n := copy(local, src)
		f.rmaReadBytes += uint64(n)
		ep.pushCQ(Event{Kind: EventRMADone, Payload: local[:n], From: ep.peer.dom.id, Context: ctx, Stamp: int64(deliver)})
	})
	return nil
}

// Poll pops the next completion-queue entry. On a free-running fabric
// an empty queue fast-forwards the virtual clock to the next modelled
// completion anywhere on the fabric, so progression never depends on
// wall time; on a real-time fabric only completions whose modelled
// timestamp has been reached by the wall clock are visible.
func (ep *SimEndpoint) Poll() (Event, bool, error) {
	f := ep.fab
	f.mu.Lock()
	defer f.mu.Unlock()
	if ep.closed {
		return Event{}, false, ErrClosed
	}
	ep.polls++
	f.advanceLocked()
	if f.cfg.TimeScale <= 0 {
		for ep.cqLen() == 0 && f.sim.Step() {
		}
	}
	if ep.cqLen() == 0 {
		return Event{}, false, nil
	}
	ev := ep.cq[ep.cqHead]
	ep.cq[ep.cqHead] = Event{}
	ep.cqHead++
	return ev, true, nil
}

// Backlog reports posted-but-incomplete operations plus completions
// not yet polled — the completion-queue depth the striping policy
// treats as backpressure.
func (ep *SimEndpoint) Backlog() int {
	f := ep.fab
	f.mu.Lock()
	defer f.mu.Unlock()
	return ep.outstanding + ep.cqLen()
}

// Close shuts the endpoint down. In-flight deliveries to it are
// dropped, like frames in a drained RX ring.
func (ep *SimEndpoint) Close() error {
	f := ep.fab
	f.mu.Lock()
	defer f.mu.Unlock()
	ep.closed = true
	return nil
}

// SendCompletions reports whether the fabric was configured to post
// EventSendDone entries (SimConfig.SendCompletions), implementing the
// optional SendCompleter interface.
func (ep *SimEndpoint) SendCompletions() bool { return ep.fab.cfg.SendCompletions }

// ProviderClock returns the fabric's virtual clock as a nanosecond
// function, implementing the optional Clocked interface: calibrators
// time send posts with it so their arithmetic lives on the same clock
// the completion stamps do.
func (ep *SimEndpoint) ProviderClock() func() int64 {
	f := ep.fab
	return func() int64 { return int64(f.Now()) }
}

// Stats returns (eager injects, rendezvous sends, RMA reads posted,
// polls) for the endpoint.
func (ep *SimEndpoint) Stats() (injects, rdvs, rmaReads, polls uint64) {
	f := ep.fab
	f.mu.Lock()
	defer f.mu.Unlock()
	return ep.injects, ep.rdvs, ep.rmaReads, ep.polls
}
