package fabric

import (
	"bytes"
	"sync"
	"testing"
)

func TestLoopbackRoundTrip(t *testing.T) {
	a, b := NewLoopback()
	if a.Provider() != "loopback" {
		t.Errorf("provider = %q", a.Provider())
	}
	if caps := a.Capabilities(); caps.Bandwidth != 0 || caps.Latency != 0 || caps.RMA {
		t.Errorf("loopback capabilities = %v, want all-unknown", caps)
	}
	imm := []byte{1, 2, 3}
	payload := []byte("hello across the pair")
	if err := a.Send(imm, payload); err != nil {
		t.Fatal(err)
	}
	if got := b.Backlog(); got != 1 {
		t.Errorf("peer backlog = %d, want 1", got)
	}
	ev, ok, err := b.Poll()
	if !ok || err != nil {
		t.Fatalf("poll = %v, %v", ok, err)
	}
	if ev.Kind != EventRecv || !bytes.Equal(ev.Imm, imm) || !bytes.Equal(ev.Payload, payload) {
		t.Fatalf("event = %+v, want the sent frame", ev)
	}
	// The wire owns its bytes: mutating the sender's buffers after Send
	// must not corrupt a frame still queued.
	if err := b.Send(imm, payload); err != nil {
		t.Fatal(err)
	}
	imm[0] = 99
	payload[0] = 'X'
	ev, ok, _ = a.Poll()
	if !ok || ev.Imm[0] != 1 || ev.Payload[0] != 'h' {
		t.Error("loopback frame aliases the sender's buffers")
	}
	if _, ok, err := a.Poll(); ok || err != nil {
		t.Errorf("empty poll = %v, %v; want false, nil", ok, err)
	}
}

func TestLoopbackClose(t *testing.T) {
	a, b := NewLoopback()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(nil, []byte("x")); err != ErrClosed {
		t.Errorf("send to closed peer = %v, want ErrClosed", err)
	}
	if _, _, err := a.Poll(); err != ErrClosed {
		t.Errorf("poll of closed endpoint = %v, want ErrClosed", err)
	}
}

func TestLoopbackConcurrentUnderRace(t *testing.T) {
	a, b := NewLoopback()
	const senders = 4
	const perSender = 500
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			msg := []byte{byte(g)}
			for i := 0; i < perSender; i++ {
				if err := a.Send(msg, msg); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	got := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for got < senders*perSender {
			if _, ok, err := b.Poll(); err != nil {
				t.Error(err)
				return
			} else if ok {
				got++
			}
		}
	}()
	wg.Wait()
	<-done
	if got != senders*perSender {
		t.Errorf("received %d frames, want %d", got, senders*perSender)
	}
}
