package fabric

import (
	"bytes"
	"sync"
	"testing"
)

func TestLoopbackRoundTrip(t *testing.T) {
	a, b := NewLoopback()
	if a.Provider() != "loopback" {
		t.Errorf("provider = %q", a.Provider())
	}
	if caps := a.Capabilities(); caps.Bandwidth != 0 || caps.Latency != 0 || caps.RMA {
		t.Errorf("loopback capabilities = %v, want all-unknown", caps)
	}
	imm := []byte{1, 2, 3}
	payload := []byte("hello across the pair")
	if err := a.Send(imm, payload); err != nil {
		t.Fatal(err)
	}
	if got := b.Backlog(); got != 1 {
		t.Errorf("peer backlog = %d, want 1", got)
	}
	ev, ok, err := b.Poll()
	if !ok || err != nil {
		t.Fatalf("poll = %v, %v", ok, err)
	}
	if ev.Kind != EventRecv || !bytes.Equal(ev.Imm, imm) || !bytes.Equal(ev.Payload, payload) {
		t.Fatalf("event = %+v, want the sent frame", ev)
	}
	// The wire owns its bytes: mutating the sender's buffers after Send
	// must not corrupt a frame still queued.
	if err := b.Send(imm, payload); err != nil {
		t.Fatal(err)
	}
	imm[0] = 99
	payload[0] = 'X'
	ev, ok, _ = a.Poll()
	if !ok || ev.Imm[0] != 1 || ev.Payload[0] != 'h' {
		t.Error("loopback frame aliases the sender's buffers")
	}
	if _, ok, err := a.Poll(); ok || err != nil {
		t.Errorf("empty poll = %v, %v; want false, nil", ok, err)
	}
}

func TestLoopbackClose(t *testing.T) {
	a, b := NewLoopback()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(nil, []byte("x")); err != ErrClosed {
		t.Errorf("send to closed peer = %v, want ErrClosed", err)
	}
	if _, _, err := a.Poll(); err != ErrClosed {
		t.Errorf("poll of closed endpoint = %v, want ErrClosed", err)
	}
}

func TestLoopbackRMARead(t *testing.T) {
	a, b := NewLoopbackRMA()
	if caps := a.Capabilities(); !caps.RMA {
		t.Fatal("RMA pair must report the structural RMA bit")
	}
	src := []byte("zero copy across the pair")
	mr, err := b.Domain().RegisterMemory(src)
	if err != nil {
		t.Fatal(err)
	}
	// Offset read straight into the local buffer.
	local := make([]byte, 4)
	if err := a.RMARead(mr.Key(), 5, local, "ctx"); err != nil {
		t.Fatal(err)
	}
	ev, ok, err := a.Poll()
	if !ok || err != nil {
		t.Fatalf("poll = %v, %v", ok, err)
	}
	if ev.Kind != EventRMADone || ev.Context != "ctx" || string(local) != "copy" {
		t.Fatalf("event = %+v, local = %q", ev, local)
	}
	// Out-of-range and deregistered reads fail.
	if err := a.RMARead(mr.Key(), 23, local, nil); err != ErrNoRegion {
		t.Errorf("past-the-end read = %v, want ErrNoRegion", err)
	}
	if a.Regions() != 1 {
		t.Errorf("regions = %d, want 1", a.Regions())
	}
	if err := mr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.RMARead(mr.Key(), 0, local, nil); err != ErrNoRegion {
		t.Errorf("read of deregistered region = %v, want ErrNoRegion", err)
	}
	if a.Regions() != 0 {
		t.Errorf("%d regions leaked", a.Regions())
	}
	// The plain pair refuses registration.
	p, _ := NewLoopback()
	if _, err := p.Domain().RegisterMemory(src); err == nil {
		t.Error("RegisterMemory on a non-RMA loopback should fail")
	}
}

func TestLoopbackConcurrentUnderRace(t *testing.T) {
	a, b := NewLoopback()
	const senders = 4
	const perSender = 500
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			msg := []byte{byte(g)}
			for i := 0; i < perSender; i++ {
				if err := a.Send(msg, msg); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	got := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for got < senders*perSender {
			if _, ok, err := b.Poll(); err != nil {
				t.Error(err)
				return
			} else if ok {
				got++
			}
		}
	}()
	wg.Wait()
	<-done
	if got != senders*perSender {
		t.Errorf("received %d frames, want %d", got, senders*perSender)
	}
}
