package fabric

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"pioman/internal/simtime"
)

// testCaps is a 1 byte/ns rail with 1 µs latency and a 64-byte inject
// ceiling, so modelled timestamps are easy to compute by hand.
func testCaps() Capabilities {
	return Capabilities{
		Latency:   1000 * simtime.Nanosecond,
		Bandwidth: 1e9,
		MaxInject: 64,
		RMA:       true,
	}
}

// pair builds a free-running fabric with one connected queue pair.
func pair(t *testing.T, caps Capabilities) (*SimFabric, *SimEndpoint, *SimEndpoint) {
	t.Helper()
	f := NewSimFabric(SimConfig{})
	a := f.OpenDomain(caps)
	b := f.OpenDomain(caps)
	ea, eb := Connect(a, b)
	return f, ea, eb
}

// drainOne polls until one event arrives (free-running fabrics deliver
// on the first poll once anything is pending).
func drainOne(t *testing.T, ep *SimEndpoint) Event {
	t.Helper()
	for i := 0; i < 1000; i++ {
		ev, ok, err := ep.Poll()
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		if ok {
			return ev
		}
	}
	t.Fatal("no event after 1000 polls")
	return Event{}
}

func TestInjectRoundTrip(t *testing.T) {
	f, ea, eb := pair(t, testCaps())
	imm := []byte("hdr")
	payload := bytes.Repeat([]byte{7}, 64)
	if err := ea.Send(imm, payload); err != nil {
		t.Fatal(err)
	}
	ev := drainOne(t, eb)
	if ev.Kind != EventRecv || !bytes.Equal(ev.Imm, imm) || !bytes.Equal(ev.Payload, payload) {
		t.Fatalf("event = %+v", ev)
	}
	// 64 bytes at 1 byte/ns plus one latency crossing.
	if got, want := f.Now(), simtime.Time(64+1000); got != want {
		t.Errorf("virtual completion at %v, want %v", got, want)
	}
	injects, rdvs, _, _ := ea.Stats()
	if injects != 1 || rdvs != 0 {
		t.Errorf("injects=%d rdvs=%d, want 1, 0", injects, rdvs)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	_, ea, eb := pair(t, testCaps())
	payload := []byte("original")
	if err := ea.Send([]byte{1}, payload); err != nil {
		t.Fatal(err)
	}
	copy(payload, "clobber!")
	ev := drainOne(t, eb)
	if string(ev.Payload) != "original" {
		t.Errorf("payload = %q; the wire must own its bytes", ev.Payload)
	}
}

func TestRendezvousByRMARead(t *testing.T) {
	f, ea, eb := pair(t, testCaps())
	payload := make([]byte, 4000) // > MaxInject: rendezvous path
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	if err := ea.Send([]byte("big"), payload); err != nil {
		t.Fatal(err)
	}
	ev := drainOne(t, eb)
	if !bytes.Equal(ev.Payload, payload) {
		t.Fatal("rendezvous payload corrupted")
	}
	// Control out (1 µs) + read request (1 µs) + 4000 ns transfer +
	// tail latency (1 µs).
	if got, want := f.Now(), simtime.Time(2000+4000+1000); got != want {
		t.Errorf("virtual completion at %v, want %v", got, want)
	}
	injects, rdvs, _, _ := ea.Stats()
	if injects != 0 || rdvs != 1 {
		t.Errorf("injects=%d rdvs=%d, want 0, 1", injects, rdvs)
	}
	// The staged region is deregistered after delivery.
	f.mu.Lock()
	left := len(f.regions)
	f.mu.Unlock()
	if left != 0 {
		t.Errorf("%d regions leaked after rendezvous", left)
	}
}

func TestLinkOccupancySerializesSameRail(t *testing.T) {
	f, ea, eb := pair(t, testCaps())
	// Two 64-byte injects back to back share one wire: the second
	// starts after the first's serialization, not in parallel.
	for i := 0; i < 2; i++ {
		if err := ea.Send([]byte{byte(i)}, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	drainOne(t, eb)
	drainOne(t, eb)
	if got, want := f.Now(), simtime.Time(128+1000); got != want {
		t.Errorf("second delivery at %v, want %v (serialized)", got, want)
	}
}

func TestExplicitRegisterAndRMARead(t *testing.T) {
	_, ea, eb := pair(t, testCaps())
	src := []byte("registered region contents")
	mr, err := eb.dom.RegisterMemory(src)
	if err != nil {
		t.Fatal(err)
	}
	local := make([]byte, len(src))
	type ctxKey struct{ n int }
	if err := ea.RMARead(mr.Key(), 0, local, ctxKey{42}); err != nil {
		t.Fatal(err)
	}
	ev := drainOne(t, ea) // completion lands on the reader's CQ
	if ev.Kind != EventRMADone {
		t.Fatalf("event kind = %v, want rma-done", ev.Kind)
	}
	if ev.Context != (ctxKey{42}) {
		t.Errorf("context = %v", ev.Context)
	}
	if !bytes.Equal(local, src) {
		t.Errorf("local = %q, want %q", local, src)
	}
	if err := mr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ea.RMARead(mr.Key(), 0, local, nil); err != ErrNoRegion {
		t.Errorf("read of deregistered region = %v, want ErrNoRegion", err)
	}
}

func TestRMAReadAtOffset(t *testing.T) {
	f, ea, eb := pair(t, testCaps())
	src := make([]byte, 1000)
	for i := range src {
		src[i] = byte(i * 7)
	}
	mr, err := eb.Domain().RegisterMemory(src)
	if err != nil {
		t.Fatal(err)
	}
	// Two disjoint offset reads — the pull-mode chunk shape.
	lo := make([]byte, 600)
	hi := make([]byte, 400)
	if err := ea.RMARead(mr.Key(), 0, lo, nil); err != nil {
		t.Fatal(err)
	}
	if err := ea.RMARead(mr.Key(), 600, hi, nil); err != nil {
		t.Fatal(err)
	}
	drainOne(t, ea)
	drainOne(t, ea)
	if !bytes.Equal(lo, src[:600]) || !bytes.Equal(hi, src[600:]) {
		t.Fatal("offset reads returned the wrong slices")
	}
	// Reads past the region's end fail like an unknown key.
	if err := ea.RMARead(mr.Key(), 700, make([]byte, 400), nil); err != ErrNoRegion {
		t.Errorf("past-the-end read = %v, want ErrNoRegion", err)
	}
	if st := f.Stats(); st.RMAReadBytes != 1000 || st.Registrations != 1 {
		t.Errorf("fabric stats = %+v", st)
	}
	if err := mr.Close(); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.LiveRegions != 0 || st.Deregistrations != 1 {
		t.Errorf("fabric stats after deregister = %+v", st)
	}
}

func TestRegisterMemoryRequiresRMA(t *testing.T) {
	f := NewSimFabric(SimConfig{})
	caps := testCaps()
	caps.RMA = false
	d := f.OpenDomain(caps)
	if _, err := d.RegisterMemory(make([]byte, 8)); err == nil {
		t.Error("RegisterMemory on a non-RMA domain should fail")
	}
}

func TestClosedEndpoint(t *testing.T) {
	_, ea, eb := pair(t, testCaps())
	if err := eb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ea.Send([]byte{1}, nil); err != ErrClosed {
		t.Errorf("send to closed peer = %v, want ErrClosed", err)
	}
	if _, _, err := eb.Poll(); err != ErrClosed {
		t.Errorf("poll of closed endpoint = %v, want ErrClosed", err)
	}
}

func TestBacklogReportsOutstanding(t *testing.T) {
	_, ea, eb := pair(t, testCaps())
	for i := 0; i < 5; i++ {
		if err := ea.Send([]byte{byte(i)}, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if got := ea.Backlog(); got != 5 {
		t.Errorf("sender backlog = %d, want 5 before any poll", got)
	}
	for i := 0; i < 5; i++ {
		drainOne(t, eb)
	}
	if got := ea.Backlog(); got != 0 {
		t.Errorf("sender backlog = %d after drain, want 0", got)
	}
}

func TestWallClockGating(t *testing.T) {
	// 1 virtual second of latency at TimeScale 0.01 = 10 ms wall.
	f := NewSimFabric(SimConfig{TimeScale: 0.01})
	caps := testCaps()
	caps.Latency = simtime.Second
	a, b := f.OpenDomain(caps), f.OpenDomain(caps)
	ea, eb := Connect(a, b)
	if err := ea.Send([]byte{1}, []byte("later")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := eb.Poll(); ok {
		t.Fatal("completion visible before its wall deadline")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok, _ := eb.Poll(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("completion never became visible")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestConcurrentSendPollUnderRace(t *testing.T) {
	_, ea, eb := pair(t, testCaps())
	const msgs = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			if err := ea.Send([]byte{byte(i)}, make([]byte, 100)); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	got := 0
	go func() {
		defer wg.Done()
		for got < msgs {
			if _, ok, err := eb.Poll(); err != nil {
				t.Errorf("poll: %v", err)
				return
			} else if ok {
				got++
			}
		}
	}()
	wg.Wait()
	if got != msgs {
		t.Fatalf("received %d/%d", got, msgs)
	}
}
