// Package fabric is the libfabric-shaped provider layer beneath the
// nmad communication engine. It abstracts one network rail the way
// libfabric abstracts a NIC: a Domain is the resource container (the
// opened NIC), an Endpoint is a connected transmit/receive channel
// bound to a completion queue, a MemoryRegion is a registered buffer
// remote peers may read, and Capabilities is the fi_info-style
// envelope — latency, bandwidth, inject limit, RMA support — that a
// multirail scheduler consumes to decide where each message goes.
//
// The paper's NewMadeleine stack is explicitly multi-backend: the
// scheduler is generic and the NIC drivers (Myrinet/MX, IB verbs, TCP)
// plug in underneath, with rail selection driven by sampled per-rail
// latency and bandwidth. This package is that seam. Two providers
// exist today: nmad's adapter wrapping its classic frame drivers
// (shared-memory and TCP rails), and the RDMA-style simulated provider
// in simrdma.go, which supplies the paper's IB-verbs scenario — queue
// pairs, registered buffers, eager inject vs. rendezvous-by-RMA-read —
// without hardware, with completion latency modelled in virtual time
// via internal/simtime. Future backends (a real libfabric binding, a
// UCX-shaped transport, a loopback-perf rail) slot in behind the same
// interfaces.
package fabric

import (
	"errors"
	"fmt"

	"pioman/internal/simtime"
)

// ErrClosed is returned when operating on a closed endpoint or domain.
var ErrClosed = errors.New("fabric: endpoint closed")

// ErrNoRegion is returned when an RMA operation names an unknown or
// deregistered memory region key.
var ErrNoRegion = errors.New("fabric: no such memory region")

// Capabilities describes one rail's performance envelope — the subset
// of libfabric's fi_info the multirail striping policy consumes.
// Latency and Bandwidth are the sampled per-rail constants the paper's
// rail-selection strategy is driven by.
type Capabilities struct {
	// Latency is the one-way message latency of the rail.
	Latency simtime.Duration
	// Bandwidth is the sustained rail bandwidth in bytes per (virtual)
	// second. Zero means unknown; consumers should treat unknown rails
	// as equal-weight.
	Bandwidth float64
	// MaxInject is the largest payload the provider sends inline
	// ("eager inject"): the data is buffered at post time and the send
	// completes immediately. Larger payloads may use a rendezvous
	// protocol internally (the simulated RDMA provider pulls them with
	// an RMA read).
	MaxInject int
	// RMA reports whether the provider supports remote memory access
	// (RegisterMemory on its domain, RMARead on its endpoints).
	RMA bool
	// NoExt reports that the transport truncates immediate bytes to
	// its own fixed header — frames must not carry protocol extensions
	// (a rendezvous pull offer) beyond it. False (the default) means
	// arbitrary imm bytes travel intact. A declared capability rather
	// than wrapper type knowledge, so decorating an endpoint (e.g.
	// calibration) cannot hide it.
	NoExt bool
}

// NsPerByte returns the inverse bandwidth in nanoseconds per byte, or 0
// when the bandwidth is unknown.
func (c Capabilities) NsPerByte() float64 {
	if c.Bandwidth <= 0 {
		return 0
	}
	return 1e9 / c.Bandwidth
}

// TransferTime returns the modelled wire time for a message of the
// given size: one latency plus the serialization delay.
func (c Capabilities) TransferTime(size int) simtime.Duration {
	return c.Latency + simtime.Duration(float64(size)*c.NsPerByte())
}

// String renders the envelope compactly for stats tables.
func (c Capabilities) String() string {
	return fmt.Sprintf("lat=%v bw=%.2fGB/s inject≤%d rma=%v",
		c.Latency, c.Bandwidth/1e9, c.MaxInject, c.RMA)
}

// EventKind discriminates completion-queue entries.
type EventKind int

// Completion-queue entry kinds.
const (
	// EventRecv signals an inbound message; Imm and Payload carry it.
	EventRecv EventKind = iota
	// EventRMADone signals a locally posted RMARead has delivered all
	// remote data into the local buffer; Context echoes the post's
	// context value.
	EventRMADone
	// EventSendDone signals a previously posted Send has fully left the
	// wire (the verbs-style signaled send completion). Providers post
	// these only when asked to (see SendCompleter); consumers that only
	// care about traffic may ignore them, while calibrators use their
	// timing to sample the rail's real latency and bandwidth.
	EventSendDone
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventRecv:
		return "recv"
	case EventRMADone:
		return "rma-done"
	case EventSendDone:
		return "send-done"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one completion-queue entry popped by Endpoint.Poll.
type Event struct {
	// Kind discriminates the entry.
	Kind EventKind
	// Imm carries the message's immediate (header) bytes (EventRecv).
	Imm []byte
	// Payload carries the message body (EventRecv) or the filled local
	// buffer (EventRMADone).
	Payload []byte
	// From identifies the sending endpoint's domain id (EventRecv on
	// providers that have one; -1 otherwise).
	From int
	// Context echoes the caller-supplied context of the completed
	// operation (EventRMADone).
	Context any
	// Stamp is the completion's timestamp on the provider's own
	// nanosecond clock (virtual time for the simulated provider), or 0
	// when the provider does not timestamp completions. Calibrators
	// prefer it over reading a clock at poll time: it is the exact
	// instant the operation completed, not the instant somebody looked.
	Stamp int64
}

// RKey names a registered memory region for remote access — the
// libfabric/verbs remote key a peer presents to RMARead. Zero is never
// a valid key: providers start numbering at 1, so protocols may use 0
// as an "absent" marker in wire formats (the nmad pull offer does).
type RKey uint64

// MemoryRegion is a registered buffer remote endpoints may read until
// it is closed (deregistered).
type MemoryRegion interface {
	// Key returns the remote key peers present to RMARead.
	Key() RKey
	// Close deregisters the region; subsequent RMA reads of its key
	// fail with ErrNoRegion.
	Close() error
}

// Domain is one opened NIC-like resource container: endpoints and
// memory registrations live inside it, and its capability envelope
// applies to every endpoint opened on it.
type Domain interface {
	// Provider names the backend ("simrdma", "mem", "tcp", ...).
	Provider() string
	// Capabilities returns the domain's performance envelope.
	Capabilities() Capabilities
	// RegisterMemory pins buf for remote access and returns its region
	// handle. Fails on providers whose Capabilities report RMA false.
	RegisterMemory(buf []byte) (MemoryRegion, error)
	// Close releases the domain and every endpoint opened on it.
	Close() error
}

// Endpoint is one connected transmit/receive channel to a single peer,
// bound to a completion queue — libfabric's connected message endpoint.
// Send must not block beyond handing the message to the provider; Poll
// must never block (it is called from PIOMan polling tasks).
type Endpoint interface {
	// Provider names the backend the endpoint belongs to.
	Provider() string
	// Capabilities returns the rail's performance envelope.
	Capabilities() Capabilities
	// Send transmits one message: imm (small header bytes, delivered
	// verbatim) plus payload. Both are owned by the caller again when
	// Send returns — providers buffer or finish the wire write before
	// returning (buffered-send semantics, like the classic drivers).
	Send(imm, payload []byte) error
	// Poll pops the next completion-queue entry, reporting false when
	// the queue is empty. A non-nil error means the rail is dead.
	Poll() (Event, bool, error)
	// Backlog reports the endpoint's current completion-queue depth:
	// operations posted but not yet complete plus completions not yet
	// polled. The striping policy deprioritizes backpressured rails.
	Backlog() int
	// Close shuts the endpoint down; subsequent Sends fail and Polls
	// report ErrClosed.
	Close() error
}

// RMAEndpoint is the optional remote-memory-access face of an
// endpoint, implemented by providers whose Capabilities report RMA: an
// RMA read pulls bytes from a peer's registered region into a local
// buffer without involving the peer's host CPU, completing with an
// EventRMADone on the local completion queue.
type RMAEndpoint interface {
	Endpoint
	// RMARead starts pulling len(local) bytes from the peer region
	// named by key, beginning offset bytes into it, into local — the
	// verbs read of remote address base+offset. ctx is echoed in the
	// completion event. Reads past the region's end fail with
	// ErrNoRegion.
	RMARead(key RKey, offset int, local []byte, ctx any) error
}

// Domained is the optional interface of endpoints that expose the
// Domain they were opened on. Protocols that register user memory for
// remote access (the nmad pull-mode rendezvous registers send buffers
// so the receiver can RMA-read them) discover the registration target
// through it; endpoints of providers without memory registration
// simply do not implement it.
type Domained interface {
	// Domain returns the endpoint's resource domain, or nil when the
	// endpoint is not backed by one.
	Domain() Domain
}

// SendCompleter is the optional interface of providers that post
// EventSendDone completions for their sends. Asynchronous providers (a
// send returns before the wire time has elapsed) implement it so a
// calibrator can attribute completion timing; synchronous providers —
// whose Send returns only after the wire write finished, like the
// loopback rail and the classic frame drivers — do not, and are
// sampled around the Send call itself.
type SendCompleter interface {
	// SendCompletions reports whether the endpoint currently posts
	// EventSendDone entries.
	SendCompletions() bool
}

// Clocked is the optional interface of providers with their own
// completion clock — the simulated fabric's virtual clock. Calibrators
// read send-post times from it so their arithmetic matches the clock
// the provider stamps completions with; providers without one are
// timed on the wall clock.
type Clocked interface {
	// ProviderClock returns a monotonic nanosecond clock function.
	ProviderClock() func() int64
}
