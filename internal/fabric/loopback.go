package fabric

import "sync"

// Loopback is the minimal wall-clock provider: two endpoints wired
// back to back inside the process, with no simulated clock and no
// modelled costs — a Send is one lock acquisition plus one copy of the
// bytes into the peer's completion queue, and that real, measurable
// work is the whole point. Calibration and striping benchmarks run
// against it to exercise the adaptive layers on genuine elapsed time
// (the ROADMAP "loopback-perf provider" item); its Capabilities are
// deliberately all-zero, because whatever this rail can do is exactly
// what a calibrator should discover.
//
// The provider is synchronous: Send finishes the "wire" write before
// returning (like the classic frame drivers), so it posts no
// EventSendDone — a Calibrator samples it around the Send call.
//
// Buffer ownership: delivered Payload slices are owned by the consumer
// (each Send copies its payload into a fresh buffer), but Imm slices
// point into per-endpoint scratch storage that is recycled after
// loopScratch further Polls of the same endpoint. Consumers must
// decode immediate bytes before polling again in earnest — which
// every real completion-queue consumer does anyway — and must not
// stash them. In exchange, control frames (empty payload, small imm)
// travel the rail without allocating, which is what lets the
// steady-state pull-mode rendezvous hit zero allocations per message.

// loopImmMax is the largest immediate-byte block embedded inline in a
// completion-queue slot; larger imms fall back to an allocated copy.
const loopImmMax = 128

// loopScratch is how many polled events' immediate bytes stay valid
// concurrently per endpoint (the scratch rotation depth).
const loopScratch = 8

// loopEvent is one in-queue completion: Event fields plus the inline
// immediate-byte block.
type loopEvent struct {
	kind    EventKind
	immLen  int
	imm     [loopImmMax]byte
	bigImm  []byte // imm overflow (> loopImmMax); nil otherwise
	payload []byte
	ctx     any
}

// loopbackPair is the shared state of two connected endpoints: one
// lock covering both directions, matching the provider's scale (an
// in-process rail has no per-direction parallelism to preserve), plus
// the pair's registered-memory table when the rail was built RMA.
type loopbackPair struct {
	mu      sync.Mutex
	rma     bool
	nextKey RKey
	regions map[RKey][]byte
}

// LoopbackEndpoint is one side of an in-process wall-clock rail. It
// implements Endpoint (and RMAEndpoint when built by NewLoopbackRMA);
// all methods are safe for concurrent use.
type LoopbackEndpoint struct {
	pair    *loopbackPair
	peer    *LoopbackEndpoint
	dom     *LoopbackDomain
	cq      []loopEvent
	cqHead  int
	scratch [loopScratch][loopImmMax]byte
	scrNext int
	closed  bool
	sends   uint64
	polls   uint64
}

// NewLoopback creates a connected endpoint pair.
func NewLoopback() (*LoopbackEndpoint, *LoopbackEndpoint) {
	p := &loopbackPair{}
	a := &LoopbackEndpoint{pair: p}
	b := &LoopbackEndpoint{pair: p}
	a.peer, b.peer = b, a
	a.dom = &LoopbackDomain{ep: a}
	b.dom = &LoopbackDomain{ep: b}
	return a, b
}

// NewLoopbackRMA creates a connected endpoint pair whose domains
// support memory registration and whose endpoints support RMARead —
// the loopback face of a zero-copy rail. An RMA read is a synchronous
// memcpy from the registered source straight into the caller's buffer
// (the in-process stand-in for NIC DMA), completing with an
// EventRMADone on the reader's queue. Capabilities stay all-unknown
// except the structural RMA bit.
func NewLoopbackRMA() (*LoopbackEndpoint, *LoopbackEndpoint) {
	a, b := NewLoopback()
	a.pair.rma = true
	a.pair.regions = make(map[RKey][]byte)
	return a, b
}

// Provider names the backend.
func (ep *LoopbackEndpoint) Provider() string { return "loopback" }

// Capabilities returns the all-unknown envelope: the loopback rail
// reports nothing about itself, so consumers either treat it as
// equal-weight (the Capabilities contract for unknown rails) or wrap
// it in a Calibrator and measure. Only the structural RMA bit is set,
// and only on pairs built by NewLoopbackRMA.
func (ep *LoopbackEndpoint) Capabilities() Capabilities {
	return Capabilities{RMA: ep.pair.rma}
}

// Domain returns the endpoint's resource domain (for memory
// registration), implementing the optional Domained interface.
func (ep *LoopbackEndpoint) Domain() Domain { return ep.dom }

// push appends one completion to the endpoint's queue, reusing the
// queue's storage once the previous burst has fully drained.
func (ep *LoopbackEndpoint) push(ev loopEvent) {
	if ep.cqHead > 0 && ep.cqHead == len(ep.cq) {
		ep.cq = ep.cq[:0]
		ep.cqHead = 0
	}
	ep.cq = append(ep.cq, ev)
}

// Send copies imm and payload into the peer's completion queue. The
// copy happens inside the call — buffered-send semantics, and the
// elapsed wall time is the rail's real serialization cost. Immediate
// bytes up to loopImmMax are embedded in the queue slot, so a
// control frame (empty payload) allocates nothing.
func (ep *LoopbackEndpoint) Send(imm, payload []byte) error {
	p := ep.pair
	p.mu.Lock()
	defer p.mu.Unlock()
	if ep.closed || ep.peer.closed {
		return ErrClosed
	}
	ep.sends++
	ev := loopEvent{kind: EventRecv, immLen: len(imm)}
	if len(imm) <= loopImmMax {
		copy(ev.imm[:], imm)
	} else {
		ev.bigImm = append([]byte(nil), imm...)
	}
	if len(payload) > 0 {
		ev.payload = append([]byte(nil), payload...)
	}
	ep.peer.push(ev)
	return nil
}

// RMARead pulls len(local) bytes from the pair's region named by key,
// starting offset bytes in, straight into local — a synchronous memcpy
// standing in for NIC DMA — and queues an EventRMADone carrying ctx on
// this endpoint.
func (ep *LoopbackEndpoint) RMARead(key RKey, offset int, local []byte, ctx any) error {
	p := ep.pair
	p.mu.Lock()
	defer p.mu.Unlock()
	if ep.closed || ep.peer.closed {
		return ErrClosed
	}
	src, ok := p.regions[key]
	if !ok || offset < 0 || offset+len(local) > len(src) {
		return ErrNoRegion
	}
	n := copy(local, src[offset:offset+len(local)])
	ep.push(loopEvent{kind: EventRMADone, payload: local[:n], ctx: ctx})
	return nil
}

// Poll pops the next completion-queue entry. The returned Imm slice
// lives in rotating per-endpoint scratch storage — see the package
// ownership note above.
func (ep *LoopbackEndpoint) Poll() (Event, bool, error) {
	p := ep.pair
	p.mu.Lock()
	defer p.mu.Unlock()
	if ep.closed {
		return Event{}, false, ErrClosed
	}
	ep.polls++
	if ep.cqHead == len(ep.cq) {
		return Event{}, false, nil
	}
	le := &ep.cq[ep.cqHead]
	ev := Event{Kind: le.kind, Payload: le.payload, From: -1, Context: le.ctx}
	switch {
	case le.bigImm != nil:
		ev.Imm = le.bigImm
	case le.immLen > 0:
		scr := &ep.scratch[ep.scrNext]
		ep.scrNext = (ep.scrNext + 1) % loopScratch
		copy(scr[:le.immLen], le.imm[:le.immLen])
		ev.Imm = scr[:le.immLen]
	}
	*le = loopEvent{}
	ep.cqHead++
	return ev, true, nil
}

// Backlog reports completions not yet polled.
func (ep *LoopbackEndpoint) Backlog() int {
	p := ep.pair
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(ep.cq) - ep.cqHead
}

// Close shuts the endpoint down; undelivered events are dropped.
func (ep *LoopbackEndpoint) Close() error {
	p := ep.pair
	p.mu.Lock()
	defer p.mu.Unlock()
	ep.closed = true
	ep.cq = nil
	ep.cqHead = 0
	return nil
}

// Stats returns (sends, polls) for the endpoint.
func (ep *LoopbackEndpoint) Stats() (sends, polls uint64) {
	p := ep.pair
	p.mu.Lock()
	defer p.mu.Unlock()
	return ep.sends, ep.polls
}

// LoopbackDomain is the trivial resource domain of one loopback
// endpoint. It implements Domain; memory registration works only on
// pairs built by NewLoopbackRMA.
type LoopbackDomain struct {
	ep *LoopbackEndpoint
}

// Provider names the backend.
func (d *LoopbackDomain) Provider() string { return "loopback" }

// Capabilities returns the endpoint's envelope.
func (d *LoopbackDomain) Capabilities() Capabilities { return d.ep.Capabilities() }

// RegisterMemory pins buf in the pair's region table. Fails on pairs
// built without RMA.
func (d *LoopbackDomain) RegisterMemory(buf []byte) (MemoryRegion, error) {
	p := d.ep.pair
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.rma {
		return nil, ErrNoRegion
	}
	if d.ep.closed {
		return nil, ErrClosed
	}
	p.nextKey++
	p.regions[p.nextKey] = buf
	return &loopbackMR{pair: p, key: p.nextKey}, nil
}

// Close closes the domain's endpoint.
func (d *LoopbackDomain) Close() error { return d.ep.Close() }

// loopbackMR is a registered buffer on a loopback pair.
type loopbackMR struct {
	pair *loopbackPair
	key  RKey
}

// Key returns the remote key peers present to RMARead.
func (m *loopbackMR) Key() RKey { return m.key }

// Close deregisters the region.
func (m *loopbackMR) Close() error {
	m.pair.mu.Lock()
	defer m.pair.mu.Unlock()
	delete(m.pair.regions, m.key)
	return nil
}

// Regions reports how many regions are currently registered on the
// pair — the loopback leak check.
func (ep *LoopbackEndpoint) Regions() int {
	p := ep.pair
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.regions)
}
