package fabric

import "sync"

// Loopback is the minimal wall-clock provider: two endpoints wired
// back to back inside the process, with no simulated clock and no
// modelled costs — a Send is one lock acquisition plus one copy of the
// bytes into the peer's completion queue, and that real, measurable
// work is the whole point. Calibration and striping benchmarks run
// against it to exercise the adaptive layers on genuine elapsed time
// (the ROADMAP "loopback-perf provider" item); its Capabilities are
// deliberately all-zero, because whatever this rail can do is exactly
// what a calibrator should discover.
//
// The provider is synchronous: Send finishes the "wire" write before
// returning (like the classic frame drivers), so it posts no
// EventSendDone — a Calibrator samples it around the Send call.

// loopbackPair is the shared state of two connected endpoints: one
// lock covering both directions, matching the provider's scale (an
// in-process rail has no per-direction parallelism to preserve).
type loopbackPair struct {
	mu sync.Mutex
}

// LoopbackEndpoint is one side of an in-process wall-clock rail. It
// implements Endpoint; all methods are safe for concurrent use.
type LoopbackEndpoint struct {
	pair   *loopbackPair
	peer   *LoopbackEndpoint
	cq     []Event
	closed bool
	sends  uint64
	polls  uint64
}

// NewLoopback creates a connected endpoint pair.
func NewLoopback() (*LoopbackEndpoint, *LoopbackEndpoint) {
	p := &loopbackPair{}
	a := &LoopbackEndpoint{pair: p}
	b := &LoopbackEndpoint{pair: p}
	a.peer, b.peer = b, a
	return a, b
}

// Provider names the backend.
func (ep *LoopbackEndpoint) Provider() string { return "loopback" }

// Capabilities returns the all-unknown envelope: the loopback rail
// reports nothing about itself, so consumers either treat it as
// equal-weight (the Capabilities contract for unknown rails) or wrap
// it in a Calibrator and measure.
func (ep *LoopbackEndpoint) Capabilities() Capabilities { return Capabilities{} }

// Send copies imm and payload into the peer's completion queue. The
// copy happens inside the call — buffered-send semantics, and the
// elapsed wall time is the rail's real serialization cost.
func (ep *LoopbackEndpoint) Send(imm, payload []byte) error {
	p := ep.pair
	p.mu.Lock()
	defer p.mu.Unlock()
	if ep.closed || ep.peer.closed {
		return ErrClosed
	}
	ep.sends++
	buf := make([]byte, len(imm)+len(payload))
	copy(buf, imm)
	copy(buf[len(imm):], payload)
	ep.peer.cq = append(ep.peer.cq, Event{
		Kind:    EventRecv,
		Imm:     buf[:len(imm):len(imm)],
		Payload: buf[len(imm):],
		From:    -1,
	})
	return nil
}

// Poll pops the next completion-queue entry.
func (ep *LoopbackEndpoint) Poll() (Event, bool, error) {
	p := ep.pair
	p.mu.Lock()
	defer p.mu.Unlock()
	if ep.closed {
		return Event{}, false, ErrClosed
	}
	ep.polls++
	if len(ep.cq) == 0 {
		return Event{}, false, nil
	}
	ev := ep.cq[0]
	ep.cq = ep.cq[1:]
	if len(ep.cq) == 0 {
		ep.cq = nil // let a drained burst's backing array go
	}
	return ev, true, nil
}

// Backlog reports completions not yet polled.
func (ep *LoopbackEndpoint) Backlog() int {
	p := ep.pair
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(ep.cq)
}

// Close shuts the endpoint down; undelivered events are dropped.
func (ep *LoopbackEndpoint) Close() error {
	p := ep.pair
	p.mu.Lock()
	defer p.mu.Unlock()
	ep.closed = true
	ep.cq = nil
	return nil
}

// Stats returns (sends, polls) for the endpoint.
func (ep *LoopbackEndpoint) Stats() (sends, polls uint64) {
	p := ep.pair
	p.mu.Lock()
	defer p.mu.Unlock()
	return ep.sends, ep.polls
}
