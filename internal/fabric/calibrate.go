package fabric

import (
	"sync"
	"sync/atomic"
	"time"

	"pioman/internal/adapt"
	"pioman/internal/simtime"
)

// Rail calibration: sampled (rather than assumed) capabilities.
//
// The paper's NewMadeleine drives rail selection with per-rail latency
// and bandwidth figures sampled at startup; this repo's providers so
// far carried *assumed* envelopes instead (driverCaps in nmad, the
// SimDomain configuration). The Calibrator closes the loop at runtime:
// it wraps any Endpoint, timestamps every send, attributes completions
// back to sends in FIFO order, and folds the observed timings into
// live estimators —
//
//   - base latency: the windowed minimum of small-send round trips
//     (total time minus the estimated serialization of the probe's own
//     bytes). The minimum over a rotating window is robust against
//     queueing noise — a queued probe can only take longer than the
//     base latency — yet expires, so a rail whose latency genuinely
//     rises re-converges;
//   - bandwidth: an EWMA of per-chunk serialization rates. A chunk
//     that queued behind its predecessor on the same rail is timed
//     completion-to-completion (back-to-back chunks measure pure
//     serialization, latency cancels); an unqueued chunk is timed
//     send-to-completion minus the latency estimate.
//
// Capabilities() then returns the live estimate instead of the wrapped
// envelope, so any consumer of the Capabilities contract — the nmad
// striping policy above all — adapts without knowing calibration
// exists: unknown rails start at zero (equal-weight striping, the
// documented fallback), converge to proportional splits as samples
// arrive, and re-converge when a rail's effective bandwidth shifts
// mid-stream.
//
// Two completion styles are supported. Asynchronous providers that
// post EventSendDone entries (SimFabric with SendCompletions, a future
// verbs binding with signaled sends) are attributed from those events,
// using the provider's own completion Stamp when present. Synchronous
// providers — Loopback, the classic frame drivers — finish the wire
// write inside Send, so the send is sampled around the call itself.

// calPending is one in-flight send awaiting its completion event. seq
// is the send's position in the endpoint's FIFO completion order, so
// a completion whose send was dropped from a full ring is discarded
// instead of being attributed to the next send's timestamps.
type calPending struct {
	bytes int
	t0    int64
	seq   uint64
}

// calRing bounds the in-flight attribution queue; sends beyond it go
// unsampled (counted in Dropped) rather than allocating.
const calRing = 256

// defaultProbeMax is the largest send treated as a latency probe when
// CalibratorConfig.ProbeMax is zero: control frames and tiny eager
// messages, whose own serialization is a rounding error next to the
// rail latency.
const defaultProbeMax = 512

// CalibratorConfig parameterizes Calibrate.
type CalibratorConfig struct {
	// Clock is the monotonic nanosecond clock send posts are stamped
	// with. Nil defaults to the provider's own clock when it implements
	// Clocked (the simulated fabric's virtual clock), else the wall
	// clock.
	Clock func() int64
	// Alpha is the bandwidth EWMA gain (0 means adapt.DefaultAlpha).
	Alpha float64
	// ProbeMax is the largest total frame size sampled as a latency
	// probe; larger sends sample bandwidth (0 means 512 bytes).
	ProbeMax int
	// Assume seeds the published envelope before any sample arrives.
	// Latency and Bandwidth are taken as given (zero means unknown —
	// the calibration-from-nothing scenario); a zero MaxInject, false
	// RMA and false NoExt are filled in from the wrapped endpoint,
	// since those are structural properties, not measurements.
	Assume Capabilities
}

// CalibratedEndpoint wraps an Endpoint and publishes measured
// Capabilities. It implements Endpoint (and forwards RMARead when the
// wrapped endpoint supports it); all methods are safe for concurrent
// use, and the sampling path performs no allocation.
type CalibratedEndpoint struct {
	inner Endpoint
	rma   RMAEndpoint // non-nil when inner supports RMA
	clock func() int64
	alpha float64
	probe int
	async bool
	off   bool // async provider with send completions disabled
	base  Capabilities

	mu         sync.Mutex
	ring       [calRing]calPending
	head, tail uint32 // ring indexes; tail-head = in flight
	sendSeq    uint64 // sends posted (ring-dropped ones included)
	doneSeq    uint64 // send completions observed
	lastDone   int64

	// RMA-read attribution: locally posted reads awaiting their
	// EventRMADone, FIFO like sends. Reads are bulk by construction
	// (the pull-mode rendezvous stripes large payloads), so their
	// completions feed the bandwidth EWMA exactly as bulk send
	// completions do — with the same seq matching, so a ring-dropped
	// read's completion is discarded instead of desyncing attribution.
	rmaRing          [calRing]calPending
	rmaHead, rmaTail uint32
	rmaSendSeq       uint64 // reads posted (ring-dropped ones included)
	rmaDoneSeq       uint64 // read completions observed
	rmaLastDone      int64

	lat adapt.Window
	bw  adapt.EWMA

	latSamples atomic.Uint64
	bwSamples  atomic.Uint64
	dropped    atomic.Uint64
}

// Calibrate wraps ep in a calibrator. The returned endpoint is a
// drop-in replacement whose Capabilities are measured, not assumed.
func Calibrate(ep Endpoint, cfg CalibratorConfig) *CalibratedEndpoint {
	c := &CalibratedEndpoint{
		inner: ep,
		clock: cfg.Clock,
		alpha: cfg.Alpha,
		probe: cfg.ProbeMax,
		base:  cfg.Assume,
	}
	if r, ok := ep.(RMAEndpoint); ok {
		c.rma = r
	}
	if sc, ok := ep.(SendCompleter); ok {
		if sc.SendCompletions() {
			c.async = true
		} else {
			// The provider is asynchronous (Send returns before the wire
			// time elapses) but is not posting completions: timing the
			// Send call would sample clock jitter, not the rail. Sampling
			// is disabled — the endpoint keeps working on its Assume seed
			// and Sampling() reports false so misconfiguration is
			// detectable (for SimFabric, set SimConfig.SendCompletions).
			c.off = true
		}
	}
	if c.clock == nil {
		if ck, ok := ep.(Clocked); ok {
			c.clock = ck.ProviderClock()
		} else {
			epoch := time.Now()
			c.clock = func() int64 { return int64(time.Since(epoch)) }
		}
	}
	if c.probe <= 0 {
		c.probe = defaultProbeMax
	}
	inner := ep.Capabilities()
	if c.base.MaxInject == 0 {
		c.base.MaxInject = inner.MaxInject
	}
	if !c.base.RMA {
		c.base.RMA = inner.RMA
	}
	if !c.base.NoExt {
		c.base.NoExt = inner.NoExt
	}
	return c
}

// Inner returns the wrapped endpoint.
func (c *CalibratedEndpoint) Inner() Endpoint { return c.inner }

// Provider names the wrapped backend.
func (c *CalibratedEndpoint) Provider() string { return c.inner.Provider() }

// Capabilities returns the live estimate: measured latency and
// bandwidth once samples exist, the Assume seed before that, and the
// wrapped endpoint's structural fields throughout.
func (c *CalibratedEndpoint) Capabilities() Capabilities {
	caps := c.base
	if v, ok := c.lat.Min(); ok {
		caps.Latency = simtime.Duration(v)
	}
	if v, ok := c.bw.Value(); ok {
		caps.Bandwidth = v
	}
	return caps
}

// Samples returns how many latency and bandwidth samples have been
// folded into the estimate.
func (c *CalibratedEndpoint) Samples() (lat, bw uint64) {
	return c.latSamples.Load(), c.bwSamples.Load()
}

// Dropped returns how many sends went unsampled because the in-flight
// attribution ring was full.
func (c *CalibratedEndpoint) Dropped() uint64 { return c.dropped.Load() }

// Sampling reports whether the calibrator can actually measure this
// endpoint — false for an asynchronous provider whose send completions
// are disabled, in which case the published envelope never leaves the
// Assume seed.
func (c *CalibratedEndpoint) Sampling() bool { return !c.off }

// Send transmits through the wrapped endpoint, stamping the post time.
// Synchronous providers are sampled immediately; asynchronous ones are
// queued for attribution against their EventSendDone.
func (c *CalibratedEndpoint) Send(imm, payload []byte) error {
	if c.off {
		return c.inner.Send(imm, payload)
	}
	t0 := c.clock()
	if err := c.inner.Send(imm, payload); err != nil {
		return err
	}
	n := len(imm) + len(payload)
	if c.async {
		c.mu.Lock()
		seq := c.sendSeq
		c.sendSeq++
		if c.tail-c.head < calRing {
			c.ring[c.tail%calRing] = calPending{bytes: n, t0: t0, seq: seq}
			c.tail++
		} else {
			c.dropped.Add(1)
		}
		c.mu.Unlock()
		return nil
	}
	tc := c.clock()
	c.mu.Lock()
	c.sample(n, t0, tc)
	c.mu.Unlock()
	return nil
}

// Poll forwards completions from the wrapped endpoint, consuming
// EventSendDone entries internally as calibration samples and sampling
// (but passing through) EventRMADone entries — consumers see exactly
// the event stream they would see uncalibrated, minus the send-done
// bookkeeping.
func (c *CalibratedEndpoint) Poll() (Event, bool, error) {
	for {
		ev, ok, err := c.inner.Poll()
		if err != nil || !ok {
			return ev, ok, err
		}
		if ev.Kind == EventRMADone {
			c.sampleRMADone(ev)
			return ev, ok, nil
		}
		if ev.Kind != EventSendDone {
			return ev, ok, nil
		}
		tc := ev.Stamp
		if tc == 0 {
			tc = c.clock()
		}
		c.mu.Lock()
		seq := c.doneSeq
		c.doneSeq++
		// Completions arrive in send order; a head entry with an older
		// seq lost its completion (the provider dropped it), and a
		// completion whose seq is missing from the ring belongs to a
		// ring-dropped send — either way, attribution stays aligned.
		for c.tail-c.head > 0 && c.ring[c.head%calRing].seq < seq {
			c.head++
		}
		if c.tail-c.head > 0 && c.ring[c.head%calRing].seq == seq {
			p := c.ring[c.head%calRing]
			c.head++
			c.sample(p.bytes, p.t0, tc)
		}
		c.mu.Unlock()
	}
}

// sample folds one attributed send into the estimators. Called with
// c.mu held: attribution order is the sample math's FIFO premise, so
// the completion-to-completion case needs the previous completion
// settled first.
func (c *CalibratedEndpoint) sample(bytes int, t0, tc int64) {
	if tc <= t0 {
		// Clock resolution swallowed the operation (a sub-tick
		// synchronous send); nothing to learn.
		return
	}
	prev := c.lastDone
	if tc > c.lastDone {
		c.lastDone = tc
	}
	total := tc - t0
	if t0 < prev && prev < tc {
		// Queued behind its predecessor on this rail: the gap between
		// the two completions is pure serialization of this chunk —
		// latency cancels, the cleanest bandwidth sample there is.
		if bytes > c.probe {
			c.bw.Observe(c.alpha, float64(bytes)*1e9/float64(tc-prev))
			c.bwSamples.Add(1)
		}
		return
	}
	if bytes <= c.probe {
		// Latency probe: the frame's own serialization is subtracted
		// with the current bandwidth estimate (zero when unknown — for
		// probe-sized frames the correction is sub-percent anyway).
		ser := 0.0
		if bw, ok := c.bw.Value(); ok && bw > 0 {
			ser = float64(bytes) * 1e9 / bw
		}
		if l := float64(total) - ser; l > 0 {
			c.lat.Observe(l)
			c.latSamples.Add(1)
		}
		return
	}
	// Unqueued bulk chunk: total time is latency overhead plus
	// serialization; subtract the latency estimate. Handshake-heavy
	// internal protocols (rendezvous) make this a slight bandwidth
	// underestimate, which the split tolerates and queued samples
	// correct.
	lat := int64(0)
	if v, ok := c.lat.Min(); ok {
		lat = int64(v)
	}
	if serial := total - lat; serial > 0 {
		c.bw.Observe(c.alpha, float64(bytes)*1e9/float64(serial))
		c.bwSamples.Add(1)
	}
}

// RMARead forwards to the wrapped endpoint when it supports RMA;
// otherwise it reports ErrNoRegion. Consumers should gate on
// Capabilities().RMA, which reflects the wrapped endpoint. Posted
// reads are stamped and attributed against their EventRMADone in FIFO
// order, feeding the bandwidth estimate the same way bulk send
// completions do — on a pull-mode receiver, RMA completions are the
// only bulk traffic there is to learn from.
func (c *CalibratedEndpoint) RMARead(key RKey, offset int, local []byte, ctx any) error {
	if c.rma == nil {
		return ErrNoRegion
	}
	t0 := c.clock()
	if err := c.rma.RMARead(key, offset, local, ctx); err != nil {
		return err
	}
	c.mu.Lock()
	seq := c.rmaSendSeq
	c.rmaSendSeq++
	if c.rmaTail-c.rmaHead < calRing {
		c.rmaRing[c.rmaTail%calRing] = calPending{bytes: len(local), t0: t0, seq: seq}
		c.rmaTail++
	} else {
		c.dropped.Add(1)
	}
	c.mu.Unlock()
	return nil
}

// sampleRMADone attributes one RMA completion to the oldest posted
// read. Reads complete in post order per endpoint (they serialize on
// the peer's direction of the link), so FIFO attribution holds the
// same way it does for signaled sends. A queued read — posted before
// its predecessor completed — is timed completion-to-completion, the
// latency-free serialization sample; an unqueued one is timed
// post-to-completion minus the latency estimate.
func (c *CalibratedEndpoint) sampleRMADone(ev Event) {
	tc := ev.Stamp
	if tc == 0 {
		tc = c.clock()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	seq := c.rmaDoneSeq
	c.rmaDoneSeq++
	// Completions arrive in post order; a head entry with an older seq
	// lost its completion, and a completion whose seq is missing from
	// the ring belongs to a ring-dropped read — either way, attribution
	// stays aligned (same discipline as the send ring).
	for c.rmaTail-c.rmaHead > 0 && c.rmaRing[c.rmaHead%calRing].seq < seq {
		c.rmaHead++
	}
	if c.rmaTail == c.rmaHead || c.rmaRing[c.rmaHead%calRing].seq != seq {
		return // not a read we posted (or ring-dropped)
	}
	p := c.rmaRing[c.rmaHead%calRing]
	c.rmaHead++
	if tc <= p.t0 {
		return
	}
	prev := c.rmaLastDone
	if tc > c.rmaLastDone {
		c.rmaLastDone = tc
	}
	if p.t0 < prev && prev < tc {
		c.bw.Observe(c.alpha, float64(p.bytes)*1e9/float64(tc-prev))
		c.bwSamples.Add(1)
		return
	}
	lat := int64(0)
	if v, ok := c.lat.Min(); ok {
		lat = int64(v)
	}
	if serial := tc - p.t0 - lat; serial > 0 {
		c.bw.Observe(c.alpha, float64(p.bytes)*1e9/float64(serial))
		c.bwSamples.Add(1)
	}
}

// Domain returns the wrapped endpoint's resource domain when it
// exposes one, implementing the optional Domained interface so
// calibrated rails stay usable as registration targets.
func (c *CalibratedEndpoint) Domain() Domain {
	if d, ok := c.inner.(Domained); ok {
		return d.Domain()
	}
	return nil
}

// Backlog reports the wrapped endpoint's completion-queue depth.
func (c *CalibratedEndpoint) Backlog() int { return c.inner.Backlog() }

// Close shuts the wrapped endpoint down.
func (c *CalibratedEndpoint) Close() error { return c.inner.Close() }
