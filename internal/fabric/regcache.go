package fabric

import (
	"errors"
	"sync"
	"unsafe"
)

// Registration cache: interned memory registrations by buffer identity.
//
// Registering memory is the expensive part of a zero-copy protocol —
// on real hardware it pins pages and programs the NIC's translation
// tables, and the HPX+LCI line of work (PAPERS.md) identifies cheap
// registration as the gate to rendezvous throughput. Applications
// overwhelmingly send from the same buffers repeatedly, so UCX keeps an
// rcache that maps buffer identity to an existing registration and
// skips the driver round-trip on a hit. RegCache is that idea on the
// fabric layer: registrations are interned by the buffer's base address
// and reference-counted by in-flight transfers, a released region stays
// cached (refcount 0) for the next send of the same buffer, and an
// entry is deregistered only when the buffer is re-registered at a
// different length (the classic rcache invalidation), when it is
// evicted to make room, or when the cache closes.
//
// The cache holds a reference to the cached slice, so the Go runtime
// cannot recycle a cached buffer's memory for a new allocation — a hit
// on the same base address is therefore always the same backing array,
// never a lookalike at a reused address.

// ErrCacheClosed is returned by RegCache.Get after the cache closed.
var ErrCacheClosed = errors.New("fabric: registration cache closed")

// DefaultRegCacheEntries is the entry capacity of a RegCache built with
// capEntries <= 0. Eviction applies only to entries with no in-flight
// references; a burst of distinct live buffers may exceed the cap.
const DefaultRegCacheEntries = 64

// RegCacheStats is a snapshot of a cache's counters.
type RegCacheStats struct {
	// Hits counts Gets served by an existing registration.
	Hits uint64
	// Misses counts Gets that had to register.
	Misses uint64
	// Invalidations counts entries dropped because their buffer was
	// re-registered at a different length.
	Invalidations uint64
	// Evictions counts idle entries closed to make room under the
	// entry cap.
	Evictions uint64
	// Entries is the current number of cached registrations.
	Entries int
	// LiveRefs is the total reference count across cached entries —
	// transfers currently holding a region.
	LiveRefs int
}

// RegCache interns MemoryRegions of one Domain by buffer identity.
// All methods are safe for concurrent use.
type RegCache struct {
	dom Domain
	cap int

	mu      sync.Mutex
	entries map[uintptr]*CachedRegion
	hits    uint64
	misses  uint64
	invals  uint64
	evicts  uint64
	closed  bool
}

// CachedRegion is one interned registration handed out by Get. Callers
// present Key to the remote peer and call Release when the transfer no
// longer needs the region; the registration itself stays cached for
// the next Get of the same buffer.
type CachedRegion struct {
	cache *RegCache
	mr    MemoryRegion
	buf   []byte // pins the backing array while cached
	base  uintptr
	refs  int
	stale bool // dropped from the map; close on last Release
}

// NewRegCache builds a cache registering through dom. capEntries <= 0
// selects DefaultRegCacheEntries.
func NewRegCache(dom Domain, capEntries int) *RegCache {
	if capEntries <= 0 {
		capEntries = DefaultRegCacheEntries
	}
	return &RegCache{dom: dom, cap: capEntries, entries: make(map[uintptr]*CachedRegion)}
}

// Get returns a registration covering buf, reusing the cached one when
// buf's base address and length match a previous registration. The
// caller owns one reference and must Release it.
func (c *RegCache) Get(buf []byte) (*CachedRegion, error) {
	if len(buf) == 0 {
		return nil, errors.New("fabric: cannot register an empty buffer")
	}
	base := uintptr(unsafe.Pointer(unsafe.SliceData(buf)))
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrCacheClosed
	}
	if e := c.entries[base]; e != nil {
		if len(e.buf) == len(buf) {
			c.hits++
			e.refs++
			return e, nil
		}
		// Same buffer, different length: the cached registration no
		// longer describes what the caller wants pinned. Drop it (the
		// rcache invalidation) and register afresh.
		c.invals++
		c.dropLocked(e)
	}
	if len(c.entries) >= c.cap {
		for _, e := range c.entries {
			if e.refs == 0 {
				c.evicts++
				c.dropLocked(e)
				break
			}
		}
	}
	mr, err := c.dom.RegisterMemory(buf)
	if err != nil {
		return nil, err
	}
	c.misses++
	e := &CachedRegion{cache: c, mr: mr, buf: buf, base: base, refs: 1}
	c.entries[base] = e
	return e, nil
}

// dropLocked removes e from the map, deregistering now when idle or on
// its last Release otherwise. Called with c.mu held.
func (c *RegCache) dropLocked(e *CachedRegion) {
	delete(c.entries, e.base)
	if e.refs == 0 {
		_ = e.mr.Close()
	} else {
		e.stale = true
	}
}

// Stats returns a snapshot of the cache counters.
func (c *RegCache) Stats() RegCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := RegCacheStats{
		Hits: c.hits, Misses: c.misses,
		Invalidations: c.invals, Evictions: c.evicts,
		Entries: len(c.entries),
	}
	for _, e := range c.entries {
		st.LiveRefs += e.refs
	}
	return st
}

// Close deregisters every cached entry, including ones still
// referenced (the shutdown path: the domain is going away, so in-flight
// transfers are already doomed). Get fails afterwards.
func (c *RegCache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	var firstErr error
	for _, e := range c.entries {
		if err := e.mr.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.entries = nil
	return firstErr
}

// Key returns the remote key peers present to RMARead.
func (r *CachedRegion) Key() RKey { return r.mr.Key() }

// Release returns the caller's reference. The registration stays
// cached for future Gets unless it was invalidated or the cache
// closed, in which case the last reference deregisters it.
func (r *CachedRegion) Release() {
	c := r.cache
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.refs > 0 {
		r.refs--
	}
	if r.stale && r.refs == 0 {
		_ = r.mr.Close()
		r.stale = false
	}
}
