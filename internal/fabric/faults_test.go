package fabric

import (
	"testing"

	"pioman/internal/simtime"
)

// faultCaps is the envelope the fault tests run on: microsecond rail,
// eager up to 4 KiB, RMA on.
func faultCaps() Capabilities {
	return Capabilities{
		Latency:   simtime.Microsecond,
		Bandwidth: 4e9,
		MaxInject: 4 << 10,
		RMA:       true,
	}
}

// tryDrain polls for one event. On a free-running fabric an empty poll
// already fast-forwarded the clock past every pending completion, so
// two empty polls mean the fabric is dry.
func tryDrain(t *testing.T, ep *SimEndpoint) (Event, bool) {
	t.Helper()
	for i := 0; i < 2; i++ {
		ev, ok, err := ep.Poll()
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		if ok {
			return ev, true
		}
	}
	return Event{}, false
}

// runDropTrial sends n eager frames across a lossy fabric and returns
// how many arrive plus the drop counter.
func runDropTrial(t *testing.T, seed int64, n int) (delivered int, dropped uint64) {
	t.Helper()
	f := NewSimFabric(SimConfig{Faults: FaultConfig{Seed: seed, DropProb: 0.5}})
	a := f.OpenDomain(faultCaps())
	b := f.OpenDomain(faultCaps())
	ea, eb := Connect(a, b)
	for i := 0; i < n; i++ {
		if err := ea.Send([]byte{byte(i)}, nil); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	for {
		if _, ok := tryDrain(t, eb); !ok {
			break
		}
		delivered++
	}
	return delivered, f.Stats().DroppedFrames
}

// TestFaultDropDeterministic checks that seeded drops lose some — but
// not all — frames, and that the same seed loses exactly the same ones.
func TestFaultDropDeterministic(t *testing.T) {
	const n = 200
	d1, drop1 := runDropTrial(t, 42, n)
	d2, drop2 := runDropTrial(t, 42, n)
	if d1 != d2 || drop1 != drop2 {
		t.Fatalf("same seed diverged: %d/%d delivered, %d/%d dropped", d1, d2, drop1, drop2)
	}
	if d1 == 0 || d1 == n {
		t.Fatalf("DropProb 0.5 delivered %d of %d", d1, n)
	}
	if int(drop1)+d1 != n {
		t.Fatalf("delivered %d + dropped %d != sent %d", d1, drop1, n)
	}
	d3, _ := runDropTrial(t, 43, n)
	if d3 == d1 {
		t.Logf("seeds 42 and 43 delivered the same count %d (possible, suspicious)", d1)
	}
}

// TestFaultDuplication checks DupProb 1 delivers every frame twice and
// counts the phantoms.
func TestFaultDuplication(t *testing.T) {
	f := NewSimFabric(SimConfig{Faults: FaultConfig{Seed: 1, DupProb: 1}})
	a := f.OpenDomain(faultCaps())
	b := f.OpenDomain(faultCaps())
	ea, eb := Connect(a, b)
	const n = 10
	for i := 0; i < n; i++ {
		if err := ea.Send([]byte{byte(i)}, nil); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	got := 0
	for {
		if _, ok := tryDrain(t, eb); !ok {
			break
		}
		got++
	}
	if got != 2*n {
		t.Fatalf("delivered %d frames, want %d (each duplicated)", got, 2*n)
	}
	if st := f.Stats(); st.DuplicatedFrames != n {
		t.Fatalf("DuplicatedFrames = %d, want %d", st.DuplicatedFrames, n)
	}
}

// TestFaultJitterDeterministic checks jitter shifts arrival stamps and
// that two same-seed fabrics produce identical stamps.
func TestFaultJitterDeterministic(t *testing.T) {
	run := func(seed int64) []int64 {
		f := NewSimFabric(SimConfig{Faults: FaultConfig{Seed: seed, DelayJitter: 50 * simtime.Microsecond}})
		a := f.OpenDomain(faultCaps())
		b := f.OpenDomain(faultCaps())
		ea, eb := Connect(a, b)
		var stamps []int64
		for i := 0; i < 20; i++ {
			if err := ea.Send([]byte{byte(i)}, nil); err != nil {
				t.Fatalf("send: %v", err)
			}
			ev, ok := tryDrain(t, eb)
			if !ok {
				t.Fatal("jitter must not lose frames")
			}
			stamps = append(stamps, ev.Stamp)
		}
		return stamps
	}
	s1, s2 := run(7), run(7)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("stamp %d diverged: %d vs %d", i, s1[i], s2[i])
		}
	}
}

// TestPartitionAndHeal checks a partition blackholes frames in both
// directions — including one already in flight — and that Heal restores
// delivery on the same endpoints.
func TestPartitionAndHeal(t *testing.T) {
	f := NewSimFabric(SimConfig{})
	a := f.OpenDomain(faultCaps())
	b := f.OpenDomain(faultCaps())
	ea, eb := Connect(a, b)

	// A frame posted before the cut but still in flight when it lands:
	// the partition eats it.
	if err := ea.Send([]byte{1}, nil); err != nil {
		t.Fatalf("send: %v", err)
	}
	b.SetPartition(1)
	if _, ok := tryDrain(t, eb); ok {
		t.Fatal("in-flight frame crossed a partition")
	}

	// Frames posted during the cut die too, both directions.
	if err := ea.Send([]byte{2}, nil); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := eb.Send([]byte{3}, nil); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, ok := tryDrain(t, eb); ok {
		t.Fatal("frame crossed a live partition")
	}
	if _, ok := tryDrain(t, ea); ok {
		t.Fatal("reverse frame crossed a live partition")
	}
	if st := f.Stats(); st.DroppedFrames != 3 {
		t.Fatalf("DroppedFrames = %d, want 3", st.DroppedFrames)
	}

	// Heal: the same endpoints carry traffic again, nothing replays.
	f.Heal()
	if err := ea.Send([]byte{4}, nil); err != nil {
		t.Fatalf("send: %v", err)
	}
	ev, ok := tryDrain(t, eb)
	if !ok {
		t.Fatal("healed link did not deliver")
	}
	if len(ev.Imm) != 1 || ev.Imm[0] != 4 {
		t.Fatalf("healed link delivered stale frame %v", ev.Imm)
	}
	if _, ok := tryDrain(t, eb); ok {
		t.Fatal("dropped frame replayed after heal")
	}
}

// TestPartitionBlackholesRMARead checks reads across a partition never
// complete and are counted, and that reads work again after Heal.
func TestPartitionBlackholesRMARead(t *testing.T) {
	f := NewSimFabric(SimConfig{})
	a := f.OpenDomain(faultCaps())
	b := f.OpenDomain(faultCaps())
	ea, _ := Connect(a, b)
	src := []byte("pinned region contents")
	mr, err := b.RegisterMemory(src)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	defer mr.Close()

	b.SetPartition(1)
	buf := make([]byte, len(src))
	if err := ea.RMARead(mr.Key(), 0, buf, nil); err != nil {
		t.Fatalf("read post: %v", err)
	}
	if _, ok := tryDrain(t, ea); ok {
		t.Fatal("read completed across a partition")
	}
	if st := f.Stats(); st.DroppedReads != 1 {
		t.Fatalf("DroppedReads = %d, want 1", st.DroppedReads)
	}

	f.Heal()
	if err := ea.RMARead(mr.Key(), 0, buf, "ctx"); err != nil {
		t.Fatalf("read post: %v", err)
	}
	ev, ok := tryDrain(t, ea)
	if !ok {
		t.Fatal("healed read did not complete")
	}
	if ev.Kind != EventRMADone || string(buf) != string(src) {
		t.Fatalf("healed read delivered %v / %q", ev.Kind, buf)
	}
}

// TestDomainFaultOverride checks SetFaults scopes loss to one domain's
// outbound traffic and that nil restores the fabric default — the
// flapping-rail primitive.
func TestDomainFaultOverride(t *testing.T) {
	f := NewSimFabric(SimConfig{})
	a := f.OpenDomain(faultCaps())
	b := f.OpenDomain(faultCaps())
	ea, eb := Connect(a, b)

	a.SetFaults(&FaultConfig{DropProb: 1})
	if err := ea.Send([]byte{1}, nil); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, ok := tryDrain(t, eb); ok {
		t.Fatal("flapped domain delivered")
	}
	// The other direction is untouched: faults ride the sender's side.
	if err := eb.Send([]byte{2}, nil); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, ok := tryDrain(t, ea); !ok {
		t.Fatal("healthy direction lost a frame")
	}

	a.SetFaults(nil)
	if err := ea.Send([]byte{3}, nil); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, ok := tryDrain(t, eb); !ok {
		t.Fatal("restored domain still losing frames")
	}
}

// TestSharedIngressSerializes checks the incast model: many senders
// converging on one domain queue behind each other at its ingress
// port, so the last arrival lands far later than any single flow —
// while a lone flow's timing is identical to a fabric without the knob.
func TestSharedIngressSerializes(t *testing.T) {
	lastStamp := func(shared bool, senders int) int64 {
		f := NewSimFabric(SimConfig{SharedIngress: shared})
		sink := f.OpenDomain(faultCaps())
		var eps []*SimEndpoint
		for i := 0; i < senders; i++ {
			d := f.OpenDomain(faultCaps())
			ed, _ := Connect(d, sink)
			eps = append(eps, ed)
		}
		payload := make([]byte, 4<<10) // 4 KiB: 1 µs of wire at 4 GB/s
		for _, ep := range eps {
			if err := ep.Send([]byte{9}, payload); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		var last int64
		// Each sender has its own sink-side endpoint; drain them all.
		for _, ep := range eps {
			ev, ok := tryDrain(t, ep.peer)
			if !ok {
				t.Fatal("incast frame lost")
			}
			if ev.Stamp > last {
				last = ev.Stamp
			}
		}
		return last
	}
	solo := lastStamp(true, 1)
	soloOff := lastStamp(false, 1)
	if solo != soloOff {
		t.Fatalf("lone flow timing changed by SharedIngress: %d vs %d", solo, soloOff)
	}
	incast := lastStamp(true, 8)
	incastOff := lastStamp(false, 8)
	if incast <= incastOff {
		t.Fatalf("shared ingress did not queue the incast: %d <= %d", incast, incastOff)
	}
	// 8 frames × ~1 µs serialization each: the queued tail should sit
	// at least 4 frame-times past the unqueued one.
	if incast-incastOff < int64(4*simtime.Microsecond) {
		t.Fatalf("incast queueing too small: %d ns", incast-incastOff)
	}
}

// TestAdvance checks manual clock advancement on an idle free-running
// fabric — the primitive harness drivers use to expire timeouts.
func TestAdvance(t *testing.T) {
	f := NewSimFabric(SimConfig{})
	before := f.Now()
	after := f.Advance(5 * simtime.Millisecond)
	if after-before != 5*simtime.Millisecond {
		t.Fatalf("Advance moved %d ns, want 5 ms", after-before)
	}
	if f.Now() != after {
		t.Fatalf("Now %d != advanced %d", f.Now(), after)
	}
}
