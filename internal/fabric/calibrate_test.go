package fabric

import (
	"math"
	"sync"
	"testing"

	"pioman/internal/simtime"
)

// relErr returns |est-truth|/truth.
func relErr(est, truth float64) float64 {
	return math.Abs(est-truth) / truth
}

// calibratedSimRail builds one calibrated endpoint over a simulated
// rail with the given true envelope, starting from zero knowledge.
func calibratedSimRail(caps Capabilities) (*CalibratedEndpoint, *SimEndpoint, *SimDomain) {
	f := NewSimFabric(SimConfig{SendCompletions: true})
	a := f.OpenDomain(caps)
	b := f.OpenDomain(caps)
	ea, eb := Connect(a, b)
	return Calibrate(ea, CalibratorConfig{}), eb, a
}

// drain consumes every available completion (sampling send-dones).
func drain(ep Endpoint) {
	for {
		if _, ok, _ := ep.Poll(); !ok {
			return
		}
	}
}

func TestCalibratorMeasuresSimRail(t *testing.T) {
	truth := Capabilities{
		Latency:   simtime.Microsecond,
		Bandwidth: 8e9,
		MaxInject: 16 << 10,
		RMA:       true,
	}
	cal, _, _ := calibratedSimRail(truth)

	// Unknown at start: the published envelope is zero except the
	// structural fields inherited from the wrapped endpoint.
	start := cal.Capabilities()
	if start.Latency != 0 || start.Bandwidth != 0 {
		t.Fatalf("uncalibrated envelope = %v, want unknown latency/bandwidth", start)
	}
	if start.MaxInject != truth.MaxInject || !start.RMA {
		t.Fatalf("structural fields = %v, want inherited MaxInject/RMA", start)
	}

	// Small probes calibrate latency; polling between sends keeps each
	// probe unqueued so its timing is pure latency.
	probe := make([]byte, 8)
	for i := 0; i < 8; i++ {
		if err := cal.Send(probe, nil); err != nil {
			t.Fatal(err)
		}
		drain(cal)
	}
	// Bulk transfers calibrate bandwidth (above MaxInject, so the
	// provider's internal rendezvous carries them).
	bulk := make([]byte, 256<<10)
	for i := 0; i < 8; i++ {
		if err := cal.Send(probe, bulk); err != nil {
			t.Fatal(err)
		}
		drain(cal)
	}

	est := cal.Capabilities()
	if e := relErr(float64(est.Latency), float64(truth.Latency)); e > 0.2 {
		t.Errorf("latency estimate %v vs true %v: %.1f%% off, want ≤ 20%%",
			est.Latency, truth.Latency, 100*e)
	}
	if e := relErr(est.Bandwidth, truth.Bandwidth); e > 0.2 {
		t.Errorf("bandwidth estimate %.3g vs true %.3g: %.1f%% off, want ≤ 20%%",
			est.Bandwidth, truth.Bandwidth, 100*e)
	}
	lat, bw := cal.Samples()
	if lat == 0 || bw == 0 {
		t.Errorf("samples = (%d lat, %d bw), want both non-zero", lat, bw)
	}
	if cal.Dropped() != 0 {
		t.Errorf("dropped %d samples with a near-empty ring", cal.Dropped())
	}
}

func TestCalibratorReconvergesAfterBandwidthShift(t *testing.T) {
	truth := Capabilities{
		Latency:   simtime.Microsecond,
		Bandwidth: 8e9,
		MaxInject: 16 << 10,
		RMA:       true,
	}
	cal, _, dom := calibratedSimRail(truth)
	probe := make([]byte, 8)
	bulk := make([]byte, 256<<10)
	for i := 0; i < 8; i++ {
		if err := cal.Send(probe, nil); err != nil {
			t.Fatal(err)
		}
		drain(cal)
		if err := cal.Send(probe, bulk); err != nil {
			t.Fatal(err)
		}
		drain(cal)
	}
	if e := relErr(cal.Capabilities().Bandwidth, 8e9); e > 0.2 {
		t.Fatalf("pre-shift estimate %.3g off by %.1f%%", cal.Capabilities().Bandwidth, 100*e)
	}

	// The rail's effective bandwidth collapses mid-stream (a saturated
	// uplink, a degraded NIC): the estimate must follow.
	shifted := truth
	shifted.Bandwidth = 1e9
	dom.SetCapabilities(shifted)
	for i := 0; i < 24; i++ {
		if err := cal.Send(probe, bulk); err != nil {
			t.Fatal(err)
		}
		drain(cal)
	}
	if e := relErr(cal.Capabilities().Bandwidth, 1e9); e > 0.2 {
		t.Errorf("post-shift estimate %.3g vs true 1e9: %.1f%% off, want ≤ 20%%",
			cal.Capabilities().Bandwidth, 100*e)
	}
}

func TestCalibratorAssumeSeedAndOverride(t *testing.T) {
	a, _ := NewLoopback()
	seed := Capabilities{Latency: 7 * simtime.Microsecond, Bandwidth: 3e9, MaxInject: 4 << 10}
	cal := Calibrate(a, CalibratorConfig{Assume: seed})
	got := cal.Capabilities()
	if got.Latency != seed.Latency || got.Bandwidth != seed.Bandwidth || got.MaxInject != seed.MaxInject {
		t.Fatalf("seeded envelope = %v, want the Assume values %v", got, seed)
	}
	// Samples override the seed.
	payload := make([]byte, 1<<20)
	for i := 0; i < 4; i++ {
		if err := cal.Send(nil, payload); err != nil {
			t.Fatal(err)
		}
	}
	if got := cal.Capabilities().Bandwidth; got == seed.Bandwidth {
		t.Error("measured bandwidth did not override the seed")
	}
}

func TestCalibratorSyncLoopback(t *testing.T) {
	a, b := NewLoopback()
	cal := Calibrate(a, CalibratorConfig{})
	payload := make([]byte, 1<<20)
	probe := make([]byte, 16)
	for i := 0; i < 8; i++ {
		if err := cal.Send(probe, nil); err != nil {
			t.Fatal(err)
		}
		if err := cal.Send(probe, payload); err != nil {
			t.Fatal(err)
		}
	}
	// The wall clock is not deterministic, so only sanity is asserted:
	// a megabyte memcpy is measurable, and the estimates are positive.
	est := cal.Capabilities()
	if est.Bandwidth <= 0 {
		t.Errorf("loopback bandwidth estimate = %v, want > 0", est.Bandwidth)
	}
	lat, bw := cal.Samples()
	if bw == 0 {
		t.Errorf("samples = (%d lat, %d bw), want bandwidth samples", lat, bw)
	}
	// The peer received everything (the wrapper forwards traffic
	// untouched).
	for i := 0; i < 16; i++ {
		if _, ok, err := b.Poll(); !ok || err != nil {
			t.Fatalf("peer missing frame %d: %v", i, err)
		}
	}
}

// TestCalibratorConsistentUnderRace hammers one calibrated endpoint
// from concurrent senders and pollers (run with -race): the estimators
// must stay inside the physically possible range and the attribution
// ring must account for every send.
func TestCalibratorConsistentUnderRace(t *testing.T) {
	f := NewSimFabric(SimConfig{SendCompletions: true})
	caps := Capabilities{Latency: simtime.Microsecond, Bandwidth: 4e9, MaxInject: 64 << 10}
	a := f.OpenDomain(caps)
	b := f.OpenDomain(caps)
	ea, eb := Connect(a, b)
	cal := Calibrate(ea, CalibratorConfig{})

	const senders = 4
	const perSender = 200
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := make([]byte, 32<<10)
			for i := 0; i < perSender; i++ {
				if err := cal.Send(nil, payload); err != nil {
					t.Error(err)
					return
				}
				cal.Poll()
			}
		}()
	}
	stop := make(chan struct{})
	var pollers sync.WaitGroup
	pollers.Add(1)
	go func() {
		defer pollers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				cal.Poll()
				eb.Poll()
			}
		}
	}()
	wg.Wait()
	drain(cal)
	close(stop)
	pollers.Wait()

	if bw, ok := cal.bw.Value(); ok && (bw <= 0 || bw > 1e12) {
		t.Errorf("bandwidth estimate %.3g escaped the physical range", bw)
	}
	lat, bw := cal.Samples()
	if lat+bw+cal.Dropped() > senders*perSender {
		t.Errorf("samples (%d+%d) + dropped (%d) exceed sends (%d)",
			lat, bw, cal.Dropped(), senders*perSender)
	}
}

// fakeAsyncEndpoint is a hand-driven provider that posts send
// completions from a scripted queue, for exercising the calibrator's
// FIFO attribution without a fabric model.
type fakeAsyncEndpoint struct {
	cq []Event
}

func (f *fakeAsyncEndpoint) Provider() string               { return "fake" }
func (f *fakeAsyncEndpoint) Capabilities() Capabilities     { return Capabilities{} }
func (f *fakeAsyncEndpoint) Send(imm, payload []byte) error { return nil }
func (f *fakeAsyncEndpoint) Backlog() int                   { return 0 }
func (f *fakeAsyncEndpoint) Close() error                   { return nil }
func (f *fakeAsyncEndpoint) SendCompletions() bool          { return true }
func (f *fakeAsyncEndpoint) Poll() (Event, bool, error) {
	if len(f.cq) == 0 {
		return Event{}, false, nil
	}
	ev := f.cq[0]
	f.cq = f.cq[1:]
	return ev, true, nil
}

// TestCalibratorRingOverflowKeepsAttributionAligned: when the
// in-flight ring overflows, the dropped send's completion must be
// discarded — not attributed to the next send's timestamps, which
// would desync every later sample.
func TestCalibratorRingOverflowKeepsAttributionAligned(t *testing.T) {
	fake := &fakeAsyncEndpoint{}
	now := int64(0)
	cal := Calibrate(fake, CalibratorConfig{Clock: func() int64 { return now }})
	if !cal.Sampling() {
		t.Fatal("async provider with completions should sample")
	}
	probe := make([]byte, 8)
	t0 := func(seq int64) int64 { return seq * 10_000 }
	// Fill the ring completely (seqs 0..calRing-1), then one more send
	// that must be dropped.
	for seq := int64(0); seq < calRing; seq++ {
		now = t0(seq)
		if err := cal.Send(probe, nil); err != nil {
			t.Fatal(err)
		}
	}
	now = t0(calRing)
	if err := cal.Send(probe, nil); err != nil { // seq calRing: dropped
		t.Fatal(err)
	}
	if cal.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", cal.Dropped())
	}
	// Drain the ring's completions: each send took exactly 1000 ns.
	for seq := int64(0); seq < calRing; seq++ {
		fake.cq = append(fake.cq, Event{Kind: EventSendDone, Stamp: t0(seq) + 1000})
	}
	drain(cal)
	// One more send, posted only 100 ns after the dropped send — if the
	// dropped send's completion were misattributed to it, its 1000 ns
	// stamp would read as a bogus 900 ns latency.
	now = t0(calRing) + 100
	if err := cal.Send(probe, nil); err != nil {
		t.Fatal(err)
	}
	fake.cq = append(fake.cq, Event{Kind: EventSendDone, Stamp: t0(calRing) + 1000})       // dropped send's
	fake.cq = append(fake.cq, Event{Kind: EventSendDone, Stamp: t0(calRing) + 100 + 1000}) // live send's
	drain(cal)
	if lat := int64(cal.Capabilities().Latency); lat != 1000 {
		t.Errorf("latency floor = %d ns, want exactly 1000 (misattribution would read 900)", lat)
	}
	if latN, _ := cal.Samples(); latN != calRing+1 {
		t.Errorf("latency samples = %d, want %d (dropped send unsampled)", latN, calRing+1)
	}
}

// fakeRMAAsyncEndpoint extends the scripted provider with a no-op RMA
// face, for exercising the read-attribution ring.
type fakeRMAAsyncEndpoint struct {
	fakeAsyncEndpoint
}

func (f *fakeRMAAsyncEndpoint) RMARead(key RKey, offset int, local []byte, ctx any) error {
	return nil
}

// TestCalibratorRMARingOverflowKeepsAttributionAligned: the RMA-read
// attribution ring must survive an overflow the same way the send ring
// does — a ring-dropped read's completion is discarded by sequence
// matching, not attributed to the next read's timestamps.
func TestCalibratorRMARingOverflowKeepsAttributionAligned(t *testing.T) {
	fake := &fakeRMAAsyncEndpoint{}
	now := int64(0)
	cal := Calibrate(fake, CalibratorConfig{Clock: func() int64 { return now }})
	buf := make([]byte, 1_000_000)
	t0 := func(seq int64) int64 { return seq * 10_000_000 }
	const wire = 1_000_000 // ns per read: 1 MB in 1 ms = 1e9 B/s exactly
	// Fill the ring completely, then one more read that must be dropped.
	for seq := int64(0); seq < calRing; seq++ {
		now = t0(seq)
		if err := cal.RMARead(1, 0, buf, nil); err != nil {
			t.Fatal(err)
		}
	}
	now = t0(calRing)
	if err := cal.RMARead(1, 0, buf, nil); err != nil { // dropped
		t.Fatal(err)
	}
	if cal.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", cal.Dropped())
	}
	// Complete the ring-resident reads: each spans exactly its own wire
	// time, spaced so none queues behind its predecessor.
	for seq := int64(0); seq < calRing; seq++ {
		fake.cq = append(fake.cq, Event{Kind: EventRMADone, Stamp: t0(seq) + wire})
	}
	drain(cal)
	// A live read posted after the dropped read's completion stamp: a
	// misattributed (stale) completion would read as tc <= t0 and both
	// eat this read's ring entry and lose its sample.
	now = t0(calRing) + 2*wire
	if err := cal.RMARead(1, 0, buf, nil); err != nil {
		t.Fatal(err)
	}
	fake.cq = append(fake.cq, Event{Kind: EventRMADone, Stamp: t0(calRing) + wire})          // dropped read's
	fake.cq = append(fake.cq, Event{Kind: EventRMADone, Stamp: t0(calRing) + 2*wire + wire}) // live read's
	drain(cal)
	if _, bwN := cal.Samples(); bwN != calRing+1 {
		t.Errorf("bandwidth samples = %d, want %d (dropped read unsampled, live read attributed)", bwN, calRing+1)
	}
	if bw := cal.Capabilities().Bandwidth; bw != 1e9 {
		t.Errorf("bandwidth = %g, want exactly 1e9 (misattribution would skew it)", bw)
	}
}

// TestCalibratorDisabledWithoutSendCompletions: wrapping an
// asynchronous provider whose completions are off must not sample
// clock jitter — calibration runs disabled on the Assume seed.
func TestCalibratorDisabledWithoutSendCompletions(t *testing.T) {
	f := NewSimFabric(SimConfig{}) // SendCompletions off
	caps := Capabilities{Latency: simtime.Microsecond, Bandwidth: 4e9, MaxInject: 4 << 10}
	a := f.OpenDomain(caps)
	b := f.OpenDomain(caps)
	ea, eb := Connect(a, b)
	seed := Capabilities{Bandwidth: 2e9}
	cal := Calibrate(ea, CalibratorConfig{Assume: seed})
	if cal.Sampling() {
		t.Fatal("async provider without completions must not claim to sample")
	}
	payload := make([]byte, 1<<10)
	for i := 0; i < 16; i++ {
		if err := cal.Send(nil, payload); err != nil {
			t.Fatal(err)
		}
		drain(cal)
		eb.Poll()
	}
	if lat, bw := cal.Samples(); lat != 0 || bw != 0 {
		t.Errorf("disabled calibrator folded in %d/%d samples", lat, bw)
	}
	if got := cal.Capabilities().Bandwidth; got != seed.Bandwidth {
		t.Errorf("disabled calibrator moved off its seed: %v", got)
	}
}
