package fabric

import (
	"sync"
	"testing"
)

// rmaDomain builds one RMA-capable simulated domain for cache tests.
func rmaDomain(t *testing.T) (*SimFabric, *SimDomain) {
	t.Helper()
	f := NewSimFabric(SimConfig{})
	return f, f.OpenDomain(testCaps())
}

func TestRegCacheInternsByBufferIdentity(t *testing.T) {
	f, d := rmaDomain(t)
	c := NewRegCache(d, 0)
	buf := make([]byte, 4096)

	r1, err := c.Get(buf)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Get(buf)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 || r1.Key() != r2.Key() {
		t.Fatalf("same buffer produced distinct regions %v / %v", r1.Key(), r2.Key())
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 || st.LiveRefs != 2 {
		t.Fatalf("stats after two Gets = %+v", st)
	}
	if st := f.Stats(); st.Registrations != 1 {
		t.Fatalf("registrations = %d, want 1 (second Get must reuse)", st.Registrations)
	}

	// Releases drop the references but keep the region cached.
	r1.Release()
	r2.Release()
	if st := c.Stats(); st.LiveRefs != 0 || st.Entries != 1 {
		t.Fatalf("stats after releases = %+v", st)
	}
	if st := f.Stats(); st.LiveRegions != 1 {
		t.Fatalf("live regions = %d, want the cached registration kept", st.LiveRegions)
	}
	// A later Get of the same buffer is still a hit.
	if r3, err := c.Get(buf); err != nil || r3 != r1 {
		t.Fatalf("Get after release = %v, %v; want the cached entry", r3, err)
	}
}

func TestRegCacheInvalidatesOnLengthChange(t *testing.T) {
	f, d := rmaDomain(t)
	c := NewRegCache(d, 0)
	buf := make([]byte, 8192)

	r1, err := c.Get(buf[:4096])
	if err != nil {
		t.Fatal(err)
	}
	oldKey := r1.Key()
	r1.Release()

	// Same base, longer registration: the cached entry no longer
	// covers the request and must be invalidated, not reused.
	r2, err := c.Get(buf)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Key() == oldKey {
		t.Fatal("length change reused the stale registration")
	}
	if st := c.Stats(); st.Invalidations != 1 || st.Entries != 1 {
		t.Fatalf("stats after invalidation = %+v", st)
	}
	if st := f.Stats(); st.LiveRegions != 1 || st.Deregistrations != 1 {
		t.Fatalf("fabric stats after invalidation = %+v", st)
	}
	r2.Release()
}

func TestRegCacheInvalidationDefersCloseToLastRef(t *testing.T) {
	f, d := rmaDomain(t)
	c := NewRegCache(d, 0)
	buf := make([]byte, 8192)

	r1, err := c.Get(buf[:4096])
	if err != nil {
		t.Fatal(err)
	}
	// Invalidate while a transfer still holds the old region: it must
	// stay registered until that reference releases.
	if _, err := c.Get(buf); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.LiveRegions != 2 {
		t.Fatalf("live regions = %d; in-use invalidated region deregistered early", st.LiveRegions)
	}
	r1.Release()
	if st := f.Stats(); st.LiveRegions != 1 {
		t.Fatalf("live regions = %d after last ref released, want 1", st.LiveRegions)
	}
}

func TestRegCacheEvictsIdleEntriesAtCap(t *testing.T) {
	f, d := rmaDomain(t)
	c := NewRegCache(d, 2)
	bufs := [][]byte{make([]byte, 64), make([]byte, 64), make([]byte, 64)}
	for _, b := range bufs {
		r, err := c.Get(b)
		if err != nil {
			t.Fatal(err)
		}
		r.Release()
	}
	if st := c.Stats(); st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats after overflow = %+v, want 2 entries / 1 eviction", st)
	}
	if st := f.Stats(); st.LiveRegions != 2 {
		t.Fatalf("live regions = %d, want 2 after eviction", st.LiveRegions)
	}
}

func TestRegCacheCloseReleasesEverything(t *testing.T) {
	f, d := rmaDomain(t)
	c := NewRegCache(d, 0)
	r, err := c.Get(make([]byte, 128))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.LiveRegions != 0 {
		t.Fatalf("%d regions leaked past Close", st.LiveRegions)
	}
	if _, err := c.Get(make([]byte, 128)); err != ErrCacheClosed {
		t.Fatalf("Get after Close = %v, want ErrCacheClosed", err)
	}
	r.Release() // must be safe after Close
}

func TestRegCacheConcurrentGetReleaseUnderRace(t *testing.T) {
	_, d := rmaDomain(t)
	c := NewRegCache(d, 8)
	bufs := make([][]byte, 4)
	for i := range bufs {
		bufs[i] = make([]byte, 256)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r, err := c.Get(bufs[(w+i)%len(bufs)])
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				r.Release()
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.LiveRefs != 0 || st.Entries != len(bufs) {
		t.Fatalf("stats after concurrent churn = %+v", st)
	}
}
