package fabric

import (
	"math/rand"

	"pioman/internal/simtime"
)

// Seeded chaos injection for the simulated fabric.
//
// Every number this repo produced before the cluster harness existed
// was measured on clean links. Real fabrics drop frames, deliver them
// twice, jitter their arrival, and partition — and a scheduling system
// for communication libraries earns its keep precisely by surviving
// that. FaultConfig is the knob set the chaos harness turns: faults are
// drawn from one seeded generator owned by the fabric, so a scenario
// replays bit-identically from its seed, and per-domain overrides let a
// script flap a single rail (DropProb 1 for a window) while the rest of
// the cluster stays healthy.
//
// Fault semantics follow the hardware they model:
//
//   - a dropped frame still occupies the sender's wire and still posts
//     its EventSendDone (the NIC finished the send; the network ate the
//     frame) — the sender cannot tell, which is exactly what makes
//     loss hard;
//   - a duplicated frame crosses the wire twice and is delivered twice;
//   - delay jitter shifts only the arrival instant (network queueing),
//     not the serialization occupancy;
//   - a partition silently blackholes traffic between domains in
//     different partition groups, including frames already in flight
//     and RMA reads — nothing errors, which is what forces protocol
//     timeouts to exist.
//
// RMA reads are subject to drop and partition (the read never
// completes; the issuer must re-post) but not duplication: a verbs
// read completes at most once per post by construction.

// FaultConfig parameterizes seeded fault injection on a simulated
// fabric (SimConfig.Faults) or on one domain's outbound traffic
// (SimDomain.SetFaults). The zero value injects nothing and draws
// nothing from the generator, so fault-free fabrics behave
// bit-identically to fabrics built before this knob existed.
type FaultConfig struct {
	// Seed seeds the fabric-wide fault generator. Only the fabric-level
	// config's seed is used; per-domain overrides share the fabric
	// generator so the whole run replays from one number.
	Seed int64
	// DropProb is the probability a frame (or RMA read) is lost after
	// transmission.
	DropProb float64
	// DupProb is the probability a frame is delivered twice.
	DupProb float64
	// DelayJitter adds a uniform random extra delay in [0, DelayJitter)
	// to each frame's arrival.
	DelayJitter simtime.Duration
}

// active reports whether any fault can fire — inactive configs draw
// nothing from the generator, keeping fault-free runs bit-identical.
func (fc FaultConfig) active() bool {
	return fc.DropProb > 0 || fc.DupProb > 0 || fc.DelayJitter > 0
}

// faultDraw is one frame's drawn fate.
type faultDraw struct {
	drop   bool
	dup    bool
	jitter simtime.Duration
}

// newFaultRNG builds the fabric's seeded fault generator.
func newFaultRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// drawFaultsLocked rolls one frame's fate from the sending endpoint's
// effective fault config: endpoint override, then domain override, then
// the fabric-wide default. Called with the fabric lock held (the
// generator is fabric-wide state). allowDup is false for RMA reads.
func (f *SimFabric) drawFaultsLocked(ep *SimEndpoint, allowDup bool) faultDraw {
	fc := f.cfg.Faults
	if ep.dom.faults != nil {
		fc = *ep.dom.faults
	}
	if ep.faults != nil {
		fc = *ep.faults
	}
	if !fc.active() {
		return faultDraw{}
	}
	var fd faultDraw
	if fc.DropProb > 0 && f.rng.Float64() < fc.DropProb {
		fd.drop = true
	}
	if allowDup && fc.DupProb > 0 && f.rng.Float64() < fc.DupProb {
		fd.dup = true
	}
	if fc.DelayJitter > 0 {
		fd.jitter = simtime.Duration(f.rng.Int63n(int64(fc.DelayJitter)))
	}
	return fd
}

// SetFaults overrides the fault config applied to this domain's
// outbound traffic (frames it sends, reads it serves are unaffected —
// faults ride the sender's side of a link). nil restores the
// fabric-wide default. The override's Seed field is ignored: all draws
// come from the fabric's one seeded generator. This is the flapping-
// rail primitive — a script sets DropProb 1 for the flap window and
// restores nil afterwards.
func (d *SimDomain) SetFaults(fc *FaultConfig) {
	f := d.fab
	f.mu.Lock()
	defer f.mu.Unlock()
	if fc == nil {
		d.faults = nil
		return
	}
	cp := *fc
	d.faults = &cp
}

// SetFaults overrides the fault config for this endpoint's outbound
// direction only — one side of one link, leaving the rest of the
// domain's traffic on its usual config. nil restores the domain (and
// then fabric) default; the override's Seed field is ignored like the
// domain-level one. On sparse topologies this is the cut-one-cable
// primitive: a scenario flaps a single edge of a 512-node ring without
// touching the node's other links.
func (ep *SimEndpoint) SetFaults(fc *FaultConfig) {
	f := ep.fab
	f.mu.Lock()
	defer f.mu.Unlock()
	if fc == nil {
		ep.faults = nil
		return
	}
	cp := *fc
	ep.faults = &cp
}

// SetPartition assigns the domain to a partition group. Domains in
// different groups cannot reach each other: frames and RMA reads
// between them — including ones already in flight — are silently
// blackholed, exactly like a cut cable. Group 0 is the default; Heal
// returns every domain to it.
func (d *SimDomain) SetPartition(group int) {
	f := d.fab
	f.mu.Lock()
	defer f.mu.Unlock()
	d.part = group
}

// Heal removes every partition: all domains rejoin group 0.
func (f *SimFabric) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, d := range f.domains {
		d.part = 0
	}
}

// partitionedLocked reports whether two domains are currently separated.
func partitionedLocked(a, b *SimDomain) bool { return a.part != b.part }

// Advance moves the virtual clock forward by d, delivering every
// completion that falls due. Free-running harness drivers call it when
// the fabric has gone quiet but protocol state is waiting on a timeout:
// empty completion queues stop fast-forwarding the clock on their own
// (there is no next event to jump to), so deadlines would never expire
// without somebody asserting that time passes. Returns the new virtual
// time. Real-time fabrics (TimeScale > 0) ignore manual advancement —
// their clock is the wall.
func (f *SimFabric) Advance(d simtime.Duration) simtime.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.TimeScale > 0 {
		f.advanceLocked()
		return f.sim.Now()
	}
	f.sim.RunUntil(f.sim.Now() + d)
	return f.sim.Now()
}
