package cluster

import (
	"bytes"
	"encoding/json"
	"testing"
)

// suiteFilter returns the scenario filter for this test run: everything
// natively, everything but the Heavy hundreds-of-nodes scenarios under
// -short (the -race CI leg, where a 512-node run costs real minutes).
// The heavy scenarios stay covered under -race by
// TestRing512ReducedUnderRace.
func suiteFilter() (func(string) bool, int) {
	count := len(Scenarios())
	if !testing.Short() {
		return nil, count
	}
	heavy := make(map[string]bool)
	for _, s := range Scenarios() {
		if s.Heavy {
			heavy[s.Name] = true
			count--
		}
	}
	return func(name string) bool { return !heavy[name] }, count
}

// TestScenarioInvariants runs the suite once: every scenario must
// satisfy its invariant contract — including broken-control, whose
// contract is that the hang invariant trips, and broken-eager, whose
// contract is that traffic is lost.
func TestScenarioInvariants(t *testing.T) {
	filter, want := suiteFilter()
	results := Run(1, filter)
	if len(results) != want {
		t.Fatalf("ran %d scenarios, expected %d", len(results), want)
	}
	for _, r := range results {
		t.Logf("%-20s nodes=%d gates=%d xfers=%d ok=%d fail=%d cancel=%d hung=%d retries=%d p50=%dns p99=%dns",
			r.Scenario, r.Nodes, r.GateEndpoints, r.Transfers, r.Completed,
			r.FailedVisibly, r.Canceled, r.Hung, r.RdvRetries, r.LatencyP50Ns, r.LatencyP99Ns)
		if !r.Passed() {
			t.Errorf("%s violated invariants: %v", r.Scenario, r.Violations)
		}
	}
}

// TestDeterministicReplay is the seed contract: two full-suite runs
// with one seed must marshal byte-identically — every latency stamp,
// every fault counter, every outcome.
func TestDeterministicReplay(t *testing.T) {
	filter, _ := suiteFilter()
	marshal := func() []byte {
		b, err := json.MarshalIndent(Run(42, filter), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := marshal(), marshal()
	if !bytes.Equal(a, b) {
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				lo := i - 120
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("same-seed runs diverged at byte %d:\n…%s…\nvs\n…%s…", i, a[lo:i+1], b[lo:min(i+1, len(b))])
			}
		}
		t.Fatalf("same-seed runs diverged in length: %d vs %d", len(a), len(b))
	}
	c, err := json.MarshalIndent(Run(43, filter), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Error("seeds 42 and 43 produced identical trajectories; the seed is not plumbed")
	}
}

// TestPartitionAndHeal exercises the cut/heal scenario directly (this
// test runs under -race in CI): in-flight cross-partition transfers
// fail visibly, the healed gates carry a clean second wave, nothing
// leaks.
func TestPartitionAndHeal(t *testing.T) {
	r := runPartitionHeal(7)
	if !r.Passed() {
		t.Fatalf("partition-and-heal violated invariants: %v", r.Violations)
	}
	if r.FailedVisibly+r.Canceled == 0 {
		t.Error("the partition cut nothing")
	}
	if r.Hung != 0 || r.LeakedStates != 0 || r.LeakedRegs != 0 || r.LiveRegions != 0 {
		t.Errorf("leaks after heal: hung=%d states=%d regs=%d regions=%d",
			r.Hung, r.LeakedStates, r.LeakedRegs, r.LiveRegions)
	}
}

// TestBrokenControlTripsHangInvariant: the ablation without handshake
// timeouts must be caught — hung requests detected, scenario counted
// as passing only because hanging is its contract.
func TestBrokenControlTripsHangInvariant(t *testing.T) {
	r := runBrokenControl(1)
	if r.Hung == 0 {
		t.Fatal("broken control did not hang; the harness would miss real hangs")
	}
	if !r.Passed() {
		t.Errorf("expect-hang contract not honored: %v", r.Violations)
	}
}

// TestFilter checks Run's name filter.
func TestFilter(t *testing.T) {
	rs := Run(1, func(name string) bool { return name == "rpc-fanout" })
	if len(rs) != 1 || rs[0].Scenario != "rpc-fanout" {
		t.Fatalf("filter returned %v", rs)
	}
}

// TestSparseTopologyDeterministicReplay is the at-scale half of the
// seed contract: two same-seed runs of the 512-node scenarios must
// marshal byte-identically, and the ring must cost exactly its O(n)
// link budget — 512 fabric links and 1024 gate endpoints, not the
// ~131k links all-to-all wiring would burn.
func TestSparseTopologyDeterministicReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("512-node scenarios skipped in -short; TestRing512ReducedUnderRace covers the topology under -race")
	}
	heavy := func(name string) bool { return name == "ring-512" || name == "ring-gossip-lossy" }
	marshal := func() []byte {
		b, err := json.MarshalIndent(Run(42, heavy), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := marshal(), marshal()
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed 512-node runs diverged; sparse scenarios are not deterministic")
	}
	var rs []Result
	if err := json.Unmarshal(a, &rs); err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Nodes != 512 {
			t.Errorf("%s: ran %d nodes, want 512", r.Scenario, r.Nodes)
		}
		if r.Links != 512 {
			t.Errorf("%s: materialized %d fabric links, a 512-ring must cost exactly 512", r.Scenario, r.Links)
		}
		if r.GateEndpoints != 1024 {
			t.Errorf("%s: %d gate endpoints, a 512-ring must cost exactly 1024", r.Scenario, r.GateEndpoints)
		}
	}
}

// TestRing512ReducedUnderRace keeps the 512-endpoint wiring covered on
// the -race CI leg, where the full scenarios are skipped: all 512 nodes
// and engines come up, but only eight transfers flow — which also
// proves link materialization is lazy (8 links for 8 active edges, not
// 512 for the declared ring).
func TestRing512ReducedUnderRace(t *testing.T) {
	n := 512
	res := Result{Seed: 99}
	h := newHarness(Options{Topo: Ring(n)})
	for i := 0; i < n; i += 64 {
		h.transfer(i, (i+1)%n, 1, eagerSize)
	}
	h.drive(200 * rdvTimeout)
	out := finish(h, &res, expect{allComplete: true, maxLinks: n})
	if !out.Passed() {
		t.Fatalf("reduced ring-512 violated invariants: %v", out.Violations)
	}
	if out.Links != 8 {
		t.Errorf("8 active edges materialized %d links; materialization is not lazy", out.Links)
	}
}

// TestOffTopologyTransferPanics: the sparse-topology contract is
// enforced, not advisory — traffic between declared non-neighbors must
// panic instead of silently materializing a link behind the scenario's
// O(n) accounting.
func TestOffTopologyTransferPanics(t *testing.T) {
	h := newHarness(Options{Topo: Ring(8)})
	defer func() {
		if recover() == nil {
			t.Fatal("transfer between ring non-neighbors 0 and 4 did not panic")
		}
	}()
	h.transfer(0, 4, 1, eagerSize)
}
