package cluster

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestScenarioInvariants runs the full suite once: every scenario must
// satisfy its invariant contract — including broken-control, whose
// contract is that the hang invariant trips.
func TestScenarioInvariants(t *testing.T) {
	results := Run(1, nil)
	if len(results) != len(Scenarios()) {
		t.Fatalf("ran %d scenarios, suite has %d", len(results), len(Scenarios()))
	}
	for _, r := range results {
		t.Logf("%-20s nodes=%d gates=%d xfers=%d ok=%d fail=%d cancel=%d hung=%d retries=%d p50=%dns p99=%dns",
			r.Scenario, r.Nodes, r.GateEndpoints, r.Transfers, r.Completed,
			r.FailedVisibly, r.Canceled, r.Hung, r.RdvRetries, r.LatencyP50Ns, r.LatencyP99Ns)
		if !r.Passed() {
			t.Errorf("%s violated invariants: %v", r.Scenario, r.Violations)
		}
	}
}

// TestDeterministicReplay is the seed contract: two full-suite runs
// with one seed must marshal byte-identically — every latency stamp,
// every fault counter, every outcome.
func TestDeterministicReplay(t *testing.T) {
	marshal := func() []byte {
		b, err := json.MarshalIndent(Run(42, nil), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := marshal(), marshal()
	if !bytes.Equal(a, b) {
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				lo := i - 120
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("same-seed runs diverged at byte %d:\n…%s…\nvs\n…%s…", i, a[lo:i+1], b[lo:min(i+1, len(b))])
			}
		}
		t.Fatalf("same-seed runs diverged in length: %d vs %d", len(a), len(b))
	}
	c, err := json.MarshalIndent(Run(43, nil), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Error("seeds 42 and 43 produced identical trajectories; the seed is not plumbed")
	}
}

// TestPartitionAndHeal exercises the cut/heal scenario directly (this
// test runs under -race in CI): in-flight cross-partition transfers
// fail visibly, the healed gates carry a clean second wave, nothing
// leaks.
func TestPartitionAndHeal(t *testing.T) {
	r := runPartitionHeal(7)
	if !r.Passed() {
		t.Fatalf("partition-and-heal violated invariants: %v", r.Violations)
	}
	if r.FailedVisibly+r.Canceled == 0 {
		t.Error("the partition cut nothing")
	}
	if r.Hung != 0 || r.LeakedStates != 0 || r.LeakedRegs != 0 || r.LiveRegions != 0 {
		t.Errorf("leaks after heal: hung=%d states=%d regs=%d regions=%d",
			r.Hung, r.LeakedStates, r.LeakedRegs, r.LiveRegions)
	}
}

// TestBrokenControlTripsHangInvariant: the ablation without handshake
// timeouts must be caught — hung requests detected, scenario counted
// as passing only because hanging is its contract.
func TestBrokenControlTripsHangInvariant(t *testing.T) {
	r := runBrokenControl(1)
	if r.Hung == 0 {
		t.Fatal("broken control did not hang; the harness would miss real hangs")
	}
	if !r.Passed() {
		t.Errorf("expect-hang contract not honored: %v", r.Violations)
	}
}

// TestFilter checks Run's name filter.
func TestFilter(t *testing.T) {
	rs := Run(1, func(name string) bool { return name == "rpc-fanout" })
	if len(rs) != 1 || rs[0].Scenario != "rpc-fanout" {
		t.Fatalf("filter returned %v", rs)
	}
}
