package cluster

import (
	"reflect"
	"testing"
)

// TestRing checks the cycle's shape: n edges, each node degree 2,
// neighbors exactly (i±1) mod n.
func TestRing(t *testing.T) {
	n := 7
	r := Ring(n)
	if r.Nodes() != n || r.Edges() != n {
		t.Fatalf("ring-%d: %d nodes, %d edges", n, r.Nodes(), r.Edges())
	}
	for i := 0; i < n; i++ {
		if len(r.Neighbors(i)) != 2 {
			t.Errorf("node %d has degree %d, want 2", i, len(r.Neighbors(i)))
		}
		if !r.HasEdge(i, (i+1)%n) || !r.HasEdge(i, (i+n-1)%n) {
			t.Errorf("node %d missing a ring neighbor", i)
		}
		if r.HasEdge(i, (i+2)%n) {
			t.Errorf("node %d has a chord to %d", i, (i+2)%n)
		}
	}
}

// TestKaryTree checks heap-order parentage: n-1 edges, every non-root
// node linked to (c-1)/k and nothing else off-path.
func TestKaryTree(t *testing.T) {
	tr := KaryTree(13, 3)
	if tr.Nodes() != 13 || tr.Edges() != 12 {
		t.Fatalf("tree: %d nodes, %d edges", tr.Nodes(), tr.Edges())
	}
	for c := 1; c < 13; c++ {
		if !tr.HasEdge(c, (c-1)/3) {
			t.Errorf("node %d not linked to its parent %d", c, (c-1)/3)
		}
	}
	if got := tr.Neighbors(0); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("root children = %v, want [1 2 3]", got)
	}
	if tr.HasEdge(1, 2) {
		t.Error("siblings 1 and 2 are linked")
	}
}

// TestTorus2D checks the wrap grid: rows·cols nodes, 2·rows·cols edges,
// degree 4 everywhere including the wrap rows/columns.
func TestTorus2D(t *testing.T) {
	to := Torus2D(3, 4)
	if to.Nodes() != 12 || to.Edges() != 24 {
		t.Fatalf("torus: %d nodes, %d edges", to.Nodes(), to.Edges())
	}
	for i := 0; i < 12; i++ {
		if len(to.Neighbors(i)) != 4 {
			t.Errorf("node %d has degree %d, want 4", i, len(to.Neighbors(i)))
		}
	}
	// Corner 0 = (0,0): right (0,1)=1, left wrap (0,3)=3, down (1,0)=4,
	// up wrap (2,0)=8.
	for _, nb := range []int{1, 3, 4, 8} {
		if !to.HasEdge(0, nb) {
			t.Errorf("corner missing neighbor %d", nb)
		}
	}
}

// TestRandomRegular checks the pairing model's contract: exact degree
// everywhere, simple graph, deterministic per seed, different across
// seeds.
func TestRandomRegular(t *testing.T) {
	g := RandomRegular(24, 4, 7)
	if g.Nodes() != 24 || g.Edges() != 48 {
		t.Fatalf("regular: %d nodes, %d edges", g.Nodes(), g.Edges())
	}
	for i := 0; i < 24; i++ {
		nbs := g.Neighbors(i)
		if len(nbs) != 4 {
			t.Errorf("node %d has degree %d, want 4", i, len(nbs))
		}
		for j := 1; j < len(nbs); j++ {
			if nbs[j] == nbs[j-1] {
				t.Errorf("node %d has duplicate neighbor %d", i, nbs[j])
			}
		}
		if g.HasEdge(i, i) {
			t.Errorf("node %d has a self loop", i)
		}
	}
	same := RandomRegular(24, 4, 7)
	if !reflect.DeepEqual(g.nbrs, same.nbrs) {
		t.Error("same-seed random regular graphs differ")
	}
	other := RandomRegular(24, 4, 8)
	if reflect.DeepEqual(g.nbrs, other.nbrs) {
		t.Error("different seeds produced the same graph; the seed is not plumbed")
	}
}

// TestEachEdgeCanonicalOrder: EachEdge must emit (a<b) pairs sorted by
// (a, b) — the order scenario traffic posting relies on for replay.
func TestEachEdgeCanonicalOrder(t *testing.T) {
	g := RandomRegular(16, 3, 3)
	var prev [2]int
	count := 0
	g.EachEdge(func(a, b int) {
		if a >= b {
			t.Fatalf("EachEdge emitted non-canonical pair (%d,%d)", a, b)
		}
		if count > 0 && (a < prev[0] || (a == prev[0] && b <= prev[1])) {
			t.Fatalf("EachEdge out of order: (%d,%d) after (%d,%d)", a, b, prev[0], prev[1])
		}
		prev = [2]int{a, b}
		count++
	})
	if count != g.Edges() {
		t.Fatalf("EachEdge visited %d edges, graph has %d", count, g.Edges())
	}
}

// TestTopologyConstructorPanics: invalid parameters must fail loudly at
// construction, not corrupt a scenario later.
func TestTopologyConstructorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"ring too small", func() { Ring(2) }},
		{"tree k too small", func() { KaryTree(5, 1) }},
		{"torus dim too small", func() { Torus2D(2, 5) }},
		{"regular odd stubs", func() { RandomRegular(5, 3, 1) }},
		{"regular d too large", func() { RandomRegular(4, 4, 1) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.fn()
		})
	}
}
