package cluster

import "testing"

// TestOverloadScenarios runs the admission-control quartet on its own
// and spot-checks the counters the generic invariant plumbing only
// gates loosely: exact reject/shed/block counts, the admission-vs-
// ablation peak-inflight contrast, and zero leaked credits.
func TestOverloadScenarios(t *testing.T) {
	names := []string{"incast-overload", "slow-receiver", "burst-then-drain", "overload-ablation"}
	byName := map[string]Result{}
	for _, r := range Run(1, func(n string) bool {
		for _, w := range names {
			if n == w {
				return true
			}
		}
		return false
	}) {
		t.Logf("%-18s xfers=%d ok=%d admitted=%d rejected=%d shed=%d blocked=%d expired=%d deadline=%d peak=%d p99=%dns",
			r.Scenario, r.Transfers, r.Completed, r.AdmitAdmitted, r.AdmitRejected,
			r.AdmitShed, r.AdmitBlocked, r.AdmitExpired, r.DeadlineExpired,
			r.PeakInflight, r.LatencyP99Ns)
		if !r.Passed() {
			t.Errorf("%s violated invariants: %v", r.Scenario, r.Violations)
		}
		byName[r.Scenario] = r
	}
	if len(byName) != len(names) {
		t.Fatalf("ran %d overload scenarios, expected %d", len(byName), len(names))
	}

	in, ab := byName["incast-overload"], byName["overload-ablation"]
	if in.AdmitRejected != 128 || in.AdmitRejectErrors != 128 {
		t.Errorf("incast-overload: rejected=%d errors=%d, want 128/128",
			in.AdmitRejected, in.AdmitRejectErrors)
	}
	if in.LeakedCredits != 0 {
		t.Errorf("incast-overload leaked %d admission credits", in.LeakedCredits)
	}
	// The load-bearing contrast: the same traffic deck must pile at
	// least twice as deep into the sink without admission as with it.
	if ab.PeakInflight < 2*in.PeakInflight {
		t.Errorf("ablation peak %d is not ≥ 2× the admitted peak %d",
			ab.PeakInflight, in.PeakInflight)
	}

	sr := byName["slow-receiver"]
	if sr.DeadlineExpired == 0 {
		t.Errorf("slow-receiver: the doomed deadline send never expired")
	}
	if sr.AdmitBlocked != 25 {
		t.Errorf("slow-receiver: blocked=%d, want 25", sr.AdmitBlocked)
	}

	bd := byName["burst-then-drain"]
	if bd.AdmitShed != 16 || bd.AdmitShed != bd.AdmitRejected {
		t.Errorf("burst-then-drain: shed=%d rejected=%d, want 16 with shed == rejected",
			bd.AdmitShed, bd.AdmitRejected)
	}
}
