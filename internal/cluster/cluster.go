// Package cluster is the deterministic cluster chaos harness: it runs
// tens to hundreds of nmad engines — one per simulated node — over a
// single seeded fabric.SimFabric and virtual clock, drives scripted
// traffic mixes (RPC fan-out, all-to-all shuffle, incast, stragglers,
// ring gossip, tree fan-out, halo exchange) through seeded fault
// injection (frame drop/duplication/jitter, flapping NICs and links,
// partitions), and checks hard invariants after every scenario
// quiesces: no hung requests, no leaked protocol state or pinned
// registrations, byte-exact delivery, and bounded virtual-time latency
// percentiles.
//
// Scale comes from sparsity: a scenario declares a Topo (ring, k-ary
// tree, 2D torus, random d-regular) and the harness materializes links
// lazily along its edges only — a 512-node ring costs 512 links, not
// the 130k of all-to-all — while refusing off-graph traffic, so the
// O(edges) bound is enforced rather than hoped for.
//
// Everything is deterministic by construction: the fabric's fault RNG
// is seeded, all engines share one virtual clock and one task engine
// driven from a single goroutine, and every retransmission path in
// nmad orders its wire actions. The same seed therefore produces the
// same BENCH trajectory byte for byte — which is what makes a chaos
// run a regression test instead of a dice roll.
package cluster

import (
	"bytes"
	"fmt"
	"sort"

	"pioman/internal/admit"
	"pioman/internal/core"
	"pioman/internal/fabric"
	"pioman/internal/nmad"
	"pioman/internal/simtime"
	"pioman/internal/stats"
	"pioman/internal/topology"
	"pioman/internal/trace"
)

// Virtual-time constants every scenario shares: the rendezvous
// handshake timeout and the clock step the driver uses to expire it
// when the wire goes quiet.
const (
	rdvTimeout = 2 * simtime.Millisecond
	driveTick  = rdvTimeout / 4
)

// defaultCaps is the per-node NIC envelope: a microsecond-scale
// RDMA-capable rail, eager up to 8 KiB.
func defaultCaps() fabric.Capabilities {
	return fabric.Capabilities{
		Latency:   2 * simtime.Microsecond,
		Bandwidth: 4e9,
		MaxInject: 8 << 10,
		RMA:       true,
	}
}

// Options parameterizes a harness build.
type Options struct {
	// Nodes is the cluster size (≥ 2). Ignored when Topo is set — the
	// topology's node count wins.
	Nodes int
	// Topo declares the cluster's sparse connectivity. When set, the
	// harness enforces it: a transfer between non-neighbors panics
	// instead of silently materializing a link, so a scenario's link
	// count provably stays O(edges). Nil keeps the original free-form
	// wiring (dense scenarios).
	Topo *Topo
	// Faults is the fabric-wide seeded fault configuration.
	Faults fabric.FaultConfig
	// SharedIngress serializes each node's inbound frames through one
	// ingress port — the incast model.
	SharedIngress bool
	// NoRdvTimeout disables the rendezvous handshake timeout on every
	// engine: the broken-control ablation.
	NoRdvTimeout bool
	// NoEagerRetry disables the eager retransmission window on every
	// engine: the fire-and-forget ablation, under which lossy
	// scenarios must lose eager traffic.
	NoEagerRetry bool
	// RdvRetries overrides the per-engine retry budget (0 → 4). Lossy
	// high-drop scenarios raise it so independent per-hop loss cannot
	// exhaust a transfer's budget by bad luck alone.
	RdvRetries int
	// Caps overrides the per-node NIC envelope (zero value → default).
	Caps fabric.Capabilities
	// Trace attaches a flight recorder to the shared task engine and
	// every node's nmad engine, re-clocked onto the fabric's virtual
	// time, so a scenario can be replayed as a chrome://tracing
	// timeline. Observation only: attaching it must not perturb a
	// seeded run. Nil falls back to the recorder RunTraced installs.
	Trace *trace.Recorder
	// Admit enables engine-level admission control on every node: each
	// engine gets its own credit plane built from this config (gate
	// budgets left zero derive from the live rail BDP). Nil keeps
	// admission off — the ablation, and the default every pre-existing
	// scenario runs under so seeded trajectories stay byte-identical.
	Admit *admit.Config
	// AdmitPolicy selects what an over-budget submission sees: block
	// (the zero value), fail-fast reject, or degraded-mode shedding.
	AdmitPolicy nmad.AdmitPolicy
	// AdmitWait bounds how long the blocking policy parks a submission,
	// in virtual nanoseconds (0 → the engines' rendezvous timeout).
	AdmitWait int64
	// TrackInflight samples every node's live protocol-state count on
	// each driver step and records the cluster-wide per-node peak — the
	// "queue depth" the overload scenarios assert is bounded with
	// admission on and unbounded in the ablation.
	TrackInflight bool
}

// node is one simulated cluster member: an nmad engine with one NIC
// domain; links to peers materialize on demand.
type node struct {
	id     int
	dom    *fabric.SimDomain
	eng    *nmad.Engine
	gateTo map[int]*nmad.Gate
	epTo   map[int]*fabric.SimEndpoint
}

// xfer is one tracked transfer with its deterministic payload.
type xfer struct {
	src, dst int
	tag      uint64
	payload  []byte
	sreq     *nmad.Request
	rreq     *nmad.Request
	postedAt simtime.Time
	settled  bool
	doneAt   simtime.Time
}

// harness owns one scenario's cluster: fabric, nodes, traffic ledger.
type harness struct {
	fab    *fabric.SimFabric
	tasks  *core.Engine
	ncpu   int
	topo   *Topo
	nodes  []*node
	ngates int
	xfers  []*xfer
	hist   stats.Histogram // completed-transfer latency, virtual ns
	closed bool

	// trackInflight/peakInflight implement Options.TrackInflight: the
	// highest InflightStates any single node reached during drive.
	trackInflight bool
	peakInflight  int

	// rec and mark slice the (suite-shared) flight recorder to this
	// scenario: mark is taken at harness build, so EventsSince(mark)
	// yields exactly this scenario's span stream for phase attribution.
	rec  *trace.Recorder
	mark trace.Mark
}

// newHarness builds the cluster: one fabric, one shared task engine
// (stealing off — the driver is single-threaded and scheduling order
// must replay), one engine per node on the fabric's clock.
func newHarness(opt Options) *harness {
	caps := opt.Caps
	if caps == (fabric.Capabilities{}) {
		caps = defaultCaps()
	}
	if opt.Topo != nil {
		opt.Nodes = opt.Topo.Nodes()
	}
	if opt.RdvRetries <= 0 {
		opt.RdvRetries = 4
	}
	topo, err := topology.Build(topology.Spec{
		Name:            "cluster-driver",
		NUMANodes:       1,
		PackagesPerNUMA: 1,
		CoresPerPackage: 2,
	})
	if err != nil {
		panic(err)
	}
	h := &harness{
		fab: fabric.NewSimFabric(fabric.SimConfig{
			Faults:        opt.Faults,
			SharedIngress: opt.SharedIngress,
		}),
		ncpu:          topo.NCPUs,
		topo:          opt.Topo,
		trackInflight: opt.TrackInflight,
	}
	clock := func() int64 { return int64(h.fab.Now()) }
	rec := opt.Trace
	if rec == nil {
		rec = activeTrace
	}
	if rec != nil {
		rec.SetClock(clock)
	}
	h.rec = rec
	h.mark = rec.Mark()
	h.tasks = core.New(core.Config{
		Topology:     topo,
		LatencyStats: true,
		Trace:        rec,
	})
	for i := 0; i < opt.Nodes; i++ {
		h.nodes = append(h.nodes, &node{
			id:  i,
			dom: h.fab.OpenDomain(caps),
			eng: nmad.NewEngine(nmad.Config{
				Tasks:          h.tasks,
				NoAutoProgress: true,
				Clock:          clock,
				RdvTimeout:     int64(rdvTimeout),
				RdvRetries:     opt.RdvRetries,
				NoRdvTimeout:   opt.NoRdvTimeout,
				NoEagerRetry:   opt.NoEagerRetry,
				Trace:          rec,
				Admit:          opt.Admit,
				AdmitPolicy:    opt.AdmitPolicy,
				AdmitWait:      opt.AdmitWait,
			}),
			gateTo: make(map[int]*nmad.Gate),
			epTo:   make(map[int]*fabric.SimEndpoint),
		})
	}
	return h
}

// link ensures a connection between two nodes exists and returns src's
// gate toward dst. Under a declared topology, only edges of the graph
// may materialize — a scenario reaching off-graph is a bug, and
// panicking here is what keeps a sparse run's link count O(edges).
func (h *harness) link(src, dst int) *nmad.Gate {
	a, b := h.nodes[src], h.nodes[dst]
	if g := a.gateTo[dst]; g != nil {
		return g
	}
	if h.topo != nil && !h.topo.HasEdge(src, dst) {
		panic(fmt.Sprintf("cluster: %d→%d is not an edge of topology %s", src, dst, h.topo.Name()))
	}
	ea, eb := fabric.Connect(a.dom, b.dom)
	ga, err := a.eng.NewGateEndpoints(ea)
	if err != nil {
		panic(fmt.Sprintf("cluster: gate %d→%d: %v", src, dst, err))
	}
	gb, err := b.eng.NewGateEndpoints(eb)
	if err != nil {
		panic(fmt.Sprintf("cluster: gate %d→%d: %v", dst, src, err))
	}
	// Span ids carry cluster node indices, so the sender- and
	// receiver-side spans of one message correlate across engines.
	ga.SetTraceInfo(src, dst)
	gb.SetTraceInfo(dst, src)
	a.gateTo[dst] = ga
	b.gateTo[src] = gb
	a.epTo[dst] = ea
	b.epTo[src] = eb
	h.ngates += 2
	return ga
}

// linkFaults overrides the fault config of src's outbound direction
// toward dst only — one side of one edge — materializing the link
// first if needed. nil restores the default. This is how a sparse
// scenario flaps a single cable without touching the node's other
// links.
func (h *harness) linkFaults(src, dst int, fc *fabric.FaultConfig) {
	h.link(src, dst)
	h.nodes[src].epTo[dst].SetFaults(fc)
}

// pattern fills one transfer's payload deterministically from its
// (src, dst, tag) identity, so the receiver can verify byte-exact
// delivery without any side channel.
func pattern(src, dst int, tag uint64, size int) []byte {
	p := make([]byte, size)
	seed := byte(src*7 + dst*13 + int(tag)*31)
	for i := range p {
		p[i] = seed + byte(i*131+i>>9)
	}
	return p
}

// transfer posts one tracked src→dst message: the receive first, then
// the send, both on the same link.
func (h *harness) transfer(src, dst int, tag uint64, size int) *xfer {
	gs := h.link(src, dst)
	gr := h.nodes[dst].gateTo[src]
	x := &xfer{
		src: src, dst: dst, tag: tag,
		payload:  pattern(src, dst, tag, size),
		postedAt: h.fab.Now(),
	}
	x.rreq = gr.Irecv(tag)
	x.sreq = gs.Isend(tag, x.payload)
	h.xfers = append(h.xfers, x)
	return x
}

// transferDeadline is transfer with an absolute send deadline on the
// virtual clock: the send is abandoned wherever the deadline catches it
// — parked in the admission queue, awaiting its handshake, or at the
// receiver before the RMA read is posted.
func (h *harness) transferDeadline(src, dst int, tag uint64, size int, deadline simtime.Time) *xfer {
	gs := h.link(src, dst)
	gr := h.nodes[dst].gateTo[src]
	x := &xfer{
		src: src, dst: dst, tag: tag,
		payload:  pattern(src, dst, tag, size),
		postedAt: h.fab.Now(),
	}
	x.rreq = gr.Irecv(tag)
	x.sreq = gs.IsendDeadline(tag, x.payload, int64(deadline))
	h.xfers = append(h.xfers, x)
	return x
}

// step runs a few scheduling passes over every driver CPU, collecting
// settled transfers between passes so completion stamps track the
// virtual clock as finely as the drive loop can see it.
func (h *harness) step() int {
	n := 0
	for pass := 0; pass < 4; pass++ {
		for cpu := 0; cpu < h.ncpu; cpu++ {
			h.tasks.Schedule(cpu)
		}
		n += h.collect()
	}
	return n
}

// collect records transfers that settled since the last pass and
// returns how many did.
func (h *harness) collect() int {
	n := 0
	for _, x := range h.xfers {
		if x.settled || !x.sreq.Test() || !x.rreq.Test() {
			continue
		}
		x.settled = true
		x.doneAt = h.fab.Now()
		n++
		if x.sreq.Err() == nil && x.rreq.Err() == nil {
			h.hist.Record(int64(x.doneAt - x.postedAt))
		}
	}
	return n
}

// settledAll reports whether every posted transfer has resolved.
func (h *harness) settledAll() bool {
	for _, x := range h.xfers {
		if !x.settled {
			return false
		}
	}
	return true
}

// drive progresses the cluster until every transfer resolves or the
// virtual-time budget runs out. The clock only jumps when a full
// scheduling pass moved nothing — while traffic flows, time advances
// through the fabric's own event horizon.
func (h *harness) drive(budget simtime.Duration) {
	limit := h.fab.Now() + simtime.Time(budget)
	for !h.settledAll() && h.fab.Now() <= limit {
		h.sampleInflight()
		before := h.fab.Now()
		if h.step() == 0 && h.fab.Now() == before {
			h.fab.Advance(driveTick)
		}
	}
	h.sampleInflight()
}

// sampleInflight records the highest per-node protocol-state count seen
// so far (Options.TrackInflight). The overload scenarios gate on the
// peak: admission keeps it at the credit budget, the ablation lets the
// sink's state table grow with everything the senders could post.
func (h *harness) sampleInflight() {
	if !h.trackInflight {
		return
	}
	for _, n := range h.nodes {
		if v := n.eng.InflightStates(); v > h.peakInflight {
			h.peakInflight = v
		}
	}
}

// cancelUnmatched withdraws receives whose sender gave up (or never
// reached them); matched receives are left to resolve on their own.
func (h *harness) cancelUnmatched() {
	for _, x := range h.xfers {
		if !x.rreq.Test() {
			x.rreq.Cancel()
		}
	}
}

// close shuts every engine down. Safe to call once.
func (h *harness) close() {
	if h.closed {
		return
	}
	h.closed = true
	for _, n := range h.nodes {
		n.eng.Close()
	}
}

// audit fills the outcome and leak sections of a Result from the
// settled cluster. Must run before close (gate state is live) — the
// caller adds the post-close live-region count afterwards.
func (h *harness) audit(res *Result) {
	for _, x := range h.xfers {
		res.Transfers++
		switch {
		case !x.sreq.Test() || !x.rreq.Test():
			res.Hung++
		case x.sreq.Err() == nil && x.rreq.Err() == nil:
			if bytes.Equal(x.rreq.Data, x.payload) {
				res.Completed++
				res.BytesDelivered += int64(len(x.payload))
			} else {
				res.Corrupt++
			}
		case x.rreq.Err() == nmad.ErrCanceled:
			res.Canceled++
		default:
			res.FailedVisibly++
		}
		// Count admission-reject errors per request, not per transfer:
		// the invariant is that every rejection the engines counted
		// surfaced as exactly one visible error (never a silent drop,
		// never a hang).
		if x.sreq.Err() == nmad.ErrAdmissionReject {
			res.AdmitRejectErrors++
		}
		if x.rreq.Err() == nmad.ErrAdmissionReject {
			res.AdmitRejectErrors++
		}
	}
	for _, n := range h.nodes {
		peers := make([]int, 0, len(n.gateTo))
		for p := range n.gateTo {
			peers = append(peers, p)
		}
		sort.Ints(peers)
		for _, p := range peers {
			rep := n.gateTo[p].CheckIdle()
			res.LeakedStates += rep.SendRendezvous + rep.RecvRendezvous +
				rep.PostedRecvs + rep.UnexpectedMsgs + rep.PendingAggr +
				rep.EagerPending
			res.LeakedRegs += rep.RegInFlight
			// The zero-leaked-credits invariant: a quiesced gate holds no
			// request credits, no byte credits, and no parked submissions.
			// Any nonzero term is a leak, so one summed indicator suffices.
			res.LeakedCredits += int64(rep.AdmitRequests) + rep.AdmitBytes +
				int64(rep.AdmitWaiting)
		}
		st := n.eng.Stats()
		res.RdvRetries += st.RdvRetries
		res.RdvTimeouts += st.RdvTimeouts
		res.EagerRetries += st.EagerRetries
		res.EagerTimeouts += st.EagerTimeouts
		res.AdmitAdmitted += st.AdmitAdmitted
		res.AdmitRejected += st.AdmitRejected
		res.AdmitShed += st.AdmitShed
		res.AdmitBlocked += st.AdmitBlocked
		res.AdmitExpired += st.AdmitExpired
		res.DeadlineExpired += st.DeadlineExpired
	}
	fst := h.fab.Stats()
	res.DroppedFrames = fst.DroppedFrames
	res.DupFrames = fst.DuplicatedFrames
	res.DroppedReads = fst.DroppedReads
	res.Links = fst.Links
	res.GateEndpoints = h.ngates
	res.Nodes = len(h.nodes)
	res.LatencyP50Ns = h.hist.Quantile(0.5)
	res.LatencyP99Ns = h.hist.Quantile(0.99)
	res.LatencyMaxNs = h.hist.Max()
	res.VirtualNs = int64(h.fab.Now())
	res.PeakInflight = h.peakInflight
}
