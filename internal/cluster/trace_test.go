package cluster

import (
	"bytes"
	"encoding/json"
	"testing"

	"pioman/internal/trace"
)

// TestChaosTraceReplaysAsChromeJSON runs the chaos-soup scenario with a
// flight recorder attached and checks the acceptance contract: the
// drained trace is valid chrome://tracing JSON carrying scheduling and
// protocol events on the fabric's virtual clock, attaching the
// recorder does not perturb the seeded run, and two traced runs of one
// seed drain identical event streams.
func TestChaosTraceReplaysAsChromeJSON(t *testing.T) {
	only := func(name string) bool { return name == "chaos-soup" }

	baseline := Run(1, only)
	rec := trace.New(8, 1<<14, nil)
	traced := RunTraced(1, only, rec)
	if len(baseline) != 1 || len(traced) != 1 {
		t.Fatalf("expected exactly one scenario, got %d/%d", len(baseline), len(traced))
	}
	if !traced[0].Passed() {
		t.Fatalf("traced chaos-soup violated its contract: %v", traced[0].Violations)
	}
	// Observation-only: the recorder must not change the modelled run.
	b, tr := baseline[0], traced[0]
	if b.Completed != tr.Completed || b.RdvRetries != tr.RdvRetries ||
		b.LatencyP50Ns != tr.LatencyP50Ns || b.LatencyP99Ns != tr.LatencyP99Ns {
		t.Fatalf("recorder perturbed the seeded run:\nplain:  %+v\ntraced: %+v", b, tr)
	}

	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("traced chaos run drained no events")
	}
	kinds := map[trace.Kind]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
		if ev.TS < 0 {
			t.Fatalf("event %+v has a negative virtual-clock stamp", ev)
		}
	}
	// chaos-soup is all-to-all rendezvous under 10% drop: dispatches,
	// handshakes, and retransmissions must all be visible.
	for _, want := range []trace.Kind{trace.EvTaskRun, trace.EvRdvRTS, trace.EvRetransmit} {
		if kinds[want] == 0 {
			t.Errorf("trace has no %v events (kinds seen: %v)", want, kinds)
		}
	}

	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid chrome://tracing JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(events) {
		t.Fatalf("JSON has %d events, drain had %d", len(doc.TraceEvents), len(events))
	}
	for _, ce := range doc.TraceEvents[:3] {
		if ce.Name == "" || ce.Phase != "i" {
			t.Fatalf("malformed chrome event %+v", ce)
		}
	}

	// Determinism: a second traced run of the same seed produces the
	// identical event stream (same virtual-clock stamps, same order).
	rec2 := trace.New(8, 1<<14, nil)
	RunTraced(1, only, rec2)
	events2 := rec2.Events()
	if len(events) != len(events2) {
		t.Fatalf("re-run drained %d events, first run %d", len(events2), len(events))
	}
	for i := range events {
		if events[i] != events2[i] {
			t.Fatalf("event %d differs across same-seed runs:\n%+v\n%+v", i, events[i], events2[i])
		}
	}
}
