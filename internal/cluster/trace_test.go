package cluster

import (
	"bytes"
	"encoding/json"
	"testing"

	"pioman/internal/trace"
	"pioman/internal/trace/analyze"
)

// TestChaosTraceReplaysAsChromeJSON runs the chaos-soup scenario with a
// flight recorder attached and checks the acceptance contract: the
// drained trace is valid chrome://tracing JSON carrying scheduling and
// protocol events on the fabric's virtual clock, attaching the
// recorder does not perturb the seeded run, and two traced runs of one
// seed drain identical event streams.
func TestChaosTraceReplaysAsChromeJSON(t *testing.T) {
	only := func(name string) bool { return name == "chaos-soup" }

	baseline := Run(1, only)
	rec := trace.New(8, 1<<14, nil)
	traced := RunTraced(1, only, rec)
	if len(baseline) != 1 || len(traced) != 1 {
		t.Fatalf("expected exactly one scenario, got %d/%d", len(baseline), len(traced))
	}
	if !traced[0].Passed() {
		t.Fatalf("traced chaos-soup violated its contract: %v", traced[0].Violations)
	}
	// Observation-only: the recorder must not change the modelled run.
	b, tr := baseline[0], traced[0]
	if b.Completed != tr.Completed || b.RdvRetries != tr.RdvRetries ||
		b.LatencyP50Ns != tr.LatencyP50Ns || b.LatencyP99Ns != tr.LatencyP99Ns {
		t.Fatalf("recorder perturbed the seeded run:\nplain:  %+v\ntraced: %+v", b, tr)
	}

	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("traced chaos run drained no events")
	}
	kinds := map[trace.Kind]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
		if ev.TS < 0 {
			t.Fatalf("event %+v has a negative virtual-clock stamp", ev)
		}
	}
	// chaos-soup is all-to-all rendezvous under 10% drop: dispatches,
	// handshakes, retransmissions, and lifecycle spans must all be
	// visible.
	for _, want := range []trace.Kind{
		trace.EvTaskRun, trace.EvRdvRTS, trace.EvRetransmit,
		trace.EvSendBegin, trace.EvSendEnd, trace.EvRecvBegin,
		trace.EvMatchEnd, trace.EvHandshakeBegin,
	} {
		if kinds[want] == 0 {
			t.Errorf("trace has no %v events (kinds seen: %v)", want, kinds)
		}
	}

	// The span trees must reconstruct: every message of the scenario
	// appears, completed transfers carry fully paired (orphan-free)
	// trees even under 10% loss, and the lossy run demonstrably flags
	// retransmit-stalled messages.
	rep := analyze.Analyze(events)
	if len(rep.Messages) != tr.Transfers {
		t.Errorf("analyzer reconstructed %d messages, scenario ran %d transfers", len(rep.Messages), tr.Transfers)
	}
	if rep.Completed == 0 {
		t.Error("analyzer saw no completed message")
	}
	if rep.OrphanSpans != 0 {
		t.Errorf("%d orphan phase spans on completed messages", rep.OrphanSpans)
	}
	if rep.Anomalies[analyze.RetransmitStalled] == 0 {
		t.Error("10%% drop produced no retransmit-stalled message")
	}
	if tr.TraceMessages != len(rep.Messages) {
		t.Errorf("Result.TraceMessages = %d, analyzer saw %d", tr.TraceMessages, len(rep.Messages))
	}
	if len(tr.Phases) == 0 {
		t.Error("traced Result carries no phase breakdown")
	}

	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid chrome://tracing JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(events) {
		t.Fatalf("JSON has %d events, drain had %d", len(doc.TraceEvents), len(events))
	}
	phases := map[string]int{}
	for _, ce := range doc.TraceEvents {
		if ce.Name == "" {
			t.Fatalf("malformed chrome event %+v", ce)
		}
		phases[ce.Phase]++
	}
	for _, ph := range []string{"i", "b", "e"} {
		if phases[ph] == 0 {
			t.Errorf("chrome JSON has no %q events (phases seen: %v)", ph, phases)
		}
	}
	for ph := range phases {
		if ph != "i" && ph != "b" && ph != "e" {
			t.Errorf("chrome JSON has unexpected phase %q", ph)
		}
	}

	// Determinism: a second traced run of the same seed produces the
	// identical event stream (same virtual-clock stamps, same order)
	// and a byte-identical chrome document.
	rec2 := trace.New(8, 1<<14, nil)
	RunTraced(1, only, rec2)
	events2 := rec2.Events()
	if len(events) != len(events2) {
		t.Fatalf("re-run drained %d events, first run %d", len(events2), len(events))
	}
	for i := range events {
		if events[i] != events2[i] {
			t.Fatalf("event %d differs across same-seed runs:\n%+v\n%+v", i, events[i], events2[i])
		}
	}
	var buf2 bytes.Buffer
	if err := rec2.WriteTrace(&buf2); err != nil {
		t.Fatalf("WriteTrace (re-run): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("chrome JSON differs across same-seed runs")
	}
}

// TestPhaseCoverageLossless is the Σ-phase tie-out: on a lossless
// scenario every message completes with a fully paired span tree, and
// each side's phase spans partition its whole-message span — their
// durations sum to within [95%, 100%] of the submit→completion span on
// the virtual clock. Under-coverage means a protocol transition lost
// its span hook; over-coverage means phases overlap (double counting).
func TestPhaseCoverageLossless(t *testing.T) {
	only := func(name string) bool { return name == "shuffle" }
	rec := trace.New(8, 1<<16, nil)
	results := RunTraced(1, only, rec)
	if len(results) != 1 || !results[0].Passed() {
		t.Fatalf("traced shuffle did not pass: %+v", results)
	}
	rep := analyze.Analyze(rec.Events())
	if len(rep.Messages) != results[0].Transfers {
		t.Fatalf("analyzer saw %d messages, scenario ran %d transfers", len(rep.Messages), results[0].Transfers)
	}
	for _, m := range rep.Messages {
		if !m.Completed() {
			t.Fatalf("message %s did not complete in a lossless run", m.Label())
		}
		if n := m.Orphans(); n != 0 {
			t.Errorf("message %s has %d orphan spans", m.Label(), n)
		}
		for _, dir := range []uint64{trace.DirSend, trace.DirRecv} {
			phaseSum, span, ok := m.SideCoverage(dir)
			if !ok {
				t.Errorf("message %s has no complete whole-message span for dir %d", m.Label(), dir)
				continue
			}
			if span <= 0 {
				t.Errorf("message %s dir %d: whole-message span duration %d", m.Label(), dir, span)
				continue
			}
			if phaseSum > span {
				t.Errorf("message %s dir %d: phases sum to %d ns > %d ns span (overlap)", m.Label(), dir, phaseSum, span)
			}
			if phaseSum*100 < span*95 {
				t.Errorf("message %s dir %d: phases cover %d of %d ns (< 95%%)", m.Label(), dir, phaseSum, span)
			}
		}
	}
}
