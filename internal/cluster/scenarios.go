package cluster

import (
	"fmt"

	"pioman/internal/admit"
	"pioman/internal/fabric"
	"pioman/internal/nmad"
	"pioman/internal/simtime"
	"pioman/internal/trace"
	"pioman/internal/trace/analyze"
)

// Result is one scenario's BENCH record. Every field is an integer
// derived from the virtual clock, seeded RNG draws, or deterministic
// counters, so two runs with the same seed marshal byte-identically.
type Result struct {
	Scenario      string `json:"scenario"`
	Description   string `json:"description"`
	Seed          int64  `json:"seed"`
	Nodes         int    `json:"nodes"`
	GateEndpoints int    `json:"gate_endpoints"`
	Links         int    `json:"links"`

	Transfers      int   `json:"transfers"`
	Completed      int   `json:"completed"`
	FailedVisibly  int   `json:"failed_visibly"`
	Canceled       int   `json:"canceled"`
	Hung           int   `json:"hung"`
	Corrupt        int   `json:"corrupt"`
	BytesDelivered int64 `json:"bytes_delivered"`

	LeakedStates int `json:"leaked_states"`
	LeakedRegs   int `json:"leaked_regs"`
	LiveRegions  int `json:"live_regions_after_close"`

	DroppedFrames uint64 `json:"dropped_frames"`
	DupFrames     uint64 `json:"duplicated_frames"`
	DroppedReads  uint64 `json:"dropped_reads"`
	RdvRetries    uint64 `json:"rdv_retries"`
	RdvTimeouts   uint64 `json:"rdv_timeouts"`
	EagerRetries  uint64 `json:"eager_retries"`
	EagerTimeouts uint64 `json:"eager_timeouts"`

	// Admission-control section, summed across every node's engine.
	// Present only when a scenario enables admission (omitempty keeps
	// pre-admission baseline entries byte-identical).
	AdmitAdmitted     uint64 `json:"admit_admitted,omitempty"`
	AdmitRejected     uint64 `json:"admit_rejected,omitempty"`
	AdmitShed         uint64 `json:"admit_shed,omitempty"`
	AdmitBlocked      uint64 `json:"admit_blocked,omitempty"`
	AdmitExpired      uint64 `json:"admit_expired,omitempty"`
	DeadlineExpired   uint64 `json:"deadline_expired,omitempty"`
	AdmitRejectErrors int    `json:"admit_reject_errors,omitempty"`
	// LeakedCredits sums post-quiesce admission residue over every gate:
	// request credits + byte credits + parked submissions. Must be zero.
	LeakedCredits int64 `json:"leaked_admit_credits,omitempty"`
	// PeakInflight is the highest protocol-state count any single node
	// reached (Options.TrackInflight scenarios only).
	PeakInflight int `json:"peak_inflight,omitempty"`

	LatencyP50Ns int64 `json:"latency_p50_ns"`
	LatencyP99Ns int64 `json:"latency_p99_ns"`
	LatencyMaxNs int64 `json:"latency_max_ns"`
	VirtualNs    int64 `json:"virtual_ns"`

	// Phase attribution from the flight recorder's message spans,
	// present only on traced runs (RunTraced / clusterbench with a
	// recorder attached); plain runs omit the section so untraced JSON
	// is unchanged. All integers on the virtual clock, so traced JSON
	// stays byte-identical under a fixed seed too.
	TraceMessages    int         `json:"trace_messages,omitempty"`
	TraceOrphanSpans int         `json:"trace_orphan_spans,omitempty"`
	Phases           []PhaseStat `json:"phases,omitempty"`

	ExpectHang bool     `json:"expect_hang"`
	Violations []string `json:"violations"`
}

// PhaseStat is one protocol phase's latency distribution across every
// traced message of the scenario (virtual-clock nanoseconds).
type PhaseStat struct {
	Phase string `json:"phase"`
	Count uint64 `json:"count"`
	P50Ns int64  `json:"p50_ns"`
	P99Ns int64  `json:"p99_ns"`
	MaxNs int64  `json:"max_ns"`
}

// Passed reports whether every invariant held.
func (r Result) Passed() bool { return len(r.Violations) == 0 }

// expect is one scenario's invariant contract, checked after quiesce.
type expect struct {
	// allComplete requires every transfer to finish byte-exact.
	allComplete bool
	// minVisibleFailures requires at least this many transfers to fail
	// with a visible error (chaos scenarios must prove the cut bit).
	minVisibleFailures int
	// minRetries requires the rendezvous retransmission machinery to
	// have fired.
	minRetries uint64
	// minEagerRetries requires the eager retransmission window to have
	// fired.
	minEagerRetries uint64
	// maxLinks bounds the fabric links the scenario materialized
	// (0 = unchecked) — the O(n) sparse-wiring assertion.
	maxLinks int
	// minCompletedFrac requires Completed ≥ Transfers·num/den — the
	// "retransmission saved most traffic" bar of lossy scenarios.
	// Zero values skip the check.
	minCompletedNum, minCompletedDen int
	// maxP99 bounds the completed-transfer p99 latency in virtual time
	// (0 = unbounded).
	maxP99 simtime.Duration
	// maxPeakInflight bounds the per-node protocol-state peak under
	// admission (0 = unchecked); minPeakInflight is the ablation's
	// inverse — the peak must EXCEED it to prove unbounded growth.
	maxPeakInflight int
	minPeakInflight int
	// expectHang inverts the hang invariant: the scenario exists to
	// prove the harness catches hangs, so zero hung requests is the
	// violation. Leak checks are skipped (a hang leaks by definition).
	expectHang bool
}

// check appends every violated invariant to res.Violations.
func check(res *Result, ex expect) {
	res.ExpectHang = ex.expectHang
	fail := func(f string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(f, args...))
	}
	if ex.expectHang {
		if res.Hung == 0 {
			fail("broken control completed cleanly: the hang invariant caught nothing")
		}
		return
	}
	if res.Hung > 0 {
		fail("%d requests hung past the virtual-time budget", res.Hung)
	}
	if res.Corrupt > 0 {
		fail("%d transfers delivered corrupted payloads", res.Corrupt)
	}
	if res.LeakedStates > 0 {
		fail("%d protocol states leaked after quiesce", res.LeakedStates)
	}
	if res.LeakedRegs > 0 {
		fail("%d registrations still pinned after quiesce", res.LeakedRegs)
	}
	if res.LiveRegions > 0 {
		fail("%d fabric regions alive after engine close", res.LiveRegions)
	}
	if res.LeakedCredits > 0 {
		fail("%d admission credits leaked after quiesce", res.LeakedCredits)
	}
	if res.AdmitRejectErrors != int(res.AdmitRejected) {
		fail("admission accounting mismatch: engines counted %d rejects, %d surfaced as errors",
			res.AdmitRejected, res.AdmitRejectErrors)
	}
	if ex.allComplete && res.Completed != res.Transfers {
		fail("%d of %d transfers did not complete", res.Transfers-res.Completed, res.Transfers)
	}
	if res.FailedVisibly+res.Canceled < ex.minVisibleFailures {
		fail("only %d visible failures, scenario requires ≥ %d",
			res.FailedVisibly+res.Canceled, ex.minVisibleFailures)
	}
	if res.RdvRetries < ex.minRetries {
		fail("only %d rendezvous retries, scenario requires ≥ %d", res.RdvRetries, ex.minRetries)
	}
	if res.EagerRetries < ex.minEagerRetries {
		fail("only %d eager retries, scenario requires ≥ %d", res.EagerRetries, ex.minEagerRetries)
	}
	if ex.maxLinks > 0 && res.Links > ex.maxLinks {
		fail("%d fabric links materialized, sparse topology allows ≤ %d", res.Links, ex.maxLinks)
	}
	if ex.minCompletedDen > 0 && res.Completed*ex.minCompletedDen < res.Transfers*ex.minCompletedNum {
		fail("only %d/%d transfers completed, scenario requires ≥ %d/%d",
			res.Completed, res.Transfers, ex.minCompletedNum, ex.minCompletedDen)
	}
	if ex.maxP99 > 0 && res.LatencyP99Ns > int64(ex.maxP99) {
		fail("p99 latency %d ns exceeds the %d ns bound", res.LatencyP99Ns, int64(ex.maxP99))
	}
	if ex.maxPeakInflight > 0 && res.PeakInflight > ex.maxPeakInflight {
		fail("peak inflight %d exceeds the admission bound of %d", res.PeakInflight, ex.maxPeakInflight)
	}
	if ex.minPeakInflight > 0 && res.PeakInflight < ex.minPeakInflight {
		fail("peak inflight only %d, ablation requires > %d to prove unbounded growth",
			res.PeakInflight, ex.minPeakInflight)
	}
}

// Scenario is one named chaos experiment.
type Scenario struct {
	Name string
	Desc string
	// Heavy marks the hundreds-of-nodes scenarios, so -short test runs
	// (and the -race CI leg) can skip them while native runs and the
	// clusterbench trajectory always include them.
	Heavy bool
	run   func(seed int64) Result
}

// finish is the shared scenario epilogue: resolve stragglers, audit,
// close, count surviving regions, attribute phases, check the contract.
func finish(h *harness, res *Result, ex expect) Result {
	h.cancelUnmatched()
	h.drive(32 * rdvTimeout)
	h.audit(res)
	h.close()
	res.LiveRegions = h.fab.Stats().LiveRegions
	h.tracePhases(res)
	check(res, ex)
	return *res
}

// tracePhases fills the Result's span-derived section from the
// scenario's slice of the flight recorder. Runs after close so spans
// the shutdown path finalizes (hung requests killed by Close) are
// included. No-op on untraced runs.
func (h *harness) tracePhases(res *Result) {
	if h.rec == nil {
		return
	}
	rep := analyze.Analyze(h.rec.EventsSince(h.mark))
	res.TraceMessages = len(rep.Messages)
	res.TraceOrphanSpans = rep.OrphanSpans
	for _, name := range rep.PhaseNames() {
		hist := rep.Phases[name]
		res.Phases = append(res.Phases, PhaseStat{
			Phase: name,
			Count: hist.Count(),
			P50Ns: hist.Quantile(0.5),
			P99Ns: hist.Quantile(0.99),
			MaxNs: hist.Max(),
		})
	}
}

// mixSeed derives a scenario-local fault seed so scenarios draw
// independent fault streams from one user seed.
func mixSeed(seed int64, idx int64) int64 {
	return seed*1_000_003 + idx
}

// eagerSize is under the engines' eager threshold; rdvSize is above it
// and rides the rendezvous protocol, which is the only path with
// retransmission — chaos scenarios that drop frames use rdvSize only.
const (
	eagerSize = 2 << 10
	rdvSize   = 24 << 10
)

// runFanout: one root scatters an eager request to every leaf and each
// leaf answers with a rendezvous-sized response — the RPC pattern.
func runFanout(seed int64) Result {
	res := Result{Seed: seed}
	h := newHarness(Options{Nodes: 17})
	for leaf := 1; leaf < 17; leaf++ {
		h.transfer(0, leaf, 1, eagerSize)
		h.transfer(leaf, 0, 2, rdvSize)
	}
	h.drive(200 * rdvTimeout)
	return finish(h, &res, expect{allComplete: true, maxP99: 100 * rdvTimeout})
}

// runShuffle: every node sends one rendezvous block to every other —
// the all-to-all exchange phase of a distributed sort.
func runShuffle(seed int64) Result {
	res := Result{Seed: seed}
	h := newHarness(Options{Nodes: 8})
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s != d {
				h.transfer(s, d, uint64(s), rdvSize)
			}
		}
	}
	h.drive(200 * rdvTimeout)
	return finish(h, &res, expect{allComplete: true, maxP99: 100 * rdvTimeout})
}

// runIncast: 32 senders converge on one sink whose ingress port
// serializes — the storage-fan-in storm. 64 gate endpoints on one
// fabric.
func runIncast(seed int64) Result {
	res := Result{Seed: seed}
	h := newHarness(Options{Nodes: 33, SharedIngress: true})
	for s := 1; s < 33; s++ {
		h.transfer(s, 0, uint64(s), rdvSize)
	}
	h.drive(400 * rdvTimeout)
	return finish(h, &res, expect{allComplete: true, maxP99: 200 * rdvTimeout})
}

// runStraggler: an all-to-all shuffle where one node's NIC runs an
// order of magnitude slower — the slow-disk/hot-VM straggler.
func runStraggler(seed int64) Result {
	res := Result{Seed: seed}
	h := newHarness(Options{Nodes: 8})
	h.nodes[3].dom.SetCapabilities(fabric.Capabilities{
		Latency:   20 * simtime.Microsecond,
		Bandwidth: 4e8,
		MaxInject: 8 << 10,
		RMA:       true,
	})
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s != d {
				h.transfer(s, d, uint64(s), rdvSize)
			}
		}
	}
	h.drive(400 * rdvTimeout)
	return finish(h, &res, expect{allComplete: true, maxP99: 200 * rdvTimeout})
}

// runFlappingRail: fan-out traffic while the root's NIC flaps — every
// outbound frame lost during the down windows. The handshake timeout
// must carry every transfer across the flaps.
func runFlappingRail(seed int64) Result {
	res := Result{Seed: seed}
	h := newHarness(Options{Nodes: 9})
	for wave := 0; wave < 3; wave++ {
		for leaf := 1; leaf < 9; leaf++ {
			h.transfer(0, leaf, uint64(wave), rdvSize)
		}
		h.nodes[0].dom.SetFaults(&fabric.FaultConfig{DropProb: 1})
		h.drive(4 * rdvTimeout) // the flap window: everything outbound dies
		h.nodes[0].dom.SetFaults(nil)
		h.drive(100 * rdvTimeout)
	}
	return finish(h, &res, expect{allComplete: true, minRetries: 1})
}

// runPartitionHeal: an all-to-all shuffle cut in half mid-flight; the
// in-flight cross-partition transfers must fail visibly, and after the
// heal a second wave must run clean over the very same gates.
func runPartitionHeal(seed int64) Result {
	res := Result{Seed: seed}
	h := newHarness(Options{Nodes: 8})
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s != d {
				h.transfer(s, d, 1, rdvSize)
			}
		}
	}
	for i := 4; i < 8; i++ {
		h.nodes[i].dom.SetPartition(1)
	}
	h.drive(300 * rdvTimeout) // cross-partition halves burn their retry budget
	h.cancelUnmatched()       // receives whose RTS (and NACK) died in the cut
	h.drive(32 * rdvTimeout)
	wave1 := len(h.xfers)
	crossFailed := 0
	for _, x := range h.xfers {
		if (x.src < 4) != (x.dst < 4) && x.settled &&
			(x.sreq.Err() != nil || x.rreq.Err() != nil) {
			crossFailed++
		}
	}
	if crossFailed == 0 {
		res.Violations = append(res.Violations, "partition cut no transfer visibly")
	}

	h.fab.Heal()
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s != d {
				h.transfer(s, d, 2, rdvSize)
			}
		}
	}
	h.drive(300 * rdvTimeout)
	out := finish(h, &res, expect{minVisibleFailures: crossFailed})
	// Wave 2 ran entirely after the heal: every one of its transfers
	// must have completed on the same gates the partition poisoned.
	if out.Completed < out.Transfers-wave1 {
		out.Violations = append(out.Violations, "healed gates did not carry a clean second wave")
	}
	return out
}

// runChaosSoup: all-to-all rendezvous traffic through a fabric that
// drops, duplicates, and delays at random. Transfers may fail — but
// only visibly, only without leaks, and retransmission must save most.
func runChaosSoup(seed int64) Result {
	res := Result{Seed: seed}
	h := newHarness(Options{Nodes: 6, Faults: fabric.FaultConfig{
		Seed:        mixSeed(seed, 7),
		DropProb:    0.1,
		DupProb:     0.05,
		DelayJitter: 30 * simtime.Microsecond,
	}})
	for s := 0; s < 6; s++ {
		for d := 0; d < 6; d++ {
			if s != d {
				h.transfer(s, d, uint64(s*7+d), rdvSize)
			}
		}
	}
	h.drive(600 * rdvTimeout)
	out := finish(h, &res, expect{minRetries: 1})
	if out.Completed < out.Transfers/2 {
		out.Violations = append(out.Violations,
			fmt.Sprintf("only %d/%d transfers survived 10%% loss", out.Completed, out.Transfers))
	}
	return out
}

// runMixedJitter: interleaved eager and rendezvous traffic under heavy
// delay jitter — no loss, so ordering chaos alone must not corrupt
// matching on either path.
func runMixedJitter(seed int64) Result {
	res := Result{Seed: seed}
	h := newHarness(Options{Nodes: 8, Faults: fabric.FaultConfig{
		Seed:        mixSeed(seed, 11),
		DelayJitter: 200 * simtime.Microsecond,
	}})
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s == d {
				continue
			}
			h.transfer(s, d, uint64(s), eagerSize)
			h.transfer(s, d, uint64(8+s), rdvSize)
		}
	}
	h.drive(400 * rdvTimeout)
	return finish(h, &res, expect{allComplete: true, maxP99: 200 * rdvTimeout})
}

// runBrokenControl is the harness proving itself: rendezvous traffic
// into a permanent partition with the handshake timeout DISABLED. The
// scenario passes only if the hang invariant trips — if this scenario
// ever "succeeds", the harness has stopped catching hangs.
func runBrokenControl(seed int64) Result {
	res := Result{Seed: seed}
	h := newHarness(Options{Nodes: 4, NoRdvTimeout: true})
	for d := 1; d < 4; d++ {
		h.nodes[d].dom.SetPartition(1)
	}
	for d := 1; d < 4; d++ {
		h.transfer(0, d, 1, rdvSize)
	}
	h.drive(100 * rdvTimeout)
	return finish(h, &res, expect{expectHang: true})
}

// runRing512: the scale proof — 512 nodes on a ring, each passing an
// eager message to its right neighbor and every 8th node pushing a
// rendezvous block alongside. Clean fabric; what is under test is the
// wiring: 512 links (not the 130k of all-to-all), 1024 gate endpoints,
// full post-quiesce invariants at three decimal orders of magnitude
// more endpoints than the original harness.
func runRing512(seed int64) Result {
	res := Result{Seed: seed}
	n := 512
	h := newHarness(Options{Topo: Ring(n)})
	for i := 0; i < n; i++ {
		h.transfer(i, (i+1)%n, 1, eagerSize)
		if i%8 == 0 {
			h.transfer(i, (i+1)%n, 2, rdvSize)
		}
	}
	h.drive(600 * rdvTimeout)
	return finish(h, &res, expect{allComplete: true, maxLinks: n, maxP99: 400 * rdvTimeout})
}

// runRingGossipLossy: 512-node ring gossip — every node sends eager
// both ways — under 10% frame drop and jitter. Before the eager
// retransmission window existed this traffic class could not touch a
// lossy fabric at all; now nearly all of it must land byte-exact, the
// rest must fail visibly, and the window must demonstrably fire.
func runRingGossipLossy(seed int64) Result {
	res := Result{Seed: seed}
	n := 512
	h := newHarness(Options{
		Topo:       Ring(n),
		RdvRetries: 6,
		Faults: fabric.FaultConfig{
			Seed:        mixSeed(seed, 17),
			DropProb:    0.1,
			DelayJitter: 20 * simtime.Microsecond,
		},
	})
	for i := 0; i < n; i++ {
		h.transfer(i, (i+1)%n, 1, eagerSize)
		h.transfer(i, (i+n-1)%n, 2, eagerSize)
	}
	h.drive(1200 * rdvTimeout)
	return finish(h, &res, expect{
		minEagerRetries: 1,
		maxLinks:        n,
		minCompletedNum: 9, minCompletedDen: 10,
	})
}

// runTreeFlap: fan-out down a 4-ary tree of 85 nodes — eager and
// rendezvous on every edge — while an interior node's NIC flaps to
// full loss mid-run. Its subtree's traffic (and the acks it owes its
// parent) must ride the retransmission machinery across the flap and
// still deliver everything byte-exact.
func runTreeFlap(seed int64) Result {
	res := Result{Seed: seed}
	topo := KaryTree(85, 4)
	h := newHarness(Options{Topo: topo, RdvRetries: 6})
	// The flap is up before any frame moves: everything node 1 owes the
	// fabric — its sends to children 5..8 and the acks it owes node 0 —
	// is eaten until the heal, so the retransmission window must carry
	// its whole subtree across.
	h.nodes[1].dom.SetFaults(&fabric.FaultConfig{DropProb: 1})
	topo.EachEdge(func(parent, child int) {
		h.transfer(parent, child, 1, eagerSize)
		h.transfer(parent, child, 2, rdvSize)
	})
	h.drive(4 * rdvTimeout)
	h.nodes[1].dom.SetFaults(nil)
	h.drive(600 * rdvTimeout)
	return finish(h, &res, expect{
		allComplete: true, maxLinks: topo.Edges(),
		minRetries: 1, minEagerRetries: 1,
	})
}

// runTorusHalo: halo exchange on an 8×8 torus — every node trades an
// eager boundary strip with its right and down neighbors under mild
// jitter. The stencil-code communication pattern, on the topology it
// actually runs on.
func runTorusHalo(seed int64) Result {
	res := Result{Seed: seed}
	topo := Torus2D(8, 8)
	h := newHarness(Options{Topo: topo, Faults: fabric.FaultConfig{
		Seed:        mixSeed(seed, 19),
		DelayJitter: 10 * simtime.Microsecond,
	}})
	cols := 8
	for r := 0; r < 8; r++ {
		for c := 0; c < cols; c++ {
			id := r*cols + c
			h.transfer(id, r*cols+(c+1)%cols, 1, eagerSize)
			h.transfer(id, ((r+1)%8)*cols+c, 2, eagerSize)
		}
	}
	h.drive(400 * rdvTimeout)
	return finish(h, &res, expect{allComplete: true, maxLinks: topo.Edges(), maxP99: 200 * rdvTimeout})
}

// runSparseShuffle: a shuffle over a random 4-regular expander of 64
// nodes under 5% drop and jitter — eager one way and rendezvous the
// other on every edge, so both retransmission families work the same
// lossy graph at once.
func runSparseShuffle(seed int64) Result {
	res := Result{Seed: seed}
	topo := RandomRegular(64, 4, mixSeed(seed, 23))
	h := newHarness(Options{
		Topo:       topo,
		RdvRetries: 6,
		Faults: fabric.FaultConfig{
			Seed:        mixSeed(seed, 29),
			DropProb:    0.05,
			DelayJitter: 15 * simtime.Microsecond,
		},
	})
	topo.EachEdge(func(a, b int) {
		h.transfer(a, b, 1, eagerSize)
		h.transfer(b, a, 2, rdvSize)
	})
	h.drive(1200 * rdvTimeout)
	return finish(h, &res, expect{
		minRetries:      1,
		minEagerRetries: 1,
		maxLinks:        topo.Edges(),
		minCompletedNum: 9, minCompletedDen: 10,
	})
}

// runLinkFlap: ring traffic while ONE direction of ONE edge flaps to
// full loss — the per-link fault override, as opposed to the per-NIC
// flap of flapping-rail. Only traffic riding the cut cable (node 5's
// frames and acks toward 6) should need the retransmission window;
// everything must still deliver.
func runLinkFlap(seed int64) Result {
	res := Result{Seed: seed}
	n := 32
	topo := Ring(n)
	h := newHarness(Options{Topo: topo, RdvRetries: 6})
	// Cut 5→6 before traffic moves: node 5's eager frame and RTS toward
	// 6 vanish until the heal, while 6→5 (the other direction of the
	// same cable) and the other 31 edges stay clean.
	h.linkFaults(5, 6, &fabric.FaultConfig{DropProb: 1})
	for i := 0; i < n; i++ {
		h.transfer(i, (i+1)%n, 1, eagerSize)
		h.transfer(i, (i+1)%n, 2, rdvSize)
	}
	h.drive(4 * rdvTimeout)
	h.linkFaults(5, 6, nil)
	h.drive(600 * rdvTimeout)
	return finish(h, &res, expect{
		allComplete: true, maxLinks: n,
		minRetries: 1, minEagerRetries: 1,
	})
}

// runBrokenEager is the eager ablation proving the retransmission
// window is load-bearing: ring gossip through 15% drop with
// NoEagerRetry — fire-and-forget frames, no acks, no redelivery. The
// scenario passes only if traffic is actually lost; if it ever
// delivers everything, the reliability layer has stopped mattering
// (or the fault plane has stopped dropping).
func runBrokenEager(seed int64) Result {
	res := Result{Seed: seed}
	n := 16
	h := newHarness(Options{
		Topo:         Ring(n),
		NoEagerRetry: true,
		Faults: fabric.FaultConfig{
			Seed:     mixSeed(seed, 31),
			DropProb: 0.15,
		},
	})
	for tag := uint64(1); tag <= 3; tag++ {
		for i := 0; i < n; i++ {
			h.transfer(i, (i+1)%n, tag, eagerSize)
		}
	}
	h.drive(100 * rdvTimeout)
	out := finish(h, &res, expect{minVisibleFailures: 1, maxLinks: n})
	if out.Completed == out.Transfers {
		out.Violations = append(out.Violations,
			"fire-and-forget eager lost nothing under 15% drop: the ablation proves nothing")
	}
	return out
}

// postIncastOverload posts the overload deck incast-overload and its
// ablation share: 32 senders each push six rendezvous blocks (6×24 KiB,
// 2.25× the 64 KiB per-gate BDP byte budget) at one shared-ingress
// sink, all up front.
func postIncastOverload(h *harness) {
	for s := 1; s < 33; s++ {
		for t := 0; t < 6; t++ {
			h.transfer(s, 0, uint64(1+t), rdvSize)
		}
	}
}

// runIncastOverload: the incast storm resubmitted at 6× the per-gate
// byte budget under fail-fast admission. Every sender gets exactly two
// rendezvous blocks in flight (2×24 KiB of its 64 KiB BDP budget); the
// other four are rejected at Isend before a single protocol state or
// wire frame materializes. What was admitted must complete byte-exact
// with bounded p99, every reject must surface as ErrAdmissionReject,
// and the sink's state table stays capped by what the senders' credit
// planes let through.
func runIncastOverload(seed int64) Result {
	res := Result{Seed: seed}
	h := newHarness(Options{
		Nodes: 33, SharedIngress: true,
		Admit:         &admit.Config{},
		AdmitPolicy:   nmad.AdmitReject,
		TrackInflight: true,
	})
	postIncastOverload(h)
	h.drive(400 * rdvTimeout)
	out := finish(h, &res, expect{
		minVisibleFailures: 128,
		maxP99:             200 * rdvTimeout,
		maxPeakInflight:    64,
		minCompletedNum:    1, minCompletedDen: 3,
	})
	if out.AdmitRejected != 128 {
		out.Violations = append(out.Violations, fmt.Sprintf(
			"expected 128 fail-fast rejects (4 of every sender's 6), got %d", out.AdmitRejected))
	}
	return out
}

// runSlowReceiverBackpressure: four senders flood a 10×-degraded sink
// at 4× their gate budgets under the blocking policy — over-budget
// sends park in the admission queue and drain strictly FIFO as the
// slow receiver completes earlier work, so everything lands without
// the sink's state table ever exceeding the admitted window. One extra
// send carries a deadline too short for the backlog: wherever the
// clock catches it — parked, in flight, or at the receiver before the
// RMA read — it must fail with deadline semantics, never hang.
func runSlowReceiverBackpressure(seed int64) Result {
	res := Result{Seed: seed}
	h := newHarness(Options{
		Nodes:         5,
		Admit:         &admit.Config{},
		AdmitWait:     int64(400 * rdvTimeout),
		TrackInflight: true,
	})
	h.nodes[0].dom.SetCapabilities(fabric.Capabilities{
		Latency:   20 * simtime.Microsecond,
		Bandwidth: 4e8,
		MaxInject: 8 << 10,
		RMA:       true,
	})
	for s := 1; s < 5; s++ {
		for t := 0; t < 8; t++ {
			h.transfer(s, 0, uint64(1+t), rdvSize)
		}
	}
	h.transferDeadline(1, 0, 99, rdvSize, h.fab.Now()+simtime.Time(8*simtime.Microsecond))
	h.drive(600 * rdvTimeout)
	out := finish(h, &res, expect{
		minVisibleFailures: 1,
		maxPeakInflight:    8,
		maxP99:             300 * rdvTimeout,
	})
	if out.Completed != out.Transfers-1 {
		out.Violations = append(out.Violations, fmt.Sprintf(
			"backpressure lost traffic: %d of %d completed, expected all but the doomed deadline send",
			out.Completed, out.Transfers))
	}
	if out.AdmitBlocked != 25 {
		out.Violations = append(out.Violations, fmt.Sprintf(
			"expected 25 parked submissions (6 of every sender's 8, plus the deadline send), got %d",
			out.AdmitBlocked))
	}
	if out.DeadlineExpired == 0 {
		out.Violations = append(out.Violations,
			"the doomed send's deadline never fired")
	}
	return out
}

// runBurstThenDrain: degraded-mode shedding and recovery. Each of 8
// senders bursts four rendezvous blocks plus one eager message at the
// sink; the second block pushes its gate ledger past the 0.5 high
// watermark (2×24 KiB of 64 KiB), so blocks three and four are shed
// while the eager message — and everything already admitted — sails
// through degraded mode. Once the burst drains below the low
// watermark every scope must recover, and a second rendezvous wave
// must admit clean: degradation is a valve, not a ratchet.
func runBurstThenDrain(seed int64) Result {
	res := Result{Seed: seed}
	h := newHarness(Options{
		Nodes:         9,
		Admit:         &admit.Config{HighWater: 0.5, LowWater: 0.2},
		AdmitPolicy:   nmad.AdmitDegrade,
		TrackInflight: true,
	})
	for s := 1; s < 9; s++ {
		for t := 0; t < 4; t++ {
			h.transfer(s, 0, uint64(1+t), rdvSize)
		}
		h.transfer(s, 0, 9, eagerSize)
	}
	h.drive(200 * rdvTimeout)
	wave1 := len(h.xfers)
	for _, n := range h.nodes {
		if n.eng.AdmitInfo().Degraded {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"node %d still degraded after the burst drained", n.id))
		}
	}
	for s := 1; s < 9; s++ {
		h.transfer(s, 0, 10, rdvSize)
		h.transfer(s, 0, 11, rdvSize)
	}
	h.drive(200 * rdvTimeout)
	out := finish(h, &res, expect{minVisibleFailures: 16, maxPeakInflight: 16})
	if out.AdmitShed != 16 {
		out.Violations = append(out.Violations, fmt.Sprintf(
			"expected 16 degraded-mode sheds (2 of every sender's 4 blocks), got %d", out.AdmitShed))
	}
	for _, x := range h.xfers[wave1:] {
		if x.sreq.Err() != nil || x.rreq.Err() != nil {
			out.Violations = append(out.Violations,
				"recovered scopes did not carry a clean second wave")
			break
		}
	}
	return out
}

// runOverloadAblation: the exact incast-overload deck with admission
// off — the control proving the credit plane is load-bearing. With
// nothing bounding submission, all 192 rendezvous states pile into the
// sink's state table at once; the scenario passes only if the peak
// provably exceeds anything admission would allow.
func runOverloadAblation(seed int64) Result {
	res := Result{Seed: seed}
	h := newHarness(Options{
		Nodes: 33, SharedIngress: true,
		RdvRetries:    6,
		TrackInflight: true,
	})
	postIncastOverload(h)
	h.drive(800 * rdvTimeout)
	return finish(h, &res, expect{allComplete: true, minPeakInflight: 96})
}

// Scenarios returns the full suite in its canonical order.
func Scenarios() []Scenario {
	return []Scenario{
		{"rpc-fanout", "1→16 eager requests, 16 rendezvous replies", false, runFanout},
		{"shuffle", "8-node all-to-all rendezvous exchange", false, runShuffle},
		{"incast", "32→1 rendezvous storm through one shared ingress port", false, runIncast},
		{"straggler", "8-node shuffle with one 10×-degraded NIC", false, runStraggler},
		{"flapping-rail", "fan-out across three full-loss flap windows", false, runFlappingRail},
		{"partition-and-heal", "shuffle cut in half mid-flight, healed, re-run", false, runPartitionHeal},
		{"chaos-soup", "all-to-all under 10% drop + 5% dup + jitter", false, runChaosSoup},
		{"mixed-jitter", "eager+rendezvous mix under heavy reordering jitter", false, runMixedJitter},
		{"broken-control", "no handshake timeout vs a permanent partition (must hang)", false, runBrokenControl},
		{"ring-512", "512-node ring, eager neighbor pass + sparse rendezvous, O(n) links", true, runRing512},
		{"ring-gossip-lossy", "512-node bidirectional ring gossip under 10% drop", true, runRingGossipLossy},
		{"tree-flap", "4-ary fan-out tree of 85 with a flapping interior node", false, runTreeFlap},
		{"torus-halo", "8×8 torus halo exchange under jitter", false, runTorusHalo},
		{"sparse-shuffle", "random 4-regular shuffle of 64 under 5% drop", false, runSparseShuffle},
		{"link-flap", "32-ring with one edge direction cut and healed", false, runLinkFlap},
		{"broken-eager", "fire-and-forget eager vs 15% drop (must lose traffic)", false, runBrokenEager},
		{"incast-overload", "32→1 storm at 6× the gate budget under fail-fast admission", false, runIncastOverload},
		{"slow-receiver", "blocking admission backpressure into a 10×-degraded sink", false, runSlowReceiverBackpressure},
		{"burst-then-drain", "degraded-mode shedding, recovery, and a clean second wave", false, runBurstThenDrain},
		{"overload-ablation", "the same storm with admission off (must grow unbounded)", false, runOverloadAblation},
	}
}

// Run executes every scenario whose name passes the filter (empty =
// all) with the given seed and returns their results in suite order.
func Run(seed int64, filter func(name string) bool) []Result {
	return RunTraced(seed, filter, nil)
}

// RunTraced is Run with a flight recorder attached to every engine of
// every selected scenario: each harness re-clocks rec onto its fabric's
// virtual time and records task dispatches, steals, rendezvous
// transitions, retransmissions, and rail deaths as the scenario plays.
// Recording is observation-only — a seeded run's results are
// byte-identical with or without rec, and two traced runs of one seed
// drain identical event streams. rec may be nil (plain Run).
func RunTraced(seed int64, filter func(name string) bool, rec *trace.Recorder) []Result {
	var out []Result
	for _, sc := range Scenarios() {
		if filter != nil && !filter(sc.Name) {
			continue
		}
		out = append(out, sc.Run(seed, rec))
	}
	return out
}

// activeTrace hands the recorder from Scenario.Run to newHarness
// without threading it through every scenario's run signature. Package
// scenarios run single-threaded (the driver owns all concurrency), so
// a plain package variable scoped to one Run call is safe.
var activeTrace *trace.Recorder

// Run executes the scenario once under the given seed, attaching the
// optional flight recorder to the harness it builds. Same seed, same
// Result — recording never perturbs the run.
func (s Scenario) Run(seed int64, rec *trace.Recorder) Result {
	if rec != nil {
		activeTrace = rec
		defer func() { activeTrace = nil }()
	}
	r := s.run(seed)
	r.Scenario = s.Name
	r.Description = s.Desc
	return r
}
