package cluster

import (
	"fmt"
	"math/rand"
	"sort"
)

// Sparse cluster topologies.
//
// The harness's first life wired links on demand but placed no bound on
// who talks to whom, and every scenario that wanted scale paid O(n²)
// links for all-to-all traffic. Hundreds-to-thousands of endpoints need
// the opposite discipline: a scenario declares a sparse graph up front,
// traffic follows its edges, and the harness *enforces* the declaration
// — a transfer between non-neighbors panics instead of silently
// materializing a link, so a 512-node ring provably costs O(n) links
// (asserted via fabric.SimStats.Links and Result.GateEndpoints).
//
// The shapes are the classic interconnect/overlay families: ring
// (gossip, token passing), k-ary tree (fan-out/reduction), 2D torus
// (halo exchange), and random d-regular graphs (expander overlays à la
// shuffle meshes). All are deterministic; RandomRegular draws from its
// own seeded generator so a scenario's graph replays from its seed.

// Topo is an undirected sparse graph over nodes 0..Nodes()-1. Build one
// with Ring, KaryTree, Torus2D, or RandomRegular; the zero value is not
// usable.
type Topo struct {
	name  string
	nbrs  [][]int // sorted adjacency lists
	edges int
}

// newTopo allocates an empty topology over n nodes.
func newTopo(name string, n int) *Topo {
	if n < 2 {
		panic(fmt.Sprintf("cluster: topology %q needs ≥ 2 nodes, got %d", name, n))
	}
	return &Topo{name: name, nbrs: make([][]int, n)}
}

// addEdge inserts the undirected edge {a, b}; duplicate and self edges
// panic — constructors are expected to produce simple graphs.
func (t *Topo) addEdge(a, b int) {
	if a == b {
		panic(fmt.Sprintf("cluster: topology %q: self edge at %d", t.name, a))
	}
	for _, x := range t.nbrs[a] {
		if x == b {
			panic(fmt.Sprintf("cluster: topology %q: duplicate edge {%d,%d}", t.name, a, b))
		}
	}
	t.nbrs[a] = append(t.nbrs[a], b)
	t.nbrs[b] = append(t.nbrs[b], a)
	t.edges++
}

// finish sorts the adjacency lists so Neighbors iteration — and hence
// scenario traffic order — is deterministic regardless of construction
// order.
func (t *Topo) finish() *Topo {
	for i := range t.nbrs {
		sort.Ints(t.nbrs[i])
	}
	return t
}

// Name identifies the topology family and its parameters.
func (t *Topo) Name() string { return t.name }

// Nodes returns the node count.
func (t *Topo) Nodes() int { return len(t.nbrs) }

// Edges returns the undirected edge count — the number of fabric links
// a scenario touching every edge materializes.
func (t *Topo) Edges() int { return t.edges }

// Neighbors returns node i's adjacency list, sorted ascending. The
// slice is shared — callers must not mutate it.
func (t *Topo) Neighbors(i int) []int { return t.nbrs[i] }

// HasEdge reports whether {a, b} is an edge.
func (t *Topo) HasEdge(a, b int) bool {
	l := t.nbrs[a]
	i := sort.SearchInts(l, b)
	return i < len(l) && l[i] == b
}

// EachEdge calls fn once per undirected edge, ordered by (min endpoint,
// max endpoint) — the canonical order scenarios use to post traffic.
func (t *Topo) EachEdge(fn func(a, b int)) {
	for a := range t.nbrs {
		for _, b := range t.nbrs[a] {
			if a < b {
				fn(a, b)
			}
		}
	}
}

// Ring builds the n-cycle: node i links to (i±1) mod n. n ≥ 3.
func Ring(n int) *Topo {
	if n < 3 {
		panic(fmt.Sprintf("cluster: ring needs ≥ 3 nodes, got %d", n))
	}
	t := newTopo(fmt.Sprintf("ring-%d", n), n)
	for i := 0; i < n; i++ {
		t.addEdge(i, (i+1)%n)
	}
	return t.finish()
}

// KaryTree builds the complete k-ary tree over n nodes in heap order:
// node c > 0 links to its parent (c-1)/k. Node 0 is the root.
func KaryTree(n, k int) *Topo {
	if k < 2 {
		panic(fmt.Sprintf("cluster: k-ary tree needs k ≥ 2, got %d", k))
	}
	t := newTopo(fmt.Sprintf("tree-%d-ary-%d", k, n), n)
	for c := 1; c < n; c++ {
		t.addEdge((c-1)/k, c)
	}
	return t.finish()
}

// Torus2D builds the rows×cols torus: each node links to its four
// wrap-around grid neighbors. Both dimensions must be ≥ 3 so wrap
// edges never coincide with grid edges.
func Torus2D(rows, cols int) *Topo {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("cluster: torus needs both dims ≥ 3, got %d×%d", rows, cols))
	}
	t := newTopo(fmt.Sprintf("torus-%dx%d", rows, cols), rows*cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			t.addEdge(id(r, c), id(r, (c+1)%cols))
			t.addEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return t.finish()
}

// RandomRegular builds a random d-regular simple graph over n nodes via
// the seeded pairing model: n·d stubs are shuffled and paired; a
// pairing producing a self loop or duplicate edge is discarded and
// redrawn. n·d must be even and d < n. Deterministic per (n, d, seed).
func RandomRegular(n, d int, seed int64) *Topo {
	if d < 1 || d >= n || n*d%2 != 0 {
		panic(fmt.Sprintf("cluster: no %d-regular graph on %d nodes", d, n))
	}
	rng := rand.New(rand.NewSource(seed))
	stubs := make([]int, n*d)
	for attempt := 0; attempt < 1000; attempt++ {
		for i := range stubs {
			stubs[i] = i / d
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		if t := tryPairing(n, d, seed, stubs); t != nil {
			return t.finish()
		}
	}
	// With d ≪ n a valid pairing appears within a few draws; reaching
	// here means the parameters were adversarial (d close to n).
	panic(fmt.Sprintf("cluster: could not realize a %d-regular graph on %d nodes (seed %d)", d, n, seed))
}

// tryPairing pairs consecutive stubs into edges, failing on self loops
// and duplicates.
func tryPairing(n, d int, seed int64, stubs []int) *Topo {
	t := newTopo(fmt.Sprintf("regular-%d-%d-s%d", d, n, seed), n)
	seen := make(map[[2]int]bool, len(stubs)/2)
	for i := 0; i < len(stubs); i += 2 {
		a, b := stubs[i], stubs[i+1]
		if a == b {
			return nil
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			return nil
		}
		seen[[2]int{a, b}] = true
		t.addEdge(a, b)
	}
	return t
}
