package sched

import (
	"pioman/internal/core"
	"pioman/internal/cpuset"
)

// BindConfig tunes how the task engine is driven from scheduler keypoints.
type BindConfig struct {
	// IdleSpin bounds how many Schedule passes the idle hook performs
	// before returning to the VP sleep loop (default 4). Higher values
	// poll more aggressively — lower communication latency, more CPU
	// burned while idle.
	IdleSpin int
}

// Bind wires a task engine into a runtime, reproducing the PIOMan/Marcel
// integration (paper §IV-A):
//
//   - idle keypoint: the VP is marked idle (so SubmitToIdle can target
//     it) and the engine schedules tasks from the per-core queue up to
//     the global queue;
//   - context-switch keypoint: one task is scheduled;
//   - timer keypoint: one task is scheduled, guaranteeing progression
//     even when application threads never yield;
//   - task submission: VPs allowed to run the new task are woken so an
//     idle core picks it up immediately.
//
// Bind must be called before Runtime.Start.
func Bind(rt *Runtime, e *core.Engine, cfg BindConfig) {
	if cfg.IdleSpin <= 0 {
		cfg.IdleSpin = 4
	}
	rt.RegisterHook(KeypointIdle, func(cpu int) {
		e.SetIdle(cpu, true)
		defer e.SetIdle(cpu, false)
		for i := 0; i < cfg.IdleSpin; i++ {
			if e.Schedule(cpu) == 0 {
				return
			}
		}
	})
	rt.RegisterHook(KeypointSwitch, func(cpu int) {
		e.ScheduleOne(cpu)
	})
	rt.RegisterHook(KeypointTimer, func(cpu int) {
		e.ScheduleOne(cpu)
	})
	e.SetNotifier(func(cs cpuset.Set) {
		if cs.IsEmpty() {
			for _, v := range rt.vps {
				v.poke()
			}
			return
		}
		cs.ForEach(func(cpu int) bool {
			if cpu < len(rt.vps) {
				rt.vps[cpu].poke()
			}
			return true
		})
	})
	// Preemptive tasks (§VI): an urgent submission acts like an
	// inter-processor interrupt — the task runs right now on behalf of a
	// target CPU, even if that VP's thread is deep in computation.
	e.SetInterrupter(func(cs cpuset.Set) {
		cpu := cs.First()
		if cpu < 0 || cpu >= rt.NumVPs() {
			cpu = 0
		}
		e.ScheduleOne(cpu)
	})
}
