package sched

import (
	"sync"
	"time"
)

// timerPool recycles time.Timers for the VP idle loop, which otherwise
// allocates one per idle period.
var timerPool = sync.Pool{}

func acquireTimer(d time.Duration) *time.Timer {
	if v := timerPool.Get(); v != nil {
		t := v.(*time.Timer)
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func releaseTimer(t *time.Timer) {
	if !t.Stop() {
		// Drain a fired-but-unread timer so the next Reset is clean.
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}
