package sched

import (
	"sync/atomic"
	"testing"
	"time"

	"pioman/internal/core"
	"pioman/internal/cpuset"
	"pioman/internal/topology"
)

func smallRuntime() *Runtime {
	topo, err := topology.Build(topology.Spec{
		Name: "test4", NUMANodes: 1, PackagesPerNUMA: 2, CoresPerPackage: 2,
	})
	if err != nil {
		panic(err)
	}
	return NewRuntime(Config{Topology: topo, TimerInterval: 50 * time.Microsecond})
}

func TestSpawnRunsThread(t *testing.T) {
	rt := smallRuntime()
	var ran atomic.Bool
	rt.Spawn(0, "worker", func(th *Thread) { ran.Store(true) })
	rt.Start()
	rt.StopAndWait()
	if !ran.Load() {
		t.Fatal("spawned thread never ran")
	}
}

func TestYieldInterleavesThreads(t *testing.T) {
	rt := smallRuntime()
	var order []string
	add := func(s string) { order = append(order, s) } // VP0-serialized
	rt.Spawn(0, "a", func(th *Thread) {
		add("a1")
		th.Yield()
		add("a2")
	})
	rt.Spawn(0, "b", func(th *Thread) {
		add("b1")
		th.Yield()
		add("b2")
	})
	rt.Start()
	rt.StopAndWait()
	want := []string{"a1", "b1", "a2", "b2"}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (round-robin yield)", order, want)
		}
	}
}

func TestThreadsOnDifferentVPsRunConcurrently(t *testing.T) {
	rt := smallRuntime()
	gate := make(chan struct{})
	// Two threads that can only finish if both are running: each closes
	// its side and waits for the other via real channels (the VPs are
	// separate goroutines, so this must not deadlock).
	aDone := make(chan struct{})
	rt.Spawn(0, "a", func(th *Thread) {
		close(aDone)
		<-gate
	})
	rt.Spawn(1, "b", func(th *Thread) {
		<-aDone
		close(gate)
	})
	rt.Start()
	doneCh := make(chan struct{})
	go func() { rt.StopAndWait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("cross-VP threads deadlocked")
	}
}

func TestBlockUnblock(t *testing.T) {
	rt := smallRuntime()
	var phase atomic.Int32
	blocked := rt.Spawn(0, "blocked", func(th *Thread) {
		phase.Store(1)
		th.Block()
		phase.Store(2)
	})
	rt.Start()
	// Wait until the thread parks.
	deadline := time.Now().Add(2 * time.Second)
	for phase.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("thread never reached Block")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond) // let it actually park
	if phase.Load() != 1 {
		t.Fatal("thread passed Block without Unblock")
	}
	blocked.Unblock()
	blocked.Join()
	if phase.Load() != 2 {
		t.Fatal("thread did not resume after Unblock")
	}
	rt.StopAndWait()
}

func TestUnblockBeforeBlockDoesNotLoseWakeup(t *testing.T) {
	rt := smallRuntime()
	done := make(chan struct{})
	th := rt.Spawn(0, "early", func(th *Thread) {
		// Unblock already happened before we block: the stored permit
		// must let us through.
		time.Sleep(10 * time.Millisecond)
		th.Block()
		close(done)
	})
	th.Unblock() // before the thread even starts blocking
	rt.Start()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("lost wakeup: Unblock before Block was dropped")
	}
	rt.StopAndWait()
}

func TestIdleHookFires(t *testing.T) {
	rt := smallRuntime()
	var idleCount atomic.Int64
	rt.RegisterHook(KeypointIdle, func(cpu int) { idleCount.Add(1) })
	rt.Start()
	time.Sleep(20 * time.Millisecond)
	rt.StopAndWait()
	if idleCount.Load() == 0 {
		t.Error("idle hook never fired on an idle machine")
	}
}

func TestSwitchHookFiresPerContextSwitch(t *testing.T) {
	rt := smallRuntime()
	var switches atomic.Int64
	rt.RegisterHook(KeypointSwitch, func(cpu int) { switches.Add(1) })
	rt.Spawn(0, "yielder", func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Yield()
		}
	})
	rt.Start()
	rt.StopAndWait()
	// 10 yields + 1 exit = at least 11 context switches on VP 0.
	if switches.Load() < 11 {
		t.Errorf("switch hook fired %d times, want >= 11", switches.Load())
	}
}

func TestTimerHookFiresWhileComputing(t *testing.T) {
	// The paper's guarantee: even if a thread computes without ever
	// yielding, timer interrupts keep the task engine progressing.
	rt := smallRuntime()
	var ticks atomic.Int64
	rt.RegisterHook(KeypointTimer, func(cpu int) {
		if cpu == 0 {
			ticks.Add(1)
		}
	})
	stop := make(chan struct{})
	rt.Spawn(0, "cruncher", func(th *Thread) {
		<-stop // simulates compute occupying the VP without yielding
	})
	rt.Start()
	time.Sleep(20 * time.Millisecond)
	if ticks.Load() == 0 {
		t.Error("timer hook did not fire while VP 0 was occupied")
	}
	close(stop)
	rt.StopAndWait()
}

func TestCountersAdvance(t *testing.T) {
	rt := smallRuntime()
	rt.Spawn(0, "w", func(th *Thread) { th.Yield() })
	rt.Start()
	time.Sleep(10 * time.Millisecond)
	rt.StopAndWait()
	sw, idles, ticks := rt.Counters()
	if sw == 0 || idles == 0 || ticks == 0 {
		t.Errorf("counters = %d/%d/%d, want all nonzero", sw, idles, ticks)
	}
}

func TestSpawnOutOfRangePanics(t *testing.T) {
	rt := smallRuntime()
	defer func() {
		if recover() == nil {
			t.Error("Spawn on invalid VP should panic")
		}
	}()
	rt.Spawn(99, "bad", func(*Thread) {})
}

func TestDoubleStartPanics(t *testing.T) {
	rt := smallRuntime()
	rt.Start()
	defer func() {
		recover()
		rt.StopAndWait()
	}()
	rt.Start()
	t.Error("second Start should panic")
}

// --- Binding tests: the PIOMan/Marcel integration ---

func TestBindRunsTasksOnIdleCores(t *testing.T) {
	topo := topology.Kwak()
	rt := NewRuntime(Config{Topology: topo, TimerInterval: 50 * time.Microsecond})
	e := core.New(core.Config{Topology: topo})
	Bind(rt, e, BindConfig{})
	rt.Start()
	defer rt.StopAndWait()

	task := &core.Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(3)}
	e.MustSubmit(task)
	select {
	case <-task.DoneChan():
	case <-time.After(5 * time.Second):
		t.Fatal("idle VP never executed the submitted task")
	}
	if task.LastCPU() != 3 {
		t.Errorf("task ran on CPU %d, want 3", task.LastCPU())
	}
}

func TestBindRepeatTaskProgresses(t *testing.T) {
	topo := topology.Kwak()
	rt := NewRuntime(Config{Topology: topo, TimerInterval: 50 * time.Microsecond})
	e := core.New(core.Config{Topology: topo})
	Bind(rt, e, BindConfig{})
	rt.Start()
	defer rt.StopAndWait()

	var polls atomic.Int32
	task := &core.Task{
		Fn:      func(any) bool { return polls.Add(1) >= 10 },
		CPUSet:  cpuset.NewRange(4, 7),
		Options: core.Repeat,
	}
	e.MustSubmit(task)
	select {
	case <-task.DoneChan():
	case <-time.After(10 * time.Second):
		t.Fatalf("repeat task stalled after %d polls", polls.Load())
	}
	if polls.Load() < 10 {
		t.Errorf("polls = %d, want >= 10", polls.Load())
	}
	if cpu := task.LastCPU(); cpu < 4 || cpu > 7 {
		t.Errorf("poll task ran on CPU %d, outside 4-7", cpu)
	}
}

func TestBindSubmitToIdleTargetsIdleVP(t *testing.T) {
	topo := topology.Kwak()
	rt := NewRuntime(Config{Topology: topo, TimerInterval: 50 * time.Microsecond})
	e := core.New(core.Config{Topology: topo})
	Bind(rt, e, BindConfig{})
	rt.Start()
	defer rt.StopAndWait()

	// All VPs idle; submission from core 0 should pin near it and run.
	time.Sleep(5 * time.Millisecond) // let VPs reach their idle loops
	task := &core.Task{Fn: func(any) bool { return true }}
	if err := e.SubmitToIdle(task, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-task.DoneChan():
	case <-time.After(5 * time.Second):
		t.Fatal("offloaded task never ran")
	}
}

func TestBindProgressWhileThreadComputes(t *testing.T) {
	// A thread occupies VP 0 without yielding; a task pinned to CPU 0
	// must still run via the timer keypoint.
	topo := topology.Kwak()
	rt := NewRuntime(Config{Topology: topo, TimerInterval: 50 * time.Microsecond})
	e := core.New(core.Config{Topology: topo})
	Bind(rt, e, BindConfig{})
	stop := make(chan struct{})
	rt.Spawn(0, "cruncher", func(th *Thread) { <-stop })
	rt.Start()
	defer rt.StopAndWait()
	defer close(stop)

	task := &core.Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)}
	e.MustSubmit(task)
	select {
	case <-task.DoneChan():
	case <-time.After(5 * time.Second):
		t.Fatal("timer keypoint did not progress the task while VP 0 computed")
	}
}
