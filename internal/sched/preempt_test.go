package sched

import (
	"testing"
	"time"

	"pioman/internal/core"
	"pioman/internal/topology"
)

func TestUrgentTaskRunsWhileAllVPsCompute(t *testing.T) {
	// The §VI preemptive-task scenario: every VP is occupied by a thread
	// that never yields, yet an urgent submission executes immediately
	// through the interrupter installed by Bind.
	topo := topology.Borderline()
	rt := NewRuntime(Config{Topology: topo, TimerInterval: 10 * time.Millisecond})
	e := core.New(core.Config{Topology: topo})
	Bind(rt, e, BindConfig{})

	stop := make(chan struct{})
	for cpu := 0; cpu < topo.NCPUs; cpu++ {
		rt.Spawn(cpu, "cruncher", func(th *Thread) { <-stop })
	}
	rt.Start()
	defer rt.StopAndWait()
	defer close(stop)

	urgent := &core.Task{Fn: func(any) bool { return true }}
	start := time.Now()
	if err := e.SubmitUrgent(urgent); err != nil {
		t.Fatal(err)
	}
	// The interrupter runs synchronously on submission: no waiting for a
	// timer tick (10 ms here) should be needed.
	if !urgent.Done() {
		t.Fatal("urgent task not executed immediately by the interrupter")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Millisecond {
		t.Errorf("urgent execution took %v, want immediate", elapsed)
	}
}

func TestUrgentBeatsQueuedTasksUnderBind(t *testing.T) {
	topo := topology.Borderline()
	rt := NewRuntime(Config{Topology: topo, TimerInterval: 50 * time.Microsecond})
	e := core.New(core.Config{Topology: topo})
	Bind(rt, e, BindConfig{})
	rt.Start()
	defer rt.StopAndWait()

	// Pile up normal tasks, then submit an urgent one; the urgent task
	// must not wait behind them.
	gate := make(chan struct{})
	for i := 0; i < 4; i++ {
		e.MustSubmit(&core.Task{Fn: func(any) bool { <-gate; return true }})
	}
	urgent := &core.Task{Fn: func(any) bool { return true }}
	if err := e.SubmitUrgent(urgent); err != nil {
		t.Fatal(err)
	}
	select {
	case <-urgent.DoneChan():
	case <-time.After(2 * time.Second):
		t.Fatal("urgent task stuck behind normal tasks")
	}
	close(gate)
}
