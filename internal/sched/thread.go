package sched

import (
	"sync"
	"sync/atomic"
)

// threadEvent is what a running thread reports back to its VP when it
// relinquishes the processor.
type threadEvent int

const (
	threadYielded threadEvent = iota
	threadBlocked
	threadExited
)

// Thread is a cooperative lightweight thread pinned to one VP — the
// equivalent of a Marcel thread. Its body shares the VP by calling Yield
// or Block; Unblock (from any goroutine) makes a blocked thread runnable
// again.
type Thread struct {
	name string
	vp   *vp

	// resume: scheduler -> thread handoff; toSched: thread -> scheduler.
	resume  chan struct{}
	toSched chan threadEvent

	// permit absorbs an Unblock that arrives before the matching Block
	// (the classic lost-wakeup race).
	permit atomic.Bool
	parked atomic.Bool
	exited atomic.Bool
	done   chan struct{}
}

func newThread(v *vp, name string) *Thread {
	return &Thread{
		name:    name,
		vp:      v,
		resume:  make(chan struct{}),
		toSched: make(chan threadEvent),
		done:    make(chan struct{}),
	}
}

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// CPU returns the VP the thread is pinned to.
func (t *Thread) CPU() int { return t.vp.id }

// Yield hands the VP back to the scheduler, keeping the thread runnable.
// A context-switch keypoint fires before the next thread is dispatched.
func (t *Thread) Yield() {
	t.toSched <- threadYielded
	<-t.resume
}

// Block parks the thread until Unblock is called. If an Unblock already
// happened (permit available), Block consumes it and returns immediately.
// Must be called from the thread's own body.
func (t *Thread) Block() {
	if t.permit.CompareAndSwap(true, false) {
		return
	}
	t.parked.Store(true)
	// Re-check: an Unblock may have landed between the permit check and
	// parking; it would have seen parked=false and stored a permit.
	if t.permit.CompareAndSwap(true, false) {
		t.parked.Store(false)
		return
	}
	t.toSched <- threadBlocked
	<-t.resume
}

// Unblock makes a blocked thread runnable. If the thread is not parked
// yet, a permit is stored so the next Block returns immediately. Safe to
// call from any goroutine.
func (t *Thread) Unblock() {
	if t.parked.CompareAndSwap(true, false) {
		t.vp.enqueue(t)
		return
	}
	t.permit.Store(true)
}

// Done returns a channel closed when the thread's body has returned.
func (t *Thread) Done() <-chan struct{} { return t.done }

// Join blocks the calling goroutine until the thread exits. It must not
// be called from another lightweight thread (it would stall that VP);
// threads waiting on each other should use Block/Unblock or poll with
// Yield.
func (t *Thread) Join() { <-t.done }

// vp is a virtual processor: one goroutine executing lightweight threads
// from its private run queue, firing keypoint hooks at idle times and
// context switches.
type vp struct {
	id int
	rt *Runtime

	mu   sync.Mutex
	runq []*Thread

	// wake is poked when a thread becomes runnable or the runtime stops.
	wake chan struct{}
}

func newVP(rt *Runtime, id int) *vp {
	return &vp{id: id, rt: rt, wake: make(chan struct{}, 1)}
}

func (v *vp) enqueue(t *Thread) {
	v.mu.Lock()
	v.runq = append(v.runq, t)
	v.mu.Unlock()
	v.poke()
}

func (v *vp) poke() {
	select {
	case v.wake <- struct{}{}:
	default:
	}
}

func (v *vp) next() *Thread {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.runq) == 0 {
		return nil
	}
	t := v.runq[0]
	copy(v.runq, v.runq[1:])
	v.runq = v.runq[:len(v.runq)-1]
	return t
}

// loop is the VP scheduling loop. Keypoints fire exactly where the paper
// places them: the idle hook when the run queue is empty, the switch
// hook after every thread dispatch returns.
func (v *vp) loop() {
	defer v.rt.loops.Done()
	for {
		th := v.next()
		if th == nil {
			select {
			case <-v.rt.stopCh:
				return
			default:
			}
			v.rt.fire(KeypointIdle, v.id)
			// Sleep until new work arrives or the idle-poll period
			// elapses; either way the idle hook fires again, which is how
			// repeated polling tasks progress on an idle core.
			idleTimer := acquireTimer(v.rt.cfg.IdlePoll)
			select {
			case <-v.wake:
			case <-idleTimer.C:
			case <-v.rt.stopCh:
				releaseTimer(idleTimer)
				return
			}
			releaseTimer(idleTimer)
			continue
		}
		th.resume <- struct{}{}
		ev := <-th.toSched
		if ev == threadYielded {
			v.mu.Lock()
			v.runq = append(v.runq, th)
			v.mu.Unlock()
		}
		// threadBlocked: Unblock will re-enqueue. threadExited: gone.
		v.rt.fire(KeypointSwitch, v.id)
	}
}
