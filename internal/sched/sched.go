// Package sched implements a Marcel-like lightweight thread scheduler:
// virtual processors (VPs) mapped onto the cores of a machine topology,
// cooperative lightweight threads scheduled on them, and keypoint hooks.
//
// The paper's progression mechanism relies on the thread scheduler
// invoking the task manager at keypoints — when a CPU becomes idle, at
// context switches, and on timer interrupts — so that communication
// tasks execute inside scheduling holes. This package reproduces that
// control flow: each VP is a goroutine that runs its thread queue and
// fires hooks at exactly those keypoints; a periodic timer goroutine
// stands in for the timer interrupt, firing even while a thread computes
// without yielding.
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pioman/internal/topology"
)

// Keypoint identifies a position in the scheduler where hooks fire
// (paper §III: "hooks are inserted in the thread scheduler").
type Keypoint int

const (
	// KeypointIdle fires when a VP has no runnable thread.
	KeypointIdle Keypoint = iota
	// KeypointSwitch fires at every context switch (a thread yielded,
	// blocked, or exited).
	KeypointSwitch
	// KeypointTimer fires periodically, independent of thread behaviour —
	// the timer-interrupt progression guarantee that prevents deadlock
	// when threads never block.
	KeypointTimer
	numKeypoints
)

// String names the keypoint.
func (k Keypoint) String() string {
	switch k {
	case KeypointIdle:
		return "idle"
	case KeypointSwitch:
		return "switch"
	case KeypointTimer:
		return "timer"
	default:
		return fmt.Sprintf("Keypoint(%d)", int(k))
	}
}

// Hook is a keypoint callback. cpu is the VP the keypoint occurred on.
type Hook func(cpu int)

// Config parameterizes a Runtime.
type Config struct {
	// Topology defines how many VPs to run (one per core). Defaults to
	// topology.Host().
	Topology *topology.Topology
	// TimerInterval is the simulated timer-interrupt period (default
	// 100µs).
	TimerInterval time.Duration
	// IdlePoll is how long an idle VP sleeps before re-firing the idle
	// keypoint when nothing wakes it (default 200µs).
	IdlePoll time.Duration
}

// Runtime is the lightweight thread scheduler.
type Runtime struct {
	cfg   Config
	topo  *topology.Topology
	vps   []*vp
	hooks [numKeypoints][]Hook
	hmu   sync.RWMutex

	threads sync.WaitGroup // live lightweight threads
	started atomic.Bool
	stopped atomic.Bool
	stopCh  chan struct{}
	loops   sync.WaitGroup // VP + timer goroutines

	switches atomic.Uint64
	idles    atomic.Uint64
	ticks    atomic.Uint64
}

// NewRuntime builds a stopped runtime; call Start to launch the VPs.
func NewRuntime(cfg Config) *Runtime {
	if cfg.Topology == nil {
		cfg.Topology = topology.Host()
	}
	if cfg.TimerInterval <= 0 {
		cfg.TimerInterval = 100 * time.Microsecond
	}
	if cfg.IdlePoll <= 0 {
		cfg.IdlePoll = 200 * time.Microsecond
	}
	rt := &Runtime{cfg: cfg, topo: cfg.Topology, stopCh: make(chan struct{})}
	for i := 0; i < cfg.Topology.NCPUs; i++ {
		rt.vps = append(rt.vps, newVP(rt, i))
	}
	return rt
}

// Topology returns the machine the runtime maps onto.
func (rt *Runtime) Topology() *topology.Topology { return rt.topo }

// NumVPs returns the number of virtual processors.
func (rt *Runtime) NumVPs() int { return len(rt.vps) }

// RegisterHook appends a hook at the given keypoint. Hooks run on the VP
// goroutine (or the timer goroutine for KeypointTimer) and must not
// block for long.
func (rt *Runtime) RegisterHook(k Keypoint, h Hook) {
	rt.hmu.Lock()
	defer rt.hmu.Unlock()
	rt.hooks[k] = append(rt.hooks[k], h)
}

func (rt *Runtime) fire(k Keypoint, cpu int) {
	switch k {
	case KeypointSwitch:
		rt.switches.Add(1)
	case KeypointIdle:
		rt.idles.Add(1)
	case KeypointTimer:
		rt.ticks.Add(1)
	}
	rt.hmu.RLock()
	hooks := rt.hooks[k]
	rt.hmu.RUnlock()
	for _, h := range hooks {
		h(cpu)
	}
}

// Counters returns (context switches, idle entries, timer ticks).
func (rt *Runtime) Counters() (switches, idles, ticks uint64) {
	return rt.switches.Load(), rt.idles.Load(), rt.ticks.Load()
}

// Start launches one goroutine per VP plus the timer goroutine. It may
// be called once.
func (rt *Runtime) Start() {
	if !rt.started.CompareAndSwap(false, true) {
		panic("sched: Runtime started twice")
	}
	for _, v := range rt.vps {
		rt.loops.Add(1)
		go v.loop()
	}
	rt.loops.Add(1)
	go rt.timerLoop()
}

// timerLoop stands in for the timer interrupt: it fires the timer
// keypoint on every VP each TimerInterval, regardless of what the VP's
// current thread is doing — mirroring preemptive ticks.
func (rt *Runtime) timerLoop() {
	defer rt.loops.Done()
	ticker := time.NewTicker(rt.cfg.TimerInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stopCh:
			return
		case <-ticker.C:
			for cpu := range rt.vps {
				rt.fire(KeypointTimer, cpu)
			}
		}
	}
}

// Spawn creates a lightweight thread pinned to the given VP and makes it
// runnable. fn runs cooperatively: it must call Thread methods (Yield,
// Block) to share the VP. Spawn may be called before Start and from any
// goroutine, including from inside another thread.
func (rt *Runtime) Spawn(cpu int, name string, fn func(*Thread)) *Thread {
	if cpu < 0 || cpu >= len(rt.vps) {
		panic(fmt.Sprintf("sched: Spawn on VP %d of %d", cpu, len(rt.vps)))
	}
	th := newThread(rt.vps[cpu], name)
	rt.threads.Add(1)
	go func() {
		defer rt.threads.Done()
		<-th.resume // first dispatch
		fn(th)
		th.exited.Store(true)
		close(th.done)
		th.toSched <- threadExited
	}()
	rt.vps[cpu].enqueue(th)
	return th
}

// WaitThreads blocks until every spawned thread has exited.
func (rt *Runtime) WaitThreads() { rt.threads.Wait() }

// StopAndWait waits for all threads to exit, then stops the VP and timer
// goroutines. The runtime cannot be restarted.
func (rt *Runtime) StopAndWait() {
	rt.threads.Wait()
	if rt.stopped.CompareAndSwap(false, true) {
		close(rt.stopCh)
		for _, v := range rt.vps {
			v.poke()
		}
	}
	rt.loops.Wait()
}
