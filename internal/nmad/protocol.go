package nmad

import (
	"encoding/binary"
	"fmt"

	"pioman/internal/core"
	"pioman/internal/trace"
)

// Isend starts a non-blocking send of data to the gate's peer under the
// given tag. Small payloads go eagerly (possibly aggregated); large ones
// negotiate an RTS/CTS rendezvous and stripe the payload across the
// gate's rails. The returned request completes once the payload is
// acknowledged by the peer (eager; see eager.go) or fully transferred
// (rendezvous). Under Config.NoEagerRetry, eager sends revert to
// buffered semantics and complete when the frame is on the wire.
func (g *Gate) Isend(tag uint64, data []byte) *Request {
	return g.IsendDeadline(tag, data, 0)
}

// IsendDeadline is Isend with an absolute deadline on the engine clock
// (Config.Clock); 0 means none. The deadline is checked at admission,
// re-checked by the deadline sweep while the transfer is in flight (a
// doomed rendezvous or eager message is failed with ErrDeadlineExpired
// instead of retransmitted), and propagated to the receiver inside the
// RTS pull offer so it stops posting RMA reads for expired work. The
// in-flight sweeps ride the handshake-timeout machinery, so
// Config.NoRdvTimeout/NoEagerRetry disable them along with the
// retransmissions they gate.
func (g *Gate) IsendDeadline(tag uint64, data []byte, deadline int64) *Request {
	e := g.eng
	req := newRequest(e)
	req.deadline = deadline
	if e.stopped.Load() {
		req.complete(ErrClosed)
		return req
	}
	if e.admit != nil && !e.admitSubmit(g, req, tag, data, false) {
		return req
	}
	g.injectSend(req, tag, data)
	return req
}

// injectSend runs the admitted send: the submission path below the
// admission plane. Called from IsendDeadline directly (admission off or
// credits granted) or from admitDrain when a parked submission's
// credits free up.
func (g *Gate) injectSend(req *Request, tag uint64, data []byte) {
	e := g.eng
	e.msgsSent.Add(1)
	msgID := g.nextMsgID.Add(1)

	if len(data) <= e.cfg.EagerThreshold {
		e.eagerSent.Add(1)
		if rec := e.rec; rec != nil {
			// Open the whole-message span and the injection phase:
			// submit → frame on the wire (completeAll's wire-out hook
			// closes it and opens the ack wait).
			sid := g.spanID(trace.DirSend, 0, msgID)
			req.traceID, req.traceRing = sid, int32(g.id)
			rec.Record(g.id, trace.EvSendBegin, sid, uint64(len(data)))
			rec.Record(g.id, trace.EvInjectBegin, sid, uint64(len(data)))
		}
		hdr := Header{Kind: KindEager, Tag: tag, MsgID: msgID, Total: uint32(len(data))}
		if e.cfg.Strategy == StrategyAggreg {
			if !e.cfg.NoEagerRetry {
				e.trackEager(g, msgID, tag, data, req)
			}
			g.aggPush(hdr, data, req)
			return
		}
		rail := g.pickEager()
		if rail < 0 {
			req.complete(errAllRailsDead)
			return
		}
		p := g.packet()
		p.Hdr = hdr
		p.Payload = data
		p.rail = rail
		if e.cfg.NoEagerRetry {
			p.req = req
		} else {
			// Ack-tracked: the pending entry owns the request's
			// completion (peer ack, sweep timeout, or wire failure),
			// not the frame's wire-out.
			e.trackEager(g, msgID, tag, data, req)
			p.pend = append(p.pend[:0], msgID)
		}
		g.sendPacket(p)
		return
	}

	// Rendezvous: announce with an RTS and wait for the receiver's
	// verdict (handled by a polling task) before anything moves. When
	// pull-capable rails exist, the user payload is registered once
	// per rail domain through the gate's registration cache — no
	// staging copy; repeated sends of one buffer skip re-registration
	// entirely — and the RTS imm extension offers the remote keys, so
	// an RMA-capable receiver pulls the bytes straight out of the user
	// buffer and answers with a FIN. Otherwise (or when the receiver
	// declines), the classic CTS/push path runs unchanged.
	st := e.getSendRdv()
	st.data, st.req = data, req
	rail := -1
	if !e.cfg.NoRdvPull {
		if extRail := g.pickControl(true); extRail >= 0 {
			// A deadline rides the offer as a sentinel entry, costing one
			// real offer slot.
			offerLimit := maxOfferRails
			if req.deadline != 0 {
				offerLimit--
			}
			offered := 0
			for i, r := range g.rails {
				if r.rma == nil || r.cache == nil || r.dead.Load() {
					continue
				}
				reg, err := r.cache.Get(data)
				if err != nil {
					continue
				}
				st.regs = append(st.regs, reg)
				st.offer = appendOfferEntry(st.offer, uint32(i), uint64(reg.Key()))
				if offered++; offered == offerLimit {
					break
				}
			}
			if offered > 0 {
				rail = extRail
				if req.deadline != 0 {
					// Propagate the deadline to the receiver: decoders
					// that predate it skip the sentinel as an out-of-range
					// rail index.
					st.offer = appendOfferEntry(st.offer, deadlineRailSentinel, uint64(req.deadline))
				}
			}
		}
	}
	if rail < 0 {
		if rail = g.pickEager(); rail < 0 {
			e.putSendRdv(st)
			req.complete(errAllRailsDead)
			return
		}
	}
	e.rdvStarted.Add(1) // counted only once a handshake actually leaves
	if rec := e.rec; rec != nil {
		// Open the whole-message span and the handshake phase: RTS out
		// → CTS back (push; transfer phase follows) or FIN back (pull;
		// the handshake span covers the entire remote pull).
		sid := g.spanID(trace.DirSend, 0, msgID)
		req.traceID, req.traceRing = sid, int32(g.id)
		rec.Record(g.id, trace.EvSendBegin, sid, uint64(len(data)))
		rec.Record(g.id, trace.EvHandshakeBegin, sid, uint64(len(data)))
	}
	st.tag = tag
	st.total = uint32(len(data))
	st.deadline = e.clock() + e.cfg.RdvTimeout
	e.mu.Lock()
	e.sendRdv[rdvKey{gate: g, msgID: msgID}] = st
	e.mu.Unlock()
	p := g.packet()
	p.Hdr = Header{Kind: KindRTS, Tag: tag, MsgID: msgID, Total: uint32(len(data))}
	p.ext = st.offer
	p.rail = rail
	g.sendPacket(p)
}

// Send is the blocking convenience wrapper around Isend.
func (g *Gate) Send(tag uint64, data []byte) error {
	return g.Isend(tag, data).Wait()
}

// Irecv posts a non-blocking receive for the next message on (gate,
// tag). On completion the payload is in Request.Data.
func (g *Gate) Irecv(tag uint64) *Request {
	return g.irecv(tag, nil)
}

// IrecvInto posts a non-blocking receive that lands in the caller's
// buffer: rendezvous payloads are pulled or reassembled directly into
// buf (true zero-copy on pull-capable rails) and eager payloads are
// copied into it. The matched message must fit in buf or the request
// fails with a short-buffer error. On completion Request.Data aliases
// buf's filled prefix.
func (g *Gate) IrecvInto(tag uint64, buf []byte) *Request {
	return g.irecv(tag, buf)
}

func (g *Gate) irecv(tag uint64, buf []byte) *Request {
	e := g.eng
	req := newRequest(e)
	req.gate = g
	req.tag = tag
	req.userBuf = buf
	if rec := e.rec; rec != nil {
		// The receiver's span identity (the sender's msgID) is unknown
		// until a frame matches; remember the post stamp so the
		// whole-message and match-wait spans can open retroactively.
		req.postTS = rec.Now()
	}
	if e.stopped.Load() {
		req.complete(ErrClosed)
		return req
	}
	// Only sized receives (IrecvInto) are admitted: an open Irecv
	// carries no byte commitment to charge, and admitting it would let
	// an idle receiver starve its own inbound path.
	if e.admit != nil && buf != nil && !e.admitSubmit(g, req, tag, nil, true) {
		return req
	}
	g.injectRecv(req)
	return req
}

// injectRecv posts the admitted receive: the submission path below the
// admission plane. The tag and buffer ride the request (req.tag,
// req.userBuf), so admitDrain can inject a parked receive verbatim.
func (g *Gate) injectRecv(req *Request) {
	e := g.eng
	key := matchKey{gate: req.gate, tag: req.tag}
	e.mu.Lock()
	// A matching message may already have arrived unexpectedly.
	if q := e.unexpected[key]; q != nil {
		if u, ok := q.pop(); ok {
			dropFIFOIfEmpty(e.unexpected, &e.inbFIFOPool, key, q)
			e.mu.Unlock()
			e.deliverLocked(req, u)
			return
		}
	}
	q := e.recvQ[key]
	if q == nil {
		q = getFIFO[*Request](&e.reqFIFOPool)
		e.recvQ[key] = q
	}
	q.push(req)
	e.mu.Unlock()
}

// Recv is the blocking convenience wrapper around Irecv.
func (g *Gate) Recv(tag uint64) ([]byte, error) {
	req := g.Irecv(tag)
	if err := req.Wait(); err != nil {
		return nil, err
	}
	return req.Data, nil
}

// Unexpected reports whether a message with the given tag has already
// arrived on this gate without a matching receive — an MPI_Iprobe.
func (g *Gate) Unexpected(tag uint64) bool {
	e := g.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	q := e.unexpected[matchKey{gate: g, tag: tag}]
	return q != nil && !q.empty()
}

// traceMatch records the receiver-side span openings for a request
// that just matched its message: the whole-message and match-wait
// spans open retroactively at the Irecv post stamp (RecordAt), and
// the match phase closes now. No-op without a recorder.
func (e *Engine) traceMatch(g *Gate, req *Request, msgID uint64, total uint32) {
	rec := e.rec
	if rec == nil {
		return
	}
	sid := g.spanID(trace.DirRecv, 0, msgID)
	req.traceID, req.traceRing = sid, int32(g.id)
	post := req.postTS
	if post == 0 {
		post = rec.Now()
	}
	rec.RecordAt(g.id, trace.EvRecvBegin, sid, uint64(total), post)
	rec.RecordAt(g.id, trace.EvMatchBegin, sid, 0, post)
	rec.Record(g.id, trace.EvMatchEnd, sid, 0)
}

// deliverLocked routes a matched inbound control frame to its receive
// request. Called without e.mu held.
func (e *Engine) deliverLocked(req *Request, u inbound) {
	switch u.hdr.Kind {
	case KindEager:
		e.traceMatch(u.gate, req, u.hdr.MsgID, u.hdr.Total)
		e.msgsRecv.Add(1)
		if req.userBuf != nil {
			if len(u.payload) > len(req.userBuf) {
				req.complete(errShortRecvBuffer)
				return
			}
			n := copy(req.userBuf, u.payload)
			e.recvCopied.Add(uint64(n))
			req.Data = req.userBuf[:n]
		} else {
			req.Data = u.payload
		}
		req.complete(nil)
	case KindRTS:
		g := u.gate
		// Open the receiver spans before the short-buffer check so the
		// failure path below still closes a recorded whole-message span.
		e.traceMatch(g, req, u.hdr.MsgID, u.hdr.Total)
		req.total = u.hdr.Total
		if req.userBuf != nil {
			if int(u.hdr.Total) > len(req.userBuf) {
				// The sender is waiting on us; tell it the handshake is
				// off before failing locally.
				g.sendControl(KindRdvNack, u.hdr.Tag, u.hdr.MsgID, nackSend, 0)
				req.complete(errShortRecvBuffer)
				return
			}
			req.Data = req.userBuf[:u.hdr.Total]
		} else {
			req.Data = make([]byte, u.hdr.Total)
		}
		absDeadline := extDeadline(u.ext)
		if absDeadline != 0 && e.clock() >= absDeadline {
			// The sender's deadline already passed: it has given up on
			// this transfer (or its sweep is about to fail it). Refuse
			// the handshake instead of pulling bytes nobody wants.
			e.deadlineExpired.Add(1)
			g.sendControl(KindRdvNack, u.hdr.Tag, u.hdr.MsgID, nackSend, 0)
			req.complete(ErrDeadlineExpired)
			return
		}
		st := e.getRecvRdv()
		st.req = req
		st.gate = g
		st.msgID = u.hdr.MsgID
		st.tag = u.hdr.Tag
		st.deadline = e.clock() + e.cfg.RdvTimeout
		st.absDeadline = absDeadline
		key := rdvKey{gate: g, msgID: u.hdr.MsgID}
		e.mu.Lock()
		e.rdvRecv[key] = st
		e.mu.Unlock()
		if g.pickEager() < 0 || g.alive.Load() <= 0 {
			// Every rail died around this handshake. The failGate
			// sweep may have run before the entry above was inserted,
			// so clean it up here rather than leaving the receive
			// hanging on a sweep that will never run again.
			e.mu.Lock()
			delete(e.rdvRecv, key)
			e.mu.Unlock()
			st.markFailed()
			req.complete(errAllRailsDead)
			return
		}
		if req.traceID != 0 {
			// Transfer phase: match → every byte home (pull reads or
			// pushed data frames alike); finishRecvRdv closes it.
			e.rec.Record(g.id, trace.EvTransferBegin, req.traceID, uint64(u.hdr.Total))
		}
		// Receiver-driven pull when the RTS offers keys we can use;
		// classic clear-to-send push otherwise.
		if !e.cfg.NoRdvPull && len(u.ext) > 0 && e.startPull(g, st, u.ext) {
			return
		}
		g.sendControl(KindCTS, u.hdr.Tag, u.hdr.MsgID, 0, u.hdr.Total)
	default:
		req.complete(fmt.Errorf("nmad: unexpected frame kind %v matched a receive", u.hdr.Kind))
	}
}

// handleFrame dispatches one inbound frame; it runs inside a polling
// task on whatever core scheduled it.
func (e *Engine) handleFrame(g *Gate, f Frame) {
	if r := e.rec; r != nil {
		// Control-plane instants carry the span id of the message they
		// belong to: RTS arrives at the receiver (its span is DirRecv),
		// CTS and FIN come back to the sender (DirSend).
		switch f.Hdr.Kind {
		case KindRTS:
			r.Record(g.id, trace.EvRdvRTS, g.spanID(trace.DirRecv, 0, f.Hdr.MsgID), uint64(f.Hdr.Total))
		case KindCTS:
			r.Record(g.id, trace.EvRdvCTS, g.spanID(trace.DirSend, 0, f.Hdr.MsgID), 0)
		case KindFin:
			r.Record(g.id, trace.EvRdvFin, g.spanID(trace.DirSend, 0, f.Hdr.MsgID), 0)
		}
	}
	switch f.Hdr.Kind {
	case KindEager:
		e.recvEager(g, f.Hdr, f.Payload)

	case KindAggr:
		for _, sub := range unpackAggr(f.Payload) {
			e.recvEager(g, sub.Hdr, sub.Payload)
		}

	case KindEagerAck:
		e.eagerAcked(g, f.Hdr)

	case KindRTS:
		// Retransmitted RTS frames must be idempotent: re-answer a live
		// or settled handshake instead of re-matching it against a
		// fresh receive.
		key := rdvKey{gate: g, msgID: f.Hdr.MsgID}
		e.mu.Lock()
		st := e.rdvRecv[key]
		settled := e.settledRecv.has(key)
		e.mu.Unlock()
		if st != nil {
			st.mu.Lock()
			pull := st.pull
			st.mu.Unlock()
			if !pull {
				// Push mode: the duplicate means our CTS may have been
				// lost; re-send it. Pull mode needs nothing — the reads
				// are ours to drive and the timeout sweep re-issues them.
				g.sendControl(KindCTS, f.Hdr.Tag, f.Hdr.MsgID, 0, f.Hdr.Total)
			}
			return
		}
		if settled {
			// The rendezvous already finished here; the sender is
			// retrying because our FIN was lost. Re-send it.
			g.sendControl(KindFin, f.Hdr.Tag, f.Hdr.MsgID, 0, 0)
			return
		}
		e.matchOrStash(inbound{gate: g, hdr: f.Hdr, payload: nil, ext: f.Ext})

	case KindCTS:
		// The receiver asked for (or fell back to) the classic push:
		// any pull offer is moot, so the registrations can go now.
		key := rdvKey{gate: g, msgID: f.Hdr.MsgID}
		e.mu.Lock()
		st := e.sendRdv[key]
		if st != nil {
			delete(e.sendRdv, key)
			e.settleSendLocked(key)
		}
		settled := st == nil && e.settledSend.has(key)
		e.mu.Unlock()
		if st == nil {
			if settled {
				return // duplicate CTS for a handshake already answered
			}
			// The CTS came from a receive waiting for data.
			g.sendControl(KindRdvNack, f.Hdr.Tag, f.Hdr.MsgID, nackRecv, 0)
			return
		}
		if st.req.traceID != 0 {
			// Push mode: the CTS ends the handshake phase and starts the
			// transfer (striped data fragments; the wire-out of the last
			// one closes it in completeAll).
			e.rec.Record(g.id, trace.EvHandshakeEnd, st.req.traceID, 0)
			e.rec.Record(g.id, trace.EvTransferBegin, st.req.traceID, uint64(len(st.data)))
		}
		st.releaseRegs()
		g.sendRdvData(st, f.Hdr)

	case KindData:
		key := rdvKey{gate: g, msgID: f.Hdr.MsgID}
		e.mu.Lock()
		st := e.rdvRecv[key]
		var req *Request
		if st != nil {
			// Capture under the engine lock: the last fragment's
			// handler recycles the state, so st is off limits after
			// our Add unless we are that handler.
			req = st.req
		}
		e.mu.Unlock()
		if st == nil {
			return
		}
		n := copy(req.Data[f.Hdr.Offset:], f.Payload)
		e.recvCopied.Add(uint64(n))
		// Count coverage, not arrivals: a duplicated or retransmitted
		// fragment lands its bytes again but must not advance the
		// completion counter past what is actually home.
		fresh := st.addCovered(int(f.Hdr.Offset), int(f.Hdr.Offset)+n)
		if fresh > 0 && req.got.Add(uint32(fresh)) >= req.total {
			e.finishRecvRdv(st)
		}

	case KindFin:
		// Pull-mode rendezvous complete: the receiver has every byte,
		// straight out of our user buffer. Release the interned
		// registrations and finish the send.
		key := rdvKey{gate: g, msgID: f.Hdr.MsgID}
		e.mu.Lock()
		st := e.sendRdv[key]
		if st != nil {
			delete(e.sendRdv, key)
			e.settleSendLocked(key)
		}
		e.mu.Unlock()
		if st == nil {
			return
		}
		st.releaseRegs()
		req := st.req
		e.putSendRdv(st)
		if req.traceID != 0 {
			// Pull mode: the handshake phase spans RTS → FIN (the remote
			// pull happens entirely inside it, invisible to the sender).
			e.rec.Record(g.id, trace.EvHandshakeEnd, req.traceID, 0)
		}
		req.complete(nil)

	case KindRdvPush:
		// The receiver cannot pull the byte range [Offset,
		// Offset+Total); push it as ordinary data frames. The
		// rendezvous stays open — other chunks may still be pulling,
		// and the FIN settles everything.
		key := rdvKey{gate: g, msgID: f.Hdr.MsgID}
		e.mu.Lock()
		st := e.sendRdv[key]
		settled := st == nil && e.settledSend.has(key)
		e.mu.Unlock()
		if st == nil {
			if settled {
				return // late push request for a finished handshake
			}
			// The push request came from a receive waiting for data.
			g.sendControl(KindRdvNack, f.Hdr.Tag, f.Hdr.MsgID, nackRecv, 0)
			return
		}
		g.pushRange(st, f.Hdr)

	case KindRdvNack:
		// The peer lost (or never had) its half of a rendezvous this
		// engine is party to: fail whichever side is waiting.
		e.failRendezvousNack(g, f.Hdr)
	}
}

// failRendezvousNack fails the local half of a NACKed rendezvous —
// the send waiting for a FIN/CTS, or the receive waiting for data,
// per the NACK's direction field. The two halves must not be guessed
// between: a gate's send and receive directions share the msgID
// keyspace, so the wrong guess would kill an unrelated healthy
// transfer carrying the same id.
func (e *Engine) failRendezvousNack(g *Gate, hdr Header) {
	key := rdvKey{gate: g, msgID: hdr.MsgID}
	var victim *Request
	e.mu.Lock()
	if hdr.Offset == nackSend {
		if st := e.sendRdv[key]; st != nil {
			st.releaseRegs()
			victim = st.req
			delete(e.sendRdv, key)
			e.settleSendLocked(key)
		}
	} else {
		if st := e.rdvRecv[key]; st != nil {
			st.markFailed()
			victim = st.req
			delete(e.rdvRecv, key)
			e.settleRecvLocked(key)
		}
	}
	e.mu.Unlock()
	if victim != nil {
		victim.complete(errPullRejected)
	}
}

// matchOrStash matches an inbound frame against posted receives, or
// stores it in the unexpected queue — O(1) either way, keyed by
// (gate, tag) with FIFO order per key.
func (e *Engine) matchOrStash(u inbound) {
	key := matchKey{gate: u.gate, tag: u.hdr.Tag}
	e.mu.Lock()
	if q := e.recvQ[key]; q != nil {
		if req, ok := q.pop(); ok {
			dropFIFOIfEmpty(e.recvQ, &e.reqFIFOPool, key, q)
			e.mu.Unlock()
			e.deliverLocked(req, u)
			return
		}
	}
	if u.hdr.Kind == KindRTS {
		// A retransmitted RTS whose original is still waiting here must
		// not stash twice: the duplicate would match a later receive
		// and strand it waiting on a rendezvous the sender only has one
		// of.
		if q := e.unexpected[key]; q != nil {
			for i := q.head; i < len(q.items); i++ {
				if q.items[i].hdr.Kind == KindRTS && q.items[i].hdr.MsgID == u.hdr.MsgID {
					e.mu.Unlock()
					return
				}
			}
		}
		if len(u.ext) > 0 {
			// The pull offer rides provider scratch storage that is
			// only valid for this poll; stashing means keeping it.
			u.ext = append([]byte(nil), u.ext...)
		}
	}
	q := e.unexpected[key]
	if q == nil {
		q = getFIFO[inbound](&e.inbFIFOPool)
		e.unexpected[key] = q
	}
	q.push(u)
	e.mu.Unlock()
}

// sendRdvData stripes the rendezvous payload across the gate's alive
// rails (multirail distribution, sized by Gate.stripe) and ships each
// fragment as its own packet task, executed in parallel when idle
// cores exist. The state is recycled: the packets carry the request.
func (g *Gate) sendRdvData(st *sendRdvState, cts Header) {
	req, data := st.req, st.data
	g.eng.putSendRdv(st)
	sc := g.stripeScratch()
	chunks := g.stripeInto(sc, len(data), nil)
	if len(chunks) == 0 {
		g.putStripeScratch(sc)
		req.complete(errAllRailsDead)
		return
	}
	req.remaining.Add(int32(len(chunks))) // plus the initial 1 consumed below
	for i, c := range chunks {
		if req.traceID != 0 {
			// Per-fragment chunk span, keyed by fragment index in the
			// aux bits; wire-out closes it in completeAll.
			g.eng.rec.Record(g.id, trace.EvChunkBegin,
				g.spanID(trace.DirSend, uint8(i), cts.MsgID), uint64(c.hi-c.lo))
		}
		p := g.packet()
		p.Hdr = Header{
			Kind: KindData, Tag: cts.Tag, MsgID: cts.MsgID,
			FragIdx: uint32(i), FragCnt: uint32(len(chunks)),
			Offset: uint32(c.lo), Total: uint32(len(data)),
		}
		p.Payload = data[c.lo:c.hi]
		p.rail = c.rail
		p.req = req
		g.eng.rdvData.Add(1)
		g.sendPacket(p)
	}
	g.putStripeScratch(sc)
	// Consume the placeholder count from newRequest.
	if req.decRemaining() {
		if req.traceID != 0 {
			// All fragments hit the wire before the placeholder was
			// consumed; completeAll skipped the transfer close, do it now.
			g.eng.rec.Record(g.id, trace.EvTransferEnd, req.traceID, 0)
		}
		req.complete(nil)
	}
}

// pushRange answers a KindRdvPush: stripe the requested byte range of
// a pull-mode rendezvous across the alive rails and ship it as
// ordinary data frames. The frames carry no request — the transfer
// completes through the receiver's FIN — so a frame failure routes to
// the rendezvous state via failRendezvous instead.
func (g *Gate) pushRange(st *sendRdvState, push Header) {
	lo := int(push.Offset)
	n := int(push.Total)
	if lo < 0 || n <= 0 || lo+n > len(st.data) {
		return // malformed request; ignore
	}
	g.eng.rdvPushRanges.Add(1)
	sc := g.stripeScratch()
	chunks := g.stripeInto(sc, n, nil)
	for i, c := range chunks {
		p := g.packet()
		p.Hdr = Header{
			Kind: KindData, Tag: push.Tag, MsgID: push.MsgID,
			FragIdx: uint32(i), FragCnt: uint32(len(chunks)),
			Offset: uint32(lo + c.lo), Total: uint32(len(st.data)),
		}
		p.Payload = st.data[lo+c.lo : lo+c.hi]
		p.rail = c.rail
		g.eng.rdvData.Add(1)
		g.sendPacket(p)
	}
	g.putStripeScratch(sc)
}

// ---- Aggregation strategy ----

// aggPush queues a small message for aggregation and ensures a flush
// task is pending.
func (g *Gate) aggPush(hdr Header, payload []byte, req *Request) {
	g.aggMu.Lock()
	g.aggPending = append(g.aggPending, pendingSend{hdr: hdr, payload: payload, req: req})
	start := !g.aggFlushing
	if start {
		g.aggFlushing = true
	}
	g.aggMu.Unlock()
	if start {
		flush := &core.Task{Fn: func(any) bool {
			g.aggFlush()
			return true
		}}
		g.eng.tasks.MustSubmit(flush)
	}
}

// aggFlush drains the pending queue, packs it into aggregate frames
// bounded by MaxAggr (singletons stay plain), and submits every
// frame's packet task in one core.SubmitAll batch: the burst of frames
// a flush produces pays one queue-lock chain append and one notifier
// wakeup instead of one of each per frame.
func (g *Gate) aggFlush() {
	e := g.eng
	for {
		g.aggMu.Lock()
		pending := g.aggPending
		if len(pending) == 0 {
			g.aggFlushing = false
			g.aggMu.Unlock()
			return
		}
		g.aggPending = nil
		g.aggMu.Unlock()

		reliable := !e.cfg.NoEagerRetry
		rail := g.pickEager()
		if rail < 0 {
			for _, m := range pending {
				if reliable {
					// The pending window owns the request; route the
					// failure through it so the entry is removed too.
					e.failEager(g, m.hdr.MsgID, errAllRailsDead)
				} else {
					m.req.complete(errAllRailsDead)
				}
			}
			continue
		}
		var tasks []*core.Task
		for len(pending) > 0 {
			// Take a batch bounded by MaxAggr payload bytes.
			n, total := 1, len(pending[0].payload)
			for n < len(pending) && total+len(pending[n].payload) <= e.cfg.MaxAggr {
				total += len(pending[n].payload)
				n++
			}
			batch := pending[:n]
			pending = pending[n:]

			p := g.packet()
			p.rail = rail
			if len(batch) == 1 {
				p.Hdr = batch[0].hdr
				p.Payload = batch[0].payload
			} else {
				payload := packAggr(batch, g.getAggBuf())
				p.Hdr = Header{Kind: KindAggr, Total: uint32(len(payload))}
				p.Payload = payload
				p.scratch = payload // returned to the gate pool on recycle
			}
			if reliable {
				// Completion rides the per-message acks, not wire-out.
				for _, m := range batch {
					p.pend = append(p.pend, m.hdr.MsgID)
				}
			} else if len(batch) == 1 {
				p.req = batch[0].req
			} else {
				for _, m := range batch {
					p.reqs = append(p.reqs, m.req)
				}
			}
			tasks = append(tasks, g.preparePacket(p))
		}
		e.tasks.MustSubmitAll(tasks...)
	}
}

// packAggr serializes a batch of eager messages into one frame payload
// — repeated [tag u64 | msgID u64 | size u32 | bytes] — appended onto
// buf's empty prefix. Callers pass a pooled buffer (Gate.getAggBuf);
// nil works and simply allocates.
func packAggr(batch []pendingSend, buf []byte) []byte {
	out := buf[:0]
	var scratch [20]byte
	for _, m := range batch {
		binary.LittleEndian.PutUint64(scratch[0:], m.hdr.Tag)
		binary.LittleEndian.PutUint64(scratch[8:], m.hdr.MsgID)
		binary.LittleEndian.PutUint32(scratch[16:], uint32(len(m.payload)))
		out = append(out, scratch[:]...)
		out = append(out, m.payload...)
	}
	return out
}

// getAggBuf takes an aggregate payload buffer from the gate's pool.
// Buffers come back through recyclePacket once their frame is on the
// wire, so a steady aggregation flow reuses a handful of buffers
// instead of allocating one per frame.
func (g *Gate) getAggBuf() []byte {
	g.aggMu.Lock()
	defer g.aggMu.Unlock()
	if n := len(g.aggBufs); n > 0 {
		buf := g.aggBufs[n-1]
		g.aggBufs[n-1] = nil
		g.aggBufs = g.aggBufs[:n-1]
		return buf
	}
	return make([]byte, 0, g.eng.cfg.MaxAggr+maxAggrSlack)
}

// putAggBuf returns an aggregate payload buffer to the gate's pool.
func (g *Gate) putAggBuf(buf []byte) {
	g.aggMu.Lock()
	g.aggBufs = append(g.aggBufs, buf[:0])
	g.aggMu.Unlock()
}

// maxAggrSlack covers the per-message sub-headers of a packed frame,
// so a pooled buffer sized for MaxAggr payload bytes rarely regrows.
const maxAggrSlack = 64 * 20

// unpackAggr splits an aggregate frame back into eager sub-frames.
func unpackAggr(payload []byte) []Frame {
	var out []Frame
	for len(payload) >= 20 {
		tag := binary.LittleEndian.Uint64(payload[0:])
		msgID := binary.LittleEndian.Uint64(payload[8:])
		size := binary.LittleEndian.Uint32(payload[16:])
		payload = payload[20:]
		if int(size) > len(payload) {
			break // truncated frame; drop the rest
		}
		out = append(out, Frame{
			Hdr:     Header{Kind: KindEager, Tag: tag, MsgID: msgID, Total: size},
			Payload: payload[:size:size],
		})
		payload = payload[size:]
	}
	return out
}
