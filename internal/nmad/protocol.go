package nmad

import (
	"encoding/binary"
	"fmt"

	"pioman/internal/core"
)

// Isend starts a non-blocking send of data to the gate's peer under the
// given tag. Small payloads go eagerly (possibly aggregated); large ones
// negotiate an RTS/CTS rendezvous and stripe the payload across the
// gate's rails. The returned request completes once the payload is on
// the wire (eager, buffered semantics) or fully transferred (rendezvous).
func (g *Gate) Isend(tag uint64, data []byte) *Request {
	e := g.eng
	req := newRequest(e)
	if e.stopped.Load() {
		req.complete(ErrClosed)
		return req
	}
	e.msgsSent.Add(1)
	msgID := g.nextMsgID.Add(1)

	if len(data) <= e.cfg.EagerThreshold {
		e.eagerSent.Add(1)
		hdr := Header{Kind: KindEager, Tag: tag, MsgID: msgID, Total: uint32(len(data))}
		if e.cfg.Strategy == StrategyAggreg {
			g.aggPush(hdr, data, req)
			return req
		}
		rail := g.pickEager()
		if rail < 0 {
			req.complete(errAllRailsDead)
			return req
		}
		p := g.packet()
		p.Hdr = hdr
		p.Payload = data
		p.req = req
		p.rail = rail
		g.sendPacket(p)
		return req
	}

	// Rendezvous: register the payload, announce with an RTS, wait for
	// the CTS to arrive (handled by a polling task) before moving data.
	rail := g.pickEager()
	if rail < 0 {
		req.complete(errAllRailsDead)
		return req
	}
	e.rdvStarted.Add(1)
	st := &sendRdvState{data: data, req: req}
	e.mu.Lock()
	e.sendRdv[rdvKey{gate: g, msgID: msgID}] = st
	e.mu.Unlock()
	p := g.packet()
	p.Hdr = Header{Kind: KindRTS, Tag: tag, MsgID: msgID, Total: uint32(len(data))}
	p.rail = rail
	g.sendPacket(p)
	return req
}

// Send is the blocking convenience wrapper around Isend.
func (g *Gate) Send(tag uint64, data []byte) error {
	return g.Isend(tag, data).Wait()
}

// Irecv posts a non-blocking receive for the next message on (gate,
// tag). On completion the payload is in Request.Data.
func (g *Gate) Irecv(tag uint64) *Request {
	e := g.eng
	req := newRequest(e)
	req.gate = g
	req.tag = tag
	if e.stopped.Load() {
		req.complete(ErrClosed)
		return req
	}
	e.mu.Lock()
	// A matching message may already have arrived unexpectedly.
	for i, u := range e.unexpected {
		if u.gate == g && u.hdr.Tag == tag {
			e.unexpected = append(e.unexpected[:i], e.unexpected[i+1:]...)
			e.mu.Unlock()
			e.deliverLocked(req, u)
			return req
		}
	}
	e.recvQ = append(e.recvQ, req)
	e.mu.Unlock()
	return req
}

// Recv is the blocking convenience wrapper around Irecv.
func (g *Gate) Recv(tag uint64) ([]byte, error) {
	req := g.Irecv(tag)
	if err := req.Wait(); err != nil {
		return nil, err
	}
	return req.Data, nil
}

// Unexpected reports whether a message with the given tag has already
// arrived on this gate without a matching receive — an MPI_Iprobe.
func (g *Gate) Unexpected(tag uint64) bool {
	e := g.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, u := range e.unexpected {
		if u.gate == g && u.hdr.Tag == tag {
			return true
		}
	}
	return false
}

// deliverLocked routes a matched inbound control frame to its receive
// request. Called without e.mu held.
func (e *Engine) deliverLocked(req *Request, u inbound) {
	switch u.hdr.Kind {
	case KindEager:
		e.msgsRecv.Add(1)
		req.Data = u.payload
		req.complete(nil)
	case KindRTS:
		// Set up reassembly and grant the sender a CTS.
		req.total = u.hdr.Total
		req.Data = make([]byte, u.hdr.Total)
		key := rdvKey{gate: u.gate, msgID: u.hdr.MsgID}
		e.mu.Lock()
		e.rdvRecv[key] = req
		e.mu.Unlock()
		rail := u.gate.pickEager()
		if rail < 0 || u.gate.alive.Load() <= 0 {
			// Every rail died around this handshake. The failGate
			// sweep may have run before the entry above was inserted,
			// so clean it up here rather than leaving the receive
			// hanging on a sweep that will never run again.
			e.mu.Lock()
			delete(e.rdvRecv, key)
			e.mu.Unlock()
			req.complete(errAllRailsDead)
			return
		}
		p := u.gate.packet()
		p.Hdr = Header{Kind: KindCTS, Tag: u.hdr.Tag, MsgID: u.hdr.MsgID, Total: u.hdr.Total}
		p.rail = rail
		u.gate.sendPacket(p)
	default:
		req.complete(fmt.Errorf("nmad: unexpected frame kind %v matched a receive", u.hdr.Kind))
	}
}

// handleFrame dispatches one inbound frame; it runs inside a polling
// task on whatever core scheduled it.
func (e *Engine) handleFrame(g *Gate, f Frame) {
	switch f.Hdr.Kind {
	case KindEager:
		e.matchOrStash(inbound{gate: g, hdr: f.Hdr, payload: f.Payload})

	case KindAggr:
		for _, sub := range unpackAggr(f.Payload) {
			e.matchOrStash(inbound{gate: g, hdr: sub.Hdr, payload: sub.Payload})
		}

	case KindRTS:
		e.matchOrStash(inbound{gate: g, hdr: f.Hdr, payload: nil})

	case KindCTS:
		key := rdvKey{gate: g, msgID: f.Hdr.MsgID}
		e.mu.Lock()
		st := e.sendRdv[key]
		delete(e.sendRdv, key)
		e.mu.Unlock()
		if st == nil {
			return
		}
		g.sendRdvData(st, f.Hdr)

	case KindData:
		key := rdvKey{gate: g, msgID: f.Hdr.MsgID}
		e.mu.Lock()
		req := e.rdvRecv[key]
		e.mu.Unlock()
		if req == nil {
			return
		}
		copy(req.Data[f.Hdr.Offset:], f.Payload)
		if req.got.Add(uint32(len(f.Payload))) >= req.total {
			e.mu.Lock()
			delete(e.rdvRecv, key)
			e.mu.Unlock()
			e.msgsRecv.Add(1)
			req.complete(nil)
		}
	}
}

// matchOrStash matches an inbound frame against posted receives, or
// stores it in the unexpected queue.
func (e *Engine) matchOrStash(u inbound) {
	e.mu.Lock()
	for i, req := range e.recvQ {
		if req.gate == u.gate && req.tag == u.hdr.Tag {
			e.recvQ = append(e.recvQ[:i], e.recvQ[i+1:]...)
			e.mu.Unlock()
			e.deliverLocked(req, u)
			return
		}
	}
	e.unexpected = append(e.unexpected, u)
	e.mu.Unlock()
}

// sendRdvData stripes the rendezvous payload across the gate's alive
// rails (multirail distribution, sized by Gate.stripe) and ships each
// fragment as its own packet task, executed in parallel when idle
// cores exist.
func (g *Gate) sendRdvData(st *sendRdvState, cts Header) {
	chunks := g.stripe(len(st.data))
	if len(chunks) == 0 {
		st.req.complete(errAllRailsDead)
		return
	}
	st.req.remaining.Add(int32(len(chunks))) // plus the initial 1 consumed below
	for i, c := range chunks {
		p := g.packet()
		p.Hdr = Header{
			Kind: KindData, Tag: cts.Tag, MsgID: cts.MsgID,
			FragIdx: uint32(i), FragCnt: uint32(len(chunks)),
			Offset: uint32(c.lo), Total: uint32(len(st.data)),
		}
		p.Payload = st.data[c.lo:c.hi]
		p.rail = c.rail
		p.req = st.req
		g.eng.rdvData.Add(1)
		g.sendPacket(p)
	}
	// Consume the placeholder count from newRequest.
	if st.req.decRemaining() {
		st.req.complete(nil)
	}
}

// ---- Aggregation strategy ----

// aggPush queues a small message for aggregation and ensures a flush
// task is pending.
func (g *Gate) aggPush(hdr Header, payload []byte, req *Request) {
	g.aggMu.Lock()
	g.aggPending = append(g.aggPending, pendingSend{hdr: hdr, payload: payload, req: req})
	start := !g.aggFlushing
	if start {
		g.aggFlushing = true
	}
	g.aggMu.Unlock()
	if start {
		flush := &core.Task{Fn: func(any) bool {
			g.aggFlush()
			return true
		}}
		g.eng.tasks.MustSubmit(flush)
	}
}

// aggFlush drains the pending queue, packs it into aggregate frames
// bounded by MaxAggr (singletons stay plain), and submits every
// frame's packet task in one core.SubmitAll batch: the burst of frames
// a flush produces pays one queue-lock chain append and one notifier
// wakeup instead of one of each per frame.
func (g *Gate) aggFlush() {
	e := g.eng
	for {
		g.aggMu.Lock()
		pending := g.aggPending
		if len(pending) == 0 {
			g.aggFlushing = false
			g.aggMu.Unlock()
			return
		}
		g.aggPending = nil
		g.aggMu.Unlock()

		rail := g.pickEager()
		if rail < 0 {
			for _, m := range pending {
				m.req.complete(errAllRailsDead)
			}
			continue
		}
		var tasks []*core.Task
		for len(pending) > 0 {
			// Take a batch bounded by MaxAggr payload bytes.
			n, total := 1, len(pending[0].payload)
			for n < len(pending) && total+len(pending[n].payload) <= e.cfg.MaxAggr {
				total += len(pending[n].payload)
				n++
			}
			batch := pending[:n]
			pending = pending[n:]

			p := g.packet()
			p.rail = rail
			if len(batch) == 1 {
				p.Hdr = batch[0].hdr
				p.Payload = batch[0].payload
				p.req = batch[0].req
			} else {
				payload := packAggr(batch)
				p.Hdr = Header{Kind: KindAggr, Total: uint32(len(payload))}
				p.Payload = payload
				for _, m := range batch {
					p.reqs = append(p.reqs, m.req)
				}
			}
			tasks = append(tasks, g.preparePacket(p))
		}
		e.tasks.MustSubmitAll(tasks...)
	}
}

// packAggr serializes a batch of eager messages into one frame payload:
// repeated [tag u64 | msgID u64 | size u32 | bytes].
func packAggr(batch []pendingSend) []byte {
	size := 0
	for _, m := range batch {
		size += 20 + len(m.payload)
	}
	out := make([]byte, 0, size)
	var scratch [20]byte
	for _, m := range batch {
		binary.LittleEndian.PutUint64(scratch[0:], m.hdr.Tag)
		binary.LittleEndian.PutUint64(scratch[8:], m.hdr.MsgID)
		binary.LittleEndian.PutUint32(scratch[16:], uint32(len(m.payload)))
		out = append(out, scratch[:]...)
		out = append(out, m.payload...)
	}
	return out
}

// unpackAggr splits an aggregate frame back into eager sub-frames.
func unpackAggr(payload []byte) []Frame {
	var out []Frame
	for len(payload) >= 20 {
		tag := binary.LittleEndian.Uint64(payload[0:])
		msgID := binary.LittleEndian.Uint64(payload[8:])
		size := binary.LittleEndian.Uint32(payload[16:])
		payload = payload[20:]
		if int(size) > len(payload) {
			break // truncated frame; drop the rest
		}
		out = append(out, Frame{
			Hdr:     Header{Kind: KindEager, Tag: tag, MsgID: msgID, Total: size},
			Payload: payload[:size:size],
		})
		payload = payload[size:]
	}
	return out
}
