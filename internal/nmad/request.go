package nmad

import (
	"runtime"
	"sync/atomic"

	"pioman/internal/trace"
)

// Request is the completion handle for a non-blocking send or receive.
//
// Requests are pooled by the engine: the steady-state protocol hands
// out recycled handles, and a caller that is done with a successfully
// completed request may return it with Free (the MPI_Request_free
// idiom). The completion channel behind Done is created lazily, so
// Wait-based callers never pay its allocation.
type Request struct {
	eng *Engine

	// done is the lazily created completion channel; doneClosed guards
	// its single close between complete() and a racing Done().
	done       atomic.Pointer[chan struct{}]
	doneClosed atomic.Bool
	// completing is taken exactly once by the winning completer;
	// completed publishes err (written between the two).
	completing atomic.Bool
	completed  atomic.Bool
	err        error

	// Data holds the received payload once a receive completes.
	Data []byte

	// userBuf is the caller-supplied receive buffer (IrecvInto);
	// rendezvous pulls land in it directly, eager payloads are copied.
	userBuf []byte

	// remaining counts outstanding wire operations (rendezvous fragments
	// striped over rails); the request completes when it reaches zero.
	remaining atomic.Int32

	// recv matching state
	gate  *Gate
	tag   uint64
	total uint32
	got   atomic.Uint32

	// traceID is the whole-message span id (trace.PackSpanID) when a
	// flight recorder is attached, 0 otherwise; traceRing is the ring
	// (gate id) its events land on, and postTS the Irecv post stamp a
	// receiver's span begins at. complete() closes the span exactly
	// once, on every completion path — ack, FIN, timeout, NACK, gate
	// failure, engine close.
	traceID   uint64
	traceRing int32
	postTS    int64

	// deadline is the request's absolute deadline on the engine clock
	// (IsendDeadline), 0 for none. Immutable once the request is
	// published to the protocol maps, so sweeps read it without extra
	// synchronization.
	deadline int64
	// admitGate/admitBytes are the admission credits the request holds
	// (admission.go): the gate whose ledger was charged and the byte
	// count. complete() releases them exactly once via its CAS.
	admitGate  *Gate
	admitBytes int64
}

func newRequest(e *Engine) *Request {
	r, _ := e.reqPool.Get().(*Request)
	if r == nil {
		r = &Request{}
	}
	r.eng = e
	r.remaining.Store(1)
	return r
}

// decRemaining reports whether this was the last outstanding operation.
func (r *Request) decRemaining() bool { return r.remaining.Add(-1) == 0 }

// complete finishes the request exactly once.
func (r *Request) complete(err error) {
	if !r.completing.CompareAndSwap(false, true) {
		return
	}
	if r.traceID != 0 {
		// The winning completer closes the whole-message span; riding
		// the CAS makes this exactly-once across every completion path.
		kind := trace.EvRecvEnd
		if trace.SpanDir(r.traceID) == trace.DirSend {
			kind = trace.EvSendEnd
		}
		status := uint64(0)
		if err != nil {
			status = 1
		}
		r.eng.rec.Record(int(r.traceRing), kind, r.traceID, status)
	}
	if r.admitGate != nil {
		// Return the admission credits on this, the single chokepoint
		// every completion path funnels through, and drain any parked
		// submissions they unblock. Runs before completed is published,
		// so an observer that saw the request finish also sees its
		// credits returned — the post-quiesce leak audit depends on it.
		r.eng.admitRelease(r)
	}
	r.err = err
	r.completed.Store(true)
	if chp := r.done.Load(); chp != nil {
		r.closeDone(*chp)
	}
}

// closeDone closes the completion channel exactly once; both complete
// and a racing lazy Done may try.
func (r *Request) closeDone(ch chan struct{}) {
	if r.doneClosed.CompareAndSwap(false, true) {
		close(ch)
	}
}

// Test reports whether the request has completed, without blocking.
func (r *Request) Test() bool { return r.completed.Load() }

// Err returns the completion error (nil before completion). The read
// is synchronized through the completed flag's release/acquire pair.
func (r *Request) Err() error {
	if r.completed.Load() {
		return r.err
	}
	return nil
}

// Done returns a channel closed at completion, for select-based
// waiting. The channel is created on first use.
func (r *Request) Done() <-chan struct{} {
	if chp := r.done.Load(); chp != nil {
		return *chp
	}
	ch := make(chan struct{})
	if r.done.CompareAndSwap(nil, &ch) {
		if r.completed.Load() {
			// complete may have run between our Load and the swap and
			// missed the channel; close it ourselves.
			r.closeDone(ch)
		}
		return ch
	}
	return *r.done.Load()
}

// Wait blocks until the request completes, actively executing pending
// PIOMan tasks meanwhile — the paper's task_wait: a thread blocked on
// communication turns its core into a progression core.
func (r *Request) Wait() error {
	for !r.completed.Load() {
		r.eng.tasks.Schedule(0)
		// Always yield between passes: polling tasks are repeated, so
		// Schedule rarely returns zero, and an unyielding spin would
		// starve the peer's goroutines on oversubscribed hosts.
		runtime.Gosched()
	}
	return r.err
}

// WaitBlocking parks the goroutine until completion without helping
// progression (requires background progression to be running).
func (r *Request) WaitBlocking() error {
	<-r.Done()
	return r.err
}

// Cancel withdraws a request that has not entered the protocol yet and
// completes it with ErrCanceled: a posted receive that has not matched,
// or a send/receive still parked in the admission queue (blocking
// policy) — a parked submission holds no credits and was never
// injected, so it can always be taken back. It reports whether the
// cancellation won: false means the request already matched or was
// injected (or completed), in which case the caller must keep waiting
// for its real outcome. Injected sends cannot be canceled.
func (r *Request) Cancel() bool {
	e := r.eng
	if e == nil {
		return false
	}
	if e.admitCancel(r) {
		r.complete(ErrCanceled)
		return true
	}
	g := r.gate
	if g == nil {
		return false
	}
	key := matchKey{gate: g, tag: r.tag}
	e.mu.Lock()
	removed := false
	if q := e.recvQ[key]; q != nil {
		for i := q.head; i < len(q.items); i++ {
			if q.items[i] == r {
				copy(q.items[i:], q.items[i+1:])
				q.items[len(q.items)-1] = nil
				q.items = q.items[:len(q.items)-1]
				removed = true
				dropFIFOIfEmpty(e.recvQ, &e.reqFIFOPool, key, q)
				break
			}
		}
	}
	e.mu.Unlock()
	if !removed {
		return false
	}
	r.complete(ErrCanceled)
	return true
}

// Free returns a successfully completed request to the engine's pool;
// the caller must not touch it afterwards. Calling Free before
// completion, or after a completion with an error, is a no-op: failure
// paths may still hold references to the handle (a re-striped fragment
// completing late, a conservative failure sweep), so only the clean
// path recycles. Free is optional — unfreed requests are simply
// garbage collected.
func (r *Request) Free() {
	if !r.completed.Load() || r.err != nil {
		return
	}
	e := r.eng
	r.eng = nil
	r.done.Store(nil)
	r.doneClosed.Store(false)
	r.completing.Store(false)
	r.completed.Store(false)
	r.err = nil
	r.Data = nil
	r.userBuf = nil
	r.remaining.Store(0)
	r.gate = nil
	r.tag = 0
	r.total = 0
	r.got.Store(0)
	r.traceID = 0
	r.traceRing = 0
	r.postTS = 0
	r.deadline = 0
	r.admitGate = nil
	r.admitBytes = 0
	e.reqPool.Put(r)
}
