package nmad

import (
	"runtime"
	"sync/atomic"
)

// Request is the completion handle for a non-blocking send or receive.
type Request struct {
	eng *Engine

	done      chan struct{}
	completed atomic.Bool
	err       error

	// Data holds the received payload once a receive completes.
	Data []byte

	// remaining counts outstanding wire operations (rendezvous fragments
	// striped over rails); the request completes when it reaches zero.
	remaining atomic.Int32

	// recv matching state
	gate  *Gate
	tag   uint64
	total uint32
	got   atomic.Uint32
}

func newRequest(e *Engine) *Request {
	r := &Request{eng: e, done: make(chan struct{})}
	r.remaining.Store(1)
	return r
}

// decRemaining reports whether this was the last outstanding operation.
func (r *Request) decRemaining() bool { return r.remaining.Add(-1) == 0 }

// complete finishes the request exactly once.
func (r *Request) complete(err error) {
	if r.completed.CompareAndSwap(false, true) {
		r.err = err
		close(r.done)
	}
}

// Test reports whether the request has completed, without blocking.
func (r *Request) Test() bool { return r.completed.Load() }

// Err returns the completion error (nil before completion). The read is
// synchronized through the done channel.
func (r *Request) Err() error {
	select {
	case <-r.done:
		return r.err
	default:
		return nil
	}
}

// Done returns a channel closed at completion, for select-based waiting.
func (r *Request) Done() <-chan struct{} { return r.done }

// Wait blocks until the request completes, actively executing pending
// PIOMan tasks meanwhile — the paper's task_wait: a thread blocked on
// communication turns its core into a progression core.
func (r *Request) Wait() error {
	for !r.completed.Load() {
		r.eng.tasks.Schedule(0)
		// Always yield between passes: polling tasks are repeated, so
		// Schedule rarely returns zero, and an unyielding spin would
		// starve the peer's goroutines on oversubscribed hosts.
		runtime.Gosched()
	}
	// The channel close happens after the err write in complete();
	// receiving from it makes reading err safe.
	<-r.done
	return r.err
}

// WaitBlocking parks the goroutine until completion without helping
// progression (requires background progression to be running).
func (r *Request) WaitBlocking() error {
	<-r.done
	return r.err
}
