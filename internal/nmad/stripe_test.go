package nmad

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"pioman/internal/core"
	"pioman/internal/fabric"
	"pioman/internal/simtime"
)

// fakeEndpoint is an inert fabric endpoint with a settable envelope
// and backlog, for unit-testing the striping policy without traffic.
type fakeEndpoint struct {
	caps    fabric.Capabilities
	backlog int
}

func (f *fakeEndpoint) Provider() string                  { return "fake" }
func (f *fakeEndpoint) Capabilities() fabric.Capabilities { return f.caps }
func (f *fakeEndpoint) Send(imm, payload []byte) error    { return nil }
func (f *fakeEndpoint) Poll() (fabric.Event, bool, error) { return fabric.Event{}, false, nil }
func (f *fakeEndpoint) Backlog() int                      { return f.backlog }
func (f *fakeEndpoint) Close() error                      { return nil }

// stripeGate builds a bare gate (no engine goroutines) over fake rails.
func stripeGate(even bool, eps ...*fakeEndpoint) *Gate {
	g := &Gate{eng: &Engine{cfg: Config{EvenStripe: even}}}
	for _, ep := range eps {
		g.rails = append(g.rails, &rail{ep: ep})
	}
	g.alive.Store(int32(len(eps)))
	return g
}

func chunkSizes(chunks []chunk) map[int]int {
	out := map[int]int{}
	for _, c := range chunks {
		out[c.rail] += c.hi - c.lo
	}
	return out
}

func TestStripeProportionalToBandwidth(t *testing.T) {
	g := stripeGate(false,
		&fakeEndpoint{caps: fabric.Capabilities{Bandwidth: 8e9}},
		&fakeEndpoint{caps: fabric.Capabilities{Bandwidth: 2e9}},
	)
	const total = 1 << 20
	chunks := g.stripe(total)
	if len(chunks) != 2 {
		t.Fatalf("chunks = %d, want 2", len(chunks))
	}
	sizes := chunkSizes(chunks)
	if sizes[0]+sizes[1] != total {
		t.Fatalf("Σ chunk sizes = %d, want %d", sizes[0]+sizes[1], total)
	}
	// 8:2 split — the fast rail carries 4x the slow rail's share.
	ratio := float64(sizes[0]) / float64(sizes[1])
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("fast/slow share ratio = %.2f, want ≈4", ratio)
	}
}

func TestStripeEvenAblation(t *testing.T) {
	g := stripeGate(true,
		&fakeEndpoint{caps: fabric.Capabilities{Bandwidth: 8e9}},
		&fakeEndpoint{caps: fabric.Capabilities{Bandwidth: 2e9}},
	)
	sizes := chunkSizes(g.stripe(1 << 20))
	if sizes[0] != sizes[1] {
		t.Errorf("even stripe split %d/%d, want equal shares", sizes[0], sizes[1])
	}
}

func TestStripeSkipsBackpressuredRail(t *testing.T) {
	// The fakes report no latency, so their backpressure threshold is
	// the unknown-rail default.
	g := stripeGate(false,
		&fakeEndpoint{caps: fabric.Capabilities{Bandwidth: 8e9}, backlog: defaultBackpressureLimit + 1},
		&fakeEndpoint{caps: fabric.Capabilities{Bandwidth: 2e9}},
	)
	chunks := g.stripe(1 << 20)
	if len(chunks) != 1 || chunks[0].rail != 1 {
		t.Fatalf("chunks = %+v, want everything on the uncongested rail 1", chunks)
	}
	// When every rail is backpressured, congestion stops mattering.
	g.rails[1].ep.(*fakeEndpoint).backlog = defaultBackpressureLimit + 5
	if chunks := g.stripe(1 << 20); len(chunks) != 2 {
		t.Fatalf("all-congested stripe = %+v, want both rails used", chunks)
	}
}

func TestBackpressureLimitTracksBDP(t *testing.T) {
	// 8 GB/s × 50 µs = 400 KB in flight; at the measured 4 KiB average
	// frame size that is ~97 frames of headroom.
	fast := &fakeEndpoint{caps: fabric.Capabilities{Bandwidth: 8e9, Latency: 50 * simtime.Microsecond}}
	g := stripeGate(false, fast)
	r := g.rails[0]
	r.frames.Store(10)
	r.bytes.Store(10 * 4096)
	if got, want := r.bpLimit(fast.caps), 97; got != want {
		t.Errorf("bpLimit = %d, want %d (BDP / avg frame)", got, want)
	}
	// A deep-BDP rail clamps at the ceiling...
	fast.caps.Latency = 10 * simtime.Millisecond
	if got := r.bpLimit(fast.caps); got != maxBackpressureLimit {
		t.Errorf("deep-BDP limit = %d, want clamp at %d", got, maxBackpressureLimit)
	}
	// ...a shallow one at the floor...
	fast.caps.Latency = simtime.Microsecond
	fast.caps.Bandwidth = 1e9
	if got := r.bpLimit(fast.caps); got != minBackpressureLimit {
		t.Errorf("shallow-BDP limit = %d, want clamp at %d", got, minBackpressureLimit)
	}
	// ...and an unknown envelope falls back to the fixed default.
	fast.caps = fabric.Capabilities{Bandwidth: 8e9}
	if got := r.bpLimit(fast.caps); got != defaultBackpressureLimit {
		t.Errorf("unknown-rail limit = %d, want default %d", got, defaultBackpressureLimit)
	}
}

func TestStripeFoldsTinyShares(t *testing.T) {
	g := stripeGate(false,
		&fakeEndpoint{caps: fabric.Capabilities{Bandwidth: 100e9}},
		&fakeEndpoint{caps: fabric.Capabilities{Bandwidth: 1e9}},
	)
	// 16 KiB at 100:1 gives the slow rail ~162 bytes — below the
	// minimum chunk, folded into the fast rail.
	chunks := g.stripe(16 << 10)
	if len(chunks) != 1 || chunks[0].rail != 0 || chunks[0].hi != 16<<10 {
		t.Fatalf("chunks = %+v, want one whole-payload chunk on rail 0", chunks)
	}
}

func TestStripeExcludesDeadRails(t *testing.T) {
	g := stripeGate(false,
		&fakeEndpoint{caps: fabric.Capabilities{Bandwidth: 8e9}},
		&fakeEndpoint{caps: fabric.Capabilities{Bandwidth: 8e9}},
	)
	g.rails[0].dead.Store(true)
	chunks := g.stripe(1 << 20)
	if len(chunks) != 1 || chunks[0].rail != 1 {
		t.Fatalf("chunks = %+v, want everything on the surviving rail", chunks)
	}
	g.rails[1].dead.Store(true)
	if chunks := g.stripe(1 << 20); chunks != nil {
		t.Fatalf("stripe over dead gate = %+v, want nil", chunks)
	}
}

func TestDefaultEngineStealsForLocalitySubmission(t *testing.T) {
	e := NewEngine(Config{})
	defer e.Close()
	if got := e.Tasks().StealPolicy(); got != core.StealFullTree {
		t.Errorf("private engine steal policy = %v, want full-tree", got)
	}
}

// simPair wires one simulated rail between two engines' gates-to-be.
func simPair(f *fabric.SimFabric, caps fabric.Capabilities) (fabric.Endpoint, fabric.Endpoint) {
	a := f.OpenDomain(caps)
	b := f.OpenDomain(caps)
	ea, eb := fabric.Connect(a, b)
	return ea, eb
}

func TestGateOverSimRDMARendezvousUnderRace(t *testing.T) {
	f := fabric.NewSimFabric(fabric.SimConfig{})
	caps := fabric.Capabilities{
		Latency:   1300 * simtime.Nanosecond,
		Bandwidth: 1.5e9,
		MaxInject: 16 << 10,
		RMA:       true,
	}
	ea0, eb0 := simPair(f, caps)
	ea1, eb1 := simPair(f, caps)

	sender := NewEngine(Config{})
	receiver := NewEngine(Config{})
	defer sender.Close()
	defer receiver.Close()
	ga, err := sender.NewGateEndpoints(ea0, ea1)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := receiver.NewGateEndpoints(eb0, eb1)
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent large sends: nmad stripes each across both rails and
	// the simulated provider moves every chunk with its internal
	// rendezvous-by-RMA-read (chunks exceed MaxInject).
	const flows = 4
	var wg sync.WaitGroup
	for flow := 0; flow < flows; flow++ {
		payload := make([]byte, 96<<10)
		for i := range payload {
			payload[i] = byte(i*7 + flow)
		}
		wg.Add(2)
		go func(tag uint64, want []byte) {
			defer wg.Done()
			if err := ga.Send(tag, want); err != nil {
				t.Errorf("send %d: %v", tag, err)
			}
		}(uint64(flow), payload)
		go func(tag uint64, want []byte) {
			defer wg.Done()
			got, err := gb.Recv(tag)
			if err != nil {
				t.Errorf("recv %d: %v", tag, err)
				return
			}
			if !bytes.Equal(got, want) {
				t.Errorf("flow %d payload corrupted", tag)
			}
		}(uint64(flow), payload)
	}
	wg.Wait()

	// The transfers actually rode the RMA path: the receiver pulled
	// chunks with RMA reads on its rails and sent FINs back.
	st := receiver.Stats()
	if st.RdvPulls == 0 || st.RdvPullBytes == 0 {
		t.Errorf("no pull-mode RMA reads recorded: %+v", st)
	}
	if st.RdvFins == 0 {
		t.Error("no pull-mode FIN recorded")
	}
	reads := uint64(0)
	for _, ep := range []fabric.Endpoint{eb0, eb1} {
		_, _, r, _ := ep.(*fabric.SimEndpoint).Stats()
		reads += r
	}
	if reads == 0 {
		t.Error("no RMA reads recorded on the receiver's sim rails")
	}
}

// heterogeneousTransferTime runs one large transfer over a fast+slow
// simulated rail pair and returns the modelled (virtual) duration.
func heterogeneousTransferTime(t *testing.T, even bool, payload []byte) simtime.Duration {
	t.Helper()
	f := fabric.NewSimFabric(fabric.SimConfig{})
	fast := fabric.Capabilities{Latency: simtime.Microsecond, Bandwidth: 8e9, MaxInject: 16 << 10, RMA: true}
	slow := fabric.Capabilities{Latency: 5 * simtime.Microsecond, Bandwidth: 1e9, MaxInject: 16 << 10, RMA: true}
	ea0, eb0 := simPair(f, fast)
	ea1, eb1 := simPair(f, slow)

	// Pull-mode rendezvous stripes on the receiver, so the ablation
	// knob applies there too.
	sender := NewEngine(Config{EvenStripe: even})
	receiver := NewEngine(Config{EvenStripe: even})
	defer sender.Close()
	defer receiver.Close()
	ga, err := sender.NewGateEndpoints(ea0, ea1)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := receiver.NewGateEndpoints(eb0, eb1)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := gb.Recv(9)
		done <- err
	}()
	if err := ga.Send(9, payload); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return simtime.Duration(f.Now())
}

func TestHeterogeneousStripingBeatsEven(t *testing.T) {
	payload := make([]byte, 8<<20)
	evenTime := heterogeneousTransferTime(t, true, payload)
	capTime := heterogeneousTransferTime(t, false, payload)
	t.Logf("8 MiB over 8GB/s + 1GB/s rails: even %v, capability-aware %v (%.0f%%)",
		evenTime, capTime, 100*float64(capTime)/float64(evenTime))
	if float64(capTime) > 0.6*float64(evenTime) {
		t.Errorf("capability-aware striping took %v, want ≤ 60%% of even striping's %v",
			capTime, evenTime)
	}
}

// flakyEndpoint injects send failures for payloads above a threshold,
// so the rendezvous handshake survives and only a data chunk trips the
// rail-death path.
type flakyEndpoint struct {
	fabric.Endpoint
	failAbove int
	failed    atomic.Bool
}

func (f *flakyEndpoint) Send(imm, payload []byte) error {
	if len(payload) > f.failAbove {
		f.failed.Store(true)
		return errors.New("injected rail failure")
	}
	return f.Endpoint.Send(imm, payload)
}

func TestRailDeathRestripesInFlightChunks(t *testing.T) {
	da0, db0 := MemPair()
	da1, db1 := MemPair()
	caps := capsForDriver(da0)
	flaky := &flakyEndpoint{Endpoint: WrapDriver(da0, caps), failAbove: 8 << 10}

	sender := NewEngine(Config{})
	receiver := NewEngine(Config{})
	defer sender.Close()
	defer receiver.Close()
	ga, err := sender.NewGateEndpoints(flaky, WrapDriver(da1, caps))
	if err != nil {
		t.Fatal(err)
	}
	gb, err := receiver.NewGate(db0, db1)
	if err != nil {
		t.Fatal(err)
	}

	// 256 KiB stripes ~128 KiB onto each rail; the flaky rail rejects
	// its chunk, which must be re-routed to the survivor — the request
	// completes cleanly instead of failing.
	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	done := make(chan struct{})
	var got []byte
	var recvErr error
	go func() {
		defer close(done)
		got, recvErr = gb.Recv(5)
	}()
	if err := ga.Send(5, payload); err != nil {
		t.Fatalf("multirail send with one dead rail should survive: %v", err)
	}
	<-done
	if recvErr != nil {
		t.Fatal(recvErr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("re-striped payload corrupted")
	}
	if !flaky.failed.Load() {
		t.Fatal("test did not exercise the failure path")
	}
	if st := sender.Stats(); st.Restripes == 0 {
		t.Error("no re-striped fragments recorded")
	}
	rails := ga.RailStats()
	if !rails[0].Dead {
		t.Error("failed rail not marked dead")
	}
	if rails[1].Dead {
		t.Error("surviving rail marked dead")
	}
	// Traffic keeps flowing on the survivor.
	if err := ga.Send(6, []byte("still alive")); err != nil {
		t.Fatal(err)
	}
	if msg, err := gb.Recv(6); err != nil || string(msg) != "still alive" {
		t.Fatalf("post-death Recv = %q, %v", msg, err)
	}
}

func TestRailStatsTieOut(t *testing.T) {
	sender := NewEngine(Config{})
	receiver := NewEngine(Config{})
	defer sender.Close()
	defer receiver.Close()
	a0, b0 := MemPair()
	a1, b1 := MemPair()
	ga, err := sender.NewGate(a0, a1)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := receiver.NewGate(b0, b1)
	if err != nil {
		t.Fatal(err)
	}

	sent := 0
	for i := 0; i < 10; i++ {
		msg := bytes.Repeat([]byte{byte(i)}, 100)
		sent += len(msg)
		if err := ga.Send(uint64(i), msg); err != nil {
			t.Fatal(err)
		}
		if _, err := gb.Recv(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	big := make([]byte, 256<<10)
	sent += len(big)
	done := make(chan error, 1)
	go func() {
		_, err := gb.Recv(99)
		done <- err
	}()
	if err := ga.Send(99, big); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Σ per-rail payload bytes == Σ request payload bytes (RTS/CTS
	// carry none), and Σ per-rail frames == engine FramesSent.
	var bytesSum, framesSum uint64
	for _, r := range ga.RailStats() {
		bytesSum += r.Bytes
		framesSum += r.Frames
	}
	if bytesSum != uint64(sent) {
		t.Errorf("Σ per-rail bytes = %d, want %d", bytesSum, sent)
	}
	if st := sender.Stats(); framesSum != st.FramesSent {
		t.Errorf("Σ per-rail frames = %d, want FramesSent = %d", framesSum, st.FramesSent)
	}
	// Both rails carried rendezvous data.
	for i, r := range ga.RailStats() {
		if r.Bytes == 0 {
			t.Errorf("rail %d carried no bytes; striping did not spread the payload", i)
		}
	}
}

// benchStripe runs wall-clock transfers over a real-time (TimeScale 1)
// fast+slow simulated rail pair: the acceptance benchmark for
// capability-aware striping. Run BenchmarkStripeHeterogeneous against
// BenchmarkStripeHeterogeneousEven to compare.
func benchStripe(b *testing.B, even bool) {
	f := fabric.NewSimFabric(fabric.SimConfig{TimeScale: 1})
	fast := fabric.Capabilities{Latency: simtime.Microsecond, Bandwidth: 8e9, MaxInject: 16 << 10, RMA: true}
	slow := fabric.Capabilities{Latency: 5 * simtime.Microsecond, Bandwidth: 5e8, MaxInject: 16 << 10, RMA: true}
	ea0, eb0 := simPair(f, fast)
	ea1, eb1 := simPair(f, slow)
	sender := NewEngine(Config{EvenStripe: even})
	receiver := NewEngine(Config{EvenStripe: even})
	defer sender.Close()
	defer receiver.Close()
	ga, err := sender.NewGateEndpoints(ea0, ea1)
	if err != nil {
		b.Fatal(err)
	}
	gb, err := receiver.NewGateEndpoints(eb0, eb1)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 8<<20)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tag := uint64(i)
		done := make(chan error, 1)
		go func() {
			_, err := gb.Recv(tag)
			done <- err
		}()
		if err := ga.Send(tag, payload); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStripeHeterogeneous measures a 4 MiB rendezvous over one
// fast (8 GB/s) and one slow (1 GB/s) simulated rail in real time with
// capability-aware striping. Compare with the Even variant: the
// acceptance bar is ≤ 60% of its wall time.
func BenchmarkStripeHeterogeneous(b *testing.B) { benchStripe(b, false) }

// BenchmarkStripeHeterogeneousEven is the even-striping ablation of
// BenchmarkStripeHeterogeneous (the seed behaviour).
func BenchmarkStripeHeterogeneousEven(b *testing.B) { benchStripe(b, true) }
