package nmad

import (
	"bytes"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// faultyDriver wraps a driver and injects failures on demand.
type faultyDriver struct {
	inner   Driver
	sendErr atomic.Pointer[error]
	pollErr atomic.Pointer[error]
	sends   atomic.Int64
	failKth int64 // fail the k-th send (1-based); 0 = never
}

func (d *faultyDriver) Name() string { return "faulty" }

func (d *faultyDriver) Send(hdr Header, payload []byte) error {
	n := d.sends.Add(1)
	if ep := d.sendErr.Load(); ep != nil {
		return *ep
	}
	if d.failKth > 0 && n == d.failKth {
		return errors.New("injected send failure")
	}
	return d.inner.Send(hdr, payload)
}

func (d *faultyDriver) Poll() (Frame, bool, error) {
	if ep := d.pollErr.Load(); ep != nil {
		return Frame{}, false, *ep
	}
	return d.inner.Poll()
}

func (d *faultyDriver) Close() error { return d.inner.Close() }

func TestSendFailureCompletesRequestWithError(t *testing.T) {
	da, db := MemPair()
	_ = db
	fd := &faultyDriver{inner: da, failKth: 1}
	e := NewEngine(Config{})
	defer e.Close()
	g, err := e.NewGate(fd)
	if err != nil {
		t.Fatal(err)
	}
	req := g.Isend(1, []byte("doomed"))
	if err := req.Wait(); err == nil {
		t.Fatal("send over failing rail should report an error")
	}
}

func TestSendDeathOnLastRailFailsGate(t *testing.T) {
	da, db := MemPair()
	_ = db
	fd := &faultyDriver{inner: da}
	boom := errors.New("wire gone")
	fd.sendErr.Store(&boom)
	e := NewEngine(Config{})
	defer e.Close()
	g, err := e.NewGate(fd)
	if err != nil {
		t.Fatal(err)
	}
	recv := g.Irecv(1)
	// The send kills the gate's only rail; the posted receive must
	// fail too, exactly as a poll-detected death would make it.
	if err := g.Isend(2, []byte("doomed")).Wait(); err == nil {
		t.Fatal("send over dead rail should report an error")
	}
	select {
	case <-recv.Done():
		if recv.Err() == nil {
			t.Error("posted receive should fail when the last rail dies")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("posted receive hung after send-path rail death")
	}
}

func TestBackpressureDoesNotKillRail(t *testing.T) {
	da, db := MemPair()
	// Fire-and-forget eager: nothing polls the peer ring, so the
	// ack-tracked path would (correctly) time every send out. This
	// test is about the transient backpressure contract of buffered
	// sends.
	e := NewEngine(Config{NoEagerRetry: true})
	defer e.Close()
	g, err := e.NewGate(da)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the peer's 4096-slot rx ring (nothing drains db), then one
	// more send must fail with the transient backpressure error while
	// the rail stays alive.
	for i := 0; i < 4096; i++ {
		if err := g.Isend(1, []byte{1}).Wait(); err != nil {
			t.Fatalf("send %d into a non-full ring: %v", i, err)
		}
	}
	if err := g.Isend(1, []byte{1}).Wait(); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("send into full ring = %v, want ErrBackpressure", err)
	}
	if g.RailStats()[0].Dead {
		t.Fatal("transient backpressure marked the rail dead")
	}
	// Drain one slot: the rail works again.
	if _, ok, _ := db.Poll(); !ok {
		t.Fatal("peer ring unexpectedly empty")
	}
	if err := g.Isend(1, []byte{2}).Wait(); err != nil {
		t.Fatalf("send after drain: %v", err)
	}
}

func TestBackpressuredRendezvousFailsVisibly(t *testing.T) {
	da, db := MemPair()
	_ = db
	// Fire-and-forget eager for the ring-filling prelude: nothing
	// polls the peer ring, so ack-tracked sends would time out.
	e := NewEngine(Config{NoEagerRetry: true})
	defer e.Close()
	g, err := e.NewGate(da)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the ring, then start a rendezvous: its RTS control frame
	// hits backpressure and, carrying no request of its own, must fail
	// the waiting send instead of leaving it hanging forever.
	for i := 0; i < 4096; i++ {
		if err := g.Isend(1, []byte{1}).Wait(); err != nil {
			t.Fatalf("send %d into a non-full ring: %v", i, err)
		}
	}
	req := g.Isend(2, make([]byte, 1<<20))
	select {
	case <-req.Done():
		if !errors.Is(req.Err(), ErrBackpressure) {
			t.Errorf("backpressured rendezvous = %v, want ErrBackpressure", req.Err())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("backpressured rendezvous hung instead of failing")
	}
	if g.RailStats()[0].Dead {
		t.Error("backpressure marked the rail dead")
	}
}

func TestReceiveSideDeathPropagatesToPeer(t *testing.T) {
	da0, db0 := MemPair()
	da1, db1 := MemPair()
	fd := &faultyDriver{inner: db1}
	sender := NewEngine(Config{})
	receiver := NewEngine(Config{})
	defer sender.Close()
	defer receiver.Close()
	ga, err := sender.NewGate(da0, da1)
	if err != nil {
		t.Fatal(err)
	}
	caps := capsForDriver(db0)
	gb, err := receiver.NewGateEndpoints(WrapDriver(db0, caps), WrapDriver(fd, caps))
	if err != nil {
		t.Fatal(err)
	}

	// Rail 1 dies on the receiver's side only. The sender still thinks
	// it is alive, but the death closed the transport, so the sender's
	// next striped fragment onto rail 1 fails at Send time and is
	// re-routed — no fragments feed a ring nobody polls.
	boom := errors.New("receiver rail 1 down")
	fd.pollErr.Store(&boom)
	deadline := time.Now().Add(5 * time.Second)
	for !gb.RailStats()[1].Dead {
		if time.Now().After(deadline) {
			t.Fatal("receiver never marked rail 1 dead")
		}
		time.Sleep(time.Millisecond)
	}

	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i * 17)
	}
	done := make(chan struct{})
	var got []byte
	var recvErr error
	go func() {
		defer close(done)
		got, recvErr = gb.Recv(3)
	}()
	if err := ga.Send(3, payload); err != nil {
		t.Fatalf("send after peer-side rail death: %v", err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("rendezvous hung: fragments went to the dead rail")
	}
	if recvErr != nil {
		t.Fatal(recvErr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted after re-route")
	}
	if st := sender.Stats(); st.Restripes == 0 {
		t.Error("sender never re-striped onto the surviving rail")
	}
}

func TestPartialRailDeathFailsReassemblyKeepsGate(t *testing.T) {
	da0, db0 := MemPair()
	da1, db1 := MemPair()
	_ = da1
	fd := &faultyDriver{inner: db1}
	e := NewEngine(Config{})
	defer e.Close()
	caps := capsForDriver(db0)
	g, err := e.NewGateEndpoints(WrapDriver(db0, caps), WrapDriver(fd, caps))
	if err != nil {
		t.Fatal(err)
	}
	recv := g.Irecv(7)

	// Hand-deliver an RTS on the healthy rail: the engine sets up a
	// reassembly and grants a CTS.
	rts := Header{Kind: KindRTS, Tag: 7, MsgID: 1, Total: 1 << 20}
	if err := da0.Send(rts, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		e.mu.Lock()
		n := len(e.rdvRecv)
		e.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reassembly never set up")
		}
		time.Sleep(time.Millisecond)
	}

	// Rail 1 dies. Its in-flight fragments are lost forever, so the
	// reassembly must fail promptly instead of hanging — but the gate
	// survives on rail 0.
	boom := errors.New("rail 1 down")
	fd.pollErr.Store(&boom)
	select {
	case <-recv.Done():
		if recv.Err() == nil {
			t.Error("reassembly should fail when a carrying rail dies")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reassembly hung after partial rail death")
	}
	// Eager traffic still flows over the survivor.
	eager := Header{Kind: KindEager, Tag: 8, MsgID: 2, Total: 10}
	if err := da0.Send(eager, []byte("still here")); err != nil {
		t.Fatal(err)
	}
	if got, err := g.Recv(8); err != nil || string(got) != "still here" {
		t.Fatalf("post-death Recv = %q, %v", got, err)
	}
}

func TestPollFailureFailsOutstandingRequests(t *testing.T) {
	da, db := MemPair()
	_ = db
	fd := &faultyDriver{inner: da}
	e := NewEngine(Config{})
	defer e.Close()
	g, err := e.NewGate(fd)
	if err != nil {
		t.Fatal(err)
	}
	recv := g.Irecv(1)
	// Kill the rail: polling must fail the posted receive promptly.
	boom := errors.New("link down")
	fd.pollErr.Store(&boom)
	select {
	case <-recv.Done():
		if !errors.Is(recv.Err(), boom) {
			t.Errorf("recv error = %v, want link down", recv.Err())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("posted receive hung after rail failure")
	}
}

func TestPollFailureFailsRendezvousSender(t *testing.T) {
	da, db := MemPair()
	_ = db
	fd := &faultyDriver{inner: da}
	e := NewEngine(Config{})
	defer e.Close()
	g, err := e.NewGate(fd)
	if err != nil {
		t.Fatal(err)
	}
	// A large send waits for a CTS that will never come.
	req := g.Isend(2, make([]byte, 1<<20))
	boom := errors.New("link down")
	fd.pollErr.Store(&boom)
	select {
	case <-req.Done():
		if req.Err() == nil {
			t.Error("rendezvous sender should observe the failure")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rendezvous sender hung after rail failure")
	}
}

func TestTCPPeerDisappearsMidStream(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			accepted <- conn
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	peer := <-accepted

	e := NewEngine(Config{})
	defer e.Close()
	g, err := e.NewGate(NewTCP(conn))
	if err != nil {
		t.Fatal(err)
	}
	recv := g.Irecv(1)
	// The peer vanishes without a clean shutdown.
	peer.Close()
	select {
	case <-recv.Done():
		if recv.Err() == nil {
			t.Error("receive should fail when the TCP peer disappears")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("receive hung after TCP peer closed the connection")
	}
}

func TestHealthyGateUnaffectedByFailingGate(t *testing.T) {
	e := NewEngine(Config{})
	defer e.Close()
	// Gate A fails; gate B (same engine) keeps working.
	da, _ := MemPair()
	fd := &faultyDriver{inner: da}
	ga, err := e.NewGate(fd)
	if err != nil {
		t.Fatal(err)
	}
	peerEngine := NewEngine(Config{})
	defer peerEngine.Close()
	db1, db2 := MemPair()
	gb, err := e.NewGate(db1)
	if err != nil {
		t.Fatal(err)
	}
	gPeer, err := peerEngine.NewGate(db2)
	if err != nil {
		t.Fatal(err)
	}

	doomed := ga.Irecv(1)
	boom := errors.New("down")
	fd.pollErr.Store(&boom)
	<-doomed.Done()

	// Traffic on the healthy gate still flows.
	if err := gb.Send(5, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	data, err := gPeer.Recv(5)
	if err != nil || string(data) != "alive" {
		t.Fatalf("healthy gate Recv = %q, %v", data, err)
	}
}
