package nmad

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// faultyDriver wraps a driver and injects failures on demand.
type faultyDriver struct {
	inner   Driver
	sendErr atomic.Pointer[error]
	pollErr atomic.Pointer[error]
	sends   atomic.Int64
	failKth int64 // fail the k-th send (1-based); 0 = never
}

func (d *faultyDriver) Name() string { return "faulty" }

func (d *faultyDriver) Send(hdr Header, payload []byte) error {
	n := d.sends.Add(1)
	if ep := d.sendErr.Load(); ep != nil {
		return *ep
	}
	if d.failKth > 0 && n == d.failKth {
		return errors.New("injected send failure")
	}
	return d.inner.Send(hdr, payload)
}

func (d *faultyDriver) Poll() (Frame, bool, error) {
	if ep := d.pollErr.Load(); ep != nil {
		return Frame{}, false, *ep
	}
	return d.inner.Poll()
}

func (d *faultyDriver) Close() error { return d.inner.Close() }

func TestSendFailureCompletesRequestWithError(t *testing.T) {
	da, db := MemPair()
	_ = db
	fd := &faultyDriver{inner: da, failKth: 1}
	e := NewEngine(Config{})
	defer e.Close()
	g, err := e.NewGate(fd)
	if err != nil {
		t.Fatal(err)
	}
	req := g.Isend(1, []byte("doomed"))
	if err := req.Wait(); err == nil {
		t.Fatal("send over failing rail should report an error")
	}
}

func TestPollFailureFailsOutstandingRequests(t *testing.T) {
	da, db := MemPair()
	_ = db
	fd := &faultyDriver{inner: da}
	e := NewEngine(Config{})
	defer e.Close()
	g, err := e.NewGate(fd)
	if err != nil {
		t.Fatal(err)
	}
	recv := g.Irecv(1)
	// Kill the rail: polling must fail the posted receive promptly.
	boom := errors.New("link down")
	fd.pollErr.Store(&boom)
	select {
	case <-recv.Done():
		if !errors.Is(recv.Err(), boom) {
			t.Errorf("recv error = %v, want link down", recv.Err())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("posted receive hung after rail failure")
	}
}

func TestPollFailureFailsRendezvousSender(t *testing.T) {
	da, db := MemPair()
	_ = db
	fd := &faultyDriver{inner: da}
	e := NewEngine(Config{})
	defer e.Close()
	g, err := e.NewGate(fd)
	if err != nil {
		t.Fatal(err)
	}
	// A large send waits for a CTS that will never come.
	req := g.Isend(2, make([]byte, 1<<20))
	boom := errors.New("link down")
	fd.pollErr.Store(&boom)
	select {
	case <-req.Done():
		if req.Err() == nil {
			t.Error("rendezvous sender should observe the failure")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rendezvous sender hung after rail failure")
	}
}

func TestTCPPeerDisappearsMidStream(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			accepted <- conn
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	peer := <-accepted

	e := NewEngine(Config{})
	defer e.Close()
	g, err := e.NewGate(NewTCP(conn))
	if err != nil {
		t.Fatal(err)
	}
	recv := g.Irecv(1)
	// The peer vanishes without a clean shutdown.
	peer.Close()
	select {
	case <-recv.Done():
		if recv.Err() == nil {
			t.Error("receive should fail when the TCP peer disappears")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("receive hung after TCP peer closed the connection")
	}
}

func TestHealthyGateUnaffectedByFailingGate(t *testing.T) {
	e := NewEngine(Config{})
	defer e.Close()
	// Gate A fails; gate B (same engine) keeps working.
	da, _ := MemPair()
	fd := &faultyDriver{inner: da}
	ga, err := e.NewGate(fd)
	if err != nil {
		t.Fatal(err)
	}
	peerEngine := NewEngine(Config{})
	defer peerEngine.Close()
	db1, db2 := MemPair()
	gb, err := e.NewGate(db1)
	if err != nil {
		t.Fatal(err)
	}
	gPeer, err := peerEngine.NewGate(db2)
	if err != nil {
		t.Fatal(err)
	}

	doomed := ga.Irecv(1)
	boom := errors.New("down")
	fd.pollErr.Store(&boom)
	<-doomed.Done()

	// Traffic on the healthy gate still flows.
	if err := gb.Send(5, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	data, err := gPeer.Recv(5)
	if err != nil || string(data) != "alive" {
		t.Fatalf("healthy gate Recv = %q, %v", data, err)
	}
}
