package nmad

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"pioman/internal/core"
	"pioman/internal/sched"
	"pioman/internal/topology"
)

// TestSchedDrivenProgression runs the communication engine with no
// dedicated progression goroutine: every poll, send and handshake task
// executes from the thread scheduler's keypoints (idle VPs, context
// switches, timer ticks) — the full PIOMan/Marcel/NewMadeleine
// integration of the paper.
func TestSchedDrivenProgression(t *testing.T) {
	topo := topology.Borderline()
	rt := sched.NewRuntime(sched.Config{Topology: topo, TimerInterval: 50 * time.Microsecond})
	tasks := core.New(core.Config{Topology: topo})
	sched.Bind(rt, tasks, sched.BindConfig{})

	ea := NewEngine(Config{Tasks: tasks, NoAutoProgress: true})
	eb := NewEngine(Config{Tasks: tasks, NoAutoProgress: true})
	defer ea.Close()
	defer eb.Close()
	da, db := MemPair()
	ga, err := ea.NewGate(da)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := eb.NewGate(db)
	if err != nil {
		t.Fatal(err)
	}

	rt.Start()
	defer rt.StopAndWait()

	// Small eager message, completed purely by keypoint-driven tasks.
	sreq := ga.Isend(1, []byte("keypoints"))
	rreq := gb.Irecv(1)
	waitVia := func(req *Request) error {
		select {
		case <-req.Done():
			return req.Err()
		case <-time.After(10 * time.Second):
			return errTimeout
		}
	}
	if err := waitVia(sreq); err != nil {
		t.Fatal(err)
	}
	if err := waitVia(rreq); err != nil {
		t.Fatal(err)
	}
	if string(rreq.Data) != "keypoints" {
		t.Fatalf("Data = %q", rreq.Data)
	}

	// Large rendezvous message the same way.
	big := make([]byte, 128<<10)
	for i := range big {
		big[i] = byte(i * 5)
	}
	rreq2 := gb.Irecv(2)
	sreq2 := ga.Isend(2, big)
	if err := waitVia(sreq2); err != nil {
		t.Fatal(err)
	}
	if err := waitVia(rreq2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rreq2.Data, big) {
		t.Fatal("rendezvous payload corrupted under sched-driven progression")
	}
}

// errTimeout is the sentinel for the wait-timeout branch above.
var errTimeout = errors.New("timed out waiting for keypoint-driven completion")
