package nmad

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/simtime"
)

// Receiver-driven pull rendezvous: acceptance tests. The headline
// claims are proven by counters, not vibes — the simulated fabric
// counts host copies (inject buffering, rendezvous staging) separately
// from RMA-read DMA, and the engines count receive-path memcpys — and
// by the deterministic virtual clock.

// pullRig is a two-engine pair over two RMA-capable simulated rails
// with manually driven progression, so runs replay deterministically.
type pullRig struct {
	f                *fabric.SimFabric
	sender, receiver *Engine
	ga, gb           *Gate
	sEps, rEps       [2]*fabric.SimEndpoint
}

func newPullRig(t testing.TB, pull bool) *pullRig {
	t.Helper()
	r := &pullRig{f: fabric.NewSimFabric(fabric.SimConfig{})}
	fast := fabric.Capabilities{Latency: simtime.Microsecond, Bandwidth: 8e9, MaxInject: 16 << 10, RMA: true}
	slow := fabric.Capabilities{Latency: 5 * simtime.Microsecond, Bandwidth: 1e9, MaxInject: 16 << 10, RMA: true}
	for i, caps := range []fabric.Capabilities{fast, slow} {
		a := r.f.OpenDomain(caps)
		b := r.f.OpenDomain(caps)
		r.sEps[i], r.rEps[i] = fabric.Connect(a, b)
	}
	r.sender = NewEngine(Config{NoAutoProgress: true, NoRdvPull: !pull})
	r.receiver = NewEngine(Config{NoAutoProgress: true, NoRdvPull: !pull})
	var err error
	if r.ga, err = r.sender.NewGateEndpoints(r.sEps[0], r.sEps[1]); err != nil {
		t.Fatal(err)
	}
	if r.gb, err = r.receiver.NewGateEndpoints(r.rEps[0], r.rEps[1]); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *pullRig) close() {
	r.sender.Close()
	r.receiver.Close()
}

// transfer moves one tagged message, driving both engines from this
// goroutine.
func (r *pullRig) transfer(t testing.TB, tag uint64, payload, recvBuf []byte) *Request {
	t.Helper()
	var rreq *Request
	if recvBuf != nil {
		rreq = r.gb.IrecvInto(tag, recvBuf)
	} else {
		rreq = r.gb.Irecv(tag)
	}
	sreq := r.ga.Isend(tag, payload)
	for !(rreq.Test() && sreq.Test()) {
		r.sender.Tasks().Schedule(0)
		r.receiver.Tasks().Schedule(0)
	}
	if err := sreq.Err(); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := rreq.Err(); err != nil {
		t.Fatalf("recv: %v", err)
	}
	return rreq
}

// TestPullZeroCopyBeatsPush is the tentpole acceptance test: an 8 MiB
// rendezvous over two RMA-capable rails moves the payload with zero
// receive-path host copies and no sender staging copy, against the
// push path's 3× payload bytes of host copying — and the pull
// protocol's modelled completion time is no worse.
func TestPullZeroCopyBeatsPush(t *testing.T) {
	const size = 8 << 20
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i*31 + i>>9)
	}

	// Push ablation first (NoRdvPull): the classic CTS/KindData path.
	push := newPullRig(t, false)
	rreq := push.transfer(t, 1, payload, nil)
	if !bytes.Equal(rreq.Data, payload) {
		t.Fatal("push payload corrupted")
	}
	pushTime := simtime.Duration(push.f.Now())
	pushSim := push.f.Stats()
	pushRecv := push.receiver.Stats()
	push.close()
	if pushSim.StagedCopiedBytes < size {
		t.Errorf("push staging copies = %d bytes, expected ≥ payload (%d)", pushSim.StagedCopiedBytes, size)
	}
	if pushRecv.RecvCopiedBytes != size {
		t.Errorf("push receive-path copies = %d bytes, want exactly the payload (%d)", pushRecv.RecvCopiedBytes, size)
	}

	// Pull mode: the same transfer, receiver-driven.
	pull := newPullRig(t, true)
	defer pull.close()
	rreq = pull.transfer(t, 1, payload, nil)
	if !bytes.Equal(rreq.Data, payload) {
		t.Fatal("pull payload corrupted")
	}
	pullTime := simtime.Duration(pull.f.Now())
	pullSim := pull.f.Stats()
	pullRecv := pull.receiver.Stats()

	t.Logf("8 MiB rendezvous: push %v (staged %d B, recv-copied %d B) vs pull %v (staged %d B, recv-copied %d B, RMA-read %d B)",
		pushTime, pushSim.StagedCopiedBytes, pushRecv.RecvCopiedBytes,
		pullTime, pullSim.StagedCopiedBytes, pullRecv.RecvCopiedBytes, pullSim.RMAReadBytes)

	if pullSim.StagedCopiedBytes != 0 {
		t.Errorf("pull staged %d bytes; the sender must not stage", pullSim.StagedCopiedBytes)
	}
	if pullRecv.RecvCopiedBytes != 0 {
		t.Errorf("pull copied %d bytes on the receive path; want zero", pullRecv.RecvCopiedBytes)
	}
	if pullSim.RMAReadBytes != size {
		t.Errorf("RMA reads moved %d bytes, want the whole payload (%d)", pullSim.RMAReadBytes, size)
	}
	if pullSim.InjectCopiedBytes >= 1024 {
		t.Errorf("pull buffered %d control bytes; the handshake should be a few frames", pullSim.InjectCopiedBytes)
	}
	if pullRecv.RdvPulls == 0 || pullRecv.RdvFins != 1 {
		t.Errorf("pull protocol counters off: %+v", pullRecv)
	}
	if pullTime > pushTime {
		t.Errorf("pull took %v, push %v; pull must be no slower on the modelled clock", pullTime, pushTime)
	}
}

// TestPullRegistrationCacheReuse: repeated sends of one buffer
// register once per rail domain and never again — the rcache hit path
// — and closing the engines releases every region (no MemoryRegion
// leaks after N pull-mode rendezvous).
func TestPullRegistrationCacheReuse(t *testing.T) {
	r := newPullRig(t, true)
	payload := make([]byte, 1<<20)
	recvBuf := make([]byte, 1<<20)
	const msgs = 16
	for m := 0; m < msgs; m++ {
		rreq := r.transfer(t, uint64(m), payload, recvBuf)
		rreq.Free()
	}
	st := r.f.Stats()
	if st.Registrations != 2 {
		t.Errorf("registrations = %d after %d sends of one buffer, want 2 (one per rail domain)", st.Registrations, msgs)
	}
	if st.LiveRegions != 2 {
		t.Errorf("live regions = %d, want the 2 cached registrations", st.LiveRegions)
	}
	for _, c := range r.ga.regCaches {
		cs := c.Stats()
		if cs.LiveRefs != 0 {
			t.Errorf("cache holds %d refs after all FINs; regions not released", cs.LiveRefs)
		}
		if cs.Hits == 0 {
			t.Error("no cache hits recorded across repeated sends")
		}
	}
	// Re-registering the same base at a different length invalidates.
	rreq := r.transfer(t, 100, payload[:512<<10], recvBuf)
	rreq.Free()
	for _, c := range r.ga.regCaches {
		if cs := c.Stats(); cs.Invalidations != 1 {
			t.Errorf("invalidations = %d after length change, want 1", cs.Invalidations)
		}
	}
	r.close()
	if st := r.f.Stats(); st.LiveRegions != 0 {
		t.Errorf("%d regions leaked past engine Close", st.LiveRegions)
	}
}

// TestPullSenderRegionsReleasedOnFinLoss: when the gate fails mid-pull
// (every rail dies before the FIN can arrive), the failure sweep
// releases the sender's region references — nothing stays pinned by a
// handshake that will never finish.
func TestPullSenderRegionsReleasedOnFinLoss(t *testing.T) {
	r := newPullRig(t, true)
	defer r.close()
	payload := make([]byte, 1<<20)

	sreq := r.ga.Isend(5, payload)
	// Drive only the sender: the RTS goes out, the receiver never runs,
	// no FIN will ever come.
	for i := 0; i < 50; i++ {
		r.sender.Tasks().Schedule(0)
	}
	refs := 0
	for _, c := range r.ga.regCaches {
		refs += c.Stats().LiveRefs
	}
	if refs == 0 {
		t.Fatal("pull offer registered nothing; test setup is wrong")
	}

	// A rail dies under the sender (its poll errors out). The sweep
	// kills the CTS/FIN-waiting rendezvous conservatively — the FIN
	// may have been in flight on the dead rail — and must drop the
	// region references with it.
	r.sEps[0].Close()
	for i := 0; i < 200 && !sreq.Test(); i++ {
		r.sender.Tasks().Schedule(0)
	}
	if sreq.Err() == nil {
		t.Fatal("send should fail when the gate dies mid-pull")
	}
	for _, c := range r.ga.regCaches {
		if cs := c.Stats(); cs.LiveRefs != 0 {
			t.Errorf("cache still holds %d refs after gate failure; FIN-loss leak", cs.LiveRefs)
		}
	}
}

// failingPullEndpoint wraps a SimEndpoint (keeping its RMA and Domain
// faces) and injects a poll error on demand — the receiver-side rail
// death switch. With failOnRead armed, posting an RMARead arms the
// poll error synchronously, so the read is guaranteed to still be in
// flight (wall-gated wire time) when the rail reports dead — no
// watcher-goroutine race against the transfer.
type failingPullEndpoint struct {
	*fabric.SimEndpoint
	pollErr    atomic.Pointer[error]
	failOnRead atomic.Bool
}

func (f *failingPullEndpoint) Poll() (fabric.Event, bool, error) {
	if ep := f.pollErr.Load(); ep != nil {
		return fabric.Event{}, false, *ep
	}
	return f.SimEndpoint.Poll()
}

func (f *failingPullEndpoint) RMARead(key fabric.RKey, offset int, local []byte, ctx any) error {
	err := f.SimEndpoint.RMARead(key, offset, local, ctx)
	if err == nil && f.failOnRead.Load() {
		boom := errors.New("receiver rail down mid-pull")
		f.pollErr.Store(&boom)
	}
	return err
}

// TestPullRailDeathReissuesOnSurvivor: a rail dying mid-pull re-issues
// its outstanding chunks on the survivors without corrupting req.Data.
// The fabric runs wall-gated (TimeScale 1) so the reads are genuinely
// in flight when the rail dies.
func TestPullRailDeathReissuesOnSurvivor(t *testing.T) {
	f := fabric.NewSimFabric(fabric.SimConfig{TimeScale: 1})
	caps := fabric.Capabilities{Latency: simtime.Microsecond, Bandwidth: 1e9, MaxInject: 16 << 10, RMA: true}
	var sEps [2]fabric.Endpoint
	var rEps [2]*fabric.SimEndpoint
	for i := 0; i < 2; i++ {
		a := f.OpenDomain(caps)
		b := f.OpenDomain(caps)
		sEps[i], rEps[i] = fabric.Connect(a, b)
	}
	flaky := &failingPullEndpoint{SimEndpoint: rEps[0]}
	flaky.failOnRead.Store(true)

	sender := NewEngine(Config{})
	receiver := NewEngine(Config{})
	defer sender.Close()
	defer receiver.Close()
	ga, err := sender.NewGateEndpoints(sEps[0], sEps[1])
	if err != nil {
		t.Fatal(err)
	}
	gb, err := receiver.NewGateEndpoints(flaky, rEps[1])
	if err != nil {
		t.Fatal(err)
	}

	// 8 MiB at 2 × 1 GB/s is ~4 ms of wire time per rail. Rail 0 arms
	// its own poll error the moment its pull is posted (failOnRead), so
	// the read is in flight when the rail dies — deterministically,
	// however the test goroutines are scheduled.
	payload := make([]byte, 8<<20)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	done := make(chan struct{})
	var got []byte
	var recvErr error
	go func() {
		defer close(done)
		got, recvErr = gb.Recv(9)
	}()
	sreq := ga.Isend(9, payload)

	<-done
	if recvErr != nil {
		t.Fatalf("pull transfer should survive a rail death: %v", recvErr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("re-pulled payload corrupted")
	}
	if err := sreq.Wait(); err != nil {
		t.Fatalf("sender should complete via FIN: %v", err)
	}
	st := receiver.Stats()
	if st.RdvPulls < 3 && st.RdvPushRanges == 0 {
		t.Errorf("no re-issued chunk recorded after rail death: %+v", st)
	}
	if !gb.RailStats()[0].Dead {
		t.Error("failed rail not marked dead")
	}
	if gb.RailStats()[1].Dead {
		t.Error("surviving rail marked dead")
	}
}

// TestConcurrentPullsWithCapabilitySwapUnderRace stripes concurrent
// pulls over two rails while SetCapabilities swaps their bandwidths
// mid-stream — the -race guard over the pull state machine, the
// registration cache and the receiver-side striping.
func TestConcurrentPullsWithCapabilitySwapUnderRace(t *testing.T) {
	f := fabric.NewSimFabric(fabric.SimConfig{})
	fast := fabric.Capabilities{Latency: simtime.Microsecond, Bandwidth: 8e9, MaxInject: 16 << 10, RMA: true}
	slow := fabric.Capabilities{Latency: 2 * simtime.Microsecond, Bandwidth: 1e9, MaxInject: 16 << 10, RMA: true}
	var sEps, rEps [2]fabric.Endpoint
	var doms [2][2]*fabric.SimDomain
	for i, caps := range []fabric.Capabilities{fast, slow} {
		a := f.OpenDomain(caps)
		b := f.OpenDomain(caps)
		sEps[i], rEps[i] = fabric.Connect(a, b)
		doms[i] = [2]*fabric.SimDomain{a, b}
	}
	sender := NewEngine(Config{})
	receiver := NewEngine(Config{})
	defer sender.Close()
	defer receiver.Close()
	ga, err := sender.NewGateEndpoints(sEps[0], sEps[1])
	if err != nil {
		t.Fatal(err)
	}
	gb, err := receiver.NewGateEndpoints(rEps[0], rEps[1])
	if err != nil {
		t.Fatal(err)
	}

	const flows = 6
	var wg sync.WaitGroup
	for flow := 0; flow < flows; flow++ {
		payload := make([]byte, 1<<20)
		for i := range payload {
			payload[i] = byte(i*7 + flow)
		}
		wg.Add(2)
		go func(tag uint64, want []byte) {
			defer wg.Done()
			if err := ga.Send(tag, want); err != nil {
				t.Errorf("send %d: %v", tag, err)
			}
		}(uint64(flow), payload)
		go func(tag uint64, want []byte) {
			defer wg.Done()
			got, err := gb.Recv(tag)
			if err != nil {
				t.Errorf("recv %d: %v", tag, err)
				return
			}
			if !bytes.Equal(got, want) {
				t.Errorf("flow %d payload corrupted", tag)
			}
		}(uint64(flow), payload)
		if flow == flows/2 {
			// Swap the rails' bandwidths mid-stream, concurrently with
			// in-flight pulls.
			degraded, upgraded := fast, slow
			degraded.Bandwidth, upgraded.Bandwidth = slow.Bandwidth, fast.Bandwidth
			for _, d := range doms[0] {
				d.SetCapabilities(degraded)
			}
			for _, d := range doms[1] {
				d.SetCapabilities(upgraded)
			}
		}
	}
	wg.Wait()
	if st := receiver.Stats(); st.RdvPulls == 0 {
		t.Errorf("no pulls recorded: %+v", st)
	}
}

// TestPullMixedRailsFallsBackPerRail: a gate mixing one RMA rail with
// one classic mem rail pulls over the RMA rail only — the offer names
// just the pullable rail, and the whole payload arrives through it.
func TestPullMixedRailsFallsBackPerRail(t *testing.T) {
	f := fabric.NewSimFabric(fabric.SimConfig{})
	caps := fabric.Capabilities{Latency: simtime.Microsecond, Bandwidth: 8e9, MaxInject: 16 << 10, RMA: true}
	a := f.OpenDomain(caps)
	b := f.OpenDomain(caps)
	ea, eb := fabric.Connect(a, b)
	da, db := MemPair()

	sender := NewEngine(Config{})
	receiver := NewEngine(Config{})
	defer sender.Close()
	defer receiver.Close()
	mcaps := capsForDriver(da)
	ga, err := sender.NewGateEndpoints(ea, WrapDriver(da, mcaps))
	if err != nil {
		t.Fatal(err)
	}
	gb, err := receiver.NewGateEndpoints(eb, WrapDriver(db, mcaps))
	if err != nil {
		t.Fatal(err)
	}

	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	done := make(chan error, 1)
	var got []byte
	go func() {
		var err error
		got, err = gb.Recv(4)
		done <- err
	}()
	if err := ga.Send(4, payload); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("mixed-rail pull corrupted the payload")
	}
	st := receiver.Stats()
	if st.RdvPulls == 0 || st.RdvPullBytes != uint64(len(payload)) {
		t.Errorf("expected the whole payload pulled over the RMA rail: %+v", st)
	}
}

// TestIrecvIntoShortBufferFailsBothSides: a posted buffer too small
// for the matched rendezvous fails the receive locally and NACKs the
// sender, which fails too instead of waiting for a FIN forever.
func TestIrecvIntoShortBufferFailsBothSides(t *testing.T) {
	r := newPullRig(t, true)
	defer r.close()
	payload := make([]byte, 256<<10)
	rreq := r.gb.IrecvInto(7, make([]byte, 1024))
	sreq := r.ga.Isend(7, payload)
	for !(rreq.Test() && sreq.Test()) {
		r.sender.Tasks().Schedule(0)
		r.receiver.Tasks().Schedule(0)
	}
	if !errors.Is(rreq.Err(), errShortRecvBuffer) {
		t.Errorf("recv error = %v, want short-buffer", rreq.Err())
	}
	if sreq.Err() == nil {
		t.Error("sender should fail on the NACK instead of hanging")
	}
	for _, c := range r.ga.regCaches {
		if cs := c.Stats(); cs.LiveRefs != 0 {
			t.Errorf("cache still holds %d refs after NACK", cs.LiveRefs)
		}
	}
}

// TestIrecvIntoEagerCopies: eager messages land in the caller's buffer
// by one counted copy.
func TestIrecvIntoEagerCopies(t *testing.T) {
	r := newPullRig(t, true)
	defer r.close()
	buf := make([]byte, 64)
	rreq := r.transfer(t, 3, []byte("into the user buffer"), buf)
	if string(rreq.Data) != "into the user buffer" {
		t.Errorf("Data = %q", rreq.Data)
	}
	if &buf[0] != &rreq.Data[0] {
		t.Error("Data does not alias the caller's buffer")
	}
	if st := r.receiver.Stats(); st.RecvCopiedBytes != uint64(len(rreq.Data)) {
		t.Errorf("RecvCopiedBytes = %d, want %d", st.RecvCopiedBytes, len(rreq.Data))
	}
}

// ---- Benchmarks: the steady-state allocation bar ----

// pullBenchRig wires two engines over loopback-RMA rails (wall clock,
// no simulation) for the allocation benchmarks.
func pullBenchRig(b *testing.B, pull bool) (*Engine, *Engine, *Gate, *Gate) {
	b.Helper()
	la0, lb0 := fabric.NewLoopbackRMA()
	la1, lb1 := fabric.NewLoopbackRMA()
	sender := NewEngine(Config{NoRdvPull: !pull})
	receiver := NewEngine(Config{NoRdvPull: !pull})
	ga, err := sender.NewGateEndpoints(la0, la1)
	if err != nil {
		b.Fatal(err)
	}
	gb, err := receiver.NewGateEndpoints(lb0, lb1)
	if err != nil {
		b.Fatal(err)
	}
	return sender, receiver, ga, gb
}

func benchRdv(b *testing.B, pull bool) {
	sender, receiver, ga, gb := pullBenchRig(b, pull)
	defer sender.Close()
	defer receiver.Close()
	payload := make([]byte, 256<<10)
	recvBuf := make([]byte, len(payload))
	// Warm up the pools and the registration cache.
	for i := 0; i < 8; i++ {
		rreq := gb.IrecvInto(uint64(i), recvBuf)
		sreq := ga.Isend(uint64(i), payload)
		if err := sreq.Wait(); err != nil {
			b.Fatal(err)
		}
		if err := rreq.Wait(); err != nil {
			b.Fatal(err)
		}
		sreq.Free()
		rreq.Free()
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tag := uint64(100 + i)
		rreq := gb.IrecvInto(tag, recvBuf)
		sreq := ga.Isend(tag, payload)
		if err := sreq.Wait(); err != nil {
			b.Fatal(err)
		}
		if err := rreq.Wait(); err != nil {
			b.Fatal(err)
		}
		sreq.Free()
		rreq.Free()
	}
}

// BenchmarkRdvPull measures the steady-state pull-mode rendezvous on
// loopback-RMA rails: repeated sends of one buffer ride the
// registration cache and the pooled requests/states/packets, so the
// bar is 0 allocs/op after warm-up.
func BenchmarkRdvPull(b *testing.B) { benchRdv(b, true) }

// BenchmarkRdvPush is the push-path ablation of BenchmarkRdvPull: the
// same transfer through CTS/KindData, with its per-frame payload
// copies.
func BenchmarkRdvPush(b *testing.B) { benchRdv(b, false) }

// BenchmarkAggr measures the aggregation strategy's steady state: a
// burst of small messages packed into aggregate frames, with the
// frame payloads drawn from the gate's pooled buffers.
func BenchmarkAggr(b *testing.B) {
	da, db := MemPair()
	sender := NewEngine(Config{Strategy: StrategyAggreg})
	receiver := NewEngine(Config{})
	defer sender.Close()
	defer receiver.Close()
	ga, err := sender.NewGate(da)
	if err != nil {
		b.Fatal(err)
	}
	gb, err := receiver.NewGate(db)
	if err != nil {
		b.Fatal(err)
	}
	const burst = 16
	msg := make([]byte, 256)
	reqs := make([]*Request, burst)
	b.SetBytes(int64(burst * len(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range reqs {
			reqs[j] = ga.Isend(uint64(j), msg)
		}
		for _, r := range reqs {
			if err := r.Wait(); err != nil {
				b.Fatal(err)
			}
			r.Free()
		}
		for j := 0; j < burst; j++ {
			r := gb.Irecv(uint64(j))
			if err := r.Wait(); err != nil {
				b.Fatal(err)
			}
			r.Free()
		}
	}
}

// erroringReadEndpoint wraps a SimEndpoint whose RMARead always fails
// with a transport error (not ErrNoRegion), modelling a rail whose
// read engine broke while its poll side still looks healthy.
type erroringReadEndpoint struct {
	*fabric.SimEndpoint
}

var errReadEngineBroken = errors.New("rail read engine broken")

func (f *erroringReadEndpoint) RMARead(key fabric.RKey, offset int, local []byte, ctx any) error {
	return errReadEngineBroken
}

// TestPullLastRailDeathFailsGate: when the gate's only rail dies
// through the RMARead post path, the receive must fail promptly via
// failGate — not fall back to a push request sent into a dead gate
// and hang forever.
func TestPullLastRailDeathFailsGate(t *testing.T) {
	f := fabric.NewSimFabric(fabric.SimConfig{})
	caps := fabric.Capabilities{Latency: simtime.Microsecond, Bandwidth: 8e9, MaxInject: 16 << 10, RMA: true}
	a := f.OpenDomain(caps)
	b := f.OpenDomain(caps)
	sEp, rEp := fabric.Connect(a, b)

	sender := NewEngine(Config{})
	receiver := NewEngine(Config{})
	defer sender.Close()
	defer receiver.Close()
	ga, err := sender.NewGateEndpoints(sEp)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := receiver.NewGateEndpoints(&erroringReadEndpoint{SimEndpoint: rEp})
	if err != nil {
		t.Fatal(err)
	}

	rreq := gb.Irecv(11)
	ga.Isend(11, make([]byte, 256<<10))
	select {
	case <-rreq.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("receive hung after the last rail died mid-pull")
	}
	if rreq.Err() == nil {
		t.Fatal("receive should fail when the gate's only rail cannot serve reads")
	}
	if !gb.RailStats()[0].Dead {
		t.Error("failed rail not marked dead")
	}
}

// TestCalibratedDriverRailKeepsPullAlive: wrapping rails in a
// calibrator must not hide the classic drivers' ext incapability —
// the RTS pull offer would be routed onto a rail that silently strips
// it, disabling zero-copy for the whole gate. The ext probe looks
// through the calibrator, so a calibrated mixed gate still pulls.
func TestCalibratedDriverRailKeepsPullAlive(t *testing.T) {
	f := fabric.NewSimFabric(fabric.SimConfig{})
	caps := fabric.Capabilities{Latency: simtime.Microsecond, Bandwidth: 8e9, MaxInject: 16 << 10, RMA: true}
	a := f.OpenDomain(caps)
	b := f.OpenDomain(caps)
	ea, eb := fabric.Connect(a, b)
	da, db := MemPair()

	sender := NewEngine(Config{Calibrate: true})
	receiver := NewEngine(Config{Calibrate: true})
	defer sender.Close()
	defer receiver.Close()
	mcaps := capsForDriver(da)
	ga, err := sender.NewGateEndpoints(ea, WrapDriver(da, mcaps))
	if err != nil {
		t.Fatal(err)
	}
	gb, err := receiver.NewGateEndpoints(eb, WrapDriver(db, mcaps))
	if err != nil {
		t.Fatal(err)
	}
	if ga.rails[0].canExt != true || ga.rails[1].canExt != false {
		t.Fatalf("ext capability must probe through the calibrator: sim=%v mem=%v",
			ga.rails[0].canExt, ga.rails[1].canExt)
	}

	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	done := make(chan error, 1)
	var got []byte
	go func() {
		var err error
		got, err = gb.Recv(5)
		done <- err
	}()
	if err := ga.Send(5, payload); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("calibrated mixed-rail transfer corrupted the payload")
	}
	if st := receiver.Stats(); st.RdvPulls == 0 {
		t.Errorf("calibrated gate should still engage pull mode: %+v", st)
	}
}
