package nmad

// Receiver-driven rendezvous: the RMA-read pull protocol.
//
// The classic (push) rendezvous moves every byte three times — the
// sender stages the payload into the provider's registered region,
// the wire frame carries its own copy, and the receiver memcpys each
// fragment into the posted buffer. The pull protocol moves it zero
// times on either host: the sender registers the *user* payload once
// per rail domain through the gate's registration cache and announces
// per-rail remote keys in the RTS imm extension; the receiver stripes
// the transfer across its own rails (it knows its side's live
// capabilities best), posts one RMARead per chunk directly into
// req.Data[lo:hi], and sends a single FIN when every byte is home so
// the sender releases its regions and completes. Rails that cannot
// pull — classic frame drivers, rails whose key went stale, rails
// that die mid-transfer — degrade per chunk to a KindRdvPush request,
// which the sender answers with ordinary KindData frames; the KindData
// reassembly path and the pull completions feed the same byte counter,
// so mixed transfers finish exactly once.
//
// Lock order: Engine.mu may be taken while holding nothing, and
// recvRdvState.mu may be taken under Engine.mu; nothing takes
// Engine.mu while holding a state mutex.

import (
	"errors"
	"sync"

	"pioman/internal/fabric"
	"pioman/internal/trace"
)

// chunk states of a pull-mode transfer. chunkPending is deliberately
// the zero value: a freshly materialized chunk has no read outstanding.
const (
	chunkPending uint8 = iota // materialized, not yet issued
	chunkReading              // RMARead posted, completion pending
	chunkDone                 // bytes landed
	chunkPushed               // requested as a sender push (KindData)
)

// pullChunk is one receiver-side chunk assignment: payload[lo:hi]
// pulled over rail. Its address is the RMARead context, so completions
// route back without allocation.
type pullChunk struct {
	st     *recvRdvState
	rail   int
	idx    int // position in st.chunks; the chunk span's aux id
	lo, hi int
	state  uint8
}

// recvRdvState tracks one inbound rendezvous, push or pull.
type recvRdvState struct {
	req   *Request
	gate  *Gate
	msgID uint64
	tag   uint64
	pull  bool

	// deadline/retries drive the handshake-timeout sweep; both are
	// guarded by Engine.mu like the e.rdvRecv map that holds the state.
	deadline int64
	retries  int

	// absDeadline is the sender's propagated request deadline (the RTS
	// offer's sentinel entry), 0 for none. Immutable after the state is
	// published, so the sweep and issuePull read it freely.
	absDeadline int64

	mu      sync.Mutex
	chunks  []pullChunk // fixed length once issued; entries mutate in place
	keys    []fabric.RKey
	covered []span // merged byte ranges landed via KindData (dup dedup)
	reading int    // chunks with an outstanding RMARead
	sweeps  int    // rail-death sweeps holding a reference (blocks recycling)
	failed  bool   // state abandoned; late completions are ignored
}

// markFailed flags the state so late RMA completions fall on the
// floor. Safe to call under Engine.mu (lock order: state after engine).
func (st *recvRdvState) markFailed() {
	st.mu.Lock()
	st.failed = true
	st.mu.Unlock()
}

// beginSweep reports whether the transfer can continue after a rail
// died — it is pull-mode (push-mode state is failed conservatively),
// every chunk is pulled (re-issuable — this side knows exactly where
// each one rides), and none has degraded to a sender push whose
// frames could have been striped onto any rail, sender-side,
// invisibly to us — and, when it can, takes a sweep reference that
// blocks the state from being pool-recycled until endSweep: the last
// chunk's completion may finish the transfer between the sweep's
// decision (under Engine.mu) and its re-issue pass (after), and
// re-issuing against a recycled state would corrupt whatever
// rendezvous took it from the pool. The pull flag is read under st.mu
// because startPull sets it after the state is already visible in
// e.rdvRecv.
func (st *recvRdvState) beginSweep() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failed || !st.pull {
		return false
	}
	for i := range st.chunks {
		if st.chunks[i].state == chunkPushed {
			return false
		}
	}
	st.sweeps++
	return true
}

// endSweep returns a beginSweep reference.
func (st *recvRdvState) endSweep() {
	st.mu.Lock()
	st.sweeps--
	st.mu.Unlock()
}

// getRecvRdv takes a receive-rendezvous state from the pool.
func (e *Engine) getRecvRdv() *recvRdvState {
	st, _ := e.recvRdvPool.Get().(*recvRdvState)
	if st == nil {
		st = &recvRdvState{}
	}
	return st
}

// putRecvRdv recycles a state. Only the clean completion path recycles
// (all chunks settled, no outstanding reads); failure paths leave the
// state to the garbage collector because a closed rail's completion
// queue may still hold contexts pointing at it.
func (e *Engine) putRecvRdv(st *recvRdvState) {
	st.req = nil
	st.gate = nil
	st.msgID = 0
	st.tag = 0
	st.pull = false
	st.deadline = 0
	st.retries = 0
	st.absDeadline = 0
	st.chunks = st.chunks[:0]
	st.keys = st.keys[:0]
	st.covered = st.covered[:0]
	st.reading = 0
	st.sweeps = 0
	st.failed = false
	e.recvRdvPool.Put(st)
}

// errPullRejected reports a rendezvous the peer had no state for (it
// answered with a NACK): the handshake lost its other half.
var errPullRejected = errors.New("nmad: peer rejected the rendezvous (no matching state)")

// errShortRecvBuffer reports an IrecvInto whose buffer cannot hold the
// matched message.
var errShortRecvBuffer = errors.New("nmad: receive buffer shorter than the matched message")

// startPull begins pull-mode reception for a matched RTS: parse the
// offer, stripe across pull-capable rails, post the reads. Returns
// false when nothing was pullable (the caller falls back to CTS).
// Called after the state is registered in e.rdvRecv.
func (e *Engine) startPull(g *Gate, st *recvRdvState, ext []byte) bool {
	// Decode the offer into a per-rail key table (index = our rail).
	if cap(st.keys) < len(g.rails) {
		st.keys = make([]fabric.RKey, len(g.rails))
	} else {
		st.keys = st.keys[:len(g.rails)]
		for i := range st.keys {
			st.keys[i] = 0
		}
	}
	usable := false
	for i := 0; ; i++ {
		railIdx, key, ok := offerEntry(ext, i)
		if !ok {
			break
		}
		if int(railIdx) >= len(g.rails) || key == 0 {
			continue
		}
		r := g.rails[railIdx]
		if r.rma == nil || r.dead.Load() {
			continue
		}
		st.keys[railIdx] = fabric.RKey(key)
		usable = true
	}
	if !usable {
		return false
	}
	if !g.stripePullChunks(st, len(st.req.Data)) {
		return false
	}
	st.mu.Lock()
	st.pull = true // st is already visible in e.rdvRecv; racing sweeps read under st.mu
	n := len(st.chunks)
	st.mu.Unlock()
	for i := 0; i < n; i++ {
		e.issuePull(g, st, i)
	}
	return true
}

// issuePull posts (or re-posts) chunk i of a pull transfer: RMARead on
// the chunk's rail, falling over to another offered rail when the post
// fails, and to a sender push as the last resort.
func (e *Engine) issuePull(g *Gate, st *recvRdvState, i int) {
	// Read the clock before taking st.mu: Clock may reach into provider
	// state, and holding the lock across it is needless coupling.
	var now int64
	if st.absDeadline != 0 {
		now = e.clock()
	}
	st.mu.Lock()
	c := &st.chunks[i]
	if st.failed || c.state == chunkDone {
		st.mu.Unlock()
		return
	}
	if d := st.absDeadline; d != 0 && now >= d {
		// The sender's deadline passed: posting this read would move
		// bytes its submitter has already abandoned. Fail the receive
		// instead (lock order: the cleanup takes Engine.mu, so release
		// st.mu first).
		st.mu.Unlock()
		e.expireRecvDeadline(g, st)
		return
	}
	// Capture the chunk span identity under st.mu — st.req is off
	// limits once the lock drops — and record only after unlocking.
	var sid uint64
	if e.rec != nil && st.req.traceID != 0 {
		sid = g.spanID(trace.DirRecv, uint8(i), st.msgID)
	}
	chunkLen := c.hi - c.lo
	wasReading := c.state == chunkReading
	for {
		r := g.rails[c.rail]
		key := st.keys[c.rail]
		if key != 0 && r.rma != nil && !r.dead.Load() {
			err := r.rma.RMARead(key, c.lo, st.req.Data[c.lo:c.hi], c)
			if err == nil {
				if !wasReading {
					st.reading++
				}
				c.state = chunkReading
				st.mu.Unlock()
				if sid != 0 {
					// Re-issues record another begin; the analyzer folds
					// duplicates to first-begin/last-end.
					e.rec.Record(g.id, trace.EvChunkBegin, sid, uint64(chunkLen))
				}
				e.rdvPulls.Add(1)
				return
			}
			if errors.Is(err, fabric.ErrNoRegion) {
				// The sender's registration is gone (invalidated or
				// released); the key is dead on every rail that shares
				// its domain, but retrying others is harmless and the
				// push fallback catches the rest.
				st.keys[c.rail] = 0
			} else {
				// The rail cannot serve reads anymore; it is dead for
				// our purposes (the send path will discover its own
				// half independently). When it was the gate's last
				// rail, fail the gate exactly as a poll error on the
				// last rail would — the push fallback below would
				// sendControl into a dead gate and hang this receive
				// forever. Lock order: failGate takes Engine.mu and
				// this state's mutex, so release st.mu first.
				if g.railDown(c.rail) == 0 {
					st.mu.Unlock()
					e.failGate(g, err)
					return
				}
			}
		}
		// Pick another offered, pull-capable, alive rail.
		next := -1
		for j := range g.rails {
			if j != c.rail && st.keys[j] != 0 && g.rails[j].rma != nil && !g.rails[j].dead.Load() {
				next = j
				break
			}
		}
		if next < 0 {
			// Nothing left to pull through: ask the sender to push
			// this range.
			if wasReading {
				st.reading--
			}
			c.state = chunkPushed
			lo, hi := c.lo, c.hi
			st.mu.Unlock()
			if sid != 0 {
				// Degraded to a sender push: close the chunk span
				// immediately (B=2 marks the degradation) — the pushed
				// bytes are tracked by the transfer span's byte counter,
				// not per-chunk, so an open span here would never end.
				e.rec.Record(g.id, trace.EvChunkBegin, sid, uint64(chunkLen))
				e.rec.Record(g.id, trace.EvChunkEnd, sid, 2)
			}
			e.rdvPushRanges.Add(1)
			g.sendControl(KindRdvPush, st.tag, st.msgID, uint32(lo), uint32(hi-lo))
			return
		}
		c.rail = next
	}
}

// reissueDeadRailChunks re-posts every chunk of a surviving pull
// transfer that was outstanding on the dead rail. Those reads will
// never complete — the endpoint is closed, its completion queue is
// gone — so their slots are free to re-issue; issuePull skips the dead
// rail and keeps the outstanding-read accounting straight. The caller
// holds a beginSweep reference, released here.
func (e *Engine) reissueDeadRailChunks(g *Gate, st *recvRdvState, idx int) {
	defer st.endSweep()
	st.mu.Lock()
	st.keys[idx] = 0
	var stale []int
	for i := range st.chunks {
		c := &st.chunks[i]
		if c.state == chunkReading && c.rail == idx {
			stale = append(stale, i)
		}
	}
	st.mu.Unlock()
	for _, i := range stale {
		e.issuePull(g, st, i)
	}
}

// expireRecvDeadline fails a rendezvous receive whose sender-propagated
// deadline passed before every read could be posted: remove the state,
// NACK the sender (its half fails promptly instead of waiting out its
// own sweep), complete the receive with ErrDeadlineExpired. Idempotent
// against racing sweeps through the same remove-first pattern as
// finishRecvRdv.
func (e *Engine) expireRecvDeadline(g *Gate, st *recvRdvState) {
	key := rdvKey{gate: g, msgID: st.msgID}
	e.mu.Lock()
	cur := e.rdvRecv[key]
	if cur == st {
		delete(e.rdvRecv, key)
		e.settleRecvLocked(key)
	}
	e.mu.Unlock()
	if cur != st {
		return // completed or failed by another path first
	}
	st.markFailed()
	e.deadlineExpired.Add(1)
	g.sendControl(KindRdvNack, st.tag, st.msgID, nackSend, 0)
	st.req.complete(ErrDeadlineExpired)
}

// pullDone handles one EventRMADone: account the landed chunk and
// finish the transfer when it was the last byte.
func (e *Engine) pullDone(g *Gate, railIdx int, ev fabric.Event) {
	c, ok := ev.Context.(*pullChunk)
	if !ok || c == nil {
		return
	}
	st := c.st
	st.mu.Lock()
	if st.failed || c.state != chunkReading {
		st.mu.Unlock()
		return
	}
	c.state = chunkDone
	st.reading--
	n := c.hi - c.lo
	// Capture the request under the lock: once the last chunk's
	// handler observes the full byte count it finishes and recycles
	// the state, so no field of st may be touched after our Add unless
	// we are that handler.
	req := st.req
	var sid uint64
	if e.rec != nil && req.traceID != 0 {
		sid = g.spanID(trace.DirRecv, uint8(c.idx), st.msgID)
	}
	st.mu.Unlock()
	if sid != 0 {
		e.rec.Record(g.id, trace.EvChunkEnd, sid, 0)
	}
	g.rails[railIdx].pullBytes.Add(uint64(n))
	e.rdvPullBytes.Add(uint64(n))
	if req.got.Add(uint32(n)) >= req.total {
		e.finishRecvRdv(st)
	}
}

// finishRecvRdv completes a rendezvous receive whose byte count just
// filled: remove the state, send the FIN (pull mode — the sender is
// waiting to release its regions), complete the request, recycle.
func (e *Engine) finishRecvRdv(st *recvRdvState) {
	g := st.gate
	key := rdvKey{gate: g, msgID: st.msgID}
	e.mu.Lock()
	cur := e.rdvRecv[key]
	if cur == st {
		delete(e.rdvRecv, key)
		e.settleRecvLocked(key)
	}
	e.mu.Unlock()
	if cur != st {
		return // a failure sweep got here first
	}
	st.mu.Lock()
	req, pull, tag, msgID := st.req, st.pull, st.tag, st.msgID
	// A re-issued chunk's original read may in principle still be
	// pending on a closed rail, and a rail-death sweep may hold a
	// reference it has yet to re-issue against; either way leave the
	// state to the garbage collector instead of recycling under a
	// live reference.
	canRecycle := st.reading == 0 && st.sweeps == 0
	st.mu.Unlock()
	e.msgsRecv.Add(1)
	if req.traceID != 0 {
		// Every byte is home: the receiver's transfer phase ends.
		e.rec.Record(g.id, trace.EvTransferEnd, req.traceID, 0)
	}
	req.complete(nil)
	if pull {
		e.rdvFins.Add(1)
		g.sendControl(KindFin, tag, msgID, 0, 0)
	}
	if canRecycle {
		e.putRecvRdv(st)
	}
}

// sendControl ships one request-less control frame (CTS, FIN,
// RdvPush, RdvNack). Offset/extra land in the header's Offset/Total
// fields, whose meaning is per kind.
func (g *Gate) sendControl(kind Kind, tag uint64, msgID uint64, offset, extra uint32) {
	rail := g.pickEager()
	if rail < 0 {
		return // gate is dead; the sweeps handle the fallout
	}
	p := g.packet()
	p.Hdr = Header{Kind: kind, Tag: tag, MsgID: msgID, Offset: offset, Total: extra}
	p.rail = rail
	g.sendPacket(p)
}
