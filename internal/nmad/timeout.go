package nmad

import (
	"errors"
	"sort"

	"pioman/internal/core"
	"pioman/internal/trace"
)

// Rendezvous handshake timeouts.
//
// The rendezvous protocol is a conversation — RTS, then CTS or pulls,
// then data or FIN — and on a lossy fabric any line of it can vanish
// while both rails stay perfectly alive. Before this file existed that
// meant a silent mutual hang: the sender pinned its payload waiting
// for a reply that was never coming, the receiver held a reassembly
// waiting for bytes that were never sent. Rail death was handled
// (PR 2/5); frame loss on a live rail was not.
//
// The cure is the classic one: every open rendezvous half carries a
// deadline on the engine's clock. A sweep task (one per engine, riding
// the same task engine as the polling work) retransmits the stalled
// step with exponential backoff — the sender re-sends its RTS, a
// pull-mode receiver re-issues its outstanding reads and re-requests
// its pushed ranges, a push-mode receiver re-sends its CTS — and after
// RdvRetries fruitless rounds fails the request visibly with
// ErrRdvTimeout and best-effort NACKs the peer, so neither side waits
// forever and nothing stays pinned.
//
// Retransmission makes duplicates a fact of life, so the protocol
// handlers are hardened to be idempotent: a second RTS for a live
// handshake re-answers instead of re-matching, a settled-rendezvous
// log (bounded, per engine) lets late control frames for finished
// handshakes be answered or ignored instead of NACKing a healthy peer,
// and data-frame reassembly counts byte *coverage* rather than frame
// arrivals so replayed or overlapping fragments cannot complete a
// request before every byte is truly home.
//
// The clock is pluggable (Config.Clock) so a deterministic harness can
// run the whole state machine on a virtual fabric clock: timeouts then
// fire at exact modelled instants, and a chaos scenario replays
// byte-identically from its seed.

// ErrRdvTimeout reports a rendezvous handshake that exhausted its
// retransmission budget: the peer (or the fabric between) swallowed
// every attempt. The request's resources are released; the transfer
// did not happen.
var ErrRdvTimeout = errors.New("nmad: rendezvous handshake timed out")

// ErrCanceled reports a posted receive removed by Request.Cancel
// before anything matched it.
var ErrCanceled = errors.New("nmad: receive canceled")

// settledLogSize bounds each direction's settled-rendezvous log. Old
// entries are evicted FIFO; a duplicate arriving after eviction is
// merely NACKed like an unknown handshake, which the peer treats as a
// visible failure rather than a hang — the log is an optimization for
// the common duplicate window, not a correctness requirement.
const settledLogSize = 512

// settledLog remembers recently finished rendezvous halves so late or
// duplicated control frames can be recognized. Guarded by Engine.mu.
type settledLog struct {
	set  map[rdvKey]struct{}
	ring [settledLogSize]rdvKey
	pos  int
}

// add records a settled key, evicting the oldest once full.
func (l *settledLog) add(k rdvKey) {
	if l.set == nil {
		l.set = make(map[rdvKey]struct{}, settledLogSize)
	}
	if _, ok := l.set[k]; ok {
		return
	}
	if len(l.set) >= settledLogSize {
		delete(l.set, l.ring[l.pos])
	}
	l.ring[l.pos] = k
	l.pos = (l.pos + 1) % settledLogSize
	l.set[k] = struct{}{}
}

// has reports whether k settled recently.
func (l *settledLog) has(k rdvKey) bool {
	_, ok := l.set[k]
	return ok
}

// span is one covered byte range [lo, hi) of a rendezvous reassembly.
type span struct{ lo, hi int }

// addCovered merges [lo, hi) into the state's covered-range set and
// returns how many bytes were newly covered. Data frames feed the
// request's byte counter through this instead of their raw length, so
// a duplicated or retransmitted fragment — same bytes, arriving twice
// — cannot inflate the count and complete the request with holes in
// the payload. The set stays sorted and disjoint; rendezvous transfers
// carry a handful of ranges, so the linear merge is cheap.
func (st *recvRdvState) addCovered(lo, hi int) int {
	if hi <= lo {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	added := hi - lo
	i := 0
	for i < len(st.covered) && st.covered[i].hi < lo {
		i++
	}
	j, newLo, newHi := i, lo, hi
	for j < len(st.covered) && st.covered[j].lo <= hi {
		c := st.covered[j]
		if ovLo, ovHi := max(lo, c.lo), min(hi, c.hi); ovHi > ovLo {
			added -= ovHi - ovLo
		}
		if c.lo < newLo {
			newLo = c.lo
		}
		if c.hi > newHi {
			newHi = c.hi
		}
		j++
	}
	if j == i {
		// No overlap: insert a fresh span at i.
		st.covered = append(st.covered, span{})
		copy(st.covered[i+1:], st.covered[i:])
		st.covered[i] = span{newLo, newHi}
		return added
	}
	st.covered[i] = span{newLo, newHi}
	st.covered = append(st.covered[:i+1], st.covered[j:]...)
	return added
}

// refForRetry takes a sweep reference blocking pool recycling while a
// timeout retry re-issues the state's chunks. Must be called under
// Engine.mu while the state is still in e.rdvRecv — that is what
// guarantees it has not completed and been recycled under a new owner.
// Returns false for a state already abandoned. Released via endSweep.
func (st *recvRdvState) refForRetry() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failed {
		return false
	}
	st.sweeps++
	return true
}

// settleSendLocked / settleRecvLocked record a rendezvous half leaving
// its in-flight map. Callers hold e.mu at the deletion site, so the log
// and the map change atomically.
func (e *Engine) settleSendLocked(key rdvKey) { e.settledSend.add(key) }
func (e *Engine) settleRecvLocked(key rdvKey) { e.settledRecv.add(key) }

// startSweeper submits the engine's deadline sweep as a repeated task
// on the same task engine that runs the polling work — timeouts are
// progression, so they ride progression's scheduling like everything
// else in the paper's design.
func (e *Engine) startSweeper() {
	sweep := &core.Task{
		Options: core.Repeat,
		Fn: func(any) bool {
			e.sweepDeadlines()
			return e.stopped.Load()
		},
	}
	e.tasks.MustSubmit(sweep)
}

// sweepDeadlines scans both rendezvous maps and the eager pending
// window for expired deadlines and acts: retransmit with backoff, or
// fail visibly past the budget. The scan is throttled to a fraction of
// the timeout so hot scheduling loops do not pay a map walk per pass.
// All wire actions are sorted by (gate, msgID) before running — map
// iteration order is randomized, and a deterministic harness needs
// retransmissions to hit the simulated fabric in a reproducible order.
func (e *Engine) sweepDeadlines() {
	now := e.clock()
	// The sweep rides every progression pass, so its clock read doubles
	// as the engine-liveness stamp /healthz compares against.
	e.lastProgress.Store(now)
	if now < e.nextSweep.Load() {
		return
	}
	e.nextSweep.Store(now + e.cfg.RdvTimeout/8)

	if e.admit != nil {
		// Parked submissions expire regardless of the timeout ablation
		// knobs: a blocked submitter must never hang.
		e.sweepAdmit(now)
	}
	if !e.cfg.NoEagerRetry {
		e.sweepEager(now)
	}
	if e.cfg.NoRdvTimeout {
		return
	}

	type sendAct struct {
		st      *sendRdvState
		g       *Gate
		msgID   uint64
		tag     uint64
		total   uint32
		offer   []byte
		retries int
		fail    bool
		expired bool
	}
	type recvAct struct {
		st      *recvRdvState
		g       *Gate
		msgID   uint64
		tag     uint64
		total   uint32
		pull    bool
		retries int
		fail    bool
		expired bool
	}
	var sends []sendAct
	var recvs []recvAct
	e.mu.Lock()
	for key, st := range e.sendRdv {
		if d := st.req.deadline; d != 0 && now >= d {
			// The submitter's deadline passed: cancel the doomed
			// handshake now instead of retransmitting it into the ground.
			delete(e.sendRdv, key)
			e.settleSendLocked(key)
			sends = append(sends, sendAct{st: st, g: key.gate, msgID: key.msgID, tag: st.tag, fail: true, expired: true})
			continue
		}
		if st.deadline == 0 || now < st.deadline {
			continue
		}
		if st.retries >= e.cfg.RdvRetries {
			delete(e.sendRdv, key)
			e.settleSendLocked(key)
			sends = append(sends, sendAct{st: st, g: key.gate, msgID: key.msgID, tag: st.tag, fail: true})
			continue
		}
		st.retries++
		st.deadline = now + e.cfg.RdvTimeout<<uint(st.retries)
		// Copy the offer: the state may complete and recycle (resetting
		// its offer storage) while the retransmitted RTS is in flight.
		sends = append(sends, sendAct{
			st: st, g: key.gate, msgID: key.msgID, tag: st.tag,
			total: st.total, offer: append([]byte(nil), st.offer...),
			retries: st.retries,
		})
	}
	for key, st := range e.rdvRecv {
		if d := st.absDeadline; d != 0 && now >= d {
			// The sender's propagated deadline passed: stop reassembling
			// bytes whose submitter has already given up.
			delete(e.rdvRecv, key)
			e.settleRecvLocked(key)
			st.markFailed()
			recvs = append(recvs, recvAct{st: st, g: key.gate, msgID: key.msgID, tag: st.tag, fail: true, expired: true})
			continue
		}
		if st.deadline == 0 || now < st.deadline {
			continue
		}
		if st.retries >= e.cfg.RdvRetries {
			delete(e.rdvRecv, key)
			e.settleRecvLocked(key)
			st.markFailed()
			recvs = append(recvs, recvAct{st: st, g: key.gate, msgID: key.msgID, tag: st.tag, fail: true})
			continue
		}
		if !st.refForRetry() {
			continue
		}
		st.retries++
		st.deadline = now + e.cfg.RdvTimeout<<uint(st.retries)
		st.mu.Lock()
		pull := st.pull
		total := st.req.total
		st.mu.Unlock()
		recvs = append(recvs, recvAct{st: st, g: key.gate, msgID: key.msgID, tag: st.tag, total: total, pull: pull, retries: st.retries})
	}
	e.mu.Unlock()

	sort.Slice(sends, func(i, j int) bool {
		if sends[i].g.id != sends[j].g.id {
			return sends[i].g.id < sends[j].g.id
		}
		return sends[i].msgID < sends[j].msgID
	})
	sort.Slice(recvs, func(i, j int) bool {
		if recvs[i].g.id != recvs[j].g.id {
			return recvs[i].g.id < recvs[j].g.id
		}
		return recvs[i].msgID < recvs[j].msgID
	})

	for _, a := range sends {
		if a.fail {
			failErr := ErrRdvTimeout
			if a.expired {
				failErr = ErrDeadlineExpired
				e.deadlineExpired.Add(1)
			} else {
				e.rdvTimeouts.Add(1)
			}
			if r := e.rec; r != nil {
				r.Record(a.g.id, trace.EvTimeout, a.g.spanID(trace.DirSend, 0, a.msgID), 0)
			}
			a.st.releaseRegs()
			req := a.st.req
			// Best-effort: tell the receiver its half is orphaned so it
			// fails now instead of burning its own retry budget.
			a.g.sendControl(KindRdvNack, a.tag, a.msgID, nackRecv, 0)
			req.complete(failErr)
			continue
		}
		e.rdvRetries.Add(1)
		if r := e.rec; r != nil {
			r.Record(a.g.id, trace.EvRetransmit, a.g.spanID(trace.DirSend, 0, a.msgID), uint64(a.retries))
		}
		rail := -1
		if len(a.offer) > 0 {
			rail = a.g.pickControl(true)
		}
		if rail < 0 {
			a.offer = nil
			rail = a.g.pickEager()
		}
		if rail < 0 {
			continue // gate is dying; the rail-death sweeps own the fallout
		}
		p := a.g.packet()
		p.Hdr = Header{Kind: KindRTS, Tag: a.tag, MsgID: a.msgID, Total: a.total}
		p.ext = a.offer
		p.rail = rail
		a.g.sendPacket(p)
	}
	for _, a := range recvs {
		if a.fail {
			failErr := ErrRdvTimeout
			if a.expired {
				failErr = ErrDeadlineExpired
				e.deadlineExpired.Add(1)
			} else {
				e.rdvTimeouts.Add(1)
			}
			if r := e.rec; r != nil {
				r.Record(a.g.id, trace.EvTimeout, a.g.spanID(trace.DirRecv, 0, a.msgID), 1)
			}
			a.g.sendControl(KindRdvNack, a.tag, a.msgID, nackSend, 0)
			a.st.req.complete(failErr)
			continue
		}
		e.rdvRetries.Add(1)
		if r := e.rec; r != nil {
			r.Record(a.g.id, trace.EvRetransmit, a.g.spanID(trace.DirRecv, 0, a.msgID), uint64(a.retries))
		}
		st := a.st
		if !a.pull {
			// Push mode: the CTS may have been lost. A sender that
			// already answered it has settled the handshake and ignores
			// the duplicate.
			a.g.sendControl(KindCTS, a.tag, a.msgID, 0, a.total)
			st.endSweep()
			continue
		}
		// Pull mode: re-drive every unsettled chunk — blackholed reads
		// are re-posted, lost push requests re-asked. chunkDone chunks
		// are skipped; duplicate data from a re-asked range is absorbed
		// by coverage accounting.
		st.mu.Lock()
		var reissue []int
		var pushes []span
		for i := range st.chunks {
			switch st.chunks[i].state {
			case chunkDone:
			case chunkPushed:
				pushes = append(pushes, span{st.chunks[i].lo, st.chunks[i].hi})
			default:
				reissue = append(reissue, i)
			}
		}
		st.mu.Unlock()
		for _, i := range reissue {
			e.issuePull(a.g, st, i)
		}
		for _, r := range pushes {
			a.g.sendControl(KindRdvPush, a.tag, a.msgID, uint32(r.lo), uint32(r.hi-r.lo))
		}
		st.endSweep()
	}
}

// sweepEager is the eager half of the deadline sweep: retransmit
// unacknowledged eager messages with exponential backoff, and past the
// retry budget fail them visibly with ErrEagerTimeout. Retransmissions
// go as plain KindEager frames regardless of the aggregation strategy
// — re-aggregating a retry would re-enter the flush path for one stale
// message — and are sorted by (gate, msgID) for deterministic replay.
// A retransmission racing the original's late ack is harmless: the
// receiver's dedup log drops the payload and re-acks, and the second
// ack finds no pending entry.
func (e *Engine) sweepEager(now int64) {
	type eagerAct struct {
		g       *Gate
		msgID   uint64
		tag     uint64
		data    []byte
		req     *Request
		retries int
		fail    bool
		expired bool
	}
	var acts []eagerAct
	e.mu.Lock()
	for key, st := range e.eagerPend {
		if d := st.req.deadline; d != 0 && now >= d {
			// The submitter's deadline passed mid-window: stop
			// retransmitting and fail the message now.
			delete(e.eagerPend, key)
			acts = append(acts, eagerAct{g: key.gate, msgID: key.msgID, req: st.req, fail: true, expired: true})
			continue
		}
		if st.deadline == 0 || now < st.deadline {
			continue
		}
		if st.retries >= e.cfg.RdvRetries {
			delete(e.eagerPend, key)
			acts = append(acts, eagerAct{g: key.gate, msgID: key.msgID, req: st.req, fail: true})
			continue
		}
		st.retries++
		st.deadline = now + e.cfg.RdvTimeout<<uint(st.retries)
		acts = append(acts, eagerAct{g: key.gate, msgID: key.msgID, tag: st.tag, data: st.data, retries: st.retries})
	}
	e.mu.Unlock()

	sort.Slice(acts, func(i, j int) bool {
		if acts[i].g.id != acts[j].g.id {
			return acts[i].g.id < acts[j].g.id
		}
		return acts[i].msgID < acts[j].msgID
	})

	for _, a := range acts {
		if a.fail {
			failErr := ErrEagerTimeout
			if a.expired {
				failErr = ErrDeadlineExpired
				e.deadlineExpired.Add(1)
			} else {
				e.eagerTimeouts.Add(1)
			}
			if r := e.rec; r != nil {
				r.Record(a.g.id, trace.EvTimeout, a.g.spanID(trace.DirSend, 0, a.msgID), 2)
			}
			a.req.complete(failErr)
			continue
		}
		rail := a.g.pickEager()
		if rail < 0 {
			continue // gate is dying; the rail-death sweeps own the fallout
		}
		e.eagerRetries.Add(1)
		if r := e.rec; r != nil {
			r.Record(a.g.id, trace.EvEagerRetry, a.g.spanID(trace.DirSend, 0, a.msgID), uint64(a.retries))
		}
		p := a.g.packet()
		p.Hdr = Header{Kind: KindEager, Tag: a.tag, MsgID: a.msgID, Total: uint32(len(a.data))}
		p.Payload = a.data
		p.rail = rail
		p.pend = append(p.pend[:0], a.msgID)
		a.g.sendPacket(p)
	}
}

// IdleReport is Gate.CheckIdle's leak accounting: everything that
// should be zero on a quiesced gate. RegCached is informational —
// interned idle registrations are the cache working as designed — and
// does not affect Clean.
type IdleReport struct {
	// SendRendezvous counts in-flight send-side rendezvous states.
	SendRendezvous int
	// RecvRendezvous counts in-flight receive-side reassemblies.
	RecvRendezvous int
	// PostedRecvs counts posted receives nothing has matched.
	PostedRecvs int
	// UnexpectedMsgs counts arrived messages nothing has received.
	UnexpectedMsgs int
	// PendingAggr counts small sends queued for aggregation.
	PendingAggr int
	// EagerPending counts eager messages still in the retransmission
	// window — sent but never acknowledged. A quiesced gate holding
	// any is a leak: the sweep has neither delivered nor visibly
	// failed them, and their send requests are still incomplete.
	EagerPending int
	// RegInFlight counts interned registrations still referenced by a
	// transfer — pinned memory a quiesced gate must not hold.
	RegInFlight int
	// RegCached counts idle interned registrations (by design; see
	// fabric.RegCache).
	RegCached int
	// AdmitRequests counts admission request credits the gate's ledger
	// still holds — zero on a quiesced gate, or a completion path
	// leaked them.
	AdmitRequests int
	// AdmitBytes counts admission byte credits the gate's ledger still
	// holds.
	AdmitBytes int64
	// AdmitWaiting counts submissions for this gate still parked in the
	// admission queue.
	AdmitWaiting int
}

// Clean reports whether the gate holds no protocol state or pinned
// resources — the invariant a chaos scenario checks after quiesce.
func (r IdleReport) Clean() bool {
	return r.SendRendezvous == 0 && r.RecvRendezvous == 0 && r.PostedRecvs == 0 &&
		r.UnexpectedMsgs == 0 && r.PendingAggr == 0 && r.EagerPending == 0 &&
		r.RegInFlight == 0 && r.AdmitRequests == 0 && r.AdmitBytes == 0 &&
		r.AdmitWaiting == 0
}

// CheckIdle audits the gate for leaked protocol state: rendezvous
// halves that never settled, receives nothing matched, messages nobody
// received, registrations still pinned. A gate whose traffic has fully
// quiesced — every request completed or visibly failed — must report
// Clean; anything else is a leak.
func (g *Gate) CheckIdle() IdleReport {
	e := g.eng
	var rep IdleReport
	e.mu.Lock()
	for key := range e.sendRdv {
		if key.gate == g {
			rep.SendRendezvous++
		}
	}
	for key := range e.rdvRecv {
		if key.gate == g {
			rep.RecvRendezvous++
		}
	}
	for key := range e.eagerPend {
		if key.gate == g {
			rep.EagerPending++
		}
	}
	for key, q := range e.recvQ {
		if key.gate == g {
			rep.PostedRecvs += len(q.items) - q.head
		}
	}
	for key, q := range e.unexpected {
		if key.gate == g {
			rep.UnexpectedMsgs += len(q.items) - q.head
		}
	}
	e.mu.Unlock()
	g.aggMu.Lock()
	rep.PendingAggr = len(g.aggPending)
	g.aggMu.Unlock()
	for _, c := range g.regCaches {
		st := c.Stats()
		rep.RegInFlight += st.LiveRefs
		rep.RegCached += st.Entries
	}
	if g.admitL != nil {
		rep.AdmitRequests, rep.AdmitBytes = g.admitL.Inflight()
		p := e.admit
		p.mu.Lock()
		for _, w := range p.waiting {
			if w.g == g {
				rep.AdmitWaiting++
			}
		}
		p.mu.Unlock()
	}
	return rep
}
