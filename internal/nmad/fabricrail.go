package nmad

import (
	"pioman/internal/fabric"
	"pioman/internal/simtime"
)

// This file adapts the classic frame Drivers (mem, TCP) to the fabric
// provider layer, so a Gate built from Drivers and a Gate built from
// fabric endpoints run the same code path: NewGate wraps each driver
// in a driverEndpoint and hands it to the endpoint-based gate.

// Assumed capability envelopes for the classic drivers. The paper's
// NewMadeleine samples each rail's latency/bandwidth at startup; here
// the envelopes are static per driver kind, chosen so an in-process
// rail outranks a TCP rail for small messages and the two split large
// payloads evenly when paired with themselves.
var driverCaps = map[string]fabric.Capabilities{
	"mem": {Latency: 200 * simtime.Nanosecond, Bandwidth: 8e9, MaxInject: 16 << 10},
	"tcp": {Latency: 30 * simtime.Microsecond, Bandwidth: 1e9, MaxInject: 8 << 10},
}

// capsForDriver returns the assumed envelope for a driver, defaulting
// to a generic middle-of-the-road rail for unknown kinds.
func capsForDriver(d Driver) fabric.Capabilities {
	if caps, ok := driverCaps[d.Name()]; ok {
		return caps
	}
	return fabric.Capabilities{Latency: simtime.Microsecond, Bandwidth: 1e9, MaxInject: 8 << 10}
}

// WrapDriver adapts a classic frame Driver into a fabric.Endpoint with
// the given capability envelope, for mixing classic rails with fabric
// rails in one gate. Driver frames carry exactly one decoded header —
// imm bytes past it are dropped — so the envelope always declares
// NoExt regardless of what the caller passed.
func WrapDriver(d Driver, caps fabric.Capabilities) fabric.Endpoint {
	caps.NoExt = true
	return &driverEndpoint{d: d, caps: caps}
}

// frameEndpoint is the package-internal fast path of the driver
// adapter: the gate moves decoded Headers straight through, skipping
// the imm encode/decode round-trip and its allocation, so the classic
// rails keep their codec-free frame path (§IV-B zero-allocation
// submission). External fabric endpoints use the generic byte-
// oriented Send/Poll instead.
type frameEndpoint interface {
	// SendFrame transmits one decoded frame.
	SendFrame(hdr Header, payload []byte) error
	// PollFrame pops the next received frame.
	PollFrame() (Frame, bool, error)
}

// driverEndpoint is the adapter provider: fabric messages map 1:1 onto
// driver frames, with the immediate bytes carrying the encoded nmad
// header.
type driverEndpoint struct {
	d    Driver
	caps fabric.Capabilities
}

// Provider names the backend after the wrapped driver.
func (ep *driverEndpoint) Provider() string { return ep.d.Name() }

// Capabilities returns the assumed envelope.
func (ep *driverEndpoint) Capabilities() fabric.Capabilities { return ep.caps }

// SendFrame hands a decoded frame straight to the driver (the
// frameEndpoint fast path).
func (ep *driverEndpoint) SendFrame(hdr Header, payload []byte) error {
	return ep.d.Send(hdr, payload)
}

// PollFrame pops the next driver frame (the frameEndpoint fast path).
func (ep *driverEndpoint) PollFrame() (Frame, bool, error) {
	return ep.d.Poll()
}

// Send decodes the immediate bytes back into a frame header and hands
// the frame to the driver.
func (ep *driverEndpoint) Send(imm, payload []byte) error {
	hdr, err := decodeHeader(imm)
	if err != nil {
		return err
	}
	return ep.d.Send(hdr, payload)
}

// Poll pops the next driver frame as an EventRecv.
func (ep *driverEndpoint) Poll() (fabric.Event, bool, error) {
	f, ok, err := ep.d.Poll()
	if err != nil || !ok {
		return fabric.Event{}, false, err
	}
	imm := make([]byte, headerBytes)
	f.Hdr.encode(imm)
	return fabric.Event{Kind: fabric.EventRecv, Imm: imm, Payload: f.Payload, From: -1}, true, nil
}

// Backlog is always zero: the classic drivers complete sends before
// returning, so they never accumulate posted-but-incomplete work.
func (ep *driverEndpoint) Backlog() int { return 0 }

// Close shuts the wrapped driver down.
func (ep *driverEndpoint) Close() error { return ep.d.Close() }
