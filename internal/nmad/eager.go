package nmad

import (
	"errors"

	"pioman/internal/trace"
)

// Reliable eager delivery.
//
// Rendezvous traffic recovers from frame loss through the handshake
// timeout (timeout.go); until this file existed the eager path did not.
// An eager frame was fire-and-forget with buffered semantics: the send
// request completed when the frame hit the wire, and a dropped frame
// simply never arrived — the receiver's Irecv waited forever and the
// sender never knew. Lossy chaos scenarios therefore could not carry
// the small-message traffic that dominates real workloads (the AMT
// studies in PAPERS.md find eager injection, not bulk transfers, is
// the bottleneck class).
//
// The mechanism mirrors the rendezvous design on the same pluggable
// clock and the same sweep task:
//
//   - every eager message is sequence-numbered by its per-gate MsgID
//     (already assigned by Isend) and tracked in a per-engine pending
//     window (e.eagerPend) until the peer acknowledges it;
//   - the receiver acks every eager arrival with a KindEagerAck control
//     frame — including duplicates, whose payload it drops after
//     checking the (gate, msgID) dedup log (e.seenEager), so a lost
//     ack cannot double-deliver;
//   - the deadline sweep (sweepDeadlines) retransmits unacknowledged
//     messages with exponential backoff and, past RdvRetries attempts,
//     completes the send visibly with ErrEagerTimeout;
//   - a transiently backpressured eager frame is left in the pending
//     window instead of failing fast: the sweeper retries it once the
//     peer's ring drains.
//
// The send request consequently completes on acknowledgement, not on
// wire-out: "done" now means delivered (or visibly failed), which is
// what lets a chaos scenario assert that eager traffic either arrives
// byte-exact or fails loudly. Config.NoEagerRetry restores the old
// fire-and-forget behaviour as an ablation — under it, a lossy
// scenario must lose traffic, which is how the chaos suite proves the
// mechanism is load-bearing.
//
// The dedup log is bounded (settledLogSize entries, FIFO eviction)
// like the rendezvous settled logs: a duplicate arriving after
// eviction would deliver again, but retransmission stops at the first
// ack, so the window only needs to cover the in-flight duplicates of
// recent messages, not all history.

// ErrEagerTimeout reports an eager message that exhausted its
// retransmission budget without an acknowledgement: the peer (or the
// fabric between) swallowed every attempt. The message was not
// delivered — or its acks were lost, in which case the receiver may
// hold the payload; either way the sender is told instead of left
// assuming buffered success.
var ErrEagerTimeout = errors.New("nmad: eager message timed out unacknowledged")

// eagerState tracks one unacknowledged eager message in the sender's
// pending window. Guarded by Engine.mu like the e.eagerPend map that
// holds it; the data slice references the caller's buffer, which the
// Isend contract keeps valid until the request completes.
type eagerState struct {
	req      *Request
	data     []byte
	tag      uint64
	deadline int64
	retries  int
}

// getEager takes an eager pending state from the pool.
func (e *Engine) getEager() *eagerState {
	st, _ := e.eagerPool.Get().(*eagerState)
	if st == nil {
		st = &eagerState{}
	}
	return st
}

// putEager recycles an eager pending state.
func (e *Engine) putEager(st *eagerState) {
	st.req = nil
	st.data = nil
	st.tag = 0
	st.deadline = 0
	st.retries = 0
	e.eagerPool.Put(st)
}

// trackEager enters an eager message into the pending window before
// its first frame is submitted, so the ack — or the timeout sweep —
// owns the request's completion from here on.
func (e *Engine) trackEager(g *Gate, msgID, tag uint64, data []byte, req *Request) {
	st := e.getEager()
	st.req, st.data, st.tag = req, data, tag
	st.deadline = e.clock() + e.cfg.RdvTimeout
	e.mu.Lock()
	e.eagerPend[rdvKey{gate: g, msgID: msgID}] = st
	e.mu.Unlock()
}

// recvEager handles one inbound eager message (plain or unpacked from
// an aggregate): acknowledge, dedup, deliver. Under NoEagerRetry it is
// the old fire-and-forget path — no ack, no dedup.
func (e *Engine) recvEager(g *Gate, hdr Header, payload []byte) {
	if !e.cfg.NoEagerRetry {
		key := rdvKey{gate: g, msgID: hdr.MsgID}
		e.mu.Lock()
		dup := e.seenEager.has(key)
		if !dup {
			e.seenEager.add(key)
		}
		e.mu.Unlock()
		// Ack duplicates too: a re-ack is exactly what a sender whose
		// previous ack was lost is waiting for.
		g.sendControl(KindEagerAck, hdr.Tag, hdr.MsgID, 0, 0)
		if dup {
			return
		}
	}
	e.matchOrStash(inbound{gate: g, hdr: hdr, payload: payload})
}

// eagerAcked completes the pending eager message an ack names. Late or
// duplicated acks find no entry and fall on the floor.
func (e *Engine) eagerAcked(g *Gate, hdr Header) {
	key := rdvKey{gate: g, msgID: hdr.MsgID}
	e.mu.Lock()
	st := e.eagerPend[key]
	if st != nil {
		delete(e.eagerPend, key)
	}
	e.mu.Unlock()
	if st == nil {
		return
	}
	e.eagerAcks.Add(1)
	req := st.req
	e.putEager(st)
	if req.traceID != 0 {
		// The ack closes the eager send's final phase (wire-out → ack).
		e.rec.Record(int(req.traceRing), trace.EvAckWaitEnd, req.traceID, 0)
	}
	req.complete(nil)
}

// failEager fails the pending eager message with the given error — the
// wire path's routing for an eager frame that could not be sent at
// all (every rail dead, a non-transient send error). No-op when the
// message already acked or timed out.
func (e *Engine) failEager(g *Gate, msgID uint64, err error) {
	key := rdvKey{gate: g, msgID: msgID}
	e.mu.Lock()
	st := e.eagerPend[key]
	if st != nil {
		delete(e.eagerPend, key)
	}
	e.mu.Unlock()
	if st == nil {
		return
	}
	req := st.req
	e.putEager(st)
	req.complete(err)
}
