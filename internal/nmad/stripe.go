package nmad

// Capability-aware multirail striping.
//
// The seed divided rendezvous payloads evenly across rails, which is
// only optimal when every rail is identical. Real multirail nodes are
// heterogeneous — the paper's BORDERLINE machines carry both Myri-10G
// and ConnectX IB — so the optimal split finishes every rail at the
// same instant: chunk sizes proportional to per-rail bandwidth. Rails
// whose completion queue is backed up are deprioritized (their
// effective bandwidth is already spoken for), and rails that have died
// are excluded entirely; Config.EvenStripe restores the seed split for
// ablation benchmarks.

// chunk is one rendezvous fragment assignment: payload[lo:hi] rides
// the given rail.
type chunk struct {
	rail   int
	lo, hi int
}

// minStripeChunk is the smallest fragment worth a frame of its own:
// below this, per-frame latency dominates the bandwidth gain of using
// an extra rail, so sub-minimum shares fold into the fastest rail.
const minStripeChunk = 4 << 10

// stripe splits a payload of the given size across the gate's alive
// rails in proportion to their capability bandwidth (equal shares
// under Config.EvenStripe). Backpressured rails are skipped while an
// uncongested rail exists; shares below minStripeChunk fold into the
// fastest rail. Returns nil when every rail is dead.
func (g *Gate) stripe(total int) []chunk {
	type cand struct {
		rail int
		w    float64
	}
	var ready, congested []cand
	for i, r := range g.rails {
		if r.dead.Load() {
			continue
		}
		w := r.ep.Capabilities().Bandwidth
		if r.ep.Backlog() > backpressureLimit {
			congested = append(congested, cand{rail: i, w: w})
		} else {
			ready = append(ready, cand{rail: i, w: w})
		}
	}
	if len(ready) == 0 {
		ready = congested
	}
	if len(ready) == 0 {
		return nil
	}
	// A participating rail with an unknown bandwidth makes a
	// proportional split meaningless (its share would be ~0 against
	// absolute bytes/s weights): fall back to equal weights, as the
	// Capabilities contract documents. Judged over the rails actually
	// in the split, not ones excluded as congested or dead.
	unknown := false
	for _, c := range ready {
		if c.w <= 0 {
			unknown = true
		}
	}
	if unknown || g.eng.cfg.EvenStripe {
		for i := range ready {
			ready[i].w = 1
		}
	}

	sumW := 0.0
	fastest := 0
	for i, c := range ready {
		sumW += c.w
		if c.w > ready[fastest].w {
			fastest = i
		}
	}
	sizes := make([]int, len(ready))
	assigned := 0
	for i, c := range ready {
		sizes[i] = int(float64(total) * c.w / sumW)
		assigned += sizes[i]
	}
	sizes[fastest] += total - assigned // rounding remainder
	for i := range sizes {
		if i != fastest && sizes[i] < minStripeChunk {
			sizes[fastest] += sizes[i]
			sizes[i] = 0
		}
	}

	var out []chunk
	lo := 0
	for i, c := range ready {
		if sizes[i] == 0 {
			continue
		}
		out = append(out, chunk{rail: c.rail, lo: lo, hi: lo + sizes[i]})
		lo += sizes[i]
	}
	return out
}
