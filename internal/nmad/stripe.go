package nmad

// Capability-aware multirail striping.
//
// The seed divided rendezvous payloads evenly across rails, which is
// only optimal when every rail is identical. Real multirail nodes are
// heterogeneous — the paper's BORDERLINE machines carry both Myri-10G
// and ConnectX IB — so the optimal split finishes every rail at the
// same instant: chunk sizes proportional to per-rail bandwidth. Rails
// whose completion queue exceeds their bandwidth-delay product are
// deprioritized (their effective bandwidth is already spoken for),
// and rails that have died are excluded entirely; Config.EvenStripe
// restores the seed split for ablation benchmarks.
//
// Both directions stripe: the sender for push-mode data frames, the
// receiver for pull-mode RMA reads (it sees its own side's live
// capability estimates, which is exactly what a receiver-driven
// protocol wants). The arithmetic is shared; eligibility differs — a
// pull additionally needs the rail to be RMA-capable and covered by
// the sender's key offer.

// chunk is one rendezvous fragment assignment: payload[lo:hi] rides
// the given rail.
type chunk struct {
	rail   int
	lo, hi int
}

// minStripeChunk is the smallest fragment worth a frame of its own:
// below this, per-frame latency dominates the bandwidth gain of using
// an extra rail, so sub-minimum shares fold into the fastest rail.
const minStripeChunk = 4 << 10

// stripeCand is one candidate rail of a split under construction.
type stripeCand struct {
	rail int
	w    float64
}

// stripeScratchT holds the working storage of one striping pass, so
// the hot paths (every rendezvous, both directions) allocate nothing.
type stripeScratchT struct {
	ready     []stripeCand
	congested []stripeCand
	sizes     []int
	chunks    []chunk
}

// stripeScratch takes a scratch from the gate's pool.
func (g *Gate) stripeScratch() *stripeScratchT {
	sc, _ := g.stripePool.Get().(*stripeScratchT)
	if sc == nil {
		sc = &stripeScratchT{}
	}
	return sc
}

// putStripeScratch recycles a scratch. The chunks it returned from
// stripeInto become invalid — callers copy them out first when they
// outlive the pass.
func (g *Gate) putStripeScratch(sc *stripeScratchT) {
	sc.ready = sc.ready[:0]
	sc.congested = sc.congested[:0]
	sc.sizes = sc.sizes[:0]
	sc.chunks = sc.chunks[:0]
	g.stripePool.Put(sc)
}

// stripe splits a payload of the given size across the gate's alive
// rails in proportion to their capability bandwidth (equal shares
// under Config.EvenStripe). Backpressured rails are skipped while an
// uncongested rail exists; shares below minStripeChunk fold into the
// fastest rail. Returns nil when every rail is dead. This convenience
// wrapper allocates its result; the protocol paths use stripeInto
// with a pooled scratch.
func (g *Gate) stripe(total int) []chunk {
	sc := g.stripeScratch()
	defer g.putStripeScratch(sc)
	return append([]chunk(nil), g.stripeInto(sc, total, nil)...)
}

// stripeInto computes the split into sc's storage, considering only
// alive rails accepted by eligible (nil accepts all). The returned
// slice aliases sc and dies with it.
func (g *Gate) stripeInto(sc *stripeScratchT, total int, eligible func(int) bool) []chunk {
	for i, r := range g.rails {
		if r.dead.Load() || (eligible != nil && !eligible(i)) {
			continue
		}
		caps := r.ep.Capabilities()
		w := caps.Bandwidth
		if r.backpressured(caps) {
			sc.congested = append(sc.congested, stripeCand{rail: i, w: w})
		} else {
			sc.ready = append(sc.ready, stripeCand{rail: i, w: w})
		}
	}
	ready := sc.ready
	if len(ready) == 0 {
		ready = sc.congested
	}
	if len(ready) == 0 {
		return nil
	}
	// A participating rail with an unknown bandwidth makes a
	// proportional split meaningless (its share would be ~0 against
	// absolute bytes/s weights): fall back to equal weights, as the
	// Capabilities contract documents. Judged over the rails actually
	// in the split, not ones excluded as congested or dead.
	unknown := false
	for _, c := range ready {
		if c.w <= 0 {
			unknown = true
		}
	}
	if unknown || g.eng.cfg.EvenStripe {
		for i := range ready {
			ready[i].w = 1
		}
	}

	sumW := 0.0
	fastest := 0
	for i, c := range ready {
		sumW += c.w
		if c.w > ready[fastest].w {
			fastest = i
		}
	}
	sizes := sc.sizes[:0]
	assigned := 0
	for _, c := range ready {
		s := int(float64(total) * c.w / sumW)
		sizes = append(sizes, s)
		assigned += s
	}
	sizes[fastest] += total - assigned // rounding remainder
	for i := range sizes {
		if i != fastest && sizes[i] < minStripeChunk {
			sizes[fastest] += sizes[i]
			sizes[i] = 0
		}
	}
	sc.sizes = sizes

	out := sc.chunks[:0]
	lo := 0
	for i, c := range ready {
		if sizes[i] == 0 {
			continue
		}
		out = append(out, chunk{rail: c.rail, lo: lo, hi: lo + sizes[i]})
		lo += sizes[i]
	}
	sc.chunks = out
	return out
}

// stripePullChunks stripes a pull-mode transfer across the rails the
// sender's offer covers and this side can read through, materializing
// the result as the state's chunk table (pooled storage). Reports
// false when no rail qualifies — the caller falls back to CTS/push.
func (g *Gate) stripePullChunks(st *recvRdvState, total int) bool {
	sc := g.stripeScratch()
	defer g.putStripeScratch(sc)
	chunks := g.stripeInto(sc, total, func(i int) bool {
		return st.keys[i] != 0 && g.rails[i].rma != nil
	})
	if len(chunks) == 0 {
		return false
	}
	st.mu.Lock()
	st.chunks = st.chunks[:0]
	for i, c := range chunks {
		st.chunks = append(st.chunks, pullChunk{st: st, rail: c.rail, idx: i, lo: c.lo, hi: c.hi})
	}
	st.mu.Unlock()
	return true
}
