package nmad

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"pioman/internal/fabric"
	"pioman/internal/simtime"
)

// Eager traffic under frame loss: acceptance tests for the
// sequence/ack/retransmission window. Same discipline as the
// rendezvous chaos tests — both engines ride the fabric's virtual
// clock, so retry deadlines fire at exact modelled instants.

// newEagerRig builds a two-engine pair like newChaosRig but with a
// chosen small-message strategy, so the soup can cover the aggregation
// path (whose lost frames retransmit member-by-member as plain eager).
func newEagerRig(t testing.TB, fc fabric.FaultConfig, strategy StrategyKind) *chaosRig {
	t.Helper()
	r := &chaosRig{f: fabric.NewSimFabric(fabric.SimConfig{Faults: fc})}
	caps := fabric.Capabilities{Latency: simtime.Microsecond, Bandwidth: 4e9, MaxInject: 16 << 10, RMA: true}
	r.da = r.f.OpenDomain(caps)
	r.db = r.f.OpenDomain(caps)
	ea, eb := fabric.Connect(r.da, r.db)
	clock := func() int64 { return int64(r.f.Now()) }
	cfg := Config{
		NoAutoProgress: true,
		Strategy:       strategy,
		Clock:          clock,
		RdvTimeout:     int64(chaosRdvTimeout),
		RdvRetries:     4,
	}
	r.sender = NewEngine(cfg)
	r.receiver = NewEngine(cfg)
	var err error
	if r.ga, err = r.sender.NewGateEndpoints(ea); err != nil {
		t.Fatal(err)
	}
	if r.gb, err = r.receiver.NewGateEndpoints(eb); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestEagerRetryRecoversDroppedFrame drops the sender's outbound
// direction for a window covering the first transmission, then heals:
// the sweep retransmits from the window and the message lands
// byte-exact.
func TestEagerRetryRecoversDroppedFrame(t *testing.T) {
	r := newEagerRig(t, fabric.FaultConfig{}, StrategyDefault)
	defer r.close()
	payload := chaosPayload(2 << 10)

	r.da.SetFaults(&fabric.FaultConfig{DropProb: 1})
	rreq := r.gb.Irecv(1)
	sreq := r.ga.Isend(1, payload)
	r.schedule() // the frame leaves and dies on the wire
	r.da.SetFaults(nil)

	if !r.drive(64*chaosRdvTimeout, sreq, rreq) {
		t.Fatal("eager transfer did not recover from a dropped frame")
	}
	if sreq.Err() != nil || rreq.Err() != nil {
		t.Fatalf("transfer failed: send %v, recv %v", sreq.Err(), rreq.Err())
	}
	if !bytes.Equal(rreq.Data, payload) {
		t.Fatal("payload corrupted across retransmission")
	}
	if r.sender.Stats().EagerRetries == 0 {
		t.Error("recovery without a counted eager retransmission")
	}
	requireClean(t, "sender", r.ga)
	requireClean(t, "receiver", r.gb)
}

// TestEagerAckLossDoesNotDuplicate drops the receiver's outbound
// direction, so the frame lands but its ack dies: the sender
// retransmits, the receiver's settled log recognizes the duplicate,
// re-acks without redelivering, and the sender finally completes. A
// second receive on the same tag must stay unmatched — the message was
// delivered exactly once.
func TestEagerAckLossDoesNotDuplicate(t *testing.T) {
	r := newEagerRig(t, fabric.FaultConfig{}, StrategyDefault)
	defer r.close()
	payload := chaosPayload(2 << 10)

	r.db.SetFaults(&fabric.FaultConfig{DropProb: 1})
	rreq := r.gb.Irecv(1)
	sreq := r.ga.Isend(1, payload)
	r.schedule() // frame delivered; ack dies
	r.db.SetFaults(nil)

	if !r.drive(64*chaosRdvTimeout, sreq, rreq) {
		t.Fatal("sender did not recover from a dropped ack")
	}
	if sreq.Err() != nil || rreq.Err() != nil {
		t.Fatalf("transfer failed: send %v, recv %v", sreq.Err(), rreq.Err())
	}
	if !bytes.Equal(rreq.Data, payload) {
		t.Fatal("payload corrupted")
	}
	if r.sender.Stats().EagerRetries == 0 {
		t.Error("ack loss recovered without a retransmission; where did the ack come from?")
	}

	// The retransmitted duplicate must have been swallowed by the settled
	// log, not delivered to a later receive.
	extra := r.gb.Irecv(1)
	r.drive(16*chaosRdvTimeout, sreq)
	if extra.Test() {
		t.Fatal("duplicate eager frame matched a second receive; dedup failed")
	}
	if !extra.Cancel() {
		t.Fatal("Cancel refused the sentinel receive")
	}
	requireClean(t, "sender", r.ga)
	requireClean(t, "receiver", r.gb)
}

// TestEagerPermanentLossVisible cuts the sender's outbound direction
// forever: the retry budget must exhaust in bounded virtual time and
// surface ErrEagerTimeout — never a silent success, never a hang.
func TestEagerPermanentLossVisible(t *testing.T) {
	r := newEagerRig(t, fabric.FaultConfig{}, StrategyDefault)
	defer r.close()

	r.da.SetFaults(&fabric.FaultConfig{DropProb: 1})
	rreq := r.gb.Irecv(1)
	sreq := r.ga.Isend(1, chaosPayload(2<<10))

	// Budget: retries back off exponentially (T..16T for 4 retries), so
	// 256 timeouts of virtual time is comfortable.
	if !r.drive(256*chaosRdvTimeout, sreq) {
		t.Fatal("send still pending after budget; eager loss hangs")
	}
	if !errors.Is(sreq.Err(), ErrEagerTimeout) {
		t.Errorf("send error = %v, want ErrEagerTimeout", sreq.Err())
	}
	if r.sender.Stats().EagerTimeouts == 0 {
		t.Error("timeout not counted")
	}
	// The receive never saw a frame; cancellation is the documented
	// cleanup for an orphaned receive.
	if !rreq.Cancel() {
		t.Fatal("Cancel refused the orphaned receive")
	}
	requireClean(t, "sender", r.ga)
	requireClean(t, "receiver", r.gb)
}

// TestNoEagerRetryLosesSilently is the ablation proving the window is
// load-bearing: fire-and-forget eager through the same permanent loss
// reports SUCCESS to the sender while the receiver waits forever — the
// silent-loss failure mode the ack window exists to kill.
func TestNoEagerRetryLosesSilently(t *testing.T) {
	f := fabric.NewSimFabric(fabric.SimConfig{})
	caps := fabric.Capabilities{Latency: simtime.Microsecond, Bandwidth: 4e9, MaxInject: 16 << 10, RMA: true}
	da, db := f.OpenDomain(caps), f.OpenDomain(caps)
	ea, eb := fabric.Connect(da, db)
	clock := func() int64 { return int64(f.Now()) }
	cfg := Config{
		NoAutoProgress: true,
		Clock:          clock,
		RdvTimeout:     int64(chaosRdvTimeout),
		RdvRetries:     4,
		NoEagerRetry:   true,
	}
	sender, receiver := NewEngine(cfg), NewEngine(cfg)
	defer sender.Close()
	defer receiver.Close()
	ga, err := sender.NewGateEndpoints(ea)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := receiver.NewGateEndpoints(eb)
	if err != nil {
		t.Fatal(err)
	}

	da.SetFaults(&fabric.FaultConfig{DropProb: 1})
	rreq := gb.Irecv(1)
	sreq := ga.Isend(1, chaosPayload(2<<10))
	for i := 0; i < 64; i++ {
		sender.Tasks().Schedule(0)
		receiver.Tasks().Schedule(0)
		f.Advance(4 * chaosRdvTimeout)
	}
	if !sreq.Test() || sreq.Err() != nil {
		t.Fatalf("fire-and-forget send should report wire-out success, got done=%v err=%v", sreq.Test(), sreq.Err())
	}
	if rreq.Test() {
		t.Fatal("receive completed across a dead link without retransmission; the ablation is broken")
	}
	if sender.Stats().EagerRetries != 0 {
		t.Error("ablation retransmitted; NoEagerRetry is not honored")
	}
	if !rreq.Cancel() {
		t.Fatal("Cancel refused the orphaned receive")
	}
	requireClean(t, "sender", ga)
	requireClean(t, "receiver", gb)
}

// TestCheckIdleReportsEagerPending is the leak-audit contract for the
// new window: an unacked eager message must show up in CheckIdle (and
// fail Clean) while in flight, and leave no trace once resolved.
func TestCheckIdleReportsEagerPending(t *testing.T) {
	r := newEagerRig(t, fabric.FaultConfig{}, StrategyDefault)
	defer r.close()

	r.da.SetFaults(&fabric.FaultConfig{DropProb: 1})
	rreq := r.gb.Irecv(1)
	sreq := r.ga.Isend(1, chaosPayload(2<<10))
	r.schedule() // wire-out happened, no ack can come back; clock untouched

	rep := r.ga.CheckIdle()
	if rep.EagerPending == 0 {
		t.Fatal("in-flight unacked eager message invisible to CheckIdle")
	}
	if rep.Clean() {
		t.Fatal("CheckIdle.Clean() true while an eager message awaits its ack")
	}

	r.da.SetFaults(nil)
	if !r.drive(64*chaosRdvTimeout, sreq, rreq) {
		t.Fatal("transfer did not finish after heal")
	}
	requireClean(t, "sender", r.ga)
	requireClean(t, "receiver", r.gb)
}

// TestEagerChaosSoup pushes a mix of aggregated batches and singleton
// eager messages through a fabric that drops, duplicates, and delays
// at random (seeded): every message must complete byte-exact or fail
// visibly with ErrEagerTimeout within the virtual-time budget — never
// hang, never deliver twice — and both gates must quiesce clean.
func TestEagerChaosSoup(t *testing.T) {
	r := newEagerRig(t, fabric.FaultConfig{
		Seed:        2009,
		DropProb:    0.15,
		DupProb:     0.10,
		DelayJitter: 20 * simtime.Microsecond,
	}, StrategyAggreg)
	defer r.close()

	const n = 24
	payloads := make([][]byte, n)
	sends := make([]*Request, n)
	recvs := make([]*Request, n)
	for i := 0; i < n; i++ {
		payloads[i] = []byte(fmt.Sprintf("eager-soup-%03d-%s", i, chaosPayload(64+i*7)))
		recvs[i] = r.gb.Irecv(uint64(i))
	}
	// Post in bursts so some sends aggregate into shared frames and some
	// go out as plain singletons — both wire formats cross the soup.
	for i := 0; i < n; i++ {
		sends[i] = r.ga.Isend(uint64(i), payloads[i])
		if i%5 == 4 {
			r.schedule()
		}
	}

	all := append(append([]*Request{}, sends...), recvs...)
	r.drive(512*chaosRdvTimeout, all...)

	ok, failed := 0, 0
	for i := 0; i < n; i++ {
		if !sends[i].Test() {
			t.Errorf("send %d hung", i)
			continue
		}
		switch err := sends[i].Err(); {
		case err == nil:
			ok++
			if !recvs[i].Test() {
				t.Errorf("send %d acked but recv %d still pending", i, i)
			} else if !bytes.Equal(recvs[i].Data, payloads[i]) {
				t.Errorf("recv %d corrupted: got %d bytes", i, len(recvs[i].Data))
			}
		case errors.Is(err, ErrEagerTimeout):
			failed++
			if !recvs[i].Test() && !recvs[i].Cancel() {
				t.Errorf("recv %d of a timed-out send refused cancellation", i)
			}
		default:
			t.Errorf("send %d failed with %v, want nil or ErrEagerTimeout", i, err)
		}
	}
	st := r.sender.Stats()
	t.Logf("soup: %d/%d delivered, %d failed visibly, retries=%d timeouts=%d acks=%d",
		ok, n, failed, st.EagerRetries, st.EagerTimeouts, st.EagerAcks)
	if ok < n*4/5 {
		t.Errorf("only %d/%d messages survived DropProb 0.15; the window is not retransmitting", ok, n)
	}
	if st.EagerRetries == 0 {
		t.Error("a 15%% drop soup fired zero retransmissions")
	}

	r.drive(32*chaosRdvTimeout, all...)
	requireClean(t, "sender", r.ga)
	requireClean(t, "receiver", r.gb)
}
