package nmad

import (
	"errors"
	"sync/atomic"
	"testing"

	"pioman/internal/admit"
)

// Admission-control acceptance tests. Every rig runs both engines on a
// manual clock with explicit progression, so admission decisions,
// wait-queue expiry, and deadline sweeps fire at exact instants.

// admitRig is a two-engine mem-rail pair whose sender runs admission
// control under the given policy and budgets.
type admitRig struct {
	clock  atomic.Int64
	ea, eb *Engine
	ga, gb *Gate
}

func newAdmitRig(t *testing.T, tweak func(*Config)) *admitRig {
	t.Helper()
	r := &admitRig{}
	r.clock.Store(1)
	clk := func() int64 { return r.clock.Load() }
	cfg := Config{NoAutoProgress: true, Clock: clk, RdvTimeout: 1 << 20, RdvRetries: 4}
	peer := cfg
	tweak(&cfg)
	r.ea = NewEngine(cfg)
	r.eb = NewEngine(peer)
	da, db := MemPair()
	var err error
	if r.ga, err = r.ea.NewGate(da); err != nil {
		t.Fatal(err)
	}
	if r.gb, err = r.eb.NewGate(db); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		r.ea.Close()
		r.eb.Close()
	})
	return r
}

// schedule runs a few progression passes on both engines.
func (r *admitRig) schedule() {
	for i := 0; i < 8; i++ {
		r.ea.Tasks().Schedule(0)
		r.eb.Tasks().Schedule(0)
	}
}

// advance moves the manual clock and runs progression so sweeps see it.
func (r *admitRig) advance(d int64) {
	r.clock.Add(d)
	r.schedule()
}

// drive progresses both engines until every request completes.
func (r *admitRig) drive(t *testing.T, reqs ...*Request) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		done := true
		for _, q := range reqs {
			if !q.Test() {
				done = false
				break
			}
		}
		if done {
			return
		}
		r.schedule()
	}
	t.Fatal("requests did not complete under progression")
}

func TestAdmitRejectFailsFast(t *testing.T) {
	r := newAdmitRig(t, func(c *Config) {
		c.Admit = &admit.Config{GateRequests: 2, GateBytes: 1 << 20}
		c.AdmitPolicy = AdmitReject
	})
	recvs := []*Request{r.gb.Irecv(1), r.gb.Irecv(2), r.gb.Irecv(3)}
	s1 := r.ga.Isend(1, []byte("one"))
	s2 := r.ga.Isend(2, []byte("two"))
	s3 := r.ga.Isend(3, []byte("three"))
	if !s3.Test() || !errors.Is(s3.Err(), ErrAdmissionReject) {
		t.Fatalf("third send past a 2-request budget: Test=%v Err=%v", s3.Test(), s3.Err())
	}
	r.drive(t, s1, s2, recvs[0], recvs[1])
	if s1.Err() != nil || s2.Err() != nil {
		t.Fatalf("admitted sends failed: %v, %v", s1.Err(), s2.Err())
	}
	// Credits released on completion: the next submission is admitted.
	s4 := r.ga.Isend(3, []byte("three again"))
	r.drive(t, s4, recvs[2])
	if s4.Err() != nil {
		t.Fatalf("send after drain failed: %v", s4.Err())
	}
	st := r.ea.Stats()
	if st.AdmitAdmitted != 3 || st.AdmitRejected != 1 {
		t.Fatalf("stats: admitted %d (want 3), rejected %d (want 1)", st.AdmitAdmitted, st.AdmitRejected)
	}
	if rep := r.ga.CheckIdle(); !rep.Clean() {
		t.Fatalf("sender gate leaked after quiesce: %+v", rep)
	}
	info := r.ea.AdmitInfo()
	if !info.Enabled || info.Requests != 0 || info.Bytes != 0 || info.Degraded {
		t.Fatalf("admission plane not idle after quiesce: %+v", info)
	}
}

func TestAdmitBlockDrainsOnRelease(t *testing.T) {
	r := newAdmitRig(t, func(c *Config) {
		c.Admit = &admit.Config{GateRequests: 1, GateBytes: 1 << 20}
		c.AdmitPolicy = AdmitBlock
		c.AdmitWait = 1 << 30
	})
	recvs := []*Request{r.gb.Irecv(1), r.gb.Irecv(2), r.gb.Irecv(3)}
	s1 := r.ga.Isend(1, []byte("head"))
	s2 := r.ga.Isend(2, []byte("parked"))
	s3 := r.ga.Isend(3, []byte("parked too"))
	if s2.Test() || s3.Test() {
		t.Fatal("blocked submissions completed without credits")
	}
	// Completing the head releases its credit; the parked submissions
	// inject strictly in FIFO order as credits free up.
	r.drive(t, s1, s2, s3, recvs[0], recvs[1], recvs[2])
	for i, s := range []*Request{s1, s2, s3} {
		if s.Err() != nil {
			t.Fatalf("send %d failed: %v", i+1, s.Err())
		}
	}
	st := r.ea.Stats()
	if st.AdmitBlocked != 2 || st.AdmitRejected != 0 || st.AdmitExpired != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if rep := r.ga.CheckIdle(); !rep.Clean() {
		t.Fatalf("sender gate leaked: %+v", rep)
	}
}

func TestAdmitBlockWaitExpires(t *testing.T) {
	r := newAdmitRig(t, func(c *Config) {
		c.Admit = &admit.Config{GateRequests: 1, GateBytes: 1 << 20}
		c.AdmitPolicy = AdmitBlock
		c.AdmitWait = 1000
	})
	// The head send is never progressed on the receiver side, so its
	// credit is never released and the parked submission must expire.
	s1 := r.ga.Isend(1, []byte("holds the only credit"))
	s2 := r.ga.Isend(2, []byte("parked"))
	if s2.Test() {
		t.Fatal("blocked submission completed without credits")
	}
	r.advance(2000)
	if !s2.Test() || !errors.Is(s2.Err(), ErrDeadlineExpired) {
		t.Fatalf("parked submission past its wait budget: Test=%v Err=%v", s2.Test(), s2.Err())
	}
	st := r.ea.Stats()
	if st.AdmitExpired != 1 || st.DeadlineExpired != 1 {
		t.Fatalf("stats: %+v", st)
	}
	_ = s1 // still in flight; engine close fails it
}

func TestCancelAdmissionBlockedSend(t *testing.T) {
	r := newAdmitRig(t, func(c *Config) {
		c.Admit = &admit.Config{GateRequests: 1, GateBytes: 1 << 20}
		c.AdmitPolicy = AdmitBlock
		c.AdmitWait = 1 << 30
	})
	recv := r.gb.Irecv(1)
	s1 := r.ga.Isend(1, []byte("head"))
	s2 := r.ga.Isend(2, []byte("parked"))
	if !s2.Cancel() {
		t.Fatal("Cancel refused an admission-parked send")
	}
	if !errors.Is(s2.Err(), ErrCanceled) {
		t.Fatalf("canceled send: %v", s2.Err())
	}
	if s2.Cancel() {
		t.Fatal("second Cancel won on a completed request")
	}
	// The canceled waiter is out of the queue: the head completes and
	// nothing tries to inject it.
	r.drive(t, s1, recv)
	if rep := r.ga.CheckIdle(); !rep.Clean() {
		t.Fatalf("sender gate leaked after cancel: %+v", rep)
	}
	// An injected send cannot be canceled.
	recv2 := r.gb.Irecv(3)
	s3 := r.ga.Isend(3, []byte("injected"))
	if s3.Cancel() {
		t.Fatal("Cancel won on an injected send")
	}
	r.drive(t, s3, recv2)
}

func TestAdmitDegradeShedsRendezvous(t *testing.T) {
	r := newAdmitRig(t, func(c *Config) {
		c.Admit = &admit.Config{
			GateRequests: 16, GateBytes: 64 << 10,
			HighWater: 0.5, LowWater: 0.2,
		}
		c.AdmitPolicy = AdmitDegrade
	})
	payload := make([]byte, 40<<10) // 40 KiB: rendezvous-sized, 62% of the byte budget
	for i := range payload {
		payload[i] = byte(i)
	}
	recv1 := r.gb.Irecv(1)
	s1 := r.ga.Isend(1, payload)
	if !r.ea.AdmitInfo().Degraded {
		t.Fatal("gate not degraded at 62% utilization with a 50% high watermark")
	}
	// Degraded mode sheds new rendezvous offers...
	s2 := r.ga.Isend(2, make([]byte, 16<<10))
	if !s2.Test() || !errors.Is(s2.Err(), ErrAdmissionReject) {
		t.Fatalf("rendezvous send under degraded mode: Test=%v Err=%v", s2.Test(), s2.Err())
	}
	// ...while eager traffic keeps flowing.
	recv3 := r.gb.Irecv(3)
	s3 := r.ga.Isend(3, []byte("eager still admitted"))
	r.drive(t, s1, s3, recv1, recv3)
	if s1.Err() != nil || s3.Err() != nil {
		t.Fatalf("admitted traffic failed: %v, %v", s1.Err(), s3.Err())
	}
	// Drained below the low watermark: recovered, rendezvous admitted.
	if r.ea.AdmitInfo().Degraded {
		t.Fatal("still degraded after the inflight drained")
	}
	recv4 := r.gb.Irecv(4)
	s4 := r.ga.Isend(4, make([]byte, 16<<10))
	r.drive(t, s4, recv4)
	if s4.Err() != nil {
		t.Fatalf("rendezvous after recovery failed: %v", s4.Err())
	}
	st := r.ea.Stats()
	if st.AdmitShed != 1 || st.AdmitRejected != 1 {
		t.Fatalf("stats: shed %d (want 1), rejected %d (want 1)", st.AdmitShed, st.AdmitRejected)
	}
	if rep := r.ga.CheckIdle(); !rep.Clean() {
		t.Fatalf("sender gate leaked: %+v", rep)
	}
}

func TestAdmitRecvCharged(t *testing.T) {
	r := newAdmitRig(t, func(c *Config) {
		c.Admit = &admit.Config{GateRequests: 1, GateBytes: 1 << 20}
		c.AdmitPolicy = AdmitReject
	})
	// Sized receives are admitted too: the second IrecvInto is refused.
	buf1, buf2 := make([]byte, 64), make([]byte, 64)
	r1 := r.ga.IrecvInto(1, buf1)
	r2 := r.ga.IrecvInto(2, buf2)
	if !r2.Test() || !errors.Is(r2.Err(), ErrAdmissionReject) {
		t.Fatalf("second sized receive past a 1-request budget: Test=%v Err=%v", r2.Test(), r2.Err())
	}
	// Open receives carry no byte commitment and are not admitted.
	r3 := r.ga.Irecv(3)
	if r3.Test() {
		t.Fatalf("open receive was refused: %v", r3.Err())
	}
	s1 := r.gb.Isend(1, []byte("into the buffer"))
	s3 := r.gb.Isend(3, []byte("open"))
	r.drive(t, r1, r3, s1, s3)
	if r1.Err() != nil || r3.Err() != nil {
		t.Fatalf("receives failed: %v, %v", r1.Err(), r3.Err())
	}
	if rep := r.ga.CheckIdle(); !rep.Clean() {
		t.Fatalf("gate leaked: %+v", rep)
	}
}

func TestDeadlineExpiredAtAdmission(t *testing.T) {
	r := newAdmitRig(t, func(c *Config) {
		c.Admit = &admit.Config{}
		c.AdmitPolicy = AdmitReject
	})
	r.clock.Store(500)
	s := r.ga.IsendDeadline(1, []byte("too late"), 100)
	if !s.Test() || !errors.Is(s.Err(), ErrDeadlineExpired) {
		t.Fatalf("send past its deadline: Test=%v Err=%v", s.Test(), s.Err())
	}
	if st := r.ea.Stats(); st.DeadlineExpired != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if rep := r.ga.CheckIdle(); !rep.Clean() {
		t.Fatalf("gate leaked: %+v", rep)
	}
}

func TestDeadlineExpiresInflightRendezvous(t *testing.T) {
	r := newAdmitRig(t, func(c *Config) {
		c.Admit = &admit.Config{}
		c.AdmitPolicy = AdmitReject
		c.RdvTimeout = 1 << 16
	})
	// The receiver never progresses: the handshake stalls and the
	// deadline sweep must fail the send with ErrDeadlineExpired — not
	// retransmit it into the ground until ErrRdvTimeout.
	s := r.ga.IsendDeadline(1, make([]byte, 32<<10), 5000)
	for i := 0; i < 64 && !s.Test(); i++ {
		r.clock.Add(1 << 13)
		for j := 0; j < 8; j++ {
			r.ea.Tasks().Schedule(0)
		}
	}
	if !s.Test() || !errors.Is(s.Err(), ErrDeadlineExpired) {
		t.Fatalf("stalled rendezvous past its deadline: Test=%v Err=%v", s.Test(), s.Err())
	}
	if st := r.ea.Stats(); st.DeadlineExpired != 1 || st.RdvTimeouts != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if rep := r.ga.CheckIdle(); !rep.Clean() {
		t.Fatalf("gate leaked after deadline expiry: %+v", rep)
	}
}

func TestDeadlineExpiresInflightEager(t *testing.T) {
	r := newAdmitRig(t, func(c *Config) {
		c.Admit = &admit.Config{}
		c.AdmitPolicy = AdmitReject
		c.RdvTimeout = 1 << 16
	})
	s := r.ga.IsendDeadline(1, []byte("small but doomed"), 5000)
	for i := 0; i < 64 && !s.Test(); i++ {
		r.clock.Add(1 << 13)
		for j := 0; j < 8; j++ {
			r.ea.Tasks().Schedule(0)
		}
	}
	if !s.Test() || !errors.Is(s.Err(), ErrDeadlineExpired) {
		t.Fatalf("unacked eager past its deadline: Test=%v Err=%v", s.Test(), s.Err())
	}
	if rep := r.ga.CheckIdle(); !rep.Clean() {
		t.Fatalf("gate leaked after eager deadline expiry: %+v", rep)
	}
}

// TestOverloadBoundedWithAdmission is the tentpole's bounded-occupancy
// claim in miniature: a sender flooding a receiver that never
// progresses keeps its eager retransmission window (and so its
// protocol-state count) at the admission budget, with the excess
// failing visibly.
func TestOverloadBoundedWithAdmission(t *testing.T) {
	const flood = 64
	r := newAdmitRig(t, func(c *Config) {
		c.Admit = &admit.Config{GateRequests: 4, GateBytes: 1 << 20}
		c.AdmitPolicy = AdmitReject
	})
	var rejected int
	for i := 0; i < flood; i++ {
		s := r.ga.Isend(uint64(i), make([]byte, 512))
		if s.Test() && errors.Is(s.Err(), ErrAdmissionReject) {
			rejected++
		}
	}
	if got := r.ea.InflightStates(); got > 4 {
		t.Fatalf("inflight states %d exceed the 4-request budget", got)
	}
	if rep := r.ga.CheckIdle(); rep.EagerPending > 4 {
		t.Fatalf("eager window %d exceeds the budget", rep.EagerPending)
	}
	if rejected != flood-4 {
		t.Fatalf("%d rejects for %d submissions over a 4-request budget", rejected, flood)
	}
	if st := r.ea.Stats(); st.AdmitRejected != uint64(rejected) {
		t.Fatalf("reject errors (%d) diverge from AdmitRejected (%d)", rejected, st.AdmitRejected)
	}
}

// TestOverloadUnboundedWithoutAdmission is the ablation: the identical
// flood with admission off grows the protocol state linearly with the
// submission count — the failure mode admission control exists to
// bound.
func TestOverloadUnboundedWithoutAdmission(t *testing.T) {
	const flood = 64
	r := newAdmitRig(t, func(c *Config) {})
	for i := 0; i < flood; i++ {
		r.ga.Isend(uint64(i), make([]byte, 512))
	}
	if got := r.ea.InflightStates(); got != flood {
		t.Fatalf("inflight states %d, want unbounded growth to %d", got, flood)
	}
}
