package nmad

import (
	"bytes"
	"errors"
	"testing"

	"pioman/internal/fabric"
	"pioman/internal/simtime"
)

// Rendezvous under frame loss: the handshake-timeout acceptance tests.
// Every test runs both engines on the fabric's virtual clock, so
// timeouts fire at exact modelled instants and failures are bounded in
// virtual time, not wall time.

const chaosRdvTimeout = 2 * simtime.Millisecond

// chaosRig is a two-engine pair over one RMA-capable rail whose
// rendezvous deadlines ride the fabric clock.
type chaosRig struct {
	f                *fabric.SimFabric
	da, db           *fabric.SimDomain
	sender, receiver *Engine
	ga, gb           *Gate
}

func newChaosRig(t testing.TB, fc fabric.FaultConfig, pull bool) *chaosRig {
	t.Helper()
	r := &chaosRig{f: fabric.NewSimFabric(fabric.SimConfig{Faults: fc})}
	caps := fabric.Capabilities{Latency: simtime.Microsecond, Bandwidth: 4e9, MaxInject: 16 << 10, RMA: true}
	r.da = r.f.OpenDomain(caps)
	r.db = r.f.OpenDomain(caps)
	ea, eb := fabric.Connect(r.da, r.db)
	clock := func() int64 { return int64(r.f.Now()) }
	cfg := Config{
		NoAutoProgress: true,
		NoRdvPull:      !pull,
		Clock:          clock,
		RdvTimeout:     int64(chaosRdvTimeout),
		RdvRetries:     4,
	}
	r.sender = NewEngine(cfg)
	r.receiver = NewEngine(cfg)
	var err error
	if r.ga, err = r.sender.NewGateEndpoints(ea); err != nil {
		t.Fatal(err)
	}
	if r.gb, err = r.receiver.NewGateEndpoints(eb); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *chaosRig) close() {
	r.sender.Close()
	r.receiver.Close()
}

// schedule runs a few progression passes on both engines.
func (r *chaosRig) schedule() {
	for i := 0; i < 8; i++ {
		r.sender.Tasks().Schedule(0)
		r.receiver.Tasks().Schedule(0)
	}
}

// drive progresses both engines until every request completes or the
// virtual-time budget runs out, expiring timeouts by advancing the
// fabric clock whenever the wire goes quiet. Returns whether all
// completed in budget.
func (r *chaosRig) drive(budget simtime.Duration, reqs ...*Request) bool {
	limit := r.f.Now() + simtime.Time(budget)
	for {
		done := true
		for _, q := range reqs {
			if !q.Test() {
				done = false
				break
			}
		}
		if done {
			return true
		}
		if r.f.Now() > limit {
			return false
		}
		r.schedule()
		r.f.Advance(chaosRdvTimeout / 4)
	}
}

func chaosPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*131 + i>>8)
	}
	return p
}

// requireClean fails the test when a quiesced gate still holds protocol
// state or pinned registrations.
func requireClean(t *testing.T, name string, g *Gate) {
	t.Helper()
	if rep := g.CheckIdle(); !rep.Clean() {
		t.Errorf("%s gate leaked after quiesce: %+v", name, rep)
	}
}

// TestRdvTimeoutRecoversDroppedRTS drops every frame the sender emits
// during a window covering the RTS, then heals the link: the timeout
// sweep retransmits the RTS and the transfer completes byte-exact.
func TestRdvTimeoutRecoversDroppedRTS(t *testing.T) {
	r := newChaosRig(t, fabric.FaultConfig{}, true)
	defer r.close()
	payload := chaosPayload(64 << 10)

	r.da.SetFaults(&fabric.FaultConfig{DropProb: 1})
	rreq := r.gb.Irecv(1)
	sreq := r.ga.Isend(1, payload)
	r.schedule() // the RTS leaves and dies on the wire
	r.da.SetFaults(nil)

	if !r.drive(64*chaosRdvTimeout, sreq, rreq) {
		t.Fatal("transfer did not recover from a dropped RTS")
	}
	if err := sreq.Err(); err != nil {
		t.Fatalf("send failed: %v", err)
	}
	if err := rreq.Err(); err != nil {
		t.Fatalf("recv failed: %v", err)
	}
	if !bytes.Equal(rreq.Data, payload) {
		t.Fatal("payload corrupted across retransmission")
	}
	if got := r.sender.Stats().RdvRetries; got == 0 {
		t.Error("recovery without a counted retransmission")
	}
	requireClean(t, "sender", r.ga)
	requireClean(t, "receiver", r.gb)
}

// TestRdvTimeoutRecoversDroppedCTS runs the classic push handshake and
// drops the receiver's CTS: the receiver-side sweep re-sends it (and a
// sender-side RTS retry is answered idempotently), so the transfer
// still completes.
func TestRdvTimeoutRecoversDroppedCTS(t *testing.T) {
	r := newChaosRig(t, fabric.FaultConfig{}, false)
	defer r.close()
	payload := chaosPayload(64 << 10)

	// Only the receiver's outbound direction is lossy: the RTS arrives,
	// the CTS answering it dies on the wire.
	r.db.SetFaults(&fabric.FaultConfig{DropProb: 1})
	rreq := r.gb.Irecv(1)
	sreq := r.ga.Isend(1, payload)
	r.schedule()
	r.db.SetFaults(nil)

	if !r.drive(64*chaosRdvTimeout, sreq, rreq) {
		t.Fatal("transfer did not recover from a dropped CTS")
	}
	if sreq.Err() != nil || rreq.Err() != nil {
		t.Fatalf("transfer failed: send %v, recv %v", sreq.Err(), rreq.Err())
	}
	if !bytes.Equal(rreq.Data, payload) {
		t.Fatal("payload corrupted across retransmission")
	}
	if r.sender.Stats().RdvRetries+r.receiver.Stats().RdvRetries == 0 {
		t.Error("recovery without a counted retransmission")
	}
	requireClean(t, "sender", r.ga)
	requireClean(t, "receiver", r.gb)
}

// TestRdvTimeoutFailsVisibly makes the receiver's outbound direction
// permanently lossy: the RTS arrives, every reply dies forever. Both
// halves must fail visibly within the bounded retry budget — virtual
// time, no wall-clock involved — and release every pinned resource.
func TestRdvTimeoutFailsVisibly(t *testing.T) {
	r := newChaosRig(t, fabric.FaultConfig{}, false)
	defer r.close()
	payload := chaosPayload(64 << 10)

	r.db.SetFaults(&fabric.FaultConfig{DropProb: 1})
	rreq := r.gb.Irecv(1)
	sreq := r.ga.Isend(1, payload)

	// Budget: retries back off exponentially (T, 2T, 4T, 8T, 16T for 4
	// retries), so 256 timeouts of virtual time is comfortable.
	if !r.drive(256*chaosRdvTimeout, sreq, rreq) {
		t.Fatalf("requests still pending after budget: send=%v recv=%v", sreq.Test(), rreq.Test())
	}
	if !errors.Is(sreq.Err(), ErrRdvTimeout) {
		t.Errorf("send error = %v, want ErrRdvTimeout", sreq.Err())
	}
	// The receiver either exhausts its own budget (ErrRdvTimeout) or is
	// told first by the sender's parting NACK (errPullRejected) —
	// whichever lands first, the failure must be visible.
	if err := rreq.Err(); err == nil {
		t.Error("recv completed silently; want a visible failure")
	} else if !errors.Is(err, ErrRdvTimeout) && !errors.Is(err, errPullRejected) {
		t.Errorf("recv error = %v, want ErrRdvTimeout or a rendezvous NACK", err)
	}
	if got := r.sender.Stats().RdvTimeouts; got == 0 {
		t.Error("sender timeout not counted")
	}
	requireClean(t, "sender", r.ga)
	requireClean(t, "receiver", r.gb)
}

// TestNoRdvTimeoutHangs is the broken-control ablation: with the sweep
// disabled, the same permanent loss leaves both requests pending
// forever and the sender's registrations pinned — the exact failure
// mode the timeout exists to kill.
func TestNoRdvTimeoutHangs(t *testing.T) {
	f := fabric.NewSimFabric(fabric.SimConfig{})
	caps := fabric.Capabilities{Latency: simtime.Microsecond, Bandwidth: 4e9, MaxInject: 16 << 10, RMA: true}
	da, db := f.OpenDomain(caps), f.OpenDomain(caps)
	ea, eb := fabric.Connect(da, db)
	clock := func() int64 { return int64(f.Now()) }
	cfg := Config{NoAutoProgress: true, Clock: clock, RdvTimeout: int64(chaosRdvTimeout), NoRdvTimeout: true}
	sender, receiver := NewEngine(cfg), NewEngine(cfg)
	defer sender.Close()
	defer receiver.Close()
	ga, err := sender.NewGateEndpoints(ea)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := receiver.NewGateEndpoints(eb)
	if err != nil {
		t.Fatal(err)
	}

	da.SetPartition(1) // cut before anything crosses
	rreq := gb.Irecv(1)
	sreq := ga.Isend(1, chaosPayload(64<<10))
	for i := 0; i < 50; i++ {
		sender.Tasks().Schedule(0)
		receiver.Tasks().Schedule(0)
		f.Advance(10 * chaosRdvTimeout)
	}
	if sreq.Test() || rreq.Test() {
		t.Fatal("requests completed without a timeout sweep; the ablation is broken")
	}
	rep := ga.CheckIdle()
	if rep.SendRendezvous == 0 {
		t.Error("hung sender holds no rendezvous state; expected a leak")
	}
	if rep.RegInFlight == 0 {
		t.Error("hung sender pins no registrations; expected a leak")
	}
	// The orphaned receive is recoverable only by cancellation.
	if !rreq.Cancel() {
		t.Fatal("Cancel refused an unmatched receive")
	}
	if !errors.Is(rreq.Err(), ErrCanceled) {
		t.Errorf("canceled receive error = %v, want ErrCanceled", rreq.Err())
	}
	requireClean(t, "receiver", gb)
}

// TestRdvChaosSoup runs a batch of rendezvous transfers through a
// fabric that drops, duplicates, and delays at random (seeded): every
// transfer must either complete byte-exact or fail visibly within the
// virtual-time budget — never hang — and the gates must quiesce clean.
func TestRdvChaosSoup(t *testing.T) {
	r := newChaosRig(t, fabric.FaultConfig{
		Seed:        1789,
		DropProb:    0.15,
		DupProb:     0.10,
		DelayJitter: 20 * simtime.Microsecond,
	}, true)
	defer r.close()

	const n = 12
	payload := chaosPayload(48 << 10)
	var sends, recvs [n]*Request
	for i := 0; i < n; i++ {
		recvs[i] = r.gb.Irecv(uint64(i))
	}
	for i := 0; i < n; i++ {
		sends[i] = r.ga.Isend(uint64(i), payload)
	}

	all := append(append([]*Request{}, sends[:]...), recvs[:]...)
	completed := r.drive(512*chaosRdvTimeout, all...)

	ok, failed := 0, 0
	for i := 0; i < n; i++ {
		switch {
		case !sends[i].Test():
			t.Errorf("send %d hung", i)
		case sends[i].Err() == nil:
			ok++
		default:
			failed++
		}
		if !recvs[i].Test() {
			// A receive whose sender gave up (and whose NACK was lost)
			// stays unmatched: cancellation is the documented cleanup.
			if !recvs[i].Cancel() {
				t.Errorf("recv %d hung and refused cancellation", i)
			}
			continue
		}
		if recvs[i].Err() == nil && !bytes.Equal(recvs[i].Data, payload) {
			t.Errorf("recv %d completed with corrupted payload", i)
		}
	}
	if !completed {
		t.Logf("budget hit with some requests pending (resolved above): ok=%d failed=%d", ok, failed)
	}
	t.Logf("soup: %d/%d transfers survived, %d failed visibly, sender retries=%d timeouts=%d",
		ok, n, failed, r.sender.Stats().RdvRetries, r.sender.Stats().RdvTimeouts)
	if ok == 0 {
		t.Error("no transfer survived DropProb 0.15; retransmission is not working")
	}

	// Quiesce: settle any stragglers the cancellations released, then
	// audit for leaks.
	r.drive(32*chaosRdvTimeout, all...)
	requireClean(t, "sender", r.ga)
	requireClean(t, "receiver", r.gb)
}
