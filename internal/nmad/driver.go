package nmad

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Driver abstracts one network rail: a point-to-point link to a peer
// engine. Send may block briefly (handing the frame to the wire); Poll
// must never block — it is called from PIOMan polling tasks.
//
// Implementations: MemPair (in-process), TCP (stdlib net), and the
// simulation drivers in the experiments.
type Driver interface {
	// Name identifies the driver kind ("mem", "tcp").
	Name() string
	// Send transmits one frame. The payload is copied or fully written
	// before return; the caller may reuse the buffer.
	Send(hdr Header, payload []byte) error
	// Poll returns the next received frame, if any.
	Poll() (Frame, bool, error)
	// Close shuts the rail down; subsequent Sends fail and Polls report
	// no frames.
	Close() error
}

// ErrClosed is returned when using a closed driver.
var ErrClosed = errors.New("nmad: driver closed")

// ErrBackpressure reports a transient rail-full condition: the send
// failed because the peer's receive ring is full, but the rail itself
// is healthy and later sends may succeed. The gate fails the affected
// request without marking the rail dead.
var ErrBackpressure = errors.New("nmad: rail backpressure")

// ---- In-process memory driver ----

// memDriver is one endpoint of an in-process rail: frames written by the
// peer land in rx.
type memDriver struct {
	rx     chan Frame
	peer   *memDriver
	closed atomic.Bool
}

// MemPair returns two connected in-process rails — the loopback
// equivalent of a NIC pair, used by tests, examples and single-process
// benchmarks.
func MemPair() (Driver, Driver) {
	a := &memDriver{rx: make(chan Frame, 4096)}
	b := &memDriver{rx: make(chan Frame, 4096)}
	a.peer = b
	b.peer = a
	return a, b
}

func (d *memDriver) Name() string { return "mem" }

func (d *memDriver) Send(hdr Header, payload []byte) error {
	if d.closed.Load() || d.peer.closed.Load() {
		return ErrClosed
	}
	// Copy the payload: the wire owns its bytes, like a real DMA.
	cp := make([]byte, len(payload))
	copy(cp, payload)
	select {
	case d.peer.rx <- Frame{Hdr: hdr, Payload: cp}:
		return nil
	default:
		return fmt.Errorf("mem rail rx ring full: %w", ErrBackpressure)
	}
}

func (d *memDriver) Poll() (Frame, bool, error) {
	select {
	case f := <-d.rx:
		return f, true, nil
	default:
		if d.closed.Load() {
			return Frame{}, false, ErrClosed
		}
		return Frame{}, false, nil
	}
}

func (d *memDriver) Close() error {
	d.closed.Store(true)
	return nil
}

// ---- TCP driver ----

// tcpDriver frames nmad packets over a stream connection. A reader
// goroutine (standing in for the NIC's RX DMA engine) deposits frames
// into a ring that Poll drains without blocking.
type tcpDriver struct {
	conn    net.Conn
	wmu     sync.Mutex
	bw      *bufio.Writer
	rx      chan Frame
	readErr atomic.Pointer[error]
	closed  atomic.Bool
}

// NewTCP wraps an established stream connection (TCP socket, Unix
// socket, net.Pipe end) as an nmad rail.
func NewTCP(conn net.Conn) Driver {
	d := &tcpDriver{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 64<<10),
		rx:   make(chan Frame, 1024),
	}
	go d.readLoop()
	return d
}

// DialTCP connects to a listening peer.
func DialTCP(addr string) (Driver, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewTCP(conn), nil
}

// AcceptTCP accepts one rail from a listener.
func AcceptTCP(ln net.Listener) (Driver, error) {
	conn, err := ln.Accept()
	if err != nil {
		return nil, err
	}
	return NewTCP(conn), nil
}

func (d *tcpDriver) Name() string { return "tcp" }

func (d *tcpDriver) Send(hdr Header, payload []byte) error {
	if d.closed.Load() {
		return ErrClosed
	}
	var hbuf [headerBytes + 4]byte
	hdr.encode(hbuf[:headerBytes])
	binary.LittleEndian.PutUint32(hbuf[headerBytes:], uint32(len(payload)))
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if _, err := d.bw.Write(hbuf[:]); err != nil {
		return err
	}
	if _, err := d.bw.Write(payload); err != nil {
		return err
	}
	return d.bw.Flush()
}

func (d *tcpDriver) readLoop() {
	br := bufio.NewReaderSize(d.conn, 64<<10)
	for {
		var hbuf [headerBytes + 4]byte
		if _, err := io.ReadFull(br, hbuf[:]); err != nil {
			d.storeErr(err)
			return
		}
		hdr, err := decodeHeader(hbuf[:headerBytes])
		if err != nil {
			d.storeErr(err)
			return
		}
		plen := binary.LittleEndian.Uint32(hbuf[headerBytes:])
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			d.storeErr(err)
			return
		}
		d.rx <- Frame{Hdr: hdr, Payload: payload}
	}
}

func (d *tcpDriver) storeErr(err error) {
	if d.closed.Load() {
		err = ErrClosed
	}
	d.readErr.Store(&err)
}

func (d *tcpDriver) Poll() (Frame, bool, error) {
	select {
	case f := <-d.rx:
		return f, true, nil
	default:
		// A read error after a local Close is the expected shutdown; any
		// other error — including an abrupt EOF from a vanished peer —
		// must surface so outstanding requests fail instead of hanging.
		if ep := d.readErr.Load(); ep != nil && !errors.Is(*ep, ErrClosed) {
			return Frame{}, false, *ep
		}
		return Frame{}, false, nil
	}
}

func (d *tcpDriver) Close() error {
	if d.closed.CompareAndSwap(false, true) {
		return d.conn.Close()
	}
	return nil
}
