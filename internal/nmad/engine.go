package nmad

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pioman/internal/admit"
	"pioman/internal/core"
	"pioman/internal/cpuset"
	"pioman/internal/fabric"
	"pioman/internal/topology"
	"pioman/internal/trace"
)

// StrategyKind selects the sending strategy applied to small messages
// (paper Fig. 1: the optimization layer between application flows and
// NICs).
type StrategyKind int

const (
	// StrategyDefault sends each message as its own frame immediately.
	StrategyDefault StrategyKind = iota
	// StrategyAggreg packs pending small messages heading to the same
	// gate into one frame — fewer, larger packets on the wire.
	StrategyAggreg
)

// Config parameterizes an Engine.
type Config struct {
	// Tasks is the PIOMan task engine driving progression. When nil a
	// private engine on the host topology is created, with full-tree
	// work stealing enabled so locality-first placement of polling
	// tasks (SubmitLocal) cannot strand them on an unscanned leaf.
	Tasks *core.Engine
	// EagerThreshold is the largest payload sent eagerly; larger
	// messages use the RTS/CTS rendezvous (default 8 KiB).
	EagerThreshold int
	// Strategy selects the small-message send strategy.
	Strategy StrategyKind
	// MaxAggr bounds the payload bytes packed into one aggregate frame
	// (default 16 KiB).
	MaxAggr int
	// EvenStripe disables capability-aware striping and divides
	// rendezvous payloads evenly across alive rails regardless of
	// their bandwidth — the seed behaviour, kept as an ablation for
	// the heterogeneous-rail benchmarks.
	EvenStripe bool
	// Calibrate wraps every gate rail in a fabric.Calibrator: striping
	// and eager routing then consume *measured* per-rail latency and
	// bandwidth instead of the provider's assumed envelope, starting
	// from zero knowledge (equal-weight striping) and converging as
	// completions are observed — the paper's sampled rail selection,
	// done online. Endpoints already wrapped in a CalibratedEndpoint
	// are used as-is, so callers may pre-seed or share calibrators.
	// Classic driver rails lose their codec-free frame fast path when
	// calibrated (frames pass through the generic byte interface to be
	// timed). Asynchronous providers must post send completions to be
	// measurable — for SimFabric, set SimConfig.SendCompletions — or
	// the calibrator runs disabled on its Assume seed (see
	// fabric.CalibratedEndpoint.Sampling).
	Calibrate bool
	// NoRdvPull disables the receiver-driven pull rendezvous: the
	// engine neither offers remote keys in its RTS frames (sender
	// side) nor pulls from offered keys (receiver side), falling back
	// to the classic CTS/push protocol everywhere. The ablation knob
	// for the zero-copy acceptance tests, and an escape hatch for
	// providers whose RMA path misbehaves.
	NoRdvPull bool
	// AutoProgress starts a background progression goroutine (default
	// on; disable when an external sched.Runtime drives the task
	// engine). Zero value means on; set NoAutoProgress to disable.
	NoAutoProgress bool
	// ProgressIdle is how long the background progression goroutine
	// sleeps when no task ran (default 20 µs).
	ProgressIdle time.Duration
	// Clock returns the engine's notion of time in nanoseconds, used by
	// the rendezvous handshake timeout. Default: the wall clock. A
	// deterministic harness passes the simulated fabric's virtual clock
	// so timeouts fire at exact modelled instants.
	Clock func() int64
	// RdvTimeout is the rendezvous handshake deadline in Clock
	// nanoseconds (default 500 ms): how long either half waits on the
	// peer's next protocol step before retransmitting. Each retry
	// doubles it.
	RdvTimeout int64
	// RdvRetries is how many retransmissions a stalled rendezvous half
	// attempts before failing with ErrRdvTimeout (default 3).
	RdvRetries int
	// NoEagerRetry disables reliable eager delivery (eager.go): eager
	// and aggregate frames revert to fire-and-forget buffered
	// semantics — no acknowledgements, no receiver dedup, no
	// retransmission — so a dropped frame silently loses the message.
	// The pre-reliability behaviour, kept as the chaos harness's
	// ablation: a lossy scenario that loses traffic under this knob
	// proves the retransmission window is load-bearing.
	NoEagerRetry bool
	// NoRdvTimeout disables the handshake timeout entirely — the
	// pre-timeout behaviour, where a lost control frame on a live rail
	// hangs both peers forever. Kept as the chaos harness's
	// deliberately-broken control: a scenario that fails its no-hung-
	// requests invariant under this knob proves the invariant detects
	// what the timeout exists to fix.
	NoRdvTimeout bool
	// Trace attaches a flight recorder: rendezvous RTS/CTS/FIN
	// arrivals, retransmissions, permanent timeouts, and rail deaths
	// are recorded under the owning gate's ring, stamped on Clock.
	// Nil (the default) leaves each hook as one nil check.
	Trace *trace.Recorder
	// Admit enables engine-level admission control (admission.go):
	// every Isend/IrecvInto takes request and byte credits against
	// engine-wide and per-gate budgets before injection, and overload
	// surfaces to the submitter per AdmitPolicy instead of growing the
	// protocol maps without bound. Nil (the default) disables admission
	// entirely — the submission paths are untouched.
	Admit *admit.Config
	// AdmitPolicy selects the overload behaviour when Admit is set:
	// block with a wait budget (default), fail fast, or degrade.
	AdmitPolicy AdmitPolicy
	// AdmitWait is the blocking policy's wait budget in Clock
	// nanoseconds: how long a parked submission may wait for credits
	// before failing with ErrDeadlineExpired (default RdvTimeout).
	AdmitWait int64
}

// Stats are engine-wide counters.
type Stats struct {
	MsgsSent        uint64 // application messages sent
	MsgsRecv        uint64 // application messages received
	FramesSent      uint64 // frames put on a wire
	FramesRecv      uint64 // frames taken off a wire
	EagerSent       uint64 // messages sent eagerly
	Aggregated      uint64 // messages that travelled inside an aggregate
	AggrFrames      uint64 // aggregate frames sent
	RdvStarted      uint64 // rendezvous handshakes initiated
	RdvData         uint64 // rendezvous data fragments sent
	Restripes       uint64 // fragments re-routed onto a surviving rail
	RdvPulls        uint64 // RMA reads posted by pull-mode rendezvous
	RdvPullBytes    uint64 // payload bytes landed by RMA reads
	RdvPushRanges   uint64 // pull-mode byte ranges that fell back to push
	RdvFins         uint64 // pull-mode rendezvous completed (FIN sent)
	RecvCopiedBytes uint64 // payload bytes memcpy'd on the receive path
	RdvRetries      uint64 // rendezvous steps retransmitted after a timeout
	RdvTimeouts     uint64 // rendezvous halves failed with ErrRdvTimeout
	EagerRetries    uint64 // eager messages retransmitted after a timeout
	EagerTimeouts   uint64 // eager messages failed with ErrEagerTimeout
	EagerAcks       uint64 // eager messages acknowledged by the peer

	AdmitAdmitted   uint64 // submissions granted admission credits
	AdmitRejected   uint64 // submissions failed with ErrAdmissionReject (all causes)
	AdmitShed       uint64 // rendezvous submissions shed by degraded mode (subset of rejected)
	AdmitBlocked    uint64 // submissions parked by the blocking policy
	AdmitExpired    uint64 // parked submissions that waited past their budget
	DeadlineExpired uint64 // requests failed with ErrDeadlineExpired (all causes)
}

// Engine is one communication endpoint multiplexing any number of gates
// (peer connections) over the PIOMan task engine.
type Engine struct {
	cfg         Config
	tasks       *core.Engine
	progressCPU int

	clock func() int64

	mu          sync.Mutex
	gates       []*Gate
	recvQ       map[matchKey]*fifo[*Request]
	unexpected  map[matchKey]*fifo[inbound]
	rdvRecv     map[rdvKey]*recvRdvState
	sendRdv     map[rdvKey]*sendRdvState
	eagerPend   map[rdvKey]*eagerState
	settledSend settledLog
	settledRecv settledLog
	seenEager   settledLog

	reqPool     sync.Pool // *Request
	sendRdvPool sync.Pool // *sendRdvState
	recvRdvPool sync.Pool // *recvRdvState
	eagerPool   sync.Pool // *eagerState
	reqFIFOPool sync.Pool // *fifo[*Request]
	inbFIFOPool sync.Pool // *fifo[inbound]

	stopped atomic.Bool
	wg      sync.WaitGroup

	nextSweep atomic.Int64

	// rec is the optional flight recorder (Config.Trace); nil means
	// every hook is a single nil check.
	rec *trace.Recorder
	// lastProgress is the Clock stamp of the most recent progression
	// pass (background loop iteration or deadline sweep) — the
	// engine-liveness signal /healthz probes.
	lastProgress atomic.Int64

	msgsSent, msgsRecv, framesSent, framesRecv atomic.Uint64
	eagerSent, aggregated, aggrFrames          atomic.Uint64
	rdvStarted, rdvData, restripes             atomic.Uint64
	rdvPulls, rdvPullBytes, rdvPushRanges      atomic.Uint64
	rdvFins, recvCopied                        atomic.Uint64
	rdvRetries, rdvTimeouts                    atomic.Uint64
	eagerRetries, eagerTimeouts, eagerAcks     atomic.Uint64

	// admit is the admission plane (Config.Admit); nil means admission
	// is off and every submission path skips it with one nil check.
	admit                                   *admitPlane
	admitAdmitted, admitRejected, admitShed atomic.Uint64
	admitBlocked, admitExpired              atomic.Uint64
	deadlineExpired                         atomic.Uint64
}

type rdvKey struct {
	gate  *Gate
	msgID uint64
}

// matchKey indexes posted receives and unexpected arrivals: O(1)
// matching by (gate, tag) instead of a linear scan, with FIFO order
// preserved per key.
type matchKey struct {
	gate *Gate
	tag  uint64
}

// fifo is one (gate, tag) queue of posted receives or unexpected
// arrivals. The backing slice is reused across drain cycles, so
// steady-state post/match traffic allocates nothing.
type fifo[T any] struct {
	items []T
	head  int
}

func (q *fifo[T]) push(v T) { q.items = append(q.items, v) }

func (q *fifo[T]) pop() (T, bool) {
	var zero T
	if q.head == len(q.items) {
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	} else if q.head >= 32 && q.head*2 >= len(q.items) {
		// Compact once the dead prefix dominates: a queue that never
		// fully drains (receives always re-posted before the current
		// one matches) must not grow its backing slice without bound.
		// Amortized O(1) per pop; the vacated tail is zeroed so moved
		// entries are not pinned twice.
		n := copy(q.items, q.items[q.head:])
		tail := q.items[n:]
		for i := range tail {
			tail[i] = zero
		}
		q.items = q.items[:n]
		q.head = 0
	}
	return v, true
}

func (q *fifo[T]) empty() bool { return q.head == len(q.items) }

// FIFO pooling: a (gate, tag) queue lives in the matching map only
// while it holds entries; a drained queue goes back to the pool and
// its map slot is deleted, so engines seeing ever-fresh tags do not
// grow their maps without bound — and steady-state matching allocates
// nothing either way. Callers hold e.mu.

func getFIFO[T any](pool *sync.Pool) *fifo[T] {
	q, _ := pool.Get().(*fifo[T])
	if q == nil {
		q = &fifo[T]{}
	}
	return q
}

// dropFIFOIfEmpty retires a drained queue from its matching map.
func dropFIFOIfEmpty[T any](m map[matchKey]*fifo[T], pool *sync.Pool, key matchKey, q *fifo[T]) {
	if q.empty() {
		delete(m, key)
		pool.Put(q)
	}
}

type inbound struct {
	gate    *Gate
	hdr     Header
	payload []byte
	ext     []byte // RTS pull offer (copied when stashed)
}

type sendRdvState struct {
	data      []byte
	req       *Request
	remaining atomic.Int32

	// Pull-mode fields: the interned registrations backing the RTS
	// offer, and the offer bytes themselves (rides the RTS imm
	// extension; storage reused across rendezvous).
	regs  []*fabric.CachedRegion
	offer []byte

	// Handshake-timeout fields (guarded by Engine.mu): what a
	// retransmitted RTS must carry, the deadline on the engine clock,
	// and the retries already burned.
	tag      uint64
	total    uint32
	deadline int64
	retries  int
}

// releaseRegs returns the state's interned registrations to their
// caches. Idempotent: every removal path calls it.
func (st *sendRdvState) releaseRegs() {
	for i, r := range st.regs {
		if r != nil {
			r.Release()
			st.regs[i] = nil
		}
	}
	st.regs = st.regs[:0]
}

// getSendRdv takes a send-rendezvous state from the pool.
func (e *Engine) getSendRdv() *sendRdvState {
	st, _ := e.sendRdvPool.Get().(*sendRdvState)
	if st == nil {
		st = &sendRdvState{}
	}
	return st
}

// putSendRdv recycles a send-rendezvous state. Only clean completion
// paths recycle; failure sweeps leave the state to the garbage
// collector, because in-flight packets may still reference its offer.
func (e *Engine) putSendRdv(st *sendRdvState) {
	st.data = nil
	st.req = nil
	st.remaining.Store(0)
	st.releaseRegs()
	st.offer = st.offer[:0]
	st.tag = 0
	st.total = 0
	st.deadline = 0
	st.retries = 0
	e.sendRdvPool.Put(st)
}

// NewEngine builds an engine and starts its progression.
func NewEngine(cfg Config) *Engine {
	if cfg.Tasks == nil {
		// The private engine runs the full adaptive control plane: the
		// drain batch of each queue tracks the poll/send mix, and steal
		// windows track the thief hit-rate — this engine serves only
		// progression tasks, so there is no externally tuned workload
		// to preserve.
		cfg.Tasks = core.New(core.Config{
			Topology:      topology.Host(),
			AdaptiveDrain: true,
			Steal:         core.StealConfig{Policy: core.StealFullTree, Adaptive: true},
		})
	}
	if cfg.EagerThreshold <= 0 {
		cfg.EagerThreshold = 8 << 10
	}
	if cfg.MaxAggr <= 0 {
		cfg.MaxAggr = 16 << 10
	}
	if cfg.ProgressIdle <= 0 {
		cfg.ProgressIdle = 20 * time.Microsecond
	}
	if cfg.Clock == nil {
		cfg.Clock = func() int64 { return time.Now().UnixNano() }
	}
	if cfg.RdvTimeout <= 0 {
		cfg.RdvTimeout = int64(500 * time.Millisecond)
	}
	if cfg.RdvRetries <= 0 {
		cfg.RdvRetries = 3
	}
	e := &Engine{
		cfg:         cfg,
		tasks:       cfg.Tasks,
		progressCPU: 1 % cfg.Tasks.Topology().NCPUs,
		clock:       cfg.Clock,
		recvQ:       make(map[matchKey]*fifo[*Request]),
		unexpected:  make(map[matchKey]*fifo[inbound]),
		rdvRecv:     make(map[rdvKey]*recvRdvState),
		sendRdv:     make(map[rdvKey]*sendRdvState),
		eagerPend:   make(map[rdvKey]*eagerState),
		rec:         cfg.Trace,
	}
	if cfg.Admit != nil {
		e.admit = newAdmitPlane(cfg)
	}
	// The sweeper serves every deadline family — rendezvous handshakes,
	// the eager retransmission window, and the admission wait queue —
	// so it runs unless all of them are disabled.
	if !cfg.NoRdvTimeout || !cfg.NoEagerRetry || e.admit != nil {
		e.startSweeper()
	}
	if !cfg.NoAutoProgress {
		e.wg.Add(1)
		go e.progressLoop()
	}
	return e
}

// Tasks exposes the underlying task engine (for wiring into a
// sched.Runtime or for WaitActive-style helpers).
func (e *Engine) Tasks() *core.Engine { return e.tasks }

// Gates returns a snapshot of the engine's open gates, for observers
// walking per-rail stats. The slice is a copy; the gates are live.
func (e *Engine) Gates() []*Gate {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*Gate(nil), e.gates...)
}

// FailedGates counts gates with no alive rail left — connections the
// engine has declared dead. /healthz treats any non-zero value as
// unhealthy.
func (e *Engine) FailedGates() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, g := range e.gates {
		if g.alive.Load() <= 0 {
			n++
		}
	}
	return n
}

// LastProgress returns the Clock stamp of the most recent progression
// pass (background loop iteration or deadline sweep), 0 before the
// first one — the engine-liveness signal health probes compare against
// the current clock.
func (e *Engine) LastProgress() int64 { return e.lastProgress.Load() }

// SettledOccupancy reports how many entries each dedup log currently
// pins (sender-settled rendezvous, receiver-settled rendezvous, seen
// eager sequences). Bounded by the logs' ring capacity; a log stuck at
// its cap under load is retransmission pressure made visible.
func (e *Engine) SettledOccupancy() (send, recv, eager int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.settledSend.set), len(e.settledRecv.set), len(e.seenEager.set)
}

// submitProgress routes an internal progression task to the task
// engine: locality-first (SubmitLocal on the progression CPU's leaf)
// when full-tree stealing can migrate it to whichever CPU scans,
// deepest-covering placement otherwise — a leaf-parked task that no
// scanner can reach would strand its gate forever.
func (e *Engine) submitProgress(t *core.Task) error {
	if e.tasks.StealReachesAll() {
		return e.tasks.SubmitLocal(t, e.progressCPU)
	}
	return e.tasks.Submit(t)
}

// progressLoop is the background progression context: the stand-in for
// idle cores and timer interrupts executing PIOMan tasks while the
// application computes.
func (e *Engine) progressLoop() {
	defer e.wg.Done()
	cpu := e.progressCPU
	for !e.stopped.Load() {
		e.lastProgress.Store(e.clock())
		ran := e.tasks.Schedule(cpu)
		if ran == 0 {
			e.tasks.SetIdle(cpu, true)
			time.Sleep(e.cfg.ProgressIdle)
			e.tasks.SetIdle(cpu, false)
			continue
		}
		runtime.Gosched()
	}
}

// Close stops progression, completes outstanding requests (posted
// receives, in-flight rendezvous on both sides) with an error,
// releases the gates' registration caches and closes every rail of
// every gate.
func (e *Engine) Close() error {
	if !e.stopped.CompareAndSwap(false, true) {
		return nil
	}
	e.mu.Lock()
	var pending []*Request
	for _, q := range e.recvQ {
		for {
			r, ok := q.pop()
			if !ok {
				break
			}
			pending = append(pending, r)
		}
	}
	for _, st := range e.rdvRecv {
		st.markFailed()
		pending = append(pending, st.req)
	}
	for _, st := range e.sendRdv {
		st.releaseRegs()
		pending = append(pending, st.req)
	}
	for _, st := range e.eagerPend {
		pending = append(pending, st.req)
	}
	gates := append([]*Gate(nil), e.gates...)
	e.recvQ = map[matchKey]*fifo[*Request]{}
	e.rdvRecv = map[rdvKey]*recvRdvState{}
	e.sendRdv = map[rdvKey]*sendRdvState{}
	e.eagerPend = map[rdvKey]*eagerState{}
	e.mu.Unlock()
	sortVictims(pending)
	for _, r := range pending {
		r.complete(ErrClosed)
	}
	// Admission-parked submissions hold no credits and no trace span
	// yet; fail them after the injected victims, in FIFO order.
	for _, w := range e.admitTakeWaiters(nil) {
		w.req.complete(ErrClosed)
	}
	var firstErr error
	for _, g := range gates {
		for _, c := range g.regCaches {
			if err := c.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		for _, r := range g.rails {
			if err := r.ep.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	e.wg.Wait()
	return firstErr
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		MsgsSent:   e.msgsSent.Load(),
		MsgsRecv:   e.msgsRecv.Load(),
		FramesSent: e.framesSent.Load(),
		FramesRecv: e.framesRecv.Load(),
		EagerSent:  e.eagerSent.Load(),
		Aggregated: e.aggregated.Load(),
		AggrFrames: e.aggrFrames.Load(),
		RdvStarted: e.rdvStarted.Load(),
		RdvData:    e.rdvData.Load(),
		Restripes:  e.restripes.Load(),

		RdvPulls:        e.rdvPulls.Load(),
		RdvPullBytes:    e.rdvPullBytes.Load(),
		RdvPushRanges:   e.rdvPushRanges.Load(),
		RdvFins:         e.rdvFins.Load(),
		RecvCopiedBytes: e.recvCopied.Load(),
		RdvRetries:      e.rdvRetries.Load(),
		RdvTimeouts:     e.rdvTimeouts.Load(),
		EagerRetries:    e.eagerRetries.Load(),
		EagerTimeouts:   e.eagerTimeouts.Load(),
		EagerAcks:       e.eagerAcks.Load(),

		AdmitAdmitted:   e.admitAdmitted.Load(),
		AdmitRejected:   e.admitRejected.Load(),
		AdmitShed:       e.admitShed.Load(),
		AdmitBlocked:    e.admitBlocked.Load(),
		AdmitExpired:    e.admitExpired.Load(),
		DeadlineExpired: e.deadlineExpired.Load(),
	}
}

// rail is one fabric endpoint of a gate plus its liveness flag and
// transfer accounting. The mutex serializes Sends on the endpoint;
// the counters feed RailStats and the Σ per-rail bytes invariant.
type rail struct {
	ep fabric.Endpoint
	// rma is the endpoint's RMA face when the rail can serve pull-mode
	// rendezvous reads; nil otherwise.
	rma fabric.RMAEndpoint
	// cache interns sender-side registrations on the rail's domain
	// (shared between rails of one gate that share a domain); nil when
	// the rail cannot register memory.
	cache *fabric.RegCache
	// canExt reports that the endpoint carries immediate-byte
	// extensions (the generic byte path); classic frame drivers do
	// not, so pull offers never route onto them.
	canExt    bool
	mu        sync.Mutex
	dead      atomic.Bool
	frames    atomic.Uint64
	bytes     atomic.Uint64
	pullBytes atomic.Uint64
}

// bpLimit returns the rail's backpressure threshold: the number of
// in-flight frames that fill the measured bandwidth-delay product
// (BDP / average frame size, clamped to [8, 512]). Rails with an
// unknown bandwidth or latency fall back to the fixed default — there
// is no product to compute. The average frame size comes from the
// rail's own accounting, seeded with a nominal 4 KiB before traffic.
// The envelope is passed in rather than re-fetched: Capabilities may
// take a provider lock (SimFabric) or fold estimator state
// (CalibratedEndpoint), and every caller has already fetched it.
func (r *rail) bpLimit(caps fabric.Capabilities) int {
	if caps.Bandwidth <= 0 || caps.Latency <= 0 {
		return defaultBackpressureLimit
	}
	avg := uint64(4 << 10)
	if frames := r.frames.Load(); frames > 0 {
		if a := r.bytes.Load() / frames; a > 0 {
			avg = a
		}
	}
	bdp := caps.Bandwidth * float64(caps.Latency) / 1e9
	lim := int(bdp / float64(avg))
	if lim < minBackpressureLimit {
		return minBackpressureLimit
	}
	if lim > maxBackpressureLimit {
		return maxBackpressureLimit
	}
	return lim
}

// backpressured reports whether the rail's completion queue exceeds
// its threshold.
func (r *rail) backpressured(caps fabric.Capabilities) bool {
	return r.ep.Backlog() > r.bpLimit(caps)
}

// RailStat is one rail's liveness, accounting and capability envelope,
// as returned by Gate.RailStats.
type RailStat struct {
	// Provider names the rail's backend ("mem", "tcp", "simrdma").
	Provider string
	// Caps is the rail's capability envelope.
	Caps fabric.Capabilities
	// Frames counts frames sent on the rail.
	Frames uint64
	// Bytes counts payload bytes sent on the rail.
	Bytes uint64
	// PullBytes counts payload bytes this side RMA-read in over the
	// rail (receiver-driven rendezvous).
	PullBytes uint64
	// Backlog is the rail's current completion-queue depth.
	Backlog int
	// BackpressureLimit is the rail's current backpressure threshold
	// (bandwidth-delay product over average frame size, or the default
	// for unknown rails).
	BackpressureLimit int
	// Dead reports whether the rail has failed.
	Dead bool
}

// Gate is a connection to one peer over one or more rails (fabric
// endpoints). Small messages are routed to the lowest-latency alive
// rail; large rendezvous payloads are striped across alive rails in
// proportion to their bandwidth (multirail), with backpressured rails
// deprioritized and fragments re-routed when a rail dies mid-request.
type Gate struct {
	eng       *Engine
	id        int
	rails     []*rail
	alive     atomic.Int32
	nextMsgID atomic.Uint64

	// traceNode/tracePeer are the identities stamped into span ids
	// (trace.PackSpanID): this side's node and the peer's node in
	// whatever namespace the harness assigns (cluster node index).
	// Defaults to the gate id on both, which keeps standalone
	// engine-pair tests self-consistent; SetTraceInfo rewires them at
	// link time so the two directions of one connection correlate.
	traceNode, tracePeer int

	// regCaches interns sender-side registrations per rail domain, so
	// rails sharing a domain share one cache (and repeated sends of
	// one buffer share one registration).
	regCaches map[fabric.Domain]*fabric.RegCache

	aggMu       sync.Mutex
	aggPending  []pendingSend
	aggFlushing bool
	aggBufs     [][]byte // pooled aggregate payload buffers

	pktPool    sync.Pool
	stripePool sync.Pool // *stripeScratch

	// admitL is the gate's admission ledger when the engine runs
	// admission control (nil otherwise); its budgets track the rails'
	// live BDP estimate unless the config pins them.
	admitL *admit.Ledger
}

type pendingSend struct {
	hdr     Header
	payload []byte
	req     *Request
}

// NewGate attaches a connection made of the given classic driver rails,
// wrapping each in the fabric adapter with its assumed capability
// envelope. Equivalent to NewGateEndpoints(WrapDriver(d, ...) ...);
// mem/TCP gates work exactly as before.
func (e *Engine) NewGate(drivers ...Driver) (*Gate, error) {
	eps := make([]fabric.Endpoint, len(drivers))
	for i, d := range drivers {
		eps[i] = WrapDriver(d, capsForDriver(d))
	}
	return e.NewGateEndpoints(eps...)
}

// NewGateEndpoints attaches a connection made of the given fabric
// endpoints and starts one repeated polling task per rail. Polling
// tasks run until the engine closes or their rail dies; they are
// placed locality-first on the progression CPU's leaf queue when the
// task engine steals (see Config.Tasks).
func (e *Engine) NewGateEndpoints(eps ...fabric.Endpoint) (*Gate, error) {
	if len(eps) == 0 {
		return nil, errors.New("nmad: gate needs at least one rail")
	}
	if e.cfg.Calibrate {
		// Wrap into a fresh slice: the variadic parameter may alias the
		// caller's backing array, which must not see its endpoints
		// silently replaced.
		wrapped := make([]fabric.Endpoint, len(eps))
		for i, ep := range eps {
			if _, ok := ep.(*fabric.CalibratedEndpoint); ok {
				wrapped[i] = ep
			} else {
				wrapped[i] = fabric.Calibrate(ep, fabric.CalibratorConfig{})
			}
		}
		eps = wrapped
	}
	g := &Gate{eng: e}
	if e.admit != nil {
		ac := e.admit.cfg
		g.admitL = admit.NewLedger(ac.GateRequests, ac.GateBytes, ac.HighWater, ac.LowWater)
	}
	for _, ep := range eps {
		r := &rail{ep: ep}
		// Ext capability is declared by the transport's envelope, not
		// inferred from wrapper types: a calibrated (or otherwise
		// decorated) driver rail still drops imm bytes beyond the
		// fixed header, and routing the RTS pull offer onto it would
		// silently strip the offer and disable pull for the gate.
		r.canExt = !ep.Capabilities().NoExt
		if rma, ok := ep.(fabric.RMAEndpoint); ok && ep.Capabilities().RMA {
			r.rma = rma
			if dd, ok := ep.(fabric.Domained); ok {
				if dom := dd.Domain(); dom != nil {
					if g.regCaches == nil {
						g.regCaches = make(map[fabric.Domain]*fabric.RegCache)
					}
					cache := g.regCaches[dom]
					if cache == nil {
						cache = fabric.NewRegCache(dom, 0)
						g.regCaches[dom] = cache
					}
					r.cache = cache
				}
			}
		}
		g.rails = append(g.rails, r)
	}
	g.alive.Store(int32(len(eps)))
	g.pktPool.New = func() any { return new(Packet) }
	e.mu.Lock()
	g.id = len(e.gates)
	g.traceNode, g.tracePeer = g.id, g.id
	e.gates = append(e.gates, g)
	e.mu.Unlock()

	for i := range g.rails {
		r := g.rails[i]
		idx := i
		// The driver adapter moves decoded Headers through the
		// package-internal fast path, preserving the classic rails'
		// codec-free, allocation-free frame handling.
		fe, _ := r.ep.(frameEndpoint)
		// A rail marked dead by the send path keeps being polled:
		// send and receive capability fail independently, and frames
		// already in flight toward us (a CTS, a data fragment) must
		// still land. Polling stops only on a receive-side error or
		// engine close.
		pollTask := &core.Task{
			Options: core.Repeat,
			CPUSet:  cpuset.Set{},
			Fn: func(any) bool {
				var hdr Header
				var payload, ext []byte
				var got bool
				var err error
				if fe != nil {
					var f Frame
					f, got, err = fe.PollFrame()
					hdr, payload = f.Hdr, f.Payload
				} else {
					var ev fabric.Event
					ev, got, err = r.ep.Poll()
					if err == nil && got {
						switch ev.Kind {
						case fabric.EventRMADone:
							// A pull-mode rendezvous chunk landed.
							e.pullDone(g, idx, ev)
							got = false
						case fabric.EventRecv:
							payload = ev.Payload
							// A frame we cannot parse means the rail
							// is delivering garbage: treat it like a
							// poll error rather than dropping frames
							// silently.
							hdr, err = decodeHeader(ev.Imm)
							if err == nil && len(ev.Imm) > headerBytes {
								ext = ev.Imm[headerBytes:]
							}
						default:
							got = false
						}
					}
				}
				if err != nil {
					e.railFailed(g, idx, err)
					return true
				}
				if got {
					e.framesRecv.Add(1)
					e.handleFrame(g, Frame{Hdr: hdr, Payload: payload, Ext: ext})
				}
				return e.stopped.Load()
			},
		}
		if err := e.submitProgress(pollTask); err != nil {
			return nil, fmt.Errorf("nmad: submitting poll task: %w", err)
		}
	}
	return g, nil
}

// railDown marks a rail dead and returns how many rails remain alive.
// The first caller to kill a given rail decrements the alive count.
func (g *Gate) railDown(i int) int {
	if g.rails[i].dead.CompareAndSwap(false, true) {
		n := int(g.alive.Add(-1))
		if r := g.eng.rec; r != nil {
			r.Record(g.id, trace.EvRailDeath, uint64(i), uint64(n))
		}
		return n
	}
	return int(g.alive.Load())
}

// railFailed handles a receiver-observed rail death. The rail stops
// being polled; when no rail survives the whole gate fails. When some
// do, the gate's in-flight rendezvous state is handled per protocol
// mode:
//
//   - Pull-mode receives know exactly which chunks ride which rails
//     (this side posted the reads), so chunks outstanding on the dead
//     rail are re-issued on the survivors — pulled again over another
//     offered key, or requested as a push — and the transfer survives.
//   - Push-mode state is failed conservatively: inbound frames already
//     in flight on the dead rail (a data fragment toward a reassembly,
//     a CTS toward a waiting sender, a FIN toward a pull-mode sender)
//     are lost and never retransmitted, and nothing records which
//     rails the sender chose, so waiting would hang forever. A prompt,
//     retriable error beats an unbounded wait — at the cost of
//     spuriously failing a transfer that never touched the dead rail.
//
// The dead endpoint is also closed, which is how the peer finds out:
// its next send into the closed transport fails, its own rail-death
// path marks the rail dead for sending, and its striping re-routes
// onto the survivors instead of feeding fragments to a ring nobody
// polls.
func (e *Engine) railFailed(g *Gate, idx int, err error) {
	if g.railDown(idx) == 0 {
		e.failGate(g, err)
		return
	}
	_ = g.rails[idx].ep.Close()
	e.mu.Lock()
	var victims []*Request
	var repull []*recvRdvState
	for key, st := range e.rdvRecv {
		if key.gate != g {
			continue
		}
		if st.beginSweep() {
			repull = append(repull, st)
			continue
		}
		st.markFailed()
		victims = append(victims, st.req)
		delete(e.rdvRecv, key)
		e.settleRecvLocked(key)
	}
	for key, st := range e.sendRdv {
		if key.gate == g {
			st.releaseRegs()
			victims = append(victims, st.req)
			delete(e.sendRdv, key)
			e.settleSendLocked(key)
		}
	}
	e.mu.Unlock()
	sortVictims(victims)
	for _, r := range victims {
		r.complete(err)
	}
	// Re-issue in msgID order: map iteration order is randomized, and
	// the re-posted reads must hit a simulated fabric in a reproducible
	// order for seeded chaos runs to replay exactly.
	sort.Slice(repull, func(i, j int) bool { return repull[i].msgID < repull[j].msgID })
	for _, st := range repull {
		e.reissueDeadRailChunks(g, st, idx)
	}
}

// failGate completes every outstanding request bound to the gate with
// the given error: posted receives, in-flight rendezvous reassemblies
// (pull or push), and sends waiting for a CTS or FIN.
func (e *Engine) failGate(g *Gate, err error) {
	e.mu.Lock()
	var victims []*Request
	for key, q := range e.recvQ {
		if key.gate != g {
			continue
		}
		for {
			r, ok := q.pop()
			if !ok {
				break
			}
			victims = append(victims, r)
		}
		delete(e.recvQ, key)
	}
	for key, st := range e.rdvRecv {
		if key.gate == g {
			st.markFailed()
			victims = append(victims, st.req)
			delete(e.rdvRecv, key)
			e.settleRecvLocked(key)
		}
	}
	for key, st := range e.sendRdv {
		if key.gate == g {
			st.releaseRegs()
			victims = append(victims, st.req)
			delete(e.sendRdv, key)
			e.settleSendLocked(key)
		}
	}
	for key, st := range e.eagerPend {
		if key.gate == g {
			victims = append(victims, st.req)
			delete(e.eagerPend, key)
		}
	}
	e.mu.Unlock()
	sortVictims(victims)
	for _, r := range victims {
		r.complete(err)
	}
	// Submissions still parked at admission for this gate can never be
	// injected now; fail them too (they hold no credits).
	for _, w := range e.admitTakeWaiters(g) {
		w.req.complete(err)
	}
}

// sortVictims orders a batch of to-be-failed requests by span id:
// completion now records trace events, and map iteration produced the
// batch in randomized order, which a byte-identical seeded trace
// cannot tolerate. Untraced requests (span id 0) record nothing, so
// their relative order is irrelevant.
func sortVictims(v []*Request) {
	sort.Slice(v, func(i, j int) bool { return v[i].traceID < v[j].traceID })
}

// SetTraceInfo assigns the gate's span-id identities: node is this
// side's id and peer the remote side's, in a namespace the caller
// owns (the cluster harness uses node indices). Both directions of a
// connection must agree — link A→B as (a, b) and B→A as (b, a) — for
// their span trees to merge on one message key. Call before traffic
// flows; the fields are read without synchronization on the record
// path.
func (g *Gate) SetTraceInfo(node, peer int) {
	g.traceNode, g.tracePeer = node, peer
}

// spanID packs a whole-message or chunk span id for this gate.
func (g *Gate) spanID(dir uint64, aux uint8, msgID uint64) uint64 {
	return trace.PackSpanID(g.traceNode, g.tracePeer, dir, aux, msgID)
}

// Rails returns the number of rails of the gate.
func (g *Gate) Rails() int { return len(g.rails) }

// ID returns the gate's engine-local identifier — the ring its flight-
// recorder events land under and the label its metrics export carries.
func (g *Gate) ID() int { return g.id }

// RailStats returns a per-rail snapshot: provider, capability
// envelope, frames and payload bytes sent, backlog, liveness. Bytes
// counts what the rail actually carried, so across rails it sums to
// the payload bytes the gate put on the wire — equal to the
// application payload bytes under StrategyDefault (the multirail
// tie-out invariant the tests check); aggregate frames count their
// packed size, which exceeds the raw application payloads by one
// 20-byte sub-header per packed message.
func (g *Gate) RailStats() []RailStat {
	out := make([]RailStat, len(g.rails))
	for i, r := range g.rails {
		caps := r.ep.Capabilities()
		out[i] = RailStat{
			Provider:          r.ep.Provider(),
			Caps:              caps,
			Frames:            r.frames.Load(),
			Bytes:             r.bytes.Load(),
			PullBytes:         r.pullBytes.Load(),
			Backlog:           r.ep.Backlog(),
			BackpressureLimit: r.bpLimit(caps),
			Dead:              r.dead.Load(),
		}
	}
	return out
}

// Backpressure thresholds: a rail whose completion-queue depth exceeds
// its bandwidth-delay product (in frames) is deprioritized by eager
// routing and rendezvous striping as long as a less congested rail
// exists. Rails with unknown envelopes use the fixed default; measured
// rails derive their own limit, clamped to [min, max] (see
// rail.bpLimit).
const (
	defaultBackpressureLimit = 64
	minBackpressureLimit     = 8
	maxBackpressureLimit     = 512
)

// pickEager returns the alive rail with the lowest latency, preferring
// rails whose completion queue is under their backpressure limit; -1
// when every rail is dead. Small messages ride this rail, so they
// never queue behind a bulk transfer on a congested or slow rail.
func (g *Gate) pickEager() int { return g.pickControl(false) }

// pickControl is pickEager with an optional restriction to rails that
// carry immediate-byte extensions — the rails a pull-offering RTS may
// ride without losing its offer.
func (g *Gate) pickControl(needExt bool) int {
	best, bestCongested := -1, -1
	var bestLat, bestCLat int64
	for i, r := range g.rails {
		if r.dead.Load() || (needExt && !r.canExt) {
			continue
		}
		caps := r.ep.Capabilities()
		lat := int64(caps.Latency)
		if r.backpressured(caps) {
			if bestCongested < 0 || lat < bestCLat {
				bestCongested, bestCLat = i, lat
			}
			continue
		}
		if best < 0 || lat < bestLat {
			best, bestLat = i, lat
		}
	}
	if best < 0 {
		return bestCongested
	}
	return best
}

// packet takes a wrapper from the gate pool.
func (g *Gate) packet() *Packet {
	p := g.pktPool.Get().(*Packet)
	p.reset()
	p.gate = g
	return p
}

// preparePacket wires the packet's embedded task for submission. The
// task is marked Repeat so a transiently backpressured rendezvous
// frame can requeue itself for another attempt; ordinary sends report
// completion on the first run.
func (g *Gate) preparePacket(p *Packet) *core.Task {
	p.Task.Arg = p
	p.Task.Fn = sendPacketTask
	p.Task.OnDone = recyclePacket
	p.Task.Options = core.Repeat
	return &p.Task
}

// sendPacket submits the packet's embedded task: the actual endpoint
// Send runs on an idle core when one exists, otherwise wherever the
// next scheduling hole appears (paper §IV-B submission offload).
func (g *Gate) sendPacket(p *Packet) {
	g.eng.tasks.MustSubmit(g.preparePacket(p))
}

// errAllRailsDead reports a send that found no alive rail to run on.
var errAllRailsDead = errors.New("nmad: every rail of the gate has failed")

// maxSendRetries bounds how many times a backpressured rendezvous
// frame requeues itself before the failure surfaces; each retry rides
// a full scheduling pass, giving the peer's ring time to drain.
const maxSendRetries = 64

// sendPacketTask is the task body shared by every packet send. A send
// failure marks the rail dead and re-routes the frame onto the best
// surviving rail — re-striping in flight — so a multirail request
// survives the loss of any proper subset of its rails; only when no
// rail remains does the request fail.
func sendPacketTask(arg any) bool {
	p := arg.(*Packet)
	g := p.gate
	var err error
	for {
		r := g.rails[p.rail]
		if r.dead.Load() {
			err = errAllRailsDead
		} else if fe, ok := r.ep.(frameEndpoint); ok {
			// Classic driver fast path: the decoded Header moves
			// straight through, no codec round-trip. Frame drivers
			// carry no imm extension; a re-routed pull offer is simply
			// dropped and the receiver falls back to push.
			r.mu.Lock()
			err = fe.SendFrame(p.Hdr, p.Payload)
			r.mu.Unlock()
		} else {
			// Assemble header + extension in the packet's own buffer:
			// the send path allocates nothing.
			imm := p.immBuf[:headerBytes]
			p.Hdr.encode(imm)
			if len(p.ext) > 0 {
				imm = append(imm, p.ext...)
			}
			r.mu.Lock()
			err = r.ep.Send(imm, p.Payload)
			r.mu.Unlock()
		}
		if err == nil {
			r.frames.Add(1)
			r.bytes.Add(uint64(len(p.Payload)))
			g.eng.framesSent.Add(1)
			if p.Hdr.Kind == KindAggr {
				g.eng.aggrFrames.Add(1)
				// Packed messages carry their requests directly
				// (fire-and-forget) or ride the ack window (reliable
				// eager) — exactly one of the two lists is populated.
				g.eng.aggregated.Add(uint64(len(p.reqs) + len(p.pend)))
			}
			p.completeAll(nil)
			return true
		}
		if errors.Is(err, ErrBackpressure) {
			// Transient rail-full condition; the rail stays alive
			// either way. A rendezvous frame has remote state waiting
			// on it (a CTS-waiting sender, a reassembling receiver
			// counting bytes, a FIN-waiting pull-mode sender, a
			// NACK's hanging target), so it requeues itself and
			// retries while the ring drains, up to a budget; past the
			// budget — or for an eager/aggregate frame, which either
			// fails fast (fire-and-forget contract) or is re-driven by
			// its own retransmission window — the outcome surfaces
			// locally.
			switch p.Hdr.Kind {
			case KindRTS, KindCTS, KindData, KindFin, KindRdvPush, KindRdvNack:
				if p.retries < maxSendRetries {
					p.retries++
					return false
				}
			}
			p.completeAll(err)
			return true
		}
		g.railDown(p.rail)
		next := g.pickEager()
		if next < 0 || next == p.rail {
			// The gate's last rail died through the send path: fail
			// the other outstanding requests too, exactly as a poll
			// error on the last rail would.
			if g.alive.Load() <= 0 {
				g.eng.failGate(g, err)
			}
			p.completeAll(err)
			return true
		}
		g.eng.restripes.Add(1)
		p.rail = next
	}
}

// completeAll routes the send outcome to every request attached to the
// packet: the single fragment/eager request and, for aggregate frames,
// each packed message's request. A failed control frame (RTS, CTS)
// carries no request of its own, but the rendezvous state behind it is
// waiting on a reply that will now never come — fail it visibly
// instead of leaving both sides hanging.
func (p *Packet) completeAll(err error) {
	g := p.gate
	if err == nil {
		if rec := g.eng.rec; rec != nil {
			// Wire-out is a phase boundary: an ack-tracked eager frame
			// leaving the wire ends its injection phase and starts the
			// ack wait; a fire-and-forget eager/aggregate frame just
			// ends injection; a rendezvous data fragment ends its
			// chunk. Retransmitted frames re-record — the analyzer
			// folds duplicates as first-begin/last-end.
			for _, id := range p.pend {
				sid := g.spanID(trace.DirSend, 0, id)
				rec.Record(g.id, trace.EvInjectEnd, sid, 0)
				rec.Record(g.id, trace.EvAckWaitBegin, sid, 0)
			}
			switch p.Hdr.Kind {
			case KindEager:
				if p.req != nil && p.req.traceID != 0 {
					rec.Record(g.id, trace.EvInjectEnd, p.req.traceID, 0)
				}
				for _, r := range p.reqs {
					if r.traceID != 0 {
						rec.Record(g.id, trace.EvInjectEnd, r.traceID, 0)
					}
				}
			case KindAggr:
				for _, r := range p.reqs {
					if r.traceID != 0 {
						rec.Record(g.id, trace.EvInjectEnd, r.traceID, 0)
					}
				}
			case KindData:
				if p.req != nil && p.req.traceID != 0 {
					rec.Record(g.id, trace.EvChunkEnd,
						g.spanID(trace.DirSend, uint8(p.Hdr.FragIdx), p.Hdr.MsgID), 0)
				}
			}
		}
	}
	if err != nil && len(p.pend) > 0 && !errors.Is(err, ErrBackpressure) {
		// Ack-tracked eager messages whose frame could not be sent at
		// all: fail them now. A transiently backpressured frame is
		// simply dropped instead — the pending entries stay in the
		// window and the deadline sweep retransmits once the peer's
		// ring drains.
		for _, id := range p.pend {
			p.gate.eng.failEager(p.gate, id, err)
		}
	}
	if p.req != nil {
		if err != nil {
			p.req.complete(err)
		} else if p.req.decRemaining() {
			if p.Hdr.Kind == KindData && p.req.traceID != 0 {
				// The last fragment is on the wire: the sender's
				// transfer phase is over.
				g.eng.rec.Record(g.id, trace.EvTransferEnd, p.req.traceID, 0)
			}
			p.req.complete(nil)
		}
	}
	for _, r := range p.reqs {
		r.complete(err)
	}
	if err != nil && p.req == nil && len(p.reqs) == 0 && len(p.pend) == 0 {
		p.gate.eng.failRendezvous(p.gate, p.Hdr, err)
	}
}

// failRendezvous completes the rendezvous state attached to a failed
// control frame: the sender's waiting entry for an RTS or pull-mode
// data frame, the receiver's reassembly for a CTS or push request. A
// failed FIN or NACK has no local state left to fail — the peer's half
// is handled by the rail-death sweeps.
func (e *Engine) failRendezvous(g *Gate, hdr Header, err error) {
	key := rdvKey{gate: g, msgID: hdr.MsgID}
	var victim *Request
	e.mu.Lock()
	switch hdr.Kind {
	case KindRTS, KindData:
		if st := e.sendRdv[key]; st != nil {
			st.releaseRegs()
			victim = st.req
			delete(e.sendRdv, key)
			e.settleSendLocked(key)
		}
	case KindCTS, KindRdvPush:
		if st := e.rdvRecv[key]; st != nil {
			st.markFailed()
			victim = st.req
			delete(e.rdvRecv, key)
			e.settleRecvLocked(key)
		}
	}
	e.mu.Unlock()
	if victim != nil {
		victim.complete(err)
	}
}

// recyclePacket returns the wrapper to its gate's pool, handing any
// pooled aggregate payload buffer back first. It runs as the task's
// OnDone hook — the final touch of the task lifecycle — so the reset
// cannot race with the engine's completion bookkeeping.
func recyclePacket(t *core.Task) {
	p := t.Arg.(*Packet)
	g := p.gate
	if p.scratch != nil {
		g.putAggBuf(p.scratch)
	}
	p.reset()
	g.pktPool.Put(p)
}
