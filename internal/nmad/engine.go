package nmad

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pioman/internal/core"
	"pioman/internal/cpuset"
	"pioman/internal/topology"
)

// StrategyKind selects the sending strategy applied to small messages
// (paper Fig. 1: the optimization layer between application flows and
// NICs).
type StrategyKind int

const (
	// StrategyDefault sends each message as its own frame immediately.
	StrategyDefault StrategyKind = iota
	// StrategyAggreg packs pending small messages heading to the same
	// gate into one frame — fewer, larger packets on the wire.
	StrategyAggreg
)

// Config parameterizes an Engine.
type Config struct {
	// Tasks is the PIOMan task engine driving progression. When nil a
	// private engine on the host topology is created.
	Tasks *core.Engine
	// EagerThreshold is the largest payload sent eagerly; larger
	// messages use the RTS/CTS rendezvous (default 8 KiB).
	EagerThreshold int
	// Strategy selects the small-message send strategy.
	Strategy StrategyKind
	// MaxAggr bounds the payload bytes packed into one aggregate frame
	// (default 16 KiB).
	MaxAggr int
	// AutoProgress starts a background progression goroutine (default
	// on; disable when an external sched.Runtime drives the task
	// engine). Zero value means on; set NoAutoProgress to disable.
	NoAutoProgress bool
	// ProgressIdle is how long the background progression goroutine
	// sleeps when no task ran (default 20 µs).
	ProgressIdle time.Duration
}

// Stats are engine-wide counters.
type Stats struct {
	MsgsSent   uint64 // application messages sent
	MsgsRecv   uint64 // application messages received
	FramesSent uint64 // frames put on a wire
	FramesRecv uint64 // frames taken off a wire
	EagerSent  uint64 // messages sent eagerly
	Aggregated uint64 // messages that travelled inside an aggregate
	AggrFrames uint64 // aggregate frames sent
	RdvStarted uint64 // rendezvous handshakes initiated
	RdvData    uint64 // rendezvous data fragments sent
}

// Engine is one communication endpoint multiplexing any number of gates
// (peer connections) over the PIOMan task engine.
type Engine struct {
	cfg   Config
	tasks *core.Engine

	mu         sync.Mutex
	gates      []*Gate
	recvQ      []*Request
	unexpected []inbound
	rdvRecv    map[rdvKey]*Request
	sendRdv    map[rdvKey]*sendRdvState

	stopped atomic.Bool
	wg      sync.WaitGroup

	msgsSent, msgsRecv, framesSent, framesRecv atomic.Uint64
	eagerSent, aggregated, aggrFrames          atomic.Uint64
	rdvStarted, rdvData                        atomic.Uint64
}

type rdvKey struct {
	gate  *Gate
	msgID uint64
}

type inbound struct {
	gate    *Gate
	hdr     Header
	payload []byte
}

type sendRdvState struct {
	data      []byte
	req       *Request
	remaining atomic.Int32
}

// NewEngine builds an engine and starts its progression.
func NewEngine(cfg Config) *Engine {
	if cfg.Tasks == nil {
		cfg.Tasks = core.New(core.Config{Topology: topology.Host()})
	}
	if cfg.EagerThreshold <= 0 {
		cfg.EagerThreshold = 8 << 10
	}
	if cfg.MaxAggr <= 0 {
		cfg.MaxAggr = 16 << 10
	}
	if cfg.ProgressIdle <= 0 {
		cfg.ProgressIdle = 20 * time.Microsecond
	}
	e := &Engine{
		cfg:     cfg,
		tasks:   cfg.Tasks,
		rdvRecv: make(map[rdvKey]*Request),
		sendRdv: make(map[rdvKey]*sendRdvState),
	}
	if !cfg.NoAutoProgress {
		e.wg.Add(1)
		go e.progressLoop()
	}
	return e
}

// Tasks exposes the underlying task engine (for wiring into a
// sched.Runtime or for WaitActive-style helpers).
func (e *Engine) Tasks() *core.Engine { return e.tasks }

// progressLoop is the background progression context: the stand-in for
// idle cores and timer interrupts executing PIOMan tasks while the
// application computes.
func (e *Engine) progressLoop() {
	defer e.wg.Done()
	ncpu := e.tasks.Topology().NCPUs
	cpu := 1 % ncpu
	for !e.stopped.Load() {
		ran := e.tasks.Schedule(cpu)
		if ran == 0 {
			e.tasks.SetIdle(cpu, true)
			time.Sleep(e.cfg.ProgressIdle)
			e.tasks.SetIdle(cpu, false)
			continue
		}
		runtime.Gosched()
	}
}

// Close stops progression, completes outstanding receives with an error
// and closes every rail of every gate.
func (e *Engine) Close() error {
	if !e.stopped.CompareAndSwap(false, true) {
		return nil
	}
	e.mu.Lock()
	pending := append([]*Request(nil), e.recvQ...)
	for _, r := range e.rdvRecv {
		pending = append(pending, r)
	}
	gates := append([]*Gate(nil), e.gates...)
	e.recvQ = nil
	e.mu.Unlock()
	for _, r := range pending {
		r.complete(ErrClosed)
	}
	var firstErr error
	for _, g := range gates {
		for _, rail := range g.rails {
			if err := rail.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	e.wg.Wait()
	return firstErr
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		MsgsSent:   e.msgsSent.Load(),
		MsgsRecv:   e.msgsRecv.Load(),
		FramesSent: e.framesSent.Load(),
		FramesRecv: e.framesRecv.Load(),
		EagerSent:  e.eagerSent.Load(),
		Aggregated: e.aggregated.Load(),
		AggrFrames: e.aggrFrames.Load(),
		RdvStarted: e.rdvStarted.Load(),
		RdvData:    e.rdvData.Load(),
	}
}

// Gate is a connection to one peer over one or more rails. Large
// rendezvous payloads are striped across all rails (multirail).
type Gate struct {
	eng       *Engine
	id        int
	rails     []Driver
	railMu    []sync.Mutex
	nextMsgID atomic.Uint64

	aggMu       sync.Mutex
	aggPending  []pendingSend
	aggFlushing bool

	pktPool sync.Pool
}

type pendingSend struct {
	hdr     Header
	payload []byte
	req     *Request
}

// NewGate attaches a connection made of the given rails and starts one
// repeated polling task per rail. The polling tasks run until the engine
// closes; their CPU set is unrestricted on the flat host topology (on a
// topology with caches PIOMan pins them near the submitting core).
func (e *Engine) NewGate(rails ...Driver) (*Gate, error) {
	if len(rails) == 0 {
		return nil, errors.New("nmad: gate needs at least one rail")
	}
	g := &Gate{eng: e, rails: rails, railMu: make([]sync.Mutex, len(rails))}
	g.pktPool.New = func() any { return new(Packet) }
	e.mu.Lock()
	g.id = len(e.gates)
	e.gates = append(e.gates, g)
	e.mu.Unlock()

	for i := range rails {
		rail := i
		pollTask := &core.Task{
			Options: core.Repeat,
			CPUSet:  cpuset.Set{},
			Fn: func(any) bool {
				f, ok, err := g.rails[rail].Poll()
				if err != nil {
					// Rail dead: stop polling it and fail every request
					// still bound to this gate so waiters do not hang.
					e.failGate(g, err)
					return true
				}
				if ok {
					e.framesRecv.Add(1)
					e.handleFrame(g, f)
				}
				return e.stopped.Load()
			},
		}
		if err := e.tasks.Submit(pollTask); err != nil {
			return nil, fmt.Errorf("nmad: submitting poll task: %w", err)
		}
	}
	return g, nil
}

// failGate completes every outstanding request bound to the gate with
// the given error: posted receives, in-flight rendezvous reassemblies,
// and sends waiting for a CTS.
func (e *Engine) failGate(g *Gate, err error) {
	e.mu.Lock()
	var victims []*Request
	kept := e.recvQ[:0]
	for _, r := range e.recvQ {
		if r.gate == g {
			victims = append(victims, r)
		} else {
			kept = append(kept, r)
		}
	}
	e.recvQ = kept
	for key, r := range e.rdvRecv {
		if key.gate == g {
			victims = append(victims, r)
			delete(e.rdvRecv, key)
		}
	}
	for key, st := range e.sendRdv {
		if key.gate == g {
			victims = append(victims, st.req)
			delete(e.sendRdv, key)
		}
	}
	e.mu.Unlock()
	for _, r := range victims {
		r.complete(err)
	}
}

// Rails returns the number of rails of the gate.
func (g *Gate) Rails() int { return len(g.rails) }

// packet takes a wrapper from the gate pool.
func (g *Gate) packet() *Packet {
	p := g.pktPool.Get().(*Packet)
	p.reset()
	p.gate = g
	return p
}

// sendPacket submits the packet's embedded task: the actual driver Send
// runs on an idle core when one exists, otherwise wherever the next
// scheduling hole appears (paper §IV-B submission offload).
func (g *Gate) sendPacket(p *Packet) {
	p.Task.Arg = p
	p.Task.Fn = sendPacketTask
	p.Task.OnDone = recyclePacket
	g.eng.tasks.MustSubmit(&p.Task)
}

// sendPacketTask is the task body shared by every packet send.
func sendPacketTask(arg any) bool {
	p := arg.(*Packet)
	g := p.gate
	g.railMu[p.rail].Lock()
	err := g.rails[p.rail].Send(p.Hdr, p.Payload)
	g.railMu[p.rail].Unlock()
	g.eng.framesSent.Add(1)
	if p.req != nil {
		if err != nil {
			p.req.complete(err)
		} else if p.req.decRemaining() {
			p.req.complete(nil)
		}
	}
	return true
}

// recyclePacket returns the wrapper to its gate's pool. It runs as the
// task's OnDone hook — the final touch of the task lifecycle — so the
// reset cannot race with the engine's completion bookkeeping.
func recyclePacket(t *core.Task) {
	p := t.Arg.(*Packet)
	pool := &p.gate.pktPool
	p.reset()
	pool.Put(p)
}
