package nmad

import (
	"testing"
)

// Fuzz harnesses for the two pieces of pure bookkeeping whose
// correctness everything chaotic leans on: the coverage-span merge
// that decides when a striped rendezvous payload is complete, and the
// bounded settled-log that dedups retransmitted frames. Both are
// checked against trivially-correct reference models (a bitmap, a
// map+FIFO queue); run with `go test -fuzz=FuzzCoverageMerge` (or
// FuzzSettledDedup) to explore beyond the committed corpus.

// coverageUniverse bounds fuzzed offsets so the reference bitmap stays
// small while still exercising every merge shape (insert, extend both
// ways, bridge, swallow, exact duplicate).
const coverageUniverse = 256

// FuzzCoverageMerge drives addCovered with arbitrary [lo, hi) ranges
// and cross-checks every return value and the final span set against a
// byte bitmap. A bug here either completes a rendezvous with holes in
// the payload (over-count) or wedges it forever (under-count).
func FuzzCoverageMerge(f *testing.F) {
	f.Add([]byte{0, 16, 16, 32, 8, 24})         // adjacent + bridging
	f.Add([]byte{10, 20, 10, 20, 0, 255})       // duplicate, then swallow-all
	f.Add([]byte{40, 50, 0, 10, 20, 30, 5, 45}) // out-of-order, multi-span bridge
	f.Add([]byte{5, 5, 9, 3})                   // empty and inverted ranges
	f.Fuzz(func(t *testing.T, data []byte) {
		st := &recvRdvState{}
		var bitmap [coverageUniverse]bool
		covered := 0
		for i := 0; i+1 < len(data); i += 2 {
			lo := int(data[i]) % coverageUniverse
			hi := int(data[i+1]) % (coverageUniverse + 1)
			want := 0
			for b := lo; b < hi; b++ {
				if !bitmap[b] {
					bitmap[b] = true
					want++
				}
			}
			if got := st.addCovered(lo, hi); got != want {
				t.Fatalf("addCovered(%d, %d) = %d newly covered, bitmap says %d", lo, hi, got, want)
			}
			covered += want
		}
		// The span set must be sorted, disjoint, non-touching, and agree
		// with the bitmap byte for byte.
		total := 0
		for i, sp := range st.covered {
			if sp.hi <= sp.lo {
				t.Fatalf("span %d is empty or inverted: %+v", i, sp)
			}
			if i > 0 && sp.lo <= st.covered[i-1].hi {
				t.Fatalf("spans %d and %d overlap or touch unmerged: %+v, %+v", i-1, i, st.covered[i-1], sp)
			}
			for b := sp.lo; b < sp.hi; b++ {
				if !bitmap[b] {
					t.Fatalf("span %+v claims byte %d the bitmap never saw", sp, b)
				}
			}
			total += sp.hi - sp.lo
		}
		if total != covered {
			t.Fatalf("spans cover %d bytes, merge reported %d", total, covered)
		}
	})
}

// FuzzSettledDedup drives the bounded settled-log with arbitrary
// add/has sequences and cross-checks against a map plus explicit FIFO
// queue. A false negative redelivers a duplicate frame; broken
// eviction order silently shrinks the dedup window.
func FuzzSettledDedup(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 0, 1})
	f.Add([]byte("repeat-repeat-repeat-repeat"))
	f.Add([]byte{255, 255, 254, 255, 255, 254, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var l settledLog
		model := make(map[rdvKey]bool)
		var fifo []rdvKey
		// Two synthetic gates spread keys across the (gate, msgID) space;
		// two data bytes per op give 128k distinct keys, far past the
		// 512-entry window, so eviction is reachable.
		gates := [2]*Gate{{}, {}}
		for i := 0; i+1 < len(data); i += 2 {
			k := rdvKey{gate: gates[data[i]&1], msgID: uint64(data[i])>>1 | uint64(data[i+1])<<7}
			if l.has(k) != model[k] {
				t.Fatalf("op %d: has(%v) = %v before add, model says %v", i/2, k.msgID, l.has(k), model[k])
			}
			l.add(k)
			if !model[k] {
				if len(fifo) >= settledLogSize {
					delete(model, fifo[0])
					fifo = fifo[1:]
				}
				model[k] = true
				fifo = append(fifo, k)
			}
			if !l.has(k) {
				t.Fatalf("op %d: key %v invisible immediately after add", i/2, k.msgID)
			}
		}
		for _, k := range fifo {
			if !l.has(k) {
				t.Fatalf("unevicted key %v missing from log", k.msgID)
			}
		}
		if len(fifo) > settledLogSize {
			t.Fatalf("model grew to %d entries, window is %d", len(fifo), settledLogSize)
		}
	})
}
