package nmad

import (
	"bytes"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/simtime"
)

// Online rail calibration: a gate over rails whose capabilities it was
// never told must converge to capability-aware striping from observed
// completions alone, deterministically on the virtual clock.

// calRig is one sender/receiver pair over a fast+slow simulated rail
// pair, with progression driven manually from the test goroutine so
// every run replays the same virtual-time schedule.
type calRig struct {
	f                *fabric.SimFabric
	sender, receiver *Engine
	ga, gb           *Gate
	// doms[rail] holds the two domains of that rail (both directions),
	// for mid-stream capability shifts.
	doms [2][2]*fabric.SimDomain
}

// calFast and calSlow are the true envelopes of the two rails — an
// 8 GB/s rail against a 1 GB/s rail, the heterogeneous pair of the
// striping acceptance tests.
var (
	calFast = fabric.Capabilities{Latency: simtime.Microsecond, Bandwidth: 8e9, MaxInject: 16 << 10, RMA: true}
	calSlow = fabric.Capabilities{Latency: 2 * simtime.Microsecond, Bandwidth: 1e9, MaxInject: 16 << 10, RMA: true}
)

// newCalRig builds the rig. calibrate makes the sender's gate measure
// its rails from zero knowledge; even keeps the true envelopes but
// forces the seed's even split.
func newCalRig(t testing.TB, calibrate, even bool) *calRig {
	t.Helper()
	r := &calRig{f: fabric.NewSimFabric(fabric.SimConfig{SendCompletions: true})}
	var sEps, rEps [2]fabric.Endpoint
	for i, caps := range []fabric.Capabilities{calFast, calSlow} {
		a := r.f.OpenDomain(caps)
		b := r.f.OpenDomain(caps)
		ea, eb := fabric.Connect(a, b)
		r.doms[i] = [2]*fabric.SimDomain{a, b}
		sEps[i], rEps[i] = ea, eb
	}
	// The receiver declines pull offers (NoRdvPull): these rigs measure
	// the sender-driven striping and calibration path, which only runs
	// when the receiver asks for a classic push. Receiver-side pull
	// calibration has its own test (TestCalibratedPullConverges).
	r.sender = NewEngine(Config{NoAutoProgress: true, Calibrate: calibrate, EvenStripe: even})
	r.receiver = NewEngine(Config{NoAutoProgress: true, NoRdvPull: true})
	var err error
	if r.ga, err = r.sender.NewGateEndpoints(sEps[0], sEps[1]); err != nil {
		t.Fatal(err)
	}
	if r.gb, err = r.receiver.NewGateEndpoints(rEps[0], rEps[1]); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *calRig) close() {
	r.sender.Close()
	r.receiver.Close()
}

// transfer moves msgs messages of size bytes each, driving both
// engines' progression from this goroutine — single-threaded, so the
// schedule (and therefore the virtual-time result) is deterministic.
func (r *calRig) transfer(t testing.TB, tagBase uint64, msgs, size int) {
	t.Helper()
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	for m := 0; m < msgs; m++ {
		tag := tagBase + uint64(m)
		rreq := r.gb.Irecv(tag)
		sreq := r.ga.Isend(tag, payload)
		for !(rreq.Test() && sreq.Test()) {
			r.sender.Tasks().Schedule(0)
			r.receiver.Tasks().Schedule(0)
		}
		if err := sreq.Err(); err != nil {
			t.Fatalf("send %d: %v", m, err)
		}
		if err := rreq.Err(); err != nil {
			t.Fatalf("recv %d: %v", m, err)
		}
		if m == 0 && !bytes.Equal(rreq.Data, payload) {
			t.Fatal("calibrated transfer corrupted the payload")
		}
	}
}

// calTransferTime runs the 8 MiB workload (32 × 256 KiB messages) on a
// fresh rig and returns the modelled duration.
func calTransferTime(t testing.TB, calibrate, even bool) simtime.Duration {
	r := newCalRig(t, calibrate, even)
	defer r.close()
	r.transfer(t, 100, 32, 256<<10)
	return simtime.Duration(r.f.Now())
}

func relOff(est, truth float64) float64 { return math.Abs(est-truth) / truth }

// TestCalibratedStripingConvergesOnUnknownRails is the acceptance test
// for online calibration: a gate over the 8 GB/s + 1 GB/s pair with
// zero assumed capabilities must complete the 8 MiB workload within
// 1.3× the oracle (capability-aware striping told the true envelopes)
// and within 0.6× of even striping, and its published estimates must
// land within 20% of the configured envelopes.
func TestCalibratedStripingConvergesOnUnknownRails(t *testing.T) {
	oracle := calTransferTime(t, false, false)
	even := calTransferTime(t, false, true)

	r := newCalRig(t, true, false)
	defer r.close()
	// Before traffic: the calibrated gate knows nothing.
	for i, rs := range r.ga.RailStats() {
		if rs.Caps.Bandwidth != 0 || rs.Caps.Latency != 0 {
			t.Fatalf("rail %d starts with assumed caps %v, want unknown", i, rs.Caps)
		}
	}
	r.transfer(t, 100, 32, 256<<10)
	cal := simtime.Duration(r.f.Now())

	t.Logf("8 MiB over unknown 8+1 GB/s rails: oracle %v, even %v, calibrated %v (%.2fx oracle, %.0f%% of even)",
		oracle, even, cal, float64(cal)/float64(oracle), 100*float64(cal)/float64(even))
	if float64(cal) > 1.3*float64(oracle) {
		t.Errorf("calibrated transfer took %v, want ≤ 1.3× the oracle %v", cal, oracle)
	}
	if float64(cal) > 0.6*float64(even) {
		t.Errorf("calibrated transfer took %v, want ≤ 0.6× even striping's %v", cal, even)
	}

	truths := []fabric.Capabilities{calFast, calSlow}
	for i, rs := range r.ga.RailStats() {
		if off := relOff(rs.Caps.Bandwidth, truths[i].Bandwidth); off > 0.2 {
			t.Errorf("rail %d bandwidth estimate %.3g vs true %.3g: %.0f%% off, want ≤ 20%%",
				i, rs.Caps.Bandwidth, truths[i].Bandwidth, 100*off)
		}
		if off := relOff(float64(rs.Caps.Latency), float64(truths[i].Latency)); off > 0.2 {
			t.Errorf("rail %d latency estimate %v vs true %v: %.0f%% off, want ≤ 20%%",
				i, rs.Caps.Latency, truths[i].Latency, 100*off)
		}
	}
	// The split actually went proportional: the fast rail carried the
	// bulk of the bytes.
	rails := r.ga.RailStats()
	if rails[0].Bytes < 3*rails[1].Bytes {
		t.Errorf("byte split %d/%d, want the fast rail carrying ≥ 3× the slow rail",
			rails[0].Bytes, rails[1].Bytes)
	}
}

// TestCalibratedTransferDeterministic: the driven-progression rig must
// replay to the identical virtual-time result — the determinism the
// convergence bars rely on.
func TestCalibratedTransferDeterministic(t *testing.T) {
	a := calTransferTime(t, true, false)
	b := calTransferTime(t, true, false)
	if a != b {
		t.Errorf("two identical calibrated runs took %v and %v; want identical virtual times", a, b)
	}
}

// TestCalibrationReconvergesAfterBandwidthShift: after the rig
// converges, the two rails swap effective bandwidths mid-stream; the
// estimates must track the swap and the split must flip.
func TestCalibrationReconvergesAfterBandwidthShift(t *testing.T) {
	r := newCalRig(t, true, false)
	defer r.close()
	r.transfer(t, 100, 32, 256<<10)

	before := r.ga.RailStats()
	if before[0].Caps.Bandwidth < before[1].Caps.Bandwidth {
		t.Fatalf("pre-shift estimates not converged: %v vs %v",
			before[0].Caps.Bandwidth, before[1].Caps.Bandwidth)
	}

	// Swap: the fast rail degrades to 1 GB/s, the slow one upgrades to
	// 8 GB/s (latencies unchanged).
	degraded, upgraded := calFast, calSlow
	degraded.Bandwidth, upgraded.Bandwidth = calSlow.Bandwidth, calFast.Bandwidth
	for _, d := range r.doms[0] {
		d.SetCapabilities(degraded)
	}
	for _, d := range r.doms[1] {
		d.SetCapabilities(upgraded)
	}

	base := r.ga.RailStats()
	r.transfer(t, 500, 64, 256<<10)
	after := r.ga.RailStats()

	if off := relOff(after[0].Caps.Bandwidth, 1e9); off > 0.25 {
		t.Errorf("degraded rail estimate %.3g vs true 1e9: %.0f%% off, want ≤ 25%%",
			after[0].Caps.Bandwidth, 100*off)
	}
	if off := relOff(after[1].Caps.Bandwidth, 8e9); off > 0.25 {
		t.Errorf("upgraded rail estimate %.3g vs true 8e9: %.0f%% off, want ≤ 25%%",
			after[1].Caps.Bandwidth, 100*off)
	}
	// The split followed the shift: post-shift traffic favours the
	// newly fast rail.
	d0 := after[0].Bytes - base[0].Bytes
	d1 := after[1].Bytes - base[1].Bytes
	if d1 < 2*d0 {
		t.Errorf("post-shift byte split %d/%d, want the upgraded rail carrying ≥ 2× the degraded one",
			d0, d1)
	}
}

// TestCalibratedGateUnderRace runs concurrent flows through a
// calibrated gate with background progression (run with -race): the
// calibrators sit on the shared send/poll paths, so this is the
// estimators-under-concurrent-completions guard at the protocol level.
func TestCalibratedGateUnderRace(t *testing.T) {
	f := fabric.NewSimFabric(fabric.SimConfig{SendCompletions: true})
	var sEps, rEps [2]fabric.Endpoint
	for i, caps := range []fabric.Capabilities{calFast, calSlow} {
		a := f.OpenDomain(caps)
		b := f.OpenDomain(caps)
		sEps[i], rEps[i] = fabric.Connect(a, b)
		_ = i
	}
	sender := NewEngine(Config{Calibrate: true})
	receiver := NewEngine(Config{NoRdvPull: true})
	defer sender.Close()
	defer receiver.Close()
	ga, err := sender.NewGateEndpoints(sEps[0], sEps[1])
	if err != nil {
		t.Fatal(err)
	}
	gb, err := receiver.NewGateEndpoints(rEps[0], rEps[1])
	if err != nil {
		t.Fatal(err)
	}

	const flows = 4
	var wg sync.WaitGroup
	for flow := 0; flow < flows; flow++ {
		payload := make([]byte, 96<<10)
		for i := range payload {
			payload[i] = byte(i*13 + flow)
		}
		wg.Add(2)
		go func(tag uint64, want []byte) {
			defer wg.Done()
			if err := ga.Send(tag, want); err != nil {
				t.Errorf("send %d: %v", tag, err)
			}
		}(uint64(flow), payload)
		go func(tag uint64, want []byte) {
			defer wg.Done()
			got, err := gb.Recv(tag)
			if err != nil {
				t.Errorf("recv %d: %v", tag, err)
				return
			}
			if !bytes.Equal(got, want) {
				t.Errorf("flow %d payload corrupted", tag)
			}
		}(uint64(flow), payload)
	}
	wg.Wait()

	// The calibrators were live on both rails. Recv returning proves
	// the bytes arrived, not that the sender has polled its own
	// EventSendDone completions yet — give background progression a
	// bounded window to drain them before judging.
	deadline := time.Now().Add(10 * time.Second)
	for {
		missing := -1
		for i, rs := range ga.RailStats() {
			if rs.Caps.Bandwidth <= 0 {
				missing = i
			}
		}
		if missing < 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rail %d has no bandwidth estimate after traffic", missing)
		}
		runtime.Gosched()
	}
}

// benchCalibrated runs the unknown-rails workload in real time
// (TimeScale 1, wall-gated completions) with background progression —
// the wall-clock face of the convergence test.
func benchCalibrated(b *testing.B, msgs, size int) {
	f := fabric.NewSimFabric(fabric.SimConfig{TimeScale: 1, SendCompletions: true})
	var sEps, rEps [2]fabric.Endpoint
	for i, caps := range []fabric.Capabilities{calFast, calSlow} {
		da := f.OpenDomain(caps)
		db := f.OpenDomain(caps)
		sEps[i], rEps[i] = fabric.Connect(da, db)
	}
	sender := NewEngine(Config{Calibrate: true})
	receiver := NewEngine(Config{NoRdvPull: true})
	defer sender.Close()
	defer receiver.Close()
	ga, err := sender.NewGateEndpoints(sEps[0], sEps[1])
	if err != nil {
		b.Fatal(err)
	}
	gb, err := receiver.NewGateEndpoints(rEps[0], rEps[1])
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, size)
	b.SetBytes(int64(msgs) * int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for m := 0; m < msgs; m++ {
			tag := uint64(i*msgs + m)
			done := make(chan error, 1)
			go func() {
				_, err := gb.Recv(tag)
				done <- err
			}()
			if err := ga.Send(tag, payload); err != nil {
				b.Fatal(err)
			}
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	rails := ga.RailStats()
	b.ReportMetric(rails[0].Caps.Bandwidth/1e9, "est-fast-GB/s")
	b.ReportMetric(rails[1].Caps.Bandwidth/1e9, "est-slow-GB/s")
}

// BenchmarkCalibratedStripeConvergence measures the 8 MiB workload
// (32 × 256 KiB) over the unknown 8+1 GB/s pair with online
// calibration, wall-gated. Compare the per-op wall time against
// BenchmarkStripeHeterogeneous (told the truth up front) and
// BenchmarkStripeHeterogeneousEven (the seed split); the reported
// est-*-GB/s metrics show where the estimates landed.
func BenchmarkCalibratedStripeConvergence(b *testing.B) {
	benchCalibrated(b, 32, 256<<10)
}

// BenchmarkCalibratedStripeLoopback runs a calibrated two-rail gate
// over fabric.Loopback — real elapsed time, no simulated clock at all:
// the calibrators measure whatever this host's memory system actually
// delivers and the split follows.
func BenchmarkCalibratedStripeLoopback(b *testing.B) {
	la0, lb0 := fabric.NewLoopback()
	la1, lb1 := fabric.NewLoopback()
	sender := NewEngine(Config{Calibrate: true})
	receiver := NewEngine(Config{})
	defer sender.Close()
	defer receiver.Close()
	ga, err := sender.NewGateEndpoints(la0, la1)
	if err != nil {
		b.Fatal(err)
	}
	gb, err := receiver.NewGateEndpoints(lb0, lb1)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1<<20)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tag := uint64(i)
		done := make(chan error, 1)
		go func() {
			_, err := gb.Recv(tag)
			done <- err
		}()
		if err := ga.Send(tag, payload); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	rails := ga.RailStats()
	b.ReportMetric(rails[0].Caps.Bandwidth/1e9, "est-rail0-GB/s")
	b.ReportMetric(rails[1].Caps.Bandwidth/1e9, "est-rail1-GB/s")
}

// TestCalibratedPullConverges: a calibrated RECEIVER over unknown
// rails learns bandwidth from its own RMA-read completions — pull mode
// has no bulk sends to sample, so the read attribution path is the
// only way a receiver-driven gate can converge — and its pull striping
// goes proportional.
func TestCalibratedPullConverges(t *testing.T) {
	f := fabric.NewSimFabric(fabric.SimConfig{})
	var sEps, rEps [2]fabric.Endpoint
	for i, caps := range []fabric.Capabilities{calFast, calSlow} {
		a := f.OpenDomain(caps)
		b := f.OpenDomain(caps)
		sEps[i], rEps[i] = fabric.Connect(a, b)
	}

	sender := NewEngine(Config{NoAutoProgress: true})
	receiver := NewEngine(Config{NoAutoProgress: true, Calibrate: true})
	defer sender.Close()
	defer receiver.Close()
	ga, err := sender.NewGateEndpoints(sEps[0], sEps[1])
	if err != nil {
		t.Fatal(err)
	}
	gb, err := receiver.NewGateEndpoints(rEps[0], rEps[1])
	if err != nil {
		t.Fatal(err)
	}
	for i, rs := range gb.RailStats() {
		if rs.Caps.Bandwidth != 0 {
			t.Fatalf("receiver rail %d starts with assumed bandwidth %v, want unknown", i, rs.Caps.Bandwidth)
		}
	}

	payload := make([]byte, 256<<10)
	for m := 0; m < 32; m++ {
		tag := uint64(m)
		rreq := gb.Irecv(tag)
		sreq := ga.Isend(tag, payload)
		for !(rreq.Test() && sreq.Test()) {
			sender.Tasks().Schedule(0)
			receiver.Tasks().Schedule(0)
		}
		if rreq.Err() != nil || sreq.Err() != nil {
			t.Fatalf("transfer %d: recv %v / send %v", m, rreq.Err(), sreq.Err())
		}
	}

	if st := receiver.Stats(); st.RdvPulls == 0 {
		t.Fatalf("no pulls recorded; the calibrated path was not exercised: %+v", st)
	}
	truths := []fabric.Capabilities{calFast, calSlow}
	rails := gb.RailStats()
	for i, rs := range rails {
		if off := relOff(rs.Caps.Bandwidth, truths[i].Bandwidth); off > 0.25 {
			t.Errorf("receiver rail %d bandwidth estimate %.3g vs true %.3g: %.0f%% off, want ≤ 25%%",
				i, rs.Caps.Bandwidth, truths[i].Bandwidth, 100*off)
		}
	}
	// The pull split followed the estimates: the fast rail pulled the
	// bulk of the bytes.
	if rails[0].PullBytes < 3*rails[1].PullBytes {
		t.Errorf("pull byte split %d/%d, want the fast rail pulling ≥ 3× the slow rail",
			rails[0].PullBytes, rails[1].PullBytes)
	}
}

// TestCalibrateDoesNotMutateCallerSlice: NewGateEndpoints must not
// replace the caller's endpoints with calibrator wrappers through the
// variadic parameter's backing array.
func TestCalibrateDoesNotMutateCallerSlice(t *testing.T) {
	f := fabric.NewSimFabric(fabric.SimConfig{SendCompletions: true})
	a := f.OpenDomain(calFast)
	b := f.OpenDomain(calFast)
	ea, eb := fabric.Connect(a, b)
	_ = eb
	e := NewEngine(Config{NoAutoProgress: true, Calibrate: true})
	defer e.Close()
	eps := []fabric.Endpoint{ea}
	if _, err := e.NewGateEndpoints(eps...); err != nil {
		t.Fatal(err)
	}
	if _, ok := eps[0].(*fabric.SimEndpoint); !ok {
		t.Errorf("caller's slice element replaced by %T", eps[0])
	}
}
