// Package nmad is a NewMadeleine-like communication engine built on the
// PIOMan task engine (internal/core). It multiplexes application
// messages over one or more network drivers ("rails"), applies dynamic
// scheduling strategies (aggregation of small messages, multirail
// splitting of large ones — paper Fig. 1), and delegates every internal
// operation — polling a driver, submitting a packet, answering a
// rendezvous handshake — to PIOMan tasks so communication progresses in
// the background and overlaps with computation.
//
// The task structure is embedded in the packet wrapper, so submitting
// the send of a packet performs no allocation (paper §IV-B).
package nmad

import (
	"encoding/binary"
	"fmt"

	"pioman/internal/core"
)

// Kind discriminates wire frames.
type Kind uint8

// Frame kinds of the nmad wire protocol.
const (
	// KindEager carries a whole small message.
	KindEager Kind = iota + 1
	// KindAggr carries several small messages packed into one frame.
	KindAggr
	// KindRTS announces a large message (rendezvous request-to-send).
	// Its imm extension may carry a pull offer: per-rail remote keys
	// the receiver can RMA-read the payload through.
	KindRTS
	// KindCTS grants a rendezvous (clear-to-send): the receiver
	// declines (or cannot use) the pull offer and asks the sender to
	// push the whole payload as KindData frames.
	KindCTS
	// KindData carries one fragment of a rendezvous payload.
	KindData
	// KindFin ends a pull-mode rendezvous: the receiver has every byte
	// (RMA-read or pushed), so the sender may release its registered
	// regions and complete its request.
	KindFin
	// KindRdvPush asks the sender to push one byte range of a pull-mode
	// rendezvous as KindData frames — the per-chunk fallback when a
	// receiver rail cannot (or can no longer) pull it. Offset is the
	// range start and Total its length.
	KindRdvPush
	// KindEagerAck acknowledges the delivery of one eager message
	// (plain or unpacked from an aggregate) back to its sender, which
	// releases the message from its retransmission window (eager.go).
	// MsgID names the acknowledged message.
	KindEagerAck
	// KindRdvNack reports an unknown rendezvous id back to the peer, so
	// the other side fails its half promptly instead of waiting on a
	// handshake that lost its state. Offset names the side to fail —
	// nackSend or nackRecv: the two directions of one gate share the
	// msgID keyspace (each engine numbers its own sends), so without it
	// a NACK aimed at the peer's receive could kill an unrelated
	// healthy send that happens to carry the same id.
	KindRdvNack
)

// KindRdvNack Offset values: which half of the rendezvous the NACKed
// peer should fail.
const (
	nackSend uint32 = iota // your send lost its other half
	nackRecv               // your receive lost its other half
)

// String names the frame kind.
func (k Kind) String() string {
	switch k {
	case KindEager:
		return "eager"
	case KindAggr:
		return "aggr"
	case KindRTS:
		return "rts"
	case KindCTS:
		return "cts"
	case KindData:
		return "data"
	case KindFin:
		return "fin"
	case KindRdvPush:
		return "rdv-push"
	case KindEagerAck:
		return "eager-ack"
	case KindRdvNack:
		return "rdv-nack"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Header is the fixed-size frame header.
type Header struct {
	Kind    Kind
	Tag     uint64 // application tag
	MsgID   uint64 // per-gate message id (sender-assigned)
	FragIdx uint32 // fragment index (KindData)
	FragCnt uint32 // total fragments (KindData)
	Offset  uint32 // byte offset of this fragment in the full payload
	Total   uint32 // total message size in bytes
}

// headerBytes is the encoded header size.
const headerBytes = 1 + 8 + 8 + 4 + 4 + 4 + 4

// encode serializes the header into buf (which must hold headerBytes).
func (h Header) encode(buf []byte) {
	buf[0] = byte(h.Kind)
	binary.LittleEndian.PutUint64(buf[1:], h.Tag)
	binary.LittleEndian.PutUint64(buf[9:], h.MsgID)
	binary.LittleEndian.PutUint32(buf[17:], h.FragIdx)
	binary.LittleEndian.PutUint32(buf[21:], h.FragCnt)
	binary.LittleEndian.PutUint32(buf[25:], h.Offset)
	binary.LittleEndian.PutUint32(buf[29:], h.Total)
}

// decodeHeader parses a header from buf.
func decodeHeader(buf []byte) (Header, error) {
	if len(buf) < headerBytes {
		return Header{}, fmt.Errorf("nmad: short header (%d bytes)", len(buf))
	}
	return Header{
		Kind:    Kind(buf[0]),
		Tag:     binary.LittleEndian.Uint64(buf[1:]),
		MsgID:   binary.LittleEndian.Uint64(buf[9:]),
		FragIdx: binary.LittleEndian.Uint32(buf[17:]),
		FragCnt: binary.LittleEndian.Uint32(buf[21:]),
		Offset:  binary.LittleEndian.Uint32(buf[25:]),
		Total:   binary.LittleEndian.Uint32(buf[29:]),
	}, nil
}

// Frame is one unit on the wire: a header plus payload, plus the
// optional immediate-byte extension that follows the encoded header
// (the RTS pull offer rides there, so control frames stay payload-free
// and the fabric providers never buffer rendezvous metadata as data).
type Frame struct {
	Hdr     Header
	Payload []byte
	Ext     []byte
}

// maxOfferRails caps how many per-rail keys an RTS pull offer carries,
// so the offer always fits the imm extension budget of every provider
// (offerEntryBytes each after the fixed header).
const maxOfferRails = 7

// offerEntryBytes is the wire size of one pull-offer entry:
// rail index (u32) + remote key (u64).
const offerEntryBytes = 12

// immBufBytes sizes the packet's immediate-byte assembly buffer:
// header plus the largest pull offer.
const immBufBytes = headerBytes + maxOfferRails*offerEntryBytes

// appendOfferEntry appends one (rail, key) pull-offer entry to an imm
// extension under assembly.
func appendOfferEntry(ext []byte, rail uint32, key uint64) []byte {
	var e [offerEntryBytes]byte
	binary.LittleEndian.PutUint32(e[0:], rail)
	binary.LittleEndian.PutUint64(e[4:], key)
	return append(ext, e[:]...)
}

// offerEntry decodes entry i of a pull offer; ok is false past the end
// or on a truncated extension.
func offerEntry(ext []byte, i int) (rail uint32, key uint64, ok bool) {
	off := i * offerEntryBytes
	if off+offerEntryBytes > len(ext) {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint32(ext[off:]), binary.LittleEndian.Uint64(ext[off+4:]), true
}

// Packet is the send-side packet wrapper. The PIOMan task is embedded in
// the wrapper — submitting the packet to the task engine allocates
// nothing beyond the wrapper itself, which strategies pool and reuse
// (paper §IV-B: "the task structure does not require an allocation since
// it is included in the packet wrapper structure").
type Packet struct {
	Task core.Task // embedded; Task.Arg points back at the Packet

	Hdr     Header
	Payload []byte

	gate    *Gate
	rail    int
	retries int        // backpressure requeues consumed (sendPacketTask)
	req     *Request   // request to complete once the frame is on the wire
	reqs    []*Request // per-message requests of an aggregate frame
	pend    []uint64   // msgIDs of ack-tracked eager messages the frame carries
	ext     []byte     // imm extension appended after the encoded header
	scratch []byte     // pooled aggregate payload buffer, returned on recycle

	immBuf [immBufBytes]byte // header+ext assembly space, so sends allocate nothing
}

// reset prepares a pooled packet for reuse.
func (p *Packet) reset() {
	p.Task.Reset()
	p.Hdr = Header{}
	p.Payload = nil
	p.gate = nil
	p.rail = 0
	p.retries = 0
	p.req = nil
	for i := range p.reqs {
		p.reqs[i] = nil
	}
	p.reqs = p.reqs[:0]
	p.pend = p.pend[:0]
	p.ext = nil
	p.scratch = nil
}
