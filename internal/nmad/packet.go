// Package nmad is a NewMadeleine-like communication engine built on the
// PIOMan task engine (internal/core). It multiplexes application
// messages over one or more network drivers ("rails"), applies dynamic
// scheduling strategies (aggregation of small messages, multirail
// splitting of large ones — paper Fig. 1), and delegates every internal
// operation — polling a driver, submitting a packet, answering a
// rendezvous handshake — to PIOMan tasks so communication progresses in
// the background and overlaps with computation.
//
// The task structure is embedded in the packet wrapper, so submitting
// the send of a packet performs no allocation (paper §IV-B).
package nmad

import (
	"encoding/binary"
	"fmt"

	"pioman/internal/core"
)

// Kind discriminates wire frames.
type Kind uint8

// Frame kinds of the nmad wire protocol.
const (
	// KindEager carries a whole small message.
	KindEager Kind = iota + 1
	// KindAggr carries several small messages packed into one frame.
	KindAggr
	// KindRTS announces a large message (rendezvous request-to-send).
	KindRTS
	// KindCTS grants a rendezvous (clear-to-send).
	KindCTS
	// KindData carries one fragment of a rendezvous payload.
	KindData
)

// String names the frame kind.
func (k Kind) String() string {
	switch k {
	case KindEager:
		return "eager"
	case KindAggr:
		return "aggr"
	case KindRTS:
		return "rts"
	case KindCTS:
		return "cts"
	case KindData:
		return "data"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Header is the fixed-size frame header.
type Header struct {
	Kind    Kind
	Tag     uint64 // application tag
	MsgID   uint64 // per-gate message id (sender-assigned)
	FragIdx uint32 // fragment index (KindData)
	FragCnt uint32 // total fragments (KindData)
	Offset  uint32 // byte offset of this fragment in the full payload
	Total   uint32 // total message size in bytes
}

// headerBytes is the encoded header size.
const headerBytes = 1 + 8 + 8 + 4 + 4 + 4 + 4

// encode serializes the header into buf (which must hold headerBytes).
func (h Header) encode(buf []byte) {
	buf[0] = byte(h.Kind)
	binary.LittleEndian.PutUint64(buf[1:], h.Tag)
	binary.LittleEndian.PutUint64(buf[9:], h.MsgID)
	binary.LittleEndian.PutUint32(buf[17:], h.FragIdx)
	binary.LittleEndian.PutUint32(buf[21:], h.FragCnt)
	binary.LittleEndian.PutUint32(buf[25:], h.Offset)
	binary.LittleEndian.PutUint32(buf[29:], h.Total)
}

// decodeHeader parses a header from buf.
func decodeHeader(buf []byte) (Header, error) {
	if len(buf) < headerBytes {
		return Header{}, fmt.Errorf("nmad: short header (%d bytes)", len(buf))
	}
	return Header{
		Kind:    Kind(buf[0]),
		Tag:     binary.LittleEndian.Uint64(buf[1:]),
		MsgID:   binary.LittleEndian.Uint64(buf[9:]),
		FragIdx: binary.LittleEndian.Uint32(buf[17:]),
		FragCnt: binary.LittleEndian.Uint32(buf[21:]),
		Offset:  binary.LittleEndian.Uint32(buf[25:]),
		Total:   binary.LittleEndian.Uint32(buf[29:]),
	}, nil
}

// Frame is one unit on the wire: a header plus payload.
type Frame struct {
	Hdr     Header
	Payload []byte
}

// Packet is the send-side packet wrapper. The PIOMan task is embedded in
// the wrapper — submitting the packet to the task engine allocates
// nothing beyond the wrapper itself, which strategies pool and reuse
// (paper §IV-B: "the task structure does not require an allocation since
// it is included in the packet wrapper structure").
type Packet struct {
	Task core.Task // embedded; Task.Arg points back at the Packet

	Hdr     Header
	Payload []byte

	gate    *Gate
	rail    int
	retries int        // backpressure requeues consumed (sendPacketTask)
	req     *Request   // request to complete once the frame is on the wire
	reqs    []*Request // per-message requests of an aggregate frame
}

// reset prepares a pooled packet for reuse.
func (p *Packet) reset() {
	p.Task.Reset()
	p.Hdr = Header{}
	p.Payload = nil
	p.gate = nil
	p.rail = 0
	p.retries = 0
	p.req = nil
	for i := range p.reqs {
		p.reqs[i] = nil
	}
	p.reqs = p.reqs[:0]
}
