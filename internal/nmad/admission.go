package nmad

// Engine-level admission control.
//
// Nothing in the protocol stack bounds how much work submitters may
// push into an engine: without admission control an incast burst or a
// slow receiver turns into unbounded rendezvous/eager state growth,
// settled-log pressure and latency collapse — overload is invisible
// until it is fatal. This file puts a credit plane (internal/admit) in
// front of injection: every Isend / IrecvInto takes one request credit
// plus its payload bytes from both the engine-wide ledger and the
// gate's ledger before the protocol sees it, and the credits come back
// exactly once when the request reaches any terminal state — ack, FIN,
// timeout, NACK, cancel, gate failure, engine close — because the
// release rides Request.complete's exactly-once CAS.
//
// Per-gate budgets default to the rails' live bandwidth-delay product
// (the same estimate backpressure uses, so calibration refines both),
// clamped to a sane band; engine budgets default to fixed caps. When
// credits run out the submitter sees one of three policies:
//
//   - AdmitBlock parks the submission in a bounded FIFO queue; freed
//     credits drain it head-of-line (strict FIFO, no starvation), and
//     a queue entry that waits past Config.AdmitWait — or past its own
//     request deadline — fails visibly with ErrDeadlineExpired.
//   - AdmitReject fails the submission immediately with
//     ErrAdmissionReject: fail-fast for callers with their own retry
//     or load-balancing story.
//   - AdmitDegrade is reject plus a watermark: past the high-water
//     utilization mark the scope turns degraded and new *rendezvous*
//     offers are shed at submission while eager traffic and everything
//     already admitted keeps draining; below the low-water mark the
//     scope recovers. Graceful degradation — the engine under overload
//     stays live and visibly lossy instead of hanging.
//
// Requests may also carry an absolute deadline on the engine clock
// (IsendDeadline). It is checked at admission, re-checked by the
// deadline sweep for states still in flight (a doomed transfer is
// failed instead of retransmitted into the ground), and propagated to
// the receiver inside the RTS pull offer so an overloaded receiver
// stops posting RMA reads for work whose submitter has already given
// up. Shed and degrade transitions are visible: counters in Stats,
// gauges on /metrics, EvShed/EvDegrade instants in the flight
// recorder, and Gate.CheckIdle audits that a quiesced gate holds zero
// credits.
//
// Admission is off by default (Config.Admit == nil): the zero-value
// engine behaves exactly as before, which keeps every existing seeded
// trajectory byte-identical.

import (
	"errors"
	"sync"

	"pioman/internal/admit"
	"pioman/internal/trace"
)

// ErrAdmissionReject reports a submission refused by admission
// control: the inflight budget was exhausted (fail-fast policy), the
// block queue was full, or the scope was shedding in degraded mode.
// The request never entered the protocol; nothing was sent.
var ErrAdmissionReject = errors.New("nmad: admission rejected: inflight budget exhausted")

// ErrDeadlineExpired reports a request that ran out of time: its
// deadline (or its admission wait budget) passed before the transfer
// could start or finish. The request's resources are released.
var ErrDeadlineExpired = errors.New("nmad: request deadline expired")

// AdmitPolicy selects what a submitter sees when admission credits run
// out.
type AdmitPolicy int

const (
	// AdmitBlock parks the submission in a bounded FIFO queue until
	// credits free up, the wait budget (Config.AdmitWait) or request
	// deadline expires, or the gate/engine dies. The default.
	AdmitBlock AdmitPolicy = iota
	// AdmitReject fails the submission immediately with
	// ErrAdmissionReject.
	AdmitReject
	// AdmitDegrade rejects at the hard budget like AdmitReject, and
	// additionally sheds new rendezvous-sized sends whenever the scope
	// is past its high watermark — eager traffic and admitted work
	// keep draining, so the engine degrades instead of collapsing.
	AdmitDegrade
)

// EvShed reason codes (the B payload of a trace.EvShed instant).
const (
	shedBudget    uint64 = iota // hard budget refusal (reject policy)
	shedDegraded                // degraded-mode rendezvous shed
	shedQueueFull               // block policy, wait queue at capacity
	shedExpired                 // blocked submission waited past its budget
)

// Gate budget clamps for the live BDP derivation: one gate's byte
// budget is 4× the summed alive-rail bandwidth-delay product within
// [64 KiB, 8 MiB], and its request budget is the byte budget over a
// nominal 4 KiB message within [8, 1024].
const (
	minGateAdmitBytes    = 64 << 10
	maxGateAdmitBytes    = 8 << 20
	minGateAdmitRequests = 8
	maxGateAdmitRequests = 1024
	nominalAdmitMsgBytes = 4 << 10
)

// admitWaiter is one submission parked by the blocking policy: enough
// to inject it verbatim once credits free up, plus its wait deadline.
type admitWaiter struct {
	g      *Gate
	req    *Request
	tag    uint64
	data   []byte // send payload (nil for a receive)
	recv   bool   // receive: inject via injectRecv (buffer rides req.userBuf)
	n      int64  // byte credits the submission needs
	expire int64  // wait deadline on the engine clock
}

// admitPlane is the engine's admission state: the engine-wide ledger,
// the policy, and the blocked-submission queue. Gate ledgers live on
// their gates.
type admitPlane struct {
	cfg    admit.Config // normalized (WithDefaults applied)
	policy AdmitPolicy
	wait   int64 // block-policy wait budget in Clock ns
	eng    *admit.Ledger

	mu      sync.Mutex
	waiting []*admitWaiter
	// draining/more collapse recursive drains into an iterative loop:
	// injecting a drained waiter can synchronously complete a request,
	// whose credit release re-enters admitDrain.
	draining bool
	more     bool
}

// newAdmitPlane builds the engine's admission plane from its config.
func newAdmitPlane(cfg Config) *admitPlane {
	ac := cfg.Admit.WithDefaults()
	wait := cfg.AdmitWait
	if wait <= 0 {
		wait = cfg.RdvTimeout
	}
	return &admitPlane{
		cfg:    ac,
		policy: cfg.AdmitPolicy,
		wait:   wait,
		eng:    admit.NewLedger(ac.MaxRequests, ac.MaxBytes, ac.HighWater, ac.LowWater),
	}
}

// admitLimits returns the gate's current budgets: the configured
// values when both are set, otherwise derived from the live rail
// capability estimates (calibrated when Config.Calibrate is on) so the
// budget tracks what the wire can actually absorb.
func (g *Gate) admitLimits() (maxReqs int, maxBytes int64) {
	cfg := g.eng.admit.cfg
	maxReqs, maxBytes = cfg.GateRequests, cfg.GateBytes
	if maxReqs > 0 && maxBytes > 0 {
		return maxReqs, maxBytes
	}
	var bdp float64
	for _, r := range g.rails {
		if r.dead.Load() {
			continue
		}
		caps := r.ep.Capabilities()
		if caps.Bandwidth <= 0 || caps.Latency <= 0 {
			continue
		}
		bdp += caps.Bandwidth * float64(caps.Latency) / 1e9
	}
	if maxBytes <= 0 {
		maxBytes = min(max(int64(4*bdp), minGateAdmitBytes), maxGateAdmitBytes)
	}
	if maxReqs <= 0 {
		maxReqs = min(max(int(maxBytes/nominalAdmitMsgBytes), minGateAdmitRequests), maxGateAdmitRequests)
	}
	return maxReqs, maxBytes
}

// recordShed emits the EvShed instant for a refused submission.
func (e *Engine) recordShed(g *Gate, n int64, reason uint64) {
	if r := e.rec; r != nil {
		r.Record(g.id, trace.EvShed, uint64(n), reason)
	}
}

// recordDegrade emits the EvDegrade instant for a ledger that just
// crossed a watermark, under the triggering gate's ring.
func (e *Engine) recordDegrade(g *Gate, l *admit.Ledger) {
	if r := e.rec; r != nil {
		s := l.Snapshot()
		a := uint64(0)
		if s.Degraded {
			a = 1
		}
		r.Record(g.id, trace.EvDegrade, a, uint64(s.Bytes))
	}
}

// admitAcquire takes credits from the gate ledger then the engine
// ledger (released again on the second refusal), refreshing the gate's
// BDP-derived budgets first. Reports whether the submission is
// admitted.
func (g *Gate) admitAcquire(n int64) bool {
	e := g.eng
	p := e.admit
	if p.cfg.GateRequests <= 0 || p.cfg.GateBytes <= 0 {
		maxR, maxB := g.admitLimits()
		if g.admitL.SetLimits(maxR, maxB) {
			e.recordDegrade(g, g.admitL)
		}
	}
	ok, flipped := g.admitL.TryAcquire(n)
	if flipped {
		e.recordDegrade(g, g.admitL)
	}
	if !ok {
		return false
	}
	ok, flipped = p.eng.TryAcquire(n)
	if flipped {
		e.recordDegrade(g, p.eng)
	}
	if !ok {
		if g.admitL.Release(n) {
			e.recordDegrade(g, g.admitL)
		}
		return false
	}
	return true
}

// admitReject fails a refused submission with ErrAdmissionReject and
// counts it. Every path that produces the error funnels through here,
// so Stats.AdmitRejected always equals the requests that saw it — the
// "shed counts match reject errors" invariant the chaos harness
// checks.
func (e *Engine) admitReject(req *Request) {
	e.admitRejected.Add(1)
	req.complete(ErrAdmissionReject)
}

// admitSubmit runs the admission decision for one submission (send:
// data set; receive: recv true, buffer already on req.userBuf). True
// means admitted — credits are held on the request and the caller must
// inject. False means the submission was parked (blocking policy) or
// completed with an admission error; either way the caller just
// returns the request.
func (e *Engine) admitSubmit(g *Gate, req *Request, tag uint64, data []byte, recv bool) bool {
	p := e.admit
	now := e.clock()
	if d := req.deadline; d != 0 && now >= d {
		e.deadlineExpired.Add(1)
		req.complete(ErrDeadlineExpired)
		return false
	}
	n := int64(len(data))
	if recv {
		n = int64(len(req.userBuf))
	}
	if p.policy == AdmitDegrade && !recv && len(data) > e.cfg.EagerThreshold &&
		(p.eng.Degraded() || g.admitL.Degraded()) {
		// Degraded mode sheds new rendezvous offers while the admitted
		// inflight (and the eager fast path) drains the scope back
		// under its low watermark.
		e.admitShed.Add(1)
		e.recordShed(g, n, shedDegraded)
		e.admitReject(req)
		return false
	}
	if g.admitAcquire(n) {
		e.admitAdmitted.Add(1)
		req.admitGate, req.admitBytes = g, n
		return true
	}
	if p.policy != AdmitBlock {
		e.recordShed(g, n, shedBudget)
		e.admitReject(req)
		return false
	}
	exp := now + p.wait
	if d := req.deadline; d != 0 && d < exp {
		exp = d
	}
	w := &admitWaiter{g: g, req: req, tag: tag, data: data, recv: recv, n: n, expire: exp}
	p.mu.Lock()
	if len(p.waiting) >= p.cfg.MaxWaiters {
		p.mu.Unlock()
		e.recordShed(g, n, shedQueueFull)
		e.admitReject(req)
		return false
	}
	p.waiting = append(p.waiting, w)
	p.mu.Unlock()
	e.admitBlocked.Add(1)
	// Credits may have freed between the failed acquire and the park;
	// a drain pass closes the window so the waiter cannot stall on a
	// release that already happened.
	e.admitDrain()
	return false
}

// admitRelease returns a completed request's credits and drains the
// block queue. Called from Request.complete after winning the
// exactly-once CAS — the single chokepoint every completion path
// (ack, FIN, timeout, NACK, cancel, failGate, Close) funnels through,
// which is what makes the zero-leaked-credits invariant hold.
func (e *Engine) admitRelease(r *Request) {
	g := r.admitGate
	if g == nil {
		return
	}
	n := r.admitBytes
	r.admitGate, r.admitBytes = nil, 0
	if g.admitL.Release(n) {
		e.recordDegrade(g, g.admitL)
	}
	if e.admit.eng.Release(n) {
		e.recordDegrade(g, e.admit.eng)
	}
	e.admitDrain()
}

// admitDrain admits parked submissions head-of-line: strictly FIFO, so
// a large submission at the head is never starved by smaller ones
// slipping past it. Iterative — a drained injection that completes
// synchronously re-enters through the more flag instead of recursing.
func (e *Engine) admitDrain() {
	p := e.admit
	p.mu.Lock()
	if p.draining {
		p.more = true
		p.mu.Unlock()
		return
	}
	p.draining = true
	for {
		p.more = false
		var ready []*admitWaiter
		for len(p.waiting) > 0 {
			w := p.waiting[0]
			if !w.g.admitAcquire(w.n) {
				break
			}
			e.admitAdmitted.Add(1)
			w.req.admitGate, w.req.admitBytes = w.g, w.n
			copy(p.waiting, p.waiting[1:])
			p.waiting[len(p.waiting)-1] = nil
			p.waiting = p.waiting[:len(p.waiting)-1]
			ready = append(ready, w)
		}
		if len(ready) == 0 && !p.more {
			p.draining = false
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
		for _, w := range ready {
			if w.recv {
				w.g.injectRecv(w.req)
			} else {
				w.g.injectSend(w.req, w.tag, w.data)
			}
		}
		p.mu.Lock()
	}
}

// sweepAdmit expires parked submissions that waited past their budget.
// Runs from the deadline sweep whenever admission is on, regardless of
// the timeout ablation knobs — a blocked submitter must never hang.
func (e *Engine) sweepAdmit(now int64) {
	p := e.admit
	var expired []*admitWaiter
	p.mu.Lock()
	old := p.waiting
	kept := old[:0]
	for _, w := range old {
		if now >= w.expire {
			expired = append(expired, w)
		} else {
			kept = append(kept, w)
		}
	}
	for i := len(kept); i < len(old); i++ {
		old[i] = nil
	}
	p.waiting = kept
	p.mu.Unlock()
	for _, w := range expired {
		e.admitExpired.Add(1)
		e.deadlineExpired.Add(1)
		e.recordShed(w.g, w.n, shedExpired)
		w.req.complete(ErrDeadlineExpired)
	}
	if len(expired) > 0 {
		// An expired head may unblock smaller submissions behind it.
		e.admitDrain()
	}
}

// admitTakeWaiters removes and returns parked submissions bound to g
// — or every parked submission when g is nil (engine close) — in FIFO
// order. The caller completes them outside the plane's lock.
func (e *Engine) admitTakeWaiters(g *Gate) []*admitWaiter {
	p := e.admit
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if g == nil {
		out := p.waiting
		p.waiting = nil
		return out
	}
	var out []*admitWaiter
	old := p.waiting
	kept := old[:0]
	for _, w := range old {
		if w.g == g {
			out = append(out, w)
		} else {
			kept = append(kept, w)
		}
	}
	for i := len(kept); i < len(old); i++ {
		old[i] = nil
	}
	p.waiting = kept
	return out
}

// admitCancel withdraws a parked submission (satellite of the cancel
// contract: an admission-blocked send was never injected, so it can
// always be taken back). Reports whether r was found and removed; the
// caller completes it with ErrCanceled.
func (e *Engine) admitCancel(r *Request) bool {
	p := e.admit
	if p == nil {
		return false
	}
	p.mu.Lock()
	for i, w := range p.waiting {
		if w.req == r {
			copy(p.waiting[i:], p.waiting[i+1:])
			p.waiting[len(p.waiting)-1] = nil
			p.waiting = p.waiting[:len(p.waiting)-1]
			p.mu.Unlock()
			// Removing a head-of-line waiter may unblock the queue.
			e.admitDrain()
			return true
		}
	}
	p.mu.Unlock()
	return false
}

// AdmitInfo is a point-in-time snapshot of the admission plane, for
// metrics and health export. The zero value (Enabled false) means
// admission is off.
type AdmitInfo struct {
	// Enabled reports whether the engine runs admission control.
	Enabled bool
	// Requests and Bytes are the engine-wide credits currently held.
	Requests int
	// Bytes is the engine-wide payload-byte credits currently held.
	Bytes int64
	// MaxRequests and MaxBytes are the engine-wide budgets.
	MaxRequests int
	// MaxBytes is the engine-wide payload-byte budget.
	MaxBytes int64
	// Waiting counts submissions parked by the blocking policy.
	Waiting int
	// Degraded reports whether any scope (engine or gate) is past its
	// high watermark. Degraded is not dead: the engine is shedding
	// load by design and /healthz must keep reporting it live.
	Degraded bool
}

// AdmitInfo returns the admission plane's current state; the zero
// value when admission is off.
func (e *Engine) AdmitInfo() AdmitInfo {
	p := e.admit
	if p == nil {
		return AdmitInfo{}
	}
	s := p.eng.Snapshot()
	p.mu.Lock()
	waiting := len(p.waiting)
	p.mu.Unlock()
	deg := s.Degraded
	if !deg {
		for _, g := range e.Gates() {
			if g.admitL != nil && g.admitL.Degraded() {
				deg = true
				break
			}
		}
	}
	return AdmitInfo{
		Enabled:     true,
		Requests:    s.Requests,
		Bytes:       s.Bytes,
		MaxRequests: s.MaxRequests,
		MaxBytes:    s.MaxBytes,
		Waiting:     waiting,
		Degraded:    deg,
	}
}

// InflightStates counts the engine's live protocol states — send and
// receive rendezvous halves plus unacknowledged eager messages — the
// "engine queue depth" admission control exists to bound. The chaos
// harness samples its peak: bounded with admission on, unbounded in
// the ablation.
func (e *Engine) InflightStates() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sendRdv) + len(e.rdvRecv) + len(e.eagerPend)
}

// deadlineRailSentinel marks the pull-offer entry that carries a
// request deadline instead of a rail key: no real rail index can reach
// it, and decoders that predate deadlines skip it as out of range.
const deadlineRailSentinel = ^uint32(0)

// extDeadline scans an RTS imm extension for the deadline sentinel
// entry; 0 means the sender attached no deadline.
func extDeadline(ext []byte) int64 {
	for i := 0; ; i++ {
		rail, key, ok := offerEntry(ext, i)
		if !ok {
			return 0
		}
		if rail == deadlineRailSentinel {
			return int64(key)
		}
	}
}
