package nmad

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// enginePair builds two connected engines with the given rail count and
// strategy.
func enginePair(t *testing.T, rails int, strategy StrategyKind) (*Engine, *Gate, *Engine, *Gate) {
	t.Helper()
	ea := NewEngine(Config{Strategy: strategy})
	eb := NewEngine(Config{Strategy: strategy})
	var railsA, railsB []Driver
	for i := 0; i < rails; i++ {
		da, db := MemPair()
		railsA = append(railsA, da)
		railsB = append(railsB, db)
	}
	ga, err := ea.NewGate(railsA...)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := eb.NewGate(railsB...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ea.Close()
		eb.Close()
	})
	return ea, ga, eb, gb
}

func TestEagerSendRecv(t *testing.T) {
	_, ga, _, gb := enginePair(t, 1, StrategyDefault)
	msg := []byte("hello pioman")
	if err := ga.Send(42, msg); err != nil {
		t.Fatal(err)
	}
	got, err := gb.Recv(42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("received %q, want %q", got, msg)
	}
}

func TestRecvBeforeSend(t *testing.T) {
	_, ga, _, gb := enginePair(t, 1, StrategyDefault)
	req := gb.Irecv(7)
	if req.Test() {
		t.Fatal("request complete before any send")
	}
	if err := ga.Send(7, []byte("late binding")); err != nil {
		t.Fatal(err)
	}
	if err := req.Wait(); err != nil {
		t.Fatal(err)
	}
	if string(req.Data) != "late binding" {
		t.Errorf("Data = %q", req.Data)
	}
}

func TestUnexpectedMessageMatchedLater(t *testing.T) {
	_, ga, _, gb := enginePair(t, 1, StrategyDefault)
	if err := ga.Send(9, []byte("early")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let it arrive unexpected
	got, err := gb.Recv(9)
	if err != nil || string(got) != "early" {
		t.Fatalf("Recv = %q, %v", got, err)
	}
}

func TestTagSeparation(t *testing.T) {
	_, ga, _, gb := enginePair(t, 1, StrategyDefault)
	r1 := gb.Irecv(1)
	r2 := gb.Irecv(2)
	if err := ga.Send(2, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := ga.Send(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := r1.Wait(); err != nil || string(r1.Data) != "one" {
		t.Errorf("tag 1 got %q, %v", r1.Data, r1.Err())
	}
	if err := r2.Wait(); err != nil || string(r2.Data) != "two" {
		t.Errorf("tag 2 got %q, %v", r2.Data, r2.Err())
	}
}

func TestSameTagFIFO(t *testing.T) {
	_, ga, _, gb := enginePair(t, 1, StrategyDefault)
	for i := 0; i < 10; i++ {
		if err := ga.Send(5, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		got, err := gb.Recv(5)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("message %d out of order: got %v", i, got)
		}
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	ea, ga, eb, gb := enginePair(t, 1, StrategyDefault)
	big := make([]byte, 256<<10)
	for i := range big {
		big[i] = byte(i * 31)
	}
	var recvd []byte
	var recvErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		recvd, recvErr = gb.Recv(3)
	}()
	if err := ga.Send(3, big); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if recvErr != nil {
		t.Fatal(recvErr)
	}
	if !bytes.Equal(recvd, big) {
		t.Fatal("rendezvous payload corrupted")
	}
	if ea.Stats().RdvStarted == 0 {
		t.Error("large message should have used the rendezvous protocol")
	}
	if eb.Stats().MsgsRecv != 1 {
		t.Errorf("MsgsRecv = %d, want 1", eb.Stats().MsgsRecv)
	}
}

func TestMultirailStripesData(t *testing.T) {
	ea, ga, _, gb := enginePair(t, 2, StrategyDefault)
	big := make([]byte, 300<<10)
	for i := range big {
		big[i] = byte(i ^ (i >> 8))
	}
	done := make(chan struct{})
	var recvd []byte
	var recvErr error
	go func() {
		defer close(done)
		recvd, recvErr = gb.Recv(1)
	}()
	if err := ga.Send(1, big); err != nil {
		t.Fatal(err)
	}
	<-done
	if recvErr != nil {
		t.Fatal(recvErr)
	}
	if !bytes.Equal(recvd, big) {
		t.Fatal("multirail payload corrupted")
	}
	if got := ea.Stats().RdvData; got != 2 {
		t.Errorf("rendezvous data fragments = %d, want 2 (one per rail)", got)
	}
}

func TestAggregationPacksMessages(t *testing.T) {
	ea, ga, _, gb := enginePair(t, 1, StrategyAggreg)
	const n = 50
	var reqs []*Request
	for i := 0; i < n; i++ {
		reqs = append(reqs, ga.Isend(uint64(100+i), []byte(fmt.Sprintf("msg-%d", i))))
	}
	for _, r := range reqs {
		if err := r.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		got, err := gb.Recv(uint64(100 + i))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != fmt.Sprintf("msg-%d", i) {
			t.Fatalf("message %d = %q", i, got)
		}
	}
	st := ea.Stats()
	if st.FramesSent >= n {
		t.Errorf("frames sent = %d for %d messages; aggregation should pack them", st.FramesSent, n)
	}
	if st.Aggregated == 0 {
		t.Error("no messages recorded as aggregated")
	}
}

func TestAggregationSingletonStaysPlain(t *testing.T) {
	ea, ga, _, gb := enginePair(t, 1, StrategyAggreg)
	if err := ga.Send(1, []byte("solo")); err != nil {
		t.Fatal(err)
	}
	got, err := gb.Recv(1)
	if err != nil || string(got) != "solo" {
		t.Fatalf("Recv = %q, %v", got, err)
	}
	if ea.Stats().AggrFrames != 0 {
		t.Error("a lone message should not produce an aggregate frame")
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	_, ga, _, gb := enginePair(t, 1, StrategyDefault)
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := ga.Send(1, []byte{byte(i)}); err != nil {
				errs <- err
				return
			}
			if _, err := ga.Recv(2); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := gb.Recv(1); err != nil {
				errs <- err
				return
			}
			if err := gb.Send(2, []byte{byte(i)}); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestConcurrentSendersReceivers(t *testing.T) {
	_, ga, _, gb := enginePair(t, 1, StrategyDefault)
	const threads = 8
	const per = 25
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(2)
		go func(th int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := ga.Send(uint64(th), []byte{byte(th), byte(i)}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(th)
		go func(th int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				got, err := gb.Recv(uint64(th))
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				if got[0] != byte(th) || got[1] != byte(i) {
					t.Errorf("thread %d message %d: got %v", th, i, got)
				}
			}
		}(th)
	}
	wg.Wait()
}

func TestCloseCompletesOutstandingReceives(t *testing.T) {
	ea := NewEngine(Config{})
	da, db := MemPair()
	_ = db
	ga, err := ea.NewGate(da)
	if err != nil {
		t.Fatal(err)
	}
	req := ga.Irecv(1)
	if err := ea.Close(); err != nil {
		t.Fatal(err)
	}
	if err := req.WaitBlocking(); err == nil {
		t.Error("outstanding receive should fail at Close")
	}
	// Sends after close fail fast.
	req2 := ga.Isend(1, []byte("x"))
	if err := req2.WaitBlocking(); err == nil {
		t.Error("send after Close should fail")
	}
}

func TestGateNeedsRails(t *testing.T) {
	e := NewEngine(Config{})
	defer e.Close()
	if _, err := e.NewGate(); err == nil {
		t.Error("gate with no rails should fail")
	}
}

func TestTCPDriverEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type acceptResult struct {
		d   Driver
		err error
	}
	acceptCh := make(chan acceptResult, 1)
	go func() {
		d, err := AcceptTCP(ln)
		acceptCh <- acceptResult{d, err}
	}()
	dialer, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	acc := <-acceptCh
	if acc.err != nil {
		t.Fatal(acc.err)
	}

	ea := NewEngine(Config{})
	eb := NewEngine(Config{})
	defer ea.Close()
	defer eb.Close()
	ga, err := ea.NewGate(dialer)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := eb.NewGate(acc.d)
	if err != nil {
		t.Fatal(err)
	}

	// Small eager message and a large rendezvous message over real TCP.
	if err := ga.Send(1, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	got, err := gb.Recv(1)
	if err != nil || string(got) != "over tcp" {
		t.Fatalf("Recv = %q, %v", got, err)
	}

	big := make([]byte, 128<<10)
	for i := range big {
		big[i] = byte(i * 7)
	}
	done := make(chan struct{})
	var recvd []byte
	var recvErr error
	go func() {
		defer close(done)
		recvd, recvErr = gb.Recv(2)
	}()
	if err := ga.Send(2, big); err != nil {
		t.Fatal(err)
	}
	<-done
	if recvErr != nil {
		t.Fatal(recvErr)
	}
	if !bytes.Equal(recvd, big) {
		t.Fatal("TCP rendezvous payload corrupted")
	}
}

func TestNetPipeDriver(t *testing.T) {
	ca, cb := net.Pipe()
	ea := NewEngine(Config{})
	eb := NewEngine(Config{})
	defer ea.Close()
	defer eb.Close()
	ga, err := ea.NewGate(NewTCP(ca))
	if err != nil {
		t.Fatal(err)
	}
	gb, err := eb.NewGate(NewTCP(cb))
	if err != nil {
		t.Fatal(err)
	}
	if err := ga.Send(1, []byte("pipe")); err != nil {
		t.Fatal(err)
	}
	got, err := gb.Recv(1)
	if err != nil || string(got) != "pipe" {
		t.Fatalf("Recv = %q, %v", got, err)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Kind: KindData, Tag: 0xDEADBEEF, MsgID: 42, FragIdx: 3, FragCnt: 7, Offset: 1024, Total: 4096}
	var buf [headerBytes]byte
	h.encode(buf[:])
	got, err := decodeHeader(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip: %+v != %+v", got, h)
	}
	if _, err := decodeHeader(buf[:5]); err == nil {
		t.Error("short header should fail to decode")
	}
}

func TestAggrPackUnpackRoundTrip(t *testing.T) {
	batch := []pendingSend{
		{hdr: Header{Tag: 1, MsgID: 10}, payload: []byte("alpha")},
		{hdr: Header{Tag: 2, MsgID: 11}, payload: []byte("")},
		{hdr: Header{Tag: 3, MsgID: 12}, payload: []byte("gamma-longer-payload")},
	}
	frames := unpackAggr(packAggr(batch, nil))
	if len(frames) != 3 {
		t.Fatalf("unpacked %d frames, want 3", len(frames))
	}
	for i, f := range frames {
		if f.Hdr.Tag != batch[i].hdr.Tag || !bytes.Equal(f.Payload, batch[i].payload) {
			t.Errorf("frame %d = %+v payload %q", i, f.Hdr, f.Payload)
		}
	}
}

func TestUnpackAggrTruncated(t *testing.T) {
	batch := []pendingSend{{hdr: Header{Tag: 1}, payload: []byte("full")}}
	raw := packAggr(batch, nil)
	if got := unpackAggr(raw[:len(raw)-2]); len(got) != 0 {
		t.Errorf("truncated aggregate should yield no frames, got %d", len(got))
	}
}

func TestStatsProgression(t *testing.T) {
	ea, ga, eb, gb := enginePair(t, 1, StrategyDefault)
	for i := 0; i < 5; i++ {
		if err := ga.Send(1, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if _, err := gb.Recv(1); err != nil {
			t.Fatal(err)
		}
	}
	sa, sb := ea.Stats(), eb.Stats()
	if sa.MsgsSent != 5 || sa.EagerSent != 5 {
		t.Errorf("sender stats = %+v", sa)
	}
	if sb.MsgsRecv != 5 || sb.FramesRecv < 5 {
		t.Errorf("receiver stats = %+v", sb)
	}
}

// TestFIFOCompactsWithoutFullDrain: a (gate, tag) queue that never
// fully drains — the standard double-buffered receive pattern — must
// not grow its backing slice behind an ever-longer dead prefix.
func TestFIFOCompactsWithoutFullDrain(t *testing.T) {
	q := &fifo[int]{}
	q.push(0)
	const n = 100_000
	for i := 1; i <= n; i++ {
		q.push(i)
		v, ok := q.pop()
		if !ok || v != i-1 {
			t.Fatalf("pop = %d,%v at step %d, want %d", v, ok, i, i-1)
		}
	}
	if q.empty() {
		t.Fatal("queue should still hold one entry")
	}
	if c := cap(q.items); c > 256 {
		t.Errorf("backing slice grew to %d slots for a depth-1 queue; compaction is not working", c)
	}
}

// TestNackDirectionSelectsVictim: a gate's send and receive directions
// share the msgID keyspace, so the NACK's direction field must decide
// which half fails — guessing would kill an unrelated healthy transfer
// carrying the same id.
func TestNackDirectionSelectsVictim(t *testing.T) {
	e := NewEngine(Config{NoAutoProgress: true})
	defer e.Close()
	da, db := MemPair()
	defer db.Close()
	g, err := e.NewGate(da)
	if err != nil {
		t.Fatal(err)
	}
	const msgID = 7
	key := rdvKey{gate: g, msgID: msgID}
	sst := e.getSendRdv()
	sst.req = newRequest(e)
	rst := e.getRecvRdv()
	rst.req = newRequest(e)
	rst.gate = g
	rst.msgID = msgID
	e.mu.Lock()
	e.sendRdv[key] = sst
	e.rdvRecv[key] = rst
	e.mu.Unlock()

	e.failRendezvousNack(g, Header{Kind: KindRdvNack, MsgID: msgID, Offset: nackRecv})
	if !rst.req.Test() {
		t.Error("nackRecv must fail the receive half")
	}
	if sst.req.Test() {
		t.Error("nackRecv must not touch the healthy send sharing the msgID")
	}

	e.failRendezvousNack(g, Header{Kind: KindRdvNack, MsgID: msgID, Offset: nackSend})
	if !sst.req.Test() {
		t.Error("nackSend must fail the send half")
	}
}
