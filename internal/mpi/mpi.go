// Package mpi is a MadMPI-like message-passing interface on top of the
// nmad engine: ranks, tag matching with source selection, blocking and
// non-blocking point-to-point operations, probes and a barrier. It
// provides MPI_THREAD_MULTIPLE semantics — any number of goroutines may
// call into a Comm concurrently — because the underlying engine
// serializes only its matching structures, never the progression.
//
// Communication progresses in the background through the PIOMan task
// engine regardless of whether any rank is inside an MPI call: this is
// the property the paper's Figures 5-7 measure.
package mpi

import (
	"fmt"
	"sync"

	"pioman/internal/nmad"
)

// AnySource matches a message from any connected peer.
const AnySource = -1

// maxUserTag bounds application tags; higher tag bits are reserved for
// internal protocols (barrier).
const maxUserTag = 1 << 30

// barrierTagBase marks internal barrier messages.
const barrierTagBase = uint64(1) << 40

// Comm is one rank's communicator: a set of gates to peer ranks.
type Comm struct {
	rank int
	eng  *nmad.Engine

	mu    sync.RWMutex
	gates map[int]*nmad.Gate

	barrierSeq uint64
}

// NewComm creates a communicator for the given rank over an engine.
func NewComm(rank int, eng *nmad.Engine) *Comm {
	return &Comm{rank: rank, eng: eng, gates: make(map[int]*nmad.Gate)}
}

// Rank returns this process's rank.
func (c *Comm) Rank() int { return c.rank }

// Engine exposes the underlying nmad engine.
func (c *Comm) Engine() *nmad.Engine { return c.eng }

// Connect registers the gate leading to a peer rank.
func (c *Comm) Connect(peer int, g *nmad.Gate) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gates[peer] = g
}

// Peers returns the connected peer ranks.
func (c *Comm) Peers() []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]int, 0, len(c.gates))
	for r := range c.gates {
		out = append(out, r)
	}
	return out
}

func (c *Comm) gate(peer int) (*nmad.Gate, error) {
	c.mu.RLock()
	g := c.gates[peer]
	c.mu.RUnlock()
	if g == nil {
		return nil, fmt.Errorf("mpi: rank %d not connected to rank %d", c.rank, peer)
	}
	return g, nil
}

func checkTag(tag int) error {
	if tag < 0 || tag >= maxUserTag {
		return fmt.Errorf("mpi: tag %d out of range [0, %d)", tag, maxUserTag)
	}
	return nil
}

// Request is a non-blocking operation handle.
type Request struct {
	inner *nmad.Request
	// Source is the peer rank the operation addresses.
	Source int
}

// Wait blocks until completion (actively progressing tasks) and returns
// the received data for receives.
func (r *Request) Wait() ([]byte, error) {
	if err := r.inner.Wait(); err != nil {
		return nil, err
	}
	return r.inner.Data, nil
}

// Test reports completion without blocking.
func (r *Request) Test() bool { return r.inner.Test() }

// Done returns a channel closed at completion.
func (r *Request) Done() <-chan struct{} { return r.inner.Done() }

// Isend starts a non-blocking send to rank dst.
func (c *Comm) Isend(dst, tag int, data []byte) (*Request, error) {
	if err := checkTag(tag); err != nil {
		return nil, err
	}
	g, err := c.gate(dst)
	if err != nil {
		return nil, err
	}
	return &Request{inner: g.Isend(uint64(tag), data), Source: dst}, nil
}

// Irecv starts a non-blocking receive from rank src (AnySource is not
// supported in non-blocking form; use Recv or Probe).
func (c *Comm) Irecv(src, tag int) (*Request, error) {
	if err := checkTag(tag); err != nil {
		return nil, err
	}
	if src == AnySource {
		return nil, fmt.Errorf("mpi: Irecv does not support AnySource; use Recv")
	}
	g, err := c.gate(src)
	if err != nil {
		return nil, err
	}
	return &Request{inner: g.Irecv(uint64(tag)), Source: src}, nil
}

// Send sends data to rank dst and returns once the payload is on the
// wire (eager) or fully transferred (rendezvous).
func (c *Comm) Send(dst, tag int, data []byte) error {
	req, err := c.Isend(dst, tag, data)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

// Recv receives the next message with the given tag from src, or from
// any connected peer when src is AnySource.
func (c *Comm) Recv(src, tag int) ([]byte, int, error) {
	if err := checkTag(tag); err != nil {
		return nil, 0, err
	}
	if src != AnySource {
		req, err := c.Irecv(src, tag)
		if err != nil {
			return nil, 0, err
		}
		data, err := req.Wait()
		return data, src, err
	}
	// AnySource: probe the unexpected queues until a peer has a match,
	// then commit a receive on that gate.
	for {
		from, ok := c.Iprobe(AnySource, tag)
		if !ok {
			// Help progression while waiting.
			c.eng.Tasks().Schedule(0)
			continue
		}
		req, err := c.Irecv(from, tag)
		if err != nil {
			return nil, 0, err
		}
		data, err := req.Wait()
		return data, from, err
	}
}

// Iprobe reports whether a message with the given tag has arrived from
// src (or any peer for AnySource) without consuming it. It returns the
// source rank of the first match.
func (c *Comm) Iprobe(src, tag int) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if src != AnySource {
		if g := c.gates[src]; g != nil && g.Unexpected(uint64(tag)) {
			return src, true
		}
		return 0, false
	}
	for r, g := range c.gates {
		if g.Unexpected(uint64(tag)) {
			return r, true
		}
	}
	return 0, false
}

// Waitall waits for every request, returning the first error.
func Waitall(reqs ...*Request) error {
	var firstErr error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Barrier synchronizes all connected ranks with a flat exchange: every
// rank sends a token to every peer and waits for one from each. Safe
// only when all ranks call it the same number of times.
func (c *Comm) Barrier() error {
	c.mu.Lock()
	c.barrierSeq++
	seq := c.barrierSeq
	gates := make(map[int]*nmad.Gate, len(c.gates))
	for r, g := range c.gates {
		gates[r] = g
	}
	c.mu.Unlock()

	tag := barrierTagBase + seq
	var reqs []*nmad.Request
	for _, g := range gates {
		reqs = append(reqs, g.Isend(tag, nil))
	}
	for _, g := range gates {
		reqs = append(reqs, g.Irecv(tag))
	}
	for _, r := range reqs {
		if err := r.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// LocalCluster builds n fully connected in-process ranks over memory
// rails — the quickest way to run multi-rank examples and tests in one
// process. Close every returned engine when done.
func LocalCluster(n int, cfg nmad.Config) ([]*Comm, []*nmad.Engine, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("mpi: cluster size %d", n)
	}
	engines := make([]*nmad.Engine, n)
	comms := make([]*Comm, n)
	for i := 0; i < n; i++ {
		engines[i] = nmad.NewEngine(cfg)
		comms[i] = NewComm(i, engines[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			di, dj := nmad.MemPair()
			gi, err := engines[i].NewGate(di)
			if err != nil {
				return nil, nil, err
			}
			gj, err := engines[j].NewGate(dj)
			if err != nil {
				return nil, nil, err
			}
			comms[i].Connect(j, gi)
			comms[j].Connect(i, gj)
		}
	}
	return comms, engines, nil
}
