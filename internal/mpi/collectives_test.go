package mpi

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestBcastFromRankZero(t *testing.T) {
	const n = 4
	c := cluster(t, n)
	payload := []byte("broadcast me")
	results := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var data []byte
			if r == 0 {
				data = payload
			}
			results[r], errs[r] = c[r].Bcast(0, 1, data)
		}(r)
	}
	wg.Wait()
	for r := 0; r < n; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		if !bytes.Equal(results[r], payload) {
			t.Errorf("rank %d got %q", r, results[r])
		}
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	const n = 5
	c := cluster(t, n)
	payload := []byte("root is two")
	var wg sync.WaitGroup
	results := make([][]byte, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var data []byte
			if r == 2 {
				data = payload
			}
			out, err := c[r].Bcast(2, 7, data)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			results[r] = out
		}(r)
	}
	wg.Wait()
	for r := 0; r < n; r++ {
		if !bytes.Equal(results[r], payload) {
			t.Errorf("rank %d got %q", r, results[r])
		}
	}
}

func TestBcastSequencesDoNotCross(t *testing.T) {
	const n = 3
	c := cluster(t, n)
	var wg sync.WaitGroup
	out := make([][][]byte, n)
	for r := 0; r < n; r++ {
		out[r] = make([][]byte, 4)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for seq := 0; seq < 4; seq++ {
				var data []byte
				if r == 0 {
					data = []byte(fmt.Sprintf("gen-%d", seq))
				}
				got, err := c[r].Bcast(0, 100+seq, data)
				if err != nil {
					t.Errorf("rank %d seq %d: %v", r, seq, err)
					return
				}
				out[r][seq] = got
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < n; r++ {
		for seq := 0; seq < 4; seq++ {
			want := fmt.Sprintf("gen-%d", seq)
			if string(out[r][seq]) != want {
				t.Errorf("rank %d seq %d = %q, want %q", r, seq, out[r][seq], want)
			}
		}
	}
}

func TestBcastValidation(t *testing.T) {
	c := cluster(t, 2)
	if _, err := c[0].Bcast(0, -1, nil); err == nil {
		t.Error("negative seq should fail")
	}
	if _, err := c[0].Bcast(99, 1, nil); err == nil {
		t.Error("root outside group should fail")
	}
}

func TestGather(t *testing.T) {
	const n = 4
	c := cluster(t, n)
	var wg sync.WaitGroup
	var rootResult [][]byte
	var rootErr error
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			contribution := []byte(fmt.Sprintf("from-%d", r))
			out, err := c[r].Gather(1, 3, contribution)
			if r == 1 {
				rootResult, rootErr = out, err
			} else if err != nil {
				t.Errorf("rank %d: %v", r, err)
			}
		}(r)
	}
	wg.Wait()
	if rootErr != nil {
		t.Fatal(rootErr)
	}
	if len(rootResult) != n {
		t.Fatalf("gathered %d contributions, want %d", len(rootResult), n)
	}
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("from-%d", i)
		if string(rootResult[i]) != want {
			t.Errorf("slot %d = %q, want %q", i, rootResult[i], want)
		}
	}
}

func TestGatherValidation(t *testing.T) {
	c := cluster(t, 2)
	if _, err := c[0].Gather(0, -2, nil); err == nil {
		t.Error("negative seq should fail")
	}
}

func TestBcastLargePayloadUsesRendezvous(t *testing.T) {
	const n = 3
	c := cluster(t, n)
	big := make([]byte, 256<<10)
	for i := range big {
		big[i] = byte(i * 11)
	}
	var wg sync.WaitGroup
	results := make([][]byte, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var data []byte
			if r == 0 {
				data = big
			}
			out, err := c[r].Bcast(0, 9, data)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			results[r] = out
		}(r)
	}
	wg.Wait()
	for r := 0; r < n; r++ {
		if !bytes.Equal(results[r], big) {
			t.Errorf("rank %d payload corrupted", r)
		}
	}
}
