package mpi

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pioman/internal/nmad"
)

func cluster(t *testing.T, n int) []*Comm {
	t.Helper()
	comms, engines, err := LocalCluster(n, nmad.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, e := range engines {
			e.Close()
		}
	})
	return comms
}

func TestSendRecvBasic(t *testing.T) {
	c := cluster(t, 2)
	done := make(chan error, 1)
	go func() { done <- c[0].Send(1, 7, []byte("ping")) }()
	data, from, err := c[1].Recv(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if from != 0 || string(data) != "ping" {
		t.Errorf("Recv = %q from %d", data, from)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWait(t *testing.T) {
	c := cluster(t, 2)
	rreq, err := c[1].Irecv(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	sreq, err := c[0].Isend(1, 3, []byte("nonblocking"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sreq.Wait(); err != nil {
		t.Fatal(err)
	}
	data, err := rreq.Wait()
	if err != nil || string(data) != "nonblocking" {
		t.Fatalf("Wait = %q, %v", data, err)
	}
}

func TestLargeMessageRendezvous(t *testing.T) {
	c := cluster(t, 2)
	big := make([]byte, 512<<10)
	for i := range big {
		big[i] = byte(i * 13)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var got []byte
	var rerr error
	go func() {
		defer wg.Done()
		got, _, rerr = c[1].Recv(0, 1)
	}()
	if err := c[0].Send(1, 1, big); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large payload corrupted")
	}
}

func TestAnySource(t *testing.T) {
	c := cluster(t, 3)
	if err := c[2].Send(0, 5, []byte("from two")); err != nil {
		t.Fatal(err)
	}
	data, from, err := c[0].Recv(AnySource, 5)
	if err != nil {
		t.Fatal(err)
	}
	if from != 2 || string(data) != "from two" {
		t.Errorf("Recv = %q from %d, want from 2", data, from)
	}
}

func TestIprobe(t *testing.T) {
	c := cluster(t, 2)
	if _, ok := c[1].Iprobe(0, 9); ok {
		t.Error("Iprobe before send should be false")
	}
	if err := c[0].Send(1, 9, []byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if from, ok := c[1].Iprobe(0, 9); ok {
			if from != 0 {
				t.Errorf("Iprobe source = %d", from)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Iprobe never saw the message")
		}
		c[1].Engine().Tasks().Schedule(0)
	}
	// The message is still receivable.
	data, _, err := c[1].Recv(0, 9)
	if err != nil || string(data) != "x" {
		t.Fatalf("Recv after probe = %q, %v", data, err)
	}
}

func TestTagValidation(t *testing.T) {
	c := cluster(t, 2)
	if _, err := c[0].Isend(1, -1, nil); err == nil {
		t.Error("negative tag should fail")
	}
	if _, err := c[0].Isend(1, maxUserTag, nil); err == nil {
		t.Error("oversized tag should fail")
	}
	if _, err := c[0].Irecv(1, -5); err == nil {
		t.Error("negative recv tag should fail")
	}
}

func TestUnknownPeer(t *testing.T) {
	c := cluster(t, 2)
	if err := c[0].Send(9, 1, nil); err == nil {
		t.Error("send to unconnected rank should fail")
	}
	if _, err := c[0].Irecv(9, 1); err == nil {
		t.Error("recv from unconnected rank should fail")
	}
}

func TestIrecvAnySourceRejected(t *testing.T) {
	c := cluster(t, 2)
	if _, err := c[0].Irecv(AnySource, 1); err == nil {
		t.Error("Irecv with AnySource should be rejected")
	}
}

func TestBarrier(t *testing.T) {
	const n = 3
	c := cluster(t, n)
	var phase [n]atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				phase[r].Store(int64(round))
				if err := c[r].Barrier(); err != nil {
					t.Errorf("rank %d barrier: %v", r, err)
					return
				}
				// After the barrier, nobody can still be in an older round.
				for o := 0; o < n; o++ {
					if got := phase[o].Load(); got < int64(round) {
						t.Errorf("rank %d saw rank %d in round %d during round %d", r, o, got, round)
					}
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestThreadMultipleConcurrentRanks(t *testing.T) {
	// MPI_THREAD_MULTIPLE: many goroutines using the same communicator
	// concurrently, mirroring the OSU multi-threaded latency test.
	c := cluster(t, 2)
	const threads = 6
	const rounds = 15
	var wg sync.WaitGroup
	// Receiver threads on rank 1, one tag each.
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				data, _, err := c[1].Recv(0, th)
				if err != nil {
					t.Errorf("recv thread %d: %v", th, err)
					return
				}
				if err := c[1].Send(0, 1000+th, data); err != nil {
					t.Errorf("reply thread %d: %v", th, err)
					return
				}
			}
		}(th)
	}
	// Sender threads on rank 0.
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				msg := []byte{byte(th), byte(r)}
				if err := c[0].Send(1, th, msg); err != nil {
					t.Errorf("send thread %d: %v", th, err)
					return
				}
				echo, _, err := c[0].Recv(1, 1000+th)
				if err != nil {
					t.Errorf("echo thread %d: %v", th, err)
					return
				}
				if !bytes.Equal(echo, msg) {
					t.Errorf("thread %d round %d: echo %v != %v", th, r, echo, msg)
				}
			}
		}(th)
	}
	wg.Wait()
}

func TestWaitall(t *testing.T) {
	c := cluster(t, 2)
	var sends []*Request
	for i := 0; i < 5; i++ {
		req, err := c[0].Isend(1, i, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		sends = append(sends, req)
	}
	var recvs []*Request
	for i := 0; i < 5; i++ {
		req, err := c[1].Irecv(0, i)
		if err != nil {
			t.Fatal(err)
		}
		recvs = append(recvs, req)
	}
	if err := Waitall(sends...); err != nil {
		t.Fatal(err)
	}
	if err := Waitall(recvs...); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapComputeWhileTransfer(t *testing.T) {
	// Integration check of the paper's headline property on the real
	// stack: a large transfer progresses while the receiver computes
	// between Irecv and Wait (background progression does the work).
	c := cluster(t, 2)
	big := make([]byte, 1<<20)
	go func() {
		_ = c[0].Send(1, 1, big)
	}()
	req, err := c[1].Irecv(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// "Compute": do not call into MPI at all.
	deadline := time.Now().Add(5 * time.Second)
	for !req.Test() {
		if time.Now().After(deadline) {
			t.Fatal("transfer made no progress during computation (no background progression)")
		}
		time.Sleep(time.Millisecond) // busy with application work
	}
	data, err := req.Wait()
	if err != nil || len(data) != len(big) {
		t.Fatalf("Wait = %d bytes, %v", len(data), err)
	}
}

func TestLocalClusterValidation(t *testing.T) {
	if _, _, err := LocalCluster(0, nmad.Config{}); err == nil {
		t.Error("zero-rank cluster should fail")
	}
}
