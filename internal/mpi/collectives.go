package mpi

import (
	"fmt"
	"sort"
)

// collectiveTagBase separates collective traffic from point-to-point
// user tags and from barrier tokens.
const collectiveTagBase = uint64(1) << 41

// participants returns this rank plus all connected peers, sorted — the
// implicit "communicator group" of a fully connected LocalCluster. Every
// rank must see the same group for collectives to match.
func (c *Comm) participants() []int {
	ranks := append(c.Peers(), c.rank)
	sort.Ints(ranks)
	return ranks
}

// vrank maps a rank into 0..n-1 with root at 0 (standard binomial-tree
// relabeling).
func vrank(rank, root, n int) int { return ((rank-root)%n + n) % n }

// Bcast broadcasts data from root to every connected rank along a
// binomial tree; non-root callers receive and return the payload. seq
// distinguishes concurrent broadcast generations and must match across
// ranks (use a counter or a user tag).
func (c *Comm) Bcast(root int, seq int, data []byte) ([]byte, error) {
	if seq < 0 {
		return nil, fmt.Errorf("mpi: negative Bcast seq")
	}
	group := c.participants()
	n := len(group)
	pos := sort.SearchInts(group, c.rank)
	if pos == n || group[pos] != c.rank {
		return nil, fmt.Errorf("mpi: rank %d not in its own group", c.rank)
	}
	rootPos := sort.SearchInts(group, root)
	if rootPos == n || group[rootPos] != root {
		return nil, fmt.Errorf("mpi: Bcast root %d not in group %v", root, group)
	}
	tag := collectiveTagBase + uint64(seq)

	v := vrank(pos, rootPos, n)
	// Receive from the parent (clear the lowest set bit of v).
	if v != 0 {
		parentV := v &^ (v & -v)
		parent := group[(parentV+rootPos)%n]
		g, err := c.gate(parent)
		if err != nil {
			return nil, err
		}
		req := g.Irecv(tag)
		if err := req.Wait(); err != nil {
			return nil, err
		}
		data = req.Data
	}
	// Forward to children: v + 2^k for each k above v's lowest set bit.
	for bit := 1; bit < n; bit <<= 1 {
		if v&bit != 0 {
			break
		}
		childV := v | bit
		if childV >= n {
			break
		}
		child := group[(childV+rootPos)%n]
		g, err := c.gate(child)
		if err != nil {
			return nil, err
		}
		if err := g.Isend(tag, data).Wait(); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// Gather collects one payload from every rank at root. The root returns
// the payloads indexed by rank position in the sorted group (its own
// contribution included); other ranks return nil. seq must match across
// ranks.
func (c *Comm) Gather(root int, seq int, contribution []byte) ([][]byte, error) {
	if seq < 0 {
		return nil, fmt.Errorf("mpi: negative Gather seq")
	}
	group := c.participants()
	tag := collectiveTagBase + uint64(1)<<20 + uint64(seq)
	if c.rank != root {
		g, err := c.gate(root)
		if err != nil {
			return nil, err
		}
		return nil, g.Isend(tag, contribution).Wait()
	}
	out := make([][]byte, len(group))
	for i, r := range group {
		if r == c.rank {
			out[i] = contribution
			continue
		}
		g, err := c.gate(r)
		if err != nil {
			return nil, err
		}
		req := g.Irecv(tag)
		if err := req.Wait(); err != nil {
			return nil, err
		}
		out[i] = req.Data
	}
	return out, nil
}
