// Package cpuset implements CPU-set bitmaps in the style of hwloc bitmaps
// and Linux cpusets. A Set records which logical processors (identified by
// small non-negative integers) may execute a task.
//
// The zero value of Set is the empty set, ready to use. All query methods
// accept the zero value; mutating methods grow the underlying storage on
// demand. Sets are value types holding a reference to their word storage:
// use Clone when an independent copy is required.
package cpuset

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a bitmap of CPU indices. CPU 0 is the lowest-order bit of the
// first word.
type Set struct {
	words []uint64
}

// New returns a set containing exactly the given CPUs.
func New(cpus ...int) Set {
	var s Set
	for _, c := range cpus {
		s.Set(c)
	}
	return s
}

// NewRange returns a set containing all CPUs in [lo, hi] inclusive.
// It panics if lo or hi is negative or lo > hi.
func NewRange(lo, hi int) Set {
	if lo < 0 || hi < lo {
		panic(fmt.Sprintf("cpuset: invalid range [%d,%d]", lo, hi))
	}
	var s Set
	s.grow(hi)
	for w := range s.words {
		base := w * wordBits
		for b := 0; b < wordBits; b++ {
			cpu := base + b
			if cpu >= lo && cpu <= hi {
				s.words[w] |= 1 << uint(b)
			}
		}
	}
	return s
}

func (s *Set) grow(cpu int) {
	need := cpu/wordBits + 1
	for len(s.words) < need {
		s.words = append(s.words, 0)
	}
}

// Set adds cpu to the set. It panics if cpu is negative.
func (s *Set) Set(cpu int) {
	if cpu < 0 {
		panic("cpuset: negative CPU index")
	}
	s.grow(cpu)
	s.words[cpu/wordBits] |= 1 << uint(cpu%wordBits)
}

// Clear removes cpu from the set. Clearing an absent CPU is a no-op.
func (s *Set) Clear(cpu int) {
	if cpu < 0 || cpu/wordBits >= len(s.words) {
		return
	}
	s.words[cpu/wordBits] &^= 1 << uint(cpu%wordBits)
}

// IsSet reports whether cpu is in the set.
func (s Set) IsSet(cpu int) bool {
	if cpu < 0 || cpu/wordBits >= len(s.words) {
		return false
	}
	return s.words[cpu/wordBits]&(1<<uint(cpu%wordBits)) != 0
}

// Count returns the number of CPUs in the set.
func (s Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set contains no CPUs.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Single returns the set's only CPU when the set contains exactly one,
// reporting (-1, false) otherwise. It is a constant-time popcount check,
// used by the task engine's submit fast path to recognise pinned tasks
// without walking the topology tree.
func (s Set) Single() (int, bool) {
	cpu := -1
	for i, w := range s.words {
		if w == 0 {
			continue
		}
		if cpu >= 0 || w&(w-1) != 0 {
			return -1, false
		}
		cpu = i*wordBits + bits.TrailingZeros64(w)
	}
	return cpu, cpu >= 0
}

// First returns the smallest CPU in the set, or -1 if the set is empty.
func (s Set) First() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Last returns the largest CPU in the set, or -1 if the set is empty.
func (s Set) Last() int {
	for i := len(s.words) - 1; i >= 0; i-- {
		if w := s.words[i]; w != 0 {
			return i*wordBits + wordBits - 1 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// Next returns the smallest CPU in the set strictly greater than cpu,
// or -1 if there is none. Next(-1) returns the first CPU.
func (s Set) Next(cpu int) int {
	start := cpu + 1
	if start < 0 {
		start = 0
	}
	for i := start / wordBits; i < len(s.words); i++ {
		w := s.words[i]
		if i == start/wordBits {
			w &= ^uint64(0) << uint(start%wordBits)
		}
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// ForEach calls fn for every CPU in the set in ascending order. If fn
// returns false the iteration stops early.
func (s Set) ForEach(fn func(cpu int) bool) {
	for cpu := s.First(); cpu >= 0; cpu = s.Next(cpu) {
		if !fn(cpu) {
			return
		}
	}
}

// Slice returns the CPUs in the set in ascending order.
func (s Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(cpu int) bool {
		out = append(out, cpu)
		return true
	})
	return out
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Equal reports whether s and o contain exactly the same CPUs.
func (s Set) Equal(o Set) bool {
	n := len(s.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.word(i) != o.word(i) {
			return false
		}
	}
	return true
}

func (s Set) word(i int) uint64 {
	if i < len(s.words) {
		return s.words[i]
	}
	return 0
}

// SubsetOf reports whether every CPU in s is also in o.
func (s Set) SubsetOf(o Set) bool {
	n := len(s.words)
	for i := 0; i < n; i++ {
		if s.words[i]&^o.word(i) != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and o share at least one CPU.
func (s Set) Intersects(o Set) bool {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// And returns the intersection of a and b.
func And(a, b Set) Set {
	n := len(a.words)
	if len(b.words) < n {
		n = len(b.words)
	}
	out := Set{words: make([]uint64, n)}
	for i := 0; i < n; i++ {
		out.words[i] = a.words[i] & b.words[i]
	}
	return out
}

// Or returns the union of a and b.
func Or(a, b Set) Set {
	n := len(a.words)
	if len(b.words) > n {
		n = len(b.words)
	}
	out := Set{words: make([]uint64, n)}
	for i := 0; i < n; i++ {
		out.words[i] = a.word(i) | b.word(i)
	}
	return out
}

// AndNot returns the set difference a \ b.
func AndNot(a, b Set) Set {
	out := Set{words: make([]uint64, len(a.words))}
	for i := range a.words {
		out.words[i] = a.words[i] &^ b.word(i)
	}
	return out
}

// Xor returns the symmetric difference of a and b.
func Xor(a, b Set) Set {
	n := len(a.words)
	if len(b.words) > n {
		n = len(b.words)
	}
	out := Set{words: make([]uint64, n)}
	for i := 0; i < n; i++ {
		out.words[i] = a.word(i) ^ b.word(i)
	}
	return out
}

// String formats the set as a comma-separated list of ranges, e.g.
// "0-3,8,10-11". The empty set formats as "".
func (s Set) String() string {
	var b strings.Builder
	first := true
	cpu := s.First()
	for cpu >= 0 {
		lo := cpu
		hi := cpu
		for {
			next := s.Next(hi)
			if next != hi+1 {
				cpu = next
				break
			}
			hi = next
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		if lo == hi {
			fmt.Fprintf(&b, "%d", lo)
		} else {
			fmt.Fprintf(&b, "%d-%d", lo, hi)
		}
	}
	return b.String()
}

// Parse parses the format produced by String: a comma-separated list of
// decimal CPU indices or lo-hi ranges. The empty string parses to the
// empty set.
func Parse(text string) (Set, error) {
	var s Set
	if text == "" {
		return s, nil
	}
	for _, part := range strings.Split(text, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return Set{}, fmt.Errorf("cpuset: empty element in %q", text)
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			l, err := strconv.Atoi(lo)
			if err != nil {
				return Set{}, fmt.Errorf("cpuset: bad range start %q: %v", part, err)
			}
			h, err := strconv.Atoi(hi)
			if err != nil {
				return Set{}, fmt.Errorf("cpuset: bad range end %q: %v", part, err)
			}
			if l < 0 || h < l {
				return Set{}, fmt.Errorf("cpuset: invalid range %q", part)
			}
			for c := l; c <= h; c++ {
				s.Set(c)
			}
			continue
		}
		c, err := strconv.Atoi(part)
		if err != nil || c < 0 {
			return Set{}, fmt.Errorf("cpuset: bad CPU index %q", part)
		}
		s.Set(c)
	}
	return s, nil
}
