package cpuset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestZeroValueIsEmpty(t *testing.T) {
	var s Set
	if !s.IsEmpty() {
		t.Error("zero Set should be empty")
	}
	if s.Count() != 0 {
		t.Errorf("Count() = %d, want 0", s.Count())
	}
	if s.First() != -1 {
		t.Errorf("First() = %d, want -1", s.First())
	}
	if s.Last() != -1 {
		t.Errorf("Last() = %d, want -1", s.Last())
	}
	if s.IsSet(0) || s.IsSet(100) {
		t.Error("zero Set should contain no CPUs")
	}
	if s.String() != "" {
		t.Errorf("String() = %q, want \"\"", s.String())
	}
}

func TestSetClearIsSet(t *testing.T) {
	var s Set
	s.Set(0)
	s.Set(63)
	s.Set(64)
	s.Set(130)
	for _, c := range []int{0, 63, 64, 130} {
		if !s.IsSet(c) {
			t.Errorf("IsSet(%d) = false, want true", c)
		}
	}
	for _, c := range []int{1, 62, 65, 129, 131} {
		if s.IsSet(c) {
			t.Errorf("IsSet(%d) = true, want false", c)
		}
	}
	s.Clear(63)
	if s.IsSet(63) {
		t.Error("Clear(63) did not remove 63")
	}
	s.Clear(1000) // out of range: no-op
	if s.Count() != 3 {
		t.Errorf("Count() = %d, want 3", s.Count())
	}
}

func TestSetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set(-1) should panic")
		}
	}()
	var s Set
	s.Set(-1)
}

func TestNewRange(t *testing.T) {
	s := NewRange(3, 9)
	if s.Count() != 7 {
		t.Fatalf("Count() = %d, want 7", s.Count())
	}
	for c := 3; c <= 9; c++ {
		if !s.IsSet(c) {
			t.Errorf("IsSet(%d) = false", c)
		}
	}
	if s.IsSet(2) || s.IsSet(10) {
		t.Error("range boundaries leaked")
	}
	single := NewRange(5, 5)
	if !single.Equal(New(5)) {
		t.Error("NewRange(5,5) != New(5)")
	}
}

func TestNewRangeCrossesWords(t *testing.T) {
	s := NewRange(60, 70)
	if s.Count() != 11 {
		t.Fatalf("Count() = %d, want 11", s.Count())
	}
	if s.First() != 60 || s.Last() != 70 {
		t.Errorf("First/Last = %d/%d, want 60/70", s.First(), s.Last())
	}
}

func TestNewRangeInvalidPanics(t *testing.T) {
	for _, r := range [][2]int{{-1, 3}, {5, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRange(%d,%d) should panic", r[0], r[1])
				}
			}()
			NewRange(r[0], r[1])
		}()
	}
}

func TestFirstLastNext(t *testing.T) {
	s := New(2, 5, 64, 100)
	if got := s.First(); got != 2 {
		t.Errorf("First() = %d, want 2", got)
	}
	if got := s.Last(); got != 100 {
		t.Errorf("Last() = %d, want 100", got)
	}
	want := []int{2, 5, 64, 100}
	got := []int{}
	for c := s.Next(-1); c >= 0; c = s.Next(c) {
		got = append(got, c)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Next iteration = %v, want %v", got, want)
	}
	if s.Next(100) != -1 {
		t.Error("Next past last should be -1")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := NewRange(0, 9)
	n := 0
	s.ForEach(func(cpu int) bool {
		n++
		return cpu < 4
	})
	if n != 5 { // visits 0..4; fn returns false at cpu=4, stopping iteration
		t.Errorf("visited %d CPUs, want 5", n)
	}
}

func TestSlice(t *testing.T) {
	s := New(7, 1, 3)
	if got := s.Slice(); !reflect.DeepEqual(got, []int{1, 3, 7}) {
		t.Errorf("Slice() = %v", got)
	}
	var empty Set
	if got := empty.Slice(); len(got) != 0 {
		t.Errorf("empty Slice() = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(1, 2)
	b := a.Clone()
	b.Set(3)
	if a.IsSet(3) {
		t.Error("mutation of clone leaked into original")
	}
	a.Clear(1)
	if !b.IsSet(1) {
		t.Error("mutation of original leaked into clone")
	}
}

func TestEqualDifferentStorageLengths(t *testing.T) {
	a := New(3)
	b := New(3)
	b.Set(200)
	b.Clear(200) // b now has longer storage but same content
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("Equal must ignore trailing zero words")
	}
}

func TestSubsetOf(t *testing.T) {
	a := New(1, 2)
	b := New(1, 2, 3)
	if !a.SubsetOf(b) {
		t.Error("{1,2} should be subset of {1,2,3}")
	}
	if b.SubsetOf(a) {
		t.Error("{1,2,3} should not be subset of {1,2}")
	}
	var empty Set
	if !empty.SubsetOf(a) || !empty.SubsetOf(empty) {
		t.Error("empty set is a subset of everything")
	}
	wide := New(100)
	if wide.SubsetOf(a) {
		t.Error("{100} is not a subset of {1,2}")
	}
}

func TestIntersects(t *testing.T) {
	a := New(1, 2)
	b := New(2, 3)
	c := New(4)
	if !a.Intersects(b) {
		t.Error("{1,2} intersects {2,3}")
	}
	if a.Intersects(c) {
		t.Error("{1,2} does not intersect {4}")
	}
	var empty Set
	if empty.Intersects(a) || a.Intersects(empty) {
		t.Error("empty set intersects nothing")
	}
}

func TestBooleanOps(t *testing.T) {
	a := New(0, 1, 2, 64)
	b := New(2, 3, 64, 65)
	if got := And(a, b); !got.Equal(New(2, 64)) {
		t.Errorf("And = %v", got)
	}
	if got := Or(a, b); !got.Equal(New(0, 1, 2, 3, 64, 65)) {
		t.Errorf("Or = %v", got)
	}
	if got := AndNot(a, b); !got.Equal(New(0, 1)) {
		t.Errorf("AndNot = %v", got)
	}
	if got := Xor(a, b); !got.Equal(New(0, 1, 3, 65)) {
		t.Errorf("Xor = %v", got)
	}
}

func TestStringFormat(t *testing.T) {
	cases := []struct {
		set  Set
		want string
	}{
		{New(), ""},
		{New(0), "0"},
		{New(0, 1, 2, 3), "0-3"},
		{New(0, 2, 4), "0,2,4"},
		{New(0, 1, 5, 6, 7, 9), "0-1,5-7,9"},
		{New(63, 64, 65), "63-65"},
	}
	for _, c := range cases {
		if got := c.set.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Set
	}{
		{"", New()},
		{"0", New(0)},
		{"0-3", NewRange(0, 3)},
		{"0,2,4", New(0, 2, 4)},
		{" 1 , 3-5 ", New(1, 3, 4, 5)},
		{"63-65", New(63, 64, 65)},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{",", "a", "1-", "-3", "5-2", "1,,2", "-1"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		var s Set
		n := rng.Intn(20)
		for j := 0; j < n; j++ {
			s.Set(rng.Intn(256))
		}
		parsed, err := Parse(s.String())
		if err != nil {
			t.Fatalf("round trip parse error for %q: %v", s.String(), err)
		}
		if !parsed.Equal(s) {
			t.Fatalf("round trip mismatch: %v -> %q -> %v", s.Slice(), s.String(), parsed.Slice())
		}
	}
}

// mkSet builds a set from a random bitmask over 128 CPUs, for quick-check
// properties.
func mkSet(bits [2]uint64) Set {
	var s Set
	for w, word := range bits {
		for b := 0; b < 64; b++ {
			if word&(1<<uint(b)) != 0 {
				s.Set(w*64 + b)
			}
		}
	}
	return s
}

func TestQuickDeMorgan(t *testing.T) {
	// a \ b == a AND NOT b  implies  (a\b) ∪ (a∩b) == a
	f := func(aw, bw [2]uint64) bool {
		a, b := mkSet(aw), mkSet(bw)
		return Or(AndNot(a, b), And(a, b)).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickXorIsSymDiff(t *testing.T) {
	f := func(aw, bw [2]uint64) bool {
		a, b := mkSet(aw), mkSet(bw)
		want := Or(AndNot(a, b), AndNot(b, a))
		return Xor(a, b).Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCountConsistency(t *testing.T) {
	f := func(aw, bw [2]uint64) bool {
		a, b := mkSet(aw), mkSet(bw)
		// |a| + |b| == |a∪b| + |a∩b|
		return a.Count()+b.Count() == Or(a, b).Count()+And(a, b).Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsetIffAndEqual(t *testing.T) {
	f := func(aw, bw [2]uint64) bool {
		a, b := mkSet(aw), mkSet(bw)
		return a.SubsetOf(b) == And(a, b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIterationMatchesMembership(t *testing.T) {
	f := func(aw [2]uint64) bool {
		a := mkSet(aw)
		seen := map[int]bool{}
		prev := -1
		ok := true
		a.ForEach(func(cpu int) bool {
			if cpu <= prev {
				ok = false // must be strictly ascending
			}
			prev = cpu
			seen[cpu] = true
			return true
		})
		if !ok || len(seen) != a.Count() {
			return false
		}
		for c := range seen {
			if !a.IsSet(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(aw [2]uint64) bool {
		a := mkSet(aw)
		p, err := Parse(a.String())
		return err == nil && p.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkIsSet(b *testing.B) {
	s := NewRange(0, 127)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.IsSet(i & 127)
	}
}

func BenchmarkAnd(b *testing.B) {
	x := NewRange(0, 127)
	y := NewRange(64, 191)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = And(x, y)
	}
}

func TestSingle(t *testing.T) {
	cases := []struct {
		s   Set
		cpu int
		ok  bool
	}{
		{Set{}, -1, false},
		{New(0), 0, true},
		{New(7), 7, true},
		{New(63), 63, true},
		{New(64), 64, true},
		{New(100), 100, true},
		{New(0, 1), -1, false},
		{New(3, 200), -1, false},
		{NewRange(0, 15), -1, false},
	}
	for _, c := range cases {
		cpu, ok := c.s.Single()
		if cpu != c.cpu || ok != c.ok {
			t.Errorf("Single(%s) = (%d, %v), want (%d, %v)", c.s, cpu, ok, c.cpu, c.ok)
		}
	}
	// A set that had a second CPU cleared is single again.
	s := New(4, 9)
	s.Clear(9)
	if cpu, ok := s.Single(); cpu != 4 || !ok {
		t.Errorf("Single after Clear = (%d, %v), want (4, true)", cpu, ok)
	}
}
