package obs

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"pioman/internal/trace"
)

// ServerConfig parameterizes the operational HTTP server.
type ServerConfig struct {
	// Addr is the listen address ("127.0.0.1:9187", ":0" for an
	// ephemeral port).
	Addr string
	// Registry backs /metrics. Nil serves an empty exposition.
	Registry *Registry
	// Health backs /healthz. Nil reports healthy unconditionally.
	Health *Health
	// Trace backs /debug/trace (the flight recorder's chrome://tracing
	// drain). Nil returns 404 there.
	Trace *trace.Recorder
}

// Server is the operational HTTP endpoint: /metrics, /healthz,
// /debug/pprof/*, and /debug/trace.
type Server struct {
	cfg ServerConfig
	ln  net.Listener
	srv *http.Server
}

// NewServer builds a server; call Start to listen.
func NewServer(cfg ServerConfig) *Server {
	s := &Server{cfg: cfg}
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	return s
}

// Handler returns the route mux, exposed separately so tests can drive
// it through httptest without a listener.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/healthz", s.serveHealthz)
	mux.HandleFunc("/debug/trace", s.serveTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveMetrics renders one scrape of the registry.
func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.cfg.Registry == nil {
		return
	}
	_, _ = s.cfg.Registry.Gather().WriteTo(w)
}

// serveHealthz runs the probes: 200 with the per-probe report when all
// pass, 503 with the report otherwise.
func (s *Server) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.cfg.Health == nil {
		_, _ = w.Write([]byte("ok\n"))
		return
	}
	ok, report := s.cfg.Health.Check()
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_, _ = w.Write([]byte(report))
}

// serveTrace drains the flight recorder as chrome://tracing JSON.
func (s *Server) serveTrace(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Trace == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.cfg.Trace.WriteTrace(w)
}

// Start listens on the configured address and serves in a background
// goroutine. Use Addr for the bound address (meaningful with ":0").
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	go func() { _ = s.srv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address, or "" before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully stops the server, waiting for in-flight
// requests up to the context's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.srv.Shutdown(ctx)
}
