package obs

import (
	"runtime"
	"strconv"

	"pioman/internal/cluster"
	"pioman/internal/core"
	"pioman/internal/nmad"
	"pioman/internal/trace"
	"pioman/internal/trace/analyze"
)

// NewCoreCollector exports a core task engine's counters, queue depth,
// and (under Config.LatencyStats) drain/steal latency histograms. Every
// counter series derives from one Stats() snapshot, so the Σenqueue =
// executions + requeues + skips tie-out holds within a single scrape.
// The engine label distinguishes multiple engines in one registry.
func NewCoreCollector(engine string, e *core.Engine) Collector {
	return CollectorFunc(func(w *MetricWriter) {
		st := e.Stats()
		l := []string{"engine", engine}
		w.Counter("pioman_core_submitted_total", "Tasks accepted by Submit.", st.Submitted, l...)
		w.Counter("pioman_core_executions_total", "Task body invocations.", st.Executions, l...)
		w.Counter("pioman_core_requeues_total", "Repeat-task re-enqueues.", st.Requeues, l...)
		w.Counter("pioman_core_skips_total", "Dequeues put back on CPU-set mismatch.", st.Skips, l...)
		w.Counter("pioman_core_steal_attempts_total", "Drains attempted on victim queues.", st.StealAttempts, l...)
		w.Counter("pioman_core_steal_hits_total", "Steal attempts that migrated at least one task.", st.StealHits, l...)
		w.Counter("pioman_core_steal_tasks_total", "Stolen tasks executed by thief CPUs.", st.StealTasks, l...)
		w.Counter("pioman_core_batch_grows_total", "Adaptive drain-batch doublings under backlog.", st.BatchGrows, l...)
		w.Counter("pioman_core_batch_shrinks_total", "Adaptive drain-batch halvings under latency pressure.", st.BatchShrinks, l...)
		for cpu, n := range st.ExecPerCPU {
			w.Counter("pioman_core_cpu_executions_total", "Task executions by CPU.", n,
				"engine", engine, "cpu", strconv.Itoa(cpu))
		}
		w.Gauge("pioman_core_pending_tasks", "Tasks currently enqueued across all queues.", float64(e.Pending()), l...)
		// The latency histograms are separate merged snapshots by
		// design: they are distributions, not counters tied to the
		// Stats() invariants, and each merge is itself consistent.
		w.Histogram("pioman_core_drain_latency_ns", "Drain pass latency in nanoseconds (Config.LatencyStats).", e.DrainLatency(), l...)
		w.Histogram("pioman_core_steal_latency_ns", "Steal attempt latency in nanoseconds (Config.LatencyStats).", e.StealLatency(), l...)
	})
}

// NewNmadCollector exports an nmad engine: the protocol counters from
// one Stats() snapshot, the dedup-log occupancy, gate health, and the
// per-gate per-rail traffic, backpressure, and calibrated capability
// estimates. The rail capability gauges are the live view of the
// internal/adapt EWMAs when Config.Calibrate is on (the rails' Caps
// then fold the calibrators' measured bandwidth and latency).
func NewNmadCollector(engine string, e *nmad.Engine) Collector {
	return CollectorFunc(func(w *MetricWriter) {
		st := e.Stats()
		l := []string{"engine", engine}
		w.Counter("pioman_nmad_msgs_sent_total", "Application messages sent.", st.MsgsSent, l...)
		w.Counter("pioman_nmad_msgs_recv_total", "Application messages received.", st.MsgsRecv, l...)
		w.Counter("pioman_nmad_frames_sent_total", "Frames put on a wire.", st.FramesSent, l...)
		w.Counter("pioman_nmad_frames_recv_total", "Frames taken off a wire.", st.FramesRecv, l...)
		w.Counter("pioman_nmad_eager_sent_total", "Messages sent eagerly.", st.EagerSent, l...)
		w.Counter("pioman_nmad_aggregated_total", "Messages that travelled inside an aggregate.", st.Aggregated, l...)
		w.Counter("pioman_nmad_aggr_frames_total", "Aggregate frames sent.", st.AggrFrames, l...)
		w.Counter("pioman_nmad_rdv_started_total", "Rendezvous handshakes initiated.", st.RdvStarted, l...)
		w.Counter("pioman_nmad_rdv_data_total", "Rendezvous data fragments sent.", st.RdvData, l...)
		w.Counter("pioman_nmad_restripes_total", "Fragments re-routed onto a surviving rail.", st.Restripes, l...)
		w.Counter("pioman_nmad_rdv_pulls_total", "RMA reads posted by pull-mode rendezvous.", st.RdvPulls, l...)
		w.Counter("pioman_nmad_rdv_pull_bytes_total", "Payload bytes landed by RMA reads.", st.RdvPullBytes, l...)
		w.Counter("pioman_nmad_rdv_push_ranges_total", "Pull-mode byte ranges that fell back to push.", st.RdvPushRanges, l...)
		w.Counter("pioman_nmad_rdv_fins_total", "Pull-mode rendezvous completed (FIN sent).", st.RdvFins, l...)
		w.Counter("pioman_nmad_recv_copied_bytes_total", "Payload bytes memcpy'd on the receive path.", st.RecvCopiedBytes, l...)
		w.Counter("pioman_nmad_rdv_retries_total", "Rendezvous steps retransmitted after a timeout.", st.RdvRetries, l...)
		w.Counter("pioman_nmad_rdv_timeouts_total", "Rendezvous halves failed with ErrRdvTimeout.", st.RdvTimeouts, l...)
		w.Counter("pioman_nmad_eager_retries_total", "Eager messages retransmitted after a timeout.", st.EagerRetries, l...)
		w.Counter("pioman_nmad_eager_timeouts_total", "Eager messages failed with ErrEagerTimeout.", st.EagerTimeouts, l...)
		w.Counter("pioman_nmad_eager_acks_total", "Eager messages acknowledged by the peer.", st.EagerAcks, l...)

		if ai := e.AdmitInfo(); ai.Enabled {
			// Admission-control plane: series exist only when admission is
			// on, so engines without it keep an identical exposition.
			w.Counter("pioman_nmad_admit_admitted_total", "Submissions granted admission credits.", st.AdmitAdmitted, l...)
			w.Counter("pioman_nmad_admit_rejected_total", "Submissions refused with ErrAdmissionReject.", st.AdmitRejected, l...)
			w.Counter("pioman_nmad_admit_shed_total", "Rendezvous submissions shed in degraded mode.", st.AdmitShed, l...)
			w.Counter("pioman_nmad_admit_blocked_total", "Submissions parked by the blocking policy.", st.AdmitBlocked, l...)
			w.Counter("pioman_nmad_admit_expired_total", "Parked submissions that waited past their budget.", st.AdmitExpired, l...)
			w.Counter("pioman_nmad_deadline_expired_total", "Requests failed with ErrDeadlineExpired on any path.", st.DeadlineExpired, l...)
			w.Gauge("pioman_nmad_admit_inflight_requests", "Engine-wide request credits currently held.", float64(ai.Requests), l...)
			w.Gauge("pioman_nmad_admit_inflight_bytes", "Engine-wide payload-byte credits currently held.", float64(ai.Bytes), l...)
			w.Gauge("pioman_nmad_admit_max_requests", "Engine-wide request budget.", float64(ai.MaxRequests), l...)
			w.Gauge("pioman_nmad_admit_max_bytes", "Engine-wide payload-byte budget.", float64(ai.MaxBytes), l...)
			w.Gauge("pioman_nmad_admit_waiting", "Submissions parked in the admission queue.", float64(ai.Waiting), l...)
			deg := 0.0
			if ai.Degraded {
				deg = 1
			}
			w.Gauge("pioman_nmad_admit_degraded", "Whether any scope is past its high watermark (degraded is load-shedding, not dead).", deg, l...)
		}

		send, recv, eager := e.SettledOccupancy()
		w.Gauge("pioman_nmad_settled_log_entries", "Dedup-log occupancy by log.", float64(send), "engine", engine, "log", "send")
		w.Gauge("pioman_nmad_settled_log_entries", "Dedup-log occupancy by log.", float64(recv), "engine", engine, "log", "recv")
		w.Gauge("pioman_nmad_settled_log_entries", "Dedup-log occupancy by log.", float64(eager), "engine", engine, "log", "eager")
		w.Gauge("pioman_nmad_failed_gates", "Gates with no alive rail.", float64(e.FailedGates()), l...)

		for _, g := range e.Gates() {
			gid := strconv.Itoa(g.ID())
			for i, rs := range g.RailStats() {
				rl := []string{"engine", engine, "gate", gid, "rail", strconv.Itoa(i), "provider", rs.Provider}
				w.Counter("pioman_nmad_rail_frames_total", "Frames sent on the rail.", rs.Frames, rl...)
				w.Counter("pioman_nmad_rail_bytes_total", "Payload bytes sent on the rail.", rs.Bytes, rl...)
				w.Counter("pioman_nmad_rail_pull_bytes_total", "Payload bytes RMA-read in over the rail.", rs.PullBytes, rl...)
				w.Gauge("pioman_nmad_rail_backlog", "Current completion-queue depth of the rail.", float64(rs.Backlog), rl...)
				w.Gauge("pioman_nmad_rail_backpressure_limit", "Current backpressure threshold of the rail (frames).", float64(rs.BackpressureLimit), rl...)
				dead := 0.0
				if rs.Dead {
					dead = 1
				}
				w.Gauge("pioman_nmad_rail_dead", "Whether the rail has failed (1 = dead).", dead, rl...)
				w.Gauge("pioman_nmad_rail_bandwidth_bytes_per_second", "Rail bandwidth estimate (calibrated EWMA when Config.Calibrate is on).", rs.Caps.Bandwidth, rl...)
				w.Gauge("pioman_nmad_rail_latency_ns", "Rail latency estimate (calibrated EWMA when Config.Calibrate is on).", float64(rs.Caps.Latency), rl...)
			}
		}
	})
}

// NewClusterCollector exports the chaos suite's per-scenario results:
// transfer outcomes, retransmission pressure, and the virtual-clock
// latency percentiles the baseline gate rides. results is called once
// per scrape and must return a consistent snapshot (e.g. a copy taken
// under the caller's lock).
func NewClusterCollector(results func() []cluster.Result) Collector {
	return CollectorFunc(func(w *MetricWriter) {
		for _, r := range results() {
			l := []string{"scenario", r.Scenario}
			w.Gauge("pioman_cluster_nodes", "Cluster size of the scenario.", float64(r.Nodes), l...)
			w.Gauge("pioman_cluster_transfers", "Transfers attempted by the scenario.", float64(r.Transfers), l...)
			w.Gauge("pioman_cluster_completed", "Transfers completed byte-exact.", float64(r.Completed), l...)
			w.Gauge("pioman_cluster_failed_visibly", "Transfers failed with a visible error.", float64(r.FailedVisibly), l...)
			w.Gauge("pioman_cluster_hung", "Transfers neither completed nor failed (hangs).", float64(r.Hung), l...)
			w.Gauge("pioman_cluster_rdv_retries", "Rendezvous retransmissions across the run.", float64(r.RdvRetries), l...)
			w.Gauge("pioman_cluster_eager_retries", "Eager retransmissions across the run.", float64(r.EagerRetries), l...)
			w.Gauge("pioman_cluster_latency_p50_ns", "Median transfer latency on the virtual clock.", float64(r.LatencyP50Ns), l...)
			w.Gauge("pioman_cluster_latency_p99_ns", "99th-percentile transfer latency on the virtual clock.", float64(r.LatencyP99Ns), l...)
			w.Gauge("pioman_cluster_violations", "Invariant violations detected post-quiesce.", float64(len(r.Violations)), l...)
			if r.AdmitAdmitted+r.AdmitRejected+r.AdmitBlocked > 0 || r.PeakInflight > 0 {
				// Overload scenarios only: the admission ledger and the
				// queue-depth peak the credit plane exists to bound.
				w.Gauge("pioman_cluster_admit_admitted", "Submissions admitted across every node.", float64(r.AdmitAdmitted), l...)
				w.Gauge("pioman_cluster_admit_rejected", "Submissions rejected across every node.", float64(r.AdmitRejected), l...)
				w.Gauge("pioman_cluster_admit_shed", "Degraded-mode sheds across every node.", float64(r.AdmitShed), l...)
				w.Gauge("pioman_cluster_deadline_expired", "Deadline expiries across every node.", float64(r.DeadlineExpired), l...)
				w.Gauge("pioman_cluster_peak_inflight", "Highest per-node protocol-state count observed.", float64(r.PeakInflight), l...)
			}
		}
	})
}

// NewTraceCollector exports the flight recorder: per-ring append and
// overwrite counts (the loss visibility that tells an operator whether
// the trace they are about to drain is truncated), and per-phase
// message-latency histograms reconstructed from the recorder's span
// stream. Reconstruction runs per scrape over a bounded ring drain, so
// it costs milliseconds, not memory; rec may be nil (no series).
func NewTraceCollector(rec *trace.Recorder) Collector {
	return CollectorFunc(func(w *MetricWriter) {
		if rec == nil {
			return
		}
		for i, rs := range rec.RingStats() {
			l := []string{"ring", strconv.Itoa(i)}
			w.Counter("pioman_trace_ring_recorded_total", "Events ever appended to the ring.", rs.Recorded, l...)
			w.Counter("pioman_trace_ring_dropped_total", "Events lost to ring wraparound (nonzero = truncated trace).", rs.Dropped, l...)
		}
		rep := analyze.Analyze(rec.Events())
		w.Gauge("pioman_trace_messages", "Messages reconstructed from the current span stream.", float64(len(rep.Messages)))
		w.Gauge("pioman_trace_orphan_spans", "Unpaired phase spans on completed messages (pairing invariant).", float64(rep.OrphanSpans))
		for _, name := range rep.PhaseNames() {
			w.Histogram("pioman_trace_phase_latency_ns", "Per-phase message latency from lifecycle spans.", *rep.Phases[name], "phase", name)
		}
	})
}

// NewGoCollector exports Go runtime vitals: goroutine count and the
// allocator/GC counters operators sort a misbehaving process by.
func NewGoCollector() Collector {
	return CollectorFunc(func(w *MetricWriter) {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		w.Gauge("pioman_go_goroutines", "Live goroutines.", float64(runtime.NumGoroutine()))
		w.Gauge("pioman_go_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(m.HeapAlloc))
		w.Gauge("pioman_go_heap_objects", "Number of allocated heap objects.", float64(m.HeapObjects))
		w.Counter("pioman_go_alloc_bytes_total", "Cumulative bytes allocated for heap objects.", m.TotalAlloc)
		w.Counter("pioman_go_gc_cycles_total", "Completed GC cycles.", uint64(m.NumGC))
	})
}
