package obs

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pioman/internal/admit"
	"pioman/internal/cluster"
	"pioman/internal/core"
	"pioman/internal/nmad"
	"pioman/internal/trace"
)

// scrape drives the server handler through httptest and returns the
// response.
func scrape(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// TestMetricsSeriesCoverage is the acceptance gate: a registry over a
// live core engine, a live nmad engine, and cluster results must
// expose at least 25 distinct series spanning the core, nmad,
// adapt (per-rail calibrated estimates), and cluster groups.
func TestMetricsSeriesCoverage(t *testing.T) {
	eng := core.New(core.Config{LatencyStats: true})
	for i := 0; i < 8; i++ {
		eng.MustSubmit(&core.Task{Fn: func(any) bool { return true }})
	}
	for eng.Pending() > 0 {
		eng.Schedule(0)
	}

	da, db := nmad.MemPair()
	sender := nmad.NewEngine(nmad.Config{})
	receiver := nmad.NewEngine(nmad.Config{})
	defer sender.Close()
	defer receiver.Close()
	ga, err := sender.NewGate(da)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := receiver.NewGate(db)
	if err != nil {
		t.Fatal(err)
	}
	recv := gb.Irecv(7)
	if err := ga.Isend(7, []byte("hello metrics")).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := recv.Wait(); err != nil {
		t.Fatal(err)
	}

	results := []cluster.Result{{Scenario: "fake", Nodes: 4, Transfers: 6, Completed: 6, LatencyP50Ns: 1000, LatencyP99Ns: 9000}}

	reg := NewRegistry()
	reg.Register(
		NewCoreCollector("tasks", eng),
		NewNmadCollector("node0", sender),
		NewClusterCollector(func() []cluster.Result { return results }),
		NewGoCollector(),
	)
	srv := NewServer(ServerConfig{Registry: reg})
	code, body := scrape(t, srv.Handler(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics returned %d", code)
	}

	series := map[string]bool{}
	families := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		series[strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")] = true
		if i := strings.Index(line, " "); i >= 0 {
			series[line[:strings.LastIndex(line, " ")]] = true
		}
		families[name] = true
	}
	distinct := 0
	for _, line := range strings.Split(body, "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			distinct++
		}
	}
	if distinct < 25 {
		t.Fatalf("/metrics exposes %d series, want ≥ 25:\n%s", distinct, body)
	}
	for _, want := range []string{
		"pioman_core_executions_total",                // core
		"pioman_core_drain_latency_ns_bucket",         // core histogram
		"pioman_nmad_msgs_sent_total",                 // nmad
		"pioman_nmad_rail_bandwidth_bytes_per_second", // adapt estimates
		"pioman_nmad_rail_latency_ns",                 // adapt estimates
		"pioman_cluster_latency_p99_ns",               // cluster
	} {
		if !families[want] {
			t.Errorf("/metrics missing %s:\n%s", want, body)
		}
	}
	// The snapshot-discipline tie-out: within one scrape the core
	// counters must satisfy Σexecutions(ExecPerCPU) == executions.
	var perCPU, total uint64
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "pioman_core_cpu_executions_total{") {
			var v uint64
			if _, err := fmtSscan(line[strings.LastIndex(line, " ")+1:], &v); err == nil {
				perCPU += v
			}
		}
		if strings.HasPrefix(line, "pioman_core_executions_total{") {
			_, _ = fmtSscan(line[strings.LastIndex(line, " ")+1:], &total)
		}
	}
	if perCPU != total {
		t.Errorf("torn scrape: Σ per-CPU executions %d != executions %d", perCPU, total)
	}
}

// fmtSscan parses one base-10 uint64, the only numeric shape the
// tie-out needs.
func fmtSscan(s string, v *uint64) (int, error) {
	var n uint64
	if s == "" {
		return 0, errors.New("empty")
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errors.New("not a uint")
		}
		n = n*10 + uint64(c-'0')
	}
	*v = n
	return 1, nil
}

// deadDriver fails every send: the last-rail-death path that must flip
// /healthz to 503.
type deadDriver struct{}

// Name identifies the driver.
func (deadDriver) Name() string { return "dead" }

// Send always fails.
func (deadDriver) Send(nmad.Header, []byte) error { return errors.New("wire gone") }

// Poll never has frames.
func (deadDriver) Poll() (nmad.Frame, bool, error) { return nmad.Frame{}, false, nil }

// Close is a no-op.
func (deadDriver) Close() error { return nil }

func TestHealthzTransitions(t *testing.T) {
	var now atomic.Int64
	now.Store(1)
	clock := func() int64 { return now.Load() }
	tasks := core.New(core.Config{})
	e := nmad.NewEngine(nmad.Config{Tasks: tasks, NoAutoProgress: true, Clock: clock})
	defer e.Close()

	h := NewHealth()
	h.Register("nmad", NmadLiveness(e, clock, time.Second))
	srv := NewServer(ServerConfig{Health: h})
	handler := srv.Handler()

	// 1. Before any progression pass: unhealthy.
	if code, body := scrape(t, handler, "/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("pre-progression /healthz = %d (%q), want 503", code, body)
	}

	// 2. One progression pass (the deadline sweep stamps the clock):
	// healthy.
	tasks.Schedule(0)
	if code, body := scrape(t, handler, "/healthz"); code != http.StatusOK {
		t.Fatalf("post-progression /healthz = %d (%q), want 200", code, body)
	}

	// 3. Clock advances past the window with no progression: unhealthy
	// again.
	now.Add(int64(2 * time.Second))
	if code, body := scrape(t, handler, "/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("stalled /healthz = %d (%q), want 503", code, body)
	}

	// 4. Progression resumes: healthy.
	tasks.Schedule(0)
	if code, body := scrape(t, handler, "/healthz"); code != http.StatusOK {
		t.Fatalf("recovered /healthz = %d (%q), want 200", code, body)
	}

	// 5. The engine's only gate loses its only rail: unhealthy, and
	// the report names the gate failure.
	g, err := e.NewGate(deadDriver{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Isend(1, []byte("doomed")).Wait(); err == nil {
		t.Fatal("send over dead rail should fail")
	}
	tasks.Schedule(0)
	code, body := scrape(t, handler, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("failed-gate /healthz = %d, want 503", code)
	}
	if !strings.Contains(body, "gate") {
		t.Fatalf("failed-gate report %q should name the gate failure", body)
	}
}

// TestHealthzStallRecovery pins the recovery direction of the liveness
// contract: /healthz must flip 503→200 every time progression resumes
// after a stall, across repeated stall/recover cycles, with the
// per-probe report tracking the state. A probe that latches unhealthy
// (or a server that caches a verdict) fails here even though the
// single-transition test passes.
func TestHealthzStallRecovery(t *testing.T) {
	var now atomic.Int64
	now.Store(1)
	clock := func() int64 { return now.Load() }
	tasks := core.New(core.Config{})
	e := nmad.NewEngine(nmad.Config{Tasks: tasks, NoAutoProgress: true, Clock: clock})
	defer e.Close()

	h := NewHealth()
	h.Register("nmad", NmadLiveness(e, clock, time.Second))
	handler := NewServer(ServerConfig{Health: h}).Handler()

	tasks.Schedule(0) // first progression pass: healthy baseline
	if code, body := scrape(t, handler, "/healthz"); code != http.StatusOK {
		t.Fatalf("baseline /healthz = %d (%q), want 200", code, body)
	}
	for cycle := 0; cycle < 3; cycle++ {
		// Stall: the clock runs past the window with no progression.
		now.Add(int64(2 * time.Second))
		code, body := scrape(t, handler, "/healthz")
		if code != http.StatusServiceUnavailable {
			t.Fatalf("cycle %d stalled /healthz = %d (%q), want 503", cycle, code, body)
		}
		if !strings.Contains(body, "progression last ran") {
			t.Fatalf("cycle %d stalled report %q should blame the stall", cycle, body)
		}
		// Recovery: one progression pass restamps the clock; the very
		// next scrape must be 200 again.
		tasks.Schedule(0)
		code, body = scrape(t, handler, "/healthz")
		if code != http.StatusOK {
			t.Fatalf("cycle %d recovered /healthz = %d (%q), want 200", cycle, code, body)
		}
		if !strings.Contains(body, "nmad: ok") {
			t.Fatalf("cycle %d recovered report %q should show the probe ok", cycle, body)
		}
	}
}

// TestMetricsScrapeUnderLiveTraffic scrapes /metrics concurrently with
// live eager+rendezvous traffic — the -race leg proving the collectors'
// snapshot reads don't race the sharded writers.
func TestMetricsScrapeUnderLiveTraffic(t *testing.T) {
	da, db := nmad.MemPair()
	sender := nmad.NewEngine(nmad.Config{})
	receiver := nmad.NewEngine(nmad.Config{})
	defer sender.Close()
	defer receiver.Close()
	ga, err := sender.NewGate(da)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := receiver.NewGate(db)
	if err != nil {
		t.Fatal(err)
	}

	rec := trace.New(4, 1024, nil)
	reg := NewRegistry()
	reg.Register(
		NewNmadCollector("sender", sender),
		NewNmadCollector("receiver", receiver),
		NewCoreCollector("sender-tasks", sender.Tasks()),
		NewGoCollector(),
	)
	srv := NewServer(ServerConfig{Registry: reg, Trace: rec})
	handler := srv.Handler()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		big := make([]byte, 64<<10) // above the eager threshold: rendezvous
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			payload := []byte("eager traffic")
			if i%8 == 0 {
				payload = big
			}
			r := gb.Irecv(i)
			if err := ga.Isend(i, payload).Wait(); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			if err := r.Wait(); err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		code, body := scrape(t, handler, "/metrics")
		if code != http.StatusOK {
			t.Fatalf("scrape %d returned %d", i, code)
		}
		if !strings.Contains(body, "pioman_nmad_msgs_sent_total") {
			t.Fatalf("scrape %d missing nmad series", i)
		}
	}
	close(stop)
	wg.Wait()
}

func TestTraceEndpoint(t *testing.T) {
	// Without a recorder: 404.
	srv := NewServer(ServerConfig{})
	if code, _ := scrape(t, srv.Handler(), "/debug/trace"); code != http.StatusNotFound {
		t.Fatalf("/debug/trace without recorder = %d, want 404", code)
	}

	rec := trace.New(2, 64, nil)
	rec.Record(0, trace.EvTaskRun, 1, 0)
	rec.Record(1, trace.EvRdvRTS, 9, 4096)
	srv = NewServer(ServerConfig{Trace: rec})
	code, body := scrape(t, srv.Handler(), "/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace = %d, want 200", code)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("/debug/trace has %d events, want 2", len(doc.TraceEvents))
	}
}

// TestAdmissionObservability walks the overload surface end to end: an
// engine with a one-request gate budget holds a rendezvous send
// inflight, a second send is rejected fail-fast, /metrics exposes the
// admission counters and the degraded gauge, and /healthz reports the
// degraded state through the info section while STAYING 200 — degraded
// is load-shedding, not dead. Draining the inflight must recover both.
func TestAdmissionObservability(t *testing.T) {
	da, db := nmad.MemPair()
	sender := nmad.NewEngine(nmad.Config{
		Admit:       &admit.Config{GateRequests: 1, GateBytes: 1 << 20, HighWater: 0.5, LowWater: 0.25},
		AdmitPolicy: nmad.AdmitReject,
	})
	receiver := nmad.NewEngine(nmad.Config{})
	defer sender.Close()
	defer receiver.Close()
	ga, err := sender.NewGate(da)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := receiver.NewGate(db)
	if err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	reg.Register(NewNmadCollector("sender", sender))
	h := NewHealth()
	h.RegisterInfo("admission", NmadAdmission(sender))
	handler := NewServer(ServerConfig{Registry: reg, Health: h}).Handler()

	// A rendezvous send with no posted receive holds its credits; the
	// gate budget is one request, so the next send is shed fail-fast.
	big := make([]byte, 64<<10)
	inflight := ga.Isend(1, big)
	if err := ga.Isend(2, big).Wait(); err != nmad.ErrAdmissionReject {
		t.Fatalf("second send err = %v, want ErrAdmissionReject", err)
	}

	code, body := scrape(t, handler, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`pioman_nmad_admit_rejected_total{engine="sender"} 1`,
		`pioman_nmad_admit_inflight_requests{engine="sender"} 1`,
		`pioman_nmad_admit_degraded{engine="sender"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	code, body = scrape(t, handler, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("degraded /healthz = %d, want 200 — degraded is not dead", code)
	}
	if !strings.Contains(body, "degraded (shedding load, not dead)") {
		t.Fatalf("degraded /healthz report %q should surface the degraded state", body)
	}

	// Drain the inflight: credits come back, the scope recovers, and
	// both surfaces must reflect it.
	recv := gb.Irecv(1)
	if err := inflight.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := recv.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, body = scrape(t, handler, "/metrics"); !strings.Contains(body,
		`pioman_nmad_admit_degraded{engine="sender"} 0`) {
		t.Errorf("/metrics should show the scope recovered:\n%s", body)
	}
	if _, body = scrape(t, handler, "/healthz"); !strings.Contains(body, "admission: healthy") {
		t.Errorf("recovered /healthz report %q should show admission healthy", body)
	}
}

func TestPprofMounted(t *testing.T) {
	srv := NewServer(ServerConfig{})
	code, body := scrape(t, srv.Handler(), "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d, want the pprof index", code)
	}
}

func TestServerStartShutdown(t *testing.T) {
	srv := NewServer(ServerConfig{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz over the wire = %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}
