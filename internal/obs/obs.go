// Package obs is the engine's live operational surface: a
// zero-dependency metrics registry with a hand-rolled Prometheus text
// exposition writer, engine-liveness health probes, and an HTTP server
// mounting /metrics, /healthz, net/http/pprof, and the flight
// recorder's /debug/trace timeline — the observability shape of a
// production communication daemon, built entirely on the standard
// library.
//
// The snapshot discipline is the package's one contract: a Collector
// must read its subsystem's sharded statistics through exactly one
// snapshot call and derive every series it emits from that single
// snapshot, so one scrape can never expose torn cross-counter
// invariants (a Σenqueues that does not cover the Σdequeues printed
// two lines later).
package obs

import "sync"

// Collector contributes one subsystem's metric families to a scrape.
//
// Collect is called once per scrape with the writer for the whole
// document. Implementations MUST take one consistent snapshot of their
// subsystem (one Stats()-style call) and emit every sample from it —
// never read live counters per-sample — so intra-collector invariants
// hold within a single exposition.
type Collector interface {
	Collect(w *MetricWriter)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(w *MetricWriter)

// Collect calls f.
func (f CollectorFunc) Collect(w *MetricWriter) { f(w) }

// Registry is an ordered set of collectors behind one /metrics
// endpoint. Safe for concurrent use: collectors may be registered
// while scrapes run.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends collectors to the scrape, in order.
func (r *Registry) Register(cs ...Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, cs...)
	r.mu.Unlock()
}

// Gather runs every collector once, in registration order, into a
// fresh MetricWriter and returns it.
func (r *Registry) Gather() *MetricWriter {
	r.mu.Lock()
	cs := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()
	w := &MetricWriter{}
	for _, c := range cs {
		c.Collect(w)
	}
	return w
}
