package obs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pioman/internal/nmad"
)

// Health is a named set of liveness probes behind /healthz. A probe
// returns nil when healthy; the endpoint reports 200 only when every
// probe passes. Safe for concurrent use.
type Health struct {
	mu        sync.Mutex
	names     []string
	probes    []func() error
	infoNames []string
	infos     []func() string
}

// NewHealth returns an empty probe set (which reports healthy).
func NewHealth() *Health { return &Health{} }

// Register adds a named probe.
func (h *Health) Register(name string, probe func() error) {
	h.mu.Lock()
	h.names = append(h.names, name)
	h.probes = append(h.probes, probe)
	h.mu.Unlock()
}

// RegisterInfo adds a named informational line to the /healthz report.
// Info never affects overall health: it exists for states that are
// abnormal but alive — an engine shedding load in degraded mode is
// degraded, not dead, and must not flip the endpoint to 503.
func (h *Health) RegisterInfo(name string, info func() string) {
	h.mu.Lock()
	h.infoNames = append(h.infoNames, name)
	h.infos = append(h.infos, info)
	h.mu.Unlock()
}

// Check runs every probe and returns overall health plus a one-line-
// per-probe report, followed by the informational lines.
func (h *Health) Check() (ok bool, report string) {
	h.mu.Lock()
	names := append([]string(nil), h.names...)
	probes := append([]func() error(nil), h.probes...)
	infoNames := append([]string(nil), h.infoNames...)
	infos := append([]func() string(nil), h.infos...)
	h.mu.Unlock()
	ok = true
	for i, p := range probes {
		if err := p(); err != nil {
			ok = false
			report += fmt.Sprintf("%s: %v\n", names[i], err)
		} else {
			report += names[i] + ": ok\n"
		}
	}
	for i, f := range infos {
		report += fmt.Sprintf("%s: %s\n", infoNames[i], f())
	}
	return ok, report
}

// NmadLiveness probes an nmad engine the way the issue defines
// healthy: the progression machinery ran recently (the deadline sweep
// or background loop stamped the clock within window), and no gate has
// lost its last rail. clock must match the engine's own Config.Clock
// so virtual-time harnesses compare like with like; nil means the
// engine runs on real time and defaults to time.Now().UnixNano.
// window ≤ 0 defaults to 5 s.
func NmadLiveness(e *nmad.Engine, clock func() int64, window time.Duration) func() error {
	if clock == nil {
		clock = func() int64 { return time.Now().UnixNano() }
	}
	if window <= 0 {
		window = 5 * time.Second
	}
	return func() error {
		if n := e.FailedGates(); n > 0 {
			return fmt.Errorf("%d gate(s) have no alive rail", n)
		}
		last := e.LastProgress()
		if last == 0 {
			return errors.New("progression has not run yet")
		}
		if age := clock() - last; age > int64(window) {
			return fmt.Errorf("progression last ran %v ago (window %v)", time.Duration(age), window)
		}
		return nil
	}
}

// NmadAdmission reports an engine's admission plane for the /healthz
// info section: budget occupancy, parked submissions, and the degraded
// flag. Degraded means the engine is deliberately shedding load while
// its inflight drains back under the low watermark — a state to alarm
// on, not a liveness failure, so it rides RegisterInfo and never turns
// the endpoint unhealthy.
func NmadAdmission(e *nmad.Engine) func() string {
	return func() string {
		ai := e.AdmitInfo()
		if !ai.Enabled {
			return "admission off"
		}
		state := "healthy"
		if ai.Degraded {
			state = "degraded (shedding load, not dead)"
		}
		return fmt.Sprintf("%s; inflight %d/%d requests, %d/%d bytes; %d waiting",
			state, ai.Requests, ai.MaxRequests, ai.Bytes, ai.MaxBytes, ai.Waiting)
	}
}
