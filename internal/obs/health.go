package obs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pioman/internal/nmad"
)

// Health is a named set of liveness probes behind /healthz. A probe
// returns nil when healthy; the endpoint reports 200 only when every
// probe passes. Safe for concurrent use.
type Health struct {
	mu     sync.Mutex
	names  []string
	probes []func() error
}

// NewHealth returns an empty probe set (which reports healthy).
func NewHealth() *Health { return &Health{} }

// Register adds a named probe.
func (h *Health) Register(name string, probe func() error) {
	h.mu.Lock()
	h.names = append(h.names, name)
	h.probes = append(h.probes, probe)
	h.mu.Unlock()
}

// Check runs every probe and returns overall health plus a one-line-
// per-probe report.
func (h *Health) Check() (ok bool, report string) {
	h.mu.Lock()
	names := append([]string(nil), h.names...)
	probes := append([]func() error(nil), h.probes...)
	h.mu.Unlock()
	ok = true
	for i, p := range probes {
		if err := p(); err != nil {
			ok = false
			report += fmt.Sprintf("%s: %v\n", names[i], err)
		} else {
			report += names[i] + ": ok\n"
		}
	}
	return ok, report
}

// NmadLiveness probes an nmad engine the way the issue defines
// healthy: the progression machinery ran recently (the deadline sweep
// or background loop stamped the clock within window), and no gate has
// lost its last rail. clock must match the engine's own Config.Clock
// so virtual-time harnesses compare like with like; nil means the
// engine runs on real time and defaults to time.Now().UnixNano.
// window ≤ 0 defaults to 5 s.
func NmadLiveness(e *nmad.Engine, clock func() int64, window time.Duration) func() error {
	if clock == nil {
		clock = func() int64 { return time.Now().UnixNano() }
	}
	if window <= 0 {
		window = 5 * time.Second
	}
	return func() error {
		if n := e.FailedGates(); n > 0 {
			return fmt.Errorf("%d gate(s) have no alive rail", n)
		}
		last := e.LastProgress()
		if last == 0 {
			return errors.New("progression has not run yet")
		}
		if age := clock() - last; age > int64(window) {
			return fmt.Errorf("progression last ran %v ago (window %v)", time.Duration(age), window)
		}
		return nil
	}
}
