package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pioman/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenCollector emits one deterministic document covering every
// writer feature: repeated samples grouping under one family, label
// escaping, integer and fractional gauges, and a histogram rendered
// from the stats log buckets.
func goldenCollector(w *MetricWriter) {
	w.Counter("demo_requests_total", "Requests served.", 1234, "handler", "api")
	w.Counter("demo_requests_total", "Requests served.", 17, "handler", "we\"ird\\v\nal")
	w.Gauge("demo_temperature_celsius", "Current temperature.", -3.25)
	w.Gauge("demo_connections", "Open connections.", 42)
	var h stats.Histogram
	for _, v := range []int64{3, 3, 17, 250, 1_000_000} {
		h.Record(v)
	}
	w.Histogram("demo_latency_ns", "Latency distribution.", h, "path", "/x")
}

func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Register(CollectorFunc(goldenCollector))
	var buf bytes.Buffer
	if _, err := reg.Gather().WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	golden := filepath.Join("testdata", "golden_metrics.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file: %v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestExpositionHistogramMath(t *testing.T) {
	var h stats.Histogram
	for _, v := range []int64{3, 3, 17, 250, 1_000_000} {
		h.Record(v)
	}
	w := &MetricWriter{}
	w.Histogram("lat", "l.", h)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Buckets must be cumulative with inclusive integer bounds from
	// the log-bucket geometry, ending in the mandatory +Inf bucket
	// that equals _count, and _sum must be the exact sample sum.
	for _, want := range []string{
		`lat_bucket{le="3"} 2`,
		`lat_bucket{le="17"} 3`,
		`lat_bucket{le="255"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_sum 1000273`,
		`lat_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionLabelEscaping(t *testing.T) {
	w := &MetricWriter{}
	w.Counter("m_total", "help with \\ backslash\nand newline.", 1, "k", "a\\b\"c\nd")
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `m_total{k="a\\b\"c\nd"} 1`) {
		t.Errorf("label not escaped per exposition format:\n%s", out)
	}
	if !strings.Contains(out, `# HELP m_total help with \\ backslash\nand newline.`) {
		t.Errorf("HELP not escaped per exposition format:\n%s", out)
	}
}

func TestFamiliesGroupAcrossCollectors(t *testing.T) {
	reg := NewRegistry()
	reg.Register(
		CollectorFunc(func(w *MetricWriter) { w.Counter("shared_total", "s.", 1, "who", "a") }),
		CollectorFunc(func(w *MetricWriter) { w.Counter("shared_total", "s.", 2, "who", "b") }),
	)
	var buf bytes.Buffer
	if _, err := reg.Gather().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "# TYPE shared_total"); got != 1 {
		t.Fatalf("family emitted %d TYPE headers, want exactly 1:\n%s", got, buf.String())
	}
}
