package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"pioman/internal/stats"
)

// MetricType is the exposition TYPE of a metric family.
type MetricType int

// Exposition metric types (the subset the engine exports).
const (
	// TypeCounter is a monotonically increasing value.
	TypeCounter MetricType = iota
	// TypeGauge is a value that can go up and down.
	TypeGauge
	// TypeHistogram is a bucketed distribution with _bucket/_sum/_count
	// series.
	TypeHistogram
)

// expoType returns the TYPE keyword of the exposition format.
func (t MetricType) expoType() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// sample is one rendered family member: a preformatted value under a
// label set.
type sample struct {
	labels string // rendered {k="v",...} block, "" when unlabeled
	value  string
}

// histSample is one histogram under a label set. The stats.Histogram
// is copied by value at Histogram() time — the fixed bucket array makes
// the copy a consistent snapshot — and rendered at output time.
type histSample struct {
	labels string
	h      stats.Histogram
}

// family is one metric family: a name, HELP/TYPE header, and its
// accumulated samples in insertion order.
type family struct {
	name    string
	help    string
	typ     MetricType
	samples []sample
	hists   []histSample
}

// MetricWriter accumulates metric families during one collection pass
// and renders them in the Prometheus text exposition format v0.0.4.
// Families keep first-appearance order; repeated Add calls under one
// name (per-CPU or per-rail loops, or two collectors sharing a family)
// group their samples under a single HELP/TYPE header, which the
// format requires. The zero value is ready to use.
type MetricWriter struct {
	order  []*family
	byName map[string]*family
}

// familyFor returns the family for name, creating it on first use.
// The first caller's help and type win; the exposition format forbids
// redefining them mid-document.
func (w *MetricWriter) familyFor(name, help string, typ MetricType) *family {
	if w.byName == nil {
		w.byName = make(map[string]*family)
	}
	if f, ok := w.byName[name]; ok {
		return f
	}
	f := &family{name: name, help: help, typ: typ}
	w.byName[name] = f
	w.order = append(w.order, f)
	return f
}

// Counter adds one sample of a counter family. Labels are alternating
// key, value pairs.
func (w *MetricWriter) Counter(name, help string, value uint64, labels ...string) {
	f := w.familyFor(name, help, TypeCounter)
	f.samples = append(f.samples, sample{labels: renderLabels(labels), value: strconv.FormatUint(value, 10)})
}

// Gauge adds one sample of a gauge family. Labels are alternating key,
// value pairs.
func (w *MetricWriter) Gauge(name, help string, value float64, labels ...string) {
	f := w.familyFor(name, help, TypeGauge)
	f.samples = append(f.samples, sample{labels: renderLabels(labels), value: formatFloat(value)})
}

// Histogram adds one stats.Histogram as a histogram family member:
// cumulative _bucket series over the histogram's occupied log buckets,
// plus _sum and _count. The histogram is copied by value, so the
// rendered buckets, sum, and count are one consistent snapshot.
func (w *MetricWriter) Histogram(name, help string, h stats.Histogram, labels ...string) {
	f := w.familyFor(name, help, TypeHistogram)
	f.hists = append(f.hists, histSample{labels: renderLabels(labels), h: h})
}

// WriteTo renders every accumulated family to out in the text
// exposition format and returns the bytes written.
func (w *MetricWriter) WriteTo(out io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(out)}
	for _, f := range w.order {
		fmt.Fprintf(cw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.typ.expoType())
		for _, s := range f.samples {
			fmt.Fprintf(cw, "%s%s %s\n", f.name, s.labels, s.value)
		}
		for _, hs := range f.hists {
			writeHistogram(cw, f.name, hs)
		}
	}
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

// writeHistogram renders one histogram sample: cumulative buckets with
// inclusive le bounds from the stats log-bucket geometry, the
// mandatory le="+Inf" bucket, then _sum and _count.
func writeHistogram(cw *countingWriter, name string, hs histSample) {
	cum := uint64(0)
	h := hs.h
	h.EachBucket(func(upper int64, count uint64) {
		cum += count
		if upper == math.MaxInt64 {
			// The top bucket's bound is rendered by the +Inf series
			// below; an explicit MaxInt64 bound would be noise.
			return
		}
		fmt.Fprintf(cw, "%s_bucket%s %d\n", name, bucketLabels(hs.labels, strconv.FormatInt(upper, 10)), cum)
	})
	fmt.Fprintf(cw, "%s_bucket%s %d\n", name, bucketLabels(hs.labels, "+Inf"), h.Count())
	fmt.Fprintf(cw, "%s_sum%s %d\n", name, hs.labels, h.Sum())
	fmt.Fprintf(cw, "%s_count%s %d\n", name, hs.labels, h.Count())
}

// bucketLabels splices le into an already-rendered label block.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// renderLabels renders alternating key, value pairs as a {k="v",...}
// block with exposition escaping, or "" for no labels. An odd trailing
// key is dropped — a programming error made harmless rather than a
// panic inside a metrics scrape.
func renderLabels(kv []string) string {
	if len(kv) < 2 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string per the exposition format:
// backslash and newline (quotes are legal in HELP).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a gauge value: integers without a decimal point,
// everything else in Go's shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// countingWriter tracks bytes written and sticks on the first error so
// the render loop stays unconditional.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

// Write forwards to the wrapped writer, counting bytes and latching
// the first error.
func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return len(p), nil
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return len(p), nil
}
