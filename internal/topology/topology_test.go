package topology

import (
	"strings"
	"testing"
	"testing/quick"

	"pioman/internal/cpuset"
)

func TestBorderlineShape(t *testing.T) {
	topo := Borderline()
	if topo.NCPUs != 8 {
		t.Fatalf("NCPUs = %d, want 8", topo.NCPUs)
	}
	if topo.Root.Kind != Machine {
		t.Fatalf("root kind = %v, want Machine", topo.Root.Kind)
	}
	// 4 NUMA nodes, each holding one dual-core package.
	if got := len(topo.Root.Children); got != 4 {
		t.Fatalf("root children = %d, want 4 NUMA nodes", got)
	}
	for i, nn := range topo.Root.Children {
		if nn.Kind != NUMANode {
			t.Errorf("child %d kind = %v, want NUMANode", i, nn.Kind)
		}
		if nn.CPUSet.Count() != 2 {
			t.Errorf("NUMA node %d covers %d CPUs, want 2", i, nn.CPUSet.Count())
		}
	}
	// Depth chain: Machine -> NUMANode -> Core (packages collapse since
	// PackagesPerNUMA == 1... they are retained only when >1 or flat machine).
	path := topo.PathToRoot(0)
	if len(path) == 0 || path[0].Kind != Core || path[len(path)-1].Kind != Machine {
		t.Fatalf("bad PathToRoot: %v", path)
	}
}

func TestKwakShape(t *testing.T) {
	topo := Kwak()
	if topo.NCPUs != 16 {
		t.Fatalf("NCPUs = %d, want 16", topo.NCPUs)
	}
	if got := len(topo.Root.Children); got != 4 {
		t.Fatalf("root children = %d, want 4 NUMA nodes", got)
	}
	// Paper Fig. 3: cores 0-3, 4-7, 8-11, 12-15 per NUMA node.
	wantSets := []string{"0-3", "4-7", "8-11", "12-15"}
	for i, nn := range topo.Root.Children {
		if nn.CPUSet.String() != wantSets[i] {
			t.Errorf("NUMA node %d cpuset = %s, want %s", i, nn.CPUSet, wantSets[i])
		}
	}
	// Each NUMA node contains an L3 cache level covering its 4 cores.
	foundCache := 0
	for _, n := range topo.Nodes() {
		if n.Kind == Cache {
			foundCache++
			if n.CacheLevel != 3 {
				t.Errorf("cache level = %d, want 3", n.CacheLevel)
			}
			if n.CPUSet.Count() != 4 {
				t.Errorf("L3 covers %d cores, want 4", n.CPUSet.Count())
			}
		}
	}
	if foundCache != 4 {
		t.Errorf("found %d L3 caches, want 4", foundCache)
	}
}

func TestNUMAOf(t *testing.T) {
	topo := Kwak()
	want := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3}
	for cpu, w := range want {
		if topo.NUMAOf[cpu] != w {
			t.Errorf("NUMAOf[%d] = %d, want %d", cpu, topo.NUMAOf[cpu], w)
		}
	}
}

func TestCoreNodes(t *testing.T) {
	topo := Kwak()
	for cpu := 0; cpu < topo.NCPUs; cpu++ {
		core := topo.CoreNode(cpu)
		if core == nil {
			t.Fatalf("CoreNode(%d) = nil", cpu)
		}
		if core.Kind != Core || core.Index != cpu {
			t.Errorf("CoreNode(%d) = %v", cpu, core)
		}
		if !core.CPUSet.Equal(cpuset.New(cpu)) {
			t.Errorf("core %d cpuset = %s", cpu, core.CPUSet)
		}
		if !core.IsLeaf() {
			t.Errorf("core %d is not a leaf", cpu)
		}
	}
	if topo.CoreNode(-1) != nil || topo.CoreNode(16) != nil {
		t.Error("out-of-range CoreNode should be nil")
	}
}

func TestFindCoveringKwak(t *testing.T) {
	topo := Kwak()
	cases := []struct {
		cs   cpuset.Set
		kind Kind
	}{
		{cpuset.New(5), Core},             // single core -> per-core queue
		{cpuset.New(4, 5), Cache},         // two cores sharing L3 -> cache queue
		{cpuset.NewRange(4, 7), Cache},    // whole chip -> its L3 queue
		{cpuset.New(3, 4), Machine},       // spans two NUMA nodes -> global
		{cpuset.NewRange(0, 15), Machine}, // everything -> global
		{cpuset.Set{}, Machine},           // empty -> global by convention
		{cpuset.New(0, 200), Machine},     // uncoverable CPU -> global
	}
	for _, c := range cases {
		n := topo.FindCovering(c.cs)
		if n.Kind != c.kind {
			t.Errorf("FindCovering(%s) = %v, want kind %v", c.cs, n, c.kind)
		}
		if !c.cs.IsEmpty() && c.cs.IsSet(0) && c.cs.Last() < topo.NCPUs {
			if !c.cs.SubsetOf(n.CPUSet) {
				t.Errorf("FindCovering(%s) = %v does not cover the set", c.cs, n)
			}
		}
	}
}

func TestFindCoveringIsDeepest(t *testing.T) {
	topo := Kwak()
	// Property: for any in-range set, the returned node covers the set and
	// no child of the node covers it.
	f := func(raw uint16) bool {
		var cs cpuset.Set
		for b := 0; b < 16; b++ {
			if raw&(1<<uint(b)) != 0 {
				cs.Set(b)
			}
		}
		n := topo.FindCovering(cs)
		if !cs.IsEmpty() && !cs.SubsetOf(n.CPUSet) {
			return false
		}
		for _, c := range n.Children {
			if !cs.IsEmpty() && cs.SubsetOf(c.CPUSet) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathToRootOrder(t *testing.T) {
	topo := Kwak()
	path := topo.PathToRoot(6)
	if len(path) < 3 {
		t.Fatalf("path too short: %v", path)
	}
	if path[0].Kind != Core || path[0].Index != 6 {
		t.Errorf("path[0] = %v, want Core#6", path[0])
	}
	if path[len(path)-1] != topo.Root {
		t.Error("path must end at root")
	}
	// CPU sets must be nested along the path.
	for i := 0; i+1 < len(path); i++ {
		if !path[i].CPUSet.SubsetOf(path[i+1].CPUSet) {
			t.Errorf("path[%d] %v not nested in path[%d] %v", i, path[i], i+1, path[i+1])
		}
		if path[i].Parent != path[i+1] {
			t.Errorf("path[%d].Parent != path[%d]", i, i+1)
		}
	}
	if got := topo.PathToRoot(99); got != nil {
		t.Error("PathToRoot out of range should be nil")
	}
}

func TestChildrenPartitionParent(t *testing.T) {
	for _, topo := range []*Topology{Borderline(), Kwak(), Host()} {
		for _, n := range topo.Nodes() {
			if len(n.Children) == 0 {
				continue
			}
			union := cpuset.Set{}
			for i, a := range n.Children {
				for _, b := range n.Children[i+1:] {
					if a.CPUSet.Intersects(b.CPUSet) {
						t.Errorf("%s: children %v and %v overlap", topo.Name, a, b)
					}
				}
				union = cpuset.Or(union, a.CPUSet)
			}
			if !union.Equal(n.CPUSet) {
				t.Errorf("%s: children of %v cover %s, want %s", topo.Name, n, union, n.CPUSet)
			}
		}
	}
}

func TestBuildRejectsBadSpec(t *testing.T) {
	bad := []Spec{
		{NUMANodes: 0, PackagesPerNUMA: 1, CoresPerPackage: 1},
		{NUMANodes: 1, PackagesPerNUMA: 0, CoresPerPackage: 1},
		{NUMANodes: 1, PackagesPerNUMA: 1, CoresPerPackage: 0},
	}
	for _, s := range bad {
		if _, err := Build(s); err == nil {
			t.Errorf("Build(%+v) should fail", s)
		}
	}
}

func TestBuildMultiPackagePerNUMA(t *testing.T) {
	topo, err := Build(Spec{
		Name: "2n2p2c", NUMANodes: 2, PackagesPerNUMA: 2, CoresPerPackage: 2,
		SharedCache: true, CacheLevel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if topo.NCPUs != 8 {
		t.Fatalf("NCPUs = %d, want 8", topo.NCPUs)
	}
	pkgs := 0
	for _, n := range topo.Nodes() {
		if n.Kind == Package {
			pkgs++
		}
	}
	if pkgs != 4 {
		t.Errorf("packages = %d, want 4", pkgs)
	}
	// Core 2 should be in package 1, NUMA 0.
	if topo.NUMAOf[2] != 0 || topo.NUMAOf[4] != 1 {
		t.Errorf("NUMAOf wrong: %v", topo.NUMAOf)
	}
}

func TestHost(t *testing.T) {
	topo := Host()
	if topo.NCPUs < 1 {
		t.Fatalf("host NCPUs = %d", topo.NCPUs)
	}
	if topo.FindCovering(cpuset.New(0)).Kind != Core {
		t.Error("host per-core lookup failed")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"borderline", "kwak", "host"} {
		topo, err := ByName(name)
		if err != nil || topo == nil {
			t.Errorf("ByName(%q) failed: %v", name, err)
		}
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("ByName(nonesuch) should fail")
	}
}

func TestStringRendering(t *testing.T) {
	out := Kwak().String()
	for _, want := range []string{"kwak: 16 CPUs", "NUMANode#0", "L3Cache", "Core#15"} {
		if !strings.Contains(out, want) {
			t.Errorf("topology rendering missing %q:\n%s", want, out)
		}
	}
}

func TestNumLevels(t *testing.T) {
	// kwak: Machine > NUMA > L3 > Core = 4 levels.
	if got := Kwak().NumLevels(); got != 4 {
		t.Errorf("kwak levels = %d, want 4", got)
	}
	// borderline: Machine > NUMA > Core = 3 levels.
	if got := Borderline().NumLevels(); got != 3 {
		t.Errorf("borderline levels = %d, want 3", got)
	}
}

func TestNodeIDsAreDense(t *testing.T) {
	for _, name := range []string{"borderline", "kwak", "host"} {
		topo, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, n := range topo.Nodes() {
			if n.ID != i {
				t.Errorf("%s: Nodes()[%d].ID = %d, want %d", name, i, n.ID, i)
			}
		}
	}
}

func TestStealOrder(t *testing.T) {
	// Kwak CPU 5 (NUMA node 1, cores 4-7): siblings 4,6,7 first, then
	// the twelve NUMA-remote cores in one machine-level group.
	topo := Kwak()
	groups := topo.StealOrder(5)
	if len(groups) != 2 {
		t.Fatalf("StealOrder(5) has %d groups, want 2: %v", len(groups), groups)
	}
	wantFirst := map[int]bool{4: true, 6: true, 7: true}
	if len(groups[0]) != 3 {
		t.Fatalf("sibling group = %v, want cores 4,6,7", groups[0])
	}
	for _, n := range groups[0] {
		if n.Kind != Core || !wantFirst[n.Index] {
			t.Errorf("unexpected sibling %v", n)
		}
	}
	if len(groups[1]) != 12 {
		t.Errorf("remote group has %d cores, want 12", len(groups[1]))
	}
	for _, n := range groups[1] {
		if n.Index >= 4 && n.Index <= 7 {
			t.Errorf("core %d in remote group but shares CPU 5's NUMA node", n.Index)
		}
	}

	// No group may contain the CPU's own core, and the union over all
	// groups must be every other core exactly once.
	for _, name := range []string{"borderline", "kwak", "host"} {
		topo, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for cpu := 0; cpu < topo.NCPUs; cpu++ {
			seen := map[int]bool{}
			for _, g := range topo.StealOrder(cpu) {
				for _, n := range g {
					if n.Kind != Core {
						t.Fatalf("%s: non-core victim %v", name, n)
					}
					if n.Index == cpu {
						t.Fatalf("%s: StealOrder(%d) contains its own core", name, cpu)
					}
					if seen[n.Index] {
						t.Fatalf("%s: core %d appears twice in StealOrder(%d)", name, n.Index, cpu)
					}
					seen[n.Index] = true
				}
			}
			if len(seen) != topo.NCPUs-1 {
				t.Errorf("%s: StealOrder(%d) covers %d cores, want %d", name, cpu, len(seen), topo.NCPUs-1)
			}
		}
	}

	if got := topo.StealOrder(-1); got != nil {
		t.Errorf("StealOrder(-1) = %v, want nil", got)
	}
	if got := topo.StealOrder(99); got != nil {
		t.Errorf("StealOrder(99) = %v, want nil", got)
	}
}
