// Package topology models machine hardware topology as a tree of nested
// resource domains — machine, NUMA node, package (chip), shared cache,
// core — in the style of hwloc / Marcel topology levels.
//
// PIOMan maps one task queue onto every node of this tree (paper Fig. 2):
// a task whose CPU set equals a node's CPU set is scheduled from that
// node's queue and may execute on any CPU below it. The package provides
// the two machines used in the paper's evaluation (Borderline and Kwak),
// generic symmetric builders, and the CPU-set → deepest-covering-node
// lookup used to place tasks.
package topology

import (
	"fmt"
	"runtime"
	"strings"

	"pioman/internal/cpuset"
)

// Kind identifies the hardware level a Node represents.
type Kind int

// Topology level kinds, ordered from outermost to innermost.
const (
	Machine Kind = iota
	NUMANode
	Package // a physical chip / socket
	Cache   // a shared cache (e.g. L3) covering several cores
	Core    // one execution unit; the leaf level
)

// String returns the conventional name of the level kind.
func (k Kind) String() string {
	switch k {
	case Machine:
		return "Machine"
	case NUMANode:
		return "NUMANode"
	case Package:
		return "Package"
	case Cache:
		return "Cache"
	case Core:
		return "Core"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Node is one vertex of the topology tree. Leaves are Core nodes; the
// root is the Machine node. Every node knows the CPU set it covers.
type Node struct {
	Kind     Kind
	Index    int // index among nodes of the same kind, machine-wide
	ID       int // dense index into Topology.Nodes(); Nodes()[n.ID] == n
	Depth    int // 0 at the root
	CPUSet   cpuset.Set
	Parent   *Node
	Children []*Node

	// CacheLevel is the cache level (2, 3, ...) for Cache nodes; 0 otherwise.
	CacheLevel int
	// MemoryMB is the local memory size for NUMANode nodes; 0 otherwise.
	MemoryMB int
}

// String describes the node, e.g. "Package#1 cpuset=4-7".
func (n *Node) String() string {
	name := n.Kind.String()
	if n.Kind == Cache && n.CacheLevel > 0 {
		name = fmt.Sprintf("L%dCache", n.CacheLevel)
	}
	return fmt.Sprintf("%s#%d cpuset=%s", name, n.Index, n.CPUSet)
}

// IsLeaf reports whether the node is a Core (has no children).
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Topology is an immutable machine description.
type Topology struct {
	Name  string
	Root  *Node
	NCPUs int

	cores []*Node // cores[i] is the Core node for CPU i
	nodes []*Node // all nodes in depth-first pre-order
	// NUMAOf[i] is the NUMA node index of CPU i (0 when the machine has a
	// single memory domain).
	NUMAOf []int
}

// Cores returns the Core node for each CPU index.
func (t *Topology) Cores() []*Node { return t.cores }

// CoreNode returns the Core node of the given CPU, or nil if out of range.
func (t *Topology) CoreNode(cpu int) *Node {
	if cpu < 0 || cpu >= len(t.cores) {
		return nil
	}
	return t.cores[cpu]
}

// Nodes returns every node in depth-first pre-order (root first).
func (t *Topology) Nodes() []*Node { return t.nodes }

// NumLevels returns the number of distinct depths in the tree.
func (t *Topology) NumLevels() int {
	max := 0
	for _, n := range t.nodes {
		if n.Depth > max {
			max = n.Depth
		}
	}
	return max + 1
}

// FindCovering returns the deepest node whose CPU set is a superset of cs.
// This is the queue-placement rule of the paper: a task restricted to cs
// lands on the smallest topology domain that contains every allowed CPU.
// An empty or uncoverable cs maps to the root (global) node.
func (t *Topology) FindCovering(cs cpuset.Set) *Node {
	if cs.IsEmpty() {
		return t.Root
	}
	n := t.Root
	for {
		var next *Node
		for _, c := range n.Children {
			if cs.SubsetOf(c.CPUSet) {
				next = c
				break
			}
		}
		if next == nil {
			return n
		}
		n = next
	}
}

// PathToRoot returns the chain of nodes from the core of the given CPU up
// to the root, inclusive. This is the queue-scan order of Algorithm 1.
func (t *Topology) PathToRoot(cpu int) []*Node {
	n := t.CoreNode(cpu)
	if n == nil {
		return nil
	}
	var path []*Node
	for ; n != nil; n = n.Parent {
		path = append(path, n)
	}
	return path
}

// StealOrder returns the machine's Core nodes grouped by topological
// distance from the given CPU: group 0 holds the leaves sharing cpu's
// immediate parent (sibling cores), group 1 the leaves sharing the
// grandparent but not the parent (cousins), and so on up to the root.
// cpu's own Core node is excluded. Each successive group crosses a wider
// — and therefore more expensive — hardware boundary, so a work-stealing
// scheduler that walks the groups in order visits the nearest victims
// first and only reaches across chip and NUMA boundaries as a last
// resort. Returns nil for an out-of-range CPU.
func (t *Topology) StealOrder(cpu int) [][]*Node {
	core := t.CoreNode(cpu)
	if core == nil {
		return nil
	}
	var groups [][]*Node
	covered := core.CPUSet
	for n := core.Parent; n != nil; n = n.Parent {
		fresh := cpuset.AndNot(n.CPUSet, covered)
		if fresh.IsEmpty() {
			continue
		}
		var group []*Node
		fresh.ForEach(func(c int) bool {
			if leaf := t.CoreNode(c); leaf != nil {
				group = append(group, leaf)
			}
			return true
		})
		if len(group) > 0 {
			groups = append(groups, group)
		}
		covered = n.CPUSet
	}
	return groups
}

// String renders the topology as an indented tree (lstopo-style).
func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d CPUs\n", t.Name, t.NCPUs)
	var walk func(n *Node)
	walk = func(n *Node) {
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat("  ", n.Depth), n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return b.String()
}

// Spec describes a symmetric machine for Build. Any level with count <= 1
// (or, for caches, SharedCache=false) is omitted from the tree.
type Spec struct {
	Name string
	// NUMANodes is the number of memory domains (>= 1).
	NUMANodes int
	// PackagesPerNUMA is the number of chips per NUMA node (>= 1).
	PackagesPerNUMA int
	// CoresPerPackage is the number of cores per chip (>= 1).
	CoresPerPackage int
	// SharedCache inserts a cache level covering each package's cores.
	SharedCache bool
	// CacheLevel is the cache level number when SharedCache is set
	// (defaults to 3).
	CacheLevel int
	// MemoryMBPerNUMA is recorded on each NUMANode node.
	MemoryMBPerNUMA int
}

// Build constructs a symmetric topology from the spec.
func Build(spec Spec) (*Topology, error) {
	if spec.NUMANodes < 1 || spec.PackagesPerNUMA < 1 || spec.CoresPerPackage < 1 {
		return nil, fmt.Errorf("topology: counts must be >= 1, got %+v", spec)
	}
	cacheLevel := spec.CacheLevel
	if cacheLevel == 0 {
		cacheLevel = 3
	}
	t := &Topology{Name: spec.Name}
	nCPU := spec.NUMANodes * spec.PackagesPerNUMA * spec.CoresPerPackage
	t.NCPUs = nCPU
	t.NUMAOf = make([]int, nCPU)
	root := &Node{Kind: Machine, CPUSet: cpuset.NewRange(0, nCPU-1)}
	t.Root = root

	cpu := 0
	pkgIdx, cacheIdx := 0, 0
	for ni := 0; ni < spec.NUMANodes; ni++ {
		numaParent := root
		if spec.NUMANodes > 1 {
			lo := cpu
			hi := cpu + spec.PackagesPerNUMA*spec.CoresPerPackage - 1
			nn := &Node{
				Kind: NUMANode, Index: ni, Depth: numaParent.Depth + 1,
				CPUSet: cpuset.NewRange(lo, hi), Parent: numaParent,
				MemoryMB: spec.MemoryMBPerNUMA,
			}
			numaParent.Children = append(numaParent.Children, nn)
			numaParent = nn
		}
		for pi := 0; pi < spec.PackagesPerNUMA; pi++ {
			pkgParent := numaParent
			if spec.PackagesPerNUMA > 1 || spec.NUMANodes == 1 {
				lo := cpu
				hi := cpu + spec.CoresPerPackage - 1
				pn := &Node{
					Kind: Package, Index: pkgIdx, Depth: pkgParent.Depth + 1,
					CPUSet: cpuset.NewRange(lo, hi), Parent: pkgParent,
				}
				pkgIdx++
				pkgParent.Children = append(pkgParent.Children, pn)
				pkgParent = pn
			}
			coreParent := pkgParent
			if spec.SharedCache {
				lo := cpu
				hi := cpu + spec.CoresPerPackage - 1
				cn := &Node{
					Kind: Cache, Index: cacheIdx, Depth: coreParent.Depth + 1,
					CPUSet: cpuset.NewRange(lo, hi), Parent: coreParent,
					CacheLevel: cacheLevel,
				}
				cacheIdx++
				coreParent.Children = append(coreParent.Children, cn)
				coreParent = cn
			}
			for ci := 0; ci < spec.CoresPerPackage; ci++ {
				core := &Node{
					Kind: Core, Index: cpu, Depth: coreParent.Depth + 1,
					CPUSet: cpuset.New(cpu), Parent: coreParent,
				}
				coreParent.Children = append(coreParent.Children, core)
				t.NUMAOf[cpu] = ni
				cpu++
			}
		}
	}
	t.index()
	return t, nil
}

// index populates the flat node and core tables from the tree and
// assigns each node its dense ID (pre-order position), which consumers
// such as the task engine use for O(1) node → queue lookups in place of
// map hashing.
func (t *Topology) index() {
	t.nodes = t.nodes[:0]
	t.cores = make([]*Node, t.NCPUs)
	var walk func(n *Node)
	walk = func(n *Node) {
		n.ID = len(t.nodes)
		t.nodes = append(t.nodes, n)
		if n.Kind == Core {
			t.cores[n.Index] = n
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
}

// Borderline returns the paper's first evaluation machine: a 4-socket
// dual-core AMD Opteron 8218 (8 cores). The CPU has no shared L3, so
// sibling cores share only their package's memory bank; each socket is a
// NUMA node. Queue levels: per-core, per-chip (2 cores), global (Table I).
func Borderline() *Topology {
	t, err := Build(Spec{
		Name:            "borderline",
		NUMANodes:       4,
		PackagesPerNUMA: 1,
		CoresPerPackage: 2,
		SharedCache:     false,
		MemoryMBPerNUMA: 8192,
	})
	if err != nil {
		panic(err)
	}
	return t
}

// Kwak returns the paper's second evaluation machine (Fig. 3): a 4-socket
// quad-core AMD Opteron 8347HE (16 cores), one shared L3 per chip, four
// NUMA nodes. Queue levels: per-core, per-chip/L3 (4 cores), global
// (Table II).
func Kwak() *Topology {
	t, err := Build(Spec{
		Name:            "kwak",
		NUMANodes:       4,
		PackagesPerNUMA: 1,
		CoresPerPackage: 4,
		SharedCache:     true,
		CacheLevel:      3,
		MemoryMBPerNUMA: 8192,
	})
	if err != nil {
		panic(err)
	}
	return t
}

// Host returns a flat topology describing the current Go process: one
// package holding runtime.NumCPU() cores. It is used by the real-time
// runtime stack where no NUMA information is available from the stdlib.
func Host() *Topology {
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	t, err := Build(Spec{
		Name:            "host",
		NUMANodes:       1,
		PackagesPerNUMA: 1,
		CoresPerPackage: n,
	})
	if err != nil {
		panic(err)
	}
	return t
}

// ByName returns a named machine model: "borderline", "kwak", or "host".
func ByName(name string) (*Topology, error) {
	switch name {
	case "borderline":
		return Borderline(), nil
	case "kwak":
		return Kwak(), nil
	case "host":
		return Host(), nil
	default:
		return nil, fmt.Errorf("topology: unknown machine %q (want borderline, kwak, or host)", name)
	}
}
