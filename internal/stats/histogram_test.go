package stats

import (
	"math"
	"testing"
)

// TestHistogramExactSmallValues checks the unit buckets: values below
// the sub-bucket count are recorded and reported exactly.
func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for v := int64(0); v < histLinearMax; v++ {
		h.Record(v)
	}
	if h.Count() != histLinearMax {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != histLinearMax-1 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("q0 = %d", got)
	}
	if got := h.Quantile(1); got != histLinearMax-1 {
		t.Fatalf("q1 = %d", got)
	}
}

// TestHistogramRelativeError checks the headline guarantee: any sample's
// bucket lower bound is within 1/histSubBuckets of the sample.
func TestHistogramRelativeError(t *testing.T) {
	for _, v := range []int64{17, 100, 999, 4096, 12345, 1 << 20, 987654321, 1 << 40, math.MaxInt64 / 3} {
		idx := histIndex(v)
		lo := histLower(idx)
		if lo > v {
			t.Fatalf("lower bound %d above sample %d", lo, v)
		}
		rel := float64(v-lo) / float64(v)
		if rel > 1.0/histSubBuckets {
			t.Fatalf("sample %d → bucket lower %d: relative error %.4f", v, lo, rel)
		}
		// The bucket must actually contain the value: the next bucket's
		// lower bound is above it.
		if idx+1 < histNumBuckets && histLower(idx+1) <= v {
			t.Fatalf("sample %d: next bucket lower %d not above it", v, histLower(idx+1))
		}
	}
}

// TestHistogramQuantiles records a known distribution and checks the
// quantiles land within one bucket of the true values.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 10000; v++ {
		h.Record(v)
	}
	check := func(q float64, want int64) {
		t.Helper()
		got := h.Quantile(q)
		rel := math.Abs(float64(got-want)) / float64(want)
		if rel > 1.0/histSubBuckets {
			t.Fatalf("q%.2f = %d, want ~%d (rel %.4f)", q, got, want, rel)
		}
	}
	check(0.5, 5000)
	check(0.9, 9000)
	check(0.99, 9900)
	if h.Quantile(1) != 10000 {
		t.Fatalf("q1 = %d", h.Quantile(1))
	}
	if mean := h.Mean(); math.Abs(mean-5000.5) > 0.01 {
		t.Fatalf("mean = %f", mean)
	}
}

// TestHistogramMerge checks shard merging equals recording everything
// into one histogram.
func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	for v := int64(0); v < 5000; v += 7 {
		a.Record(v)
		all.Record(v)
	}
	for v := int64(3); v < 90000; v += 13 {
		b.Record(v)
		all.Record(v)
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Sum() != all.Sum() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merge mismatch: %+v vs %+v", a, all)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("q%.2f: merged %d vs direct %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

// TestHistogramNegativeClamp checks negative samples clamp to zero
// instead of corrupting the bucket index.
func TestHistogramNegativeClamp(t *testing.T) {
	var h Histogram
	h.Record(-5)
	h.Record(-1)
	if h.Count() != 2 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("clamp failed: %+v", h)
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset failed")
	}
}

// BenchmarkHistogramRecord proves the allocation-free record path.
func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i)*37 + 11)
	}
}

func TestHistogramEachBucket(t *testing.T) {
	var h Histogram
	for _, v := range []int64{3, 3, 17, 250} {
		h.Record(v)
	}
	type bucket struct {
		upper int64
		count uint64
	}
	var got []bucket
	var total uint64
	h.EachBucket(func(upper int64, count uint64) {
		got = append(got, bucket{upper, count})
		total += count
	})
	want := []bucket{{3, 2}, {17, 1}, {255, 1}}
	if len(got) != len(want) {
		t.Fatalf("EachBucket visited %d buckets, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if total != h.Count() {
		t.Fatalf("bucket counts sum to %d, want Count()=%d", total, h.Count())
	}
	// Upper bounds must be inclusive: the recorded value re-indexes at
	// or below its reported bound, never above.
	for _, b := range got {
		if histLower(histIndex(b.upper)) > b.upper {
			t.Fatalf("bucket upper %d is not a valid inclusive bound", b.upper)
		}
	}
	// The top bucket reports +Inf territory.
	h.Record(math.MaxInt64)
	var last int64
	h.EachBucket(func(upper int64, _ uint64) { last = upper })
	if last != math.MaxInt64 {
		t.Fatalf("final bucket upper = %d, want MaxInt64", last)
	}
}
