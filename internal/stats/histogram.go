package stats

import (
	"math"
	"math/bits"
)

// Histogram bucket geometry: values below histLinearMax land in exact
// unit buckets; above that, each power-of-two magnitude is split into
// histSubBuckets linear sub-buckets, so the relative quantization error
// is bounded by 1/histSubBuckets (~6%) at any magnitude. 64 magnitudes
// of 16 sub-buckets cover the full int64 range in a fixed array — no
// allocation ever happens after the Histogram itself exists.
const (
	histSubBuckets = 16
	histLinearMax  = histSubBuckets // values 0..15 are exact
	histNumBuckets = 64 * histSubBuckets
)

// Histogram is a fixed-size log-bucketed value histogram — the HDR
// idea reduced to what latency trajectories need: an allocation-free
// Record path, bounded relative error (≤ 1/16 per sample), and Merge so
// per-CPU or per-node shards combine into one distribution. Negative
// samples clamp to zero. A Histogram is a plain value: the zero value
// is ready to use, and it is NOT safe for concurrent writers — shard
// per writer and Merge, exactly like the engine's padded counters.
type Histogram struct {
	counts [histNumBuckets]uint64
	n      uint64
	sum    int64
	min    int64
	max    int64
}

// histIndex maps a non-negative value to its bucket.
func histIndex(v int64) int {
	if v < histLinearMax {
		return int(v)
	}
	// top is the position of the highest set bit (≥ 4 here). The bucket
	// keeps that bit and the next 4 bits: magnitude (top-3) holds the
	// 16 sub-buckets [1<<top, 2<<top).
	top := bits.Len64(uint64(v)) - 1
	sub := int((v >> (top - 4)) & (histSubBuckets - 1))
	idx := (top-3)*histSubBuckets + sub
	if idx >= histNumBuckets {
		idx = histNumBuckets - 1
	}
	return idx
}

// histLower returns the smallest value mapping to bucket idx — the
// conservative representative quantiles report.
func histLower(idx int) int64 {
	if idx < histLinearMax {
		return int64(idx)
	}
	mag := idx/histSubBuckets + 3
	sub := int64(idx % histSubBuckets)
	return (histSubBuckets + sub) << (mag - 4)
}

// Record adds one sample. Negative values clamp to zero. The path is
// allocation-free and branch-cheap: one bit scan, one array increment.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[histIndex(v)]++
	h.n++
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of recorded samples (clamped values included).
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest recorded sample, 0 when empty.
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample, 0 when empty.
func (h *Histogram) Max() int64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean, 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Merge folds o's samples into h — the shard-combining operation.
// Bucket geometry is identical across all Histograms, so merging is a
// plain vector add.
func (h *Histogram) Merge(o *Histogram) {
	if o.n == 0 {
		return
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
}

// Quantile returns the q-quantile (q in [0, 1]) as the lower bound of
// the bucket holding the nearest-rank sample, clamped to the observed
// min/max so exact extremes survive bucketing. Empty histograms yield 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.n))
	if rank >= h.n-1 {
		// The top rank is the observed maximum exactly — bucketing must
		// not shave the tail sample the p100 column exists to report.
		return h.max
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			v := histLower(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// EachBucket calls f once per non-empty bucket in ascending value
// order, with the bucket's inclusive upper bound and sample count.
// The final bucket's upper bound is math.MaxInt64, which exporters
// should render as +Inf. This is the bridge from the fixed log-bucket
// geometry to cumulative-bucket formats such as the Prometheus text
// exposition: callers accumulate counts as they go.
func (h *Histogram) EachBucket(f func(upper int64, count uint64)) {
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		upper := int64(math.MaxInt64)
		if i < histNumBuckets-1 {
			// The very top magnitudes' lower bounds overflow int64; any
			// bucket whose next neighbour wrapped is reported as +Inf.
			if u := histLower(i+1) - 1; u >= histLower(i) {
				upper = u
			}
		}
		f(upper, c)
	}
}

// Reset clears the histogram for reuse.
func (h *Histogram) Reset() {
	*h = Histogram{}
}
