// Package stats provides the small statistical and rendering helpers the
// experiment harnesses use: summary statistics over samples, and
// table / series formatting for paper-style output (ASCII and CSV).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds basic statistics over a sample set.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	Median float64
	StdDev float64
}

// Summarize computes summary statistics. An empty input yields a zero
// Summary.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := Summary{N: len(samples), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(samples))
	varsum := 0.0
	for _, v := range samples {
		d := v - s.Mean
		varsum += d * d
	}
	s.StdDev = math.Sqrt(varsum / float64(len(samples)))
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Imbalance returns max/mean over the samples — 1.0 for perfectly even
// load, climbing as load concentrates. The scheduling benchmarks use it
// to report how evenly executions spread across CPUs (per-CPU sharded
// counters make the per-CPU series cheap to collect). Empty or all-zero
// input yields 0.
func Imbalance(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	max, sum := 0.0, 0.0
	for _, v := range samples {
		if v > max {
			max = v
		}
		sum += v
	}
	if sum == 0 {
		return 0
	}
	return max / (sum / float64(len(samples)))
}

// Migration summarizes work-stealing effectiveness from the engine's
// raw steal counters: drains attempted on victim queues, attempts that
// migrated at least one task, and tasks executed by a thief. The
// benchmark harnesses and examples use it to render steal columns
// without each re-deriving the rates.
type Migration struct {
	Attempts uint64
	Hits     uint64
	Tasks    uint64
}

// HitRate returns Hits/Attempts — how often reaching into a victim
// queue actually migrated work (1.0 means victim selection never chose
// an empty or unrunnable backlog). Zero attempts yield 0.
func (m Migration) HitRate() float64 {
	if m.Attempts == 0 {
		return 0
	}
	return float64(m.Hits) / float64(m.Attempts)
}

// TasksPerHit returns the average number of tasks one successful steal
// migrated — the realized steal batch size. Zero hits yield 0.
func (m Migration) TasksPerHit() float64 {
	if m.Hits == 0 {
		return 0
	}
	return float64(m.Tasks) / float64(m.Hits)
}

// StolenFraction returns the share of the given total executions that
// were stolen-task executions. Zero total yields 0.
func (m Migration) StolenFraction(totalExecutions uint64) float64 {
	if totalExecutions == 0 {
		return 0
	}
	return float64(m.Tasks) / float64(totalExecutions)
}

// RelError returns |estimate−truth|/|truth| — the convergence metric
// the calibration tests and examples report (0.2 means the estimate
// landed within 20% of the configured value). A zero truth yields +Inf
// for a non-zero estimate and 0 for a zero one.
func RelError(estimate, truth float64) float64 {
	if truth == 0 {
		if estimate == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(estimate-truth) / math.Abs(truth)
}

// Percentile returns the p-th percentile (0-100) using nearest-rank.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Table is a simple column-aligned table for paper-style output.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header first).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		b.WriteString(c)
	}
	b.WriteByte('\n')
}

// Series is one named curve of (x, y) points — a line in a paper figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a set of series sharing axes — one paper figure panel.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// AddSeries creates, registers and returns a named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// String renders the figure as an aligned data table: one x column, one
// column per series — suitable for eyeballing or piping to a plotter.
func (f *Figure) String() string {
	t := Table{Title: fmt.Sprintf("%s  (y: %s)", f.Title, f.YLabel)}
	t.Header = append(t.Header, f.XLabel)
	for _, s := range f.Series {
		t.Header = append(t.Header, s.Name)
	}
	// Collect the union of x values in order of first appearance.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = trimFloat(s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t.String()
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}
