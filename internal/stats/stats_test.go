package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("StdDev = %f, want sqrt(2)", s.StdDev)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Median != 2.5 {
		t.Errorf("Median = %f, want 2.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty Summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Summarize reordered its input")
	}
}

func TestPercentile(t *testing.T) {
	samples := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct{ p, want float64 }{
		{0, 10}, {50, 50}, {90, 90}, {100, 100}, {10, 10},
	}
	for _, c := range cases {
		if got := Percentile(samples, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile of empty should be 0")
	}
}

func TestQuickSummaryInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		var clean []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.Median && s.Median <= s.Max &&
			s.StdDev >= 0 && s.N == len(clean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{
		Title:   "TABLE I",
		Header:  []string{"core", "#0", "#1"},
		Caption: "Time given in nanoseconds.",
	}
	tb.AddRow("per-core queues", "770", "788")
	out := tb.String()
	for _, want := range []string{"TABLE I", "core", "#0", "770", "nanoseconds"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Header: []string{"a", "b"}}
	tb.AddRow("1", "x,y")
	tb.AddRow("2", `say "hi"`)
	csv := tb.CSV()
	want := "a,b\n1,\"x,y\"\n2,\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestFigureRendering(t *testing.T) {
	fig := Figure{Title: "Fig 4", XLabel: "threads", YLabel: "latency (µs)"}
	mv := fig.AddSeries("MVAPICH")
	pm := fig.AddSeries("PIOMan")
	mv.Add(1, 4.5)
	mv.Add(2, 9.0)
	pm.Add(1, 10.0)
	pm.Add(2, 10.1)
	out := fig.String()
	for _, want := range []string{"Fig 4", "threads", "MVAPICH", "PIOMan", "4.500", "10.100"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure rendering missing %q:\n%s", want, out)
		}
	}
}

func TestFigureUnionOfXValues(t *testing.T) {
	fig := Figure{XLabel: "x"}
	a := fig.AddSeries("a")
	b := fig.AddSeries("b")
	a.Add(1, 10)
	b.Add(2, 20)
	out := fig.String()
	if !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Errorf("figure should include union of x values:\n%s", out)
	}
}

func TestImbalance(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{0, 0, 0}, 0},
		{[]float64{5, 5, 5, 5}, 1},
		{[]float64{4, 0, 0, 0}, 4},
		{[]float64{3, 1}, 1.5},
	}
	for _, c := range cases {
		if got := Imbalance(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Imbalance(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMigration(t *testing.T) {
	var zero Migration
	if zero.HitRate() != 0 || zero.TasksPerHit() != 0 || zero.StolenFraction(0) != 0 {
		t.Error("zero Migration must yield zero rates")
	}
	m := Migration{Attempts: 8, Hits: 6, Tasks: 48}
	if got := m.HitRate(); got != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", got)
	}
	if got := m.TasksPerHit(); got != 8 {
		t.Errorf("TasksPerHit = %v, want 8", got)
	}
	if got := m.StolenFraction(96); got != 0.5 {
		t.Errorf("StolenFraction = %v, want 0.5", got)
	}
}

func TestRelError(t *testing.T) {
	cases := []struct {
		est, truth, want float64
	}{
		{8e9, 8e9, 0},
		{7.2e9, 8e9, 0.1},
		{1.2e9, 1e9, 0.2},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := RelError(c.est, c.truth); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("RelError(%v, %v) = %v, want %v", c.est, c.truth, got, c.want)
		}
	}
	if got := RelError(1, 0); !math.IsInf(got, 1) {
		t.Errorf("RelError(1, 0) = %v, want +Inf", got)
	}
}
