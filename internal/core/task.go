// Package core implements the paper's primary contribution: a scalable,
// generic, lightweight task scheduling system ("ltask" engine) for
// communication libraries, as implemented in the PIOMan I/O manager.
//
// A communication library delegates its internal work — polling a NIC,
// submitting a packet, replying to a rendezvous handshake — to the engine
// as Tasks. Each task carries a CPU set restricting where it may run and
// an optional Repeat flag for work that must be retried until it succeeds
// (e.g. network polling). Tasks are stored in per-topology-node queues
// (per-core, per-cache, per-chip, per-NUMA, global; paper Fig. 2) chosen
// as the deepest topology domain covering the task's CPU set, so that
// locality is preserved and lock contention stays within a memory domain.
//
// The thread scheduler invokes Engine.Schedule at keypoints (idle cores,
// context switches, timer ticks); Schedule implements the paper's
// Algorithm 1 (scan queues from the local per-core queue up to the global
// queue) and each queue's drain implements a batched generalisation of
// Algorithm 2 (double-checked locking so empty queues are scanned
// without acquiring their lock, and up to Config.DrainBatch tasks are
// detached per acquisition).
//
// The hot paths are engineered to stay well under a context-switch
// budget: Submit of a pinned task resolves its queue through a
// precomputed per-CPU table (no tree walk, no map hash, no allocation),
// statistics are sharded per CPU or derived from per-queue counters,
// and queue fields are laid out to eliminate false sharing between
// producer and consumer cores. DESIGN.md documents the architecture and
// the measured numbers.
package core

import (
	"fmt"
	"sync/atomic"

	"pioman/internal/cpuset"
)

// Option is a bit set of task behaviour flags.
type Option uint32

const (
	// Repeat marks a task that must be re-enqueued and retried until its
	// function reports completion — the paper's mechanism for network
	// polling tasks ("considered completed once the corresponding network
	// polling succeeds").
	Repeat Option = 1 << iota
)

// State is the lifecycle state of a Task.
type State uint32

// Task lifecycle: Free -> Submitted -> Running -> (Submitted for
// unfinished repeats | Done).
const (
	StateFree State = iota
	StateSubmitted
	StateRunning
	StateDone
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateFree:
		return "free"
	case StateSubmitted:
		return "submitted"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("State(%d)", uint32(s))
	}
}

// Func is a task body. It receives the task's Arg. For Repeat tasks the
// return value reports completion: false re-enqueues the task for another
// attempt, true completes it. For one-shot tasks the return value is
// ignored.
type Func func(arg any) bool

// Task is one unit of delegated work. The struct is designed to be
// embedded in a larger structure (the paper embeds it in NewMadeleine's
// packet wrapper) so that submitting a task performs no allocation.
//
// A Task must not be mutated between Submit and completion. After Done,
// Reset allows reuse.
type Task struct {
	// Fn is the task body; it must be non-nil at Submit time.
	Fn Func
	// Arg is passed to Fn. Using a pointer type avoids boxing allocations.
	Arg any
	// CPUSet restricts which CPUs may execute the task. The empty set
	// means "any CPU" and places the task in the global queue.
	CPUSet cpuset.Set
	// Options holds behaviour flags (Repeat).
	Options Option
	// OnDone, if non-nil, is invoked exactly once when the task reaches
	// StateDone, on the CPU that completed it.
	OnDone func(*Task)

	state      atomic.Uint32
	runs       atomic.Uint64
	lastCPU    atomic.Int64
	doneCh     atomic.Pointer[chan struct{}]
	doneClosed atomic.Bool

	// submitTS stamps when the task last entered a queue (recorder
	// clock), so EvTaskRun can attribute queue wait. Only written when a
	// recorder is attached; the queue lock's release/acquire pair orders
	// the plain write (before enqueue) against the run-side read.
	submitTS int64

	// next links the task into an intrusive queue; owned by the queue's
	// lock while the task is queued.
	next *Task
	// home is the queue the task was submitted to; Repeat re-enqueues
	// return it there ("the task is re-enqueued into the same list").
	home *Queue
}

// NewTask returns a one-shot task running fn(arg) anywhere.
func NewTask(fn Func, arg any) *Task {
	return &Task{Fn: fn, Arg: arg}
}

// State returns the task's current lifecycle state.
func (t *Task) State() State { return State(t.state.Load()) }

// Done reports whether the task has completed.
func (t *Task) Done() bool { return t.State() == StateDone }

// Runs returns how many times the task body has been executed.
func (t *Task) Runs() uint64 { return t.runs.Load() }

// LastCPU returns the CPU that most recently executed the task, or -1 if
// it has never run. The never-ran case is derived from the run counter
// so Submit does not have to re-initialize the CPU slot on every
// submission.
func (t *Task) LastCPU() int {
	if t.runs.Load() == 0 {
		return -1
	}
	return int(t.lastCPU.Load())
}

// DoneChan returns a channel closed when the task completes. The channel
// is allocated lazily so tasks that are only polled stay allocation-free.
func (t *Task) DoneChan() <-chan struct{} {
	if ch := t.doneCh.Load(); ch != nil {
		return *ch
	}
	ch := make(chan struct{})
	if t.doneCh.CompareAndSwap(nil, &ch) {
		// Re-check state: completion may have raced with installation.
		if t.Done() {
			t.closeDone(ch)
		}
		return ch
	}
	return *t.doneCh.Load()
}

// closeDone closes the completion channel exactly once, even when a
// completing core and a waiter installing the channel race.
func (t *Task) closeDone(ch chan struct{}) {
	if t.doneClosed.CompareAndSwap(false, true) {
		close(ch)
	}
}

// Reset returns a completed (or never-submitted) task to StateFree so the
// embedding structure can be reused. It panics if the task is queued or
// running.
func (t *Task) Reset() {
	switch t.State() {
	case StateSubmitted, StateRunning:
		panic("core: Reset of an in-flight task")
	}
	t.state.Store(uint32(StateFree))
	t.runs.Store(0)
	t.lastCPU.Store(-1)
	t.doneCh.Store(nil)
	t.doneClosed.Store(false)
	t.next = nil
	t.home = nil
}

// markDone transitions the task to StateDone and wakes waiters.
func (t *Task) markDone() {
	t.state.Store(uint32(StateDone))
	if ch := t.doneCh.Load(); ch != nil {
		t.closeDone(*ch)
	}
	if t.OnDone != nil {
		t.OnDone(t)
	}
}
