package core

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"pioman/internal/cpuset"
	"pioman/internal/topology"
)

// TestConfigNormalization: out-of-range batching and stealing knobs
// must fall back to their documented defaults instead of silently
// misbehaving (a negative DrainBatch used to reach the default only by
// accident of the <= 0 check; the adaptive bounds and BatchFraction
// now normalize in one place).
func TestConfigNormalization(t *testing.T) {
	e := New(Config{
		Topology:      topology.Borderline(),
		DrainBatch:    -5,
		AdaptiveDrain: true,
		DrainMin:      -1,
		DrainMax:      -2,
		Steal:         StealConfig{Policy: StealFullTree, BatchFraction: math.NaN()},
	})
	if e.batch != defaultDrainBatch {
		t.Errorf("DrainBatch -5 normalized to %d, want %d", e.batch, defaultDrainBatch)
	}
	if e.stealBatch != defaultDrainBatch/2 {
		t.Errorf("NaN BatchFraction → steal batch %d, want the default half-batch %d",
			e.stealBatch, defaultDrainBatch/2)
	}
	q := e.leaf[0]
	if q.ctrl.Min() != 1 || q.ctrl.Max() != 8*defaultDrainBatch {
		t.Errorf("adaptive bounds normalized to [%d, %d], want [1, %d]",
			q.ctrl.Min(), q.ctrl.Max(), 8*defaultDrainBatch)
	}
	if q.DrainBatchNow() != defaultDrainBatch {
		t.Errorf("starting adaptive batch = %d, want %d", q.DrainBatchNow(), defaultDrainBatch)
	}

	// DrainMax below an explicit DrainMin falls back too, and the start
	// clamps into the normalized range.
	e2 := New(Config{
		Topology:      topology.Borderline(),
		DrainBatch:    4,
		AdaptiveDrain: true,
		DrainMin:      8,
		DrainMax:      2,
	})
	q2 := e2.leaf[0]
	if q2.ctrl.Min() != 8 || q2.ctrl.Max() != 32 {
		t.Errorf("bounds = [%d, %d], want [8, 32] (max falls back to 8×batch)",
			q2.ctrl.Min(), q2.ctrl.Max())
	}
	if q2.DrainBatchNow() != 8 {
		t.Errorf("start = %d, want clamped to min 8", q2.DrainBatchNow())
	}
}

// TestAdaptiveDrainShrinksUnderScheduleOne: a queue drained by
// latency-budgeted callers must walk its batch down to the minimum —
// the ScheduleOne caller is paying for one task, so the critical
// section should detach one task.
func TestAdaptiveDrainShrinksUnderScheduleOne(t *testing.T) {
	e := New(Config{Topology: topology.Borderline(), AdaptiveDrain: true})
	q := e.QueueFor(cpuset.New(0))
	for i := 0; i < 64; i++ {
		task := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)}
		e.MustSubmit(task)
		if !e.ScheduleOne(0) {
			t.Fatal("ScheduleOne found nothing")
		}
	}
	if got := q.DrainBatchNow(); got != 1 {
		t.Errorf("batch after ScheduleOne-dominated load = %d, want 1", got)
	}
	if s := e.Stats(); s.BatchShrinks != 5 { // 32 → 16 → 8 → 4 → 2 → 1
		t.Errorf("BatchShrinks = %d, want 5", s.BatchShrinks)
	}
}

// TestAdaptiveDrainGrowsUnderBacklog: sustained deeper-than-a-batch
// backlogs drained by throughput callers must grow the batch to its
// cap, amortizing each lock acquisition over more tasks.
func TestAdaptiveDrainGrowsUnderBacklog(t *testing.T) {
	e := New(Config{Topology: topology.Borderline(), AdaptiveDrain: true})
	q := e.QueueFor(cpuset.New(0))
	tasks := make([]Task, 512)
	for round := 0; round < 16; round++ {
		for i := range tasks {
			tasks[i].Reset()
			tasks[i].Fn = func(any) bool { return true }
			tasks[i].CPUSet = cpuset.New(0)
			e.MustSubmit(&tasks[i])
		}
		for e.Schedule(0) > 0 {
		}
	}
	if got, want := q.DrainBatchNow(), 8*defaultDrainBatch; got != want {
		t.Errorf("batch after sustained backlog = %d, want the cap %d", got, want)
	}
	if s := e.Stats(); s.BatchGrows != 3 { // 32 → 64 → 128 → 256
		t.Errorf("BatchGrows = %d, want 3", s.BatchGrows)
	}
	// The amortization actually materialized: far fewer consumer lock
	// acquisitions than tasks.
	drains, drained := q.DrainStats()
	if drains == 0 || float64(drained)/float64(drains) < float64(defaultDrainBatch) {
		t.Errorf("tasks per drain = %d/%d, want ≥ %d once grown",
			drained, drains, defaultDrainBatch)
	}
}

// TestAdaptiveDrainFixedWhenOff: without AdaptiveDrain the engine
// keeps the fixed configured batch no matter the load mix.
func TestAdaptiveDrainFixedWhenOff(t *testing.T) {
	e := New(Config{Topology: topology.Borderline()})
	for i := 0; i < 64; i++ {
		task := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)}
		e.MustSubmit(task)
		e.ScheduleOne(0)
	}
	if s := e.Stats(); s.BatchGrows != 0 || s.BatchShrinks != 0 {
		t.Errorf("fixed engine recorded batch moves: grows %d shrinks %d",
			s.BatchGrows, s.BatchShrinks)
	}
}

// TestAdaptiveStealShrinksFruitlessWindows: a thief whose steals keep
// migrating nothing (the victim's backlog is pinned) must shrink its
// steal window instead of re-draining and re-enqueueing the victim's
// whole backlog forever — and must recover the full window once steals
// land again.
func TestAdaptiveStealShrinksFruitlessWindows(t *testing.T) {
	e := New(Config{
		Topology: topology.Borderline(),
		Steal:    StealConfig{Policy: StealFullTree, Adaptive: true},
	})
	// A deep pinned backlog on CPU 0: every steal window fills with
	// tasks the thief cannot run (got == want, so the fruitless mark —
	// which needs proof the whole backlog was seen — never engages and
	// the thief keeps trying).
	for i := 0; i < 64; i++ {
		task := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)}
		if err := e.SubmitLocal(task, 0); err != nil {
			t.Fatal(err)
		}
	}
	q := e.QueueFor(cpuset.New(0))
	base := q.Dequeues()
	if n := e.Schedule(1); n != 0 {
		t.Fatalf("thief ran %d pinned tasks", n)
	}
	first := q.Dequeues() - base
	if first != uint64(e.stealBatch) {
		t.Fatalf("first steal window = %d, want the full %d", first, e.stealBatch)
	}
	for i := 0; i < 8; i++ {
		e.Schedule(1)
	}
	if r := e.StealRate(1); r > 0.2 {
		t.Errorf("steal hit-rate after 9 misses = %.3f, want ≤ 0.2", r)
	}
	base = q.Dequeues()
	e.Schedule(1)
	if late := q.Dequeues() - base; late > first/4 {
		t.Errorf("late fruitless window = %d, want ≤ %d (shrunk from %d)",
			late, first/4, first)
	}

	// Recovery: run the pinned backlog down, then park stealable work —
	// hits must pull the window back up.
	for e.Schedule(0) > 0 {
	}
	var stolen atomic.Int64
	for i := 0; i < 48; i++ {
		task := &Task{Fn: func(any) bool { stolen.Add(1); return true }}
		if err := e.SubmitLocal(task, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12 && e.StealRate(1) < 0.5; i++ {
		e.Schedule(1)
	}
	if r := e.StealRate(1); r < 0.5 {
		t.Errorf("steal hit-rate after successful steals = %.3f, want ≥ 0.5", r)
	}
	if stolen.Load() == 0 {
		t.Error("no stealable task migrated during recovery")
	}
}

// TestAdaptiveStatsTieOutUnderRace: the adaptive controllers must not
// disturb the counting invariants — Σ enqueues == Submitted + Requeues
// + Skips, Σ dequeues == Executions + Skips — and every queue's batch
// must stay inside its bounds, under concurrent mixed Schedule /
// ScheduleOne load (run with -race).
func TestAdaptiveStatsTieOutUnderRace(t *testing.T) {
	topo := topology.Borderline()
	e := New(Config{
		Topology:      topo,
		AdaptiveDrain: true,
		Steal:         StealConfig{Policy: StealFullTree, Adaptive: true},
	})
	const producers = 4
	const perProducer = 400
	var wg sync.WaitGroup
	var ran atomic.Int64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cpu := p % topo.NCPUs
			for i := 0; i < perProducer; i++ {
				task := &Task{Fn: func(any) bool { ran.Add(1); return true }}
				if i%3 == 0 {
					task.CPUSet = cpuset.New(cpu)
				}
				if err := e.SubmitLocal(task, cpu); err != nil {
					t.Error(err)
					return
				}
				if i%5 == 0 {
					e.ScheduleOne(cpu)
				} else {
					e.Schedule(cpu)
				}
			}
		}(p)
	}
	wg.Wait()
	for cpu := 0; cpu < topo.NCPUs; cpu++ {
		for e.Schedule(cpu) > 0 {
		}
	}
	if got := ran.Load(); got != producers*perProducer {
		t.Fatalf("ran %d tasks, want %d", got, producers*perProducer)
	}
	s := e.Stats()
	if s.Submitted != producers*perProducer {
		t.Errorf("Submitted = %d, want %d", s.Submitted, producers*perProducer)
	}
	var enq, deq uint64
	for _, q := range e.Queues() {
		enq += q.Enqueues()
		deq += q.Dequeues()
		if b := q.DrainBatchNow(); b < q.ctrl.Min() || b > q.ctrl.Max() {
			t.Errorf("queue %v batch %d escaped [%d, %d]",
				q.Node(), b, q.ctrl.Min(), q.ctrl.Max())
		}
	}
	if enq != s.Submitted+s.Requeues+s.Skips {
		t.Errorf("Σenq = %d, want Submitted+Requeues+Skips = %d",
			enq, s.Submitted+s.Requeues+s.Skips)
	}
	if deq != s.Executions+s.Skips {
		t.Errorf("Σdeq = %d, want Executions+Skips = %d", deq, s.Executions+s.Skips)
	}
}
