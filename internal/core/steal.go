package core

// Work stealing across sibling leaf queues.
//
// The queue hierarchy places every task on the deepest topology node
// covering its CPU set, so strictly-placed tasks are always reachable
// from the paths of the CPUs allowed to run them — stealing would never
// find anything. What makes stealing useful is *locality-first*
// placement: SubmitLocal parks an unconstrained task on the producing
// core's leaf queue so that, under normal load, it executes where its
// data is hot. When that core backs up while its siblings idle — the
// imbalance the hierarchy cannot absorb by itself — an out-of-work CPU
// walks outward (topology.StealOrder: siblings first, then cousins,
// NUMA-remote cores last) and migrates a half-batch from the most
// backlogged victim using the same Queue.drain critical section the
// local scan uses.
//
// Correctness is unchanged from the local path: a stolen task's CPU set
// is checked before execution exactly like a drained one's, and
// mismatches are re-homed — re-enqueued, via the chained put-back path,
// on the queue their CPU set actually maps to — so a pinned task can
// transit a thief but never execute outside its set.

import "pioman/internal/trace"

// initSteal precomputes the per-CPU victim order and the steal batch
// size. Called from New; cheap enough to do unconditionally so the
// policy can stay a pure runtime check.
func (e *Engine) initSteal() {
	// Config.normalized has already forced BatchFraction into (0, 1],
	// so the product is at most one full drain batch.
	batch := int(e.cfg.Steal.BatchFraction * float64(e.batch))
	if batch < 1 {
		batch = 1
	}
	e.stealBatch = batch
	if e.cfg.SingleGlobalQueue {
		// One shared queue: everyone already drains everything.
		e.stealGroups = make([][][]*Queue, e.topo.NCPUs)
		return
	}
	e.stealGroups = make([][][]*Queue, e.topo.NCPUs)
	for cpu := 0; cpu < e.topo.NCPUs; cpu++ {
		for _, nodes := range e.topo.StealOrder(cpu) {
			group := make([]*Queue, 0, len(nodes))
			for _, n := range nodes {
				group = append(group, e.byID[n.ID])
			}
			e.stealGroups[cpu] = append(e.stealGroups[cpu], group)
		}
	}
}

// StealPolicy returns the engine's configured steal policy.
func (e *Engine) StealPolicy() StealPolicy { return e.cfg.Steal.Policy }

// StealRate returns cpu's current steal hit-rate estimate in [0, 1] —
// the adaptive-steal feedback signal. It reports 1 (optimistic) when
// the CPU has not attempted a steal yet or Steal.Adaptive is off.
func (e *Engine) StealRate(cpu int) float64 {
	if e.stealRate == nil {
		return 1
	}
	if r, ok := e.stealRate.Shard(cpu); ok {
		return r
	}
	return 1
}

// StealReachesAll reports whether work stealing can migrate a
// leaf-parked task to any CPU in the machine — true only under the
// full-tree policy. Libraries check it before locality-first parking
// (SubmitLocal) of internal progression work: under siblings-only
// stealing a task parked outside the scanning CPUs' sibling groups
// would be stranded forever, so they fall back to deepest-covering
// placement instead.
func (e *Engine) StealReachesAll() bool { return e.cfg.Steal.Policy == StealFullTree }

// SubmitLocal places the task on the per-core leaf queue of the home
// CPU regardless of how broad the task's CPU set is — locality-first
// placement, where Submit's deepest-covering rule is locality-exact.
// The intended pattern is an unconstrained task (empty CPU set)
// produced by code running on home: it should preferably execute there,
// cache-hot, but any CPU may legally run it. Without stealing only
// home's CPU scans that leaf queue, so the task waits behind home's
// backlog; with stealing enabled (Config.Steal) an out-of-work sibling
// migrates it. The CPU set is still enforced at execution time wherever
// the task ends up.
//
// If the task's CPU set excludes home entirely (a caller bug more than
// a use case), the first scan that touches the task — home's own, or a
// thief's — re-homes it onto the queue its CPU set maps to, so it is
// delayed, not stranded, even with stealing off.
func (e *Engine) SubmitLocal(t *Task, home int) error {
	if err := submitPrep(t, "SubmitLocal"); err != nil {
		return err
	}
	var q *Queue
	if home >= 0 && home < len(e.leaf) {
		q = e.leaf[home]
	} else {
		q = e.queueForSlow(t.CPUSet)
	}
	e.submitTo(t, q)
	return nil
}

// steal walks cpu's victim groups in topological-distance order and
// migrates work from the first group holding any. Within a group the
// most backlogged victim is tried first (queue length, with the
// victim's execution count as tiebreak — a core that has both a backlog
// and a history of executing the most is the overload the ExecPerCPU
// imbalance stat points at). Returns the number of stolen tasks
// executed; max has ScheduleOne semantics (max > 0 bounds executions).
func (e *Engine) steal(cpu int, max int) int {
	groups := e.stealGroups[cpu]
	if len(groups) == 0 {
		return 0
	}
	if e.cfg.Steal.Policy == StealSiblings {
		groups = groups[:1]
	}
	budget := -1
	if max > 0 {
		budget = max
	}
	for _, group := range groups {
		best := e.bestVictim(group)
		if best == nil {
			continue
		}
		if ran := e.stealFrom(best, cpu, budget); ran > 0 {
			return ran
		}
		// The best victim raced empty or held only mismatches; sweep the
		// rest of the group once before widening the radius.
		for _, q := range group {
			if q == best || !e.stealable(q) {
				continue
			}
			if ran := e.stealFrom(q, cpu, budget); ran > 0 {
				return ran
			}
		}
	}
	return 0
}

// stealable reports whether a victim queue is worth a drain: non-empty
// and not marked fruitless. A queue is fruitless when the last steal
// against it detached tasks and could run none (its visible backlog is
// pinned to its owner); the mark clears itself as soon as anything new
// is enqueued there, since the newcomer may well be stealable. Without
// this hint, every idle CPU's every keypoint would re-drain and
// re-enqueue the busy core's pinned backlog — lock traffic on exactly
// the queue the hierarchy is meant to keep quiet, and a FIFO rotation
// for nothing.
func (e *Engine) stealable(q *Queue) bool {
	if q.Empty() {
		return false
	}
	f := q.fruitless.Load()
	return f == 0 || f != q.enqueues.Load()+1
}

// bestVictim returns the group's stealable queue with the largest
// backlog, preferring on ties the queue whose owning CPU has executed
// the most — the per-CPU execution shard is the load signal ExecPerCPU
// exposes, read here for one atomic load per candidate. Returns nil
// when no queue in the group is worth draining.
func (e *Engine) bestVictim(group []*Queue) *Queue {
	var best *Queue
	bestLen := 0
	var bestExec uint64
	for _, q := range group {
		if !e.stealable(q) {
			continue
		}
		l := q.Len()
		if l == 0 {
			continue
		}
		// Victim leaves are Core nodes, so Node().Index is the owning CPU.
		ex := e.shards[q.node.Index].executions.Load()
		if best == nil || l > bestLen || (l == bestLen && ex > bestExec) {
			best, bestLen, bestExec = q, l, ex
		}
	}
	return best
}

// stealFrom detaches up to stealBatch tasks from the victim in one
// drain critical section, executes the ones this CPU may run, and
// re-homes the rest: CPU-set mismatches are re-enqueued — with the same
// chained put-back used by the local drain path — on the queue their
// CPU set maps to under deepest-covering placement, which also repairs
// any stale locality-first placement. Returns the number of tasks
// executed.
//
// Under Steal.Adaptive the window is scaled by this thief's observed
// hit-rate before the budget clip: a CPU whose steals keep migrating
// nothing drains smaller and smaller windows (down to one task), so a
// pinned-backlog victim is probed, not churned; success restores the
// full window within a few hits.
func (e *Engine) stealFrom(q *Queue, cpu int, budget int) int {
	full := e.stealBatch
	if e.stealRate != nil {
		if r, ok := e.stealRate.Shard(cpu); ok {
			full = int(r*float64(e.stealBatch) + 0.5)
			if full < 1 {
				full = 1
			}
		}
	}
	want := full
	if budget >= 0 && want > budget {
		want = budget
	}
	sh := &e.shards[cpu]
	sh.stealAttempts.Add(1)
	head, got := q.drain(want, false)
	if got == 0 {
		return 0
	}
	ran := 0
	pb := rehomeChain{e: e}
	for t := head; t != nil; {
		next := t.next
		t.next = nil
		if !t.CPUSet.IsEmpty() && !t.CPUSet.IsSet(cpu) {
			pb.add(t)
		} else {
			e.run(t, cpu)
			ran++
		}
		t = next
	}
	pb.flush()
	if pb.total > 0 {
		sh.skips.Add(uint64(pb.total))
	}
	if e.stealRate != nil {
		// One sample per steal that saw tasks: 1 when something
		// migrated, 0 when the whole window was unrunnable here.
		hit := 0.0
		if ran > 0 {
			hit = 1
		}
		e.stealRate.Observe(cpu, hit)
	}
	if ran > 0 {
		sh.stealHits.Add(1)
		sh.stealTasks.Add(uint64(ran))
		if r := e.rec; r != nil {
			// Victim leaves are Core nodes, so Node().Index is the CPU
			// the work migrated away from.
			r.Record(cpu, trace.EvTaskSteal, uint64(q.node.Index), uint64(ran))
		}
	} else if want == full && got < want {
		// The steal saw the victim's entire visible backlog (a full
		// window that came back short) and ran none of it: mark the
		// victim fruitless until its next enqueue so other thieves stop
		// re-draining a pinned backlog. Stored as enqueues+1 so zero
		// means "no mark"; the re-home appends above already bumped
		// enqueues, so the mark reflects the queue's state after this
		// steal. A window that filled completely (got == want) proves
		// nothing — stealable tasks may sit right behind the pinned
		// head — and neither does a budget-clipped one (ScheduleOne
		// drains a single task), so neither marks.
		q.fruitless.Store(q.enqueues.Load() + 1)
	}
	return ran
}
