package core

import (
	"pioman/internal/cpuset"
)

// Urgent tasks implement the paper's §VI future-work direction:
// "preemptive tasks — that is, tasks that can be executed immediately,
// even on a distant CPU where a thread is computing".
//
// An urgent task bypasses the topology hierarchy: it lands on a
// dedicated queue scanned *before* the per-core queue by every CPU, and
// submission raises an interrupt-like notification so a busy CPU's next
// keypoint (or the IPI hook installed by the thread scheduler) runs it
// at once.

// initUrgent lazily creates the urgent queue (root-level domain).
func (e *Engine) initUrgent() *Queue {
	if q := e.urgentQ.Load(); q != nil {
		return q
	}
	q := newQueue(e.topo.Root, e.cfg.QueueKind)
	q.ctrl.Init(e.batch, e.cfg.DrainMin, e.cfg.DrainMax)
	if e.urgentQ.CompareAndSwap(nil, q) {
		return q
	}
	return e.urgentQ.Load()
}

// SubmitUrgent submits a task for immediate execution on any allowed
// CPU, ahead of all hierarchically queued tasks. The task's CPU set is
// still honoured. If an interrupt hook is installed (see
// SetInterrupter), it is invoked so a computing CPU executes the task
// without waiting for its next natural keypoint.
func (e *Engine) SubmitUrgent(t *Task) error {
	if err := submitPrep(t, "SubmitUrgent"); err != nil {
		return err
	}
	q := e.initUrgent()
	t.home = q
	e.urgentCount.Add(1)
	q.enqueue(t)
	if fn := e.interrupt.Load(); fn != nil {
		(*fn)(t.CPUSet)
	}
	if fn := e.notify.Load(); fn != nil {
		(*fn)(t.CPUSet)
	}
	return nil
}

// SetInterrupter installs the IPI-like hook invoked on every urgent
// submission with the task's CPU set. The thread scheduler uses it to
// run the task immediately on a target CPU instead of waiting for a
// scheduling hole.
func (e *Engine) SetInterrupter(fn func(cs cpuset.Set)) {
	if fn == nil {
		e.interrupt.Store(nil)
		return
	}
	e.interrupt.Store(&fn)
}

// UrgentSubmitted returns how many urgent tasks have been submitted.
func (e *Engine) UrgentSubmitted() uint64 { return e.urgentCount.Load() }

// scheduleUrgent drains the urgent queue (bounded by its length at
// entry) on behalf of cpu, before any hierarchical queue is looked at.
// It shares the engine's batched drain path, so even the preemptive
// queue pays one lock acquisition per batch, not per task.
func (e *Engine) scheduleUrgent(cpu int, max int) int {
	q := e.urgentQ.Load()
	if q == nil {
		return 0
	}
	budget := -1
	if max > 0 {
		budget = max
	}
	// pin == q: a skipped urgent task goes back on the urgent queue —
	// being unrunnable *here* must not demote it into the hierarchy.
	return e.drainQueue(q, cpu, budget, q)
}
