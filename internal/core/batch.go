package core

import "pioman/internal/cpuset"

// Batch submission.
//
// A communication strategy that flushes a burst of packets — the
// aggregation strategy's send path is the motivating case — would pay
// one queue-lock round-trip and one notifier wakeup per packet under
// Submit. SubmitAll amortizes both across the burst: consecutive
// same-queue tasks are appended as one chain under a single lock
// acquisition (the producer-side mirror of the consumer's batched
// drain), and the wakeup notifier fires once for the whole batch with
// the union of the tasks' CPU sets.

// SubmitAll submits a batch of tasks as one operation. Placement is
// identical to per-task Submit (deepest covering queue per task), but
// runs of consecutive tasks bound for the same queue share one locked
// chain append and the notifier fires once per batch.
//
// The batch is all-or-nothing with respect to validation: every task
// is checked and transitioned first, and if any is invalid (nil Fn, or
// not in StateFree) the already-transitioned tasks are reverted and no
// task is enqueued.
func (e *Engine) SubmitAll(tasks ...*Task) error {
	if len(tasks) == 0 {
		return nil
	}
	if len(tasks) == 1 {
		return e.Submit(tasks[0])
	}
	for i, t := range tasks {
		if err := submitPrep(t, "SubmitAll"); err != nil {
			for _, u := range tasks[:i] {
				u.state.Store(uint32(StateFree))
			}
			return err
		}
	}

	var head, tail *Task
	var dest *Queue
	n := 0
	flush := func() {
		if n > 0 {
			dest.enqueueChain(head, tail, n)
		}
		head, tail, n = nil, nil, 0
	}
	union := cpuset.Set{}
	anyCPU := false
	for _, t := range tasks {
		var q *Queue
		if cpu, ok := t.CPUSet.Single(); ok && cpu < len(e.leaf) {
			q = e.leaf[cpu]
		} else {
			q = e.queueForSlow(t.CPUSet)
		}
		t.home = q
		if q != dest {
			flush()
			dest = q
		}
		if tail == nil {
			head = t
		} else {
			tail.next = t
		}
		tail = t
		n++
		if t.CPUSet.IsEmpty() {
			anyCPU = true
		} else {
			union = cpuset.Or(union, t.CPUSet)
		}
	}
	flush()

	if fn := e.notify.Load(); fn != nil {
		if anyCPU {
			// An unconstrained task is runnable anywhere: wake as for
			// the empty set.
			union = cpuset.Set{}
		}
		(*fn)(union)
	}
	return nil
}

// MustSubmitAll is SubmitAll that panics on error, for call sites where
// a batch failure is a programming bug.
func (e *Engine) MustSubmitAll(tasks ...*Task) {
	if err := e.SubmitAll(tasks...); err != nil {
		panic(err)
	}
}
