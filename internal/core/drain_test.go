package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"pioman/internal/cpuset"
	"pioman/internal/topology"
)

// Tests for the batched-dequeue fast path: drain, enqueueChain, the
// cached placement tables, the sharded/derived statistics, and
// ResetStats across every queue protection variant. Run with -race.

// TestConcurrentBurstyAllKinds hammers the batched drain path: producers
// submit bursts (so drains detach real batches, not single tasks) of
// pinned, chip-wide and global tasks while one scheduler goroutine per
// CPU drains. Every task must execute exactly once, on an allowed CPU.
func TestConcurrentBurstyAllKinds(t *testing.T) {
	for _, kind := range []QueueKind{QueueSpinlock, QueueMutex, QueueLockFree} {
		t.Run(kind.String(), func(t *testing.T) {
			topo := topology.Kwak()
			e := New(Config{Topology: topo, QueueKind: kind})
			const producers = 4
			const bursts = 30
			const burstLen = 16
			total := producers * bursts * burstLen

			var executed atomic.Int64
			var badCPU atomic.Int64
			stop := make(chan struct{})
			var swg sync.WaitGroup
			for cpu := 0; cpu < topo.NCPUs; cpu++ {
				swg.Add(1)
				go func(cpu int) {
					defer swg.Done()
					for {
						e.Schedule(cpu)
						select {
						case <-stop:
							for e.Schedule(cpu) > 0 {
							}
							return
						default:
						}
					}
				}(cpu)
			}

			var pwg sync.WaitGroup
			for p := 0; p < producers; p++ {
				pwg.Add(1)
				go func(p int) {
					defer pwg.Done()
					for bu := 0; bu < bursts; bu++ {
						tasks := make([]Task, burstLen)
						for i := range tasks {
							switch i % 3 {
							case 0:
								tasks[i].CPUSet = cpuset.New((p*burstLen + i) % topo.NCPUs)
							case 1:
								chip := (p + i) % 4
								tasks[i].CPUSet = cpuset.NewRange(chip*4, chip*4+3)
							case 2:
								// empty: global queue, any CPU
							}
							tasks[i].Fn = func(arg any) bool {
								task := arg.(*Task)
								cpu := int(task.lastCPU.Load())
								if !task.CPUSet.IsEmpty() && !task.CPUSet.IsSet(cpu) {
									badCPU.Add(1)
								}
								executed.Add(1)
								return true
							}
							tasks[i].Arg = &tasks[i]
							e.MustSubmit(&tasks[i])
						}
						for i := range tasks {
							e.WaitActive(&tasks[i], p%topo.NCPUs)
						}
					}
				}(p)
			}
			pwg.Wait()
			close(stop)
			swg.Wait()

			if got := executed.Load(); got != int64(total) {
				t.Errorf("executed %d tasks, want %d", got, total)
			}
			if n := badCPU.Load(); n != 0 {
				t.Errorf("%d executions on disallowed CPUs", n)
			}
			if e.Pending() != 0 {
				t.Errorf("Pending = %d after completion", e.Pending())
			}
		})
	}
}

// TestStatsMatchQueueCounters is the accounting regression test for the
// sharded/derived counters: at quiescence the per-queue enqueue/dequeue
// totals must tie out exactly against the engine-level stats —
//
//	Σ Enqueues == Submitted + Requeues + Skips
//	Σ Dequeues == Executions + Skips
//
// with Submitted equal to the number of Submit calls actually made.
func TestStatsMatchQueueCounters(t *testing.T) {
	for _, kind := range []QueueKind{QueueSpinlock, QueueMutex, QueueLockFree} {
		t.Run(kind.String(), func(t *testing.T) {
			e := New(Config{Topology: topology.Kwak(), QueueKind: kind})
			submits := 0

			// Plain pinned tasks.
			for i := 0; i < 10; i++ {
				e.MustSubmit(&Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(i % 16)})
				submits++
			}
			// A repeat task that takes 4 runs.
			countdown := 4
			e.MustSubmit(&Task{
				Fn:      func(any) bool { countdown--; return countdown == 0 },
				CPUSet:  cpuset.New(2),
				Options: Repeat,
			})
			submits++
			// A task CPU 0 must skip (global queue, restricted set).
			skippy := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(3, 4)}
			e.MustSubmit(skippy)
			submits++
			// An urgent task, so the urgent queue participates in totals.
			if err := e.SubmitUrgent(&Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)}); err != nil {
				t.Fatal(err)
			}
			submits++

			e.Schedule(0) // skips skippy at the global queue
			for cpu := 0; cpu < 16; cpu++ {
				for e.Schedule(cpu) > 0 {
				}
			}
			if e.Pending() != 0 {
				t.Fatalf("Pending = %d, want 0", e.Pending())
			}

			s := e.Stats()
			if s.Submitted != uint64(submits) {
				t.Errorf("Submitted = %d, want %d", s.Submitted, submits)
			}
			if s.Skips == 0 {
				t.Error("expected at least one skip")
			}
			if s.Requeues != 3 {
				t.Errorf("Requeues = %d, want 3", s.Requeues)
			}
			var enq, deq uint64
			for _, q := range e.Queues() {
				enq += q.Enqueues()
				deq += q.Dequeues()
			}
			if uq := e.urgentQ.Load(); uq != nil {
				enq += uq.Enqueues()
				deq += uq.Dequeues()
			}
			if enq != s.Submitted+s.Requeues+s.Skips {
				t.Errorf("Σenqueues = %d, want Submitted+Requeues+Skips = %d",
					enq, s.Submitted+s.Requeues+s.Skips)
			}
			if deq != s.Executions+s.Skips {
				t.Errorf("Σdequeues = %d, want Executions+Skips = %d",
					deq, s.Executions+s.Skips)
			}
			var exec uint64
			for _, n := range s.ExecPerCPU {
				exec += n
			}
			if exec != s.Executions {
				t.Errorf("ΣExecPerCPU = %d, want Executions = %d", exec, s.Executions)
			}
		})
	}
}

// TestStatsTieOutWithStealing extends the accounting invariants to work
// stealing: with thieves migrating and re-homing tasks, the per-queue
// totals must still satisfy
//
//	Σ Enqueues == Submitted + Requeues + Skips
//	Σ Dequeues == Executions + Skips
//
// and the steal counters must tie out among themselves:
//
//	Σ StealPerCPU == StealTasks ≤ Executions,  StealHits ≤ StealAttempts.
func TestStatsTieOutWithStealing(t *testing.T) {
	for _, kind := range []QueueKind{QueueSpinlock, QueueMutex, QueueLockFree} {
		t.Run(kind.String(), func(t *testing.T) {
			e := New(Config{
				Topology:  topology.Borderline(),
				QueueKind: kind,
				Steal:     StealConfig{Policy: StealFullTree},
			})
			submits := 0
			// Unconstrained tasks parked on CPU 0's leaf: steal fodder.
			for i := 0; i < 20; i++ {
				if err := e.SubmitLocal(&Task{Fn: func(any) bool { return true }}, 0); err != nil {
					t.Fatal(err)
				}
				submits++
			}
			// A pinned task misplaced on CPU 0's leaf: must be re-homed by
			// a thief (a skip), then executed by its own CPU.
			pinned := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(5)}
			if err := e.SubmitLocal(pinned, 0); err != nil {
				t.Fatal(err)
			}
			submits++
			// A repeat task, so requeues participate in the totals.
			countdown := 3
			e.MustSubmit(&Task{
				Fn:      func(any) bool { countdown--; return countdown == 0 },
				CPUSet:  cpuset.New(1),
				Options: Repeat,
			})
			submits++

			// Thieves drain everything; CPU 5 picks up the re-homed task.
			for cpu := 0; cpu < 8; cpu++ {
				thief := (cpu + 1) % 8
				for e.Schedule(thief) > 0 {
				}
			}
			for e.Schedule(5) > 0 {
			}
			for e.Schedule(1) > 0 {
			}
			if e.Pending() != 0 {
				t.Fatalf("Pending = %d, want 0", e.Pending())
			}
			if !pinned.Done() {
				t.Fatal("re-homed pinned task never executed")
			}

			s := e.Stats()
			if s.Submitted != uint64(submits) {
				t.Errorf("Submitted = %d, want %d", s.Submitted, submits)
			}
			if s.StealTasks == 0 || s.StealHits == 0 {
				t.Errorf("expected steals, got %+v", s)
			}
			var enq, deq uint64
			for _, q := range e.Queues() {
				enq += q.Enqueues()
				deq += q.Dequeues()
			}
			if enq != s.Submitted+s.Requeues+s.Skips {
				t.Errorf("Σenqueues = %d, want Submitted+Requeues+Skips = %d",
					enq, s.Submitted+s.Requeues+s.Skips)
			}
			if deq != s.Executions+s.Skips {
				t.Errorf("Σdequeues = %d, want Executions+Skips = %d",
					deq, s.Executions+s.Skips)
			}
			var perCPU uint64
			for _, n := range s.StealPerCPU {
				perCPU += n
			}
			if perCPU != s.StealTasks {
				t.Errorf("ΣStealPerCPU = %d, want StealTasks = %d", perCPU, s.StealTasks)
			}
			if s.StealTasks > s.Executions {
				t.Errorf("StealTasks = %d exceeds Executions = %d", s.StealTasks, s.Executions)
			}
			if s.StealHits > s.StealAttempts {
				t.Errorf("StealHits = %d exceeds StealAttempts = %d", s.StealHits, s.StealAttempts)
			}

			// ResetStats must clear the steal counters with everything else.
			e.ResetStats()
			s = e.Stats()
			if s.StealAttempts != 0 || s.StealHits != 0 || s.StealTasks != 0 {
				t.Errorf("steal stats after reset = %+v, want all zero", s)
			}
		})
	}
}

// TestDrainBatchesUnderOneLock verifies the core claim of batched
// dequeue: scheduling N pending tasks takes ~N/batch consumer-side lock
// acquisitions, not N.
func TestDrainBatchesUnderOneLock(t *testing.T) {
	e := New(Config{Topology: topology.Kwak()})
	const n = 64 // two default batches
	for i := 0; i < n; i++ {
		e.MustSubmit(&Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)})
	}
	if got := e.Schedule(0); got != n {
		t.Fatalf("Schedule ran %d, want %d", got, n)
	}
	q := e.QueueFor(cpuset.New(0))
	drains, drained := q.DrainStats()
	if drained != n {
		t.Errorf("drained = %d, want %d", drained, n)
	}
	if drains != 2 {
		t.Errorf("drains = %d, want 2 (batch size 32)", drains)
	}
	acq, _ := q.LockStats()
	// n single enqueues + 2 drains; far below the seed's n+n.
	if want := uint64(n + 2); acq != want {
		t.Errorf("lock acquisitions = %d, want %d", acq, want)
	}
}

// TestDrainBatchOne degenerates the batch size to 1 and checks it
// reproduces the seed's lock-per-task behaviour, keeping the ablation
// comparable.
func TestDrainBatchOne(t *testing.T) {
	e := New(Config{Topology: topology.Kwak(), DrainBatch: 1})
	const n = 8
	for i := 0; i < n; i++ {
		e.MustSubmit(&Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)})
	}
	if got := e.Schedule(0); got != n {
		t.Fatalf("Schedule ran %d, want %d", got, n)
	}
	q := e.QueueFor(cpuset.New(0))
	drains, drained := q.DrainStats()
	if drained != n || drains != n {
		t.Errorf("drains/drained = %d/%d, want %d/%d", drains, drained, n, n)
	}
}

// TestPutBacksUseOneChainEnqueue checks that CPU-set mismatches found in
// one drained batch are re-enqueued with a single chain append, and that
// the put-back preserves the tasks for an allowed CPU.
func TestPutBacksUseOneChainEnqueue(t *testing.T) {
	e := New(Config{Topology: topology.Kwak()})
	const n = 6
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i].Fn = func(any) bool { return true }
		tasks[i].CPUSet = cpuset.New(3, 4) // global queue, CPUs 3-4 only
		e.MustSubmit(&tasks[i])
	}
	if got := e.Schedule(0); got != 0 {
		t.Fatalf("CPU 0 executed %d tasks, want 0", got)
	}
	if got := e.Stats().Skips; got != n {
		t.Errorf("Skips = %d, want %d", got, n)
	}
	q := e.QueueFor(cpuset.New(3, 4))
	// n individual submit enqueues + 1 put-back chain + 1 drain.
	acq, _ := q.LockStats()
	if want := uint64(n + 2); acq != want {
		t.Errorf("lock acquisitions = %d, want %d (one chained put-back)", acq, want)
	}
	for cpu := 3; cpu <= 4; cpu++ {
		for e.Schedule(cpu) > 0 {
		}
	}
	for i := range tasks {
		if !tasks[i].Done() {
			t.Fatalf("task %d lost in put-back", i)
		}
	}
}

// TestCachedPlacementMatchesFindCovering guards the leaf/byID tables:
// placement through the fast path must agree with the topology walk for
// every single-CPU set, and QueueFor must agree with FindCovering for
// arbitrary sets.
func TestCachedPlacementMatchesFindCovering(t *testing.T) {
	topo := topology.Kwak()
	e := New(Config{Topology: topo})
	for cpu := 0; cpu < topo.NCPUs; cpu++ {
		got := e.QueueFor(cpuset.New(cpu)).Node()
		want := topo.FindCovering(cpuset.New(cpu))
		if got != want {
			t.Errorf("QueueFor({%d}) = %v, want %v", cpu, got, want)
		}
		if got.Kind != topology.Core || got.Index != cpu {
			t.Errorf("QueueFor({%d}) not the per-core leaf: %v", cpu, got)
		}
	}
	for mask := 0; mask < 1<<16; mask += 37 {
		cs := setFromMask(uint16(mask))
		if got, want := e.QueueFor(cs).Node(), topo.FindCovering(cs); got != want {
			t.Errorf("QueueFor(%s) = %v, want %v", cs, got, want)
		}
	}
	// Out-of-range single CPU falls back to the tree walk (global queue).
	if got := e.QueueFor(cpuset.New(99)).Node(); got != topo.Root {
		t.Errorf("QueueFor({99}) = %v, want root", got)
	}
}

// TestResetStatsClearsAllInstrumentation is the regression test for the
// ResetStats fix: after a workload on each queue kind — urgent queue
// included — every counter the engine reports must read zero.
func TestResetStatsClearsAllInstrumentation(t *testing.T) {
	for _, kind := range []QueueKind{QueueSpinlock, QueueMutex, QueueLockFree} {
		t.Run(kind.String(), func(t *testing.T) {
			e := New(Config{Topology: topology.Kwak(), QueueKind: kind})
			for i := 0; i < 8; i++ {
				e.MustSubmit(&Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(i % 16)})
			}
			if err := e.SubmitUrgent(&Task{Fn: func(any) bool { return true }}); err != nil {
				t.Fatal(err)
			}
			for cpu := 0; cpu < 16; cpu++ {
				for e.Schedule(cpu) > 0 {
				}
			}
			e.ResetStats()
			s := e.Stats()
			if s.Submitted != 0 || s.Executions != 0 || s.Requeues != 0 || s.Skips != 0 {
				t.Errorf("Stats after reset = %+v, want all zero", s)
			}
			for _, q := range e.Queues() {
				if q.Enqueues() != 0 || q.Dequeues() != 0 {
					t.Errorf("queue %v counters %d/%d after reset", q.Node(), q.Enqueues(), q.Dequeues())
				}
				if acq, cont := q.LockStats(); acq != 0 || cont != 0 {
					t.Errorf("queue %v LockStats %d/%d after reset", q.Node(), acq, cont)
				}
				if drains, drained := q.DrainStats(); drains != 0 || drained != 0 {
					t.Errorf("queue %v DrainStats %d/%d after reset", q.Node(), drains, drained)
				}
				if q.Retries() != 0 {
					t.Errorf("queue %v Retries %d after reset", q.Node(), q.Retries())
				}
			}
		})
	}
}

// TestResetStatsKeepsQueuedTasksSchedulable: resetting stats while
// tasks are in flight must not strand them — the derived queue length
// survives the counter reset (regression test: warmup, ResetStats,
// measure, with a Repeat polling task alive across the reset).
func TestResetStatsKeepsQueuedTasksSchedulable(t *testing.T) {
	for _, kind := range []QueueKind{QueueSpinlock, QueueMutex, QueueLockFree} {
		t.Run(kind.String(), func(t *testing.T) {
			e := New(Config{Topology: topology.Kwak(), QueueKind: kind})
			task := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)}
			polls := 0
			poller := &Task{
				Fn:      func(any) bool { polls++; return polls >= 3 },
				CPUSet:  cpuset.New(1),
				Options: Repeat,
			}
			e.MustSubmit(task)
			e.MustSubmit(poller)
			e.Schedule(1) // one poll; poller re-enqueued across the reset
			e.ResetStats()
			if n := e.Schedule(0); n != 1 {
				t.Fatalf("Schedule(0) after reset ran %d, want 1", n)
			}
			for i := 0; i < 5 && !poller.Done(); i++ {
				e.Schedule(1)
			}
			if !task.Done() || !poller.Done() {
				t.Fatalf("tasks stranded by ResetStats: done=%v/%v", task.Done(), poller.Done())
			}
			s := e.Stats()
			if s.Submitted != 2 {
				t.Errorf("Submitted = %d, want 2 (both tasks re-enter accounting at reset)", s.Submitted)
			}
		})
	}
}

// TestScheduleOneWithDeepBacklog: ScheduleOne must execute exactly one
// task even when far more are queued (the drain must not detach a full
// batch it cannot execute).
func TestScheduleOneWithDeepBacklog(t *testing.T) {
	e := New(Config{Topology: topology.Kwak()})
	const n = 100
	for i := 0; i < n; i++ {
		e.MustSubmit(&Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)})
	}
	if !e.ScheduleOne(0) {
		t.Fatal("ScheduleOne found nothing")
	}
	if got := e.Pending(); got != n-1 {
		t.Errorf("Pending = %d, want %d", got, n-1)
	}
	if got := e.Stats().Executions; got != 1 {
		t.Errorf("Executions = %d, want 1", got)
	}
}
