package core

import (
	"sync/atomic"
	"testing"

	"pioman/internal/cpuset"
	"pioman/internal/topology"
)

// TestLatencyStatsRecords checks the opt-in drain/steal histograms: a
// drain pass over real work is sampled, a steal attempt from an
// out-of-work CPU is sampled separately, and both merge across shards.
func TestLatencyStatsRecords(t *testing.T) {
	e := New(Config{
		Topology:     topology.Borderline(),
		Steal:        StealConfig{Policy: StealSiblings},
		LatencyStats: true,
	})
	var ran atomic.Int64
	for i := 0; i < 16; i++ {
		task := anyTask(&ran)
		task.CPUSet = cpuset.New(0)
		e.MustSubmit(task)
	}
	if n := e.Schedule(0); n != 16 {
		t.Fatalf("Schedule(0) ran %d, want 16", n)
	}
	drain := e.DrainLatency()
	if drain.Count() == 0 {
		t.Fatal("drain pass left no latency samples")
	}
	if drain.Quantile(0.99) < drain.Quantile(0.5) {
		t.Errorf("p99 %d < p50 %d", drain.Quantile(0.99), drain.Quantile(0.5))
	}

	// CPU 1 has no local work: its Schedule is a steal attempt.
	sl0 := e.StealLatency()
	before := sl0.Count()
	e.Schedule(1)
	if sl := e.StealLatency(); sl.Count() <= before {
		t.Error("steal attempt left no latency samples")
	}

	e.ResetStats()
	if d, s := e.DrainLatency(), e.StealLatency(); d.Count() != 0 || s.Count() != 0 {
		t.Error("ResetStats kept latency samples")
	}
}

// TestLatencyStatsOffIsEmpty checks the default: no samples, no cost.
func TestLatencyStatsOffIsEmpty(t *testing.T) {
	e := New(Config{Topology: topology.Borderline()})
	var ran atomic.Int64
	e.MustSubmit(anyTask(&ran))
	e.Schedule(0)
	if d := e.DrainLatency(); d.Count() != 0 {
		t.Error("LatencyStats off but drain samples recorded")
	}
}
