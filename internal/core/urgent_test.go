package core

import (
	"sync/atomic"
	"testing"

	"pioman/internal/cpuset"
	"pioman/internal/topology"
)

func TestUrgentRunsBeforeHierarchical(t *testing.T) {
	e := kwakEngine()
	var order []string
	normal := &Task{Fn: func(any) bool { order = append(order, "normal"); return true }, CPUSet: cpuset.New(0)}
	urgent := &Task{Fn: func(any) bool { order = append(order, "urgent"); return true }}
	e.MustSubmit(normal)
	if err := e.SubmitUrgent(urgent); err != nil {
		t.Fatal(err)
	}
	if n := e.Schedule(0); n != 2 {
		t.Fatalf("ran %d tasks, want 2", n)
	}
	if len(order) != 2 || order[0] != "urgent" {
		t.Errorf("order = %v, want urgent first", order)
	}
	if e.UrgentSubmitted() != 1 {
		t.Errorf("UrgentSubmitted = %d", e.UrgentSubmitted())
	}
}

func TestUrgentHonorsCPUSet(t *testing.T) {
	e := kwakEngine()
	urgent := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(7)}
	if err := e.SubmitUrgent(urgent); err != nil {
		t.Fatal(err)
	}
	if n := e.Schedule(0); n != 0 {
		t.Fatalf("CPU 0 ran %d urgent tasks restricted to CPU 7", n)
	}
	if n := e.Schedule(7); n != 1 {
		t.Fatalf("CPU 7 ran %d tasks, want 1", n)
	}
	if urgent.LastCPU() != 7 {
		t.Errorf("LastCPU = %d", urgent.LastCPU())
	}
}

func TestUrgentInterrupterFires(t *testing.T) {
	e := kwakEngine()
	var interrupted atomic.Int32
	e.SetInterrupter(func(cs cpuset.Set) {
		interrupted.Add(1)
		// Execute the task immediately, IPI-style.
		e.ScheduleOne(cs.First())
	})
	urgent := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(3)}
	if err := e.SubmitUrgent(urgent); err != nil {
		t.Fatal(err)
	}
	if interrupted.Load() != 1 {
		t.Error("interrupter did not fire")
	}
	if !urgent.Done() {
		t.Error("urgent task should have been executed by the interrupter")
	}
	// Clearing the interrupter must disable it.
	e.SetInterrupter(nil)
	u2 := &Task{Fn: func(any) bool { return true }}
	e.SubmitUrgent(u2)
	if interrupted.Load() != 1 {
		t.Error("cleared interrupter still fired")
	}
	e.Schedule(0)
}

func TestUrgentRepeat(t *testing.T) {
	e := kwakEngine()
	count := 0
	urgent := &Task{
		Fn:      func(any) bool { count++; return count >= 3 },
		Options: Repeat,
	}
	if err := e.SubmitUrgent(urgent); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5 && !urgent.Done(); i++ {
		e.Schedule(1)
	}
	if count != 3 {
		t.Errorf("repeat urgent ran %d times, want 3", count)
	}
}

func TestUrgentErrors(t *testing.T) {
	e := kwakEngine()
	if err := e.SubmitUrgent(&Task{}); err == nil {
		t.Error("nil Fn should fail")
	}
	task := &Task{Fn: func(any) bool { return true }}
	if err := e.SubmitUrgent(task); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitUrgent(task); err == nil {
		t.Error("double SubmitUrgent should fail")
	}
	e.Schedule(0)
}

func TestUrgentCountsInPending(t *testing.T) {
	e := kwakEngine()
	e.SubmitUrgent(&Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(9)})
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.Schedule(9)
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after drain", e.Pending())
	}
}

func TestUrgentWithSingleGlobalQueueMode(t *testing.T) {
	e := New(Config{Topology: topology.Kwak(), SingleGlobalQueue: true})
	u := &Task{Fn: func(any) bool { return true }}
	if err := e.SubmitUrgent(u); err != nil {
		t.Fatal(err)
	}
	if n := e.Schedule(5); n != 1 {
		t.Errorf("ran %d, want 1", n)
	}
}
