package core

import (
	"sync"
	"sync/atomic"

	"pioman/internal/adapt"
	"pioman/internal/spinlock"
	"pioman/internal/topology"
)

// QueueKind selects how a task queue is protected against concurrent
// access — the ablation axis of §IV-A (spinlocks chosen because critical
// sections are shorter than a context switch) and §VI (lock-free as
// future work).
type QueueKind int

const (
	// QueueSpinlock protects the intrusive task list with a
	// test-and-test-and-set spinlock. This is the paper's implementation.
	QueueSpinlock QueueKind = iota
	// QueueMutex uses sync.Mutex — the "classical mutex" the paper warns
	// risks costly context switches.
	QueueMutex
	// QueueLockFree uses a Michael-Scott lock-free queue backed by a slab
	// node allocator — the paper's future-work direction.
	QueueLockFree
)

// String returns the kind name.
func (k QueueKind) String() string {
	switch k {
	case QueueSpinlock:
		return "spinlock"
	case QueueMutex:
		return "mutex"
	case QueueLockFree:
		return "lockfree"
	default:
		return "unknown"
	}
}

// Queue is one task list bound to a topology node. It is multi-producer,
// multi-consumer: any core may submit, any core whose CPU lies below the
// node may drain it.
//
// The layout and the accounting are both contention-aware:
//
//   - The lock word and list tail (producer side), the head pointer
//     (read unlocked by every Algorithm 2 emptiness precheck), the
//     producer counter and the consumer counters each sit on their own
//     cache line, so cores in different roles never false-share.
//   - The hot paths carry no dedicated instrumentation updates: length
//     is derived as enqueues−dequeues, and lock acquisitions are derived
//     in LockStats from the operation counters (every locked operation
//     acquires exactly once), so enqueue pays a single counter add and
//     drain amortizes its adds over the whole batch.
type Queue struct {
	node *topology.Node
	kind QueueKind

	// Lock-free variant (nil otherwise).
	lf *spinlock.MSQueue[*Task]

	_ spinlock.CacheLinePad
	// Producer line: the lock, the list tail and the enqueue counter are
	// all written while enqueueing, so they share one cache line —
	// a submitting core touches exactly this line plus the task.
	// (Algorithm 2's critical section is guarded by spin or mutex.)
	spin     spinlock.SpinLock
	tail     *Task
	enqueues atomic.Uint64 // tasks enqueued (all paths)
	mutex    sync.Mutex

	_ spinlock.CacheLinePad
	// head is written only while holding the lock but read without it by
	// Empty — the first, unlocked check of Algorithm 2 — so empty-queue
	// scans touch one immutable-for-them cache line and no lock.
	head atomic.Pointer[Task]

	_           spinlock.CacheLinePad
	dequeues    atomic.Uint64 // tasks detached by drains
	drains      atomic.Uint64 // drain ops that detached ≥ 1 task
	emptyDrains atomic.Uint64 // locked drain ops that found nothing
	chainOps    atomic.Uint64 // enqueueChain ops (one lock each)
	chainTasks  atomic.Uint64 // tasks appended by enqueueChain
	contended   atomic.Uint64 // lock acquisitions that had to wait
	// fruitless is the work-stealing hint: enqueues+1 as of the last
	// steal that detached tasks but could run none (the backlog is
	// pinned to the owner), zero when unmarked. Any enqueue invalidates
	// the mark by changing the comparison value. See Engine.stealable.
	fruitless atomic.Uint64
	_         spinlock.CacheLinePad

	// ctrl is the queue's adaptive drain-batch controller, consulted by
	// drains only under Config.AdaptiveDrain. It sits on its own cache
	// line: the consumer that adjusts it must not invalidate the
	// producer or head lines.
	ctrl adapt.BatchController
	_    spinlock.CacheLinePad
}

func newQueue(node *topology.Node, kind QueueKind) *Queue {
	q := &Queue{node: node, kind: kind}
	if kind == QueueLockFree {
		q.lf = spinlock.NewMSQueue[*Task]()
	}
	return q
}

// Node returns the topology node this queue is attached to.
func (q *Queue) Node() *topology.Node { return q.node }

// Len returns the approximate queue length, derived from the enqueue and
// dequeue totals. Exact when the queue is quiescent; transiently off by
// the number of in-flight operations under concurrency (as the seed's
// dedicated size counter also was).
func (q *Queue) Len() int {
	if q.kind == QueueLockFree {
		return q.lf.Len()
	}
	n := int64(q.enqueues.Load()) - int64(q.dequeues.Load())
	if n < 0 {
		return 0
	}
	return int(n)
}

// Empty reports whether the queue appears empty without taking the lock —
// the first, unlocked check of Algorithm 2. For the locked variants this
// is a single atomic pointer load.
func (q *Queue) Empty() bool {
	if q.kind == QueueLockFree {
		return q.lf.Empty()
	}
	return q.head.Load() == nil
}

// Enqueues returns the total number of tasks enqueued (including Repeat
// re-enqueues and CPU-set put-backs).
func (q *Queue) Enqueues() uint64 { return q.enqueues.Load() }

// Dequeues returns the total number of tasks detached by drains.
func (q *Queue) Dequeues() uint64 { return q.dequeues.Load() }

// LockStats returns (acquisitions, contended acquisitions) for the
// spinlock and mutex variants; zeros for the lock-free variant (see
// Retries for its contention analogue).
//
// Acquisitions are derived from the operation counters rather than
// counted on the hot path: every single enqueue, every chain append and
// every locked drain acquires the lock exactly once, so
//
//	acquires = (enqueues − chainTasks) + chainOps + drains + emptyDrains.
//
// The figure is exact at quiescence and approximate mid-operation.
func (q *Queue) LockStats() (acquires, contended uint64) {
	if q.kind == QueueLockFree {
		return 0, 0
	}
	acquires = q.enqueues.Load() - q.chainTasks.Load() +
		q.chainOps.Load() + q.drains.Load() + q.emptyDrains.Load()
	return acquires, q.contended.Load()
}

// DrainStats returns the number of batched detach operations and the
// total number of tasks they removed. drained/drains is the average
// batch size — the factor by which batching divides per-task lock
// acquisitions on the consumer side.
func (q *Queue) DrainStats() (drains, drained uint64) {
	return q.drains.Load(), q.dequeues.Load()
}

// DrainBatchNow returns the queue's current adaptive drain-batch size
// — the value the next unbudgeted drain will use when the engine runs
// with Config.AdaptiveDrain (the fixed engine batch applies
// otherwise).
func (q *Queue) DrainBatchNow() int { return q.ctrl.Batch() }

// Retries returns the CAS retry count of the lock-free variant (its
// contention analogue); zero for the locked variants.
func (q *Queue) Retries() uint64 {
	if q.kind == QueueLockFree {
		return q.lf.Retries()
	}
	return 0
}

// resetStats zeroes every per-queue instrumentation counter, whatever
// the protection variant. Because Len is derived as enqueues−dequeues,
// the difference is preserved across the reset: tasks still queued when
// stats are reset remain schedulable (they re-enter the accounting as
// if freshly submitted). At quiescence both counters simply become 0.
// Counters read concurrently with a reset are approximate, as with the
// seed's global counters.
func (q *Queue) resetStats() {
	pending := int64(q.enqueues.Load()) - int64(q.dequeues.Load())
	if pending < 0 {
		pending = 0
	}
	q.enqueues.Store(uint64(pending))
	q.dequeues.Store(0)
	q.drains.Store(0)
	q.emptyDrains.Store(0)
	q.chainOps.Store(0)
	q.chainTasks.Store(0)
	q.contended.Store(0)
	q.fruitless.Store(0)
	q.ctrl.ResetCounters()
	if q.lf != nil {
		q.lf.ResetStats()
	}
}

// lock acquires the queue's lock, counting contended acquisitions.
// Total acquisitions are derived in LockStats, so the uncontended path
// is one TryLock and nothing else; the contended paths are outlined to
// keep lock inlinable into the enqueue/drain hot paths.
func (q *Queue) lock() {
	if q.kind == QueueMutex {
		q.lockMutex()
		return
	}
	if !q.spin.TryLock() {
		q.lockSpinSlow()
	}
}

func (q *Queue) lockSpinSlow() {
	q.contended.Add(1)
	q.spin.Lock()
}

func (q *Queue) lockMutex() {
	if !q.mutex.TryLock() {
		q.contended.Add(1)
		q.mutex.Lock()
	}
}

func (q *Queue) unlock() {
	if q.kind == QueueMutex {
		q.mutex.Unlock()
		return
	}
	// Lock/unlock pairing is structural in this file; skip Unlock's
	// double-unlock CAS guard.
	q.spin.ReleaseUnchecked()
}

// enqueue appends t to the queue. The spinlock variant — the paper's
// configuration and the submit hot path — is laid out flat here so the
// whole operation is one call frame: counter add, try-lock, three plain
// stores, release store. The ablation variants are outlined.
func (q *Queue) enqueue(t *Task) {
	q.enqueues.Add(1)
	if q.kind != QueueSpinlock {
		q.enqueueSlow(t)
		return
	}
	if !q.spin.TryLock() {
		q.lockSpinSlow()
	}
	t.next = nil
	if q.tail == nil {
		q.head.Store(t)
	} else {
		q.tail.next = t
	}
	q.tail = t
	q.spin.ReleaseUnchecked()
}

// enqueueSlow appends t for the mutex and lock-free variants.
func (q *Queue) enqueueSlow(t *Task) {
	if q.kind == QueueLockFree {
		q.lf.Enqueue(t)
		return
	}
	q.lock()
	t.next = nil
	if q.tail == nil {
		q.head.Store(t)
	} else {
		q.tail.next = t
	}
	q.tail = t
	q.unlock()
}

// enqueueChain appends a chain of n tasks (linked through Task.next,
// nil-terminated at tail) under a single lock acquisition. The engine
// uses it to put back a batch of CPU-set-mismatched tasks without
// paying one lock round-trip per task.
func (q *Queue) enqueueChain(head, tail *Task, n int) {
	if n <= 0 {
		return
	}
	q.enqueues.Add(uint64(n))
	if q.kind == QueueLockFree {
		for t := head; t != nil; {
			next := t.next
			t.next = nil
			q.lf.Enqueue(t)
			t = next
		}
		return
	}
	q.chainOps.Add(1)
	q.chainTasks.Add(uint64(n))
	q.lock()
	tail.next = nil
	if q.tail == nil {
		q.head.Store(head)
	} else {
		q.tail.next = head
	}
	q.tail = tail
	q.unlock()
}

// drain implements the batched generalisation of the paper's Algorithm 2
// (Get_Task): evaluate the queue without holding the lock to avoid
// needless contention; only when it appears non-empty, acquire the lock,
// re-check, and detach up to max tasks in that single critical section.
// It returns the head of the detached chain (linked through Task.next)
// and its length; (nil, 0) when the queue is (or appears) empty.
//
// alwaysLock skips the unlocked emptiness precheck, for the Algorithm 2
// ablation.
func (q *Queue) drain(max int, alwaysLock bool) (*Task, int) {
	if max <= 0 {
		return nil, 0
	}
	if q.kind == QueueLockFree {
		var head, tail *Task
		n := 0
		for n < max {
			t, ok := q.lf.Dequeue()
			if !ok {
				break
			}
			t.next = nil
			if tail == nil {
				head = t
			} else {
				tail.next = t
			}
			tail = t
			n++
		}
		if n > 0 {
			q.dequeues.Add(uint64(n))
			q.drains.Add(1)
		}
		return head, n
	}
	if !alwaysLock && q.head.Load() == nil { // unlocked notempty() check
		return nil, 0
	}
	q.lock()
	head := q.head.Load() // locked re-check: nil when a racing drain won
	n := 0
	var last *Task
	for t := head; t != nil && n < max; t = t.next {
		last = t
		n++
	}
	if n > 0 {
		q.head.Store(last.next)
		if last.next == nil {
			q.tail = nil
		}
		last.next = nil
		q.dequeues.Add(uint64(n))
		q.drains.Add(1)
	} else {
		q.emptyDrains.Add(1)
	}
	q.unlock()
	return head, n
}
