package core

import (
	"sync"
	"sync/atomic"

	"pioman/internal/spinlock"
	"pioman/internal/topology"
)

// QueueKind selects how a task queue is protected against concurrent
// access — the ablation axis of §IV-A (spinlocks chosen because critical
// sections are shorter than a context switch) and §VI (lock-free as
// future work).
type QueueKind int

const (
	// QueueSpinlock protects the intrusive task list with an instrumented
	// test-and-test-and-set spinlock. This is the paper's implementation.
	QueueSpinlock QueueKind = iota
	// QueueMutex uses sync.Mutex — the "classical mutex" the paper warns
	// risks costly context switches.
	QueueMutex
	// QueueLockFree uses a Michael-Scott lock-free queue — the paper's
	// future-work direction; it allocates one node per enqueue.
	QueueLockFree
)

// String returns the kind name.
func (k QueueKind) String() string {
	switch k {
	case QueueSpinlock:
		return "spinlock"
	case QueueMutex:
		return "mutex"
	case QueueLockFree:
		return "lockfree"
	default:
		return "unknown"
	}
}

// Queue is one task list bound to a topology node. It is multi-producer,
// multi-consumer: any core may submit, any core whose CPU lies below the
// node may drain it.
type Queue struct {
	node *topology.Node
	kind QueueKind

	// Locked variants: intrusive doubly-checked list (Algorithm 2).
	spin  spinlock.Instrumented
	mutex sync.Mutex
	head  *Task
	tail  *Task
	size  atomic.Int64

	// Lock-free variant.
	lf *spinlock.MSQueue[*Task]

	enqueues atomic.Uint64
	dequeues atomic.Uint64
}

func newQueue(node *topology.Node, kind QueueKind) *Queue {
	q := &Queue{node: node, kind: kind}
	if kind == QueueLockFree {
		q.lf = spinlock.NewMSQueue[*Task]()
	}
	return q
}

// Node returns the topology node this queue is attached to.
func (q *Queue) Node() *topology.Node { return q.node }

// Len returns the approximate queue length.
func (q *Queue) Len() int {
	if q.kind == QueueLockFree {
		return q.lf.Len()
	}
	return int(q.size.Load())
}

// Empty reports whether the queue appears empty without taking the lock —
// the first, unlocked check of Algorithm 2.
func (q *Queue) Empty() bool { return q.Len() <= 0 }

// Enqueues returns the total number of tasks enqueued (including Repeat
// re-enqueues).
func (q *Queue) Enqueues() uint64 { return q.enqueues.Load() }

// Dequeues returns the total number of successful dequeues.
func (q *Queue) Dequeues() uint64 { return q.dequeues.Load() }

// LockStats returns (acquisitions, contended acquisitions) for the
// spinlock variant; zeros otherwise.
func (q *Queue) LockStats() (acquires, contended uint64) {
	if q.kind == QueueSpinlock {
		return q.spin.Acquires(), q.spin.Contended()
	}
	return 0, 0
}

func (q *Queue) lock() {
	if q.kind == QueueMutex {
		q.mutex.Lock()
	} else {
		q.spin.Lock()
	}
}

func (q *Queue) unlock() {
	if q.kind == QueueMutex {
		q.mutex.Unlock()
	} else {
		q.spin.Unlock()
	}
}

// enqueue appends t to the queue.
func (q *Queue) enqueue(t *Task) {
	q.enqueues.Add(1)
	if q.kind == QueueLockFree {
		q.lf.Enqueue(t)
		return
	}
	q.lock()
	t.next = nil
	if q.tail == nil {
		q.head = t
		q.tail = t
	} else {
		q.tail.next = t
		q.tail = t
	}
	q.size.Add(1)
	q.unlock()
}

// dequeue implements the paper's Algorithm 2 (Get_Task): evaluate the
// queue without holding the lock to avoid needless contention; only when
// it appears non-empty, acquire the lock, re-check, and dequeue. Returns
// nil when the queue is (or appears) empty.
func (q *Queue) dequeue() *Task {
	if q.kind == QueueLockFree {
		if t, ok := q.lf.Dequeue(); ok {
			q.dequeues.Add(1)
			return t
		}
		return nil
	}
	if q.size.Load() <= 0 { // unlocked notempty() check
		return nil
	}
	q.lock()
	var t *Task
	if q.head != nil { // locked re-check
		t = q.head
		q.head = t.next
		if q.head == nil {
			q.tail = nil
		}
		t.next = nil
		q.size.Add(-1)
	}
	q.unlock()
	if t != nil {
		q.dequeues.Add(1)
	}
	return t
}

// dequeueAlwaysLock is the naive Get_Task without the unlocked emptiness
// pre-check, kept for the Algorithm 2 ablation benchmark.
func (q *Queue) dequeueAlwaysLock() *Task {
	if q.kind == QueueLockFree {
		if t, ok := q.lf.Dequeue(); ok {
			q.dequeues.Add(1)
			return t
		}
		return nil
	}
	q.lock()
	var t *Task
	if q.head != nil {
		t = q.head
		q.head = t.next
		if q.head == nil {
			q.tail = nil
		}
		t.next = nil
		q.size.Add(-1)
	}
	q.unlock()
	if t != nil {
		q.dequeues.Add(1)
	}
	return t
}
