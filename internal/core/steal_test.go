package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"pioman/internal/cpuset"
	"pioman/internal/topology"
)

// Tests for work stealing: policy reach, victim ordering, re-homing of
// CPU-set mismatches, steal statistics, and cross-CPU correctness under
// race. Borderline (8 CPUs, 4 NUMA nodes of 2 cores) gives the smallest
// interesting sibling/cousin structure: CPU 0's sibling is CPU 1, CPUs
// 2-7 are NUMA-remote.

func stealEngine(policy StealPolicy) *Engine {
	return New(Config{
		Topology: topology.Borderline(),
		Steal:    StealConfig{Policy: policy},
	})
}

// anyTask returns an unconstrained task counting its executions.
func anyTask(ran *atomic.Int64) *Task {
	return &Task{Fn: func(any) bool {
		if ran != nil {
			ran.Add(1)
		}
		return true
	}}
}

func TestSubmitLocalPlacesOnLeaf(t *testing.T) {
	e := stealEngine(StealOff)
	task := anyTask(nil)
	if err := e.SubmitLocal(task, 3); err != nil {
		t.Fatal(err)
	}
	if task.home != e.QueueFor(cpuset.New(3)) {
		t.Errorf("SubmitLocal placed on %v, want CPU 3's leaf", task.home.Node())
	}
	// The home CPU runs it like any local task.
	if n := e.Schedule(3); n != 1 {
		t.Fatalf("Schedule(3) ran %d, want 1", n)
	}
	if task.LastCPU() != 3 {
		t.Errorf("LastCPU = %d, want 3", task.LastCPU())
	}

	// Out-of-range home falls back to covering placement (global queue
	// for an unconstrained task).
	far := anyTask(nil)
	if err := e.SubmitLocal(far, 99); err != nil {
		t.Fatal(err)
	}
	if far.home.Node() != e.Topology().Root {
		t.Errorf("SubmitLocal(99) placed on %v, want root", far.home.Node())
	}
	e.Schedule(0)
}

func TestSubmitLocalErrors(t *testing.T) {
	e := stealEngine(StealOff)
	if err := e.SubmitLocal(&Task{}, 0); err == nil {
		t.Error("SubmitLocal with nil Fn should fail")
	}
	task := anyTask(nil)
	if err := e.SubmitLocal(task, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitLocal(task, 0); err == nil {
		t.Error("double SubmitLocal should fail")
	}
	e.Schedule(0)
}

// TestStealOffNeverReaches: with the default policy a foreign leaf's
// backlog is invisible to other CPUs.
func TestStealOffNeverReaches(t *testing.T) {
	e := stealEngine(StealOff)
	var ran atomic.Int64
	for i := 0; i < 4; i++ {
		if err := e.SubmitLocal(anyTask(&ran), 0); err != nil {
			t.Fatal(err)
		}
	}
	for cpu := 1; cpu < 8; cpu++ {
		if n := e.Schedule(cpu); n != 0 {
			t.Fatalf("Schedule(%d) ran %d with stealing off", cpu, n)
		}
	}
	if ran.Load() != 0 {
		t.Fatalf("%d tasks ran without their home CPU", ran.Load())
	}
	if s := e.Stats(); s.StealAttempts != 0 || s.StealTasks != 0 {
		t.Errorf("steal stats %+v with stealing off", s)
	}
	if n := e.Schedule(0); n != 4 {
		t.Errorf("home CPU ran %d, want 4", n)
	}
}

// TestStealSiblingsReach: the siblings policy lets the same-chip core
// steal but keeps NUMA-remote cores out.
func TestStealSiblingsReach(t *testing.T) {
	e := stealEngine(StealSiblings)
	var ran atomic.Int64
	for i := 0; i < 4; i++ {
		if err := e.SubmitLocal(anyTask(&ran), 0); err != nil {
			t.Fatal(err)
		}
	}
	// NUMA-remote CPUs must not reach CPU 0's leaf under siblings-only.
	for cpu := 2; cpu < 8; cpu++ {
		if n := e.Schedule(cpu); n != 0 {
			t.Fatalf("remote CPU %d stole %d tasks under siblings-only", cpu, n)
		}
	}
	// The sibling (CPU 1 shares CPU 0's NUMA node) steals everything:
	// the 4-task backlog fits one half-batch of the default 32.
	if n := e.Schedule(1); n != 4 {
		t.Fatalf("sibling stole %d tasks, want 4", n)
	}
	s := e.Stats()
	if s.StealTasks != 4 || s.StealHits != 1 {
		t.Errorf("StealTasks/Hits = %d/%d, want 4/1", s.StealTasks, s.StealHits)
	}
	if s.StealPerCPU[1] != 4 {
		t.Errorf("StealPerCPU[1] = %d, want 4", s.StealPerCPU[1])
	}
}

// TestStealFullTreeReach: full-tree lets a NUMA-remote core steal, and
// the victim's sibling is preferred over remote thieves' own groups.
func TestStealFullTreeReach(t *testing.T) {
	e := stealEngine(StealFullTree)
	var ran atomic.Int64
	for i := 0; i < 4; i++ {
		if err := e.SubmitLocal(anyTask(&ran), 0); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.Schedule(7); n != 4 {
		t.Fatalf("remote CPU 7 stole %d tasks, want 4", n)
	}
	if ran.Load() != 4 {
		t.Fatalf("ran = %d, want 4", ran.Load())
	}
}

// TestStealBatchBounded: one steal detaches at most the configured
// fraction of the drain batch, leaving the rest with the victim.
func TestStealBatchBounded(t *testing.T) {
	e := New(Config{
		Topology: topology.Borderline(),
		Steal:    StealConfig{Policy: StealFullTree, BatchFraction: 0.25},
	})
	const backlog = 64
	for i := 0; i < backlog; i++ {
		if err := e.SubmitLocal(anyTask(nil), 0); err != nil {
			t.Fatal(err)
		}
	}
	// 0.25 × 32 = 8 tasks per steal; Schedule steals once per call
	// because the first successful group attempt satisfies the pass.
	if n := e.Schedule(1); n != 8 {
		t.Fatalf("first steal migrated %d tasks, want 8", n)
	}
	if got := e.QueueFor(cpuset.New(0)).Len(); got != backlog-8 {
		t.Errorf("victim backlog = %d, want %d", got, backlog-8)
	}
}

// TestStealRehomesMismatch: a pinned task parked on the wrong leaf by
// SubmitLocal transits a thief and is re-homed onto the queue its CPU
// set maps to, where an allowed CPU then finds it — the thief itself
// never executes it.
func TestStealRehomesMismatch(t *testing.T) {
	e := stealEngine(StealFullTree)
	task := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(4, 5)}
	// Misplaced: CPUs 4-5 may run it, but it sits on CPU 0's leaf where
	// only CPU 0 (never allowed) or a thief will see it.
	if err := e.SubmitLocal(task, 0); err != nil {
		t.Fatal(err)
	}
	if n := e.Schedule(1); n != 0 {
		t.Fatalf("thief executed %d tasks it may not run", n)
	}
	if task.Done() {
		t.Fatal("task ran on a disallowed CPU")
	}
	// Re-homed to the NUMA node covering {4,5}: now on CPU 4's path.
	want := e.QueueFor(cpuset.New(4, 5))
	if task.home != want {
		t.Errorf("re-homed to %v, want %v", task.home.Node(), want.Node())
	}
	if n := e.Schedule(4); n != 1 {
		t.Fatalf("allowed CPU ran %d, want 1", n)
	}
	if got := task.LastCPU(); got != 4 {
		t.Errorf("LastCPU = %d, want 4", got)
	}
	s := e.Stats()
	if s.Skips != 1 {
		t.Errorf("Skips = %d, want 1 (the re-home)", s.Skips)
	}
	if s.StealTasks != 0 {
		t.Errorf("StealTasks = %d, want 0 (re-homes are not migrations)", s.StealTasks)
	}
}

// TestSubmitLocalMisplacedPinnedRecovers: a pinned task parked on a
// leaf its owner can never run is repaired by the owner's own scan —
// no thieves required — instead of bouncing forever on an unreachable
// queue.
func TestSubmitLocalMisplacedPinnedRecovers(t *testing.T) {
	e := stealEngine(StealOff)
	task := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(5)}
	if err := e.SubmitLocal(task, 0); err != nil {
		t.Fatal(err)
	}
	// CPU 0 cannot run it, but its scan re-homes it onto CPU 5's leaf.
	if n := e.Schedule(0); n != 0 {
		t.Fatalf("Schedule(0) ran %d, want 0", n)
	}
	if task.home != e.QueueFor(cpuset.New(5)) {
		t.Errorf("task re-homed to %v, want CPU 5's leaf", task.home.Node())
	}
	if n := e.Schedule(0); n != 0 {
		t.Fatal("task still visible to CPU 0 after re-home")
	}
	if got := e.Stats().Skips; got != 1 {
		t.Errorf("Skips = %d, want 1 (no repeated bouncing)", got)
	}
	if n := e.Schedule(5); n != 1 {
		t.Fatalf("Schedule(5) ran %d, want 1", n)
	}
}

// TestFruitlessVictimNotRedrained: a victim whose backlog is entirely
// pinned to its owner is drained by a thief at most once; subsequent
// idle keypoints skip it (no lock traffic on the busy queue) until
// something new is enqueued there.
func TestFruitlessVictimNotRedrained(t *testing.T) {
	e := stealEngine(StealFullTree)
	const pinned = 6
	for i := 0; i < pinned; i++ {
		task := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)}
		if err := e.SubmitLocal(task, 0); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.Schedule(1); n != 0 {
		t.Fatalf("thief ran %d pinned tasks", n)
	}
	if got := e.Stats().StealAttempts; got != 1 {
		t.Fatalf("StealAttempts = %d, want 1", got)
	}
	// Marked fruitless: further thief keypoints never touch the queue.
	for i := 0; i < 5; i++ {
		e.Schedule(1)
		e.ScheduleOne(7)
	}
	if got := e.Stats().StealAttempts; got != 1 {
		t.Errorf("StealAttempts = %d after fruitless mark, want still 1", got)
	}
	// A new enqueue invalidates the mark; the newcomer is stealable.
	fresh := anyTask(nil)
	if err := e.SubmitLocal(fresh, 0); err != nil {
		t.Fatal(err)
	}
	if n := e.Schedule(1); n != 1 {
		t.Fatalf("thief ran %d after fresh enqueue, want 1", n)
	}
	if !fresh.Done() {
		t.Error("fresh task not the one stolen")
	}
	// The pinned backlog is untouched and still runs at home.
	for e.Schedule(0) > 0 {
	}
	if got := e.Stats().Executions; got != pinned+1 {
		t.Errorf("Executions = %d, want %d", got, pinned+1)
	}
}

// TestUrgentSkipStaysUrgent: an urgent task skipped by a CPU outside
// its set goes back on the urgent queue, not into the hierarchy — it
// must still run ahead of hierarchically queued tasks once an allowed
// CPU arrives. Guards the rehomeChain pin against priority demotion.
func TestUrgentSkipStaysUrgent(t *testing.T) {
	e := stealEngine(StealFullTree)
	urgent := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(3)}
	if err := e.SubmitUrgent(urgent); err != nil {
		t.Fatal(err)
	}
	uq := e.urgentQ.Load()
	// CPU 0 may not run it: skipped, but still urgent.
	if n := e.Schedule(0); n != 0 {
		t.Fatalf("CPU 0 ran %d urgent tasks outside its set", n)
	}
	if urgent.home != uq {
		t.Fatalf("skipped urgent task demoted to %v", urgent.home.Node())
	}
	if uq.Len() != 1 {
		t.Fatalf("urgent queue length = %d, want 1", uq.Len())
	}
	// CPU 3 has ordinary local work too; the urgent task must win.
	var order []string
	local := &Task{Fn: func(any) bool { order = append(order, "local"); return true }, CPUSet: cpuset.New(3)}
	urgent2 := &Task{Fn: func(any) bool { order = append(order, "urgent"); return true }, CPUSet: cpuset.New(3)}
	e.MustSubmit(local)
	if err := e.SubmitUrgent(urgent2); err != nil {
		t.Fatal(err)
	}
	for e.Schedule(3) > 0 {
	}
	if !urgent.Done() {
		t.Error("skipped urgent task never executed")
	}
	if len(order) != 2 || order[0] != "urgent" {
		t.Errorf("execution order = %v, want urgent first", order)
	}
}

// TestBudgetClippedStealDoesNotMarkFruitless: a ScheduleOne steal that
// draws one pinned task from a victim must not write off the victim —
// stealable work may sit right behind the pinned head.
func TestBudgetClippedStealDoesNotMarkFruitless(t *testing.T) {
	e := stealEngine(StealFullTree)
	// Pinned head, stealable tail — all shallower than one steal batch.
	pinned := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)}
	if err := e.SubmitLocal(pinned, 0); err != nil {
		t.Fatal(err)
	}
	const free = 5
	var ran atomic.Int64
	for i := 0; i < free; i++ {
		if err := e.SubmitLocal(anyTask(&ran), 0); err != nil {
			t.Fatal(err)
		}
	}
	// First keypoint draws the pinned head: nothing runnable, no mark.
	if e.ScheduleOne(1) {
		t.Fatal("thief ran the pinned head")
	}
	// Subsequent keypoints must still steal the tail.
	for i := 0; i < free; i++ {
		if !e.ScheduleOne(1) {
			t.Fatalf("keypoint %d stole nothing; victim wrongly marked fruitless", i)
		}
	}
	if got := ran.Load(); got != free {
		t.Errorf("stole %d unconstrained tasks, want %d", got, free)
	}
	e.Schedule(0)
	if !pinned.Done() {
		t.Error("pinned task lost")
	}
}

// TestFullWindowOfPinnedDoesNotHideDeeperWork: a steal window that
// fills completely with pinned tasks must not mark the victim
// fruitless — stealable tasks queued behind the pinned head would
// otherwise be hidden from every thief until the next enqueue.
func TestFullWindowOfPinnedDoesNotHideDeeperWork(t *testing.T) {
	e := stealEngine(StealFullTree)
	// Exactly one full steal window (stealBatch = 16) of pinned tasks
	// in front of a stealable tail.
	for i := 0; i < 16; i++ {
		task := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)}
		if err := e.SubmitLocal(task, 0); err != nil {
			t.Fatal(err)
		}
	}
	var stolen atomic.Int64
	const free = 16
	for i := 0; i < free; i++ {
		if err := e.SubmitLocal(anyTask(&stolen), 0); err != nil {
			t.Fatal(err)
		}
	}
	// First steal drains the full pinned window: no migration, no mark.
	if n := e.Schedule(1); n != 0 {
		t.Fatalf("thief ran %d pinned tasks", n)
	}
	// The stealable tail is now at the head; the next pass must get it.
	if n := e.Schedule(1); n != free {
		t.Fatalf("second pass stole %d, want %d (victim wrongly marked fruitless)", n, free)
	}
	if got := stolen.Load(); got != free {
		t.Errorf("stolen = %d, want %d", got, free)
	}
	for e.Schedule(0) > 0 {
	}
	if got := e.Stats().Executions; got != 32 {
		t.Errorf("Executions = %d, want 32", got)
	}
}

// TestStealBatchFractionClamped: BatchFraction above 1 must not let a
// steal detach more than one full drain batch.
func TestStealBatchFractionClamped(t *testing.T) {
	e := New(Config{
		Topology: topology.Borderline(),
		Steal:    StealConfig{Policy: StealFullTree, BatchFraction: 4.0},
	})
	const backlog = 64
	for i := 0; i < backlog; i++ {
		if err := e.SubmitLocal(anyTask(nil), 0); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.Schedule(1); n != 32 {
		t.Fatalf("steal migrated %d tasks, want the full-batch clamp 32", n)
	}
}

// TestStealPrefersBackloggedVictim: with two candidate victims at equal
// distance, the thief picks the longer queue.
func TestStealPrefersBackloggedVictim(t *testing.T) {
	// Kwak: CPUs 0-3 share a chip, so CPU 3 has three siblings.
	e := New(Config{Topology: topology.Kwak(), Steal: StealConfig{Policy: StealSiblings}})
	for i := 0; i < 2; i++ {
		if err := e.SubmitLocal(anyTask(nil), 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := e.SubmitLocal(anyTask(nil), 1); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.Schedule(3); n != 10 {
		t.Fatalf("thief stole %d tasks, want 10 (the backlogged victim, one half-batch)", n)
	}
	if got := e.QueueFor(cpuset.New(0)).Len(); got != 2 {
		t.Errorf("lighter victim drained to %d, want untouched 2", got)
	}
}

// TestScheduleOneSteals: the latency-budget entry point steals exactly
// one task when the local path is empty.
func TestScheduleOneSteals(t *testing.T) {
	e := stealEngine(StealFullTree)
	for i := 0; i < 5; i++ {
		if err := e.SubmitLocal(anyTask(nil), 0); err != nil {
			t.Fatal(err)
		}
	}
	if !e.ScheduleOne(6) {
		t.Fatal("ScheduleOne found nothing to steal")
	}
	if got := e.QueueFor(cpuset.New(0)).Len(); got != 4 {
		t.Errorf("victim backlog = %d, want 4 (exactly one task stolen)", got)
	}
	if got := e.Stats().StealTasks; got != 1 {
		t.Errorf("StealTasks = %d, want 1", got)
	}
}

// TestStealLocalWorkFirst: a CPU with work on its own path never pays
// the steal walk.
func TestStealLocalWorkFirst(t *testing.T) {
	e := stealEngine(StealFullTree)
	if err := e.SubmitLocal(anyTask(nil), 0); err != nil {
		t.Fatal(err)
	}
	mine := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(1)}
	e.MustSubmit(mine)
	if n := e.Schedule(1); n != 1 {
		t.Fatalf("Schedule(1) ran %d, want 1 (own task only)", n)
	}
	if s := e.Stats(); s.StealAttempts != 0 {
		t.Errorf("StealAttempts = %d, want 0 when local work exists", s.StealAttempts)
	}
	e.Schedule(0)
}

// TestStealPinnedNeverEscapesUnderRace is the steal correctness
// property under concurrency: a storm of thieves on every CPU races a
// producer parking both unconstrained and pinned tasks on one leaf; no
// pinned task may ever execute outside its CPU set, nothing may be
// lost, and the steal/queue statistics must still tie out. Run with
// -race.
func TestStealPinnedNeverEscapesUnderRace(t *testing.T) {
	for _, policy := range []StealPolicy{StealSiblings, StealFullTree} {
		t.Run(policy.String(), func(t *testing.T) {
			topo := topology.Borderline()
			e := New(Config{Topology: topo, Steal: StealConfig{Policy: policy}})
			const rounds = 50
			const burst = 24
			total := rounds * burst

			var executed atomic.Int64
			var badCPU atomic.Int64
			stop := make(chan struct{})
			var swg sync.WaitGroup
			for cpu := 0; cpu < topo.NCPUs; cpu++ {
				swg.Add(1)
				go func(cpu int) {
					defer swg.Done()
					for {
						e.Schedule(cpu)
						select {
						case <-stop:
							for e.Schedule(cpu) > 0 {
							}
							return
						default:
						}
					}
				}(cpu)
			}

			submits := 0
			for r := 0; r < rounds; r++ {
				home := r % topo.NCPUs
				tasks := make([]Task, burst)
				for i := range tasks {
					if i%3 == 0 {
						// Pinned to the home CPU: stealable in transit,
						// executable only at home.
						tasks[i].CPUSet = cpuset.New(home)
					} // else unconstrained: fair game for any thief.
					tasks[i].Fn = func(arg any) bool {
						task := arg.(*Task)
						cpu := int(task.lastCPU.Load())
						if !task.CPUSet.IsEmpty() && !task.CPUSet.IsSet(cpu) {
							badCPU.Add(1)
						}
						executed.Add(1)
						return true
					}
					tasks[i].Arg = &tasks[i]
					if err := e.SubmitLocal(&tasks[i], home); err != nil {
						t.Fatal(err)
					}
					submits++
				}
				for i := range tasks {
					e.WaitActive(&tasks[i], home)
				}
			}
			close(stop)
			swg.Wait()

			if got := executed.Load(); got != int64(total) {
				t.Errorf("executed %d tasks, want %d", got, total)
			}
			if n := badCPU.Load(); n != 0 {
				t.Errorf("%d pinned executions escaped their CPU set", n)
			}
			if e.Pending() != 0 {
				t.Errorf("Pending = %d after completion", e.Pending())
			}
			s := e.Stats()
			if s.Submitted != uint64(submits) {
				t.Errorf("Submitted = %d, want %d", s.Submitted, submits)
			}
			if s.Executions != uint64(total) {
				t.Errorf("Executions = %d, want %d", s.Executions, total)
			}
			var perCPU uint64
			for _, n := range s.StealPerCPU {
				perCPU += n
			}
			if perCPU != s.StealTasks {
				t.Errorf("ΣStealPerCPU = %d, want StealTasks = %d", perCPU, s.StealTasks)
			}
			if s.StealTasks > s.Executions {
				t.Errorf("StealTasks = %d exceeds Executions = %d", s.StealTasks, s.Executions)
			}
			if s.StealHits > s.StealAttempts {
				t.Errorf("StealHits = %d exceeds StealAttempts = %d", s.StealHits, s.StealAttempts)
			}
		})
	}
}

// TestFindIdleNearPrefersLeastLoaded: placement feedback — among
// equally-near idle CPUs, the one that has executed the least wins.
func TestFindIdleNearPrefersLeastLoaded(t *testing.T) {
	e := New(Config{Topology: topology.Kwak()})
	// Load CPU 1 with some executions; CPUs 1 and 2 are both siblings
	// of 0 (same L3).
	for i := 0; i < 3; i++ {
		e.MustSubmit(&Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(1)})
	}
	for e.Schedule(1) > 0 {
	}
	e.SetIdle(1, true)
	e.SetIdle(2, true)
	if got := e.FindIdleNear(0); got != 2 {
		t.Errorf("FindIdleNear(0) = %d, want 2 (least-loaded sibling)", got)
	}
	// The feedback only breaks ties within a level: a loaded sibling
	// still beats an unloaded remote core.
	e.SetIdle(2, false)
	e.SetIdle(13, true)
	if got := e.FindIdleNear(0); got != 1 {
		t.Errorf("FindIdleNear(0) = %d, want 1 (proximity before load)", got)
	}
}
