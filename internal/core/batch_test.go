package core

import (
	"sync/atomic"
	"testing"

	"pioman/internal/cpuset"
	"pioman/internal/topology"
)

func TestSubmitAllRunsEverything(t *testing.T) {
	e := New(Config{Topology: topology.Kwak()})
	const n = 40
	var ran atomic.Int64
	tasks := make([]*Task, n)
	for i := range tasks {
		cs := cpuset.Set{}
		if i%3 == 0 {
			cs = cpuset.New(i % e.Topology().NCPUs)
		}
		tasks[i] = &Task{Fn: func(any) bool { ran.Add(1); return true }, CPUSet: cs}
	}
	if err := e.SubmitAll(tasks...); err != nil {
		t.Fatal(err)
	}
	for cpu := 0; cpu < e.Topology().NCPUs; cpu++ {
		e.Schedule(cpu)
	}
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d/%d", got, n)
	}
	if s := e.Stats(); s.Submitted != n {
		t.Errorf("Submitted = %d, want %d (batch counts like per-task submits)", s.Submitted, n)
	}
}

func TestSubmitAllPlacementMatchesSubmit(t *testing.T) {
	e := New(Config{Topology: topology.Kwak()})
	pinned := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(3)}
	free := &Task{Fn: func(any) bool { return true }}
	if err := e.SubmitAll(pinned, free); err != nil {
		t.Fatal(err)
	}
	if pinned.home != e.leaf[3] {
		t.Errorf("pinned task homed on %v, want CPU 3's leaf", pinned.home.Node())
	}
	if free.home != e.rootQ {
		t.Errorf("unconstrained task homed on %v, want the root queue", free.home.Node())
	}
}

func TestSubmitAllChainsSameQueue(t *testing.T) {
	e := New(Config{Topology: topology.Kwak()})
	const n = 16
	tasks := make([]*Task, n)
	for i := range tasks {
		tasks[i] = &Task{Fn: func(any) bool { return true }}
	}
	if err := e.SubmitAll(tasks...); err != nil {
		t.Fatal(err)
	}
	// All n unconstrained tasks head for the root queue: one chained
	// append, not n lock round-trips.
	if ops := e.rootQ.chainOps.Load(); ops != 1 {
		t.Errorf("chain appends = %d, want 1 for a same-queue batch", ops)
	}
	acquires, _ := e.rootQ.LockStats()
	if acquires != 1 {
		t.Errorf("producer lock acquisitions = %d, want 1", acquires)
	}
}

func TestSubmitAllInvalidMidBatchIsAllOrNothing(t *testing.T) {
	e := New(Config{Topology: topology.Kwak()})
	good := &Task{Fn: func(any) bool { return true }}
	bad := &Task{} // nil Fn
	if err := e.SubmitAll(good, bad); err == nil {
		t.Fatal("batch with an invalid task should fail")
	}
	if e.Pending() != 0 {
		t.Fatalf("failed batch enqueued %d tasks", e.Pending())
	}
	if got := good.State(); got != StateFree {
		t.Fatalf("earlier task left in state %v, want free", got)
	}
	// The reverted task is resubmittable.
	if err := e.Submit(good); err != nil {
		t.Fatal(err)
	}
	e.Schedule(0)
	if !good.Done() {
		t.Error("reverted task did not run after resubmission")
	}
}

func TestSubmitAllNotifierFiresOncePerBatch(t *testing.T) {
	e := New(Config{Topology: topology.Kwak()})
	var calls atomic.Int64
	var last atomic.Value
	e.SetNotifier(func(cs cpuset.Set) {
		calls.Add(1)
		last.Store(cs)
	})
	pinnedBatch := []*Task{
		{Fn: func(any) bool { return true }, CPUSet: cpuset.New(1)},
		{Fn: func(any) bool { return true }, CPUSet: cpuset.New(2)},
	}
	if err := e.SubmitAll(pinnedBatch...); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("notifier fired %d times for one batch, want 1", got)
	}
	if got := last.Load().(cpuset.Set); !got.Equal(cpuset.New(1, 2)) {
		t.Errorf("notified set = %v, want the batch union {1,2}", got)
	}
	// A batch containing an unconstrained task wakes as for "any CPU".
	mixed := []*Task{
		{Fn: func(any) bool { return true }, CPUSet: cpuset.New(3)},
		{Fn: func(any) bool { return true }},
	}
	if err := e.SubmitAll(mixed...); err != nil {
		t.Fatal(err)
	}
	if got := last.Load().(cpuset.Set); !got.IsEmpty() {
		t.Errorf("notified set = %v, want the empty (any-CPU) set", got)
	}
	for cpu := 0; cpu < e.Topology().NCPUs; cpu++ {
		e.Schedule(cpu)
	}
}

func TestSubmitAllEmptyAndSingleton(t *testing.T) {
	e := New(Config{Topology: topology.Kwak()})
	if err := e.SubmitAll(); err != nil {
		t.Fatal(err)
	}
	one := &Task{Fn: func(any) bool { return true }}
	if err := e.SubmitAll(one); err != nil {
		t.Fatal(err)
	}
	e.Schedule(0)
	if !one.Done() {
		t.Error("singleton batch did not run")
	}
}
