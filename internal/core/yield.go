package core

import "runtime"

// yield cedes the processor to other goroutines. Separated out so tests
// can count scheduling holes if needed.
func yield() { runtime.Gosched() }
