package core

import (
	"testing"
	"testing/quick"

	"pioman/internal/cpuset"
	"pioman/internal/topology"
)

// Property tests (testing/quick) over the queue-placement and scheduling
// invariants of the engine.

func setFromMask(mask uint16) cpuset.Set {
	var cs cpuset.Set
	for b := 0; b < 16; b++ {
		if mask&(1<<uint(b)) != 0 {
			cs.Set(b)
		}
	}
	return cs
}

func TestQuickQueueForCoversAndIsDeepest(t *testing.T) {
	e := kwakEngine()
	f := func(mask uint16) bool {
		cs := setFromMask(mask)
		q := e.QueueFor(cs)
		node := q.Node()
		if !cs.IsEmpty() && !cs.SubsetOf(node.CPUSet) {
			return false
		}
		for _, child := range node.Children {
			if !cs.IsEmpty() && cs.SubsetOf(child.CPUSet) {
				return false // a deeper queue would have been valid
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubmittedTasksAlwaysComplete(t *testing.T) {
	// Any batch of tasks with arbitrary (in-range) CPU sets completes
	// after every CPU schedules enough rounds, each task exactly once.
	e := kwakEngine()
	f := func(masks []uint16) bool {
		if len(masks) > 40 {
			masks = masks[:40]
		}
		runs := make([]int, len(masks))
		tasks := make([]*Task, len(masks))
		for i, m := range masks {
			i := i
			cs := setFromMask(m)
			tasks[i] = &Task{Fn: func(any) bool { runs[i]++; return true }, CPUSet: cs}
			if err := e.Submit(tasks[i]); err != nil {
				return false
			}
		}
		for round := 0; round < 4; round++ {
			for cpu := 0; cpu < 16; cpu++ {
				e.Schedule(cpu)
			}
		}
		for i, task := range tasks {
			if !task.Done() || runs[i] != 1 {
				return false
			}
			// The executing CPU respected the CPU set.
			if !task.CPUSet.IsEmpty() && !task.CPUSet.IsSet(task.LastCPU()) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRepeatRunsExactlyUntilDone(t *testing.T) {
	e := kwakEngine()
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 1
		count := 0
		task := &Task{
			Fn:      func(any) bool { count++; return count >= n },
			Options: Repeat,
			CPUSet:  cpuset.New(int(nRaw) % 16),
		}
		if err := e.Submit(task); err != nil {
			return false
		}
		cpu := int(nRaw) % 16
		for i := 0; i < n+2 && !task.Done(); i++ {
			e.Schedule(cpu)
		}
		return task.Done() && count == n && task.Runs() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickFindIdleNearReturnsIdleAllowedCPU(t *testing.T) {
	topo := topology.Kwak()
	f := func(idleMask uint16, homeRaw uint8) bool {
		e := New(Config{Topology: topo})
		home := int(homeRaw) % 16
		for cpu := 0; cpu < 16; cpu++ {
			e.SetIdle(cpu, idleMask&(1<<uint(cpu)) != 0)
		}
		got := e.FindIdleNear(home)
		idle := setFromMask(idleMask)
		idleOthers := cpuset.AndNot(idle, cpuset.New(home))
		if idleOthers.IsEmpty() {
			return got == -1
		}
		// Must return some idle CPU that is not home.
		return got >= 0 && got != home && idle.IsSet(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
